#pragma once

/// \file cli.hpp
/// The `elrr` command-line tool, as a library so tests can drive it.
///
/// Subcommands:
///   analyze    tau / Theta bounds / Markov / simulation / xi of an RRG
///   optimize   MIN_EFF_CYC (exact), the MILP-free heuristic, or hybrid
///   simulate   token-level or SELF control-network throughput
///   generate   synthetic Table-2 circuit -> .rrg
///   export     .rrg -> dot | json | verilog | rrg
///   size-fifos simulation-guided EB capacity sizing
///   from-bench ISCAS89 .bench -> largest-SCC RRG (paper Section 5 flow)
///   bench-diff compare a fresh BENCH_sim.json against the committed
///              baseline; non-zero exit on regression (perf gate)
///
/// Inputs: --input <file.rrg> or --circuit <table2 name> [--seed N].
/// Run `elrr help` for the full flag list.

#include <iosfwd>

namespace elrr::cli {

/// Returns a process exit code; writes human output to `out`, errors to
/// `err`. Never throws.
int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

}  // namespace elrr::cli
