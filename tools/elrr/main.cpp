#include <iostream>

#include "tools/elrr/cli.hpp"

int main(int argc, char** argv) {
  return elrr::cli::run(argc, argv, std::cout, std::cerr);
}
