#include "tools/elrr/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench89/bench_format.hpp"
#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "core/tgmg.hpp"
#include "elastic/control_sim.hpp"
#include "elastic/fifo_sizing.hpp"
#include "elastic/verilog.hpp"
#include "flow/circuit_flow.hpp"
#include "flow/engine.hpp"
#include "heur/heuristic.hpp"
#include "io/rrg_format.hpp"
#include "lp/mps.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "retime/leiserson_saxe.hpp"
#include "retime/min_area.hpp"
#include "sim/markov.hpp"
#include "sim/proc_fleet.hpp"
#include "sim/simulator.hpp"
#include "support/args.hpp"
#include "support/bench_json.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"
#include "svc/disk_cache.hpp"
#include "svc/manifest.hpp"
#include "svc/scheduler.hpp"

namespace elrr::cli {

namespace {

constexpr const char* kUsage = R"(elrr -- retiming & recycling for elastic systems with early evaluation
(DAC'09 reproduction; see README.md)

usage: elrr <command> [flags]

input (most commands): --input <file.rrg>  |  --circuit <name> [--seed N]
  <name> is one of the Table-2 test cases (s27, s208, ..., s1494).

commands:
  analyze     cycle time, LP throughput bound, late-eval MCR, exact Markov
              (small systems), Monte-Carlo throughput, effective cycle time
  optimize    retiming & recycling: --method exact|heur|hybrid (default
              hybrid), --epsilon E, --timeout S (per MILP), --simulate,
              --k N (candidates shown)
  flow        pipelined engine: the Pareto walk streams each candidate
              into an async simulation fleet while the next MILP solves;
              --epsilon E, --timeout S, --threads T (fleet pool; 0 = all
              cores), --cycles N, --runs R, --k N (rows shown),
              --sequential (walk-then-score baseline, same results),
              --feedback / --no-feedback (prune MILP steps with
              simulated thetas; default auto: armed only once a MILP
              budget is hit), --cold-milp (disable warm-started MILP
              steps; same results, slower), --polish
  batch       multi-circuit optimization service: one scheduler, one
              shared simulation fleet, many jobs. elrr batch
              <manifest.jsonl> [--jobs N] [--threads T] [--output file]
              [--resume] -- one JSON job per manifest line ({"circuit":
              "s526", "mode": "min_eff_cyc|min_cyc|score", "priority":
              "high|normal|low", ...}; see src/svc/manifest.hpp), JSONL
              results out (last line = batch summary). ELRR_* env knobs
              are the batch-wide defaults; per-line keys override.
              --resume re-runs a crashed/interrupted batch's manifest
              against the persistent cache (requires
              ELRR_DISK_CACHE_DIR): already-completed jobs are served
              bit-identically from disk and counted as "resumed" in the
              summary; the rest run for real. --trace <out.json> arms
              the obs layer (same as ELRR_TRACE) and writes a Perfetto-
              loadable Chrome trace of the whole batch -- scheduler,
              walk, MILP, fleet and proc-worker tracks on one timeline;
              the summary stream gains a trace_summary record. When
              both are set the flag wins: the trace goes to the --trace
              path (and worker processes inherit it).
  work        internal: simulation worker process (spawned by the fleet
              when ELRR_PROC_WORKERS > 0; speaks the length-framed slice
              protocol on stdin/stdout -- not for interactive use)
  simulate    --cycles N, --runs R, --threads T (0 = all cores),
              --control (SELF network), --capacity C
  generate    --circuit <name> [--seed N] --output <file.rrg>
  export      --format rrg|json|dot|tgmg-dot|mps|verilog [--output <file>]
  size-fifos  --tolerance T, --max-capacity C
  min-area    minimum-buffer retiming meeting --period P (default: the
              min-period retiming's period); classical registers only
  from-bench  --input <file.bench> [--output <file.rrg>]  (largest SCC,
              unit delays; --annotate re-randomizes per the paper, --seed N)
  trace-summary  <trace.json> [--json]  -- aggregate per-phase latency
              table (count / total / p50 / p95 / p99) from a trace
              written by --trace / ELRR_TRACE; exact percentiles from
              the recorded span durations. The footer reports spans
              dropped to ring wrap + the ring capacity (raise
              ELRR_OBS_BUF if nonzero). --json emits the same rows
              machine-readable, mirroring bench-diff --json
  postmortem  <file>  -- render a flight-recorder crash dump (written
              to ELRR_POSTMORTEM_DIR by a crashing elrr process) as a
              human report: crash reason, in-flight job/slice
              identities, the last recorded events, counters and phase
              latencies; see src/obs/README.md
  top         <snapshot.json>  -- one-shot dashboard over the periodic
              stats snapshot (ELRR_STATS_SNAPSHOT=path:period_ms):
              queue depths, fleet utilization, cache hit rates,
              per-phase latency percentiles. `watch -n1 elrr top <f>`
              approximates a live view
  bench-diff  --new <BENCH_sim.json> --baseline <BENCH_sim.json>
              [--max-regression F] [--json]  (default 0.10: fail if any
              section is >10% slower than the committed baseline;
              tools/bench_gate.sh wires this after a fresh perf_smoke
              run. --json emits machine-readable per-section
              ratios + pass/warn/fail for CI annotation)
  help        this text
)";

struct LoadedInput {
  std::string name;
  Rrg rrg;
};

LoadedInput load_input(Args& args) {
  const auto input = args.get("input");
  const auto circuit = args.get("circuit");
  ELRR_REQUIRE(input.has_value() != circuit.has_value(),
               "provide exactly one of --input or --circuit");
  if (input.has_value()) {
    io::NamedRrg named = io::load_rrg_file(*input);
    if (named.name.empty()) named.name = *input;
    return {named.name, std::move(named.rrg)};
  }
  const std::uint64_t seed = args.get_u64("seed", 1);
  const bench89::CircuitSpec& spec = bench89::spec_by_name(*circuit);
  return {spec.name, bench89::make_table2_rrg(spec, seed)};
}

void print_points(std::ostream& out, const std::vector<ParetoPoint>& points,
                  std::size_t best_index, std::size_t limit) {
  out << "   #      tau   Theta_lp      xi_lp  exact\n";
  for (std::size_t i = 0; i < points.size() && i < limit; ++i) {
    const ParetoPoint& p = points[i];
    out << format_fixed(static_cast<double>(i), 0) << "    "
        << format_fixed(p.tau, 3) << "   " << format_fixed(p.theta_lp, 4)
        << "     " << format_fixed(p.xi_lp, 4) << "  "
        << (p.exact ? "yes" : "no ")
        << (i == best_index ? "   <== best" : "") << "\n";
  }
}

int cmd_analyze(Args& args, std::ostream& out) {
  const LoadedInput in = load_input(args);
  const std::size_t cycles =
      static_cast<std::size_t>(args.get_int("cycles", 20000));
  args.finish();

  out << "rrg " << in.name << ": " << in.rrg.num_nodes() << " nodes, "
      << in.rrg.num_edges() << " edges\n";
  const RcEvaluation eval = evaluate_rrg(in.rrg);
  out << "cycle time tau        = " << format_fixed(eval.tau, 4) << "\n";
  out << "Theta upper bound (LP)= " << format_fixed(eval.theta_lp, 4) << "\n";
  out << "late-eval Theta (MCR) = "
      << format_fixed(late_eval_throughput(in.rrg), 4) << "\n";
  if (in.rrg.has_telescopic()) {
    out << "telescopic cap        = "
        << format_fixed(throughput_cap(in.rrg), 4) << "\n";
  }
  sim::MarkovOptions mopt;
  mopt.max_states = 20000;
  const sim::MarkovResult mc = sim::exact_throughput(in.rrg, mopt);
  if (mc.ok) {
    out << "exact Theta (Markov)  = " << format_fixed(mc.theta, 4) << "  ("
        << mc.num_states << " states)\n";
  } else {
    out << "exact Theta (Markov)  = (state space too large)\n";
  }
  sim::SimOptions sopt;
  sopt.measure_cycles = cycles;
  const sim::SimResult sim = sim::simulate_throughput(in.rrg, sopt);
  out << "simulated Theta       = " << format_fixed(sim.theta, 4) << " +- "
      << format_fixed(sim.stderr_theta, 4) << "\n";
  out << "effective cycle time  = " << format_fixed(eval.tau / sim.theta, 4)
      << "  (xi_lp " << format_fixed(eval.xi_lp, 4) << ")\n";
  return 0;
}

int cmd_optimize(Args& args, std::ostream& out) {
  const LoadedInput in = load_input(args);
  const std::string method = args.get_or("method", "hybrid");
  OptOptions oopt;
  oopt.epsilon = args.get_double("epsilon", 0.05);
  oopt.milp.time_limit_s = args.get_double("timeout", 6.0);
  const bool simulate = args.get_flag("simulate");
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 8));
  const auto save = args.get("save-best");
  args.finish();

  std::vector<ParetoPoint> points;
  if (method == "exact" || method == "hybrid") {
    const MinEffCycResult exact = min_eff_cyc(in.rrg, oopt);
    out << "exact walk: " << exact.points.size() << " Pareto points, "
        << exact.milp_calls << " MILPs"
        << (exact.all_exact ? "" : " (some budgets hit)") << ", "
        << format_fixed(exact.seconds, 1) << "s\n";
    points.insert(points.end(), exact.points.begin(), exact.points.end());
  }
  if (method == "heur" || method == "hybrid") {
    const HeuristicResult heur = heur_eff_cyc(in.rrg);
    out << "heuristic:  " << heur.points.size() << " Pareto points, "
        << heur.lp_evals << " LPs, " << format_fixed(heur.seconds, 1)
        << "s\n";
    points.insert(points.end(), heur.points.begin(), heur.points.end());
  }
  ELRR_REQUIRE(!points.empty(), "unknown --method '", method,
               "' (exact|heur|hybrid)");

  // Merge: sort by tau, keep the Pareto frontier.
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.tau != b.tau) return a.tau < b.tau;
              return a.theta_lp > b.theta_lp;
            });
  std::vector<ParetoPoint> frontier;
  double best_theta = -1.0;
  for (ParetoPoint& p : points) {
    if (p.theta_lp > best_theta + 1e-12) {
      best_theta = p.theta_lp;
      frontier.push_back(std::move(p));
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    if (frontier[i].xi_lp < frontier[best].xi_lp) best = i;
  }
  print_points(out, frontier, best, k);

  if (simulate) {
    out << "\nsimulated candidates:\n";
    out << "   #   Theta_sim     xi_sim\n";
    std::size_t best_sim = 0;
    double best_xi = 0.0;
    for (std::size_t i = 0; i < frontier.size() && i < k; ++i) {
      const Rrg tuned = apply_config(in.rrg, frontier[i].config);
      const sim::SimResult sim = sim::simulate_throughput(tuned);
      const double xi = frontier[i].tau / sim.theta;
      if (i == 0 || xi < best_xi) {
        best_xi = xi;
        best_sim = i;
      }
      out << format_fixed(static_cast<double>(i), 0) << "   "
          << format_fixed(sim.theta, 4) << "     " << format_fixed(xi, 4)
          << "\n";
    }
    out << "best by simulation: #" << best_sim << " (xi = "
        << format_fixed(best_xi, 4) << ")\n";
  }
  if (save.has_value()) {
    const Rrg tuned = apply_config(in.rrg, frontier[best].config);
    io::save_text_file(*save, io::write_rrg(tuned, in.name + "_optimized"));
    out << "saved best configuration to " << *save << "\n";
  }
  return 0;
}

int cmd_flow(Args& args, std::ostream& out) {
  const LoadedInput in = load_input(args);
  flow::EngineOptions eopt;
  eopt.opt.epsilon = args.get_double("epsilon", 0.05);
  eopt.opt.milp.time_limit_s = args.get_double("timeout", 6.0);
  eopt.opt.polish = args.get_flag("polish");
  eopt.sim.measure_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 20000));
  eopt.sim.runs = static_cast<std::size_t>(args.get_int("runs", 3));
  eopt.sim.seed = args.get_u64("sim-seed", 1);
  eopt.sim_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  eopt.overlap = !args.get_flag("sequential");
  // --feedback forces the pruning on from the first completed
  // simulation; --no-feedback pins it off. Default: auto (armed only on
  // budget-dominated walks).
  if (args.get_flag("feedback")) {
    eopt.feedback_pruning = flow::FeedbackPruning::kOn;
  } else if (args.get_flag("no-feedback")) {
    eopt.feedback_pruning = flow::FeedbackPruning::kOff;
  }
  eopt.opt.milp_warm = !args.get_flag("cold-milp");
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 16));
  args.finish();

  flow::Engine engine(in.rrg, eopt);
  const flow::EngineResult r = engine.run();
  out << "walk: " << r.walk.points.size() << " Pareto points, "
      << r.walk.milp_calls << " MILPs"
      << (r.walk.all_exact ? "" : " (some budgets hit)");
  if (r.pruned_steps > 0) out << ", " << r.pruned_steps << " steps pruned";
  out << "\n";
  out << "fleet: " << r.candidates_submitted << " candidates streamed, "
      << r.unique_simulations << " unique simulations\n";
  out << "   #      tau   Theta_lp   Theta_sim     xi_sim\n";
  std::size_t shown = 0;
  for (std::size_t i = 0; i < r.scored.size() && shown < k; ++i, ++shown) {
    const flow::ScoredPoint& s = r.scored[i];
    out << format_fixed(static_cast<double>(i), 0) << "    "
        << format_fixed(s.point.tau, 3) << "   "
        << format_fixed(s.point.theta_lp, 4) << "      "
        << format_fixed(s.sim.theta, 4) << "    " << format_fixed(s.xi_sim, 4)
        << (i == r.best_sim_index ? "   <== best by simulation" : "")
        << (i == r.walk.best_index ? "   <== best by xi_lp" : "") << "\n";
  }
  out << "pipeline: walk " << format_fixed(r.walk_seconds, 2)
      << "s, residual sim wait " << format_fixed(r.sim_wait_seconds, 2)
      << "s, wall " << format_fixed(r.seconds, 2) << "s ("
      << (eopt.overlap ? "overlapped" : "sequential") << ")\n";
  return 0;
}

int cmd_simulate(Args& args, std::ostream& out) {
  const LoadedInput in = load_input(args);
  const std::size_t cycles =
      static_cast<std::size_t>(args.get_int("cycles", 20000));
  const std::size_t runs = static_cast<std::size_t>(args.get_int("runs", 3));
  const std::uint64_t sim_seed = args.get_u64("sim-seed", 1);
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 1));
  const bool control = args.get_flag("control");
  const int capacity = args.get_int("capacity", 2);
  args.finish();

  if (control) {
    elastic::ControlSimOptions copt;
    copt.capacity = capacity;
    copt.measure_cycles = cycles;
    copt.runs = runs;
    copt.seed = sim_seed;
    const sim::SimResult r = elastic::simulate_control_throughput(in.rrg, copt);
    out << "SELF control network (capacity " << capacity << "): Theta = "
        << format_fixed(r.theta, 4) << " +- "
        << format_fixed(r.stderr_theta, 4) << " over " << r.cycles
        << " cycles\n";
  } else {
    sim::SimOptions sopt;
    sopt.measure_cycles = cycles;
    sopt.runs = runs;
    sopt.seed = sim_seed;
    sopt.threads = threads;
    const sim::SimResult r = sim::simulate_throughput(in.rrg, sopt);
    out << "token-level kernel: Theta = " << format_fixed(r.theta, 4)
        << " +- " << format_fixed(r.stderr_theta, 4) << " over " << r.cycles
        << " cycles\n";
  }
  return 0;
}

int cmd_generate(Args& args, std::ostream& out) {
  const std::string name = args.require("circuit");
  const std::uint64_t seed = args.get_u64("seed", 1);
  const std::string output = args.require("output");
  args.finish();

  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name(name), seed);
  io::save_text_file(output, io::write_rrg(rrg, name));
  out << "wrote " << name << " (seed " << seed << "): " << rrg.num_nodes()
      << " nodes, " << rrg.num_edges() << " edges -> " << output << "\n";
  return 0;
}

int cmd_export(Args& args, std::ostream& out) {
  const LoadedInput in = load_input(args);
  const std::string format = args.get_or("format", "rrg");
  const auto output = args.get("output");
  args.finish();

  std::string text;
  if (format == "rrg") {
    text = io::write_rrg(in.rrg, in.name);
  } else if (format == "json") {
    text = io::write_json(in.rrg, in.name);
  } else if (format == "dot") {
    text = in.rrg.to_dot();
  } else if (format == "tgmg-dot") {
    text = refined_tgmg(in.rrg).to_dot();
  } else if (format == "mps") {
    // The throughput-bound LP (eq. 4/11) of the refined TGMG, for
    // cross-checking Theta_lp with an external solver.
    text = lp::to_mps(build_throughput_lp(refined_tgmg(in.rrg)).model,
                      in.name);
  } else if (format == "verilog") {
    elastic::VerilogOptions vopt;
    text = elastic::emit_verilog(in.rrg, vopt);
  } else {
    throw InvalidInputError("unknown --format '" + format +
                            "' (rrg|json|dot|tgmg-dot|verilog)");
  }
  if (output.has_value()) {
    io::save_text_file(*output, text);
    out << "wrote " << text.size() << " bytes to " << *output << "\n";
  } else {
    out << text;
  }
  return 0;
}

int cmd_size_fifos(Args& args, std::ostream& out) {
  const LoadedInput in = load_input(args);
  elastic::FifoSizingOptions fopt;
  fopt.tolerance = args.get_double("tolerance", 0.02);
  fopt.max_capacity = args.get_int("max-capacity", 32);
  fopt.sim.measure_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 8000));
  args.finish();

  const elastic::FifoSizingResult r = elastic::size_fifos(in.rrg, fopt);
  out << "reference Theta (capacity " << fopt.max_capacity << ") = "
      << format_fixed(r.theta_reference, 4) << "\n";
  out << "smallest uniform capacity = " << r.uniform_capacity
      << "  (Theta " << format_fixed(r.theta_uniform, 4) << ")\n";
  int trimmed = 0, stages = 0;
  for (EdgeId e = 0; e < in.rrg.num_edges(); ++e) {
    if (in.rrg.buffers(e) == 0) continue;
    ++stages;
    if (r.capacity[e] < r.uniform_capacity) ++trimmed;
  }
  out << "per-edge trim: " << trimmed << "/" << stages
      << " channels reduced to capacity 1 (final Theta "
      << format_fixed(r.theta_final, 4) << ", " << r.sim_evals
      << " simulations)\n";
  return 0;
}

int cmd_min_area(Args& args, std::ostream& out) {
  const LoadedInput in = load_input(args);
  const double requested = args.get_double("period", -1.0);
  const double timeout = args.get_double("timeout", 10.0);
  args.finish();

  const retime::RetimingResult ls = retime::min_period_retiming(in.rrg);
  const double period = requested > 0 ? requested : ls.period;
  out << "min period by retiming = " << format_fixed(ls.period, 4)
      << "; sizing for period " << format_fixed(period, 4) << "\n";

  int before = 0;
  for (EdgeId e = 0; e < in.rrg.num_edges(); ++e) {
    before += in.rrg.buffers(e);
  }
  lp::MilpOptions mopt;
  mopt.time_limit_s = timeout;
  const retime::MinAreaResult result =
      retime::min_area_retiming(in.rrg, period, mopt);
  if (!result.feasible) {
    out << "infeasible: no retiming meets that period"
        << (result.exact ? "" : " within the budget") << "\n";
    return 1;
  }
  out << "buffers: " << before << " -> " << result.total_buffers
      << (result.exact ? " (optimal)" : " (budget hit; best found)")
      << "\n";
  return 0;
}

int cmd_from_bench(Args& args, std::ostream& out) {
  const std::string input = args.require("input");
  const auto output = args.get("output");
  const bool annotate = args.get_flag("annotate");
  const std::uint64_t seed = args.get_u64("seed", 1);
  args.finish();

  const bench89::BenchCircuit circuit =
      bench89::parse_bench(io::load_text_file(input), input);
  Rrg rrg = bench89::largest_scc_rrg(bench89::circuit_to_rrg(circuit));
  out << circuit.name << ": " << circuit.gates.size() << " gates -> largest "
      << "SCC " << rrg.num_nodes() << " nodes, " << rrg.num_edges()
      << " edges\n";
  if (annotate) {
    // Re-randomize per the paper's Section 5 protocol, keeping the
    // structure: tokens p=0.25 + liveness repair, delays U(0,20],
    // early-eval probability 0.4 among multi-input nodes.
    int multi_in = 0;
    for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
      if (rrg.graph().in_degree(n) >= 2) ++multi_in;
    }
    const int n_early = static_cast<int>(0.4 * multi_in + 0.5);
    rrg = bench89::annotate(rrg.graph(), n_early, {}, seed);
    out << "annotated: " << n_early << " early nodes, seed " << seed << "\n";
  }
  if (output.has_value()) {
    io::save_text_file(*output, io::write_rrg(rrg, circuit.name));
    out << "wrote " << *output << "\n";
  }
  return 0;
}

/// One JSONL result line per batch job (strings go through the shared
/// elrr::json_escape). Numeric fields use %.10g: enough
/// digits that two runs of a deterministic batch diff clean.
/// One-word outcome for scripts: jq 'select(.status != "ok")' finds
/// everything that needs a human, whatever the failure flavour.
const char* batch_status(const svc::JobResult& result) {
  switch (result.state) {
    case svc::JobState::kDone:
      return result.degraded ? "degraded" : "ok";
    case svc::JobState::kFailed: return "failed";
    case svc::JobState::kRejected: return "rejected";
    case svc::JobState::kCancelled: return "cancelled";
    default: return "unknown";
  }
}

void print_batch_result(std::ostream& out, const svc::JobResult& result) {
  char buf[320];
  out << "{\"job\": " << result.id << ", \"name\": \""
      << json_escape(result.name) << "\", \"mode\": \""
      << svc::to_string(result.mode) << "\", \"state\": \""
      << svc::to_string(result.state) << "\", \"status\": \""
      << batch_status(result) << "\"";
  // The error field travels with every non-clean outcome: the failure
  // reason, the rejection reason, or the degradation reason.
  if (!result.error.empty()) {
    out << ", \"error\": \"" << json_escape(result.error) << "\"";
  }
  // Metrics are emitted only for completed jobs: a cancelled job's
  // zero-initialized xi fields would read as measured values. A
  // degraded job's metrics are real (heuristic-flow) numbers and stay.
  if (result.state == svc::JobState::kFailed ||
      result.state == svc::JobState::kRejected) {
    // no metrics
  } else if ((result.mode == svc::JobMode::kMinEffCyc ||
              result.mode == svc::JobMode::kPortfolio) &&
             result.state == svc::JobState::kDone) {
    const flow::CircuitResult& circuit = result.circuit;
    std::snprintf(buf, sizeof(buf),
                  ", \"xi_star\": %.10g, \"xi_nee\": %.10g, "
                  "\"xi_lp_min\": %.10g, \"xi_sim_min\": %.10g, "
                  "\"improve_percent\": %.10g, \"candidates\": %zu, "
                  "\"all_exact\": %s",
                  circuit.xi_star, circuit.xi_nee, circuit.xi_lp_min,
                  circuit.xi_sim_min, circuit.improve_percent,
                  circuit.candidates.size(),
                  circuit.all_exact ? "true" : "false");
    out << buf;
    // The portfolio's anytime leg: when the heuristic answer landed and
    // how good it was, next to the exact numbers it raced.
    if (result.mode == svc::JobMode::kPortfolio &&
        result.stats.anytime_ready) {
      std::snprintf(buf, sizeof(buf),
                    ", \"anytime_xi\": %.10g, \"anytime_s\": %.4f",
                    result.stats.anytime_xi, result.stats.anytime_seconds);
      out << buf;
    }
  } else if (result.state == svc::JobState::kDone) {
    std::snprintf(buf, sizeof(buf),
                  ", \"tau\": %.10g, \"theta_sim\": %.10g, \"xi_sim\": %.10g",
                  result.tau, result.theta_sim, result.xi_sim);
    out << buf;
  }
  const svc::JobStats& stats = result.stats;
  std::snprintf(buf, sizeof(buf),
                ", \"cache_hit\": %s, \"disk_cache_hit\": %s, "
                "\"retries\": %zu, \"stalled_workers\": %zu, "
                "\"candidates_walked\": %zu, "
                "\"sim_jobs\": %zu, \"unique_sims\": %zu, \"wall_s\": %.4f}",
                stats.job_cache_hit ? "true" : "false",
                stats.disk_cache_hit ? "true" : "false", stats.retries,
                stats.stalled_workers, stats.candidates_walked,
                stats.sim_jobs, stats.unique_simulations,
                stats.wall_seconds);
  out << buf << "\n";
}

/// The `{"trace_summary": true, ...}` JSONL record: per-phase latency
/// aggregates from the obs histograms plus the named counters and the
/// ring-wrap drop count. The batch summary stream carries it whenever
/// tracing is armed. The body is obs::summary_json(), shared with the
/// periodic stats snapshot so `elrr top` and the batch stream agree.
std::string trace_summary_record() {
  return "{\"trace_summary\": true, " + obs::summary_json() + "}\n";
}

/// Nonzero ring-wrap drops mean the summary under-counts: say so once,
/// on stderr, with the knob that fixes it. Shared by `elrr batch` and
/// `elrr trace-summary`.
void warn_dropped_spans(std::ostream& err, std::uint64_t dropped,
                        std::size_t capacity) {
  if (dropped == 0) return;
  err << "warning: " << dropped << " span(s) dropped (per-thread ring "
      << "capacity " << capacity
      << "); totals under-count -- raise ELRR_OBS_BUF\n";
}

int cmd_batch(Args& args, std::ostream& out, std::ostream& err) {
  // Manifest path: positional (elrr batch jobs.jsonl) or --manifest.
  std::string manifest_path = args.get_or("manifest", "");
  if (manifest_path.empty() && !args.positional().empty()) {
    manifest_path = args.positional().front();
  }
  ELRR_REQUIRE(!manifest_path.empty(),
               "usage: elrr batch <manifest.jsonl> [--jobs N] [--threads T] "
               "[--output <file.jsonl>]");
  // Knob validation mirrors FlowOptions::from_env: malformed or
  // out-of-range values throw instead of being silently coerced (the
  // same 4096 caps as ELRR_SIM_THREADS).
  flow::FlowOptions base = flow::FlowOptions::from_env();
  const std::uint64_t jobs = args.get_u64("jobs", 1);
  ELRR_REQUIRE(jobs >= 1 && jobs <= 4096, "--jobs must be in [1, 4096], got ",
               jobs);
  const std::uint64_t threads =
      args.get_u64("threads", static_cast<std::uint64_t>(base.sim_threads));
  ELRR_REQUIRE(threads <= 4096, "--threads must be in [0, 4096], got ",
               threads);
  const auto output = args.get("output");
  const bool resume = args.get_flag("resume");
  const auto trace = args.get("trace");
  args.finish();
  if (trace.has_value()) {
    ELRR_REQUIRE(!trace->empty(), "--trace needs a non-empty path");
    // --trace is ELRR_TRACE spelled as a flag: arm the obs layer here
    // and export the env variable so the proc tier's worker processes
    // (which inherit the environment) arm too and ship their spans back
    // over the pipe protocol.
    ::setenv("ELRR_TRACE", trace->c_str(), 1);
    obs::configure(*trace, obs::ring_capacity());
  }

  const std::vector<svc::ManifestEntry> entries =
      svc::parse_manifest(io::load_text_file(manifest_path));
  base.sim_threads = static_cast<std::size_t>(threads);

  // from_env layers the robustness knobs (ELRR_JOB_DEADLINE,
  // ELRR_RETRY_MAX, ELRR_DISK_CACHE_DIR, ELRR_DISK_CACHE_CAP) on top of
  // the fleet knobs; --threads then overrides the fleet pool size.
  svc::SchedulerOptions sopt = svc::SchedulerOptions::from_env();
  // --resume is the crash-recovery path: re-run the same manifest after
  // an interrupt and let the persistent cache serve every job the dead
  // run completed -- bit-identically, per the disk-cache contract -- so
  // only the unfinished tail costs anything. Without a disk cache there
  // is nothing to resume *from*, which is a usage error, not a silent
  // full re-run.
  ELRR_REQUIRE(!resume || !sopt.disk_cache_dir.empty(),
               "--resume requires ELRR_DISK_CACHE_DIR (the persistent "
               "cache is what a resumed batch restores from)");
  sopt.workers = static_cast<std::size_t>(jobs);
  sopt.sim_threads = base.sim_threads;
  // Submit the whole manifest before dispatch starts: the pick order --
  // and with it the priority/fair-share policy -- then depends only on
  // the manifest, not on submission timing.
  sopt.start_paused = true;
  svc::Scheduler scheduler(sopt);
  // ELRR_PORTFOLIO=1 flips the batch-wide *default* mode to the anytime
  // portfolio; lines with an explicit "mode" keep it.
  const svc::JobMode default_mode = env::boolean("ELRR_PORTFOLIO", false)
                                        ? svc::JobMode::kPortfolio
                                        : svc::JobMode::kMinEffCyc;
  for (const svc::ManifestEntry& entry : entries) {
    scheduler.submit(svc::materialize(entry, base, default_mode));
  }
  err << "batch: " << entries.size() << " jobs from " << manifest_path
      << ", " << jobs << " worker(s), fleet threads "
      << (threads == 0 ? std::string("auto") : std::to_string(threads))
      << "\n";
  scheduler.resume();
  const std::vector<svc::JobResult> results = scheduler.wait_all();

  std::ostringstream lines;
  // Exit-code policy: anything that did not produce a result the caller
  // asked for -- a failed job *or* an admission rejection -- fails the
  // batch. Degraded jobs completed (flagged) and do not.
  std::size_t failed = 0;
  std::size_t resumed = 0;
  for (const svc::JobResult& result : results) {
    print_batch_result(lines, result);
    failed += result.state == svc::JobState::kFailed ||
                      result.state == svc::JobState::kRejected
                  ? 1
                  : 0;
    resumed += result.stats.disk_cache_hit ? 1 : 0;
  }
  // Trailing summary record keeps the stream pure JSONL while still
  // reporting batch-wide stats. Every layer's counters ride one nested
  // "stats" object -- scheduler, shared fleet cache, proc tier, disk
  // cache (when enabled) and the MILP session stats summed over the
  // jobs. The object itself is Scheduler::stats_json(), shared with the
  // periodic stats snapshot; after wait_all() every job is terminal, so
  // its MILP aggregation equals the old sum over `results`.
  const svc::SchedulerStats stats = scheduler.stats();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"summary\": true, \"jobs\": %zu, \"done\": %zu, "
                "\"failed\": %zu, \"rejected\": %zu",
                stats.submitted, stats.completed, stats.failed,
                stats.rejected);
  lines << buf;
  // The resumed count only exists on --resume runs: it answers "how much
  // of the dead batch survived", a question a fresh batch never asks.
  if (resume) lines << ", \"resumed\": " << resumed;
  lines << ", \"stats\": " << scheduler.stats_json() << "}\n";
  // The machine-readable twin of `elrr trace-summary`: per-phase
  // latency aggregates from the obs histograms, in the same stream.
  if (obs::armed()) lines << trace_summary_record();

  if (output.has_value()) {
    io::save_text_file(*output, lines.str());
    err << "batch: wrote " << results.size() << " result(s) + summary to "
        << *output << "\n";
  } else {
    out << lines.str();
  }
  if (resume) {
    err << "batch: resumed " << resumed << "/" << results.size()
        << " job(s) from the persistent cache\n";
  }
  if (obs::armed() && !obs::trace_path().empty()) {
    obs::write_trace(obs::trace_path());
    err << "batch: wrote trace to "
        << obs::expand_trace_path(obs::trace_path()) << "\n";
  }
  if (obs::armed()) {
    warn_dropped_spans(err, obs::dropped_spans(), obs::ring_capacity());
  }
  return failed > 0 ? 1 : 0;
}

/// `elrr work`: the body of one process-isolated fleet worker. The
/// supervisor (sim::proc) spawned us with the request pipe on stdin and
/// the response pipe on stdout; nothing else may write to stdout, and
/// ELRR_FAILPOINTS was already re-armed by run() before dispatch, so a
/// chaos schedule naming `proc.worker` fires *here*, in the child.
int cmd_work(Args& args) {
  args.finish();
  // A worker inherits ELRR_TRACE (that is how it arms), but its spans
  // travel back over the pipe protocol; writing the trace file itself
  // would clobber the supervisor's export.
  obs::set_export_on_exit(false);
  return sim::proc::worker_loop(/*in_fd=*/0, /*out_fd=*/1);
}

/// `elrr trace-summary <trace.json>`: aggregate per-phase latency table
/// from a Chrome trace written by --trace / ELRR_TRACE. Percentiles
/// here are *exact* order statistics over the recorded span durations
/// (the batch-stream trace_summary record interpolates from log2
/// histogram buckets; the two agree to within one bucket bracket).
int cmd_trace_summary(Args& args, std::ostream& out, std::ostream& err) {
  std::string path = args.get_or("input", "");
  if (path.empty() && !args.positional().empty()) {
    path = args.positional().front();
  }
  ELRR_REQUIRE(!path.empty(),
               "usage: elrr trace-summary <trace.json> [--json]");
  const bool json = args.get_flag("json");
  args.finish();
  const std::string text = io::load_text_file(path);

  // The exporter writes one complete-span event per line with a fixed
  // field order; scan for `"ph": "X"` lines and pull name + dur.
  std::map<std::string, std::vector<double>> durations_us;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find("\"ph\": \"X\"") == std::string::npos) continue;
    const std::string name_tag = "\"name\": \"";
    const std::string dur_tag = "\"dur\": ";
    const std::size_t name_at = line.find(name_tag);
    const std::size_t dur_at = line.find(dur_tag);
    if (name_at == std::string::npos || dur_at == std::string::npos) continue;
    const std::size_t name_from = name_at + name_tag.size();
    const std::size_t name_to = line.find('"', name_from);
    if (name_to == std::string::npos) continue;
    durations_us[line.substr(name_from, name_to - name_from)].push_back(
        std::strtod(line.c_str() + dur_at + dur_tag.size(), nullptr));
  }
  ELRR_REQUIRE(!durations_us.empty(), "no complete-span events in ", path,
               " (expected a trace written by `elrr batch --trace` or "
               "ELRR_TRACE)");

  // The exporter records its ring health in otherData; surface it here
  // so a wrapped ring (under-counted totals) is visible from the
  // summary alone. Missing keys (older traces) render as absent.
  const std::optional<double> dropped =
      bench_json::find_number(text, "otherData", "dropped_spans");
  const std::optional<double> capacity =
      bench_json::find_number(text, "otherData", "ring_capacity");

  if (json) {
    // Machine-readable twin of the table, mirroring `bench-diff --json`
    // conventions: one top-level object, per-phase rows in an array,
    // ring health at the tail. Exit code unchanged.
    char buf[256];
    out << "{\n  \"input\": \"" << json_escape(path)
        << "\",\n  \"phases\": [\n";
    std::size_t at = 0;
    for (auto& [name, durs] : durations_us) {
      std::sort(durs.begin(), durs.end());
      const auto pct = [&durs](double q) {
        const std::size_t idx = static_cast<std::size_t>(
            q * static_cast<double>(durs.size() - 1) + 0.5);
        return durs[std::min(idx, durs.size() - 1)] * 1e-6;
      };
      double total = 0.0;
      for (const double d : durs) total += d;
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"count\": %zu, "
                    "\"total_s\": %.6f, \"p50_s\": %.9f, \"p95_s\": %.9f, "
                    "\"p99_s\": %.9f}%s\n",
                    json_escape(name).c_str(), durs.size(), total * 1e-6,
                    pct(0.50), pct(0.95), pct(0.99),
                    ++at < durations_us.size() ? "," : "");
      out << buf;
    }
    out << "  ]";
    if (dropped.has_value()) {
      out << ",\n  \"dropped_spans\": "
          << static_cast<std::uint64_t>(*dropped);
    }
    if (capacity.has_value()) {
      out << ",\n  \"ring_capacity\": "
          << static_cast<std::uint64_t>(*capacity);
    }
    out << "\n}\n";
  } else {
    out << "phase                    count      total_s       p50_s       "
           "p95_s       p99_s\n";
    char row[200];
    for (auto& [name, durs] : durations_us) {
      std::sort(durs.begin(), durs.end());
      const auto pct = [&durs](double q) {
        const std::size_t at = static_cast<std::size_t>(
            q * static_cast<double>(durs.size() - 1) + 0.5);
        return durs[std::min(at, durs.size() - 1)] * 1e-6;
      };
      double total = 0.0;
      for (const double d : durs) total += d;
      std::snprintf(row, sizeof(row),
                    "%-22s %8zu %12.6f %11.6f %11.6f %11.6f\n", name.c_str(),
                    durs.size(), total * 1e-6, pct(0.50), pct(0.95),
                    pct(0.99));
      out << row;
    }
    if (dropped.has_value() && capacity.has_value()) {
      out << "spans dropped: " << static_cast<std::uint64_t>(*dropped)
          << " (per-thread ring capacity "
          << static_cast<std::uint64_t>(*capacity) << ")\n";
    }
  }
  if (dropped.has_value() && capacity.has_value()) {
    warn_dropped_spans(err, static_cast<std::uint64_t>(*dropped),
                       static_cast<std::size_t>(*capacity));
  }
  return 0;
}

/// `elrr postmortem <file>`: render a flight-recorder crash dump (the
/// line-oriented `ELRR-POSTMORTEM 1` format written by the fatal-signal
/// handlers; see src/obs/recorder.hpp) as a human postmortem report:
/// reason and pid, ring health, the identities that were in flight when
/// the process died, the last recorded events with timestamps rebased
/// to the first shown event, and the counter/histogram registry mirror.
int cmd_postmortem(Args& args, std::ostream& out) {
  std::string path = args.get_or("input", "");
  if (path.empty() && !args.positional().empty()) {
    path = args.positional().front();
  }
  ELRR_REQUIRE(!path.empty(), "usage: elrr postmortem <postmortem.txt>");
  args.finish();
  const std::string text = io::load_text_file(path);

  // One space-separated `key=` field out of a dump line; the writer
  // (LineBuf in the signal handler) never emits spaces inside a value.
  const auto field = [](const std::string& line,
                        const char* tag) -> std::string {
    const std::size_t at = line.find(tag);
    if (at == std::string::npos) return "";
    const std::size_t from = at + std::strlen(tag);
    return line.substr(from, line.find(' ', from) - from);
  };
  const auto num = [](const std::string& s) -> long long {
    return s.empty() ? 0 : std::strtoll(s.c_str(), nullptr, 10);
  };

  struct Event {
    long long seq = 0, t_ns = 0, tid = 0, a = 0, b = 0;
    std::string name;
  };
  std::string reason, pid;
  long long recorded = 0, dropped = 0;
  std::vector<std::string> inflight;
  std::vector<Event> events;
  std::vector<std::string> counters, hists;
  bool header = false, complete = false;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line == "ELRR-POSTMORTEM 1") {
      header = true;
    } else if (line.rfind("reason: ", 0) == 0) {
      reason = line.substr(8);
    } else if (line.rfind("pid: ", 0) == 0) {
      pid = line.substr(5);
    } else if (line.rfind("events_recorded: ", 0) == 0) {
      recorded = num(line.substr(17));
    } else if (line.rfind("events_dropped: ", 0) == 0) {
      dropped = num(line.substr(16));
    } else if (line.rfind("inflight: ", 0) == 0) {
      inflight.push_back(line.substr(10));
    } else if (line.rfind("event: ", 0) == 0) {
      Event ev;
      ev.seq = num(field(line, "seq="));
      ev.t_ns = num(field(line, "t_ns="));
      ev.tid = num(field(line, "tid="));
      ev.name = field(line, "name=");
      ev.a = num(field(line, "a="));
      ev.b = num(field(line, "b="));
      events.push_back(std::move(ev));
    } else if (line.rfind("counter: ", 0) == 0) {
      counters.push_back(line.substr(9));
    } else if (line.rfind("hist: ", 0) == 0) {
      hists.push_back(line.substr(6));
    } else if (line == "end") {
      complete = true;
    }
  }
  ELRR_REQUIRE(header, path,
               " is not a flight-recorder postmortem (missing "
               "'ELRR-POSTMORTEM 1' header; expected a file written to "
               "ELRR_POSTMORTEM_DIR by a crashing elrr process)");

  out << "postmortem: " << path << "\n";
  out << "  reason: " << (reason.empty() ? "(unknown)" : reason)
      << "    pid: " << (pid.empty() ? "?" : pid) << "\n";
  out << "  events: " << recorded << " recorded, " << dropped
      << " dropped" << (dropped > 0 ? " (ring wrapped; oldest lost)" : "")
      << "\n";
  if (!complete) {
    out << "  WARNING: no 'end' marker -- dump is truncated\n";
  }
  if (!inflight.empty()) {
    out << "  in flight when the process died:\n";
    for (const std::string& row : inflight) out << "    " << row << "\n";
  } else {
    out << "  in flight when the process died: (nothing recorded)\n";
  }
  if (!events.empty()) {
    out << "  last " << events.size()
        << " event(s), oldest first (t rebased to the first shown):\n";
    out << "        seq      t(+ms)   tid  event                   "
           "a            b\n";
    const long long t0 = events.front().t_ns;
    char row[160];
    for (const Event& ev : events) {
      std::snprintf(row, sizeof(row),
                    "    %7lld %11.3f %5lld  %-22s %-12lld %lld\n", ev.seq,
                    static_cast<double>(ev.t_ns - t0) * 1e-6, ev.tid,
                    ev.name.c_str(), ev.a, ev.b);
      out << row;
    }
  }
  if (!counters.empty()) {
    out << "  counters:\n";
    for (const std::string& row : counters) out << "    " << row << "\n";
  }
  if (!hists.empty()) {
    out << "  phase latencies (log2-bucket upper bounds, ns):\n";
    for (const std::string& row : hists) out << "    " << row << "\n";
  }
  return 0;
}

/// `elrr top <snapshot.json>`: a one-shot text dashboard over the
/// periodic stats snapshot published by ELRR_STATS_SNAPSHOT (see
/// svc::Scheduler::write_stats_snapshot): queue depths, fleet
/// utilization, cache hit rates and -- when tracing is armed -- the
/// per-phase latency percentiles. Pair with watch(1) for a live view:
/// `watch -n1 elrr top /tmp/elrr-stats.json`.
int cmd_top(Args& args, std::ostream& out) {
  std::string path = args.get_or("input", "");
  if (path.empty() && !args.positional().empty()) {
    path = args.positional().front();
  }
  ELRR_REQUIRE(!path.empty(), "usage: elrr top <snapshot.json>");
  args.finish();
  const std::string text = io::load_text_file(path);
  // The snapshot is machine-written with a fixed shape (the same
  // contract BENCH_sim.json relies on), so the positional scanner is
  // exact here too.
  const auto get = [&text](const char* section,
                           const char* key) -> std::optional<double> {
    return bench_json::find_number(text, section, key);
  };
  ELRR_REQUIRE(get("snapshot", "uptime_s").has_value(), path,
               " is not a stats snapshot (expected the JSON published "
               "by ELRR_STATS_SNAPSHOT=path:period_ms)");
  const auto n = [](std::optional<double> v) -> long long {
    return v.has_value() ? static_cast<long long>(*v) : 0;
  };
  char row[256];
  std::snprintf(row, sizeof(row),
                "elrr top -- %s\nuptime %.1fs   queued %lld   running %lld"
                "   scheduler workers %lld\n",
                path.c_str(), *get("snapshot", "uptime_s"),
                n(get("snapshot", "queued")), n(get("snapshot", "running")),
                n(get("snapshot", "workers")));
  out << row;
  const long long pool = n(get("fleet", "pool"));
  const long long busy = n(get("fleet", "busy"));
  std::snprintf(row, sizeof(row),
                "fleet: pool %lld, busy %lld (%.0f%%), proc workers %lld\n",
                pool, busy,
                pool > 0 ? 100.0 * static_cast<double>(busy) /
                               static_cast<double>(pool)
                         : 0.0,
                n(get("fleet", "proc_workers")));
  out << row;
  std::snprintf(row, sizeof(row),
                "jobs:  submitted %lld, completed %lld, failed %lld, "
                "rejected %lld, retries %lld\n",
                n(get("scheduler", "submitted")),
                n(get("scheduler", "completed")),
                n(get("scheduler", "failed")),
                n(get("scheduler", "rejected")),
                n(get("scheduler", "retries")));
  out << row;
  const long long hits = n(get("fleet_cache", "hits"));
  const long long misses = n(get("fleet_cache", "misses"));
  std::snprintf(row, sizeof(row),
                "cache: fleet %.1f%% hit (%lld/%lld), job hits %lld",
                hits + misses > 0 ? 100.0 * static_cast<double>(hits) /
                                        static_cast<double>(hits + misses)
                                  : 0.0,
                hits, hits + misses,
                n(get("scheduler", "job_cache_hits")));
  out << row;
  const auto disk_hits = get("disk_cache", "hits");
  if (disk_hits.has_value()) {
    const long long dh = n(disk_hits);
    const long long dm = n(get("disk_cache", "misses"));
    std::snprintf(row, sizeof(row), ", disk %.1f%% hit (%lld/%lld)",
                  dh + dm > 0 ? 100.0 * static_cast<double>(dh) /
                                    static_cast<double>(dh + dm)
                              : 0.0,
                  dh, dh + dm);
    out << row;
  }
  out << "\n";
  if (n(get("proc", "workers")) > 0 || n(get("proc", "spawns")) > 0) {
    std::snprintf(row, sizeof(row),
                  "proc:  spawns %lld, crashes %lld, respawns %lld, "
                  "redispatches %lld, postmortems %lld\n",
                  n(get("proc", "spawns")), n(get("proc", "crashes")),
                  n(get("proc", "respawns")),
                  n(get("proc", "redispatches")),
                  n(get("proc", "postmortems")));
    out << row;
  }
  std::snprintf(row, sizeof(row), "milp:  solves %lld, %.2fs total\n",
                n(get("milp", "solves")),
                get("milp", "solve_seconds").value_or(0.0));
  out << row;

  // Per-phase percentiles from the embedded obs summary: scan the
  // "phases" array (same fixed writer shape) for its row objects.
  const std::size_t obs_at = text.find("\"obs\": {");
  const std::size_t phases_at =
      obs_at != std::string::npos ? text.find("\"phases\": [", obs_at)
                                  : std::string::npos;
  if (phases_at != std::string::npos) {
    const std::size_t phases_end = text.find(']', phases_at);
    std::size_t at = phases_at;
    bool printed_header = false;
    while (true) {
      const std::string name_tag = "{\"name\": \"";
      at = text.find(name_tag, at);
      if (at == std::string::npos || at > phases_end) break;
      const std::size_t name_from = at + name_tag.size();
      const std::size_t name_to = text.find('"', name_from);
      if (name_to == std::string::npos) break;
      const std::string name = text.substr(name_from, name_to - name_from);
      const std::size_t obj_end = text.find('}', name_to);
      const std::string obj = text.substr(at, obj_end - at);
      const auto fnum = [&obj](const char* tag) -> double {
        const std::size_t tag_at = obj.find(tag);
        return tag_at == std::string::npos
                   ? 0.0
                   : std::strtod(obj.c_str() + tag_at + std::strlen(tag),
                                 nullptr);
      };
      if (!printed_header) {
        out << "phases:\n";
        out << "  phase                    count      total_s       p50_s"
               "       p95_s       p99_s\n";
        printed_header = true;
      }
      std::snprintf(row, sizeof(row),
                    "  %-22s %8lld %12.6f %11.6f %11.6f %11.6f\n",
                    name.c_str(),
                    static_cast<long long>(fnum("\"count\": ")),
                    fnum("\"total_s\": "), fnum("\"p50_s\": "),
                    fnum("\"p95_s\": "), fnum("\"p99_s\": "));
      out << row;
      at = obj_end;
    }
  }
  return 0;
}

int cmd_bench_diff(Args& args, std::ostream& out) {
  const std::string new_path = args.require("new");
  const std::string baseline_path = args.require("baseline");
  const double max_regression = args.get_double("max-regression", 0.10);
  const bool json = args.get_flag("json");
  args.finish();
  ELRR_REQUIRE(max_regression >= 0.0 && max_regression < 1.0,
               "--max-regression must be in [0, 1)");

  const std::string fresh = io::load_text_file(new_path);
  const std::string baseline = io::load_text_file(baseline_path);

  // Sections and their metric: per-kernel cases report throughput
  // (higher is better), fleet/batch sections report seconds of a fixed
  // workload (lower is better). `better` is new/old folded so that
  // > 1 always means this build is faster.
  struct Section {
    const char* name;
    const char* key;
    bool higher_is_better;
    /// Per-section regression ceiling; 0 = the global --max-regression.
    /// The obs section pins the *disarmed overhead* of the tracing
    /// layer, which must stay within noise -- a 2% gate, not 10%.
    double max_regression = 0.0;
  };
  constexpr Section kSections[] = {
      {"small", "cycles_per_sec", true},
      {"medium", "cycles_per_sec", true},
      {"large", "cycles_per_sec", true},
      {"telescopic", "cycles_per_sec", true},
      {"fleet", "fleet_seconds", false},
      {"fleet_dedup", "fleet_seconds", false},
      {"pipeline", "overlapped_seconds", false},
      {"batch", "scheduler_seconds", false},
      {"milp", "warm_seconds", false},
      {"proc", "proc_seconds", false},
      {"obs", "fleet_seconds", false, 0.02},
      // The armed flight recorder rides the same 2% gate: one event per
      // slice dispatch must stay in the noise floor too.
      {"obs", "recorder_seconds", false, 0.02},
  };

  // Evaluate every section first; render (text or --json) after, so both
  // formats agree by construction. Status: "pass" / "fail" (compared),
  // "warn" (present in only one file -- trajectories gain sections over
  // time, and a fresh run must stay comparable against baselines that
  // predate them), "missing" (in neither).
  struct Evaluated {
    const Section* section;
    std::optional<double> old_value, new_value;
    double speedup = 0.0;
    const char* status = "missing";
  };
  std::vector<Evaluated> rows;
  int regressions = 0;
  int compared = 0;
  for (const Section& section : kSections) {
    Evaluated row;
    row.section = &section;
    row.old_value = bench_json::find_number(baseline, section.name, section.key);
    row.new_value = bench_json::find_number(fresh, section.name, section.key);
    if (!row.old_value.has_value() || !row.new_value.has_value()) {
      row.status = row.old_value.has_value() != row.new_value.has_value()
                       ? "warn"
                       : "missing";
      rows.push_back(row);
      continue;
    }
    row.speedup = section.higher_is_better ? *row.new_value / *row.old_value
                                           : *row.old_value / *row.new_value;
    // "Regressed" means the metric itself worsened by more than the
    // threshold: throughput dropped below (1 - F) x baseline, or seconds
    // grew past (1 + F) x baseline -- symmetric in the metric, not in
    // the folded speedup.
    const double threshold = section.max_regression > 0.0
                                 ? section.max_regression
                                 : max_regression;
    const bool regressed =
        section.higher_is_better
            ? *row.new_value < *row.old_value * (1.0 - threshold)
            : *row.new_value > *row.old_value * (1.0 + threshold);
    row.status = regressed ? "fail" : "pass";
    ++compared;
    regressions += regressed ? 1 : 0;
    rows.push_back(row);
  }
  if (json) {
    // Machine-readable: CI annotates per-section instead of parsing the
    // table. One top-level object; exit code unchanged.
    char buf[256];
    out << "{\n  \"baseline\": \"" << json_escape(baseline_path)
        << "\",\n  \"new\": \"" << json_escape(new_path) << "\",\n";
    std::snprintf(buf, sizeof(buf), "  \"max_regression\": %.4f,\n",
                  max_regression);
    out << buf << "  \"sections\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Evaluated& row = rows[i];
      out << "    {\"name\": \"" << row.section->name << "\", \"metric\": \""
          << row.section->key << "\", \"status\": \"" << row.status << "\"";
      if (row.old_value.has_value()) {
        std::snprintf(buf, sizeof(buf), ", \"baseline\": %.6g",
                      *row.old_value);
        out << buf;
      }
      if (row.new_value.has_value()) {
        std::snprintf(buf, sizeof(buf), ", \"new\": %.6g", *row.new_value);
        out << buf;
      }
      if (std::strcmp(row.status, "pass") == 0 ||
          std::strcmp(row.status, "fail") == 0) {
        std::snprintf(buf, sizeof(buf), ", \"speedup\": %.4f", row.speedup);
        out << buf;
      }
      out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"compared\": " << compared
        << ",\n  \"regressions\": " << regressions << ",\n  \"status\": \""
        << (regressions > 0 ? "fail" : "pass") << "\"\n}\n";
    // After the JSON: CI always gets the machine-readable per-section
    // report, even when nothing was comparable (which is still an error).
    ELRR_REQUIRE(compared > 0, "no comparable sections between ", new_path,
                 " and ", baseline_path);
    return regressions > 0 ? 1 : 0;
  }

  out << "section        baseline          new    speedup\n";
  for (const Evaluated& row : rows) {
    if (std::strcmp(row.status, "warn") == 0) {
      out << "warning: section '" << row.section->name << "' missing from "
          << (row.old_value.has_value() ? new_path : baseline_path)
          << "; skipped\n";
      continue;
    }
    if (std::strcmp(row.status, "missing") == 0) {
      out << row.section->name << ": (missing; skipped)\n";
      continue;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%-12s %12.5g %12.5g    %5.2fx%s\n",
                  row.section->name, *row.old_value, *row.new_value,
                  row.speedup,
                  std::strcmp(row.status, "fail") == 0 ? "  <== REGRESSION"
                                                       : "");
    out << line;
  }
  // The per-section table (including every 'missing from <file>'
  // diagnostic) renders before this throws: a no-overlap diff still
  // tells the user which file lacked what.
  ELRR_REQUIRE(compared > 0, "no comparable sections between ", new_path,
               " and ", baseline_path);
  if (regressions > 0) {
    out << regressions << " section(s) regressed more than "
        << format_fixed(max_regression * 100.0, 0) << "% vs " << baseline_path
        << "\n";
    return 1;
  }
  out << "no regression beyond " << format_fixed(max_regression * 100.0, 0)
      << "% (" << compared << " sections)\n";
  return 0;
}

}  // namespace

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  try {
    // Arm fail-point injection, tracing and the flight recorder before
    // any command logic: a malformed ELRR_FAILPOINTS / ELRR_TRACE /
    // ELRR_OBS_BUF / ELRR_POSTMORTEM_DIR / ELRR_POSTMORTEM_BUF throws
    // here, naming the variable, before any work starts.
    failpoint::configure_from_env();
    obs::configure_from_env();
    obs::rec::configure_from_env();
    Args args(argc, argv);
    const std::string& cmd = args.command();
    if (cmd.empty() || cmd == "help") {
      out << kUsage;
      return cmd.empty() ? 2 : 0;
    }
    if (cmd == "analyze") return cmd_analyze(args, out);
    if (cmd == "optimize") return cmd_optimize(args, out);
    if (cmd == "flow") return cmd_flow(args, out);
    if (cmd == "simulate") return cmd_simulate(args, out);
    if (cmd == "generate") return cmd_generate(args, out);
    if (cmd == "export") return cmd_export(args, out);
    if (cmd == "size-fifos") return cmd_size_fifos(args, out);
    if (cmd == "min-area") return cmd_min_area(args, out);
    if (cmd == "from-bench") return cmd_from_bench(args, out);
    if (cmd == "batch") return cmd_batch(args, out, err);
    if (cmd == "work") return cmd_work(args);
    if (cmd == "trace-summary") return cmd_trace_summary(args, out, err);
    if (cmd == "postmortem") return cmd_postmortem(args, out);
    if (cmd == "top") return cmd_top(args, out);
    if (cmd == "bench-diff") return cmd_bench_diff(args, out);
    err << "elrr: unknown command '" << cmd << "' (try `elrr help`)\n";
    return 2;
  } catch (const Error& e) {
    err << "elrr: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "elrr: internal error: " << e.what() << "\n";
    return 3;
  }
}

}  // namespace elrr::cli
