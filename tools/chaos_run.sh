#!/usr/bin/env bash
# tools/chaos_run.sh -- the chaos harness driver.
#
# Builds the chaos suite and runs the `chaos`-labelled ctest entries:
# ISCAS batches through the scheduler under seeded single-fail-point
# schedules (worker throws, MILP faults, walk-step faults, flat-kernel
# degradation, injected stalls, disk-cache corruption), asserting
# termination, fleet reusability and bit-identical non-faulted results.
#
# Logs land in $BUILD_DIR/chaos_logs/ (ctest's --output-log plus the
# LastTest log), which CI uploads as an artifact when the run fails.
# Worker processes spawned by the proc-fleet chaos tests write their
# stderr under chaos_logs/proc/ (via ELRR_PROC_LOG_DIR), so a dead
# worker's last words ride the same artifact.
#
# The harness runs with tracing armed (ELRR_TRACE): spawned `elrr work`
# workers arm themselves from the inherited environment and ship their
# spans back over the response protocol, so the span section is
# exercised under every crash/redispatch schedule; any trace JSON an
# `elrr` process writes lands in chaos_logs/trace/ and rides the same
# failure artifact (%p in the path keeps concurrent processes from
# clobbering each other).
#
# Usage:
#   tools/chaos_run.sh                 # build + run every chaos test
#   ELRR_CHAOS_FILTER=Stuck tools/chaos_run.sh   # -R regex subset
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
FILTER=${ELRR_CHAOS_FILTER:-}
LOG_DIR="$BUILD_DIR/chaos_logs"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target elrr_chaos_tests

mkdir -p "$LOG_DIR" "$LOG_DIR/proc" "$LOG_DIR/trace" "$LOG_DIR/postmortem"
# Per-slot worker stderr (crash last-words) for the proc-fleet tests.
export ELRR_PROC_LOG_DIR="$LOG_DIR/proc"
# Tracing armed across the harness (see header).
export ELRR_TRACE="$LOG_DIR/trace/trace-%p.json"
# Flight recorder armed: any process the harness kills (or that dies on
# its own) leaves a postmortem-<pid>.txt here, riding the same failure
# artifact; render with `elrr postmortem <file>`.
export ELRR_POSTMORTEM_DIR="$LOG_DIR/postmortem"
CTEST_ARGS=(-L chaos --output-on-failure --output-log "$LOG_DIR/chaos.log")
if [ -n "$FILTER" ]; then
  CTEST_ARGS+=(-R "$FILTER")
fi

status=0
ctest --test-dir "$BUILD_DIR" "${CTEST_ARGS[@]}" || status=$?
# Keep the detailed per-test log next to our own (ctest rewrites it each
# run; the artifact wants a stable snapshot).
cp -f "$BUILD_DIR/Testing/Temporary/LastTest.log" "$LOG_DIR/" 2>/dev/null || true

if [ "$status" -ne 0 ]; then
  echo "chaos run: FAILED (logs in $LOG_DIR)" >&2
  exit "$status"
fi
echo "chaos run: all green (logs in $LOG_DIR)"
