#!/usr/bin/env bash
# tools/bench_gate.sh -- the one-command simulation gate.
#
# Runs, in order:
#   1. Release build + the `sim`/`svc`/`chaos`/`lp`/`obs`-labelled ctest
#      suites (kernel/driver/fleet differential tests, the batch
#      scheduler suite, the fail-point chaos harness, the LP/MILP solver
#      suite with its warm-vs-cold session differentials, and the
#      tracing/metrics suite). The ctest runs are traced: ELRR_TRACE
#      arms every `elrr` process the tests spawn (proc-fleet workers
#      ship their spans over the response protocol under the chaos
#      schedules), and any written trace lands in $BUILD_DIR/obs_traces/
#      -- a CI failure artifact;
#   2. a fresh perf_smoke -> build/BENCH_sim.json, gated for bit-exactness
#      (its `obs` section measures tracing overhead itself, so the
#      perf steps run with ELRR_TRACE unset);
#   3. `elrr bench-diff` of that fresh run against the committed
#      BENCH_sim.json at the repo root (fails on any section >10% slower
#      -- the `obs` disarmed-overhead section at >2% -- override the
#      global threshold with ELRR_MAX_REGRESSION);
#   4. an ASan/UBSan build (-DELRR_SANITIZE=address,undefined) of the
#      `sim` + `svc` + `lp` + `obs` suites (the scheduler/fleet sharing,
#      the failure-unwind paths, the MILP session's persistent tableau
#      snapshots and the obs ring buffers' lock-free publish are the
#      lifetime-bug honeypots). The fork/exec ObsProc tests are excluded
#      there for the same reason the chaos suite is.
#
# Step 4 is skipped with ELRR_SKIP_SANITIZE=1 (e.g. on machines without
# the sanitizer runtimes). ELRR_GATE_QUICK=1 runs the fast CI variant:
# perf_smoke --quick (the deterministic bit-exactness checks, including
# the pipeline engine's sequential-vs-overlapped comparison) and no
# bench-diff timing gate -- shrunken-workload numbers are not comparable
# to the committed full-size baseline, and shared CI runners are too
# noisy to gate on wall clock anyway. Build directories: build/ and
# build-asan/ (override with BUILD_DIR / ASAN_BUILD_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
MAX_REGRESSION=${ELRR_MAX_REGRESSION:-0.10}
QUICK=${ELRR_GATE_QUICK:-0}

# Armed-tracing scope for the ctest runs (steps 1 and 4): %p keeps the
# concurrent test processes from clobbering each other's trace files.
TRACE_DIR="$BUILD_DIR/obs_traces"
mkdir -p "$TRACE_DIR"
GATE_TRACE="$TRACE_DIR/trace-%p.json"
# Flight recorder armed for the same runs: any `elrr` process a test
# crashes (or that dies for real) leaves postmortem-<pid>.txt here --
# a CI failure artifact next to the traces. Tests that pin recorder
# behavior manage the env themselves.
PM_DIR="$BUILD_DIR/postmortems"
mkdir -p "$PM_DIR"

echo "== [1/4] Release build + ctest -L sim|svc|chaos|lp|obs (traced) =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target elrr elrr_cli perf_smoke elrr_sim_tests elrr_svc_tests elrr_chaos_tests elrr_lp_tests elrr_obs_tests
ELRR_TRACE="$GATE_TRACE" ELRR_POSTMORTEM_DIR="$PM_DIR" \
  ctest --test-dir "$BUILD_DIR" -L 'sim|svc|chaos|lp|obs' --output-on-failure -j

if [ "$QUICK" = "1" ]; then
  echo "== [2/4] perf_smoke --quick (bit-exactness gated) =="
  "$BUILD_DIR/perf_smoke" "$BUILD_DIR/BENCH_sim.json" --quick
  echo "== [3/4] bench-diff skipped (ELRR_GATE_QUICK=1) =="
else
  echo "== [2/4] perf_smoke (bit-exactness gated) =="
  "$BUILD_DIR/perf_smoke" "$BUILD_DIR/BENCH_sim.json"

  echo "== [3/4] bench-diff vs committed BENCH_sim.json =="
  "$BUILD_DIR/elrr" bench-diff --new "$BUILD_DIR/BENCH_sim.json" \
    --baseline BENCH_sim.json --max-regression "$MAX_REGRESSION"
fi

if [ "${ELRR_SKIP_SANITIZE:-0}" = "1" ]; then
  echo "== [4/4] sanitizer sweep skipped (ELRR_SKIP_SANITIZE=1) =="
else
  echo "== [4/4] ASan/UBSan ctest -L sim|svc|lp|obs (traced) =="
  cmake -B "$ASAN_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Debug \
    -DELRR_SANITIZE=address,undefined
  cmake --build "$ASAN_BUILD_DIR" -j --target elrr_sim_tests elrr_svc_tests elrr_lp_tests elrr_obs_tests
  mkdir -p "$ASAN_BUILD_DIR/obs_traces" "$ASAN_BUILD_DIR/postmortems"
  ELRR_TRACE="$ASAN_BUILD_DIR/obs_traces/trace-%p.json" \
    ELRR_POSTMORTEM_DIR="$ASAN_BUILD_DIR/postmortems" \
    ctest --test-dir "$ASAN_BUILD_DIR" -L 'sim|svc|lp|obs' -E 'ObsProc' \
    --output-on-failure -j
fi

echo "bench gate: all green"
