/// \file integration_test.cpp
/// Cross-module integration checks: the documentation example parses to
/// the paper's figure, presolve leaves the real RR MILPs' optima intact,
/// and the three MCR oracles agree with the analysis layer on suite
/// circuits.

#include <gtest/gtest.h>

#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "core/opt.hpp"
#include "graph/howard.hpp"
#include "io/rrg_format.hpp"

namespace elrr {
namespace {

TEST(Integration, DocsFormatExampleIsFigure2) {
  // The example document in docs/rrg-format.md must parse to the
  // paper's figure 2 (alpha = 0.9) -- keeps the docs honest.
  const io::NamedRrg named = io::read_rrg(R"(
rrg figure2
node m  delay=0 early
node F1 delay=1
node F2 delay=1
node F3 delay=1
node f  delay=0
edge m  F1 tokens=1 buffers=1
edge F1 F2 tokens=1 buffers=1
edge F2 F3 tokens=1 buffers=1
edge F3 f  tokens=0 buffers=0
edge f  m  tokens=1 buffers=1 gamma=0.9   # top channel
edge f  m  tokens=-2 buffers=0 gamma=0.1  # bottom, two anti-tokens
)");
  const Rrg reference = figures::figure2(0.9);
  ASSERT_EQ(named.rrg.num_nodes(), reference.num_nodes());
  ASSERT_EQ(named.rrg.num_edges(), reference.num_edges());
  const RcEvaluation parsed = evaluate_rrg(named.rrg);
  const RcEvaluation expected = evaluate_rrg(reference);
  EXPECT_NEAR(parsed.tau, expected.tau, 1e-12);
  EXPECT_NEAR(parsed.theta_lp, expected.theta_lp, 1e-9);
  EXPECT_NEAR(parsed.theta_lp, figures::figure2_throughput(0.9), 1e-9);
}

TEST(Integration, PresolvePreservesRrMilpOptima) {
  // The RR MILPs carry pinned columns (r(0), sigma(0)) and singleton
  // rows; presolve must not change MIN_CYC / MAX_THR answers.
  for (const char* name : {"s208", "s27"}) {
    const Rrg rrg =
        bench89::make_table2_rrg(bench89::spec_by_name(name), 1);
    OptOptions plain;
    plain.milp.time_limit_s = 20.0;
    OptOptions pre = plain;
    pre.milp.presolve = true;
    const RcSolveResult a = min_cyc(rrg, 1.0, plain);
    const RcSolveResult b = min_cyc(rrg, 1.0, pre);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    if (a.exact && b.exact) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << name;
    }
    std::string why;
    EXPECT_TRUE(validate_config(rrg, b.config, &why)) << name << ": " << why;
  }
}

TEST(Integration, HowardAgreesWithLateThroughputOnSuiteCircuits) {
  // late_eval_throughput (Lawler under the hood) vs Howard on the real
  // token/buffer structures of the Table-2 circuits.
  for (const char* name : {"s208", "s27", "s838", "s420", "s382"}) {
    const Rrg rrg =
        bench89::make_table2_rrg(bench89::spec_by_name(name), 1);
    std::vector<std::int64_t> cost, time;
    for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
      cost.push_back(rrg.tokens(e));
      time.push_back(rrg.buffers(e));
    }
    // Liveness guarantees every cycle has a token, hence a buffer, hence
    // positive cycle time: Howard's precondition holds.
    const auto howard =
        graph::howard_min_cycle_ratio(rrg.graph(), cost, time);
    const double late = late_eval_throughput(rrg);
    EXPECT_NEAR(late, std::min(1.0, howard.ratio), 1e-9) << name;
  }
}

TEST(Integration, OptimizedConfigSurvivesSerializationAndReanalysis) {
  // optimize -> apply -> write -> read -> evaluate: identical metrics.
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 2);
  OptOptions opt;
  opt.milp.time_limit_s = 10.0;
  const MinEffCycResult result = min_eff_cyc(rrg, opt);
  const Rrg tuned = apply_config(rrg, result.best().config);
  const io::NamedRrg back = io::read_rrg(io::write_rrg(tuned, "tuned"));
  const RcEvaluation direct = evaluate_rrg(tuned);
  const RcEvaluation reloaded = evaluate_rrg(back.rrg);
  EXPECT_NEAR(direct.tau, reloaded.tau, 1e-12);
  EXPECT_NEAR(direct.theta_lp, reloaded.theta_lp, 1e-9);
}

}  // namespace
}  // namespace elrr
