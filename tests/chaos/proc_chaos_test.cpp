/// \file proc_chaos_test.cpp
/// Chaos + differential suite for the process-isolated fleet tier
/// (ELRR_PROC_WORKERS): real `elrr work` worker processes behind the
/// scheduler, crashed mid-batch by the `proc.worker` fail point and by
/// genuine SIGKILL, with the acceptance contract of the in-process
/// chaos harness:
///  * the batch TERMINATES (watchdog hard-exits on a wedge);
///  * every result is bit-identical to the fault-free *in-process*
///    baseline -- at 1, 2 and 4 worker processes, crash or no crash;
///  * a crashed worker's dedup entry is purged, so re-dispatches and
///    re-submissions never see poisoned partial state.
///
/// These tests fork/exec and are deliberately excluded from the ASan
/// sweep (bench_gate.sh runs sanitizers on the sim|svc|lp labels only);
/// the protocol itself is sanitizer-covered by proc_protocol_test.cpp.

#include <signal.h>

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench89/generator.hpp"
#include "flow/circuit_flow.hpp"
#include "sim/fleet.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "svc/scheduler.hpp"

namespace elrr::svc {
namespace {

/// Hard termination guard (see chaos_test.cpp): a wedged batch must
/// fail the suite and release the CI slot, not block forever.
class Watchdog {
 public:
  explicit Watchdog(double seconds) {
    thread_ = std::thread([this, seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                        [this] { return done_; })) {
        std::fprintf(stderr,
                     "proc chaos watchdog: batch did not terminate within "
                     "%.0f s -- aborting\n",
                     seconds);
        std::fflush(stderr);
        std::_Exit(1);
      }
    });
  }
  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

flow::FlowOptions fast_flow() {
  flow::FlowOptions options;
  options.seed = 1;
  options.epsilon = 0.05;
  options.milp_timeout_s = 30.0;
  options.sim_cycles = 2000;
  options.use_heuristic = false;
  options.max_simulated_points = 4;
  return options;
}

JobSpec flow_job(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.rrg = bench89::make_table2_rrg(bench89::spec_by_name(name), 1);
  spec.flow = fast_flow();
  spec.mode = JobMode::kMinEffCyc;
  return spec;
}

void expect_same_circuit_result(const flow::CircuitResult& a,
                                const flow::CircuitResult& b,
                                const std::string& label) {
  EXPECT_EQ(a.xi_star, b.xi_star) << label;
  EXPECT_EQ(a.xi_nee, b.xi_nee) << label;
  EXPECT_EQ(a.xi_lp_min, b.xi_lp_min) << label;
  EXPECT_EQ(a.xi_sim_min, b.xi_sim_min) << label;
  ASSERT_EQ(a.candidates.size(), b.candidates.size()) << label;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].tau, b.candidates[i].tau) << label << " " << i;
    EXPECT_EQ(a.candidates[i].theta_sim, b.candidates[i].theta_sim)
        << label << " " << i;
    EXPECT_EQ(a.candidates[i].xi_sim, b.candidates[i].xi_sim)
        << label << " " << i;
  }
}

const std::vector<std::string>& iscas_names() {
  static const std::vector<std::string> names = {"s838", "s208", "s420"};
  return names;
}

/// Fault-free in-process oracle, computed once per process with the
/// proc tier OFF -- the exactness contract is "bit-identical to the
/// single-process run", so the baseline must never touch the tier under
/// test.
const std::vector<flow::CircuitResult>& inprocess_baseline() {
  static const std::vector<flow::CircuitResult>* results = [] {
    auto* r = new std::vector<flow::CircuitResult>();
    for (const std::string& name : iscas_names()) {
      r->push_back(flow::run_flow(
          name, bench89::make_table2_rrg(bench89::spec_by_name(name), 1),
          fast_flow()));
    }
    return r;
  }();
  return *results;
}

/// Env-managing fixture: the proc tier and its fault schedules are
/// selected entirely through the environment (ELRR_PROC_WORKERS is read
/// at fleet construction; spawned workers re-arm ELRR_FAILPOINTS
/// themselves), so every test must leave both unset behind it.
/// ELRR_WORK_BIN points the supervisor at the real CLI binary -- the
/// test binary's own /proc/self/exe is a GTest main, not `elrr`.
class ProcChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::setenv("ELRR_WORK_BIN", ELRR_CLI_BIN, 1);
    // Force the lazy oracle while ELRR_PROC_WORKERS is still unset: the
    // baseline must be the genuine in-process run, never the tier under
    // test.
    inprocess_baseline();
  }
  void TearDown() override {
    failpoint::reset();
    ::unsetenv("ELRR_PROC_WORKERS");
    ::unsetenv("ELRR_FAILPOINTS");
    ::unsetenv("ELRR_WORK_BIN");
  }
};

enum class Fault { kNone, kInjectedCrash, kRealSigkill };

const char* fault_name(Fault fault) {
  switch (fault) {
    case Fault::kNone: return "none";
    case Fault::kInjectedCrash: return "proc.worker=after:2";
    case Fault::kRealSigkill: return "SIGKILL mid-stall";
  }
  return "?";
}

/// The differential matrix body: the ISCAS batch through the scheduler
/// with `workers` real worker processes under one fault mode, asserted
/// bit-identical to the in-process baseline.
void run_proc_batch(std::size_t workers, Fault fault) {
  SCOPED_TRACE(std::string("proc workers=") + std::to_string(workers) +
               " fault=" + fault_name(fault));
  const Watchdog watchdog(240.0);
  ::setenv("ELRR_PROC_WORKERS", std::to_string(workers).c_str(), 1);
  if (fault == Fault::kInjectedCrash) {
    // Armed in the *children* only (setenv, no local configure): each
    // spawned worker serves two slices and dies on its third, so every
    // worker count sees mid-batch crashes while each incarnation still
    // makes progress. `once` would kill every respawn's first slice --
    // a livelock by construction (see failpoint.hpp).
    ::setenv("ELRR_FAILPOINTS", "proc.worker=after:2", 1);
  } else if (fault == Fault::kRealSigkill) {
    // A long first-slice stall per worker gives the killer thread a
    // window in which the victim is guaranteed mid-slice.
    ::setenv("ELRR_FAILPOINTS", "proc.worker=stall:600", 1);
  }

  SchedulerOptions sopt;
  sopt.workers = 2;
  sopt.sim_threads = static_cast<std::size_t>(workers);
  sopt.retry_max = 3;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);

  // The killer: SIGKILL the first live worker process it can find --
  // during its injected stall, i.e. mid-slice, the hardest case for the
  // exactness contract.
  std::thread killer;
  if (fault == Fault::kRealSigkill) {
    killer = std::thread([&scheduler] {
      for (int i = 0; i < 4000; ++i) {
        const std::vector<int> pids = scheduler.fleet().proc_worker_pids();
        if (!pids.empty()) {
          ::kill(pids.front(), SIGKILL);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  std::vector<JobId> ids;
  for (const std::string& name : iscas_names()) {
    ids.push_back(scheduler.submit(flow_job(name)));
  }
  scheduler.resume();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobResult result = scheduler.wait(ids[i]);
    ASSERT_EQ(result.state, JobState::kDone)
        << iscas_names()[i] << ": " << result.error;
    EXPECT_FALSE(result.degraded) << iscas_names()[i];
    expect_same_circuit_result(inprocess_baseline()[i], result.circuit,
                               iscas_names()[i]);
  }
  if (killer.joinable()) killer.join();

  const sim::ProcFleetStats stats = scheduler.fleet().proc_stats();
  EXPECT_GT(stats.spawns, 0u);
  if (fault != Fault::kNone) {
    EXPECT_GE(stats.crashes, 1u) << "the fault never landed";
    EXPECT_GE(stats.redispatches, 1u);
  }

  // Fleet reusability: the same scheduler (and its replacement workers)
  // takes one more job after the crashes.
  ::unsetenv("ELRR_FAILPOINTS");
  const JobResult extra = scheduler.wait(scheduler.submit(flow_job("s208")));
  ASSERT_EQ(extra.state, JobState::kDone) << extra.error;
  expect_same_circuit_result(inprocess_baseline()[1], extra.circuit,
                             "reuse s208");
}

TEST_F(ProcChaosTest, FaultFreeBatchesAreBitExactAtEveryWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    run_proc_batch(workers, Fault::kNone);
  }
}

TEST_F(ProcChaosTest, InjectedWorkerCrashesAreBitExactAtEveryWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    run_proc_batch(workers, Fault::kInjectedCrash);
  }
}

TEST_F(ProcChaosTest, RealSigkillMidBatchIsBitExactAtEveryWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    run_proc_batch(workers, Fault::kRealSigkill);
  }
}

TEST_F(ProcChaosTest, SpawnFailureBurnsTheRespawnBudgetNotTheBatch) {
  // proc.spawn trips in the *supervisor* (this process), so it is armed
  // locally; the children inherit no schedule. A one-shot spawn failure
  // costs one attempt of the slice's bounded budget and the batch
  // completes bit-exact.
  const Watchdog watchdog(120.0);
  ::setenv("ELRR_PROC_WORKERS", "1", 1);
  failpoint::configure("proc.spawn=once");
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.sim_threads = 1;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);
  const JobId id = scheduler.submit(flow_job("s208"));
  scheduler.resume();
  const JobResult result = scheduler.wait(id);
  ASSERT_EQ(result.state, JobState::kDone) << result.error;
  expect_same_circuit_result(inprocess_baseline()[1], result.circuit, "s208");
  const sim::ProcFleetStats stats = scheduler.fleet().proc_stats();
  EXPECT_GE(stats.spawns, 1u);
}

TEST_F(ProcChaosTest, UnrecoverableCrashLoopFailsAsTransient) {
  // `once` re-arms in every respawned worker, killing each one's first
  // slice: the documented livelock. The supervisor's bounded respawn
  // budget must convert it into a TransientError, the scheduler must
  // attribute it to the retry taxonomy (attempts burned, then kFailed
  // with the crash reason) -- and never hang.
  const Watchdog watchdog(120.0);
  ::setenv("ELRR_PROC_WORKERS", "1", 1);
  ::setenv("ELRR_FAILPOINTS", "proc.worker=once", 1);
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.sim_threads = 1;
  sopt.retry_max = 1;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);
  JobSpec spec = flow_job("s208");
  spec.mode = JobMode::kScoreOnly;
  const JobId id = scheduler.submit(std::move(spec));
  scheduler.resume();
  const JobResult result = scheduler.wait(id);
  ASSERT_EQ(result.state, JobState::kFailed);
  EXPECT_NE(result.error.find("worker process crashed"), std::string::npos)
      << result.error;
  EXPECT_EQ(result.stats.retries, 1u);
  EXPECT_GE(scheduler.fleet().proc_stats().crashes, 2u);
}

TEST_F(ProcChaosTest, CrashPurgesTheDedupEntry) {
  // The poisoned-partial-result rule at fleet level: a candidate whose
  // worker process is SIGKILLed mid-slice must lose its canonical-key
  // cache entry, so (a) the re-dispatched slice re-runs fresh and (b) an
  // identical re-submission is a *fresh* job, not a cache hit on
  // whatever the dead worker left behind.
  const Watchdog watchdog(120.0);
  ::setenv("ELRR_PROC_WORKERS", "1", 1);
  ::setenv("ELRR_FAILPOINTS", "proc.worker=stall:400", 1);
  sim::SimFleet fleet(/*threads=*/1, /*dedup=*/true);

  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  sim::SimOptions options;
  options.seed = 3;
  options.warmup_cycles = 100;
  options.measure_cycles = 1000;
  options.runs = 4;

  const sim::SimTicket ticket = fleet.submit_async(Rrg(rrg), options);
  EXPECT_TRUE(ticket.fresh);
  // Kill the worker during its injected first-slice stall.
  std::thread killer([&fleet] {
    for (int i = 0; i < 2000; ++i) {
      const std::vector<int> pids = fleet.proc_worker_pids();
      if (!pids.empty()) {
        ::kill(pids.front(), SIGKILL);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const sim::SimReport report = fleet.wait(ticket);
  killer.join();
  ASSERT_EQ(fleet.proc_stats().crashes, 1u);

  // The re-dispatch already completed the job bit-exactly...
  ::unsetenv("ELRR_PROC_WORKERS");
  ::unsetenv("ELRR_FAILPOINTS");
  sim::SimFleet oracle(/*threads=*/1, /*dedup=*/false);
  const sim::SimReport expected =
      oracle.wait(oracle.submit_async(Rrg(rrg), options));
  EXPECT_EQ(report.theta, expected.theta);
  EXPECT_EQ(report.stderr_theta, expected.stderr_theta);

  // ...and the crash purged the entry: the identical candidate is FRESH.
  ::setenv("ELRR_PROC_WORKERS", "1", 1);
  const sim::SimTicket again = fleet.submit_async(Rrg(rrg), options);
  EXPECT_TRUE(again.fresh)
      << "crashed candidate served from the dedup cache";
  EXPECT_EQ(fleet.wait(again).theta, expected.theta);
}

}  // namespace
}  // namespace elrr::svc
