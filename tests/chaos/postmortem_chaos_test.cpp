/// \file postmortem_chaos_test.cpp
/// Live-crash suite for the flight recorder's postmortem pipeline: a
/// real `elrr work` worker process is SIGSEGVed (and SIGKILLed, the
/// no-dump control) mid-slice, and the contract asserted end to end:
///  * the dying worker's fatal-signal handler publishes a complete
///    `ELRR-POSTMORTEM 1` dump whose in-flight marks and trailing
///    events NAME the slice it was executing;
///  * the supervisor harvests that dump -- the crash's TransientError
///    carries `postmortem: <path>` plus a last-events excerpt, and the
///    proc stats count the harvest;
///  * results stay bit-identical to the fault-free in-process oracle
///    (the recorder observes, never steers).
///
/// Like the rest of the chaos label this suite forks/execs and raises
/// real fatal signals, so it is excluded from the sanitizer sweep
/// (bench_gate.sh runs ASan on the sim|svc|lp|obs labels); the dump and
/// harvest logic itself is sanitizer-covered by recorder_test.cpp.

#include <signal.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench89/generator.hpp"
#include "obs/recorder.hpp"
#include "sim/fleet.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "svc/scheduler.hpp"

namespace elrr::svc {
namespace {

namespace fs = std::filesystem;

/// Hard termination guard (see chaos_test.cpp): a wedged run must fail
/// the suite and release the CI slot, not block forever.
class Watchdog {
 public:
  explicit Watchdog(double seconds) {
    thread_ = std::thread([this, seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                        [this] { return done_; })) {
        std::fprintf(stderr,
                     "postmortem chaos watchdog: run did not terminate "
                     "within %.0f s -- aborting\n",
                     seconds);
        std::fflush(stderr);
        std::_Exit(1);
      }
    });
  }
  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

/// Env-managing fixture: the proc tier, its fault schedule and the
/// recorder are all selected through the environment (spawned workers
/// re-arm all three from what they inherit), so every test must leave
/// the env and the process-wide recorder clean behind it. The
/// supervisor side arms its own recorder too -- harvest() looks in the
/// configured ELRR_POSTMORTEM_DIR.
class PostmortemChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("elrr_postmortem_chaos_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    ::setenv("ELRR_WORK_BIN", ELRR_CLI_BIN, 1);
    ::setenv("ELRR_POSTMORTEM_DIR", dir_.string().c_str(), 1);
    obs::rec::configure_from_env();
  }
  void TearDown() override {
    failpoint::reset();
    ::unsetenv("ELRR_PROC_WORKERS");
    ::unsetenv("ELRR_FAILPOINTS");
    ::unsetenv("ELRR_WORK_BIN");
    ::unsetenv("ELRR_POSTMORTEM_DIR");
    obs::rec::reset();
    fs::remove_all(dir_);
  }

  std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  fs::path dir_;
};

sim::SimOptions small_sim() {
  sim::SimOptions options;
  options.seed = 3;
  options.warmup_cycles = 100;
  options.measure_cycles = 1000;
  options.runs = 4;
  return options;
}

/// SIGSEGV one live worker during its injected first-slice stall and
/// return the killed pid (0 if none appeared within the window).
int segv_first_worker(sim::SimFleet& fleet) {
  for (int i = 0; i < 4000; ++i) {
    const std::vector<int> pids = fleet.proc_worker_pids();
    if (!pids.empty()) {
      // The pid is visible the moment the handshake completes, which
      // can be before the slice reaches the worker on a loaded box.
      // Give dispatch time to land -- the worker records slice.recv,
      // marks it in flight and enters the 600 ms injected stall -- so
      // the SIGSEGV hits mid-slice, not mid-startup.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      ::kill(pids.front(), SIGSEGV);
      return pids.front();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return 0;
}

TEST_F(PostmortemChaosTest, SigsegvMidSliceIsHarvestedAndNamesTheSlice) {
  const Watchdog watchdog(240.0);
  ::setenv("ELRR_PROC_WORKERS", "1", 1);
  // The injected stall guarantees the victim is mid-slice -- after it
  // recorded slice.recv and marked the slice in flight, before it
  // replied.
  ::setenv("ELRR_FAILPOINTS", "proc.worker=stall:600", 1);
  sim::SimFleet fleet(/*threads=*/1, /*dedup=*/true);

  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  const sim::SimOptions options = small_sim();
  const sim::SimTicket ticket = fleet.submit_async(Rrg(rrg), options);
  int killed_pid = 0;
  std::thread killer(
      [&fleet, &killed_pid] { killed_pid = segv_first_worker(fleet); });
  const sim::SimReport report = fleet.wait(ticket);
  killer.join();
  ASSERT_NE(killed_pid, 0) << "no worker process appeared to kill";

  // The worker died by SIGSEGV mid-stall; its handler published a
  // complete dump that names the in-flight slice.
  const std::string pm_path =
      (dir_ / ("postmortem-" + std::to_string(killed_pid) + ".txt"))
          .string();
  ASSERT_TRUE(fs::exists(pm_path))
      << "no postmortem published by the crashed worker";
  const std::string dump = slurp(pm_path);
  EXPECT_NE(dump.find("ELRR-POSTMORTEM 1\n"), std::string::npos);
  EXPECT_NE(dump.find("reason: SIGSEGV\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("inflight: "), std::string::npos) << dump;
  EXPECT_NE(dump.find("slice 0"), std::string::npos)
      << "in-flight mark does not name the slice:\n" << dump;
  EXPECT_NE(dump.find("name=slice.recv a=0"), std::string::npos)
      << "last events do not name the received slice:\n" << dump;
  EXPECT_NE(dump.find("\nend\n"), std::string::npos)
      << "dump is truncated:\n" << dump;

  // The supervisor harvested it into the proc stats...
  const sim::ProcFleetStats stats = fleet.proc_stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.postmortems, 1u) << "crash postmortem was not harvested";

  // ...and the re-dispatched batch is bit-identical to the fault-free
  // in-process oracle.
  ::unsetenv("ELRR_PROC_WORKERS");
  ::unsetenv("ELRR_FAILPOINTS");
  sim::SimFleet oracle(/*threads=*/1, /*dedup=*/false);
  const sim::SimReport expected =
      oracle.wait(oracle.submit_async(Rrg(rrg), options));
  EXPECT_EQ(report.theta, expected.theta);
  EXPECT_EQ(report.stderr_theta, expected.stderr_theta);
}

TEST_F(PostmortemChaosTest, CrashLoopSurfacesThePostmortemInTheError) {
  // Kill every incarnation: the bounded respawn budget converts the
  // crash loop into a TransientError, and that error must carry the
  // last dead worker's postmortem path + excerpt -- the whole point of
  // the harvest is that the operator sees WHAT the worker was doing
  // without ssh-ing anywhere.
  const Watchdog watchdog(240.0);
  ::setenv("ELRR_PROC_WORKERS", "1", 1);
  ::setenv("ELRR_FAILPOINTS", "proc.worker=stall:600", 1);

  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.sim_threads = 1;
  sopt.retry_max = 0;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);

  std::atomic<bool> done{false};
  std::thread killer([&scheduler, &done] {
    // Each respawned worker re-arms stall:600 with fresh counters, so
    // every incarnation is killable mid-slice; kill each new pid until
    // the batch settles.
    std::vector<int> killed;
    while (!done.load()) {
      for (const int pid : scheduler.fleet().proc_worker_pids()) {
        if (std::find(killed.begin(), killed.end(), pid) == killed.end()) {
          // Same mid-slice settle delay as segv_first_worker: the
          // error's excerpt must name the slice, so the kill has to
          // land after slice.recv, inside the injected stall.
          std::this_thread::sleep_for(std::chrono::milliseconds(150));
          ::kill(pid, SIGSEGV);
          killed.push_back(pid);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  JobSpec spec;
  spec.name = "s208";
  spec.rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  spec.mode = JobMode::kScoreOnly;
  spec.flow.seed = 1;
  spec.flow.sim_cycles = 2000;
  const JobId id = scheduler.submit(std::move(spec));
  scheduler.resume();
  const JobResult result = scheduler.wait(id);
  done.store(true);
  killer.join();

  ASSERT_EQ(result.state, JobState::kFailed);
  EXPECT_NE(result.error.find("worker process crashed"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("postmortem: "), std::string::npos)
      << "TransientError does not embed the harvested postmortem: "
      << result.error;
  EXPECT_NE(result.error.find("slice.recv"), std::string::npos)
      << "no last-events excerpt in the error: " << result.error;
  EXPECT_GE(scheduler.fleet().proc_stats().postmortems, 1u);
}

TEST_F(PostmortemChaosTest, SigkillLeavesNoPostmortemAndDegradesGracefully) {
  // SIGKILL is uncatchable: no handler, no dump. The absence must be
  // graceful -- the crash is contained and re-dispatched exactly as
  // before the recorder existed, with no postmortem reference anywhere.
  const Watchdog watchdog(240.0);
  ::setenv("ELRR_PROC_WORKERS", "1", 1);
  ::setenv("ELRR_FAILPOINTS", "proc.worker=stall:600", 1);
  sim::SimFleet fleet(/*threads=*/1, /*dedup=*/true);

  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  const sim::SimOptions options = small_sim();
  const sim::SimTicket ticket = fleet.submit_async(Rrg(rrg), options);
  int killed_pid = 0;
  std::thread killer([&fleet, &killed_pid] {
    for (int i = 0; i < 4000; ++i) {
      const std::vector<int> pids = fleet.proc_worker_pids();
      if (!pids.empty()) {
        // Same mid-slice settle delay as segv_first_worker.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ::kill(pids.front(), SIGKILL);
        killed_pid = pids.front();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const sim::SimReport report = fleet.wait(ticket);
  killer.join();
  ASSERT_NE(killed_pid, 0);

  EXPECT_FALSE(fs::exists(
      dir_ / ("postmortem-" + std::to_string(killed_pid) + ".txt")));
  const sim::ProcFleetStats stats = fleet.proc_stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.postmortems, 0u);

  ::unsetenv("ELRR_PROC_WORKERS");
  ::unsetenv("ELRR_FAILPOINTS");
  sim::SimFleet oracle(/*threads=*/1, /*dedup=*/false);
  const sim::SimReport expected =
      oracle.wait(oracle.submit_async(Rrg(rrg), options));
  EXPECT_EQ(report.theta, expected.theta);
  EXPECT_EQ(report.stderr_theta, expected.stderr_theta);
}

TEST_F(PostmortemChaosTest, ReapedWorkersLeaveNoRecorderTmpBehind) {
  // Armed workers pre-open postmortem-<pid>.txt.tmp the moment they
  // start. A worker that exits cleanly unlinks its own at atexit, but
  // the fleet retires workers with SIGKILL (it never blocks on a
  // wedged child), which skips atexit -- the supervisor must discard
  // the orphan after the reap.
  const Watchdog watchdog(240.0);
  ::setenv("ELRR_PROC_WORKERS", "2", 1);
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  {
    sim::SimFleet fleet(/*threads=*/1, /*dedup=*/true);
    fleet.wait(fleet.submit_async(Rrg(rrg), small_sim()));
  }  // ~SimFleet: request pipes close, children are SIGKILLed + reaped.
  ::unsetenv("ELRR_PROC_WORKERS");

  // The only tmp left is this (armed, still running) test process's
  // own; no reaped worker's tmp survives the teardown.
  const std::string own_tmp =
      "postmortem-" + std::to_string(::getpid()) + ".txt.tmp";
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string(), own_tmp)
        << "recorder litter after fleet teardown: " << entry.path();
  }
}

}  // namespace
}  // namespace elrr::svc
