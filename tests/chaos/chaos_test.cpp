/// \file chaos_test.cpp
/// The chaos harness: an ISCAS batch driven through the scheduler under
/// seeded fail-point schedules, one fault family at a time. The
/// acceptance contract per schedule:
///  * the batch TERMINATES (a polling watchdog hard-exits the process
///    if it wedges -- a hang is a failure, not a timeout);
///  * the shared fleet stays reusable -- a follow-up job on the same
///    scheduler completes;
///  * every non-faulted (and every successfully retried) job is
///    bit-identical to the fault-free baseline.
///
/// Schedules are pure data (ELRR_FAILPOINTS grammar), so every scenario
/// here reproduces from a shell with the same spec string.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench89/generator.hpp"
#include "flow/circuit_flow.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "svc/manifest.hpp"
#include "svc/scheduler.hpp"

namespace elrr::svc {
namespace {

namespace fs = std::filesystem;

/// Hard termination guard: chaos scenarios must finish; a wedged batch
/// must fail the suite *and* release the CI slot. _exit skips unwinding
/// on purpose -- a deadlocked scheduler would block destructors forever.
class Watchdog {
 public:
  explicit Watchdog(double seconds) {
    thread_ = std::thread([this, seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                        [this] { return done_; })) {
        std::fprintf(stderr,
                     "chaos watchdog: batch did not terminate within "
                     "%.0f s -- aborting\n",
                     seconds);
        std::fflush(stderr);
        std::_Exit(1);
      }
    });
  }
  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

flow::FlowOptions fast_flow() {
  flow::FlowOptions options;
  options.seed = 1;
  options.epsilon = 0.05;
  options.milp_timeout_s = 30.0;
  options.sim_cycles = 2000;
  options.use_heuristic = false;
  options.max_simulated_points = 4;
  return options;
}

JobSpec flow_job(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.rrg = bench89::make_table2_rrg(bench89::spec_by_name(name), 1);
  spec.flow = fast_flow();
  spec.mode = JobMode::kMinEffCyc;
  return spec;
}

void expect_same_circuit_result(const flow::CircuitResult& a,
                                const flow::CircuitResult& b,
                                const std::string& label) {
  EXPECT_EQ(a.xi_star, b.xi_star) << label;
  EXPECT_EQ(a.xi_nee, b.xi_nee) << label;
  EXPECT_EQ(a.xi_lp_min, b.xi_lp_min) << label;
  EXPECT_EQ(a.xi_sim_min, b.xi_sim_min) << label;
  ASSERT_EQ(a.candidates.size(), b.candidates.size()) << label;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].tau, b.candidates[i].tau) << label << " " << i;
    EXPECT_EQ(a.candidates[i].theta_sim, b.candidates[i].theta_sim)
        << label << " " << i;
    EXPECT_EQ(a.candidates[i].xi_sim, b.candidates[i].xi_sim)
        << label << " " << i;
  }
}

const std::vector<std::string>& iscas_names() {
  static const std::vector<std::string> names = {"s838", "s208", "s420"};
  return names;
}

/// Fault-free oracle, computed once per process.
const std::vector<flow::CircuitResult>& baseline() {
  static const std::vector<flow::CircuitResult>* results = [] {
    auto* r = new std::vector<flow::CircuitResult>();
    for (const std::string& name : iscas_names()) {
      r->push_back(flow::run_flow(
          name, bench89::make_table2_rrg(bench89::spec_by_name(name), 1),
          fast_flow()));
    }
    return r;
  }();
  return *results;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::reset(); }
};

/// One single-fail-point schedule: run the ISCAS batch with retries on,
/// assert termination + all-green + bit-exactness, then prove the fleet
/// still accepts work.
void run_schedule(const std::string& schedule, bool with_disk_cache) {
  SCOPED_TRACE("ELRR_FAILPOINTS=" + schedule);
  const Watchdog watchdog(240.0);
  const fs::path dir = fs::temp_directory_path() / "elrr_chaos_disk_cache";
  if (with_disk_cache) fs::remove_all(dir);

  failpoint::configure(schedule);
  SchedulerOptions sopt;
  sopt.workers = 2;
  sopt.sim_threads = 2;
  sopt.retry_max = 3;
  sopt.start_paused = true;
  if (with_disk_cache) sopt.disk_cache_dir = dir.string();
  Scheduler scheduler(sopt);
  std::vector<JobId> ids;
  for (const std::string& name : iscas_names()) {
    ids.push_back(scheduler.submit(flow_job(name)));
  }
  scheduler.resume();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobResult result = scheduler.wait(ids[i]);
    ASSERT_EQ(result.state, JobState::kDone)
        << iscas_names()[i] << ": " << result.error;
    EXPECT_FALSE(result.degraded) << iscas_names()[i];
    expect_same_circuit_result(baseline()[i], result.circuit,
                               iscas_names()[i]);
  }

  // Fleet reusability: the same scheduler takes one more job after the
  // chaos schedule has done its worst.
  failpoint::reset();
  const JobResult extra = scheduler.wait(scheduler.submit(flow_job("s208")));
  ASSERT_EQ(extra.state, JobState::kDone) << extra.error;
  if (with_disk_cache) fs::remove_all(dir);
}

TEST_F(ChaosTest, WorkerThrowIsRetriedToGreen) {
  run_schedule("fleet.worker=once", /*with_disk_cache=*/false);
}

TEST_F(ChaosTest, WorkerThrowAfterWarmupIsRetriedToGreen) {
  run_schedule("fleet.worker=after:5", /*with_disk_cache=*/false);
}

TEST_F(ChaosTest, ProbabilisticWorkerFaultsAreRetriedToGreen) {
  // P is kept small: each attempt trips the site once per slice, and the
  // retry budget must overwhelmingly outlast the fault stream.
  run_schedule("fleet.worker=prob:0.01@1234", /*with_disk_cache=*/false);
}

TEST_F(ChaosTest, MilpFaultIsRetriedToGreen) {
  run_schedule("milp.solve=once", /*with_disk_cache=*/false);
}

TEST_F(ChaosTest, WalkStepFaultIsRetriedToGreen) {
  run_schedule("walk.step=once", /*with_disk_cache=*/false);
}

TEST_F(ChaosTest, FlatKernelFaultDegradesPerSliceInvisibly) {
  // fleet.flat is *contained*: the slice re-runs on the reference
  // kernel, bit-identically -- no job-level failure, no retry needed.
  run_schedule("fleet.flat=once", /*with_disk_cache=*/false);
}

TEST_F(ChaosTest, WarmStartFaultFallsBackToColdInvisibly) {
  // milp.warm is *contained* inside the MILP session: an injected
  // basis-restore corruption makes the session fall back to the
  // bit-identical cold solve -- no job-level failure, no retry burned.
  // Both a one-shot and a sustained probabilistic schedule must leave
  // every frontier untouched.
  run_schedule("milp.warm=once", /*with_disk_cache=*/false);
  run_schedule("milp.warm=prob:0.25@99", /*with_disk_cache=*/false);
}

/// The anytime portfolio under chaos: the ISCAS batch in kPortfolio
/// mode, with faults injected into the MILP, the warm-restore path and
/// the fleet, terminates, retries to green, publishes every anytime
/// answer, and every final (exact-leg) result is bit-identical to the
/// fault-free kMinEffCyc baseline.
TEST_F(ChaosTest, PortfolioBatchSurvivesChaosSchedules) {
  for (const std::string schedule :
       {"milp.solve=once", "milp.warm=once", "fleet.worker=once",
        "walk.step=once"}) {
    SCOPED_TRACE("ELRR_FAILPOINTS=" + schedule);
    const Watchdog watchdog(240.0);
    failpoint::configure(schedule);
    SchedulerOptions sopt;
    sopt.workers = 2;
    sopt.sim_threads = 2;
    sopt.retry_max = 3;
    sopt.start_paused = true;
    Scheduler scheduler(sopt);
    std::vector<JobId> ids;
    for (const std::string& name : iscas_names()) {
      JobSpec spec = flow_job(name);
      spec.mode = JobMode::kPortfolio;
      ids.push_back(scheduler.submit(std::move(spec)));
    }
    scheduler.resume();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const JobResult result = scheduler.wait(ids[i]);
      ASSERT_EQ(result.state, JobState::kDone)
          << iscas_names()[i] << ": " << result.error;
      EXPECT_FALSE(result.degraded) << iscas_names()[i];
      EXPECT_TRUE(result.stats.anytime_ready) << iscas_names()[i];
      EXPECT_GT(result.stats.anytime_xi, 0.0) << iscas_names()[i];
      expect_same_circuit_result(baseline()[i], result.circuit,
                                 iscas_names()[i]);
    }
    failpoint::reset();
  }
}

TEST_F(ChaosTest, StuckWorkerStallIsAbsorbed) {
  // No deadline configured: the stall (bounded by the registry's 60 s
  // cap) delays the batch, never wedges it.
  run_schedule("fleet.worker=stall:250", /*with_disk_cache=*/false);
}

TEST_F(ChaosTest, DiskCacheFaultsAreContainedMissesAndDrops) {
  run_schedule("disk_cache.load=once", /*with_disk_cache=*/true);
  run_schedule("disk_cache.store=once", /*with_disk_cache=*/true);
}

/// Deadline pressure on the MILP-backed walk: the batch degrades (per
/// job, flagged, heuristic-identical) instead of failing or hanging.
TEST_F(ChaosTest, DeadlinePressureDegradesDeterministically) {
  const Watchdog watchdog(240.0);
  flow::FlowOptions heuristic = fast_flow();
  heuristic.heuristic_only = true;

  SchedulerOptions sopt;
  sopt.workers = 2;
  sopt.sim_threads = 2;
  Scheduler scheduler(sopt);
  std::vector<JobId> ids;
  for (const std::string& name : iscas_names()) {
    JobSpec spec = flow_job(name);
    spec.deadline_s = 1e-6;  // every walk degrades
    ids.push_back(scheduler.submit(spec));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobResult result = scheduler.wait(ids[i]);
    ASSERT_EQ(result.state, JobState::kDone)
        << iscas_names()[i] << ": " << result.error;
    EXPECT_TRUE(result.degraded) << iscas_names()[i];
    const flow::CircuitResult oracle = flow::run_flow(
        iscas_names()[i],
        bench89::make_table2_rrg(bench89::spec_by_name(iscas_names()[i]), 1),
        heuristic);
    expect_same_circuit_result(oracle, result.circuit, iscas_names()[i]);
  }
  EXPECT_EQ(scheduler.stats().degraded, iscas_names().size());
}

/// A no-retry batch under a one-shot fault: exactly the faulted job
/// fails, every other job is bit-identical to baseline, and the
/// scheduler + fleet keep serving.
TEST_F(ChaosTest, NonFaultedJobsAreBitIdenticalWhenOneJobFails) {
  const Watchdog watchdog(240.0);
  failpoint::configure("milp.solve=once");
  SchedulerOptions sopt;
  sopt.workers = 1;  // deterministic dispatch: the first job eats the fault
  sopt.retry_max = 0;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);
  std::vector<JobId> ids;
  for (const std::string& name : iscas_names()) {
    ids.push_back(scheduler.submit(flow_job(name)));
  }
  scheduler.resume();
  std::size_t failed = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobResult result = scheduler.wait(ids[i]);
    if (result.state == JobState::kFailed) {
      ++failed;
      EXPECT_NE(result.error.find("injected fault"), std::string::npos)
          << result.error;
    } else {
      ASSERT_EQ(result.state, JobState::kDone) << result.error;
      expect_same_circuit_result(baseline()[i], result.circuit,
                                 iscas_names()[i]);
    }
  }
  EXPECT_EQ(failed, 1u);
  failpoint::reset();
  const JobResult extra = scheduler.wait(scheduler.submit(flow_job("s420")));
  ASSERT_EQ(extra.state, JobState::kDone) << extra.error;
}

TEST_F(ChaosTest, ManifestFaultFailsLoudlyAndOnce) {
  failpoint::configure("svc.manifest=once");
  EXPECT_THROW((void)parse_manifest("{\"circuit\": \"s27\"}"),
               failpoint::FailPointError);
  // The fault is one-shot; the retried parse succeeds.
  EXPECT_EQ(parse_manifest("{\"circuit\": \"s27\"}").size(), 1u);
}

}  // namespace
}  // namespace elrr::svc
