/// \file fallback_test.cpp
/// Differential coverage of the FlatCap fallback paths: for every cap the
/// flat layout cannot represent (EB chain deeper than the 64-bit ring,
/// node-count and degree caps), the driver must (a) classify the cap,
/// (b) route the job to the reference kernel, and (c) produce exactly the
/// theta a forced reference run produces -- through simulate_throughput
/// and through a SimFleet drain that mixes fallback jobs with flat-path
/// jobs in one queue. PR 2 only *reported* these caps; this suite runs
/// them.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/figures.hpp"
#include "sim/fleet.hpp"
#include "sim/flat_kernel.hpp"

namespace elrr::sim {
namespace {

SimOptions fallback_options(std::uint64_t seed, std::size_t cycles = 800) {
  SimOptions options;
  options.seed = seed;
  options.warmup_cycles = 50;
  options.measure_cycles = cycles;
  options.runs = 2;
  return options;
}

/// The fallback must be invisible in the numbers: auto-selected reference
/// execution == forced reference execution, bit for bit, and the report
/// names the cap.
void expect_reference_fallback(const Rrg& rrg, FlatCap expected_cap,
                               const SimOptions& options) {
  ASSERT_EQ(FlatKernel::unsupported_reason(rrg), expected_cap);
  ASSERT_FALSE(FlatKernel::supports(rrg));

  const SimReport automatic = simulate_throughput(rrg, options);
  EXPECT_EQ(automatic.path, SimPath::kReference);
  EXPECT_EQ(automatic.fallback, expected_cap);
  EXPECT_STRNE(to_string(automatic.fallback), "none");

  SimOptions forced = options;
  forced.force_reference = true;
  const SimReport reference = simulate_throughput(rrg, forced);
  EXPECT_EQ(automatic.theta, reference.theta);
  EXPECT_EQ(automatic.stderr_theta, reference.stderr_theta);
}

/// A live two-node ring whose forward edge carries an EB chain deeper
/// than the 64-bit window.
Rrg deep_chain_rrg() {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 1, 70);
  rrg.add_edge(b, a, 1, 1);
  return rrg;
}

/// A live star: `width` leaves each on a hub<->leaf token ring, driving
/// the hub's in-degree past the u8 node-program field.
Rrg wide_join_rrg(int width) {
  Rrg rrg;
  const NodeId hub = rrg.add_node("hub", 1.0);
  for (int i = 0; i < width; ++i) {
    const NodeId leaf = rrg.add_node("l" + std::to_string(i), 1.0);
    rrg.add_edge(leaf, hub, 1, 1);
    rrg.add_edge(hub, leaf, 1, 1);
  }
  return rrg;
}

/// A live broadcast: one source fans out to `width` leaves (out-degree
/// past the u8 field), collected back through a chain of 2-input joins
/// so no *in*-degree exceeds its cap (the classifier must name the
/// out-degree, and the source is checked before the collector chain).
Rrg wide_fanout_rrg(int width) {
  Rrg rrg;
  const NodeId src = rrg.add_node("src", 1.0);
  NodeId collect = rrg.add_node("c0", 1.0);
  std::vector<NodeId> leaves;
  for (int i = 0; i < width; ++i) {
    const NodeId leaf = rrg.add_node("f" + std::to_string(i), 1.0);
    rrg.add_edge(src, leaf, 1, 1);
    leaves.push_back(leaf);
  }
  rrg.add_edge(leaves[0], collect, 1, 1);
  for (int i = 1; i < width; ++i) {
    const NodeId next = rrg.add_node("c" + std::to_string(i), 1.0);
    rrg.add_edge(collect, next, 1, 1);
    rrg.add_edge(leaves[static_cast<std::size_t>(i)], next, 1, 1);
    collect = next;
  }
  rrg.add_edge(collect, src, 1, 1);
  return rrg;
}

/// A token ring with more nodes than NodeProg::node (u16) can index.
Rrg huge_ring_rrg() {
  Rrg rrg;
  constexpr int kNodes = 0x10000 + 1;
  for (int i = 0; i < kNodes; ++i) rrg.add_node("", 1.0);
  for (int i = 0; i < kNodes; ++i) {
    // A token on every edge: the ring fires every node every cycle, so a
    // short differential window still moves plenty of tokens.
    rrg.add_edge(static_cast<NodeId>(i),
                 static_cast<NodeId>((i + 1) % kNodes), 1, 1);
  }
  return rrg;
}

TEST(FlatCapFallback, DeepEbChainRunsOnReference) {
  expect_reference_fallback(deep_chain_rrg(), FlatCap::kDeepEbChain,
                            fallback_options(3, 2000));
}

TEST(FlatCapFallback, InDegreeCapRunsOnReference) {
  expect_reference_fallback(wide_join_rrg(300), FlatCap::kInDegreeCap,
                            fallback_options(5));
}

TEST(FlatCapFallback, EarlyInDegreeCapUsesTheTighterGuardBound) {
  // Early nodes cap at 127 (the i8 guard encoding), half the simple cap.
  // Classification only: the i8 pending-guard encoding is shared by the
  // *reference* state too, so guards past 127 are out of contract for
  // every kernel -- the cap exists to reject them, not to reroute them.
  Rrg rrg = wide_join_rrg(200);
  ASSERT_EQ(FlatKernel::unsupported_reason(rrg), FlatCap::kNone);
  rrg.set_kind(0, NodeKind::kEarly);
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (rrg.graph().dst(e) == 0) rrg.set_gamma(e, 1.0 / 200.0);
  }
  EXPECT_EQ(FlatKernel::unsupported_reason(rrg), FlatCap::kInDegreeCap);
  EXPECT_FALSE(FlatKernel::supports(rrg));
}

TEST(FlatCapFallback, OutDegreeCapRunsOnReference) {
  expect_reference_fallback(wide_fanout_rrg(300), FlatCap::kOutDegreeCap,
                            fallback_options(7));
}

TEST(FlatCapFallback, NodeCountCapRunsOnReference) {
  // 65537 nodes: keep the simulated window small -- the point is the
  // classification and the bit-exact reference agreement, not theta
  // accuracy.
  expect_reference_fallback(huge_ring_rrg(), FlatCap::kTooManyNodes,
                            fallback_options(9, 30));
}

/// One drain mixing flat-path and every-cap fallback jobs: per-job paths
/// are classified independently and each job's theta equals its solo
/// counterpart bit for bit, across pool sizes.
TEST(FlatCapFallback, MixedFleetMatchesSoloJobs) {
  const Rrg deep = deep_chain_rrg();
  const Rrg wide_in = wide_join_rrg(300);
  const Rrg wide_out = wide_fanout_rrg(300);
  const Rrg flat = figures::figure1b(0.5, true);
  const SimOptions options = fallback_options(11);

  std::vector<SimReport> solo;
  for (const Rrg* rrg : {&flat, &deep, &wide_in, &wide_out}) {
    solo.push_back(simulate_throughput(*rrg, options));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    SimFleet fleet(threads);
    for (const Rrg* rrg : {&flat, &deep, &wide_in, &wide_out}) {
      fleet.submit(*rrg, options);
    }
    const std::vector<SimReport> reports = fleet.drain();
    ASSERT_EQ(reports.size(), 4u);
    EXPECT_EQ(reports[0].path, SimPath::kFlat);
    EXPECT_EQ(reports[1].fallback, FlatCap::kDeepEbChain);
    EXPECT_EQ(reports[2].fallback, FlatCap::kInDegreeCap);
    EXPECT_EQ(reports[3].fallback, FlatCap::kOutDegreeCap);
    for (std::size_t i = 0; i < reports.size(); ++i) {
      EXPECT_EQ(reports[i].theta, solo[i].theta)
          << "threads " << threads << " job " << i;
      EXPECT_EQ(reports[i].stderr_theta, solo[i].stderr_theta);
      EXPECT_EQ(reports[i].path, solo[i].path);
    }
  }
}

}  // namespace
}  // namespace elrr::sim
