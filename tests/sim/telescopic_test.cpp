/// \file telescopic_test.cpp
/// Variable-latency ("telescopic") nodes -- the paper's future-work
/// extension (Section 6). Covers the kernel's busy/withheld-output
/// semantics, the exact Markov closed forms, Monte-Carlo agreement and
/// the LP throughput bound with service throttles.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "core/tgmg.hpp"
#include "sim/kernel.hpp"
#include "sim/markov.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::sim {
namespace {

using namespace figures;

Kernel::GuardChooser guard_always(std::size_t pos) {
  return [pos](NodeId) { return pos; };
}

Kernel::LatencyChooser always_slow() {
  return [](NodeId) { return true; };
}

Kernel::LatencyChooser always_fast() {
  return [](NodeId) { return false; };
}

/// One telescopic node on a self-loop with one token in one EB: the
/// smallest system whose throughput is limited by the busy period alone.
Rrg self_loop(double fast_prob, int slow_extra) {
  Rrg rrg;
  const NodeId n = rrg.add_node("alu", 1.0);
  rrg.add_edge(n, n, 1, 1);
  rrg.set_telescopic(n, fast_prob, slow_extra);
  return rrg;
}

/// A 2-stage ring (producer -> telescopic consumer -> producer) with
/// enough tokens/buffers that only the telescopic unit throttles.
Rrg ring_with_alu(double fast_prob, int slow_extra) {
  Rrg rrg;
  const NodeId src = rrg.add_node("src", 1.0);
  const NodeId alu = rrg.add_node("alu", 1.0);
  rrg.add_edge(src, alu, 2, 2);
  rrg.add_edge(alu, src, 2, 2);
  rrg.set_telescopic(alu, fast_prob, slow_extra);
  return rrg;
}

// ------------------------------------------------------------------ model

TEST(Telescopic, DefaultsAreDisabled) {
  Rrg rrg;
  const NodeId n = rrg.add_node("n", 1.0);
  EXPECT_FALSE(rrg.is_telescopic(n));
  EXPECT_FALSE(rrg.has_telescopic());
  EXPECT_EQ(rrg.service(n), 0.0);
  EXPECT_EQ(throughput_cap(rrg), 1.0);
}

TEST(Telescopic, SetTelescopicValidatesArguments) {
  Rrg rrg;
  const NodeId n = rrg.add_node("n", 1.0);
  EXPECT_THROW(rrg.set_telescopic(n, 0.0, 1), InvalidInputError);
  EXPECT_THROW(rrg.set_telescopic(n, -0.5, 1), InvalidInputError);
  EXPECT_THROW(rrg.set_telescopic(n, 1.5, 1), InvalidInputError);
  EXPECT_THROW(rrg.set_telescopic(n, 0.5, -1), InvalidInputError);
  EXPECT_THROW(rrg.set_telescopic(n, 0.5, 201), InvalidInputError);
  rrg.set_telescopic(n, 0.5, 2);
  EXPECT_TRUE(rrg.is_telescopic(n));
  EXPECT_DOUBLE_EQ(rrg.service(n), 1.0);
}

TEST(Telescopic, FastProbOneOrZeroExtraMeansDisabled) {
  Rrg rrg;
  const NodeId n = rrg.add_node("n", 1.0);
  rrg.set_telescopic(n, 1.0, 5);
  EXPECT_FALSE(rrg.is_telescopic(n));
  rrg.set_telescopic(n, 0.5, 0);
  EXPECT_FALSE(rrg.is_telescopic(n));
}

TEST(Telescopic, ThroughputCapUsesWorstNode) {
  Rrg rrg = ring_with_alu(0.5, 2);   // service 1.0 -> cap 1/2
  EXPECT_DOUBLE_EQ(throughput_cap(rrg), 0.5);
  rrg.set_telescopic(0, 0.75, 8);    // service 2.0 -> cap 1/3
  EXPECT_DOUBLE_EQ(throughput_cap(rrg), 1.0 / 3.0);
}

TEST(Telescopic, SurvivesConfigApplication) {
  const Rrg rrg = ring_with_alu(0.8, 3);
  const Rrg out = apply_config(rrg, initial_config(rrg));
  EXPECT_TRUE(out.is_telescopic(1));
  EXPECT_EQ(out.telescopic(1), rrg.telescopic(1));
}

// ----------------------------------------------------------------- kernel

TEST(TelescopicKernel, AlwaysFastMatchesNonTelescopic) {
  const Rrg plain = []{
    Rrg r;
    const NodeId src = r.add_node("src", 1.0);
    const NodeId alu = r.add_node("alu", 1.0);
    r.add_edge(src, alu, 2, 2);
    r.add_edge(alu, src, 2, 2);
    return r;
  }();
  const Rrg tele = ring_with_alu(0.5, 3);
  const Kernel k_plain(plain);
  const Kernel k_tele(tele);
  SyncState a = k_plain.initial_state();
  SyncState b = k_tele.initial_state();
  std::vector<std::uint8_t> fired_a(plain.num_nodes());
  std::vector<std::uint8_t> fired_b(tele.num_nodes());
  for (int t = 0; t < 25; ++t) {
    k_plain.step(a, guard_always(0), {}, fired_a.data());
    k_tele.step(b, guard_always(0), always_fast(), fired_b.data());
    EXPECT_EQ(fired_a, fired_b) << "cycle " << t;
  }
}

TEST(TelescopicKernel, SlowFiringPeriodIsOnePlusExtra) {
  for (int extra : {1, 2, 5}) {
    const Rrg rrg = self_loop(0.5, extra);
    const Kernel kernel(rrg);
    SyncState s = kernel.initial_state();
    std::vector<int> fire_cycles;
    std::vector<std::uint8_t> fired(rrg.num_nodes());
    for (int t = 0; t < 6 * (extra + 1); ++t) {
      kernel.step(s, guard_always(0), always_slow(), fired.data());
      if (fired[0]) {
        fire_cycles.push_back(t);
      }
    }
    ASSERT_GE(fire_cycles.size(), 3u) << "extra=" << extra;
    for (std::size_t i = 1; i < fire_cycles.size(); ++i) {
      EXPECT_EQ(fire_cycles[i] - fire_cycles[i - 1], 1 + extra)
          << "extra=" << extra;
    }
  }
}

TEST(TelescopicKernel, BusyNodeDoesNotSampleLatency) {
  const Rrg rrg = self_loop(0.5, 3);
  const Kernel kernel(rrg);
  SyncState s = kernel.initial_state();
  int draws = 0;
  const Kernel::LatencyChooser counting = [&](NodeId) {
    ++draws;
    return true;
  };
  kernel.step(s, guard_always(0), counting);  // fires, draws once
  EXPECT_EQ(draws, 1);
  EXPECT_TRUE(kernel.latency_nodes(s).empty());  // busy
  kernel.step(s, guard_always(0), counting);  // busy: no draw
  kernel.step(s, guard_always(0), counting);
  EXPECT_EQ(draws, 1);
}

TEST(TelescopicKernel, WithheldOutputArrivesExactlyExtraCyclesLate) {
  // src fires at cycle 0; a slow consumer (extra = 2) fires at 0 and
  // again at 3; its output token reaches src after release + 1 EB.
  const Rrg rrg = ring_with_alu(0.5, 2);
  const Kernel kernel(rrg);
  SyncState s = kernel.initial_state();
  std::vector<int> alu_fires;
  std::vector<std::uint8_t> fired(rrg.num_nodes());
  for (int t = 0; t < 13; ++t) {
    kernel.step(s, guard_always(0), always_slow(), fired.data());
    if (fired[1]) {
      alu_fires.push_back(t);
    }
  }
  ASSERT_GE(alu_fires.size(), 4u);
  for (std::size_t i = 1; i < alu_fires.size(); ++i) {
    EXPECT_EQ(alu_fires[i] - alu_fires[i - 1], 3);  // 1 + extra
  }
}

TEST(TelescopicKernel, EncodeDistinguishesBusyStates) {
  const Rrg rrg = self_loop(0.5, 2);
  const Kernel kernel(rrg);
  SyncState a = kernel.initial_state();
  SyncState b = a;
  EXPECT_EQ(a.encode(), b.encode());
  b.busy[0] = 2;
  EXPECT_NE(a.encode(), b.encode());
}

TEST(TelescopicKernel, EarlyTelescopicSkipsGuardSamplingWhileBusy) {
  // Figure 2's mux made telescopic: while busy it must neither sample a
  // guard nor fire.
  Rrg rrg = figure2(0.9);
  rrg.set_telescopic(kM, 0.5, 2);
  const Kernel kernel(rrg);
  SyncState s = kernel.initial_state();
  int guard_draws = 0;
  const Kernel::GuardChooser counting_guard = [&](NodeId) {
    ++guard_draws;
    return 0u;  // top channel
  };
  // First cycle: m samples, fires slow; busy for 2 more cycles.
  std::vector<std::uint8_t> fired(rrg.num_nodes());
  kernel.step(s, counting_guard, always_slow(), fired.data());
  EXPECT_EQ(fired[kM], 1);
  EXPECT_EQ(guard_draws, 1);
  EXPECT_TRUE(kernel.sampling_nodes(s).empty());
  kernel.step(s, counting_guard, always_slow(), fired.data());
  EXPECT_EQ(fired[kM], 0);
  EXPECT_EQ(guard_draws, 1);  // no resample while busy
}

// ----------------------------------------------------------------- markov

TEST(TelescopicMarkov, SelfLoopClosedForm) {
  // Rate = 1 / (p * 1 + (1-p) * (1+e)) = 1 / (1 + (1-p) e).
  for (const auto& [p, e] : std::vector<std::pair<double, int>>{
           {0.5, 1}, {0.9, 2}, {0.25, 3}}) {
    const MarkovResult r = exact_throughput(self_loop(p, e));
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.theta, 1.0 / (1.0 + (1.0 - p) * e), 1e-9)
        << "p=" << p << " e=" << e;
  }
}

TEST(TelescopicMarkov, RingLimitedByBusyPeriodOnly) {
  // Tokens and buffers are plentiful; the telescopic unit is the only
  // bottleneck, so Theta = cap exactly.
  const Rrg rrg = ring_with_alu(0.5, 2);
  const MarkovResult r = exact_throughput(rrg);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.theta, throughput_cap(rrg), 1e-9);
}

TEST(TelescopicMarkov, MatchesLpBoundOnServiceLimitedSystems) {
  // When the busy throttle is the binding constraint the LP bound is
  // tight; the Markov value must meet it.
  for (double p : {0.3, 0.6, 0.9}) {
    const Rrg rrg = ring_with_alu(p, 2);
    const MarkovResult mc = exact_throughput(rrg);
    ASSERT_TRUE(mc.ok);
    const double lp = throughput_upper_bound(rrg);
    EXPECT_NEAR(mc.theta, lp, 1e-9) << "p=" << p;
  }
}

TEST(TelescopicMarkov, TokenLimitedRingIgnoresIdleService) {
  // One token in a long ring: the telescopic unit is mostly idle, and
  // slow firings still delay the lone token, so Theta is below both the
  // token bound and the cap.
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 1, 2);
  rrg.add_edge(b, a, 0, 2);
  rrg.set_telescopic(b, 0.5, 2);
  const MarkovResult r = exact_throughput(rrg);
  ASSERT_TRUE(r.ok);
  // Token round trip: 4 cycles fast, +2 on the slow half of b's firings
  // -> expected period 4 + 0.5 * 2 = 5, rate 1/5.
  EXPECT_NEAR(r.theta, 0.2, 1e-9);
  EXPECT_LT(r.theta, throughput_cap(rrg));
  const double lp = throughput_upper_bound(rrg);
  EXPECT_LE(r.theta, lp + 1e-9);
}

// -------------------------------------------------------------------- sim

struct TelescopicCase {
  double alpha;
  double fast_prob;
  int slow_extra;
};

class TelescopicSimVsMarkov
    : public ::testing::TestWithParam<TelescopicCase> {};

TEST_P(TelescopicSimVsMarkov, Agree) {
  const auto& c = GetParam();
  // Figure 2 with a telescopic F2: early evaluation, anti-tokens and
  // variable latency interacting in one system.
  Rrg rrg = figure2(c.alpha);
  rrg.set_telescopic(kF2, c.fast_prob, c.slow_extra);

  const MarkovResult mc = exact_throughput(rrg);
  ASSERT_TRUE(mc.ok);

  SimOptions opt;
  opt.seed = 7;
  opt.measure_cycles = 30000;
  const SimResult sim = simulate_throughput(rrg, opt);
  EXPECT_NEAR(sim.theta, mc.theta, 5.0 * sim.stderr_theta + 0.01)
      << "alpha=" << c.alpha << " p=" << c.fast_prob
      << " e=" << c.slow_extra;

  const double lp = throughput_upper_bound(rrg);
  EXPECT_LE(mc.theta, lp + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TelescopicSimVsMarkov,
    ::testing::Values(TelescopicCase{0.5, 0.5, 1}, TelescopicCase{0.5, 0.9, 2},
                      TelescopicCase{0.9, 0.5, 1}, TelescopicCase{0.9, 0.8, 3},
                      TelescopicCase{0.7, 0.25, 2},
                      TelescopicCase{0.3, 0.6, 1}));

// ------------------------------------------------------------------- tgmg

TEST(TelescopicTgmg, Procedure1AddsThrottleForSimpleNodes) {
  const Rrg rrg = self_loop(0.5, 2);          // service = 1.0
  const Tgmg tgmg = procedure1(rrg);
  // Nodes: alu (delay = service), input aux (delay = R), throttle
  // (delay 1). The alu no longer carries the edge latency.
  ASSERT_EQ(tgmg.num_nodes(), 3u);
  EXPECT_DOUBLE_EQ(tgmg.delay(0), 1.0);       // (1-p) * extra
  EXPECT_DOUBLE_EQ(tgmg.delay(1), 1.0);       // R(e) on the aux node
  EXPECT_DOUBLE_EQ(tgmg.delay(2), 1.0);       // throttle
  EXPECT_EQ(tgmg.num_edges(), 4u);
}

TEST(TelescopicTgmg, LpBoundEqualsCapWhenServiceBound) {
  for (const auto& [p, e] : std::vector<std::pair<double, int>>{
           {0.5, 1}, {0.8, 4}, {0.1, 2}}) {
    const Rrg rrg = ring_with_alu(p, e);
    EXPECT_NEAR(throughput_upper_bound(rrg), 1.0 / (1.0 + (1.0 - p) * e),
                1e-7)
        << "p=" << p << " e=" << e;
  }
}

TEST(TelescopicTgmg, ThroughLatencyCountsOnTokenLimitedCycles) {
  // One token, ring latency 4 EBs + expected service 1 -> bound 1/5.
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 1, 2);
  rrg.add_edge(b, a, 0, 2);
  rrg.set_telescopic(b, 0.5, 2);
  EXPECT_NEAR(throughput_upper_bound(rrg), 0.2, 1e-7);
}

TEST(TelescopicTgmg, EarlyTelescopicBoundThroughProcedure2) {
  // Figure 2's mux made telescopic: the cap applies on top of the
  // guard-probability bound 1/(3-2a).
  for (double alpha : {0.5, 0.9}) {
    Rrg rrg = figure2(alpha);
    rrg.set_telescopic(kM, 0.5, 2);  // service 1 -> cap 1/2
    const double lp = throughput_upper_bound(rrg);
    EXPECT_LE(lp, 0.5 + 1e-9) << "alpha=" << alpha;
    const MarkovResult mc = exact_throughput(rrg);
    ASSERT_TRUE(mc.ok);
    EXPECT_LE(mc.theta, lp + 1e-9) << "alpha=" << alpha;
  }
}

// ---------------------------------------------------- random property

/// Tiny random live RRGs mixing early and telescopic nodes: a ring
/// backbone (guaranteeing strong connectivity) with random chords,
/// tokens, buffers, one early join and one telescopic node.
Rrg random_mixed_rrg(std::uint64_t seed) {
  elrr::Rng rng(seed * 6151 + 11);
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("n" + std::to_string(i), 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int tokens = static_cast<int>(rng.uniform_int(0, 1));
    rrg.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 tokens, tokens + static_cast<int>(rng.uniform_int(0, 1)));
  }
  // One chord creating a 2-input join; make it early half the time.
  const auto target = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  const auto source = static_cast<NodeId>((target + n - 2) % n);
  rrg.add_edge(source, target, 1, 1);
  if (rng.bernoulli(0.5)) {
    rrg.set_kind(target, NodeKind::kEarly);
    const auto& inputs = rrg.graph().in_edges(target);
    const double alpha = rng.uniform(0.2, 0.8);
    rrg.set_gamma(inputs[0], alpha);
    for (std::size_t k = 1; k < inputs.size(); ++k) {
      rrg.set_gamma(inputs[k], (1.0 - alpha) / (static_cast<double>(inputs.size()) - 1.0));
    }
  }
  // One telescopic node.
  const auto tele = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  rrg.set_telescopic(tele, rng.uniform(0.3, 0.9),
                     static_cast<int>(rng.uniform_int(1, 3)));
  // Ensure a token somewhere (ring sums could be 0).
  if (!rrg.is_live()) {
    rrg.set_tokens(0, 1);
    rrg.set_buffers(0, std::max(rrg.buffers(0), 1));
  }
  rrg.validate();
  return rrg;
}

class TelescopicRandom : public ::testing::TestWithParam<int> {};

TEST_P(TelescopicRandom, MarkovSimAndLpAgree) {
  const Rrg rrg = random_mixed_rrg(static_cast<std::uint64_t>(GetParam()));
  MarkovOptions mopt;
  mopt.max_states = 60000;
  const MarkovResult mc = exact_throughput(rrg, mopt);
  if (!mc.ok) GTEST_SKIP() << "state space too large";

  SimOptions sopt;
  sopt.seed = 19;
  sopt.measure_cycles = 25000;
  const SimResult sim = simulate_throughput(rrg, sopt);
  EXPECT_NEAR(sim.theta, mc.theta, 5.0 * sim.stderr_theta + 0.015);

  const double lp = throughput_upper_bound(rrg);
  EXPECT_LE(mc.theta, lp + 1e-9);
  EXPECT_LE(lp, throughput_cap(rrg) + 1e-9);
  EXPECT_GT(mc.theta, 0.0);  // live system keeps moving
}

INSTANTIATE_TEST_SUITE_P(Seeds, TelescopicRandom, ::testing::Range(0, 24));

}  // namespace
}  // namespace elrr::sim
