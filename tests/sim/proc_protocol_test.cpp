// Unit tests for the proc-fleet wire protocol and the worker-side slice
// runner -- everything the process-isolated tier does *without* forking,
// so this suite runs under the sanitizer sweeps that exclude the
// process-spawning chaos tests. The frame codec, the request/response
// payloads, the torn-frame taxonomy and the worker_loop state machine
// are all exercised over plain pipes inside this one process.

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench89/generator.hpp"
#include "io/rrg_format.hpp"
#include "sim/fleet.hpp"
#include "sim/proc_fleet.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace elrr::sim::proc {
namespace {

Rrg test_rrg(std::uint64_t seed = 1) {
  return bench89::make_table2_rrg(bench89::spec_by_name("s27"), seed);
}

SimOptions small_options() {
  SimOptions options;
  options.seed = 7;
  options.warmup_cycles = 100;
  options.measure_cycles = 1000;
  options.runs = 4;
  return options;
}

/// A unidirectional pipe with RAII close (tests leak no fds on failure).
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_fd() const { return fds[0]; }
  int write_fd() const { return fds[1]; }
  void close_write() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

/// Drains every byte currently buffered in the pipe (the writer must
/// have closed its end first).
std::string drain_raw(int fd) {
  std::string bytes;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got <= 0) break;
    bytes.append(buf, static_cast<std::size_t>(got));
  }
  return bytes;
}

TEST(ProcProtocol, RequestRoundTripsEveryField) {
  const Rrg rrg = test_rrg();
  const std::string text = io::write_rrg(rrg);
  SimOptions options = small_options();
  options.max_batch = 8;
  options.force_reference = true;

  const std::string payload = encode_request(text, options, 1, 3);
  const SliceRequest decoded = decode_request(payload);
  EXPECT_EQ(decoded.first, 1u);
  EXPECT_EQ(decoded.count, 3u);
  EXPECT_EQ(decoded.rrg_text, text);
  EXPECT_EQ(decoded.options.seed, options.seed);
  EXPECT_EQ(decoded.options.warmup_cycles, options.warmup_cycles);
  EXPECT_EQ(decoded.options.measure_cycles, options.measure_cycles);
  EXPECT_EQ(decoded.options.runs, options.runs);
  EXPECT_EQ(decoded.options.max_batch, options.max_batch);
  EXPECT_EQ(decoded.options.force_reference, options.force_reference);
}

TEST(ProcProtocol, RequestRejectsOutOfRangeSlices) {
  const std::string text = io::write_rrg(test_rrg());
  const SimOptions options = small_options();  // runs = 4
  EXPECT_THROW(decode_request(encode_request(text, options, 0, 0)), Error);
  EXPECT_THROW(decode_request(encode_request(text, options, 2, 3)), Error);
  EXPECT_THROW(decode_request(std::string("short")), Error);
}

TEST(ProcProtocol, ResponsesRoundTrip) {
  SliceRun run;
  run.thetas = {0.5, 0.25, 1.0};
  run.degraded_slices = 2;
  const SliceOutcome ok = decode_response(encode_ok_response(run));
  EXPECT_TRUE(ok.error.empty());
  EXPECT_EQ(ok.thetas, run.thetas);
  EXPECT_EQ(ok.degraded_slices, 2u);

  const SliceOutcome failed =
      decode_response(encode_error_response("kernel exploded"));
  EXPECT_EQ(failed.error, "kernel exploded");
  EXPECT_TRUE(failed.thetas.empty());
}

TEST(ProcProtocol, FrameRoundTripsOverAPipe) {
  Pipe pipe;
  const std::string payload = "the quick brown frame";
  ASSERT_TRUE(write_frame(pipe.write_fd(), payload));
  std::string read_back;
  ASSERT_EQ(read_frame(pipe.read_fd(), &read_back), FrameRead::kOk);
  EXPECT_EQ(read_back, payload);
  // Clean EOF between frames.
  pipe.close_write();
  EXPECT_EQ(read_frame(pipe.read_fd(), &read_back), FrameRead::kEof);
}

TEST(ProcProtocol, CorruptPayloadByteIsTorn) {
  Pipe source;
  ASSERT_TRUE(write_frame(source.write_fd(), "checksummed payload"));
  source.close_write();
  std::string raw = drain_raw(source.read_fd());
  ASSERT_GT(raw.size(), 9u);
  raw[9] ^= 0x40;  // one payload bit, caught by the FNV-1a trailer

  Pipe sink;
  ASSERT_EQ(::write(sink.write_fd(), raw.data(), raw.size()),
            static_cast<ssize_t>(raw.size()));
  sink.close_write();
  std::string payload;
  EXPECT_EQ(read_frame(sink.read_fd(), &payload), FrameRead::kTorn);
}

TEST(ProcProtocol, EofMidFrameIsTorn) {
  Pipe source;
  ASSERT_TRUE(write_frame(source.write_fd(), "truncated in flight"));
  source.close_write();
  const std::string raw = drain_raw(source.read_fd());

  Pipe sink;
  const std::size_t half = raw.size() / 2;
  ASSERT_EQ(::write(sink.write_fd(), raw.data(), half),
            static_cast<ssize_t>(half));
  sink.close_write();
  std::string payload;
  EXPECT_EQ(read_frame(sink.read_fd(), &payload), FrameRead::kTorn);
}

TEST(ProcProtocol, OversizedLengthFieldIsTornNotAllocated) {
  Pipe source;
  ASSERT_TRUE(write_frame(source.write_fd(), "x"));
  source.close_write();
  std::string raw = drain_raw(source.read_fd());
  // Bytes [4, 8) are the little-endian payload length: saturate it.
  std::memset(raw.data() + 4, 0xFF, 4);

  Pipe sink;
  ASSERT_EQ(::write(sink.write_fd(), raw.data(), raw.size()),
            static_cast<ssize_t>(raw.size()));
  sink.close_write();
  std::string payload;
  EXPECT_EQ(read_frame(sink.read_fd(), &payload), FrameRead::kTorn);
}

TEST(ProcProtocol, SliceRunnerMatchesTheInProcessFleet) {
  const SimOptions options = small_options();
  // One whole-job slice against the fleet's own result: the worker-side
  // runner must reproduce the in-process pool bit for bit, and a split
  // dispatch (the supervisor's partition) must agree with a whole one.
  SliceRunner whole(test_rrg(), options);
  const SliceRun all = whole.run(0, 4);
  ASSERT_EQ(all.thetas.size(), 4u);

  SliceRunner split(test_rrg(), options);
  const SliceRun head = split.run(0, 1);
  const SliceRun tail = split.run(1, 3);
  ASSERT_EQ(head.thetas.size(), 1u);
  ASSERT_EQ(tail.thetas.size(), 3u);
  EXPECT_EQ(all.thetas[0], head.thetas[0]);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(all.thetas[r + 1], tail.thetas[r]);

  // And against the one-run simulator entry point.
  SimOptions single = options;
  single.runs = 1;
  const SimResult solo = simulate_throughput(test_rrg(), single);
  EXPECT_EQ(solo.theta, all.thetas[0]);
}

TEST(ProcProtocol, SliceRunnerRejectsBadSlices) {
  SliceRunner runner(test_rrg(), small_options());  // runs = 4
  EXPECT_THROW(runner.run(0, 0), Error);
  EXPECT_THROW(runner.run(3, 2), Error);
  EXPECT_THROW(runner.run(5, 1), Error);
}

TEST(ProcProtocol, WorkerLoopServesSlicesInProcess) {
  // The full worker state machine -- hello, request/response, runner
  // reuse across consecutive slices, clean EOF exit -- driven over
  // pipes from this test acting as the supervisor, no fork involved.
  Pipe to_worker;
  Pipe from_worker;
  int exit_code = -1;
  std::thread worker([&] {
    exit_code = worker_loop(to_worker.read_fd(), from_worker.write_fd());
    ::close(from_worker.fds[1]);
    from_worker.fds[1] = -1;
  });

  std::string hello;
  ASSERT_EQ(read_frame(from_worker.read_fd(), &hello), FrameRead::kOk);
  EXPECT_EQ(hello, kHelloPayload);

  const std::string text = io::write_rrg(test_rrg());
  const SimOptions options = small_options();
  SliceRunner oracle(test_rrg(), options);
  const SliceRun expected = oracle.run(0, 4);

  // Two slices of the same job: the second reuses the worker's cached
  // runner (same payload prefix), and together they cover every run.
  std::string response;
  ASSERT_TRUE(write_frame(to_worker.write_fd(),
                          encode_request(text, options, 0, 2)));
  ASSERT_EQ(read_frame(from_worker.read_fd(), &response), FrameRead::kOk);
  const SliceOutcome first = decode_response(response);
  ASSERT_TRUE(first.error.empty());
  ASSERT_EQ(first.thetas.size(), 2u);

  ASSERT_TRUE(write_frame(to_worker.write_fd(),
                          encode_request(text, options, 2, 2)));
  ASSERT_EQ(read_frame(from_worker.read_fd(), &response), FrameRead::kOk);
  const SliceOutcome second = decode_response(response);
  ASSERT_TRUE(second.error.empty());
  ASSERT_EQ(second.thetas.size(), 2u);

  EXPECT_EQ(first.thetas[0], expected.thetas[0]);
  EXPECT_EQ(first.thetas[1], expected.thetas[1]);
  EXPECT_EQ(second.thetas[0], expected.thetas[2]);
  EXPECT_EQ(second.thetas[1], expected.thetas[3]);

  to_worker.close_write();
  worker.join();
  EXPECT_EQ(exit_code, kExitOk);
}

TEST(ProcProtocol, WorkerLoopReportsStructuredErrors) {
  Pipe to_worker;
  Pipe from_worker;
  int exit_code = -1;
  std::thread worker([&] {
    exit_code = worker_loop(to_worker.read_fd(), from_worker.write_fd());
    ::close(from_worker.fds[1]);
    from_worker.fds[1] = -1;
  });

  std::string frame;
  ASSERT_EQ(read_frame(from_worker.read_fd(), &frame), FrameRead::kOk);

  // Unparsable candidate text: the worker stays alive and answers with a
  // structured error (a deterministic failure, not a crash)...
  ASSERT_TRUE(write_frame(
      to_worker.write_fd(),
      encode_request("not an rrg file", small_options(), 0, 2)));
  ASSERT_EQ(read_frame(from_worker.read_fd(), &frame), FrameRead::kOk);
  const SliceOutcome outcome = decode_response(frame);
  EXPECT_FALSE(outcome.error.empty());

  // ...and still serves a healthy slice afterwards.
  ASSERT_TRUE(write_frame(
      to_worker.write_fd(),
      encode_request(io::write_rrg(test_rrg()), small_options(), 0, 2)));
  ASSERT_EQ(read_frame(from_worker.read_fd(), &frame), FrameRead::kOk);
  EXPECT_TRUE(decode_response(frame).error.empty());

  to_worker.close_write();
  worker.join();
  EXPECT_EQ(exit_code, kExitOk);
}

}  // namespace
}  // namespace elrr::sim::proc
