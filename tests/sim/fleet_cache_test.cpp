/// \file fleet_cache_test.cpp
/// The bounded session cache and the multi-client async API added for
/// the svc::Scheduler: LRU byte-cap eviction (results stay correct --
/// eviction only forgets dedup identity, never invalidates tickets),
/// cache stats (hits/misses/evictions), ticket release, and concurrent
/// client threads submitting/waiting on one fleet with bit-exact
/// results.

#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/figures.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"

namespace elrr::sim {
namespace {

/// Random live RRG (same family as fleet_async_test.cpp, its own
/// stream).
Rrg random_rrg(std::uint64_t seed) {
  elrr::Rng rng(seed * 9277 + 11);
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("n" + std::to_string(i), 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int tokens = static_cast<int>(rng.uniform_int(0, 2));
    rrg.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 tokens, tokens + 1);
  }
  std::vector<EdgeId> dead;
  while (!rrg.is_live(&dead)) {
    const int tokens = rrg.tokens(dead[0]) + 1;
    rrg.set_tokens(dead[0], tokens);
    rrg.set_buffers(dead[0], std::max(tokens, rrg.buffers(dead[0])));
  }
  rrg.validate();
  return rrg;
}

SimOptions small_options(std::uint64_t seed) {
  SimOptions options;
  options.seed = seed;
  options.warmup_cycles = 50;
  options.measure_cycles = 400;
  options.runs = 2;
  return options;
}

/// A tiny byte cap forces LRU eviction; the evicted candidate
/// re-simulates on resubmission (a new miss) with a bit-identical
/// result, and the stats ledger adds up.
TEST(SimFleetCache, ByteCapEvictsLruAndStaysCorrect) {
  const Rrg a = random_rrg(1);
  const Rrg b = random_rrg(2);
  const SimOptions options = small_options(5);

  SimFleet fleet(1, /*dedup=*/true, /*cache_cap_bytes=*/1);
  const SimTicket ta = fleet.submit_async(a, options);
  const SimReport ra = fleet.wait(ta);
  EXPECT_TRUE(ta.fresh);

  // Submitting b evicts a (cap fits at most one entry; the newest
  // survives -- the cache never evicts below one entry).
  const SimTicket tb = fleet.submit_async(b, options);
  const SimReport rb = fleet.wait(tb);
  SimCacheStats stats = fleet.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.capacity_bytes, 1u);

  // The evicted ticket is still waitable (shared ownership): eviction
  // only forgot the dedup identity.
  EXPECT_EQ(fleet.wait(ta).theta, ra.theta);

  // Resubmitting a is a *miss* now (it was evicted) -- and bit-exact.
  const SimTicket ta2 = fleet.submit_async(a, options);
  EXPECT_TRUE(ta2.fresh);
  EXPECT_EQ(fleet.wait(ta2).theta, ra.theta);
  stats = fleet.cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GE(stats.evictions, 2u);

  // Unrelated sanity: b's result matches solo simulation.
  EXPECT_EQ(rb.theta, simulate_throughput(b, options).theta);
}

/// With an ample cap the cache dedups across waves and the hit/miss
/// counters reflect it; bytes are accounted and bounded by the cap.
TEST(SimFleetCache, StatsLedger) {
  const Rrg a = random_rrg(3);
  const SimOptions options = small_options(7);
  SimFleet fleet(1);
  EXPECT_EQ(fleet.cache_stats().entries, 0u);
  EXPECT_EQ(fleet.cache_stats().capacity_bytes, kDefaultSimCacheCapBytes);

  const SimTicket t1 = fleet.submit_async(a, options);
  const SimTicket t2 = fleet.submit_async(a, options);  // alias
  (void)fleet.wait(t1);
  (void)fleet.wait(t2);
  EXPECT_TRUE(t1.fresh);
  EXPECT_FALSE(t2.fresh);
  const SimCacheStats stats = fleet.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
}

/// release() forgets the ticket (poll/wait throw; wait_all skips it)
/// but never another ticket aliasing the same job.
TEST(SimFleetCache, ReleaseForgetsTheTicketOnly) {
  const Rrg a = random_rrg(4);
  const SimOptions options = small_options(9);
  SimFleet fleet(1);
  const SimTicket keep = fleet.submit_async(a, options);
  const SimTicket drop = fleet.submit_async(a, options);  // alias of keep
  const SimReport report = fleet.wait(keep);

  fleet.release(drop);
  fleet.release(drop);  // idempotent
  EXPECT_THROW((void)fleet.poll(drop), Error);
  EXPECT_THROW((void)fleet.wait(drop), Error);
  EXPECT_EQ(fleet.wait(keep).theta, report.theta);  // alias unaffected

  // wait_all reports only the surviving ticket.
  EXPECT_EQ(fleet.wait_all().size(), 1u);
}

/// The multi-client contract: many threads submit and wait on one fleet
/// concurrently -- duplicates dedup to one simulation across *threads*,
/// every result is bit-exact vs solo simulation, and the bookkeeping
/// (misses == unique candidates) survives the race.
TEST(SimFleetCache, ConcurrentClientsShareOneFleet) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kCandidates = 6;
  std::vector<Rrg> candidates;
  std::vector<double> solo;
  const SimOptions options = small_options(21);
  for (std::size_t i = 0; i < kCandidates; ++i) {
    candidates.push_back(random_rrg(100 + i));
    solo.push_back(simulate_throughput(candidates[i], options).theta);
  }

  SimFleet fleet(2);
  std::vector<std::vector<double>> thetas(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Each client walks the shared candidate set in its own order and
      // waits its own tickets -- submissions interleave arbitrarily.
      std::vector<SimTicket> tickets;
      for (std::size_t i = 0; i < kCandidates; ++i) {
        const std::size_t pick = (i + c) % kCandidates;
        tickets.push_back(fleet.submit_async(candidates[pick], options));
      }
      for (std::size_t i = 0; i < kCandidates; ++i) {
        thetas[c].push_back(fleet.wait(tickets[i]).theta);
        fleet.release(tickets[i]);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < kCandidates; ++i) {
      const std::size_t pick = (i + c) % kCandidates;
      EXPECT_EQ(thetas[c][i], solo[pick]) << "client " << c << " job " << i;
    }
  }
  const SimCacheStats stats = fleet.cache_stats();
  EXPECT_EQ(stats.misses, kCandidates);  // one simulation per unique job
  EXPECT_EQ(stats.hits, kClients * kCandidates - kCandidates);
  EXPECT_EQ(fleet.async_pending(), 0u);
}

/// Failure containment under concurrency: clients hammer a tiny-cap
/// fleet (constant eviction) while a probabilistic fail point kills
/// random slices. Every wait either rethrows the injected fault or
/// returns a bit-exact result; failed candidates are purged from the
/// dedup cache, so an immediate resubmission recovers; and the fleet
/// stays fully usable afterwards.
TEST(SimFleetCache, ConcurrentReleaseAndEvictionUnderInjectedFailure) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRounds = 8;
  std::vector<Rrg> candidates;
  std::vector<double> solo;
  const SimOptions options = small_options(33);
  for (std::size_t i = 0; i < 5; ++i) {
    candidates.push_back(random_rrg(500 + i));
    solo.push_back(simulate_throughput(candidates[i], options).theta);
  }

  SimFleet fleet(2, /*dedup=*/true, /*cache_cap_bytes=*/1);
  failpoint::configure("fleet.worker=prob:0.3@11");
  std::atomic<std::size_t> faults{0};
  std::atomic<std::size_t> successes{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        const std::size_t pick = (r + c) % candidates.size();
        const SimTicket ticket =
            fleet.submit_async(Rrg(candidates[pick]), options);
        try {
          const SimReport report = fleet.wait(ticket);
          EXPECT_EQ(report.theta, solo[pick])
              << "client " << c << " round " << r;
          successes.fetch_add(1);
        } catch (const failpoint::FailPointError&) {
          faults.fetch_add(1);
        }
        fleet.release(ticket);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  failpoint::reset();

  EXPECT_EQ(successes.load() + faults.load(), kClients * kRounds);
  EXPECT_GT(faults.load(), 0u);  // P=.3 over 32+ slices: fired

  // Post-chaos: the same fleet serves every candidate bit-exactly (any
  // failed cache entries were purged, so these re-run fresh or alias a
  // *successful* completion -- never a cached failure).
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const SimTicket ticket =
        fleet.submit_async(Rrg(candidates[i]), options);
    EXPECT_EQ(fleet.wait(ticket).theta, solo[i]) << i;
    fleet.release(ticket);
  }
  EXPECT_EQ(fleet.async_pending(), 0u);
}

/// Dedup-off fleets keep the historical async_cache_size() meaning
/// (unique simulations ever) and never alias tickets.
TEST(SimFleetCache, DedupOffStillCountsUniqueJobs) {
  const Rrg a = random_rrg(8);
  const SimOptions options = small_options(13);
  SimFleet fleet(1, /*dedup=*/false);
  const SimTicket t1 = fleet.submit_async(a, options);
  const SimTicket t2 = fleet.submit_async(a, options);
  EXPECT_TRUE(t1.fresh);
  EXPECT_TRUE(t2.fresh);  // no cache, no aliasing
  EXPECT_EQ(fleet.wait(t1).theta, fleet.wait(t2).theta);
  EXPECT_EQ(fleet.async_cache_size(), 2u);
  EXPECT_EQ(fleet.cache_stats().entries, 0u);  // no cache entries exist
}

}  // namespace
}  // namespace elrr::sim
