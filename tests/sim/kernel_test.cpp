#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "support/error.hpp"

namespace elrr::sim {
namespace {

using namespace figures;

Kernel::GuardChooser always(std::size_t pos) {
  return [pos](NodeId) { return pos; };
}

TEST(Kernel, InitialStateTokensAndAntiTokens) {
  const Rrg rrg = figure2(0.9);
  const Kernel kernel(rrg);
  const SyncState s = kernel.initial_state();
  EXPECT_EQ(s.edges[kMF1].ready, 1);
  EXPECT_EQ(s.edges[kMF1].anti, 0);
  EXPECT_EQ(s.edges[kBottom].ready, 0);
  EXPECT_EQ(s.edges[kBottom].anti, 2);  // two anti-tokens
  EXPECT_EQ(s.edges[kTop].inflight.size(), 1u);
  EXPECT_EQ(s.pending_guard[kM], kNoGuard);
}

TEST(Kernel, Figure1aAllNodesFireEveryCycleUnderLateEvaluation) {
  const Rrg rrg = figure1a(0.5, false);
  const Kernel kernel(rrg);
  SyncState s = kernel.initial_state();
  for (int t = 0; t < 20; ++t) {
    EXPECT_EQ(kernel.step(s, always(0)), 5u) << "cycle " << t;
  }
}

TEST(Kernel, Figure2FiresEveryCycleWhenMuxAlwaysPicksTop) {
  // With the guard always on the (alpha) top input, figure 2 sustains
  // Theta = 1 = 1/(3 - 2*1): every node fires every cycle.
  const Rrg rrg = figure2(0.9);
  const Kernel kernel(rrg);
  // Guard position of the top edge within m's input list.
  std::size_t top_pos = 0;
  const auto& inputs = rrg.graph().in_edges(kM);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] == kTop) top_pos = i;
  }
  SyncState s = kernel.initial_state();
  std::uint32_t fired_m = 0;
  std::vector<std::uint8_t> fired(rrg.num_nodes());
  for (int t = 0; t < 30; ++t) {
    kernel.step(s, always(top_pos), {}, fired.data());
    fired_m += fired[kM];
  }
  EXPECT_EQ(fired_m, 30u);
}

TEST(Kernel, Figure2BottomChoiceCostsThreeCycles) {
  // Hand-traced in DESIGN.md: a bottom-guard firing of m completes exactly
  // 3 cycles after the previous firing (anti-tokens must drain first).
  const Rrg rrg = figure2(0.9);
  const Kernel kernel(rrg);
  std::size_t bottom_pos = 0;
  const auto& inputs = rrg.graph().in_edges(kM);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] == kBottom) bottom_pos = i;
  }
  SyncState s = kernel.initial_state();
  std::vector<int> m_fire_cycles;
  std::vector<std::uint8_t> fired(rrg.num_nodes());
  for (int t = 0; t < 12; ++t) {
    kernel.step(s, always(bottom_pos), {}, fired.data());
    if (fired[kM]) {
      m_fire_cycles.push_back(t);
    }
  }
  ASSERT_GE(m_fire_cycles.size(), 3u);
  for (std::size_t i = 1; i < m_fire_cycles.size(); ++i) {
    EXPECT_EQ(m_fire_cycles[i] - m_fire_cycles[i - 1], 3);
  }
}

TEST(Kernel, PendingGuardPersistsUntilSatisfied) {
  const Rrg rrg = figure2(0.9);
  const Kernel kernel(rrg);
  std::size_t bottom_pos = 0;
  const auto& inputs = rrg.graph().in_edges(kM);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] == kBottom) bottom_pos = i;
  }
  SyncState s = kernel.initial_state();
  int chooser_calls = 0;
  const Kernel::GuardChooser counting = [&](NodeId) {
    ++chooser_calls;
    return bottom_pos;
  };
  // m samples once, then waits ~2 more cycles without resampling.
  kernel.step(s, counting);
  EXPECT_EQ(chooser_calls, 1);
  EXPECT_EQ(s.pending_guard[kM], static_cast<std::int8_t>(bottom_pos));
  kernel.step(s, counting);
  EXPECT_EQ(chooser_calls, 1);  // still pending, no resample
}

TEST(Kernel, TokenConservationOnCycles) {
  // Retiming invariant at runtime: total tokens (ready + inflight - anti)
  // around each directed cycle never changes.
  const Rrg rrg = figure2(0.7);
  const Kernel kernel(rrg);
  const auto cycle_sum = [&](const SyncState& s,
                             const std::vector<EdgeId>& cycle) {
    int total = 0;
    for (EdgeId e : cycle) {
      total += s.edges[e].ready - s.edges[e].anti;
      for (auto b : s.edges[e].inflight) total += b;
    }
    return total;
  };
  const std::vector<EdgeId> top_cycle{kMF1, kF1F2, kF2F3, kF3F, kTop};
  const std::vector<EdgeId> bottom_cycle{kMF1, kF1F2, kF2F3, kF3F, kBottom};
  SyncState s = kernel.initial_state();
  EXPECT_EQ(cycle_sum(s, top_cycle), 4);
  EXPECT_EQ(cycle_sum(s, bottom_cycle), 1);
  std::size_t tick = 0;
  const Kernel::GuardChooser alternating = [&](NodeId) -> std::size_t {
    return (tick++ % 3 == 0) ? 0u : 1u;
  };
  for (int t = 0; t < 50; ++t) {
    kernel.step(s, alternating);
    EXPECT_EQ(cycle_sum(s, top_cycle), 4) << "cycle " << t;
    EXPECT_EQ(cycle_sum(s, bottom_cycle), 1) << "cycle " << t;
  }
}

TEST(Kernel, EncodeDistinguishesStates) {
  const Rrg rrg = figure2(0.9);
  const Kernel kernel(rrg);
  SyncState a = kernel.initial_state();
  SyncState b = a;
  EXPECT_EQ(a.encode(), b.encode());
  b.edges[kTop].ready += 1;
  EXPECT_NE(a.encode(), b.encode());
  b = a;
  b.pending_guard[kM] = 1;
  EXPECT_NE(a.encode(), b.encode());
}

TEST(Kernel, SamplingNodesTracksPendingGuards) {
  const Rrg rrg = figure2(0.9);
  const Kernel kernel(rrg);
  SyncState s = kernel.initial_state();
  EXPECT_EQ(kernel.sampling_nodes(s), std::vector<NodeId>{kM});
  s.pending_guard[kM] = 0;
  EXPECT_TRUE(kernel.sampling_nodes(s).empty());
}

}  // namespace
}  // namespace elrr::sim
