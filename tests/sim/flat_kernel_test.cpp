/// \file flat_kernel_test.cpp
/// The flat fast path's contract: bit-exact semantic equivalence with the
/// reference Kernel. Randomized differential tests drive both kernels
/// (and the batched variant) through identical chooser sequences on
/// random RRGs mixing early and telescopic nodes, asserting per-cycle
/// firing counts and full states match exactly; driver-level tests pin
/// theta equality between the fast and reference simulate paths, thread-
/// count invariance, and a fixed-seed golden value.

#include "sim/flat_kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/figures.hpp"
#include "sim/choosers.hpp"
#include "sim/kernel.hpp"
#include "sim/markov.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace elrr::sim {
namespace {

using namespace figures;

/// Random live RRG: ring backbone plus chords; early joins with random
/// gammas; optionally telescopic nodes; buffers up to 3 EBs deep.
Rrg random_rrg(std::uint64_t seed, bool allow_telescopic) {
  elrr::Rng rng(seed * 7907 + 3);
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("n" + std::to_string(i), 1.0);
  }
  const auto random_edge = [&](NodeId u, NodeId v) {
    const int tokens = static_cast<int>(rng.uniform_int(-1, 2));
    const int buffers =
        std::max(tokens, 0) + static_cast<int>(rng.uniform_int(0, 2));
    rrg.add_edge(u, v, tokens, buffers);
  };
  for (std::size_t i = 0; i < n; ++i) {
    random_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  const std::size_t chords =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t k = 0; k < chords; ++k) {
    const auto u = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    random_edge(u, v);
  }
  // Negative preloads must sit on in-edges of early nodes to be
  // meaningful; first pick early joins, then fix up stray anti-tokens.
  for (NodeId v = 0; v < rrg.num_nodes(); ++v) {
    if (rrg.graph().in_degree(v) >= 2 && rng.bernoulli(0.5)) {
      rrg.set_kind(v, NodeKind::kEarly);
      const auto probs = rng.simplex(rrg.graph().in_degree(v), 0.05);
      std::size_t idx = 0;
      for (EdgeId e : rrg.graph().in_edges(v)) rrg.set_gamma(e, probs[idx++]);
    }
  }
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (rrg.tokens(e) < 0 && !rrg.is_early(rrg.graph().dst(e))) {
      rrg.set_tokens(e, 0);
    }
  }
  if (allow_telescopic) {
    const auto t = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    rrg.set_telescopic(t, rng.uniform(0.3, 0.9),
                       static_cast<int>(rng.uniform_int(1, 3)));
  }
  std::vector<EdgeId> dead;
  while (!rrg.is_live(&dead)) {
    // Adding (not setting) tokens strictly raises the dead cycle's sum,
    // so the repair terminates even with negative preloads on the cycle.
    const int tokens = rrg.tokens(dead[0]) + 1;
    rrg.set_tokens(dead[0], tokens);
    rrg.set_buffers(dead[0], std::max(tokens, rrg.buffers(dead[0])));
  }
  rrg.validate();
  return rrg;
}

/// Deterministic synthetic choosers shared verbatim by both kernels: the
/// decision depends only on (cycle, node), so the two kernels see
/// identical draw sequences regardless of internal iteration order.
struct SyntheticChoosers {
  const Rrg* rrg;
  int cycle = 0;
  std::size_t guard(NodeId n) const {
    const std::uint64_t h =
        hash_name(std::to_string(cycle) + "g" + std::to_string(n));
    return static_cast<std::size_t>(h % rrg->graph().in_degree(n));
  }
  bool latency(NodeId n) const {
    const std::uint64_t h =
        hash_name(std::to_string(cycle) + "l" + std::to_string(n));
    return (h & 3) == 0;  // slow every ~4th sampled firing
  }
};

/// Differential property: per-cycle firing counts, per-node firing flags
/// and the full synchronous state stay bit-exactly equal between the
/// reference Kernel and the FlatKernel over a long horizon.
class FlatVsReference : public ::testing::TestWithParam<int> {};

TEST_P(FlatVsReference, BitExactOverHorizon) {
  // Two variants per seed: with and without telescopic nodes; together
  // with the 60-seed range this crosses the >= 100 random-RRG bar.
  for (const bool telescopic : {false, true}) {
    const Rrg rrg =
        random_rrg(static_cast<std::uint64_t>(GetParam()), telescopic);
    const Kernel reference(rrg);
    const FlatKernel flat(rrg);

    SyncState ref_state = reference.initial_state();
    FlatState flat_state = flat.initial_state();
    ASSERT_EQ(flat.to_sync(flat_state), ref_state);

    SyntheticChoosers chooser{&rrg};
    std::vector<std::uint8_t> ref_fired(rrg.num_nodes());
    std::vector<std::uint8_t> flat_fired(rrg.num_nodes());
    const Kernel::GuardChooser ref_guard = [&](NodeId n) {
      return chooser.guard(n);
    };
    const Kernel::LatencyChooser ref_latency = [&](NodeId n) {
      return chooser.latency(n);
    };
    const auto flat_guard = [&](NodeId n) { return chooser.guard(n); };
    const auto flat_latency = [&](NodeId n) { return chooser.latency(n); };

    for (chooser.cycle = 0; chooser.cycle < 200; ++chooser.cycle) {
      const std::uint32_t ref_total =
          reference.step(ref_state, ref_guard, ref_latency, ref_fired.data());
      const std::uint32_t flat_total = flat.step(
          flat_state, flat_guard, flat_latency, flat_fired.data());
      ASSERT_EQ(flat_total, ref_total)
          << "cycle " << chooser.cycle << " telescopic=" << telescopic;
      ASSERT_EQ(flat_fired, ref_fired) << "cycle " << chooser.cycle;
      ASSERT_EQ(flat.to_sync(flat_state), ref_state)
          << "cycle " << chooser.cycle << " telescopic=" << telescopic;
      ASSERT_EQ(flat.encode(flat_state), ref_state.encode())
          << "cycle " << chooser.cycle;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVsReference, ::testing::Range(0, 60));

/// The batched step is run-for-run identical to solo flat stepping, for
/// every lane width the driver instantiates -- telescopic graphs
/// included: each lane's busy countdown, withheld outputs and latency
/// draws mirror the solo path exactly.
template <std::size_t K>
void expect_batch_matches_solo(const Rrg& rrg, bool telescopic) {
  const FlatKernel kernel(rrg);
  const GuardTable guards(rrg);
  const LatencyTable latencies(rrg);
  const std::size_t num_nodes = rrg.num_nodes();

  // Batched: K interleaved runs with run-private streams (RunStreams is
  // the driver's node-major derivation).
  std::uint64_t seeds[K];
  for (std::size_t r = 0; r < K; ++r) {
    seeds[r] = 1000 + 17 * r;
  }
  RunStreams streams(seeds, K, num_nodes);
  const BatchTableGuardChooser batch_guard{&guards, streams.data(), K};
  const BatchTableLatencyChooser batch_latency{&latencies, streams.data(), K};
  FlatBatchState batch = kernel.initial_batch_state(K);
  std::uint64_t batch_totals[K] = {};
  for (int t = 0; t < 300; ++t) {
    kernel.step_batch<K>(batch, batch_guard, batch_totals, batch_latency);
  }

  // Solo: the same K runs one at a time.
  for (std::size_t r = 0; r < K; ++r) {
    elrr::Rng master(1000 + 17 * r);
    std::vector<elrr::Rng> solo_streams;
    for (std::size_t n = 0; n < num_nodes; ++n) {
      solo_streams.push_back(master.split());
    }
    const TableGuardChooser guard{&guards, solo_streams.data()};
    const TableLatencyChooser latency{&latencies, solo_streams.data()};
    FlatState state = kernel.initial_state();
    std::uint64_t total = 0;
    for (int t = 0; t < 300; ++t) total += kernel.step(state, guard, latency);
    EXPECT_EQ(batch_totals[r], total)
        << "run " << r << " K=" << K << " telescopic=" << telescopic;
    EXPECT_EQ(kernel.extract_run(batch, r), state)
        << "run " << r << " K=" << K << " telescopic=" << telescopic;
  }
}

class BatchVsSolo : public ::testing::TestWithParam<int> {};

TEST_P(BatchVsSolo, InterleavedRunsMatchSoloRuns) {
  for (const bool telescopic : {false, true}) {
    const Rrg rrg =
        random_rrg(static_cast<std::uint64_t>(GetParam()), telescopic);
    expect_batch_matches_solo<2>(rrg, telescopic);
    expect_batch_matches_solo<3>(rrg, telescopic);
    expect_batch_matches_solo<4>(rrg, telescopic);
    expect_batch_matches_solo<8>(rrg, telescopic);
    expect_batch_matches_solo<16>(rrg, telescopic);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchVsSolo, ::testing::Range(0, 20));

/// The firing order is level-scheduled: a valid topological order of the
/// zero-buffer subgraph in which registered producers (no combinational
/// in-edges) come first and every combinational edge crosses to a
/// strictly later level group.
TEST(FlatKernel, CombOrderIsLevelScheduled) {
  for (int seed = 0; seed < 10; ++seed) {
    const Rrg rrg = random_rrg(static_cast<std::uint64_t>(seed) + 700, true);
    const FlatKernel kernel(rrg);
    const std::vector<NodeId>& order = kernel.comb_order();
    ASSERT_EQ(order.size(), rrg.num_nodes());
    EXPECT_GE(kernel.num_levels(), 1u);

    // Recompute levels independently and check the order is sorted by
    // level (and hence topological: comb edges strictly raise the level).
    std::vector<std::uint32_t> level(rrg.num_nodes(), 0);
    bool changed = true;
    while (changed) {  // fixpoint; comb subgraph is acyclic
      changed = false;
      for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
        if (rrg.buffers(e) != 0) continue;
        const NodeId u = rrg.graph().src(e), v = rrg.graph().dst(e);
        if (level[v] < level[u] + 1) {
          level[v] = level[u] + 1;
          changed = true;
        }
      }
    }
    std::uint32_t max_level = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_LE(level[order[i - 1]], level[order[i]]) << "position " << i;
    }
    for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
      max_level = std::max(max_level, level[n]);
    }
    EXPECT_EQ(kernel.num_levels(), max_level + 1);
  }
}

/// Telescopic batched stepping against the reference kernel, cycle by
/// cycle: every lane of a step_batch advance must reproduce the reference
/// Kernel's full synchronous state (busy countdowns included) when driven
/// through the same (cycle, node, run)-deterministic chooser sequence.
class TelescopicBatchVsReference : public ::testing::TestWithParam<int> {};

TEST_P(TelescopicBatchVsReference, LanesMatchReferencePerCycle) {
  const Rrg rrg = random_rrg(static_cast<std::uint64_t>(GetParam()), true);
  const FlatKernel flat(rrg);
  const Kernel reference(rrg);
  constexpr std::size_t kRuns = 3;

  const auto guard_for = [&](int cycle, NodeId n, std::size_t run) {
    const std::uint64_t h = hash_name(std::to_string(cycle) + "g" +
                                      std::to_string(n) + "r" +
                                      std::to_string(run));
    return static_cast<std::size_t>(h % rrg.graph().in_degree(n));
  };
  const auto latency_for = [&](int cycle, NodeId n, std::size_t run) {
    const std::uint64_t h = hash_name(std::to_string(cycle) + "l" +
                                      std::to_string(n) + "r" +
                                      std::to_string(run));
    return (h & 3) == 0;  // slow every ~4th sampled firing
  };

  int cycle = 0;
  FlatBatchState batch = flat.initial_batch_state(kRuns);
  std::uint64_t batch_totals[kRuns] = {};
  std::vector<SyncState> ref_states;
  for (std::size_t r = 0; r < kRuns; ++r) {
    ref_states.push_back(reference.initial_state());
  }
  std::uint64_t ref_totals[kRuns] = {};

  for (cycle = 0; cycle < 200; ++cycle) {
    flat.step_batch<kRuns>(
        batch,
        [&](NodeId n, std::size_t run) { return guard_for(cycle, n, run); },
        batch_totals,
        [&](NodeId n, std::size_t run) { return latency_for(cycle, n, run); });
    for (std::size_t r = 0; r < kRuns; ++r) {
      ref_totals[r] += reference.step(
          ref_states[r], [&](NodeId n) { return guard_for(cycle, n, r); },
          [&](NodeId n) { return latency_for(cycle, n, r); });
      ASSERT_EQ(flat.to_sync(flat.extract_run(batch, r)), ref_states[r])
          << "cycle " << cycle << " run " << r;
    }
  }
  for (std::size_t r = 0; r < kRuns; ++r) {
    EXPECT_EQ(batch_totals[r], ref_totals[r]) << "run " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TelescopicBatchVsReference,
                         ::testing::Range(0, 12));

/// Driver-level: the fast path and the reference path of
/// simulate_throughput produce bit-identical theta for fixed seeds.
class FastVsReferenceDriver : public ::testing::TestWithParam<int> {};

TEST_P(FastVsReferenceDriver, ThetaBitExact) {
  for (const bool telescopic : {false, true}) {
    const Rrg rrg = random_rrg(
        static_cast<std::uint64_t>(GetParam()) + 500, telescopic);
    SimOptions options;
    options.seed = 42 + static_cast<std::uint64_t>(GetParam());
    options.warmup_cycles = 200;
    options.measure_cycles = 3000;
    options.runs = 3;
    const SimResult fast = simulate_throughput(rrg, options);
    options.force_reference = true;
    const SimResult reference = simulate_throughput(rrg, options);
    ASSERT_EQ(fast.theta, reference.theta) << "telescopic=" << telescopic;
    ASSERT_EQ(fast.stderr_theta, reference.stderr_theta);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastVsReferenceDriver, ::testing::Range(0, 8));

TEST(FlatSimulator, ThreadCountNeverChangesTheta) {
  const Rrg rrg = figure1b(0.5, true);
  SimOptions options;
  options.seed = 7;
  options.warmup_cycles = 500;
  options.measure_cycles = 5000;
  options.runs = 6;
  options.threads = 1;
  const SimResult solo = simulate_throughput(rrg, options);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    options.threads = threads;
    const SimResult parallel = simulate_throughput(rrg, options);
    EXPECT_EQ(solo.theta, parallel.theta) << "threads " << threads;
    EXPECT_EQ(solo.stderr_theta, parallel.stderr_theta);
  }
}

/// Reproducibility stays pinned: fixed seed, fixed theta, to the last
/// bit (matches the paper's Section 1.4 value 0.491 for figure 1(b) at
/// alpha = 0.5). If an intentional change to the seed mix, the chooser
/// tables or the kernel semantics moves this value, re-derive it by
/// printing theta at full precision and update the constant -- in the
/// same commit that explains why the streams changed.
inline constexpr double kGoldenTheta = 0.49086000000000002;

TEST(FlatSimulator, GoldenFixedSeedTheta) {
  SimOptions options;
  options.seed = 12345;
  options.warmup_cycles = 1000;
  options.measure_cycles = 20000;
  options.runs = 3;
  const SimResult result = simulate_throughput(figure1b(0.5, true), options);
  // Derived once on the reference implementation (which the fast path
  // matches bit-exactly); both paths must keep reproducing it.
  EXPECT_DOUBLE_EQ(result.theta, kGoldenTheta);
  options.force_reference = true;
  const SimResult reference =
      simulate_throughput(figure1b(0.5, true), options);
  EXPECT_DOUBLE_EQ(reference.theta, kGoldenTheta);
}

TEST(FlatSimulator, RunSeedsAreDecorrelated) {
  // The splitmix64 mix must not collide across (seed, run) neighbours the
  // way the old linear mix did: run r of seed s vs run r+1 of nearby
  // seeds, and a spread of low bits.
  EXPECT_NE(run_seed(1, 0), run_seed(1, 1));
  EXPECT_NE(run_seed(1, 1), run_seed(2, 0));
  EXPECT_NE(run_seed(1, 2), run_seed(1 - 0x9e37U, 3));  // old-mix collision
  int differing_bits = 0;
  const std::uint64_t a = run_seed(3, 0), b = run_seed(3, 1);
  for (int bit = 0; bit < 64; ++bit) {
    differing_bits += static_cast<int>(((a ^ b) >> bit) & 1);
  }
  EXPECT_GT(differing_bits, 16);  // avalanche, not a linear nudge
}

TEST(FlatKernel, FallsBackGracefullyBeyondTheBitRing) {
  // An EB chain deeper than 64 stages is outside the flat layout;
  // supports() must say so and the driver must fall back to the
  // reference kernel without changing results.
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 1, 70);
  rrg.add_edge(b, a, 1, 1);
  EXPECT_FALSE(FlatKernel::supports(rrg));
  SimOptions options;
  options.warmup_cycles = 200;
  options.measure_cycles = 2000;
  options.runs = 1;
  const SimResult result = simulate_throughput(rrg, options);
  // Two tokens on a 71-stage ring fire each node once every ~35.5 cycles.
  EXPECT_NEAR(result.theta, 2.0 / 71.0, 1e-3);
}

TEST(FlatKernel, RejectsTemporaries) {
  // Compile-time property (Kernel(Rrg&&) = delete); spot-check the
  // reference-holding contract at runtime instead.
  const Rrg rrg = figure2(0.9);
  const FlatKernel kernel(rrg);
  EXPECT_EQ(&kernel.rrg(), &rrg);
}

TEST(FlatKernel, ConversionsRoundTrip) {
  const Rrg rrg = random_rrg(99, true);
  const FlatKernel flat(rrg);
  const Kernel reference(rrg);
  FlatState state = flat.initial_state();
  SyntheticChoosers chooser{&rrg};
  const auto guard = [&](NodeId n) { return chooser.guard(n); };
  const auto latency = [&](NodeId n) { return chooser.latency(n); };
  for (chooser.cycle = 0; chooser.cycle < 50; ++chooser.cycle) {
    flat.step(state, guard, latency);
  }
  EXPECT_EQ(flat.from_sync(flat.to_sync(state)), state);
}

}  // namespace
}  // namespace elrr::sim
