/// \file fleet_async_test.cpp
/// The fleet's asynchronous API: submit_async tickets complete on the
/// background pool with results bit-identical to synchronous drains and
/// solo simulation; the owning submit overloads keep candidates alive
/// for exactly as long as the simulation needs them (the regression
/// tests for the old borrow-until-drain footgun, where submit(Rrg&&) was
/// simply deleted); and the session cache dedups identical candidates
/// across submission waves -- the cross-iteration result cache the
/// pipelined flow engine rides on.

#include "sim/fleet.hpp"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::sim {
namespace {

/// Random live RRG (same family as fleet_test.cpp, independent stream).
Rrg random_rrg(std::uint64_t seed, bool allow_telescopic) {
  elrr::Rng rng(seed * 7121 + 5);
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("n" + std::to_string(i), 1.0);
  }
  const auto random_edge = [&](NodeId u, NodeId v) {
    const int tokens = static_cast<int>(rng.uniform_int(-1, 2));
    const int buffers =
        std::max(tokens, 0) + static_cast<int>(rng.uniform_int(0, 2));
    rrg.add_edge(u, v, tokens, buffers);
  };
  for (std::size_t i = 0; i < n; ++i) {
    random_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  const std::size_t chords =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t k = 0; k < chords; ++k) {
    const auto u = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    random_edge(u, v);
  }
  for (NodeId v = 0; v < rrg.num_nodes(); ++v) {
    if (rrg.graph().in_degree(v) >= 2 && rng.bernoulli(0.5)) {
      rrg.set_kind(v, NodeKind::kEarly);
      const auto probs = rng.simplex(rrg.graph().in_degree(v), 0.05);
      std::size_t idx = 0;
      for (EdgeId e : rrg.graph().in_edges(v)) rrg.set_gamma(e, probs[idx++]);
    }
  }
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (rrg.tokens(e) < 0 && !rrg.is_early(rrg.graph().dst(e))) {
      rrg.set_tokens(e, 0);
    }
  }
  if (allow_telescopic) {
    const auto t = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    rrg.set_telescopic(t, rng.uniform(0.3, 0.9),
                       static_cast<int>(rng.uniform_int(1, 3)));
  }
  std::vector<EdgeId> dead;
  while (!rrg.is_live(&dead)) {
    const int tokens = rrg.tokens(dead[0]) + 1;
    rrg.set_tokens(dead[0], tokens);
    rrg.set_buffers(dead[0], std::max(tokens, rrg.buffers(dead[0])));
  }
  rrg.validate();
  return rrg;
}

SimOptions async_options(std::uint64_t seed) {
  SimOptions options;
  options.seed = seed;
  options.warmup_cycles = 100;
  options.measure_cycles = 1200;
  options.runs = 3;
  return options;
}

/// Async tickets reproduce the synchronous drain and solo simulation
/// bit-exactly, whatever the pool size -- the determinism contract does
/// not care how a job entered the fleet.
TEST(SimFleetAsync, TicketsMatchDrainAndSolo) {
  std::vector<Rrg> candidates;
  for (std::uint64_t s = 0; s < 6; ++s) {
    candidates.push_back(random_rrg(100 + s, (s % 2) == 1));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    SimFleet fleet(threads);
    std::vector<SimTicket> tickets;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      tickets.push_back(
          fleet.submit_async(candidates[i], async_options(10 + i)));
      EXPECT_TRUE(tickets.back().valid());
    }
    const std::vector<SimReport> async_reports = fleet.wait_all();
    ASSERT_EQ(async_reports.size(), candidates.size());

    SimFleet sync_fleet(threads);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      sync_fleet.submit(candidates[i], async_options(10 + i));
    }
    const std::vector<SimReport> sync_reports = sync_fleet.drain();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(async_reports[i].theta, sync_reports[i].theta)
          << "threads " << threads << " job " << i;
      EXPECT_EQ(async_reports[i].stderr_theta, sync_reports[i].stderr_theta);
      const SimReport solo =
          simulate_throughput(candidates[i], async_options(10 + i));
      EXPECT_EQ(async_reports[i].theta, solo.theta) << "job " << i;
    }
  }
}

/// wait(ticket) is usable in any order, re-waitable (results are cached
/// for the fleet's lifetime), and poll() flips to true exactly when the
/// result is available.
TEST(SimFleetAsync, WaitByTicketInAnyOrder) {
  const Rrg a = random_rrg(201, false);
  const Rrg b = random_rrg(202, true);
  SimFleet fleet(2);
  const SimTicket ta = fleet.submit_async(a, async_options(1));
  const SimTicket tb = fleet.submit_async(b, async_options(2));

  const SimReport rb = fleet.wait(tb);  // reverse order
  const SimReport ra = fleet.wait(ta);
  EXPECT_TRUE(fleet.poll(ta));
  EXPECT_TRUE(fleet.poll(tb));
  EXPECT_EQ(ra.theta, simulate_throughput(a, async_options(1)).theta);
  EXPECT_EQ(rb.theta, simulate_throughput(b, async_options(2)).theta);

  // Re-wait: the cached result is bit-identical.
  const SimReport ra2 = fleet.wait(ta);
  EXPECT_EQ(ra2.theta, ra.theta);
  EXPECT_EQ(ra2.stderr_theta, ra.stderr_theta);
}

/// Regression test for the borrow-until-drain footgun: the owning
/// submit overloads move the candidate into the fleet, so a temporary
/// that would previously have dangled (the reason submit(Rrg&&) used to
/// be `= delete`) now outlives its simulation by construction. Under
/// ASan a lifetime bug here is a hard failure.
TEST(SimFleetAsync, OwningSubmitOutlivesTheCaller) {
  const Rrg keeper = random_rrg(300, true);  // stays alive for the oracle
  const SimOptions options = async_options(7);

  SimFleet fleet(2);
  SimTicket ticket;
  {
    Rrg temporary = keeper;  // dies at scope end -- the fleet's copy lives
    ticket = fleet.submit_async(std::move(temporary), options);
  }
  const SimReport async_report = fleet.wait(ticket);
  EXPECT_EQ(async_report.theta, simulate_throughput(keeper, options).theta);

  // The synchronous owning overload: submit temporaries, drain after the
  // originals are gone. (With the old deleted overload this shape forced
  // callers into a keep-alive side vector; under ASan any lifetime slip
  // here fails hard.)
  const Rrg oracle = random_rrg(301, false);
  SimFleet sync_fleet(2);
  {
    Rrg first = keeper;
    Rrg second = oracle;
    sync_fleet.submit(std::move(first), options);
    sync_fleet.submit(Rrg(second), options);  // prvalue temporary
    sync_fleet.submit(std::move(second), options);
  }
  const Rrg live = random_rrg(302, false);
  sync_fleet.submit(live, options);  // borrowed lvalue still works
  const std::vector<SimReport> reports = sync_fleet.drain();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].theta, simulate_throughput(keeper, options).theta);
  EXPECT_EQ(reports[1].theta, simulate_throughput(oracle, options).theta);
  EXPECT_EQ(reports[2].theta, reports[1].theta);
  EXPECT_EQ(reports[3].theta, simulate_throughput(live, options).theta);
}

/// The session cache is cross-wave: resubmitting a candidate after
/// wait_all() reuses the finished simulation (no new unique job), and
/// the fanned-out report is bit-identical.
TEST(SimFleetAsync, SessionCachePersistsAcrossWaves) {
  const Rrg rrg = random_rrg(400, false);
  const Rrg other = random_rrg(401, true);
  const SimOptions options = async_options(3);

  SimFleet fleet(2);
  fleet.submit_async(rrg, options);
  fleet.submit_async(other, options);
  const std::vector<SimReport> first = fleet.wait_all();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(fleet.async_cache_size(), 2u);

  // Second wave: one repeat (cache hit), one fresh candidate.
  const Rrg copy = rrg;  // identical content, different object
  const Rrg fresh = random_rrg(402, false);
  fleet.submit_async(copy, options);
  fleet.submit_async(fresh, options);
  const std::vector<SimReport> second = fleet.wait_all();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(fleet.async_cache_size(), 3u);  // only `fresh` was new
  EXPECT_EQ(second[0].theta, first[0].theta);
  EXPECT_EQ(second[0].stderr_theta, first[0].stderr_theta);

  // With dedup off every submission is its own simulation -- results
  // still identical by the determinism contract.
  SimFleet no_dedup(2, /*dedup=*/false);
  no_dedup.submit_async(rrg, options);
  no_dedup.submit_async(rrg, options);
  const std::vector<SimReport> dup = no_dedup.wait_all();
  EXPECT_EQ(no_dedup.async_cache_size(), 2u);
  EXPECT_EQ(dup[0].theta, dup[1].theta);
  EXPECT_EQ(dup[0].theta, first[0].theta);
}

/// Mixing styles: async tickets and a synchronous drain share the pool
/// but not their bookkeeping -- a drain between submit_async and wait
/// must not disturb the tickets.
TEST(SimFleetAsync, SyncDrainBetweenAsyncSubmitAndWait) {
  const Rrg slow = random_rrg(500, true);
  const Rrg quick = random_rrg(501, false);
  SimFleet fleet(2);
  const SimTicket ticket = fleet.submit_async(slow, async_options(11));
  fleet.submit(quick, async_options(12));
  const std::vector<SimReport> drained = fleet.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].theta,
            simulate_throughput(quick, async_options(12)).theta);
  EXPECT_EQ(fleet.wait(ticket).theta,
            simulate_throughput(slow, async_options(11)).theta);
}

TEST(SimFleetAsync, ObservabilityAndValidation) {
  SimFleet fleet(1);
  EXPECT_EQ(fleet.async_pending(), 0u);
  EXPECT_EQ(fleet.async_cache_size(), 0u);
  EXPECT_TRUE(fleet.wait_all().empty());

  const Rrg rrg = figures::figure1b(0.5, true);
  SimOptions bad = async_options(1);
  bad.runs = 0;
  EXPECT_THROW(fleet.submit_async(rrg, bad), Error);
  EXPECT_THROW(fleet.wait(SimTicket{}), Error);          // invalid ticket
  EXPECT_THROW((void)fleet.poll(SimTicket{99}), Error);  // out of range

  const SimTicket ticket = fleet.submit_async(rrg, async_options(1));
  (void)fleet.wait(ticket);
  EXPECT_EQ(fleet.async_pending(), 0u);
  EXPECT_EQ(fleet.async_cache_size(), 1u);

  // wait_all after everything finished: reports the one outstanding
  // ticket, then nothing on the next call.
  EXPECT_EQ(fleet.wait_all().size(), 1u);
  EXPECT_TRUE(fleet.wait_all().empty());
}

/// Destroying a fleet with unfinished async work must not hang or crash
/// (claimed slices finish; unclaimed ones are abandoned with the fleet).
TEST(SimFleetAsync, DestructionWithPendingWorkIsSafe) {
  const Rrg rrg = random_rrg(600, true);
  SimOptions heavy = async_options(21);
  heavy.measure_cycles = 20000;
  heavy.runs = 8;
  {
    SimFleet fleet(2);
    for (int i = 0; i < 4; ++i) {
      SimOptions o = heavy;
      o.seed = 100 + i;  // distinct jobs
      fleet.submit_async(rrg, o);
    }
    // No wait: the destructor runs with work in flight.
  }
  SUCCEED();
}

}  // namespace
}  // namespace elrr::sim
