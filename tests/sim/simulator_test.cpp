#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "sim/kernel.hpp"
#include "sim/markov.hpp"
#include "support/rng.hpp"

namespace elrr::sim {
namespace {

using namespace figures;

SimOptions fast_options(std::uint64_t seed = 7) {
  SimOptions o;
  o.seed = seed;
  o.warmup_cycles = 500;
  o.measure_cycles = 20000;
  o.runs = 2;
  return o;
}

TEST(Simulator, DeterministicForFixedSeed) {
  const Rrg rrg = figure1b(0.5, true);
  const auto a = simulate_throughput(rrg, fast_options(42));
  const auto b = simulate_throughput(rrg, fast_options(42));
  EXPECT_DOUBLE_EQ(a.theta, b.theta);
}

TEST(Simulator, SeedSensitivityIsSmall) {
  const Rrg rrg = figure1b(0.5, true);
  const auto a = simulate_throughput(rrg, fast_options(1));
  const auto b = simulate_throughput(rrg, fast_options(2));
  EXPECT_NEAR(a.theta, b.theta, 0.02);
}

TEST(Simulator, MatchesSection14Numbers) {
  EXPECT_NEAR(simulate_throughput(figure1b(0.5, true), fast_options()).theta,
              0.491, 0.01);
  EXPECT_NEAR(simulate_throughput(figure1b(0.9, true), fast_options()).theta,
              0.719, 0.01);
}

TEST(Simulator, Figure2ClosedForm) {
  for (double alpha : {0.3, 0.6, 0.9}) {
    EXPECT_NEAR(simulate_throughput(figure2(alpha), fast_options()).theta,
                figure2_throughput(alpha), 0.01)
        << "alpha " << alpha;
  }
}

TEST(Simulator, LateEvaluationIsExactMcr) {
  // Deterministic dynamics: the measured rate equals the cycle ratio even
  // over a short window.
  SimOptions o = fast_options();
  o.measure_cycles = 3000;
  EXPECT_NEAR(simulate_throughput(figure1b(0.5, false), o).theta, 1.0 / 3.0,
              1e-3);
  EXPECT_NEAR(simulate_throughput(figure1a(0.5, false), o).theta, 1.0, 1e-12);
}

// Property: simulation agrees with exact Markov analysis on random small
// early-evaluation systems -- the strongest end-to-end check that both
// implement the same semantics (they share the kernel, but the drivers
// differ: i.i.d. sampling vs exhaustive branching).
class SimVsMarkovTest : public ::testing::TestWithParam<int> {};

TEST_P(SimVsMarkovTest, Agree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40487 + 23);
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("", 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int tokens = static_cast<int>(rng.uniform_int(0, 1));
    rrg.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 tokens, tokens + static_cast<int>(rng.uniform_int(0, 1)));
  }
  const std::size_t extra = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  for (std::size_t k = 0; k < extra; ++k) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto v = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const int tokens = u == v ? 1 : static_cast<int>(rng.uniform_int(0, 1));
    rrg.add_edge(u, v, tokens, tokens + static_cast<int>(rng.uniform_int(0, 1)));
  }
  std::vector<EdgeId> dead;
  while (!rrg.is_live(&dead)) {
    rrg.set_tokens(dead[0], 1);
    rrg.set_buffers(dead[0], std::max(1, rrg.buffers(dead[0])));
  }
  bool any_early = false;
  for (NodeId v = 0; v < rrg.num_nodes(); ++v) {
    if (rrg.graph().in_degree(v) >= 2 && rng.bernoulli(0.6)) {
      rrg.set_kind(v, NodeKind::kEarly);
      const auto probs = rng.simplex(rrg.graph().in_degree(v), 0.1);
      std::size_t idx = 0;
      for (EdgeId e : rrg.graph().in_edges(v)) rrg.set_gamma(e, probs[idx++]);
      any_early = true;
    }
  }
  (void)any_early;

  MarkovOptions mopt;
  mopt.max_states = 40000;
  const auto exact = exact_throughput(rrg, mopt);
  if (!exact.ok) GTEST_SKIP() << "state space too large";

  SimOptions sopt;
  sopt.seed = 1234 + static_cast<std::uint64_t>(GetParam());
  sopt.warmup_cycles = 2000;
  sopt.measure_cycles = 60000;
  sopt.runs = 2;
  const auto sim = simulate_throughput(rrg, sopt);
  EXPECT_NEAR(sim.theta, exact.theta, 0.015)
      << "states=" << exact.num_states;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimVsMarkovTest, ::testing::Range(0, 20));


/// Definition 2.4 / [10]: every node of a (strongly connected, live) RRG
/// has the same steady-state throughput. Checked per node on the paper's
/// figures and on random mixed systems.
class UniformThroughput : public ::testing::TestWithParam<double> {};

TEST_P(UniformThroughput, AllNodesFireAtTheSameRate) {
  const Rrg rrg = figures::figure2(GetParam());
  const Kernel kernel(rrg);
  elrr::Rng rng(17);
  std::vector<std::vector<double>> weights(rrg.num_nodes());
  for (NodeId n : kernel.early_nodes()) {
    for (EdgeId e : rrg.graph().in_edges(n)) {
      weights[n].push_back(rrg.gamma(e));
    }
  }
  const Kernel::GuardChooser chooser = [&](NodeId n) {
    return rng.discrete(weights[n]);
  };
  SyncState state = kernel.initial_state();
  for (int t = 0; t < 2000; ++t) kernel.step(state, chooser);
  std::vector<std::uint64_t> fired(rrg.num_nodes(), 0);
  std::vector<std::uint8_t> cycle_fired(rrg.num_nodes());
  const int horizon = 40000;
  for (int t = 0; t < horizon; ++t) {
    kernel.step(state, chooser, {}, cycle_fired.data());
    for (NodeId n = 0; n < rrg.num_nodes(); ++n) fired[n] += cycle_fired[n];
  }
  const double reference =
      static_cast<double>(fired[0]) / static_cast<double>(horizon);
  for (NodeId n = 1; n < rrg.num_nodes(); ++n) {
    const double rate =
        static_cast<double>(fired[n]) / static_cast<double>(horizon);
    EXPECT_NEAR(rate, reference, 0.01) << "node " << rrg.name(n);
  }
  EXPECT_NEAR(reference, figures::figure2_throughput(GetParam()), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Alphas, UniformThroughput,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace elrr::sim
