/// \file fleet_test.cpp
/// The cross-candidate simulation fleet's contract: a fleet job is
/// bit-identical to sequential simulation of the same (rrg, options) --
/// anchored against the reference kernel, which shares no code with the
/// batched flat path -- regardless of worker-pool size, lane packing
/// (max_batch) or how many other candidates share the queue. Also pins
/// the execution-path report (flat vs reference, fallback reason) and the
/// worker-count resolution edge cases (hardware_concurrency() == 0,
/// threads > work items).

#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/figures.hpp"
#include "sim/flat_kernel.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::sim {
namespace {

/// Random live RRG: ring backbone plus chords; early joins with random
/// gammas; optionally telescopic nodes; buffers up to 3 EBs deep. (Same
/// family as the flat-kernel differential tests, independent stream.)
Rrg random_rrg(std::uint64_t seed, bool allow_telescopic) {
  elrr::Rng rng(seed * 6089 + 11);
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("n" + std::to_string(i), 1.0);
  }
  const auto random_edge = [&](NodeId u, NodeId v) {
    const int tokens = static_cast<int>(rng.uniform_int(-1, 2));
    const int buffers =
        std::max(tokens, 0) + static_cast<int>(rng.uniform_int(0, 2));
    rrg.add_edge(u, v, tokens, buffers);
  };
  for (std::size_t i = 0; i < n; ++i) {
    random_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  const std::size_t chords =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t k = 0; k < chords; ++k) {
    const auto u = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    random_edge(u, v);
  }
  for (NodeId v = 0; v < rrg.num_nodes(); ++v) {
    if (rrg.graph().in_degree(v) >= 2 && rng.bernoulli(0.5)) {
      rrg.set_kind(v, NodeKind::kEarly);
      const auto probs = rng.simplex(rrg.graph().in_degree(v), 0.05);
      std::size_t idx = 0;
      for (EdgeId e : rrg.graph().in_edges(v)) rrg.set_gamma(e, probs[idx++]);
    }
  }
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (rrg.tokens(e) < 0 && !rrg.is_early(rrg.graph().dst(e))) {
      rrg.set_tokens(e, 0);
    }
  }
  if (allow_telescopic) {
    const auto t = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    rrg.set_telescopic(t, rng.uniform(0.3, 0.9),
                       static_cast<int>(rng.uniform_int(1, 3)));
  }
  std::vector<EdgeId> dead;
  while (!rrg.is_live(&dead)) {
    const int tokens = rrg.tokens(dead[0]) + 1;
    rrg.set_tokens(dead[0], tokens);
    rrg.set_buffers(dead[0], std::max(tokens, rrg.buffers(dead[0])));
  }
  rrg.validate();
  return rrg;
}

SimOptions fleet_options(std::uint64_t seed) {
  SimOptions options;
  options.seed = seed;
  options.warmup_cycles = 100;
  options.measure_cycles = 1500;
  options.runs = 3;
  return options;
}

/// Differential anchor: a fleet drain over early-only and telescopic
/// candidates in one queue reproduces, job for job, the reference
/// kernel's theta bit-exactly. The reference path shares no stepping
/// code with the batched flat path, so this pins the whole chain
/// (lane packing, busy countdowns, run-order merge) at once.
class FleetVsReference : public ::testing::TestWithParam<int> {};

TEST_P(FleetVsReference, ThetaBitExactPerJob) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Rrg plain = random_rrg(seed, false);
  const Rrg telescopic = random_rrg(seed, true);
  const SimOptions options = fleet_options(seed + 31);

  SimFleet fleet(3);
  fleet.submit(plain, options);
  fleet.submit(telescopic, options);
  const std::vector<SimReport> reports = fleet.drain();
  ASSERT_EQ(reports.size(), 2u);

  SimOptions reference = options;
  reference.force_reference = true;
  const SimReport ref_plain = simulate_throughput(plain, reference);
  const SimReport ref_telescopic = simulate_throughput(telescopic, reference);

  EXPECT_EQ(reports[0].theta, ref_plain.theta);
  EXPECT_EQ(reports[0].stderr_theta, ref_plain.stderr_theta);
  EXPECT_EQ(reports[1].theta, ref_telescopic.theta);
  EXPECT_EQ(reports[1].stderr_theta, ref_telescopic.stderr_theta);
  EXPECT_EQ(reports[0].path, SimPath::kFlat);
  EXPECT_EQ(reports[1].path, SimPath::kFlat);
  EXPECT_EQ(ref_plain.path, SimPath::kReferenceForced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetVsReference, ::testing::Range(0, 60));

/// The pool size can never change any job's result -- including sizes
/// past the work-item count (over-spawn) and 0 (hardware concurrency,
/// whatever it reports).
TEST(SimFleet, WorkerCountNeverChangesResults) {
  std::vector<Rrg> candidates;
  for (std::uint64_t s = 0; s < 6; ++s) {
    candidates.push_back(random_rrg(900 + s, (s % 2) == 1));
  }
  const auto drain_with = [&](std::size_t threads) {
    SimFleet fleet(threads);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      fleet.submit(candidates[i], fleet_options(77 + i));
    }
    return fleet.drain();
  };
  const std::vector<SimReport> solo = drain_with(1);
  ASSERT_EQ(solo.size(), candidates.size());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{5},
                                    std::size_t{64}, std::size_t{0}}) {
    const std::vector<SimReport> pooled = drain_with(threads);
    ASSERT_EQ(pooled.size(), solo.size()) << "threads " << threads;
    for (std::size_t i = 0; i < solo.size(); ++i) {
      EXPECT_EQ(pooled[i].theta, solo[i].theta)
          << "threads " << threads << " job " << i;
      EXPECT_EQ(pooled[i].stderr_theta, solo[i].stderr_theta);
    }
  }
}

/// Lane packing (max_batch) is a pure wall-clock knob: solo stepping,
/// pairs, triples, the SSE default and the wide 8/16 lanes all produce
/// the identical theta, for early-only and telescopic candidates alike.
/// runs = 17 makes every cap produce remainder slices too (16+1, 8+8+1,
/// 4x4+1, ...), so the greedy width partition is exercised end to end.
TEST(SimFleet, LanePackingNeverChangesResults) {
  for (const bool telescopic : {false, true}) {
    const Rrg rrg = random_rrg(telescopic ? 431 : 430, telescopic);
    SimOptions options = fleet_options(5);
    options.runs = 17;
    options.measure_cycles = 400;  // 17 runs x 6 widths: keep each short
    options.max_batch = 1;
    const SimReport solo = simulate_throughput(rrg, options);
    for (const std::size_t width :
         {std::size_t{2}, std::size_t{3}, std::size_t{4}, std::size_t{8},
          std::size_t{16}, std::size_t{0}}) {
      options.max_batch = width;
      const SimReport packed = simulate_throughput(rrg, options);
      EXPECT_EQ(packed.theta, solo.theta)
          << "telescopic " << telescopic << " max_batch " << width;
      EXPECT_EQ(packed.stderr_theta, solo.stderr_theta);
    }
  }
}

/// Duplicate candidates -- identical RRG content and options, distinct
/// objects -- simulate once with dedup on, and the fanned-out scores are
/// bit-identical to the dedup-off fleet and to solo simulation.
TEST(SimFleet, DedupSharesScoresAcrossIdenticalCandidates) {
  const Rrg original = random_rrg(321, true);
  const Rrg copy = original;  // same content, different object
  const Rrg other = random_rrg(322, false);
  const SimOptions options = fleet_options(9);

  SimFleet dedup_fleet(2, /*dedup=*/true);
  dedup_fleet.submit(original, options);
  dedup_fleet.submit(other, options);
  dedup_fleet.submit(copy, options);
  dedup_fleet.submit(original, options);  // same object resubmitted
  const std::vector<SimReport> deduped = dedup_fleet.drain();
  ASSERT_EQ(deduped.size(), 4u);
  EXPECT_EQ(dedup_fleet.last_unique_jobs(), 2u);

  SimFleet plain_fleet(2, /*dedup=*/false);
  plain_fleet.submit(original, options);
  plain_fleet.submit(other, options);
  plain_fleet.submit(copy, options);
  plain_fleet.submit(original, options);
  const std::vector<SimReport> undeduped = plain_fleet.drain();
  ASSERT_EQ(undeduped.size(), 4u);
  EXPECT_EQ(plain_fleet.last_unique_jobs(), 4u);

  const SimReport solo = simulate_throughput(original, options);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(deduped[i].theta, undeduped[i].theta) << "job " << i;
    EXPECT_EQ(deduped[i].stderr_theta, undeduped[i].stderr_theta);
  }
  EXPECT_EQ(deduped[0].theta, solo.theta);
  EXPECT_EQ(deduped[2].theta, solo.theta);
  EXPECT_EQ(deduped[3].theta, solo.theta);
}

/// Dedup keys cover the options: the same candidate under different
/// seeds (or windows) must simulate separately.
TEST(SimFleet, DedupDistinguishesOptions) {
  const Rrg rrg = random_rrg(77, false);
  SimFleet fleet(1);
  fleet.submit(rrg, fleet_options(1));
  fleet.submit(rrg, fleet_options(2));  // different seed
  SimOptions longer = fleet_options(1);
  longer.measure_cycles += 500;
  fleet.submit(rrg, longer);
  const std::vector<SimReport> reports = fleet.drain();
  EXPECT_EQ(fleet.last_unique_jobs(), 3u);
  EXPECT_NE(reports[0].theta, reports[1].theta);
}

/// Dedup keys cover the RRG content: a one-buffer difference on one edge
/// (the granularity of a retiming/recycling move) separates candidates.
TEST(SimFleet, DedupDistinguishesConfigurations) {
  const Rrg rrg = random_rrg(55, false);
  Rrg recycled = rrg;
  // Add one empty EB to the first buffered edge (keeps liveness).
  for (EdgeId e = 0; e < recycled.num_edges(); ++e) {
    if (recycled.buffers(e) > 0) {
      recycled.set_buffers(e, recycled.buffers(e) + 1);
      break;
    }
  }
  SimFleet fleet(1);
  fleet.submit(rrg, fleet_options(4));
  fleet.submit(recycled, fleet_options(4));
  fleet.drain();
  EXPECT_EQ(fleet.last_unique_jobs(), 2u);
}

/// The worker pool persists across drains: spawned once at the first
/// multi-worker drain, parked in between, reused afterwards -- and
/// results stay reproducible drain over drain.
TEST(SimFleet, WorkerPoolPersistsAcrossDrains) {
  std::vector<Rrg> candidates;
  for (std::uint64_t s = 0; s < 4; ++s) {
    candidates.push_back(random_rrg(700 + s, (s % 2) == 0));
  }
  SimFleet fleet(3);
  EXPECT_EQ(fleet.pool_size(), 0u);  // no drain yet: nothing spawned

  const auto drain_all = [&] {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      fleet.submit(candidates[i], fleet_options(40 + i));
    }
    return fleet.drain();
  };
  const std::vector<SimReport> first = drain_all();
  EXPECT_EQ(fleet.last_worker_count(), 3u);
  EXPECT_EQ(fleet.pool_size(), 3u);
  const std::vector<SimReport> second = drain_all();
  EXPECT_EQ(fleet.pool_size(), 3u);  // reused, not respawned
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].theta, first[i].theta) << "job " << i;
  }
}

/// Spawn-count rules at the edges: a single work item never spawns a
/// pool (inline execution) no matter how many threads were requested; an
/// explicit thread count is honoured without consulting the hardware
/// (resolve_worker_count never reads it when requested != 0); fewer
/// items than threads clamp to the item count.
TEST(SimFleet, SpawnCountEdgeCases) {
  const Rrg rrg = figures::figure1b(0.5, true);

  SimOptions one_item = fleet_options(3);
  one_item.runs = 4;  // one full lane -> exactly one work item
  SimFleet many_threads(16);
  many_threads.submit(rrg, one_item);
  many_threads.drain();
  EXPECT_EQ(many_threads.last_worker_count(), 1u);
  EXPECT_EQ(many_threads.pool_size(), 0u);  // inline, no pool

  // 0 threads = hardware concurrency, whatever it reports (possibly 0 ->
  // clamped to 1); the fleet must agree with resolve_worker_count over
  // the real item count.
  SimFleet hardware_fleet(0);
  hardware_fleet.submit(rrg, one_item);
  SimOptions one_item_b = one_item;
  one_item_b.seed += 1;  // distinct job: two work items survive dedup
  hardware_fleet.submit(rrg, one_item_b);
  hardware_fleet.drain();
  const std::size_t expected =
      resolve_worker_count(0, std::thread::hardware_concurrency(), 2);
  EXPECT_EQ(hardware_fleet.last_worker_count(), expected);

  // items < threads: clamp to the queue length.
  SimOptions two_slices = fleet_options(5);
  two_slices.runs = 8;  // two 4-lane slices
  SimFleet wide(32);
  wide.submit(rrg, two_slices);
  wide.drain();
  EXPECT_EQ(wide.last_worker_count(), 2u);
  EXPECT_EQ(wide.pool_size(), 2u);

  // An explicit request resolves without the hardware value entirely.
  EXPECT_EQ(resolve_worker_count(3, 0, 10), 3u);
  EXPECT_EQ(resolve_worker_count(3, 1000, 10), 3u);
}

/// Telescopic graphs run on the batched flat path -- they are no longer a
/// silent fallback to solo or reference execution.
TEST(SimFleet, TelescopicTakesTheBatchedFlatPath) {
  const Rrg rrg = random_rrg(77, true);
  ASSERT_TRUE(rrg.has_telescopic());
  const SimReport report = simulate_throughput(rrg, fleet_options(3));
  EXPECT_EQ(report.path, SimPath::kFlat);
  EXPECT_EQ(report.fallback, FlatCap::kNone);
}

/// Every remaining supports() cap is observable: the report names the
/// reference path and the first violated cap.
TEST(SimFleet, DeepEbChainFallbackIsReported) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 1, 70);  // deeper than the 64-bit ring window
  rrg.add_edge(b, a, 1, 1);
  EXPECT_EQ(FlatKernel::unsupported_reason(rrg), FlatCap::kDeepEbChain);
  const SimReport report = simulate_throughput(rrg, fleet_options(9));
  EXPECT_EQ(report.path, SimPath::kReference);
  EXPECT_EQ(report.fallback, FlatCap::kDeepEbChain);
  EXPECT_STRNE(to_string(report.fallback), "");
  EXPECT_NEAR(report.theta, 2.0 / 71.0, 1e-2);
}

TEST(SimFleet, ForcedReferenceIsReported) {
  SimOptions options = fleet_options(4);
  options.force_reference = true;
  const SimReport report =
      simulate_throughput(figures::figure1b(0.5, true), options);
  EXPECT_EQ(report.path, SimPath::kReferenceForced);
  EXPECT_EQ(report.fallback, FlatCap::kNone);
}

TEST(FlatKernelCaps, DegreeAndSizeCapsAreClassified) {
  // In-degree past the u8 node-program field (simple-node cap 255).
  Rrg star;
  const NodeId hub = star.add_node("hub", 1.0);
  for (int i = 0; i < 300; ++i) {
    const NodeId leaf = star.add_node("l" + std::to_string(i), 1.0);
    star.add_edge(leaf, hub, 0, 0);
  }
  EXPECT_EQ(FlatKernel::unsupported_reason(star), FlatCap::kInDegreeCap);

  // Out-degree past the u8 field.
  Rrg fan;
  const NodeId src = fan.add_node("src", 1.0);
  for (int i = 0; i < 300; ++i) {
    const NodeId leaf = fan.add_node("f" + std::to_string(i), 1.0);
    fan.add_edge(src, leaf, 0, 0);
  }
  EXPECT_EQ(FlatKernel::unsupported_reason(fan), FlatCap::kOutDegreeCap);

  // More nodes than the u16 NodeProg::node index.
  Rrg huge;
  for (int i = 0; i < 0x10000 + 1; ++i) huge.add_node("", 1.0);
  EXPECT_EQ(FlatKernel::unsupported_reason(huge), FlatCap::kTooManyNodes);

  EXPECT_EQ(FlatKernel::unsupported_reason(figures::figure2(0.5)),
            FlatCap::kNone);
}

/// Worker-count resolution: never under-spawn below one worker (even
/// when hardware_concurrency() reports 0 = "unknown"), never over-spawn
/// past the queue length.
TEST(SimFleet, ResolveWorkerCountEdgeCases) {
  EXPECT_EQ(resolve_worker_count(0, 0, 8), 1u);   // hardware unknown
  EXPECT_EQ(resolve_worker_count(0, 4, 8), 4u);   // all cores
  EXPECT_EQ(resolve_worker_count(0, 16, 3), 3u);  // more cores than work
  EXPECT_EQ(resolve_worker_count(16, 4, 3), 3u);  // more threads than work
  EXPECT_EQ(resolve_worker_count(2, 1, 8), 2u);   // explicit request wins
  EXPECT_EQ(resolve_worker_count(5, 0, 0), 1u);   // empty queue
  EXPECT_EQ(resolve_worker_count(0, 0, 0), 1u);
}

TEST(SimFleet, EmptyDrainAndReuse) {
  SimFleet fleet(2);
  EXPECT_TRUE(fleet.drain().empty());
  const Rrg rrg = figures::figure1b(0.5, true);
  const SimOptions options = fleet_options(21);
  EXPECT_EQ(fleet.submit(rrg, options), 0u);
  const std::vector<SimReport> first = fleet.drain();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(fleet.num_jobs(), 0u);  // drain clears the queue
  // The fleet is reusable, and a resubmitted job reproduces its result.
  fleet.submit(rrg, options);
  const std::vector<SimReport> second = fleet.drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].theta, first[0].theta);
}

TEST(SimFleet, RejectsDegenerateOptions) {
  SimFleet fleet(1);
  const Rrg rrg = figures::figure1b(0.5, true);
  SimOptions no_cycles = fleet_options(1);
  no_cycles.measure_cycles = 0;
  EXPECT_THROW(fleet.submit(rrg, no_cycles), Error);
  SimOptions no_runs = fleet_options(1);
  no_runs.runs = 0;
  EXPECT_THROW(fleet.submit(rrg, no_runs), Error);
}

/// More workers than runs on a single job must neither deadlock nor
/// change the result (the one-job fleet is simulate_throughput itself).
TEST(SimFleet, MoreThreadsThanRuns) {
  const Rrg rrg = figures::figure1b(0.5, true);
  SimOptions options = fleet_options(12);
  options.runs = 2;
  options.threads = 1;
  const SimReport solo = simulate_throughput(rrg, options);
  options.threads = 32;
  const SimReport pooled = simulate_throughput(rrg, options);
  EXPECT_EQ(pooled.theta, solo.theta);
  EXPECT_EQ(pooled.stderr_theta, solo.stderr_theta);
}

}  // namespace
}  // namespace elrr::sim
