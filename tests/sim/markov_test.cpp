#include "sim/markov.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "core/tgmg.hpp"
#include "support/rng.hpp"

namespace elrr::sim {
namespace {

using namespace figures;

// ---------------------------------------------------------------------------
// The paper's Section 1.4 golden numbers.
// ---------------------------------------------------------------------------
TEST(Markov, Figure1bAlphaHalfIs0491) {
  const auto res = exact_throughput(figure1b(0.5, true));
  ASSERT_TRUE(res.ok);
  // The paper truncates to "0.491"; the exact stationary value of this
  // chain is 30/61 = 0.4918...
  EXPECT_NEAR(res.theta, 0.491, 1e-3);
  EXPECT_NEAR(res.theta, 30.0 / 61.0, 1e-9);
}

TEST(Markov, Figure1bAlpha09Is0719) {
  const auto res = exact_throughput(figure1b(0.9, true));
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.theta, 0.719, 5e-4);
}

TEST(Markov, Figure2MatchesClosedForm) {
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto res = exact_throughput(figure2(alpha));
    ASSERT_TRUE(res.ok) << "alpha " << alpha;
    EXPECT_NEAR(res.theta, figure2_throughput(alpha), 1e-6)
        << "alpha " << alpha;
  }
}

TEST(Markov, Figure2BeatsFigure1bByAbout16Percent) {
  // "approximately 16% better than the throughput ... with an early
  // evaluation mux" (alpha = 0.9).
  const double t1b = exact_throughput(figure1b(0.9, true)).theta;
  const double t2 = exact_throughput(figure2(0.9)).theta;
  EXPECT_NEAR((t2 - t1b) / t1b * 100.0, 16.0, 1.0);
}

TEST(Markov, LateEvaluationMatchesMinCycleRatio) {
  // Without early nodes the chain is deterministic and the long-run rate
  // is the marked-graph throughput.
  for (const Rrg& rrg : {figure1a(0.5, false), figure1b(0.5, false),
                         figure2(0.5, false)}) {
    const auto res = exact_throughput(rrg);
    ASSERT_TRUE(res.ok);
    EXPECT_NEAR(res.theta, late_eval_throughput(rrg), 1e-9);
  }
}

TEST(Markov, LpBoundDominatesExactThroughput) {
  for (double alpha : {0.25, 0.5, 0.75}) {
    const Rrg rrg = figure1b(alpha, true);
    const auto exact = exact_throughput(rrg);
    ASSERT_TRUE(exact.ok);
    EXPECT_GE(throughput_upper_bound(rrg) + 1e-9, exact.theta);
  }
}

TEST(Markov, StateCapReportsFailure) {
  MarkovOptions options;
  options.max_states = 2;
  const auto res = exact_throughput(figure1b(0.5, true), options);
  EXPECT_FALSE(res.ok);
}

TEST(Markov, DeterministicSystemHasTinyChain) {
  // Figure 1(a) under late evaluation: everything fires every cycle; the
  // chain collapses to very few states and theta = 1.
  const auto res = exact_throughput(figure1a(0.5, false));
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.theta, 1.0, 1e-9);
  EXPECT_LE(res.num_states, 4u);
}

}  // namespace
}  // namespace elrr::sim
