#include "bench89/generator.hpp"

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "support/error.hpp"

namespace elrr::bench89 {
namespace {

TEST(Table2Specs, HasAll18PaperRows) {
  const auto& specs = table2_specs();
  ASSERT_EQ(specs.size(), 18u);
  const CircuitSpec& s526 = spec_by_name("s526");
  EXPECT_EQ(s526.n_simple, 43);
  EXPECT_EQ(s526.n_early, 7);
  EXPECT_EQ(s526.n_edges, 71);
  const CircuitSpec& s953 = spec_by_name("s953");
  EXPECT_EQ(s953.n_simple, 232);
  EXPECT_EQ(s953.n_early, 36);
  EXPECT_EQ(s953.n_edges, 371);
  EXPECT_THROW(spec_by_name("s9999"), Error);
}

TEST(GenerateStructure, MatchesSpecExactly) {
  for (const CircuitSpec& spec : table2_specs()) {
    const Digraph g = generate_structure(spec, 1);
    EXPECT_EQ(g.num_nodes(),
              static_cast<std::size_t>(spec.n_simple + spec.n_early))
        << spec.name;
    EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(spec.n_edges))
        << spec.name;
    EXPECT_TRUE(graph::is_strongly_connected(g)) << spec.name;
    int multi_input = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      multi_input += g.in_degree(v) >= 2;
    }
    EXPECT_GE(multi_input, spec.n_early) << spec.name;
  }
}

TEST(GenerateStructure, DeterministicInNameAndSeed) {
  const CircuitSpec& spec = spec_by_name("s526");
  const Digraph a = generate_structure(spec, 7);
  const Digraph b = generate_structure(spec, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.src(e), b.src(e));
    EXPECT_EQ(a.dst(e), b.dst(e));
  }
  const Digraph c = generate_structure(spec, 8);
  bool differs = false;
  for (EdgeId e = 0; e < a.num_edges() && !differs; ++e) {
    differs = a.src(e) != c.src(e) || a.dst(e) != c.dst(e);
  }
  EXPECT_TRUE(differs) << "different seeds should give different graphs";
}

TEST(Annotate, FollowsPaperProtocol) {
  const CircuitSpec& spec = spec_by_name("s444");
  const Digraph g = generate_structure(spec, 3);
  const Rrg rrg = annotate(g, spec.n_early, {}, 99);
  rrg.validate();

  int early = 0;
  for (NodeId v = 0; v < rrg.num_nodes(); ++v) {
    if (rrg.is_early(v)) {
      ++early;
      EXPECT_GE(rrg.graph().in_degree(v), 2u);
    }
    EXPECT_GT(rrg.delay(v), 0.0);
    EXPECT_LE(rrg.delay(v), 20.0);
  }
  EXPECT_EQ(early, spec.n_early);

  // No bubbles initially: R == R0 on every edge (xi* = tau).
  int tokens = 0;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    EXPECT_EQ(rrg.buffers(e), rrg.tokens(e));
    tokens += rrg.tokens(e);
  }
  // Roughly a quarter of edges carry a token (plus liveness repairs).
  EXPECT_GT(tokens, spec.n_edges / 8);
  EXPECT_LT(tokens, spec.n_edges * 3 / 4);
}

TEST(Annotate, TokenFractionStaysNearProtocolOnSparseCircuit) {
  // On sparse structures the liveness repair barely fires and the token
  // fraction stays close to the protocol's nominal 0.25.
  const CircuitSpec& spec = spec_by_name("s641");  // 270 edges, 221 nodes
  const Rrg rrg = make_table2_rrg(spec, 5);
  int tokens = 0;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) tokens += rrg.tokens(e);
  const double fraction = static_cast<double>(tokens) / spec.n_edges;
  EXPECT_NEAR(fraction, 0.28, 0.09);
}

TEST(Annotate, DenseCircuitRepairInflationIsBounded) {
  // The densest Table-2 structures (s1488: 572 edges on 133 nodes) have so
  // many distinct cycles that liveness repair must add tokens beyond the
  // nominal 25% -- a documented deviation (see EXPERIMENTS.md): the paper
  // does not say how its dead random placements were handled.
  const CircuitSpec& spec = spec_by_name("s1488");
  const Rrg rrg = make_table2_rrg(spec, 5);
  int tokens = 0;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) tokens += rrg.tokens(e);
  const double fraction = static_cast<double>(tokens) / spec.n_edges;
  EXPECT_GE(fraction, 0.25 - 0.05);
  EXPECT_LE(fraction, 0.55);
}

TEST(MakeTable2Rrg, AllCircuitsProduceValidLiveRrgs) {
  for (const CircuitSpec& spec : table2_specs()) {
    const Rrg rrg = make_table2_rrg(spec, 1);
    EXPECT_NO_THROW(rrg.validate()) << spec.name;
    EXPECT_TRUE(graph::is_strongly_connected(rrg.graph())) << spec.name;
  }
}

TEST(GenerateStructure, RejectsImpossibleSpecs) {
  EXPECT_THROW(generate_structure({"bad", 5, 0, 3}, 1), Error);   // E < N
  EXPECT_THROW(generate_structure({"bad", 4, 3, 8}, 1), Error);   // too many early
  EXPECT_THROW(generate_structure({"bad", 1, 0, 1}, 1), Error);   // single node
}

}  // namespace
}  // namespace elrr::bench89
