#include "bench89/bench_format.hpp"

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "support/error.hpp"

namespace elrr::bench89 {
namespace {

// A small sequential circuit in ISCAS89 syntax: a 2-bit ring counter with
// a mux-like gate; DFFs G5, G6 close the loop.
constexpr const char* kSample = R"(
# sample sequential circuit
INPUT(CLR)
OUTPUT(Q1)

G1 = NAND(G5q, CLR)
G2 = NOR(G6q, G1)
G5q = DFF(G2)
G6q = DFF(G1)
Q1 = BUFF(G2)
)";

TEST(BenchParse, ParsesSample) {
  const BenchCircuit c = parse_bench(kSample, "sample");
  EXPECT_EQ(c.inputs, std::vector<std::string>{"CLR"});
  EXPECT_EQ(c.outputs, std::vector<std::string>{"Q1"});
  ASSERT_EQ(c.gates.size(), 5u);
  const Gate* g1 = c.find_gate("G1");
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1->func, "NAND");
  EXPECT_EQ(g1->fanins, (std::vector<std::string>{"G5q", "CLR"}));
  const Gate* dff = c.find_gate("G5q");
  ASSERT_NE(dff, nullptr);
  EXPECT_EQ(dff->func, "DFF");
}

TEST(BenchParse, RoundTrip) {
  const BenchCircuit c = parse_bench(kSample, "sample");
  const BenchCircuit again = parse_bench(write_bench(c), "sample");
  ASSERT_EQ(again.gates.size(), c.gates.size());
  for (std::size_t i = 0; i < c.gates.size(); ++i) {
    EXPECT_EQ(again.gates[i].name, c.gates[i].name);
    EXPECT_EQ(again.gates[i].func, c.gates[i].func);
    EXPECT_EQ(again.gates[i].fanins, c.gates[i].fanins);
  }
}

TEST(BenchParse, CommentsAndBlankLines) {
  const BenchCircuit c = parse_bench(
      "# only comments\n\nINPUT(a)\n  # indented comment\nb = NOT(a)  # eol\n");
  EXPECT_EQ(c.gates.size(), 1u);
  EXPECT_EQ(c.gates[0].fanins, std::vector<std::string>{"a"});
}

TEST(BenchParse, MalformedInputsRejected) {
  EXPECT_THROW(parse_bench("INPUT(a"), Error);         // missing paren
  EXPECT_THROW(parse_bench("g = NAND a, b"), Error);   // missing parens
  EXPECT_THROW(parse_bench("g NAND(a)"), Error);       // missing '='
  EXPECT_THROW(parse_bench("g = (a)"), Error);         // missing function
  EXPECT_THROW(parse_bench("g = NAND()"), Error);      // no fanins
  EXPECT_THROW(parse_bench("INPUT(a)\nINPUT(a)"), Error);  // duplicate
  EXPECT_THROW(parse_bench("g = NOT(undefined_signal)"), Error);
  EXPECT_THROW(parse_bench("OUTPUT(nowhere)"), Error);
}

TEST(BenchToRrg, DffBecomesTokenEdge) {
  const Rrg rrg = circuit_to_rrg(parse_bench(kSample, "sample"));
  // Nodes: G1, G2, Q1 (DFFs fold into edges; PI-driven fanins dropped).
  ASSERT_EQ(rrg.num_nodes(), 3u);
  int token_edges = 0, plain_edges = 0;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (rrg.tokens(e) == 1) {
      ++token_edges;
      EXPECT_EQ(rrg.buffers(e), 1);
    } else {
      ++plain_edges;
    }
  }
  // G5q: G2 -> G1 (token); G6q: G1 -> G2 (token); G1 -> G2 direct;
  // G2 -> Q1 direct.
  EXPECT_EQ(token_edges, 2);
  EXPECT_EQ(plain_edges, 2);
  rrg.validate();
}

TEST(BenchToRrg, DffChainsAccumulateTokens) {
  const Rrg rrg = circuit_to_rrg(parse_bench(
      "a = NOT(d2)\nd1 = DFF(a)\nd2 = DFF(d1)\n"));
  ASSERT_EQ(rrg.num_nodes(), 1u);
  ASSERT_EQ(rrg.num_edges(), 1u);
  EXPECT_EQ(rrg.tokens(0), 2);  // two registers on the self-loop
}

TEST(BenchToRrg, LargestSccExtraction) {
  // The sample's SCC is {G1, G2}; Q1 hangs off it.
  const Rrg rrg = circuit_to_rrg(parse_bench(kSample, "sample"));
  const Rrg scc = largest_scc_rrg(rrg);
  EXPECT_EQ(scc.num_nodes(), 2u);
  EXPECT_EQ(scc.num_edges(), 3u);
  EXPECT_TRUE(graph::is_strongly_connected(scc.graph()));
  scc.validate();
}

}  // namespace
}  // namespace elrr::bench89
