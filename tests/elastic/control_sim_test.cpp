#include "elastic/control_sim.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "sim/markov.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::elastic {
namespace {

using namespace figures;

ControlSimOptions fast(int capacity, std::uint64_t seed = 11) {
  ControlSimOptions o;
  o.capacity = capacity;
  o.seed = seed;
  o.warmup_cycles = 1000;
  o.measure_cycles = 20000;
  o.runs = 2;
  return o;
}

TEST(ControlSim, RejectsZeroCapacity) {
  EXPECT_THROW(simulate_control_throughput(figure1a(), fast(0)), Error);
}

TEST(ControlSim, Capacity2StreamsAtRateOneOnFigure1a) {
  // Bubble-free ring: SELF capacity-2 EBs sustain full throughput.
  const auto res =
      simulate_control_throughput(figure1a(0.5, false), fast(2));
  EXPECT_NEAR(res.theta, 1.0, 1e-9);
}

TEST(ControlSim, FullRingDeadlocksAtCapacity1) {
  // Figure 1(a) has R0 = R on every edge: at capacity 1 every EB stage of
  // the ring is occupied and, like the 15-puzzle without a blank, nothing
  // can move. (SELF uses capacity-2 EBs precisely to provide slack.)
  const auto res =
      simulate_control_throughput(figure1a(0.5, false), fast(1));
  EXPECT_DOUBLE_EQ(res.theta, 0.0);
}

TEST(ControlSim, Capacity1ThrottlesDenseRing) {
  // Ring of 4 unit-latency EBs holding 3 tokens: the unbounded-FIFO
  // throughput is 3/4, but with capacity 1 only the single hole can move,
  // giving 1/4; capacity 2 provides enough slack to restore 3/4.
  Rrg ring;
  for (int i = 0; i < 4; ++i) ring.add_node("", 1.0);
  for (NodeId v = 0; v < 4; ++v) {
    const int tokens = v < 3 ? 1 : 0;
    ring.add_edge(v, (v + 1) % 4, tokens, 1);
  }
  ring.validate();
  EXPECT_NEAR(simulate_control_throughput(ring, fast(1)).theta, 0.25, 1e-9);
  EXPECT_NEAR(simulate_control_throughput(ring, fast(2)).theta, 0.75, 1e-9);
}

TEST(ControlSim, LateFigure1bMatchesMcr) {
  const auto res =
      simulate_control_throughput(figure1b(0.5, false), fast(2));
  EXPECT_NEAR(res.theta, 1.0 / 3.0, 5e-3);
}

TEST(ControlSim, EarlyFigure2ApproachesClosedFormWithAdequateCapacity) {
  // Footnote 1 of the paper: with adequately sized FIFOs the performance
  // is determined by the forward critical paths. Our control network at
  // capacity 4+ matches the kernel/Markov value.
  const double expected = figure2_throughput(0.9);
  const auto res = simulate_control_throughput(figure2(0.9), fast(4));
  EXPECT_NEAR(res.theta, expected, 0.02);
}

TEST(ControlSim, ThroughputMonotoneInCapacity) {
  const Rrg rrg = figure1b(0.7, true);
  double prev = 0.0;
  for (int capacity : {1, 2, 4, 8}) {
    const double theta =
        simulate_control_throughput(rrg, fast(capacity)).theta;
    EXPECT_GE(theta, prev - 0.01) << "capacity " << capacity;
    prev = theta;
  }
}

// Property: for large capacity the control network agrees with the exact
// Markov value of the token-level semantics on small random systems.
class ControlVsMarkovTest : public ::testing::TestWithParam<int> {};

TEST_P(ControlVsMarkovTest, LargeCapacityConvergesToKernelSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 52501 + 3);
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) rrg.add_node("", 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const int tokens = static_cast<int>(rng.uniform_int(0, 1));
    rrg.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 tokens, tokens + static_cast<int>(rng.uniform_int(0, 1)));
  }
  const auto u = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  auto v = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  rrg.add_edge(u, v, u == v ? 1 : 0, 1);
  std::vector<EdgeId> dead;
  while (!rrg.is_live(&dead)) {
    rrg.set_tokens(dead[0], 1);
    rrg.set_buffers(dead[0], std::max(1, rrg.buffers(dead[0])));
  }
  for (NodeId w = 0; w < rrg.num_nodes(); ++w) {
    if (rrg.graph().in_degree(w) >= 2 && rng.bernoulli(0.5)) {
      rrg.set_kind(w, NodeKind::kEarly);
      const auto probs = rng.simplex(rrg.graph().in_degree(w), 0.1);
      std::size_t idx = 0;
      for (EdgeId e : rrg.graph().in_edges(w)) rrg.set_gamma(e, probs[idx++]);
    }
  }

  sim::MarkovOptions mopt;
  mopt.max_states = 30000;
  const auto exact = sim::exact_throughput(rrg, mopt);
  if (!exact.ok) GTEST_SKIP() << "state space too large";

  ControlSimOptions copt = fast(16, 77 + static_cast<std::uint64_t>(GetParam()));
  copt.measure_cycles = 60000;
  const auto control = simulate_control_throughput(rrg, copt);
  EXPECT_NEAR(control.theta, exact.theta, 0.02);

  // Finite capacity can only be slower.
  const auto tight = simulate_control_throughput(rrg, fast(1));
  EXPECT_LE(tight.theta, control.theta + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlVsMarkovTest, ::testing::Range(0, 12));

TEST(ControlSim, TelescopicMatchesKernelAtLargeCapacity) {
  // With generous capacities the control network's telescopic semantics
  // must agree with the token-level kernel (which the Markov engine
  // certifies exactly).
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 2, 2);
  rrg.add_edge(b, a, 2, 2);
  rrg.set_telescopic(b, 0.5, 2);  // cap = 1/2

  const auto exact = sim::exact_throughput(rrg);
  ASSERT_TRUE(exact.ok);
  EXPECT_NEAR(exact.theta, 0.5, 1e-9);

  ControlSimOptions options;
  options.capacity = 8;
  options.measure_cycles = 40000;
  const auto control = simulate_control_throughput(rrg, options);
  EXPECT_NEAR(control.theta, exact.theta, 0.02);
}

TEST(ControlSim, TelescopicBackpressureOnlySlows) {
  // Finite capacity can stall slow completions; throughput can only
  // drop relative to the unbounded case, and capacity 2 (the SELF
  // two-token EB) keeps the system live. (Capacity 1 deadlocks some
  // anti-token protocols even without telescopic units -- see the
  // capacity ablation bench.)
  Rrg rrg = figure1a(0.9);
  rrg.set_telescopic(figures::kF2, 0.7, 3);
  ControlSimOptions big;
  big.capacity = 8;
  big.measure_cycles = 30000;
  const double reference = simulate_control_throughput(rrg, big).theta;
  ControlSimOptions tight;
  tight.capacity = 2;
  tight.measure_cycles = 30000;
  const double choked = simulate_control_throughput(rrg, tight).theta;
  EXPECT_GT(choked, 0.0);
  EXPECT_LE(choked, reference + 0.02);
}

}  // namespace
}  // namespace elrr::elastic
