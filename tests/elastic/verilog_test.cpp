#include "elastic/verilog.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/figures.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr::elastic {
namespace {

using namespace figures;

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Sanitize, Identifiers) {
  EXPECT_EQ(sanitize_identifier("F1"), "F1");
  EXPECT_EQ(sanitize_identifier("m/in3"), "m_in3");
  EXPECT_EQ(sanitize_identifier("3weird name"), "n3weird_name");
  EXPECT_EQ(sanitize_identifier(""), "n");
}

TEST(Verilog, ModulesBalanced) {
  const std::string v = emit_verilog(figure2(0.9));
  // Every "module" declaration starts a line; each must be closed.
  EXPECT_EQ(count_occurrences(v, "\nmodule "),
            count_occurrences(v, "\nendmodule"));
  // Library (5) + top + testbench.
  EXPECT_EQ(count_occurrences(v, "\nendmodule"), 7u);
}

TEST(Verilog, ContainsLibraryAndTop) {
  VerilogOptions options;
  options.top_name = "fig2_top";
  const std::string v = emit_verilog(figure2(0.9), options);
  for (const char* needle :
       {"module elrr_eb", "module elrr_join", "module elrr_ejoin",
        "module elrr_fork", "module elrr_select_lfsr", "module fig2_top",
        "module fig2_top_tb", "$finish"}) {
    EXPECT_NE(v.find(needle), std::string::npos) << needle;
  }
}

TEST(Verilog, EbChainMatchesBufferCounts) {
  // figure2: buffers {1,1,1,0,1,0} -> 4 EB instances (the library
  // declaration does not use the .INIT_TOKENS syntax, instances do).
  const std::string v = emit_verilog(figure2(0.9));
  EXPECT_EQ(count_occurrences(v, "elrr_eb #(.INIT_TOKENS("), 4u);
  // Initialized tokens: edges m->F1, F1->F2, F2->F3, top each carry one.
  EXPECT_EQ(count_occurrences(v, ".INIT_TOKENS(1)"), 4u);
}

TEST(Verilog, EarlyNodeGetsEjoinAndSelect) {
  const std::string v = emit_verilog(figure2(0.9));
  EXPECT_EQ(count_occurrences(v, "elrr_ejoin #(.N("), 1u);  // the mux m
  EXPECT_EQ(count_occurrences(v, "elrr_select_lfsr #(.N("), 1u);
  // f forks to the two return channels.
  EXPECT_EQ(count_occurrences(v, "elrr_fork #(.N("), 1u);
}

TEST(Verilog, LateGraphHasNoEjoin) {
  const std::string v = emit_verilog(figure2(0.9, /*early=*/false));
  EXPECT_EQ(count_occurrences(v, "elrr_ejoin #(.N("), 0u);
  EXPECT_EQ(count_occurrences(v, "elrr_join #(.N("), 1u);
}

TEST(Verilog, SelectThresholdsEncodeGamma) {
  // alpha = 0.75 -> first cumulative threshold 49151 (0.75 * 65535).
  const std::string v = emit_verilog(figure2(0.75));
  EXPECT_NE(v.find("16'd49151"), std::string::npos);
  EXPECT_NE(v.find("16'd65535"), std::string::npos);
}

TEST(Verilog, RejectsTelescopicNodes) {
  Rrg rrg = figure1a(0.5);
  rrg.set_telescopic(kF2, 0.5, 2);
  EXPECT_THROW(emit_verilog(rrg), InvalidInputError);
}

TEST(Verilog, TestbenchCycleCountHonored) {
  VerilogOptions options;
  options.testbench_cycles = 1234;
  const std::string v = emit_verilog(figure1a(0.5), options);
  EXPECT_NE(v.find("repeat (1234)"), std::string::npos);
}

}  // namespace
}  // namespace elrr::elastic
