/// \file fifo_sizing_test.cpp
/// Simulation-guided FIFO capacity sizing (footnote 1 of the paper /
/// Lu & Koh ICCAD'03): the uniform binary search, the monotonicity it
/// relies on, and the greedy per-edge trim.

#include "elastic/fifo_sizing.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "support/error.hpp"

namespace elrr::elastic {
namespace {

using namespace figures;

ControlSimOptions fast_sim() {
  ControlSimOptions sim;
  sim.warmup_cycles = 500;
  sim.measure_cycles = 4000;
  sim.runs = 1;
  return sim;
}

TEST(FifoSizing, Figure1aNeedsCapacityTwo) {
  // The classic SELF result: streaming at Theta = 1 needs two-token EBs;
  // capacity 1 halves the rate.
  FifoSizingOptions opt;
  opt.sim = fast_sim();
  opt.per_edge_trim = false;
  const FifoSizingResult r = size_fifos(figure1a(0.5), opt);
  EXPECT_NEAR(r.theta_reference, 1.0, 0.02);
  EXPECT_EQ(r.uniform_capacity, 2);
  EXPECT_GE(r.theta_uniform, 0.98 * r.theta_reference);
}

TEST(FifoSizing, ThroughputMonotoneInCapacity) {
  // The property the binary search relies on.
  const Rrg rrg = figure2(0.7);
  double prev = 0.0;
  for (int c : {1, 2, 4, 8}) {
    ControlSimOptions sim = fast_sim();
    sim.capacity = c;
    const double theta = simulate_control_throughput(rrg, sim).theta;
    EXPECT_GE(theta, prev - 0.02) << "capacity " << c;
    prev = theta;
  }
}

TEST(FifoSizing, CapacityVectorShape) {
  FifoSizingOptions opt;
  opt.sim = fast_sim();
  const Rrg rrg = figure1a(0.9);
  const FifoSizingResult r = size_fifos(rrg, opt);
  ASSERT_EQ(r.capacity.size(), rrg.num_edges());
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (rrg.buffers(e) == 0) {
      EXPECT_EQ(r.capacity[e], 0) << "wire " << e;
    } else {
      EXPECT_GE(r.capacity[e], 1) << "edge " << e;
      EXPECT_LE(r.capacity[e], r.uniform_capacity) << "edge " << e;
    }
  }
}

TEST(FifoSizing, TrimKeepsThroughputTarget) {
  FifoSizingOptions opt;
  opt.sim = fast_sim();
  opt.tolerance = 0.05;
  const Rrg rrg = figure2(0.9);
  const FifoSizingResult r = size_fifos(rrg, opt);
  // Re-measure with the trimmed vector: must still meet the target.
  ControlSimOptions sim = fast_sim();
  sim.per_edge_capacity = r.capacity;
  const double theta = simulate_control_throughput(rrg, sim).theta;
  EXPECT_GE(theta, (1.0 - opt.tolerance) * r.theta_reference - 0.02);
}

TEST(FifoSizing, PerEdgeCapacityHonoredBySimulator) {
  // Choking a single high-traffic channel must cost throughput on
  // figure 1(a) (every channel streams every cycle).
  const Rrg rrg = figure1a(0.5);
  ControlSimOptions sim = fast_sim();
  sim.capacity = 2;
  const double full = simulate_control_throughput(rrg, sim).theta;
  sim.per_edge_capacity.assign(rrg.num_edges(), 2);
  sim.per_edge_capacity[kMF1] = 1;
  const double choked = simulate_control_throughput(rrg, sim).theta;
  EXPECT_LT(choked, full - 0.2);
}

TEST(FifoSizing, RejectsBadOptions) {
  FifoSizingOptions opt;
  opt.max_capacity = 0;
  EXPECT_THROW(size_fifos(figure1a(0.5), opt), InvalidInputError);
  FifoSizingOptions opt2;
  opt2.tolerance = 1.0;
  EXPECT_THROW(size_fifos(figure1a(0.5), opt2), InvalidInputError);
}

TEST(FifoSizing, RejectsBadPerEdgeVector) {
  const Rrg rrg = figure1a(0.5);
  ControlSimOptions sim = fast_sim();
  sim.per_edge_capacity.assign(rrg.num_edges() + 1, 2);
  EXPECT_THROW(simulate_control_throughput(rrg, sim), InvalidInputError);
  sim.per_edge_capacity.assign(rrg.num_edges(), 2);
  sim.per_edge_capacity[kMF1] = 0;  // buffered edge below 1
  EXPECT_THROW(simulate_control_throughput(rrg, sim), InvalidInputError);
}

TEST(FifoSizing, DeterministicInSeed) {
  FifoSizingOptions opt;
  opt.sim = fast_sim();
  const Rrg rrg = figure2(0.8);
  const FifoSizingResult a = size_fifos(rrg, opt);
  const FifoSizingResult b = size_fifos(rrg, opt);
  EXPECT_EQ(a.uniform_capacity, b.uniform_capacity);
  EXPECT_EQ(a.capacity, b.capacity);
  EXPECT_DOUBLE_EQ(a.theta_final, b.theta_final);
}

}  // namespace
}  // namespace elrr::elastic
