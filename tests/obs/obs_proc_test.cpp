/// \file obs_proc_test.cpp
/// Cross-process tracing through the fleet's process-isolated tier:
/// real `elrr work` worker processes (spawned from ELRR_CLI_BIN, like
/// the proc chaos suite), armed via the inherited ELRR_TRACE
/// environment. Worker-side spans ride back on the response protocol's
/// span section, get re-anchored onto the supervisor clock, and must
/// land *inside* the supervisor's dispatching fleet.proc_slice span --
/// the obs clock/anchoring contract, asserted against live processes.
///
/// Like the chaos suite, these tests fork/exec and are excluded from
/// the sanitizer sweep by label selection; the in-process protocol
/// round-trip is sanitizer-covered in obs_test.cpp.

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench89/generator.hpp"
#include "obs/trace.hpp"
#include "sim/fleet.hpp"
#include "sim/simulator.hpp"

namespace elrr::obs {
namespace {

sim::SimOptions small_options() {
  sim::SimOptions options;
  options.seed = 1;
  options.warmup_cycles = 200;
  options.measure_cycles = 1000;
  options.runs = 4;
  return options;
}

/// Env-managing fixture: the proc tier reads ELRR_PROC_WORKERS at fleet
/// construction and spawned workers arm themselves from the inherited
/// ELRR_TRACE, so every test must set up and tear down both. The trace
/// path is never actually written: `elrr work` disables its own atexit
/// export, and this process disarms + resets before exiting.
class ObsProcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::setenv("ELRR_WORK_BIN", ELRR_CLI_BIN, 1);
    ::setenv("ELRR_PROC_WORKERS", "1", 1);
    trace_path_ = ::testing::TempDir() + "obs_proc_trace-%p.json";
    ::setenv("ELRR_TRACE", trace_path_.c_str(), 1);
    set_export_on_exit(false);
    configure(trace_path_, 8192);
  }
  void TearDown() override {
    ::unsetenv("ELRR_TRACE");
    ::unsetenv("ELRR_PROC_WORKERS");
    ::unsetenv("ELRR_WORK_BIN");
    reset();
  }
  std::string trace_path_;
};

TEST_F(ObsProcTest, WorkerSpansNestInsideSupervisorSlices) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  sim::SimFleet fleet(1);
  const sim::SimTicket ticket = fleet.submit_async(rrg, small_options());
  const sim::SimReport report = fleet.wait(ticket);
  EXPECT_GT(report.theta, 0.0);
  fleet.release(ticket);

  const std::vector<SpanRecord> spans = snapshot_spans();
  std::vector<SpanRecord> slices;   // supervisor-side dispatch spans
  std::vector<SpanRecord> foreign;  // re-anchored worker spans
  for (const SpanRecord& rec : spans) {
    if (std::strcmp(rec.name, "fleet.proc_slice") == 0 && rec.pid == 0) {
      slices.push_back(rec);
    }
    if (rec.pid != 0) foreign.push_back(rec);
  }
  ASSERT_FALSE(slices.empty()) << "no supervisor fleet.proc_slice spans";
  ASSERT_FALSE(foreign.empty()) << "no worker spans came back on the pipe";

  bool saw_work_slice = false;
  const std::uint32_t self_pid = static_cast<std::uint32_t>(::getpid());
  for (const SpanRecord& w : foreign) {
    // Worker spans carry the *worker's* pid as their track group.
    EXPECT_NE(w.pid, self_pid);
    EXPECT_NE(w.pid, 0u);
    if (std::strcmp(w.name, "work.slice") == 0) saw_work_slice = true;
    // The anchoring contract: every re-anchored worker span lies within
    // some supervisor dispatch slice (the transfer delay pushes it
    // late, never early, so containment is exact, not approximate).
    bool contained = false;
    for (const SpanRecord& s : slices) {
      if (s.start_ns <= w.start_ns && w.end_ns <= s.end_ns) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained)
        << w.name << " [" << w.start_ns << ", " << w.end_ns
        << ") outside every fleet.proc_slice span";
  }
  EXPECT_TRUE(saw_work_slice);
}

TEST_F(ObsProcTest, DisarmedRunProducesNoSpans) {
  // Disarm both sides: the parent by reset(), the workers by removing
  // ELRR_TRACE from the environment they inherit. The proc tier then
  // speaks the old (span-free) response format end to end.
  ::unsetenv("ELRR_TRACE");
  reset();
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  sim::SimFleet fleet(1);
  const sim::SimTicket ticket = fleet.submit_async(rrg, small_options());
  const sim::SimReport report = fleet.wait(ticket);
  EXPECT_GT(report.theta, 0.0);
  fleet.release(ticket);
  EXPECT_TRUE(snapshot_spans().empty());
  EXPECT_EQ(dropped_spans(), 0u);
}

TEST_F(ObsProcTest, ArmedAndDisarmedThetasAreBitExact) {
  // Tracing is pure observability: the armed proc run's theta must be
  // bit-identical to the disarmed one (determinism contract).
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  double armed_theta = 0.0;
  {
    sim::SimFleet fleet(1);
    const sim::SimTicket ticket = fleet.submit_async(rrg, small_options());
    armed_theta = fleet.wait(ticket).theta;
    fleet.release(ticket);
  }
  ::unsetenv("ELRR_TRACE");
  reset();
  double disarmed_theta = 0.0;
  {
    sim::SimFleet fleet(1);
    const sim::SimTicket ticket = fleet.submit_async(rrg, small_options());
    disarmed_theta = fleet.wait(ticket).theta;
    fleet.release(ticket);
  }
  EXPECT_EQ(armed_theta, disarmed_theta);
}

}  // namespace
}  // namespace elrr::obs
