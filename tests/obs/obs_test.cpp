/// \file obs_test.cpp
/// In-process suite for the obs tracing + metrics layer (obs/trace.hpp):
/// the disarmed no-op contract (the suite runs under the sanitizer
/// sweep -- `ctest -L obs` on an ELRR_SANITIZE build -- so the one-load
/// fast path is ASan/UBSan-covered), ring wrap-around semantics, span
/// nesting, histogram percentile brackets, the Chrome trace-event JSON
/// emitted by write_trace (parsed back by a small recursive-descent
/// parser: "the emitted JSON parses" is the contract, not a substring
/// match), and the proc-fleet response span section round-trip.

#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/proc_fleet.hpp"
#include "support/error.hpp"

namespace elrr::obs {
namespace {

/// Every test leaves the process-wide registry disarmed and empty: the
/// obs state is a singleton, and suite order must not matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("ELRR_TRACE");
    ::unsetenv("ELRR_OBS_BUF");
    // This binary never wants the atexit trace write a
    // configure_from_env test may have installed.
    set_export_on_exit(false);
    reset();
  }
  void TearDown() override {
    ::unsetenv("ELRR_TRACE");
    ::unsetenv("ELRR_OBS_BUF");
    reset();
  }
};

TEST_F(ObsTest, DisarmedSitesRecordNothing) {
  EXPECT_FALSE(armed());
  EXPECT_EQ(now_ns_if_armed(), 0);
  record_span("never", 1, 2);
  record_foreign_span("never", 1, 2, 7, 1);
  count("never", 3);
  { OBS_SPAN("never.scope"); }
  { OBS_SPAN_ID("never.scope", 42); }
  EXPECT_TRUE(snapshot_spans().empty());
  EXPECT_TRUE(counters().empty());
  EXPECT_TRUE(histogram_summary().empty());
  EXPECT_EQ(dropped_spans(), 0u);
}

TEST_F(ObsTest, SpanGuardRecordsNestedSpans) {
  configure("", 1024);
  arm(true);
  {
    OBS_SPAN("outer");
    { OBS_SPAN("inner"); }
  }
  const std::vector<SpanRecord> spans = snapshot_spans();
  ASSERT_EQ(spans.size(), 2u);
  // snapshot_spans sorts by start: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  // Strict nesting: inner lies within outer on the same track.
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[1].end_ns);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_GT(spans[0].tid, 0u);
  EXPECT_EQ(spans[0].pid, 0u);  // self process
  EXPECT_EQ(spans[0].arg, kNoArg);
}

TEST_F(ObsTest, SpanIdRidesInArg) {
  configure("", 1024);
  arm(true);
  { OBS_SPAN_ID("job.attempt", 7); }
  const std::vector<SpanRecord> spans = snapshot_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].arg, 7u);
}

TEST_F(ObsTest, RingWrapDropsOldestFirst) {
  configure("", 16);
  arm(true);
  for (int i = 0; i < 40; ++i) {
    const std::string name = "s" + std::to_string(i);
    record_span(name.c_str(), i + 1, i + 2);
  }
  const std::vector<SpanRecord> spans = snapshot_spans();
  ASSERT_EQ(spans.size(), 16u);
  // The 24 oldest are gone; the survivors are s24..s39 in order.
  EXPECT_STREQ(spans.front().name, "s24");
  EXPECT_STREQ(spans.back().name, "s39");
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(std::string(spans[i].name), "s" + std::to_string(24 + i));
  }
  EXPECT_EQ(dropped_spans(), 24u);
  // The histograms saw every span, wrap or not.
  EXPECT_EQ(histogram_summary().size(), 40u);
}

TEST_F(ObsTest, DrainThreadSpansIsIncremental) {
  configure("", 64);
  arm(true);
  record_span("a", 10, 20);
  record_span("b", 30, 40);
  std::vector<SpanRecord> drained = drain_thread_spans();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_STREQ(drained[0].name, "a");
  EXPECT_STREQ(drained[1].name, "b");
  EXPECT_TRUE(drain_thread_spans().empty());
  record_span("c", 50, 60);
  drained = drain_thread_spans();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_STREQ(drained[0].name, "c");
  // Draining is a worker-loop shipping primitive; the exporter's
  // snapshot still sees everything.
  EXPECT_EQ(snapshot_spans().size(), 3u);
}

TEST_F(ObsTest, CountersAccumulateNameSorted) {
  configure("", 64);
  arm(true);
  count("fleet.dedup_hit");
  count("fleet.dedup_hit", 5);
  count("job.retries");
  const std::vector<CounterValue> rows = counters();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "fleet.dedup_hit");
  EXPECT_EQ(rows[0].value, 6u);
  EXPECT_EQ(rows[1].name, "job.retries");
  EXPECT_EQ(rows[1].value, 1u);
}

TEST_F(ObsTest, HistogramPercentilesStayInLog2Bracket) {
  configure("", 1024);
  arm(true);
  // 100 spans of exactly 1000 ns: every one lands in the [512, 1024) ns
  // bucket, so every percentile must interpolate inside that bracket.
  for (int i = 0; i < 100; ++i) record_span("h", 0, 1000);
  const std::vector<PhaseSummary> rows = histogram_summary();
  ASSERT_EQ(rows.size(), 1u);
  const PhaseSummary& row = rows[0];
  EXPECT_EQ(row.name, "h");
  EXPECT_EQ(row.count, 100u);
  EXPECT_DOUBLE_EQ(row.total_s, 100 * 1000e-9);
  for (const double p : {row.p50_s, row.p95_s, row.p99_s}) {
    EXPECT_GE(p, 512e-9);
    EXPECT_LE(p, 1024e-9);
  }
  EXPECT_LE(row.p50_s, row.p95_s);
  EXPECT_LE(row.p95_s, row.p99_s);
}

TEST_F(ObsTest, ExpandTracePathSubstitutesPid) {
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
  EXPECT_EQ(expand_trace_path("trace-%p.json"), "trace-" + pid + ".json");
  EXPECT_EQ(expand_trace_path("plain.json"), "plain.json");
  EXPECT_EQ(expand_trace_path("%p"), pid);
  EXPECT_EQ(expand_trace_path("50%"), "50%");  // lone % passes through
}

TEST_F(ObsTest, ConfigureFromEnvValidatesStrictly) {
  ::setenv("ELRR_OBS_BUF", "notanumber", 1);
  EXPECT_THROW(configure_from_env(), InvalidInputError);
  ::setenv("ELRR_OBS_BUF", "8", 1);  // below the 16-span floor
  EXPECT_THROW(configure_from_env(), InvalidInputError);
  ::setenv("ELRR_OBS_BUF", "1024", 1);
  configure_from_env();
  EXPECT_EQ(ring_capacity(), 1024u);
  EXPECT_FALSE(armed());  // no ELRR_TRACE: validated but disarmed

  const std::string path = ::testing::TempDir() + "obs_env_trace.json";
  ::setenv("ELRR_TRACE", path.c_str(), 1);
  configure_from_env();
  EXPECT_TRUE(armed());
  EXPECT_EQ(trace_path(), path);
}

TEST_F(ObsTest, ObsBufBoundariesAreExact) {
  // The documented range is [16, 2^24], inclusive on both ends: each
  // boundary is accepted and each first value past it rejected, so a
  // range change can never slip through silently.
  ::setenv("ELRR_OBS_BUF", "16", 1);
  configure_from_env();
  EXPECT_EQ(ring_capacity(), 16u);
  ::setenv("ELRR_OBS_BUF", "16777216", 1);  // 2^24
  configure_from_env();
  EXPECT_EQ(ring_capacity(), std::size_t{1} << 24);
  ::setenv("ELRR_OBS_BUF", "15", 1);
  EXPECT_THROW(configure_from_env(), InvalidInputError);
  ::setenv("ELRR_OBS_BUF", "16777217", 1);  // 2^24 + 1
  EXPECT_THROW(configure_from_env(), InvalidInputError);
  ::setenv("ELRR_OBS_BUF", "", 1);
  EXPECT_THROW(configure_from_env(), InvalidInputError);
  ::setenv("ELRR_OBS_BUF", "-16", 1);
  EXPECT_THROW(configure_from_env(), InvalidInputError);
}

// ------------------------------------------------------------------------
// A minimal JSON parser: enough to assert the exported trace *parses*
// and to walk its structure. Throws std::runtime_error on malformed
// input -- a parse failure is the test failure.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing JSON bytes");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected JSON EOF");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      const std::string key = raw_string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              throw std::runtime_error("truncated \\u escape");
            }
            out += '?';  // structural validity only; no UTF-16 decoding
            pos_ += 4;
            break;
          default: throw std::runtime_error("bad JSON escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.string = raw_string();
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad JSON literal");
    }
    return v;
  }

  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) {
      throw std::runtime_error("bad JSON literal");
    }
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad JSON number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST_F(ObsTest, WriteTraceEmitsParsableChromeJson) {
  const std::string path = ::testing::TempDir() + "obs_unit_trace.json";
  configure(path, 256);
  set_thread_label("obs-test-main");
  const std::int64_t t = detail::now_ns();
  record_span("milp.solve", t, t + 5000, 42);
  record_span("fleet.proc_slice", t + 100, t + 4000);
  // A worker span re-anchored onto a foreign pid track, inside the
  // proc_slice above -- the shape the supervisor produces.
  record_foreign_span("work.slice", t + 200, t + 3000, 4242, 1);
  count("job.done", 3);
  write_trace(trace_path());

  const JsonValue root = JsonParser(read_file(path)).parse();
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);

  const double self_pid = static_cast<double>(::getpid());
  bool saw_milp = false, saw_worker = false, saw_worker_process_name = false;
  for (const JsonValue& ev : events.array) {
    ASSERT_EQ(ev.type, JsonValue::Type::kObject);
    const std::string ph = ev.at("ph").string;
    ASSERT_TRUE(ph == "X" || ph == "M") << ph;
    if (ph == "M") {
      if (ev.at("name").string == "process_name" &&
          ev.at("pid").number == 4242.0) {
        saw_worker_process_name = true;
        EXPECT_NE(ev.at("args").at("name").string.find("4242"),
                  std::string::npos);
      }
      continue;
    }
    // Every complete event carries the full Chrome trace-event shape.
    EXPECT_EQ(ev.at("cat").string, "elrr");
    EXPECT_EQ(ev.at("ts").type, JsonValue::Type::kNumber);
    EXPECT_EQ(ev.at("dur").type, JsonValue::Type::kNumber);
    EXPECT_GE(ev.at("ts").number, 0.0);
    EXPECT_GE(ev.at("dur").number, 0.0);
    if (ev.at("name").string == "milp.solve") {
      saw_milp = true;
      EXPECT_EQ(ev.at("pid").number, self_pid);
      EXPECT_EQ(ev.at("args").at("id").number, 42.0);
      EXPECT_NEAR(ev.at("dur").number, 5.0, 1e-9);  // 5000 ns = 5 us
    }
    if (ev.at("name").string == "work.slice") {
      saw_worker = true;
      EXPECT_EQ(ev.at("pid").number, 4242.0);
    }
  }
  EXPECT_TRUE(saw_milp);
  EXPECT_TRUE(saw_worker);
  EXPECT_TRUE(saw_worker_process_name);

  const JsonValue& other = root.at("otherData");
  EXPECT_EQ(other.at("dropped_spans").number, 0.0);
  EXPECT_EQ(other.at("job.done").number, 3.0);
  std::remove(path.c_str());
}

TEST_F(ObsTest, WriteTraceExpandsPidPlaceholder) {
  const std::string templ = ::testing::TempDir() + "obs_pid_%p.json";
  configure(templ, 64);
  record_span("x", 1, 2);
  write_trace(trace_path());
  const std::string expanded = expand_trace_path(templ);
  std::ifstream in(expanded);
  EXPECT_TRUE(in.good()) << expanded;
  in.close();
  std::remove(expanded.c_str());
}

// ------------------------------------------------------------------------
// Proc-fleet response span section (sim/proc_fleet.hpp): the worker's
// spans ride back after the theta block; old-format responses (disarmed
// worker) still decode; a corrupted section is torn, never garbage.

TEST_F(ObsTest, ProcResponseRoundTripsSpans) {
  sim::SliceRun run;
  run.thetas = {1.5, 2.25, 0.5};
  run.degraded_slices = 2;
  const std::vector<sim::proc::WorkerSpan> spans = {
      {"work.parse", 100, 250},
      {"work.slice", 50, 900},
  };
  const std::string payload =
      sim::proc::encode_ok_response(run, spans, 1234567890123, 4242);
  const sim::proc::SliceOutcome outcome = sim::proc::decode_response(payload);
  EXPECT_TRUE(outcome.error.empty());
  EXPECT_EQ(outcome.thetas, run.thetas);
  EXPECT_EQ(outcome.degraded_slices, 2u);
  EXPECT_EQ(outcome.clock_ns, 1234567890123);
  EXPECT_EQ(outcome.worker_pid, 4242u);
  ASSERT_EQ(outcome.spans.size(), 2u);
  EXPECT_EQ(outcome.spans[0].name, "work.parse");
  EXPECT_EQ(outcome.spans[0].start_ns, 100);
  EXPECT_EQ(outcome.spans[0].end_ns, 250);
  EXPECT_EQ(outcome.spans[1].name, "work.slice");
}

TEST_F(ObsTest, ProcResponseWithoutSpanSectionDecodes) {
  sim::SliceRun run;
  run.thetas = {3.5};
  const sim::proc::SliceOutcome outcome =
      sim::proc::decode_response(sim::proc::encode_ok_response(run));
  EXPECT_TRUE(outcome.error.empty());
  EXPECT_EQ(outcome.thetas, run.thetas);
  EXPECT_TRUE(outcome.spans.empty());
  EXPECT_EQ(outcome.clock_ns, 0);
  EXPECT_EQ(outcome.worker_pid, 0u);
}

TEST_F(ObsTest, ProcResponseCorruptSpanSectionIsTorn) {
  sim::SliceRun run;
  run.thetas = {1.0};
  const std::vector<sim::proc::WorkerSpan> spans = {{"work.slice", 1, 2}};
  const std::string good =
      sim::proc::encode_ok_response(run, spans, 99, 1000);
  // Truncated mid-section: the cursor underruns.
  EXPECT_THROW(
      sim::proc::decode_response(good.substr(0, good.size() - 3)),
      InvalidInputError);
  // Trailing junk after a complete section: rejected, not ignored.
  EXPECT_THROW(sim::proc::decode_response(good + "z"), InvalidInputError);
}

}  // namespace
}  // namespace elrr::obs
