/// \file recorder_test.cpp
/// In-process suite for the flight recorder (obs/recorder.hpp): the
/// disarmed no-op contract (this suite rides the sanitizer sweep, so
/// the one-load fast path is ASan-covered), the strict
/// ELRR_POSTMORTEM_BUF taxonomy with its exact boundaries, journal ring
/// wrap + drop accounting, the postmortem file's write/publish/
/// first-wins protocol, in-flight marks, and the supervisor-side
/// harvest. Live fatal signals are chaos-suite territory
/// (postmortem_chaos_test.cpp); everything here dumps from a healthy
/// process through the same write(2)-only path the handlers use.

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/recorder.hpp"
#include "support/error.hpp"

namespace elrr::obs::rec {
namespace {

namespace fs = std::filesystem;

/// Every test leaves the process-wide recorder disarmed and the env
/// clean: the recorder state is a singleton, and suite order must not
/// matter.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("elrr_recorder_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    ::unsetenv("ELRR_POSTMORTEM_DIR");
    ::unsetenv("ELRR_POSTMORTEM_BUF");
    reset();
  }
  void TearDown() override {
    ::unsetenv("ELRR_POSTMORTEM_DIR");
    ::unsetenv("ELRR_POSTMORTEM_BUF");
    reset();
    fs::remove_all(dir_);
  }

  std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  fs::path dir_;
};

TEST_F(RecorderTest, DisarmedSitesRecordNothing) {
  EXPECT_FALSE(armed());
  event("job.submit", 1, 2);
  set_inflight("job", 7);
  clear_inflight();
  EXPECT_TRUE(snapshot_events().empty());
  EXPECT_EQ(dropped_events(), 0u);
  EXPECT_TRUE(postmortem_dir().empty());
  EXPECT_FALSE(write_postmortem("test"));
  EXPECT_FALSE(harvest(::getpid()).has_value());
}

TEST_F(RecorderTest, ConfigureFromEnvValidatesCapacityStrictly) {
  // The capacity is validated even with no dir set: a malformed knob is
  // an error, not a silent default -- same taxonomy as ELRR_OBS_BUF.
  ::setenv("ELRR_POSTMORTEM_BUF", "notanumber", 1);
  EXPECT_THROW(configure_from_env(), InvalidInputError);
  ::setenv("ELRR_POSTMORTEM_BUF", "15", 1);  // below the 16-event floor
  EXPECT_THROW(configure_from_env(), InvalidInputError);
  ::setenv("ELRR_POSTMORTEM_BUF", "16777217", 1);  // above the 2^24 cap
  EXPECT_THROW(configure_from_env(), InvalidInputError);
  ::setenv("ELRR_POSTMORTEM_BUF", "-1", 1);
  EXPECT_THROW(configure_from_env(), InvalidInputError);

  // Exact boundaries are accepted.
  ::setenv("ELRR_POSTMORTEM_BUF", "16", 1);
  configure_from_env();
  EXPECT_EQ(ring_capacity(), 16u);
  EXPECT_FALSE(armed());  // no ELRR_POSTMORTEM_DIR: validated, disarmed
  ::setenv("ELRR_POSTMORTEM_BUF", "16777216", 1);
  configure_from_env();
  EXPECT_EQ(ring_capacity(), std::size_t{1} << 24);
  EXPECT_FALSE(armed());
}

TEST_F(RecorderTest, ConfigureFromEnvArmsOnDir) {
  ::setenv("ELRR_POSTMORTEM_DIR", dir_.string().c_str(), 1);
  ::setenv("ELRR_POSTMORTEM_BUF", "64", 1);
  configure_from_env();
  EXPECT_TRUE(armed());
  EXPECT_EQ(postmortem_dir(), dir_.string());
  EXPECT_EQ(ring_capacity(), 64u);
  // The final path is announced but nothing is published until a dump.
  EXPECT_NE(postmortem_path().find("postmortem-"), std::string::npos);
  EXPECT_FALSE(fs::exists(postmortem_path()));
}

TEST_F(RecorderTest, RingWrapsAndCountsDrops) {
  configure(dir_.string(), 16);
  for (std::uint64_t i = 0; i < 20; ++i) event("tick", i);
  const std::vector<EventView> events = snapshot_events();
  EXPECT_EQ(events.size(), 16u);
  EXPECT_EQ(dropped_events(), 4u);
  // Oldest-first, and the survivors are the newest 16.
  EXPECT_EQ(events.front().a, 4u);
  EXPECT_EQ(events.back().a, 19u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns);
  }
}

TEST_F(RecorderTest, WritePostmortemPublishesAtomicallyAndOnce) {
  configure(dir_.string(), 64);
  event("job.pick", 42);
  event("slice.dispatch", 8, 4);
  set_inflight("slice", 8);

  ASSERT_TRUE(write_postmortem("test-dump"));
  const std::string path = postmortem_path();
  ASSERT_TRUE(fs::exists(path));
  // No torn temp file remains next to the published dump.
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  const std::string text = slurp(path);
  EXPECT_NE(text.find("ELRR-POSTMORTEM 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("reason: test-dump\n"), std::string::npos) << text;
  EXPECT_NE(text.find("pid: " + std::to_string(::getpid())),
            std::string::npos);
  EXPECT_NE(text.find("inflight: "), std::string::npos) << text;
  EXPECT_NE(text.find("slice 8"), std::string::npos) << text;
  EXPECT_NE(text.find("name=job.pick a=42"), std::string::npos) << text;
  EXPECT_NE(text.find("name=slice.dispatch a=8 b=4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\nend\n"), std::string::npos) << text;

  // First-wins: the pre-opened fd is spent, a second dump must refuse
  // (in a real crash the second caller is a concurrent fatal signal).
  EXPECT_FALSE(write_postmortem("again"));
}

TEST_F(RecorderTest, ClearedInflightMarksDoNotDump) {
  configure(dir_.string(), 64);
  set_inflight("job", 7);
  clear_inflight();
  ASSERT_TRUE(write_postmortem("test-dump"));
  EXPECT_EQ(slurp(postmortem_path()).find("inflight: "), std::string::npos);
}

TEST_F(RecorderTest, HarvestFindsTheDumpByPid) {
  configure(dir_.string(), 64);
  event("slice.recv", 12, 4);
  set_inflight("slice", 12);
  ASSERT_TRUE(write_postmortem("SIGSEGV"));

  // The supervisor harvests by dead-worker pid; here the "worker" is
  // this process.
  const std::optional<Harvest> pm = harvest(::getpid());
  ASSERT_TRUE(pm.has_value());
  EXPECT_EQ(pm->path, postmortem_path());
  // The excerpt names what was in flight and the trailing events.
  EXPECT_NE(pm->excerpt.find("slice 12"), std::string::npos) << pm->excerpt;
  EXPECT_NE(pm->excerpt.find("slice.recv"), std::string::npos) << pm->excerpt;

  // A pid that never dumped harvests nothing.
  EXPECT_FALSE(harvest(1).has_value());
}

TEST_F(RecorderTest, ResetDisarmsAndUnlinksTheTempFile) {
  configure(dir_.string(), 64);
  ASSERT_TRUE(armed());
  const std::string tmp = postmortem_path() + ".tmp";
  EXPECT_TRUE(fs::exists(tmp));
  reset();
  EXPECT_FALSE(armed());
  EXPECT_FALSE(fs::exists(tmp));
  // Disarmed again: events are no-ops, dumps refuse.
  event("late", 1);
  EXPECT_TRUE(snapshot_events().empty());
  EXPECT_FALSE(write_postmortem("late"));
}

TEST_F(RecorderTest, ReconfigureSwapsTheJournalCleanly) {
  configure(dir_.string(), 16);
  event("first", 1);
  ASSERT_EQ(snapshot_events().size(), 1u);
  // Reconfigure retires the old ring: the journal starts empty and the
  // capacity change takes effect.
  configure(dir_.string(), 32);
  EXPECT_TRUE(snapshot_events().empty());
  EXPECT_EQ(ring_capacity(), 32u);
  event("second", 2);
  const std::vector<EventView> events = snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().name, "second");
}

TEST_F(RecorderTest, InvalidDirThrowsStrictly) {
  // A dir that cannot be created is an InvalidInputError naming the
  // knob, and the recorder stays disarmed.
  EXPECT_THROW(configure("/proc/definitely/not/writable", 64),
               InvalidInputError);
  EXPECT_FALSE(armed());
}

}  // namespace
}  // namespace elrr::obs::rec
