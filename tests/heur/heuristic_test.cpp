/// \file heuristic_test.cpp
/// The MILP-free retiming & recycling heuristic: structural invariants
/// (valid configurations, Pareto-sorted frontier, budget compliance),
/// golden results on the paper's figures, and property sweeps on the
/// synthetic Table-2 circuits.

#include "heur/heuristic.hpp"

#include <gtest/gtest.h>

#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "support/error.hpp"

namespace elrr {
namespace {

using namespace figures;

void expect_well_formed(const Rrg& rrg, const HeuristicResult& result) {
  ASSERT_FALSE(result.points.empty());
  double prev_tau = -1.0;
  double prev_theta = -1.0;
  for (const ParetoPoint& p : result.points) {
    std::string why;
    EXPECT_TRUE(validate_config(rrg, p.config, &why)) << why;
    EXPECT_FALSE(p.exact);  // heuristics never carry optimality proofs
    const RcEvaluation eval = evaluate_config(rrg, p.config);
    EXPECT_NEAR(eval.tau, p.tau, 1e-9);
    EXPECT_NEAR(eval.theta_lp, p.theta_lp, 1e-6);
    EXPECT_GT(p.tau, prev_tau);      // sorted by cycle time
    EXPECT_GT(p.theta_lp, prev_theta);  // and Pareto: theta rises too
    prev_tau = p.tau;
    prev_theta = p.theta_lp;
  }
  // Never worse than doing nothing.
  EXPECT_LE(result.best().xi_lp, evaluate_rrg(rrg).xi_lp + 1e-9);
}

TEST(Heuristic, Figure1aFindsTheLowCycleTimeRegion) {
  const Rrg rrg = figure1a(0.9);
  const HeuristicResult result = heur_eff_cyc(rrg);
  expect_well_formed(rrg, result);
  // The greedy walk must reach tau = beta_max = 1 (figure 1(b) shape);
  // the identity sits at xi = 3.0 and the walk halves it. (The exact
  // optimum 1.2 needs the coordinated multi-node retiming of figure 2,
  // outside a single-move local search's basin -- see the heuristic
  // bench for the measured gap.)
  EXPECT_NEAR(result.points.front().tau, 1.0, 1e-9);
  EXPECT_LE(result.best().xi_lp, 1.6);
}

TEST(Heuristic, Figure2IsAlreadyOptimal) {
  // Figure 2 (with anti-tokens, so the classical seed is skipped) is the
  // paper's optimum: xi_lp = 3 - 2 alpha; the heuristic must return it
  // unchanged.
  const Rrg rrg = figure2(0.9);
  const HeuristicResult result = heur_eff_cyc(rrg);
  expect_well_formed(rrg, result);
  EXPECT_NEAR(result.best().xi_lp, 1.2, 1e-6);
}

TEST(Heuristic, MatchesExactOnTheMotivationalExample) {
  // On figure 1(a) the exact optimizer reaches xi_lp = 1.2 (the figure-2
  // configuration, a coordinated 3-node retiming with anti-tokens). The
  // single-move heuristic lands on the tau = 1 shelf within ~30% of it
  // and can never beat it.
  const Rrg rrg = figure1a(0.9);
  const MinEffCycResult exact = min_eff_cyc(rrg);
  const HeuristicResult heur = heur_eff_cyc(rrg);
  EXPECT_GE(heur.best().xi_lp, exact.best().xi_lp - 1e-6);
  EXPECT_LE(heur.best().xi_lp, 1.35 * exact.best().xi_lp);
}

TEST(Heuristic, BudgetOfOneReturnsIdentity) {
  const Rrg rrg = figure1a(0.5);
  HeuristicOptions opt;
  opt.max_lp_evals = 1;
  const HeuristicResult result = heur_eff_cyc(rrg, opt);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.lp_evals, 1);
  EXPECT_EQ(result.points[0].config, initial_config(rrg));
}

TEST(Heuristic, PolishNeverHurts) {
  const Rrg rrg = figure1a(0.9);
  HeuristicOptions with, without;
  without.polish = false;
  const double xi_with = heur_eff_cyc(rrg, with).best().xi_lp;
  const double xi_without = heur_eff_cyc(rrg, without).best().xi_lp;
  EXPECT_LE(xi_with, xi_without + 1e-9);
}

TEST(Heuristic, RespectsLpBudget) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s27"), 3);
  HeuristicOptions opt;
  opt.max_lp_evals = 25;
  const HeuristicResult result = heur_eff_cyc(rrg, opt);
  EXPECT_LE(result.lp_evals, 25);
  expect_well_formed(rrg, result);
}

TEST(Heuristic, TelescopicCapRespected) {
  Rrg rrg = figure1a(0.9);
  rrg.set_telescopic(kF2, 0.5, 2);  // cap = 1/2
  const HeuristicResult result = heur_eff_cyc(rrg);
  expect_well_formed(rrg, result);
  for (const ParetoPoint& p : result.points) {
    EXPECT_LE(p.theta_lp, throughput_cap(rrg) + 1e-6);
  }
}

TEST(Heuristic, RejectsNonStronglyConnected) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 1, 1);
  EXPECT_THROW(heur_eff_cyc(rrg), InvalidInputError);
}

class HeuristicSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(HeuristicSweep, WellFormedOnSyntheticCircuits) {
  const auto& [name, seed] = GetParam();
  const Rrg rrg = bench89::make_table2_rrg(
      bench89::spec_by_name(name), static_cast<std::uint64_t>(seed));
  HeuristicOptions opt;
  opt.max_lp_evals = 600;
  const HeuristicResult result = heur_eff_cyc(rrg, opt);
  expect_well_formed(rrg, result);
  // The greedy walk must always improve on the identity when the
  // critical path is longer than one node (true for every synthetic
  // circuit: delays are dense and tokens sparse).
  EXPECT_LT(result.best().xi_lp, evaluate_rrg(rrg).xi_lp);
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, HeuristicSweep,
    ::testing::Combine(::testing::Values("s208", "s27", "s838", "s420",
                                         "s382"),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace elrr
