/// \file cli_test.cpp
/// Drives every elrr subcommand in process through cli::run.

#include "tools/elrr/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/rrg_format.hpp"
#include "obs/trace.hpp"

namespace elrr::cli {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(std::initializer_list<std::string> tokens) {
  std::vector<std::string> storage{"elrr"};
  storage.insert(storage.end(), tokens.begin(), tokens.end());
  std::vector<const char*> argv;
  for (const std::string& s : storage) argv.push_back(s.c_str());
  std::ostringstream out, err;
  CliResult result;
  result.code = run(static_cast<int>(argv.size()), argv.data(), out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

TEST(Cli, HelpAndUnknown) {
  const CliResult help = run_cli({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage: elrr"), std::string::npos);

  const CliResult none = run_cli({});
  EXPECT_EQ(none.code, 2);

  const CliResult bad = run_cli({"frobnicate"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("unknown command"), std::string::npos);
}

TEST(Cli, UnknownFlagIsAnError) {
  const CliResult r = run_cli({"analyze", "--circuit", "s208", "--bogus"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(Cli, GenerateAnalyzeRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cli_s208.rrg";
  const CliResult gen =
      run_cli({"generate", "--circuit", "s208", "--seed", "3", "--output",
               path});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote s208"), std::string::npos);

  const CliResult ana =
      run_cli({"analyze", "--input", path, "--cycles", "2000"});
  ASSERT_EQ(ana.code, 0) << ana.err;
  EXPECT_NE(ana.out.find("cycle time tau"), std::string::npos);
  EXPECT_NE(ana.out.find("simulated Theta"), std::string::npos);
}

TEST(Cli, InputAndCircuitAreMutuallyExclusive) {
  const CliResult r =
      run_cli({"analyze", "--circuit", "s208", "--input", "x.rrg"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("exactly one"), std::string::npos);
}

TEST(Cli, OptimizeHeuristicAndSave) {
  const std::string path = ::testing::TempDir() + "/cli_best.rrg";
  const CliResult r = run_cli({"optimize", "--circuit", "s208", "--method",
                               "heur", "--save-best", path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("heuristic:"), std::string::npos);
  EXPECT_NE(r.out.find("<== best"), std::string::npos);
  // The saved best configuration parses and is live.
  const io::NamedRrg best = io::load_rrg_file(path);
  EXPECT_GT(best.rrg.num_edges(), 0u);
}

TEST(Cli, OptimizeRejectsUnknownMethod) {
  const CliResult r =
      run_cli({"optimize", "--circuit", "s208", "--method", "magic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --method"), std::string::npos);
}

TEST(Cli, SimulateTokenAndControl) {
  const CliResult token = run_cli(
      {"simulate", "--circuit", "s208", "--cycles", "2000", "--runs", "1"});
  ASSERT_EQ(token.code, 0) << token.err;
  EXPECT_NE(token.out.find("token-level kernel"), std::string::npos);

  const CliResult control =
      run_cli({"simulate", "--circuit", "s208", "--cycles", "2000",
               "--control", "--capacity", "1"});
  ASSERT_EQ(control.code, 0) << control.err;
  EXPECT_NE(control.out.find("SELF control network"), std::string::npos);
}

TEST(Cli, ExportFormats) {
  for (const char* format : {"rrg", "json", "dot", "tgmg-dot", "mps",
                             "verilog"}) {
    const CliResult r =
        run_cli({"export", "--circuit", "s208", "--format", format});
    ASSERT_EQ(r.code, 0) << format << ": " << r.err;
    EXPECT_FALSE(r.out.empty()) << format;
  }
  const CliResult dot = run_cli({"export", "--circuit", "s208",
                                 "--format", "dot"});
  EXPECT_NE(dot.out.find("digraph"), std::string::npos);
  const CliResult bad =
      run_cli({"export", "--circuit", "s208", "--format", "png"});
  EXPECT_EQ(bad.code, 1);
}

TEST(Cli, SizeFifos) {
  const CliResult r = run_cli(
      {"size-fifos", "--circuit", "s208", "--cycles", "1500"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("smallest uniform capacity"), std::string::npos);
}

TEST(Cli, FromBench) {
  // A tiny netlist with a 2-gate SCC through two DFFs.
  const std::string bench_path = ::testing::TempDir() + "/cli_tiny.bench";
  io::save_text_file(bench_path, R"(
# tiny
INPUT(i)
OUTPUT(o)
q1 = DFF(g2)
q2 = DFF(g1)
g1 = NAND(i, q1)
g2 = NOT(g1)
o = BUFF(q2)
)");
  const std::string out_path = ::testing::TempDir() + "/cli_tiny.rrg";
  const CliResult r = run_cli({"from-bench", "--input", bench_path,
                               "--output", out_path, "--annotate",
                               "--seed", "5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("largest SCC"), std::string::npos);
  const io::NamedRrg rrg = io::load_rrg_file(out_path);
  EXPECT_GT(rrg.rrg.num_nodes(), 0u);
}

TEST(Cli, MinArea) {
  const CliResult r = run_cli({"min-area", "--circuit", "s208"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("buffers:"), std::string::npos);
  // A looser period can only need fewer or equal buffers.
  const CliResult loose =
      run_cli({"min-area", "--circuit", "s208", "--period", "1000"});
  ASSERT_EQ(loose.code, 0) << loose.err;
}

TEST(Cli, MissingFileProducesCleanError) {
  const CliResult r = run_cli({"analyze", "--input", "/no/such/file.rrg"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, FlowRunsThePipelinedEngine) {
  const CliResult r =
      run_cli({"flow", "--circuit", "s208", "--epsilon", "0.1", "--cycles",
               "2000", "--runs", "2", "--threads", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("walk:"), std::string::npos);
  EXPECT_NE(r.out.find("candidates streamed"), std::string::npos);
  EXPECT_NE(r.out.find("<== best by simulation"), std::string::npos);
  EXPECT_NE(r.out.find("(overlapped)"), std::string::npos);

  // The sequential baseline reports identical candidates (determinism:
  // overlap is purely a wall-clock knob), marked as sequential.
  const CliResult seq =
      run_cli({"flow", "--circuit", "s208", "--epsilon", "0.1", "--cycles",
               "2000", "--runs", "2", "--threads", "1", "--sequential"});
  ASSERT_EQ(seq.code, 0) << seq.err;
  EXPECT_NE(seq.out.find("(sequential)"), std::string::npos);
  const auto table_of = [](const std::string& text) {
    // Everything between the header row and the "pipeline:" footer is
    // the scored-candidate table; it must match bit for bit.
    const std::size_t begin = text.find("   #");
    const std::size_t end = text.find("pipeline:");
    return text.substr(begin, end - begin);
  };
  EXPECT_EQ(table_of(r.out), table_of(seq.out));
}

/// The regression gate tolerates sections present in only one of the two
/// trajectory files: a fresh run carrying the new `pipeline` section must
/// pass -- with a warning, not a failure -- against a baseline that
/// predates it, and vice versa when bisecting backwards.
TEST(Cli, BenchDiffWarnsOnOneSidedSections) {
  const std::string old_path = ::testing::TempDir() + "/bench_old.json";
  const std::string new_path = ::testing::TempDir() + "/bench_new.json";
  io::save_text_file(old_path, R"({
  "cases": {
    "small": {"cycles_per_sec": 1000000, "bit_exact": true}
  }
})");
  io::save_text_file(new_path, R"({
  "cases": {
    "small": {"cycles_per_sec": 1000000, "bit_exact": true},
    "pipeline": {"sequential_seconds": 0.5, "overlapped_seconds": 0.4,
                 "bit_exact": true}
  }
})");
  const CliResult forward =
      run_cli({"bench-diff", "--new", new_path, "--baseline", old_path});
  EXPECT_EQ(forward.code, 0) << forward.out << forward.err;
  EXPECT_NE(forward.out.find("warning: section 'pipeline' missing from"),
            std::string::npos);
  EXPECT_NE(forward.out.find(old_path), std::string::npos);
  EXPECT_NE(forward.out.find("no regression"), std::string::npos);

  // Backwards (old file as --new): still a warning naming the other file.
  const CliResult backward =
      run_cli({"bench-diff", "--new", old_path, "--baseline", new_path});
  EXPECT_EQ(backward.code, 0) << backward.out << backward.err;
  EXPECT_NE(backward.out.find("warning: section 'pipeline' missing from"),
            std::string::npos);
  EXPECT_NE(backward.out.find(old_path), std::string::npos);
}

TEST(Cli, BenchDiffStillFailsOnRealRegressions) {
  const std::string old_path = ::testing::TempDir() + "/bench_reg_old.json";
  const std::string new_path = ::testing::TempDir() + "/bench_reg_new.json";
  io::save_text_file(old_path, R"({
  "cases": {
    "small": {"cycles_per_sec": 1000000},
    "pipeline": {"overlapped_seconds": 0.40}
  }
})");
  io::save_text_file(new_path, R"({
  "cases": {
    "small": {"cycles_per_sec": 990000},
    "pipeline": {"overlapped_seconds": 0.60}
  }
})");
  const CliResult r =
      run_cli({"bench-diff", "--new", new_path, "--baseline", old_path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("pipeline"), std::string::npos);
  EXPECT_NE(r.out.find("REGRESSION"), std::string::npos);
}

/// --json: the same verdicts as the text table, machine-readable --
/// per-section status (pass/fail/warn), the fold-direction-corrected
/// speedup, and a top-level pass/fail for CI annotation. Exit code
/// matches the text mode.
TEST(Cli, BenchDiffJsonIsMachineReadable) {
  const std::string old_path = ::testing::TempDir() + "/bench_json_old.json";
  const std::string new_path = ::testing::TempDir() + "/bench_json_new.json";
  io::save_text_file(old_path, R"({
  "cases": {
    "small": {"cycles_per_sec": 1000000},
    "pipeline": {"overlapped_seconds": 0.40}
  }
})");
  io::save_text_file(new_path, R"({
  "cases": {
    "small": {"cycles_per_sec": 1000000},
    "pipeline": {"overlapped_seconds": 0.60},
    "batch": {"scheduler_seconds": 0.30}
  }
})");
  const CliResult r = run_cli(
      {"bench-diff", "--new", new_path, "--baseline", old_path, "--json"});
  EXPECT_EQ(r.code, 1) << r.out;  // the pipeline regression still fails
  EXPECT_NE(r.out.find("\"status\": \"fail\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("{\"name\": \"small\", \"metric\": "
                       "\"cycles_per_sec\", \"status\": \"pass\""),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"name\": \"pipeline\""), std::string::npos);
  // batch exists only in --new: a warn, never a failure.
  EXPECT_NE(r.out.find("{\"name\": \"batch\", \"metric\": "
                       "\"scheduler_seconds\", \"status\": \"warn\""),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"regressions\": 1"), std::string::npos);

  // A clean comparison reports top-level pass and exit 0.
  const CliResult clean = run_cli(
      {"bench-diff", "--new", old_path, "--baseline", old_path, "--json"});
  EXPECT_EQ(clean.code, 0) << clean.out;
  EXPECT_NE(clean.out.find("\"status\": \"pass\""), std::string::npos);
}

/// The batch service end to end through the CLI: a JSONL manifest in,
/// JSONL results + a trailing summary record out; per-line validation
/// errors carry the manifest line number; --jobs/--threads are
/// range-checked like the ELRR_* env knobs.
TEST(Cli, BatchRunsAManifest) {
  const std::string manifest_path = ::testing::TempDir() + "/batch.jsonl";
  io::save_text_file(manifest_path,
                     "{\"circuit\": \"s208\", \"mode\": \"score\", "
                     "\"cycles\": 2000}\n"
                     "{\"circuit\": \"s208\", \"mode\": \"score\", "
                     "\"cycles\": 2000, \"name\": \"repeat\"}\n"
                     "{\"circuit\": \"s420\", \"mode\": \"score\", "
                     "\"cycles\": 2000, \"priority\": \"high\"}\n");
  // Two workers: even when the duplicate dispatches concurrently with
  // its twin, the result cache's dispatch-time reservation guarantees
  // exactly one of them runs -- the assertion below holds at any -j.
  const CliResult r = run_cli({"batch", manifest_path, "--jobs", "2"});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  // One result line per manifest line, in submission order, plus the
  // summary record.
  EXPECT_NE(r.out.find("{\"job\": 0, \"name\": \"s208\", \"mode\": "
                       "\"score\", \"state\": \"done\""),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"name\": \"repeat\""), std::string::npos);
  EXPECT_NE(r.out.find("\"name\": \"s420\""), std::string::npos);
  EXPECT_NE(r.out.find("\"summary\": true"), std::string::npos);
  EXPECT_NE(r.out.find("\"theta_sim\""), std::string::npos);
  // The duplicate score job dedups through the cross-job result cache.
  EXPECT_NE(r.out.find("\"job_cache_hits\": 1"), std::string::npos) << r.out;

  // --output writes the same JSONL to a file instead of stdout.
  const std::string out_path = ::testing::TempDir() + "/batch_out.jsonl";
  const CliResult to_file =
      run_cli({"batch", manifest_path, "--output", out_path});
  EXPECT_EQ(to_file.code, 0) << to_file.err;
  EXPECT_EQ(to_file.out, "");
  const std::string written = io::load_text_file(out_path);
  EXPECT_NE(written.find("\"summary\": true"), std::string::npos);
}

/// `batch --trace` end to end: the summary gains the unified nested
/// stats object and a trace_summary record, the Chrome trace-event file
/// lands on disk with scheduler span names in it, and `trace-summary`
/// renders the aggregate table back from that file.
TEST(Cli, BatchTraceAndTraceSummary) {
  const std::string manifest_path =
      ::testing::TempDir() + "/batch_trace.jsonl";
  io::save_text_file(manifest_path,
                     "{\"circuit\": \"s208\", \"mode\": \"score\", "
                     "\"cycles\": 2000}\n");
  const std::string trace_path = ::testing::TempDir() + "/cli_trace.json";
  const CliResult r = run_cli({"batch", manifest_path, "--trace", trace_path});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("\"stats\": {\"scheduler\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"fleet_cache\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"milp\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"trace_summary\": true"), std::string::npos) << r.out;
  EXPECT_NE(r.err.find("wrote trace"), std::string::npos) << r.err;
  const std::string trace = io::load_text_file(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"job.run\""), std::string::npos) << trace;

  const CliResult summary = run_cli({"trace-summary", trace_path});
  EXPECT_EQ(summary.code, 0) << summary.err;
  EXPECT_NE(summary.out.find("phase"), std::string::npos) << summary.out;
  EXPECT_NE(summary.out.find("job.run"), std::string::npos) << summary.out;

  // --trace arms via the process environment (so spawned workers
  // inherit it); scrub both for whatever runs next in this process.
  ::unsetenv("ELRR_TRACE");
  obs::reset();
}

/// The --json twin of trace-summary is a published schema (dashboards
/// parse it, mirroring bench-diff --json conventions), so the keys are
/// pinned here, not just "some JSON came out": input, per-phase rows
/// with count/total_s/p50_s/p95_s/p99_s, and the ring health at the
/// tail. The text table reports the same ring health as a footer.
TEST(Cli, TraceSummaryJsonPinsTheSchema) {
  const std::string manifest_path =
      ::testing::TempDir() + "/trace_json.jsonl";
  io::save_text_file(manifest_path,
                     "{\"circuit\": \"s208\", \"mode\": \"score\", "
                     "\"cycles\": 2000}\n");
  const std::string trace_path =
      ::testing::TempDir() + "/trace_json_trace.json";
  const CliResult r = run_cli({"batch", manifest_path, "--trace", trace_path});
  ASSERT_EQ(r.code, 0) << r.out << r.err;

  const CliResult js = run_cli({"trace-summary", trace_path, "--json"});
  EXPECT_EQ(js.code, 0) << js.err;
  EXPECT_NE(js.out.find("\"input\": \""), std::string::npos) << js.out;
  EXPECT_NE(js.out.find("\"phases\": ["), std::string::npos) << js.out;
  EXPECT_NE(js.out.find("{\"name\": \"job.run\", \"count\": "),
            std::string::npos)
      << js.out;
  EXPECT_NE(js.out.find("\"total_s\": "), std::string::npos);
  EXPECT_NE(js.out.find("\"p50_s\": "), std::string::npos);
  EXPECT_NE(js.out.find("\"p95_s\": "), std::string::npos);
  EXPECT_NE(js.out.find("\"p99_s\": "), std::string::npos);
  EXPECT_NE(js.out.find("\"dropped_spans\": 0"), std::string::npos) << js.out;
  EXPECT_NE(js.out.find("\"ring_capacity\": "), std::string::npos) << js.out;
  // Nothing dropped: no ELRR_OBS_BUF advice on stderr.
  EXPECT_EQ(js.err.find("dropped"), std::string::npos) << js.err;

  const CliResult txt = run_cli({"trace-summary", trace_path});
  EXPECT_EQ(txt.code, 0) << txt.err;
  EXPECT_NE(txt.out.find("spans dropped: 0 (per-thread ring capacity "),
            std::string::npos)
      << txt.out;

  ::unsetenv("ELRR_TRACE");
  obs::reset();
}

/// --trace vs ELRR_TRACE precedence: both arm the same obs layer, and
/// when both name a path the flag wins -- the trace lands at the
/// --trace path and the env variable is re-exported to match, so
/// spawned worker processes follow the flag too. Env alone still arms.
TEST(Cli, TraceFlagWinsOverTraceEnv) {
  const std::string manifest_path =
      ::testing::TempDir() + "/trace_prec.jsonl";
  io::save_text_file(manifest_path,
                     "{\"circuit\": \"s208\", \"mode\": \"score\", "
                     "\"cycles\": 2000}\n");
  const std::string env_path = ::testing::TempDir() + "/trace_env.json";
  const std::string flag_path = ::testing::TempDir() + "/trace_flag.json";
  std::remove(env_path.c_str());
  std::remove(flag_path.c_str());
  const auto exists = [](const std::string& p) {
    return std::ifstream(p).good();
  };

  ::setenv("ELRR_TRACE", env_path.c_str(), 1);
  const CliResult both = run_cli({"batch", manifest_path, "--trace",
                                  flag_path});
  EXPECT_EQ(both.code, 0) << both.err;
  EXPECT_TRUE(exists(flag_path)) << "flag path did not receive the trace";
  EXPECT_FALSE(exists(env_path))
      << "env path received a trace although the flag named another";
  // The flag re-exported the env so worker processes inherit its path.
  EXPECT_STREQ(::getenv("ELRR_TRACE"), flag_path.c_str());
  ::unsetenv("ELRR_TRACE");
  obs::reset();

  // Env alone arms and the trace lands at the env path.
  ::setenv("ELRR_TRACE", env_path.c_str(), 1);
  const CliResult env_only = run_cli({"batch", manifest_path});
  EXPECT_EQ(env_only.code, 0) << env_only.err;
  EXPECT_TRUE(exists(env_path)) << "ELRR_TRACE alone did not write a trace";
  ::unsetenv("ELRR_TRACE");
  obs::reset();
}

/// `elrr postmortem` renders the line-oriented flight-recorder dump as
/// a report: reason/pid, ring health, in-flight identities, the event
/// tail and the registry mirror; a dump with no `end` marker gets an
/// explicit truncation warning, and a non-postmortem file is rejected.
TEST(Cli, PostmortemRendersADump) {
  const std::string path = ::testing::TempDir() + "/postmortem-4242.txt";
  io::save_text_file(
      path,
      "ELRR-POSTMORTEM 1\n"
      "reason: SIGSEGV\n"
      "pid: 4242\n"
      "events_recorded: 3\n"
      "events_dropped: 1\n"
      "inflight: tid=7 slice 128\n"
      "event: seq=2 t_ns=1000000 tid=7 name=slice.recv a=128 b=64\n"
      "event: seq=3 t_ns=1500000 tid=7 name=slice.dispatch a=128 b=64\n"
      "counter: fleet.slices 12\n"
      "hist: fleet.slice count=3 total_ns=4500000 p50_le_ns=2097152 "
      "p95_le_ns=2097152 p99_le_ns=2097152\n"
      "end\n");
  const CliResult r = run_cli({"postmortem", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("reason: SIGSEGV    pid: 4242"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("3 recorded, 1 dropped (ring wrapped"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("in flight when the process died:"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("tid=7 slice 128"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("slice.recv"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("fleet.slices 12"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("phase latencies"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("WARNING"), std::string::npos) << r.out;

  // No `end` marker (the handler died mid-write, or the disk filled):
  // the report itself says the dump is incomplete.
  const std::string cut = ::testing::TempDir() + "/postmortem-cut.txt";
  io::save_text_file(cut, "ELRR-POSTMORTEM 1\nreason: SIGABRT\npid: 1\n");
  const CliResult truncated = run_cli({"postmortem", cut});
  EXPECT_EQ(truncated.code, 0) << truncated.err;
  EXPECT_NE(truncated.out.find(
                "WARNING: no 'end' marker -- dump is truncated"),
            std::string::npos)
      << truncated.out;

  const std::string bogus = ::testing::TempDir() + "/not_a_postmortem.txt";
  io::save_text_file(bogus, "{\"snapshot\": true}\n");
  const CliResult bad = run_cli({"postmortem", bogus});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("not a flight-recorder postmortem"),
            std::string::npos)
      << bad.err;
}

/// `elrr top` over a snapshot with every section present pins the
/// dashboard rendering: queue/fleet/jobs/cache/proc/milp rows plus the
/// per-phase table from the embedded obs summary.
TEST(Cli, TopRendersASnapshot) {
  const std::string path = ::testing::TempDir() + "/snap.json";
  io::save_text_file(
      path,
      "{\"snapshot\": true, \"uptime_s\": 12.500, \"queued\": 3, "
      "\"running\": 2, \"workers\": 4, \"fleet\": {\"pool\": 8, "
      "\"busy\": 6, \"proc_workers\": 2}, \"stats\": {\"scheduler\": "
      "{\"submitted\": 10, \"completed\": 7, \"failed\": 1, "
      "\"rejected\": 0, \"retries\": 2, \"job_cache_hits\": 3}, "
      "\"fleet_cache\": {\"hits\": 30, \"misses\": 10}, \"proc\": "
      "{\"workers\": 2, \"spawns\": 3, \"crashes\": 1, \"respawns\": 1, "
      "\"redispatches\": 1, \"postmortems\": 1}, \"milp\": "
      "{\"solves\": 7, \"solve_seconds\": 1.25}}, \"obs\": {\"phases\": "
      "[{\"name\": \"job.run\", \"count\": 5, \"total_s\": 2.000000, "
      "\"p50_s\": 0.400000000, \"p95_s\": 0.500000000, \"p99_s\": "
      "0.500000000}], \"counters\": {}, \"dropped_spans\": 0, "
      "\"ring_capacity\": 8192}}\n");
  const CliResult r = run_cli({"top", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("uptime 12.5s   queued 3   running 2   "
                       "scheduler workers 4"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("fleet: pool 8, busy 6 (75%), proc workers 2"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("jobs:  submitted 10, completed 7, failed 1, "
                       "rejected 0, retries 2"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("cache: fleet 75.0% hit (30/40), job hits 3"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("proc:  spawns 3, crashes 1, respawns 1, "
                       "redispatches 1, postmortems 1"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("milp:  solves 7, 1.25s total"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("phases:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("job.run"), std::string::npos) << r.out;
}

/// End to end: ELRR_STATS_SNAPSHOT through a real batch. The scheduler
/// publishes periodically and its destructor writes a terminal
/// snapshot, so after the batch returns the file renders through `top`;
/// a file that is not a snapshot is rejected with the expected-shape
/// hint.
TEST(Cli, TopReadsALiveSchedulerSnapshot) {
  const std::string manifest_path = ::testing::TempDir() + "/top_live.jsonl";
  io::save_text_file(manifest_path,
                     "{\"circuit\": \"s208\", \"mode\": \"score\", "
                     "\"cycles\": 2000}\n");
  const std::string snap_path = ::testing::TempDir() + "/top_live_snap.json";
  ::setenv("ELRR_STATS_SNAPSHOT", (snap_path + ":50").c_str(), 1);
  const CliResult batch = run_cli({"batch", manifest_path});
  ::unsetenv("ELRR_STATS_SNAPSHOT");
  ASSERT_EQ(batch.code, 0) << batch.out << batch.err;

  const CliResult top = run_cli({"top", snap_path});
  EXPECT_EQ(top.code, 0) << top.err;
  EXPECT_NE(top.out.find("uptime "), std::string::npos) << top.out;
  EXPECT_NE(top.out.find("jobs:  submitted 1, completed 1"),
            std::string::npos)
      << top.out;

  const CliResult bad = run_cli({"top", manifest_path});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("not a stats snapshot"), std::string::npos)
      << bad.err;
}

TEST(Cli, BatchRejectsBadManifestsWithLineNumbers) {
  const std::string manifest_path = ::testing::TempDir() + "/batch_bad.jsonl";
  io::save_text_file(manifest_path,
                     "{\"circuit\": \"s208\", \"mode\": \"score\"}\n"
                     "{\"circuit\": \"s208\", \"bogus\": 1}\n");
  const CliResult r = run_cli({"batch", manifest_path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("manifest line 2"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("bogus"), std::string::npos) << r.err;
}

TEST(Cli, BatchValidatesKnobs) {
  const std::string manifest_path = ::testing::TempDir() + "/batch_ok.jsonl";
  io::save_text_file(manifest_path,
                     "{\"circuit\": \"s208\", \"mode\": \"score\"}\n");
  const CliResult zero = run_cli({"batch", manifest_path, "--jobs", "0"});
  EXPECT_EQ(zero.code, 1);
  EXPECT_NE(zero.err.find("--jobs"), std::string::npos) << zero.err;
  const CliResult huge =
      run_cli({"batch", manifest_path, "--threads", "100000"});
  EXPECT_EQ(huge.code, 1);
  EXPECT_NE(huge.err.find("--threads"), std::string::npos) << huge.err;
  const CliResult junk = run_cli({"batch", manifest_path, "--jobs", "two"});
  EXPECT_EQ(junk.code, 1);
  const CliResult missing = run_cli({"batch"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("usage"), std::string::npos) << missing.err;
}

}  // namespace
}  // namespace elrr::cli
