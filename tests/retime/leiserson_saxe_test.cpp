#include "retime/leiserson_saxe.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "core/opt.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::retime {
namespace {

using namespace figures;

/// The correlator example from the Leiserson-Saxe paper: a host (delay 0),
/// three comparators (delay 3) and three adders (delay 7) in the classic
/// ring; optimal period 13 (down from 24).
Rrg correlator() {
  Rrg rrg;
  const NodeId host = rrg.add_node("host", 0.0);
  const NodeId d1 = rrg.add_node("d1", 3.0);
  const NodeId d2 = rrg.add_node("d2", 3.0);
  const NodeId d3 = rrg.add_node("d3", 3.0);
  const NodeId p1 = rrg.add_node("p1", 7.0);
  const NodeId p2 = rrg.add_node("p2", 7.0);
  const NodeId p3 = rrg.add_node("p3", 7.0);
  rrg.add_edge(host, d1, 1, 1);
  rrg.add_edge(d1, d2, 1, 1);
  rrg.add_edge(d2, d3, 1, 1);
  rrg.add_edge(d1, p1, 0, 0);
  rrg.add_edge(d2, p2, 0, 0);
  rrg.add_edge(d3, p3, 0, 0);
  rrg.add_edge(p3, p2, 0, 0);
  rrg.add_edge(p2, p1, 0, 0);
  rrg.add_edge(p1, host, 0, 0);
  rrg.validate();
  return rrg;
}

TEST(LeisersonSaxe, CorrelatorOptimalPeriodIs13) {
  const Rrg rrg = correlator();
  EXPECT_DOUBLE_EQ(cycle_time(rrg).tau, 24.0);  // the unretimed circuit
  const RetimingResult result = min_period_retiming(rrg);
  EXPECT_DOUBLE_EQ(result.period, 13.0);
  EXPECT_DOUBLE_EQ(retimed_cycle_time(rrg, result.r), 13.0);
}

TEST(LeisersonSaxe, Figure1aCannotBeatThree) {
  // Section 1.2 of the DAC'09 paper: retiming alone is stuck at 3.
  const Rrg rrg = figure1a(0.5, false);
  const RetimingResult result = min_period_retiming(rrg);
  EXPECT_DOUBLE_EQ(result.period, 3.0);
}

TEST(LeisersonSaxe, PeriodNeverBelowMaxDelay) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 9.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 1, 1);
  rrg.add_edge(b, a, 1, 1);
  const RetimingResult result = min_period_retiming(rrg);
  EXPECT_DOUBLE_EQ(result.period, 9.0);
}

TEST(LeisersonSaxe, RejectsAntiTokens) {
  EXPECT_THROW(min_period_retiming(figure2(0.9)), Error);
}

TEST(Feas, AgreesWithOptOnFeasibility) {
  const Rrg rrg = correlator();
  EXPECT_FALSE(feasible_period(rrg, 12.9));
  std::vector<int> r;
  ASSERT_TRUE(feasible_period(rrg, 13.0, &r));
  EXPECT_LE(retimed_cycle_time(rrg, r), 13.0);
  EXPECT_TRUE(feasible_period(rrg, 24.0));
}

// ---------------------------------------------------------------------------
// Properties on random live RRGs:
//  * FEAS and OPT agree;
//  * the MILP MIN_CYC(1) equals the Leiserson-Saxe optimum -- tying the
//    paper's formulation to the classical algorithm.
// ---------------------------------------------------------------------------
class RetimeRandomTest : public ::testing::TestWithParam<int> {};

Rrg random_rrg(Rng& rng) {
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("", rng.uniform_open_closed(0.0, 10.0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int tokens = static_cast<int>(rng.uniform_int(0, 2));
    rrg.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 tokens, tokens);
  }
  const std::size_t extra = static_cast<std::size_t>(rng.uniform_int(1, 5));
  for (std::size_t k = 0; k < extra; ++k) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const int tokens = static_cast<int>(rng.uniform_int(u == v ? 1 : 0, 2));
    rrg.add_edge(u, v, tokens, tokens);
  }
  std::vector<EdgeId> dead;
  while (!rrg.is_live(&dead)) {
    rrg.set_tokens(dead[0], 1);
    rrg.set_buffers(dead[0], 1);
  }
  return rrg;
}

TEST_P(RetimeRandomTest, FeasAgreesWithOpt) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 4409 + 31);
  const Rrg rrg = random_rrg(rng);
  const RetimingResult opt = min_period_retiming(rrg);
  EXPECT_TRUE(feasible_period(rrg, opt.period));
  EXPECT_FALSE(feasible_period(rrg, opt.period - 1e-6));
  EXPECT_LE(retimed_cycle_time(rrg, opt.r), opt.period + 1e-9);
}

TEST_P(RetimeRandomTest, MilpMinCycAtThroughputOneMatches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9001 + 77);
  const Rrg rrg = random_rrg(rng);
  const RetimingResult ls = min_period_retiming(rrg);
  const auto milp = min_cyc(rrg, 1.0);
  ASSERT_TRUE(milp.feasible);
  EXPECT_NEAR(milp.objective, ls.period, 1e-6)
      << "MILP and Leiserson-Saxe disagree";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetimeRandomTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace elrr::retime
