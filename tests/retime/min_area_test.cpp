/// \file min_area_test.cpp
/// Minimum-area retiming under a period constraint, cross-checked by
/// brute force over retiming vectors on small graphs.

#include "retime/min_area.hpp"

#include <gtest/gtest.h>

#include <climits>

#include "bench89/generator.hpp"
#include "core/figures.hpp"
#include "retime/leiserson_saxe.hpp"
#include "support/error.hpp"

namespace elrr::retime {
namespace {

using namespace figures;

/// Brute-force oracle: every retiming vector in [-radius, radius]^|N|
/// with r[0] = 0, keeping non-negative tokens and cycle time <= period;
/// returns the minimum total buffer count (INT_MAX if none).
int brute_force_area(const Rrg& rrg, double period, int radius) {
  const std::size_t n = rrg.num_nodes();
  std::vector<int> r(n, -radius);
  r[0] = 0;
  int best = INT_MAX;
  while (true) {
    const RrConfig config = apply_retiming(rrg, r, false);
    bool ok = true;
    int area = 0;
    for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
      if (config.tokens[e] < 0) {
        ok = false;
        break;
      }
      area += config.buffers[e];
    }
    if (ok) {
      const Rrg candidate = apply_config(rrg, config);
      const CycleTimeResult ct = cycle_time(candidate);
      if (ct.valid && ct.tau <= period + 1e-9) best = std::min(best, area);
    }
    std::size_t i = 1;
    for (; i < n; ++i) {
      if (++r[i] <= radius) break;
      r[i] = -radius;
    }
    if (i == n) break;
  }
  return best;
}

TEST(MinArea, Figure1aAtOriginalPeriod) {
  const Rrg rrg = figure1a(0.5);
  const MinAreaResult result = min_area_retiming(rrg, 3.0);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.total_buffers, brute_force_area(rrg, 3.0, 3));
  // Validity: a real retiming, non-negative tokens, period met.
  std::string why;
  EXPECT_TRUE(validate_config(rrg, result.config, &why)) << why;
  const Rrg retimed = apply_config(rrg, result.config);
  EXPECT_LE(cycle_time(retimed).tau, 3.0 + 1e-9);
}

TEST(MinArea, TighterPeriodCostsMoreArea) {
  // min-period retiming of figure 1(a) is 3; area at period 3 is the
  // cheapest, and looser periods can only need less or equal buffers.
  const Rrg rrg = figure1a(0.5);
  const MinAreaResult tight = min_area_retiming(rrg, 3.0);
  const MinAreaResult loose = min_area_retiming(rrg, 10.0);
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_LE(loose.total_buffers, tight.total_buffers);
}

TEST(MinArea, InfeasibleBelowMinPeriod) {
  const Rrg rrg = figure1a(0.5);
  const RetimingResult ls = min_period_retiming(rrg);
  const MinAreaResult result = min_area_retiming(rrg, ls.period - 0.5);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.exact);  // proven infeasible, not a budget timeout
}

TEST(MinArea, RejectsAntiTokens) {
  const Rrg rrg = figure2(0.9);  // has -2 tokens
  EXPECT_THROW(min_area_retiming(rrg, 10.0), InvalidInputError);
}

class MinAreaSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinAreaSweep, MatchesBruteForceOnSmallCircuits) {
  const Rrg rrg = bench89::make_table2_rrg(
      bench89::spec_by_name("s208"), static_cast<std::uint64_t>(GetParam()));
  const RetimingResult ls = min_period_retiming(rrg);
  for (const double slack : {1.0, 1.3}) {
    const double period = ls.period * slack;
    const MinAreaResult result = min_area_retiming(rrg, period);
    ASSERT_TRUE(result.feasible) << "slack " << slack;
    const int oracle = brute_force_area(rrg, period, 2);
    ASSERT_NE(oracle, INT_MAX);
    // Brute force is radius-limited; the MILP may be strictly better,
    // never worse.
    EXPECT_LE(result.total_buffers, oracle) << "slack " << slack;
    if (result.exact) {
      const Rrg retimed = apply_config(rrg, result.config);
      EXPECT_LE(cycle_time(retimed).tau, period + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinAreaSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace elrr::retime
