/// \file args_test.cpp
/// The command-line flag parser behind the elrr tool.

#include "support/args.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace elrr {
namespace {

Args make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"elrr"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, CommandAndPositionals) {
  Args args = make({"optimize", "a", "b"});
  EXPECT_EQ(args.command(), "optimize");
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"a", "b"}));
  args.finish();
}

TEST(Args, EmptyCommandLine) {
  Args args = make({});
  EXPECT_TRUE(args.command().empty());
  args.finish();
}

TEST(Args, SpaceAndEqualsForms) {
  Args args = make({"run", "--alpha", "0.5", "--beta=2"});
  EXPECT_EQ(args.get_double("alpha", 0), 0.5);
  EXPECT_EQ(args.get_int("beta", 0), 2);
  args.finish();
}

TEST(Args, BooleanFlags) {
  Args args = make({"run", "--verbose", "--fast=true", "--slow=0"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_TRUE(args.get_flag("fast"));
  EXPECT_FALSE(args.get_flag("slow"));
  EXPECT_FALSE(args.get_flag("absent"));
  args.finish();
}

TEST(Args, RequireThrowsWhenMissing) {
  Args args = make({"run"});
  EXPECT_THROW(args.require("input"), InvalidInputError);
}

TEST(Args, UnknownFlagRejectedByFinish) {
  Args args = make({"run", "--typo", "3"});
  EXPECT_THROW(args.finish(), InvalidInputError);
}

TEST(Args, DuplicateFlagRejected) {
  EXPECT_THROW(make({"run", "--x", "1", "--x", "2"}), InvalidInputError);
}

TEST(Args, BadNumbersRejected) {
  Args args = make({"run", "--n", "abc", "--f", "1.5"});
  EXPECT_THROW(args.get_int("n", 0), InvalidInputError);
  EXPECT_THROW(args.get_int("f", 0), InvalidInputError);  // not integral
}

TEST(Args, U64RoundTrip) {
  Args args = make({"run", "--seed", "18446744073709551615"});
  EXPECT_EQ(args.get_u64("seed", 0), 18446744073709551615ULL);
  EXPECT_EQ(args.get_u64("absent", 7), 7u);
  args.finish();
}

TEST(Args, ValueStartingWithDashesIsNotConsumed) {
  // "--a --b" parses as two bare flags, not a="--b".
  Args args = make({"run", "--a", "--b", "x"});
  EXPECT_TRUE(args.get_flag("a"));
  EXPECT_EQ(args.get_or("b", ""), "x");
  args.finish();
}

}  // namespace
}  // namespace elrr
