#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "support/error.hpp"

namespace elrr {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform01();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, OpenClosedIntervalMatchesPaperConvention) {
  // The paper draws combinational delays from (0, 20].
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform_open_closed(0.0, 20.0);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 20.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(17);
  std::array<int, 5> hits{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    ++hits[static_cast<std::size_t>(v - 2)];
  }
  for (int h : hits) EXPECT_NEAR(h, n / 5, n / 50);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(19);
  EXPECT_THROW(rng.uniform_int(3, 2), Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(29);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += (rng.discrete(w) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Rng, DiscreteZeroWeightNeverChosen) {
  Rng rng(31);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.discrete(w), 1u);
}

TEST(Rng, DiscreteRejectsAllZero) {
  Rng rng(31);
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(rng.discrete(w), Error);
}

TEST(Rng, SimplexSumsToOne) {
  Rng rng(37);
  for (std::size_t k = 1; k <= 6; ++k) {
    const auto p = rng.simplex(k, 0.01);
    double total = 0.0;
    for (double c : p) {
      EXPECT_GE(c, 0.01);
      total += c;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(parent());
    seen.insert(child());
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Rng, HashNameStableAndSpread) {
  EXPECT_EQ(hash_name("s526"), hash_name("s526"));
  EXPECT_NE(hash_name("s526"), hash_name("s527"));
  EXPECT_NE(hash_name("s526"), hash_name("526s"));
}

}  // namespace
}  // namespace elrr
