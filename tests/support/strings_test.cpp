#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace elrr {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto f = split("a,,b,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "b");
  EXPECT_EQ(f[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto f = split_ws("  G1   = NAND(G2, G3)  ");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "G1");
  EXPECT_EQ(f[1], "=");
  EXPECT_EQ(f[2], "NAND(G2,");
  EXPECT_EQ(f[3], "G3)");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_upper("dff"), "DFF");
  EXPECT_EQ(to_lower("NAND"), "nand");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(74.52, 4), "74.5200");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 4), "abcde");
}

}  // namespace
}  // namespace elrr
