#include "support/stats.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace elrr {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, StderrShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.stderr_mean(), large.stderr_mean());
}

TEST(RelativePercent, MatchesPaperErrMetric) {
  // Table 1, first row: Thlp=0.25, Th=0.239 -> err = 4.6025%.
  EXPECT_NEAR(relative_percent(0.2500, 0.2390), 4.6025, 1e-3);
}

TEST(RelativePercent, ZeroReferenceThrows) {
  EXPECT_THROW(relative_percent(1.0, 0.0), Error);
  EXPECT_EQ(relative_percent(0.0, 0.0), 0.0);
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace elrr
