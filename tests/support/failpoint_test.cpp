/// \file failpoint_test.cpp
/// The fail-point registry's contract: strict spec parsing (every typo
/// throws, naming the knob), deterministic schedules (`once`, `after:N`,
/// seeded `prob:` streams reproduce hit-by-hit), per-site counters, and
/// a disarmed fast path that never fires.

#include "support/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace elrr::failpoint {
namespace {

/// Every test leaves the process disarmed: the registry is process
///-global and other suites in this binary must not inherit a schedule.
class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { reset(); }
};

TEST_F(FailPointTest, DisarmedTripIsANoOp) {
  reset();
  for (int i = 0; i < 100; ++i) trip("milp.solve");
  // Counters are only maintained while armed (fast-path contract).
  EXPECT_EQ(hits("milp.solve"), 0u);
  EXPECT_EQ(fired("milp.solve"), 0u);
}

TEST_F(FailPointTest, OnceFiresExactlyOnce) {
  configure("milp.solve=once");
  EXPECT_THROW(trip("milp.solve"), FailPointError);
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(trip("milp.solve"));
  EXPECT_EQ(hits("milp.solve"), 11u);
  EXPECT_EQ(fired("milp.solve"), 1u);
}

TEST_F(FailPointTest, AfterNPassesNThenFiresOnce) {
  configure("walk.step=after:3");
  for (int i = 0; i < 3; ++i) EXPECT_NO_THROW(trip("walk.step"));
  EXPECT_THROW(trip("walk.step"), FailPointError);
  for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(trip("walk.step"));
  EXPECT_EQ(fired("walk.step"), 1u);
}

TEST_F(FailPointTest, OffIsAnExplicitNoOp) {
  configure("milp.solve=off,fleet.worker=once");
  EXPECT_NO_THROW(trip("milp.solve"));
  EXPECT_THROW(trip("fleet.worker"), FailPointError);
}

TEST_F(FailPointTest, ConfigureResetsCounters) {
  configure("milp.solve=once");
  EXPECT_THROW(trip("milp.solve"), FailPointError);
  configure("milp.solve=once");  // fresh schedule, fresh counters
  EXPECT_EQ(hits("milp.solve"), 0u);
  EXPECT_THROW(trip("milp.solve"), FailPointError);
}

/// The determinism contract: the same prob spec replays the identical
/// hit-by-hit fire/pass sequence -- no wall clock, no global RNG.
TEST_F(FailPointTest, ProbStreamIsReproducibleBitForBit) {
  const auto sample = [](const std::string& spec) {
    configure(spec);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      bool fired_now = false;
      try {
        trip("fleet.worker");
      } catch (const FailPointError&) {
        fired_now = true;
      }
      fires.push_back(fired_now);
    }
    return fires;
  };
  const std::vector<bool> a = sample("fleet.worker=prob:0.25@42");
  const std::vector<bool> b = sample("fleet.worker=prob:0.25@42");
  EXPECT_EQ(a, b);
  const std::size_t fired_count =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired_count, 0u);   // P=.25 over 200 hits: ~50
  EXPECT_LT(fired_count, 200u);
  // A different seed draws a different stream (overwhelmingly likely).
  EXPECT_NE(a, sample("fleet.worker=prob:0.25@43"));
  // Degenerate probabilities behave as constants.
  const std::vector<bool> never = sample("fleet.worker=prob:0@1");
  EXPECT_EQ(std::count(never.begin(), never.end(), true), 0);
  const std::vector<bool> always = sample("fleet.worker=prob:1@1");
  EXPECT_EQ(std::count(always.begin(), always.end(), true), 200);
}

TEST_F(FailPointTest, StallSleepsOnceWithoutThrowing) {
  configure("fleet.worker=stall:10");
  EXPECT_NO_THROW(trip("fleet.worker"));
  EXPECT_NO_THROW(trip("fleet.worker"));
  EXPECT_EQ(fired("fleet.worker"), 1u);
}

TEST_F(FailPointTest, StrictSpecValidation) {
  // Unknown site / malformed mode / duplicates: all throw, all name the
  // knob that carried the spec.
  const std::vector<std::string> bad = {
      "nope=once",
      "milp.solve",
      "milp.solve=",
      "milp.solve=sometimes",
      "milp.solve=after",
      "milp.solve=after:",
      "milp.solve=after:x",
      "milp.solve=prob:2@1",
      "milp.solve=prob:0.5",
      "milp.solve=stall:-1",
      "milp.solve=once,milp.solve=off",
      ",",
  };
  for (const std::string& spec : bad) {
    try {
      configure(spec, "ELRR_FAILPOINTS");
      ADD_FAILURE() << "accepted: " << spec;
    } catch (const InvalidInputError& e) {
      EXPECT_NE(std::string(e.what()).find("ELRR_FAILPOINTS"),
                std::string::npos)
          << spec;
    }
  }
  EXPECT_NO_THROW(configure(""));  // empty spec = disarm
}

TEST_F(FailPointTest, TripOnUnknownSiteIsAnInternalError) {
  configure("milp.solve=once");  // arm so the slow path runs
  EXPECT_THROW(trip("not.a.site"), InternalError);
}

TEST_F(FailPointTest, KnownSitesListTheCompiledInSites) {
  const std::vector<std::string>& sites = known_sites();
  for (const char* site : {"fleet.worker", "fleet.flat", "walk.step",
                           "milp.solve", "svc.manifest", "disk_cache.load",
                           "disk_cache.store"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
}

}  // namespace
}  // namespace elrr::failpoint
