#include "graph/topo.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace elrr::graph {
namespace {

const EdgeFilter kAll = [](EdgeId) { return true; };

TEST(Topo, SimpleChain) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto order = topological_order(g, kAll);
  ASSERT_TRUE(order.has_value());
  auto pos = [&](NodeId v) {
    return std::find(order->begin(), order->end(), v) - order->begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(2));
}

TEST(Topo, CycleDetected) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(topological_order(g, kAll).has_value());
}

TEST(Topo, FilterCutsCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  const EdgeId back = g.add_edge(1, 0);
  const auto order =
      topological_order(g, [&](EdgeId e) { return e != back; });
  EXPECT_TRUE(order.has_value());
}

TEST(LongestPath, MatchesFigure1aCriticalPath) {
  // Figure 1(a) of the paper: F1,F2,F3 with unit delay, f and m with zero
  // delay; the edges m->F1 and the top f->m edge carry EBs (filtered out
  // of the combinational subgraph); cycle time = 3 on path F1,F2,F3,f,m.
  Digraph g(5);  // 0=m 1=F1 2=F2 3=F3 4=f
  const EdgeId m_f1 = g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const EdgeId top = g.add_edge(4, 0);
  g.add_edge(4, 0);  // bottom, combinational
  const std::vector<double> delay{0.0, 1.0, 1.0, 1.0, 0.0};
  const auto res = longest_path(
      g, delay, [&](EdgeId e) { return e != m_f1 && e != top; });
  ASSERT_TRUE(res.is_dag);
  EXPECT_DOUBLE_EQ(res.max_arrival, 3.0);
  // Critical path visits F1, F2, F3 and ends at f or m (both zero delay).
  ASSERT_GE(res.critical_path.size(), 3u);
  EXPECT_EQ(res.critical_path[0], 1u);
}

TEST(LongestPath, IsolatedNodeCountsItsOwnDelay) {
  // Definition 2.2: a single node is a combinational path.
  Digraph g(2);
  const std::vector<double> delay{7.0, 3.0};
  const auto res = longest_path(g, delay, kAll);
  ASSERT_TRUE(res.is_dag);
  EXPECT_DOUBLE_EQ(res.max_arrival, 7.0);
  EXPECT_EQ(res.critical_path, (std::vector<NodeId>{0}));
}

TEST(LongestPath, CyclicSubgraphFlagged) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto res = longest_path(g, {1.0, 1.0}, kAll);
  EXPECT_FALSE(res.is_dag);
}

TEST(LongestPath, MultiEdgeTakesMax) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto res = longest_path(g, {1.0, 5.0, 1.0}, kAll);
  ASSERT_TRUE(res.is_dag);
  EXPECT_DOUBLE_EQ(res.max_arrival, 7.0);  // 0 -> 1 -> 2
  EXPECT_EQ(res.critical_path, (std::vector<NodeId>{0, 1, 2}));
}

}  // namespace
}  // namespace elrr::graph
