#include "graph/cycles.hpp"

#include <gtest/gtest.h>

#include <set>

namespace elrr::graph {
namespace {

TEST(Cycles, NoCyclesInDag) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto res = enumerate_simple_cycles(g);
  EXPECT_TRUE(res.cycles.empty());
  EXPECT_FALSE(res.truncated);
}

TEST(Cycles, SelfLoop) {
  Digraph g(1);
  g.add_edge(0, 0);
  const auto res = enumerate_simple_cycles(g);
  ASSERT_EQ(res.cycles.size(), 1u);
  EXPECT_EQ(res.cycles[0], (std::vector<EdgeId>{0}));
}

TEST(Cycles, TwoNodeCycleWithParallelEdges) {
  Digraph g(2);
  g.add_edge(0, 1);  // e0
  g.add_edge(0, 1);  // e1 parallel
  g.add_edge(1, 0);  // e2
  const auto res = enumerate_simple_cycles(g);
  // Two distinct simple cycles: (e0,e2) and (e1,e2).
  EXPECT_EQ(res.cycles.size(), 2u);
}

TEST(Cycles, CompleteGraphK3) {
  Digraph g(3);
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 0; v < 3; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  // K3 directed: 3 two-cycles + 2 three-cycles.
  const auto res = enumerate_simple_cycles(g);
  EXPECT_EQ(res.cycles.size(), 5u);
}

TEST(Cycles, EveryReportedCycleIsClosedAndSimple) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  const auto res = enumerate_simple_cycles(g);
  EXPECT_EQ(res.cycles.size(), 2u);
  for (const auto& cycle : res.cycles) {
    std::set<NodeId> visited;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const EdgeId cur = cycle[i];
      const EdgeId nxt = cycle[(i + 1) % cycle.size()];
      EXPECT_EQ(g.dst(cur), g.src(nxt));
      EXPECT_TRUE(visited.insert(g.src(cur)).second) << "repeated node";
    }
  }
}

TEST(Cycles, TruncationCap) {
  // 2^k cycle explosion: chain of parallel diamonds closed into a loop.
  Digraph g(7);
  for (NodeId v = 0; v < 6; ++v) {
    g.add_edge(v, v + 1);
    g.add_edge(v, v + 1);
  }
  g.add_edge(6, 0);
  const auto res = enumerate_simple_cycles(g, 10);
  EXPECT_TRUE(res.truncated);
  EXPECT_EQ(res.cycles.size(), 10u);
}

}  // namespace
}  // namespace elrr::graph
