#include "graph/bellman_ford.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace elrr::graph {
namespace {

TEST(BellmanFord, FeasibleSystemSatisfiesAllConstraints) {
  // x1 - x0 <= 3, x2 - x1 <= -2, x0 - x2 <= 0
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const std::vector<std::int64_t> w{3, -2, 0};
  const auto sol = solve_difference_constraints(g, w);
  ASSERT_TRUE(sol.feasible);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(sol.potential[g.dst(e)] - sol.potential[g.src(e)], w[e]);
  }
}

TEST(BellmanFord, NegativeCycleDetectedWithWitness) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const std::vector<std::int64_t> w{1, -2, 0};  // cycle sum = -1
  const auto sol = solve_difference_constraints(g, w);
  ASSERT_FALSE(sol.feasible);
  ASSERT_EQ(sol.negative_cycle.size(), 3u);
  std::int64_t total = 0;
  for (EdgeId e : sol.negative_cycle) total += w[e];
  EXPECT_LT(total, 0);
  // Witness must be a closed walk.
  for (std::size_t i = 0; i < sol.negative_cycle.size(); ++i) {
    const EdgeId cur = sol.negative_cycle[i];
    const EdgeId nxt = sol.negative_cycle[(i + 1) % sol.negative_cycle.size()];
    EXPECT_EQ(g.dst(cur), g.src(nxt));
  }
}

TEST(BellmanFord, EmptyGraph) {
  Digraph g;
  EXPECT_TRUE(solve_difference_constraints(g, {}).feasible);
}

TEST(NonpositiveCycle, ZeroSumCycleIsCaught) {
  // Liveness violations include zero-token cycles, which plain negative
  // cycle detection would miss.
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_TRUE(has_nonpositive_cycle(g, {0, 0}));
  EXPECT_TRUE(has_nonpositive_cycle(g, {1, -1}));
  EXPECT_FALSE(has_nonpositive_cycle(g, {1, 0}));
}

TEST(NonpositiveCycle, WitnessReturned) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 2);  // self loop with positive weight
  std::vector<EdgeId> witness;
  ASSERT_TRUE(has_nonpositive_cycle(g, {0, 0, 5}, &witness));
  std::int64_t total = 0;
  for (EdgeId e : witness) total += (e == 2 ? 5 : 0);
  EXPECT_LE(total, 0);
}

TEST(NonpositiveCycle, AcyclicGraphNeverFlags) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(has_nonpositive_cycle(g, {-5, -5}));
}

// Property: feasibility from Bellman-Ford matches a brute-force check on
// random small graphs (via exhaustive cycle enumeration in cycles_test, we
// keep an independent sanity check here: potentials certify feasibility,
// witnesses certify infeasibility -- one of the two must hold).
class BfRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BfRandomTest, CertificateAlwaysProduced) {
  elrr::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  Digraph g(n);
  std::vector<std::int64_t> w;
  const std::size_t e_count = static_cast<std::size_t>(rng.uniform_int(1, 20));
  for (std::size_t k = 0; k < e_count; ++k) {
    g.add_edge(static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
               static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    w.push_back(rng.uniform_int(-3, 5));
  }
  const auto sol = solve_difference_constraints(g, w);
  if (sol.feasible) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_LE(sol.potential[g.dst(e)] - sol.potential[g.src(e)], w[e]);
    }
  } else {
    std::int64_t total = 0;
    for (EdgeId e : sol.negative_cycle) total += w[e];
    EXPECT_LT(total, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfRandomTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace elrr::graph
