#include "graph/dot.hpp"

#include <gtest/gtest.h>

namespace elrr::graph {
namespace {

TEST(Dot, BasicStructure) {
  Digraph g(2);
  g.add_edge(0, 1);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph G {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Dot, LabelsAndAttrs) {
  Digraph g(2);
  g.add_edge(0, 1);
  DotStyle style;
  style.graph_name = "rrg";
  style.node_label = [](NodeId v) { return v == 0 ? "mux" : "F1"; };
  style.node_attrs = [](NodeId v) {
    return v == 0 ? "shape=trapezium" : "";
  };
  style.edge_label = [](EdgeId) { return "R0=1 \"quoted\""; };
  const std::string dot = to_dot(g, style);
  EXPECT_NE(dot.find("digraph rrg {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"mux\", shape=trapezium"), std::string::npos);
  EXPECT_NE(dot.find("\\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace elrr::graph
