#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace elrr::graph {
namespace {

TEST(Digraph, Empty) {
  Digraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Digraph, AddNodesAndEdges) {
  Digraph g(3);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  const EdgeId e2 = g.add_edge(2, 0);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.src(e0), 0u);
  EXPECT_EQ(g.dst(e0), 1u);
  EXPECT_EQ(g.out_edges(1).size(), 1u);
  EXPECT_EQ(g.in_edges(0).size(), 1u);
  EXPECT_EQ(g.out_edges(2)[0], e2);
  EXPECT_EQ(g.in_edges(2)[0], e1);
}

TEST(Digraph, ParallelEdgesAndSelfLoops) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // parallel edge: RRGs are multigraphs
  g.add_edge(1, 1);  // self loop
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 3u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(Digraph, RejectsOutOfRangeEndpoints) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), elrr::Error);
  EXPECT_THROW(g.add_edge(5, 0), elrr::Error);
}

}  // namespace
}  // namespace elrr::graph
