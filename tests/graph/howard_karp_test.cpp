/// \file howard_karp_test.cpp
/// Howard policy iteration and Karp minimum mean cycle as independent
/// minimum-cycle-ratio oracles, cross-checked against Lawler's
/// parametric search (cycle_ratio.hpp) on hand cases and random graphs.

#include <gtest/gtest.h>

#include "graph/cycle_ratio.hpp"
#include "graph/howard.hpp"
#include "graph/karp.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::graph {
namespace {

TEST(Howard, SingleLoop) {
  Digraph g(1);
  g.add_edge(0, 0);
  const auto r = howard_min_cycle_ratio(g, {3}, {4});
  EXPECT_DOUBLE_EQ(r.ratio, 0.75);
  EXPECT_EQ(r.cycle_cost, 3);
  EXPECT_EQ(r.cycle_time, 4);
  EXPECT_EQ(r.critical_cycle.size(), 1u);
}

TEST(Howard, PicksSmallerOfTwoCycles) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 2);
  g.add_edge(2, 0);
  const auto r = howard_min_cycle_ratio(g, {1, 1, 1, 0}, {1, 1, 1, 2});
  EXPECT_NEAR(r.ratio, 1.0 / 3.0, 1e-12);
}

TEST(Howard, NegativeCostsAllowed) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto r = howard_min_cycle_ratio(g, {3, -2}, {2, 1});
  EXPECT_NEAR(r.ratio, 1.0 / 3.0, 1e-12);
}

TEST(Howard, MultipleSccs) {
  // Two disjoint rings; the second has the smaller ratio.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const auto r = howard_min_cycle_ratio(g, {2, 2, 1, 0}, {1, 1, 2, 2});
  EXPECT_NEAR(r.ratio, 0.25, 1e-12);
  EXPECT_EQ(r.cycle_cost, 1);
  EXPECT_EQ(r.cycle_time, 4);
}

TEST(Howard, RejectsZeroTimeCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(howard_min_cycle_ratio(g, {1, 1}, {0, 0}), elrr::Error);
}

TEST(Howard, RejectsAcyclicGraph) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(howard_min_cycle_ratio(g, {1}, {1}), elrr::Error);
}

TEST(Karp, SingleLoop) {
  Digraph g(1);
  g.add_edge(0, 0);
  const auto r = karp_min_mean_cycle(g, {5});
  EXPECT_DOUBLE_EQ(r.mean, 5.0);
  EXPECT_EQ(r.cycle_length, 1);
}

TEST(Karp, PicksSmallerMean) {
  // Ring 0->1->0 mean 3/2; self-loop at 2... not connected to the ring:
  // separate SCCs both considered.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 2);
  const auto r = karp_min_mean_cycle(g, {1, 2, 1});
  EXPECT_DOUBLE_EQ(r.mean, 1.0);
  EXPECT_EQ(r.cycle_length, 1);
}

TEST(Karp, NegativeCosts) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto r = karp_min_mean_cycle(g, {-3, 1});
  EXPECT_DOUBLE_EQ(r.mean, -1.0);
}

TEST(Karp, RejectsAcyclicGraph) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(karp_min_mean_cycle(g, {1}), elrr::Error);
}

/// Shared random-instance builder: a ring plus chords, possibly plus a
/// detached second component.
struct RandomInstance {
  Digraph g{0};
  std::vector<std::int64_t> cost;
  std::vector<std::int64_t> time;
};

RandomInstance make_instance(std::uint64_t seed, bool unit_time) {
  elrr::Rng rng(seed * 733 + 13);
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 7));
  RandomInstance inst;
  inst.g = Digraph(n);
  const auto add = [&](NodeId u, NodeId v) {
    inst.g.add_edge(u, v);
    inst.cost.push_back(rng.uniform_int(-3, 9));
    inst.time.push_back(unit_time ? 1 : rng.uniform_int(1, 5));
  };
  for (std::size_t v = 0; v < n; ++v) {
    add(static_cast<NodeId>(v), static_cast<NodeId>((v + 1) % n));
  }
  const std::size_t extra = static_cast<std::size_t>(rng.uniform_int(0, 10));
  for (std::size_t k = 0; k < extra; ++k) {
    add(static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
        static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  return inst;
}

class HowardVsLawler : public ::testing::TestWithParam<int> {};

TEST_P(HowardVsLawler, SameRatio) {
  const RandomInstance inst =
      make_instance(static_cast<std::uint64_t>(GetParam()), false);
  const auto lawler = min_cycle_ratio(inst.g, inst.cost, inst.time);
  const auto howard = howard_min_cycle_ratio(inst.g, inst.cost, inst.time);
  // Exact rational agreement.
  EXPECT_EQ(howard.cycle_cost * lawler.cycle_time,
            lawler.cycle_cost * howard.cycle_time)
      << "howard " << howard.cycle_cost << "/" << howard.cycle_time
      << " vs lawler " << lawler.cycle_cost << "/" << lawler.cycle_time;
  // The reported cycle achieves the reported ratio.
  std::int64_t c = 0, t = 0;
  for (EdgeId e : howard.critical_cycle) {
    c += inst.cost[e];
    t += inst.time[e];
  }
  EXPECT_EQ(c, howard.cycle_cost);
  EXPECT_EQ(t, howard.cycle_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HowardVsLawler, ::testing::Range(0, 60));

class KarpVsLawler : public ::testing::TestWithParam<int> {};

TEST_P(KarpVsLawler, SameMeanOnUnitTimes) {
  const RandomInstance inst =
      make_instance(static_cast<std::uint64_t>(GetParam()) + 1000, true);
  const auto lawler = min_cycle_ratio(inst.g, inst.cost, inst.time);
  const auto karp = karp_min_mean_cycle(inst.g, inst.cost);
  EXPECT_EQ(karp.cycle_cost * lawler.cycle_time,
            lawler.cycle_cost * karp.cycle_length);
  std::int64_t c = 0;
  for (EdgeId e : karp.critical_cycle) c += inst.cost[e];
  EXPECT_EQ(c, karp.cycle_cost);
  EXPECT_EQ(static_cast<std::int64_t>(karp.critical_cycle.size()),
            karp.cycle_length);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KarpVsLawler, ::testing::Range(0, 60));

class ThreeOracles : public ::testing::TestWithParam<int> {};

TEST_P(ThreeOracles, AgreeOnUnitTimeInstances) {
  const RandomInstance inst =
      make_instance(static_cast<std::uint64_t>(GetParam()) + 5000, true);
  const auto lawler = min_cycle_ratio(inst.g, inst.cost, inst.time);
  const auto howard = howard_min_cycle_ratio(inst.g, inst.cost, inst.time);
  const auto karp = karp_min_mean_cycle(inst.g, inst.cost);
  EXPECT_NEAR(lawler.ratio, howard.ratio, 1e-12);
  EXPECT_NEAR(lawler.ratio, karp.mean, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeOracles, ::testing::Range(0, 30));

}  // namespace
}  // namespace elrr::graph
