#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.hpp"

namespace elrr::graph {
namespace {

TEST(Scc, SingleNodeNoEdge) {
  Digraph g(1);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_FALSE(is_strongly_connected(g) && g.num_nodes() > 1);
}

TEST(Scc, Cycle) {
  Digraph g(4);
  for (NodeId v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, TwoComponents) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(1, 2);  // bridge, one direction only
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
  // Reverse topological numbering: edge from comp(0) to comp(2) implies
  // comp(0) > comp(2).
  EXPECT_GT(scc.component[0], scc.component[2]);
}

TEST(Scc, DagIsAllSingletons) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 5u);
}

TEST(Scc, LargestSccExtraction) {
  // Big cycle 0-1-2, small cycle 3-4, isolated 5.
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  g.add_edge(2, 3);
  const auto nodes = largest_scc_nodes(g);
  EXPECT_EQ(nodes, (std::vector<NodeId>{0, 1, 2}));

  const auto sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_TRUE(is_strongly_connected(sub.graph));
  for (EdgeId e = 0; e < sub.graph.num_edges(); ++e) {
    const EdgeId pe = sub.edge_to_parent[e];
    EXPECT_EQ(sub.node_to_parent[sub.graph.src(e)], g.src(pe));
    EXPECT_EQ(sub.node_to_parent[sub.graph.dst(e)], g.dst(pe));
  }
}

TEST(Scc, InducedSubgraphRejectsDuplicates) {
  Digraph g(3);
  EXPECT_THROW(induced_subgraph(g, {0, 0}), elrr::Error);
}

// Property: condensation is a DAG -- every edge goes from a higher
// component index to a lower-or-equal one (reverse topological order).
class SccRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SccRandomTest, CondensationIsReverseTopological) {
  elrr::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 30));
  Digraph g(n);
  const std::size_t e_count = static_cast<std::size_t>(rng.uniform_int(0, 80));
  for (std::size_t k = 0; k < e_count; ++k) {
    g.add_edge(static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
               static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  const auto scc = strongly_connected_components(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(scc.component[g.src(e)], scc.component[g.dst(e)]);
  }
  // Every node got a component id below num_components.
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_LT(scc.component[v], scc.num_components);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccRandomTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace elrr::graph
