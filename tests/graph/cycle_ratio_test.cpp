#include "graph/cycle_ratio.hpp"

#include <gtest/gtest.h>

#include "graph/cycles.hpp"
#include "support/rng.hpp"

namespace elrr::graph {
namespace {

TEST(CycleRatio, SingleLoop) {
  Digraph g(1);
  g.add_edge(0, 0);
  const auto r = min_cycle_ratio(g, {3}, {4});
  EXPECT_DOUBLE_EQ(r.ratio, 0.75);
  EXPECT_EQ(r.cycle_cost, 3);
  EXPECT_EQ(r.cycle_time, 4);
}

TEST(CycleRatio, PicksSmallerOfTwoCycles) {
  // Cycle A: 0->1->0 cost 2 time 2 (ratio 1);
  // cycle B: 0->2->0 cost 1 time 3 (ratio 1/3).
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 2);
  g.add_edge(2, 0);
  const auto r = min_cycle_ratio(g, {1, 1, 1, 0}, {1, 1, 1, 2});
  EXPECT_NEAR(r.ratio, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(r.cycle_cost, 1);
  EXPECT_EQ(r.cycle_time, 3);
}

TEST(CycleRatio, NegativeCostsAllowed) {
  // Anti-tokens make token counts negative; cycle sums stay positive for
  // live systems but the machinery must accept negative edge costs.
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto r = min_cycle_ratio(g, {3, -2}, {2, 1});
  EXPECT_NEAR(r.ratio, 1.0 / 3.0, 1e-12);
}

TEST(CycleRatio, Figure2TopAndBottomCycles) {
  // The optimal RC of Figure 2: top cycle has 4 tokens / 4 buffers, bottom
  // cycle has 1 token / 3 buffers (m->F1->F2->F3->f->m with the -2 edge at
  // R=0). Late-evaluation MCR = 1/3.
  Digraph g(5);  // m F1 F2 F3 f
  g.add_edge(0, 1);                    // m->F1   R0=1 R=1
  g.add_edge(1, 2);                    // F1->F2  R0=1 R=1
  g.add_edge(2, 3);                    // F2->F3  R0=1 R=1
  g.add_edge(3, 4);                    // F3->f   R0=0 R=0
  g.add_edge(4, 0);                    // top     R0=1 R=1
  g.add_edge(4, 0);                    // bottom  R0=-2 R=0
  const auto r = min_cycle_ratio(g, {1, 1, 1, 0, 1, -2}, {1, 1, 1, 0, 1, 0});
  EXPECT_NEAR(r.ratio, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(r.cycle_cost, 1);
  EXPECT_EQ(r.cycle_time, 3);
}

TEST(CycleRatio, RejectsZeroTimeCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(min_cycle_ratio(g, {1, 1}, {0, 0}), elrr::Error);
}

TEST(CycleRatio, RejectsAcyclicGraph) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(min_cycle_ratio(g, {1}, {1}), elrr::Error);
}

// Property: matches brute-force over all simple cycles on random graphs.
class McrRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(McrRandomTest, MatchesBruteForce) {
  elrr::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  Digraph g(n);
  std::vector<std::int64_t> cost, time;
  // Guarantee at least one cycle: a ring.
  for (std::size_t v = 0; v < n; ++v) {
    g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>((v + 1) % n));
    cost.push_back(rng.uniform_int(-2, 6));
    time.push_back(rng.uniform_int(1, 4));  // strictly positive: no
                                            // zero-time cycles possible
  }
  const std::size_t extra = static_cast<std::size_t>(rng.uniform_int(0, 8));
  for (std::size_t k = 0; k < extra; ++k) {
    g.add_edge(static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
               static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    cost.push_back(rng.uniform_int(-2, 6));
    time.push_back(rng.uniform_int(1, 4));
  }

  const auto enumeration = enumerate_simple_cycles(g);
  ASSERT_FALSE(enumeration.truncated);
  ASSERT_FALSE(enumeration.cycles.empty());
  double best = 1e18;
  for (const auto& cycle : enumeration.cycles) {
    std::int64_t c = 0, t = 0;
    for (EdgeId e : cycle) {
      c += cost[e];
      t += time[e];
    }
    best = std::min(best, static_cast<double>(c) / static_cast<double>(t));
  }

  const auto r = min_cycle_ratio(g, cost, time);
  EXPECT_NEAR(r.ratio, best, 1e-9);
  // The reported critical cycle achieves the reported ratio.
  std::int64_t c = 0, t = 0;
  for (EdgeId e : r.critical_cycle) {
    c += cost[e];
    t += time[e];
  }
  EXPECT_EQ(c, r.cycle_cost);
  EXPECT_EQ(t, r.cycle_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McrRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace elrr::graph
