/// \file manifest_test.cpp
/// The batch manifest contract: strict JSONL, line-numbered errors.
/// Every malformed shape -- empty lines included -- must throw
/// InvalidInputError naming the offending line, so a CI batch fails at
/// the line instead of silently skipping jobs.

#include "svc/manifest.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/error.hpp"

namespace elrr::svc {
namespace {

/// EXPECT that parsing `text` as line `line` throws and the message
/// carries both the line number and `fragment`.
void expect_line_error(const std::string& text, int line,
                       const std::string& fragment) {
  try {
    parse_manifest_line(text, line);
    FAIL() << "expected InvalidInputError for: " << text;
  } catch (const InvalidInputError& error) {
    const std::string what = error.what();
    const std::string prefix = "manifest line " + std::to_string(line);
    EXPECT_NE(what.find(prefix), std::string::npos) << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

TEST(Manifest, ParsesAllKeys) {
  const ManifestEntry entry = parse_manifest_line(
      R"({"circuit": "s27", "name": "warmup", "mode": "min_cyc", )"
      R"("priority": "low", "seed": 7, "epsilon": 0.05, "timeout": 2.5, )"
      R"("cycles": 4000, "heur": false, "polish": true, "min_cyc_x": 1.5})",
      3);
  EXPECT_EQ(entry.line, 3);
  EXPECT_EQ(entry.circuit, "s27");
  EXPECT_EQ(entry.name, "warmup");
  EXPECT_EQ(entry.mode, JobMode::kMinCyc);
  EXPECT_EQ(entry.priority, JobPriority::kLow);
  ASSERT_TRUE(entry.seed.has_value());
  EXPECT_EQ(*entry.seed, 7u);
  ASSERT_TRUE(entry.epsilon.has_value());
  EXPECT_DOUBLE_EQ(*entry.epsilon, 0.05);
  ASSERT_TRUE(entry.timeout.has_value());
  EXPECT_DOUBLE_EQ(*entry.timeout, 2.5);
  ASSERT_TRUE(entry.cycles.has_value());
  EXPECT_EQ(*entry.cycles, 4000u);
  ASSERT_TRUE(entry.heur.has_value());
  EXPECT_FALSE(*entry.heur);
  ASSERT_TRUE(entry.polish.has_value());
  EXPECT_TRUE(*entry.polish);
  ASSERT_TRUE(entry.min_cyc_x.has_value());
  EXPECT_DOUBLE_EQ(*entry.min_cyc_x, 1.5);
}

TEST(Manifest, DefaultsAreMinimal) {
  const ManifestEntry entry = parse_manifest_line(R"({"circuit":"s526"})", 1);
  EXPECT_FALSE(entry.mode.has_value());  // materialize applies default_mode
  EXPECT_EQ(entry.priority, JobPriority::kNormal);
  EXPECT_FALSE(entry.seed.has_value());
  EXPECT_TRUE(entry.name.empty());  // materialize defaults it to "s526"
}

TEST(Manifest, ModeAliases) {
  EXPECT_EQ(parse_manifest_line(R"({"circuit":"x","mode":"flow"})", 1).mode,
            JobMode::kMinEffCyc);
  EXPECT_EQ(
      parse_manifest_line(R"({"circuit":"x","mode":"score_only"})", 1).mode,
      JobMode::kScoreOnly);
  EXPECT_EQ(parse_manifest_line(R"({"circuit":"x","mode":"score"})", 1).mode,
            JobMode::kScoreOnly);
}

TEST(Manifest, EmptyAndMalformedLinesThrowWithLineNumbers) {
  expect_line_error("", 4, "empty manifest line");
  expect_line_error("   \t ", 9, "empty manifest line");
  expect_line_error("not json", 2, "expected '{'");
  expect_line_error(R"({"circuit": "s27")", 5, "expected ',' or '}'");
  expect_line_error(R"({"circuit": "s27"} trailing)", 6, "trailing");
  expect_line_error(R"({"circuit": })", 7, "expected a string");
  expect_line_error(R"({circuit: "s27"})", 8, "expected a string");
}

TEST(Manifest, UnknownAndDuplicateKeysThrow) {
  expect_line_error(R"({"circuit": "s27", "bogus": 1})", 2,
                    "unknown key \"bogus\"");
  expect_line_error(R"({"circuit": "s27", "circuit": "s526"})", 3,
                    "duplicate key \"circuit\"");
}

TEST(Manifest, ValueValidation) {
  expect_line_error(R"({"circuit":"x","mode":"warp"})", 1, "unknown mode");
  expect_line_error(R"({"circuit":"x","priority":"urgent"})", 1,
                    "unknown priority");
  expect_line_error(R"({"circuit":"x","seed": -1})", 1,
                    "non-negative integer");
  expect_line_error(R"({"circuit":"x","seed": 1.5})", 1,
                    "non-negative integer");
  expect_line_error(R"({"circuit":"x","cycles": 0})", 1, "must be >= 1");
  expect_line_error(R"({"circuit":"x","epsilon": 0})", 1, "must be positive");
  expect_line_error(R"({"circuit":"x","timeout": -2})", 1,
                    "must be positive");
  expect_line_error(R"({"circuit":"x","min_cyc_x": 0.5})", 1,
                    "must be >= 1");
  expect_line_error(R"({"circuit":"x","heur": "yes"})", 1,
                    "expected true or false");
  expect_line_error(R"({"circuit":"x","epsilon": "fast"})", 1,
                    "expected a number");
}

TEST(Manifest, RequiresExactlyOneSource) {
  expect_line_error(R"({"name": "nothing"})", 1, "exactly one");
  expect_line_error(R"({"circuit": "s27", "input": "x.rrg"})", 1,
                    "exactly one");
}

TEST(Manifest, WholeManifestReportsTheOffendingLine) {
  const std::string text =
      "{\"circuit\": \"s27\"}\n"
      "{\"circuit\": \"s526\"}\n"
      "oops\n";
  try {
    parse_manifest(text);
    FAIL() << "expected InvalidInputError";
  } catch (const InvalidInputError& error) {
    EXPECT_NE(std::string(error.what()).find("manifest line 3"),
              std::string::npos)
        << error.what();
  }
}

TEST(Manifest, BlankInteriorLineIsAnError) {
  const std::string text =
      "{\"circuit\": \"s27\"}\n"
      "\n"
      "{\"circuit\": \"s526\"}\n";
  try {
    parse_manifest(text);
    FAIL() << "expected InvalidInputError";
  } catch (const InvalidInputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("manifest line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("empty manifest line"), std::string::npos) << what;
  }
}

TEST(Manifest, TrailingNewlineIsNotAJob) {
  const std::vector<ManifestEntry> entries =
      parse_manifest("{\"circuit\": \"s27\"}\n{\"circuit\": \"s420\"}\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].circuit, "s27");
  EXPECT_EQ(entries[0].line, 1);
  EXPECT_EQ(entries[1].circuit, "s420");
  EXPECT_EQ(entries[1].line, 2);
}

TEST(Manifest, MaterializeGeneratesTheCircuit) {
  flow::FlowOptions base;
  base.seed = 2;
  base.sim_cycles = 1234;
  const ManifestEntry entry =
      parse_manifest_line(R"({"circuit": "s27", "cycles": 999})", 1);
  const JobSpec spec = materialize(entry, base);
  EXPECT_EQ(spec.name, "s27");
  EXPECT_GT(spec.rrg.num_nodes(), 0u);
  EXPECT_EQ(spec.flow.sim_cycles, 999u);   // per-line override
  EXPECT_EQ(spec.flow.seed, 2u);           // inherited from base
  EXPECT_FALSE(spec.flow.heuristic_only);  // s27 is under the exact ceiling
}

TEST(Manifest, MaterializeUnknownCircuitThrows) {
  const ManifestEntry entry =
      parse_manifest_line(R"({"circuit": "s9999"})", 1);
  EXPECT_THROW(materialize(entry, flow::FlowOptions{}), Error);
}

TEST(Manifest, DeadlineAndRetriesKeys) {
  const ManifestEntry entry = parse_manifest_line(
      R"({"circuit": "s27", "deadline": 2.5, "retries": 0})", 1);
  ASSERT_TRUE(entry.deadline.has_value());
  EXPECT_EQ(*entry.deadline, 2.5);
  ASSERT_TRUE(entry.retries.has_value());
  EXPECT_EQ(*entry.retries, 0u);

  const JobSpec spec = materialize(entry, flow::FlowOptions{});
  ASSERT_TRUE(spec.deadline_s.has_value());
  EXPECT_EQ(*spec.deadline_s, 2.5);
  ASSERT_TRUE(spec.retries.has_value());
  EXPECT_EQ(*spec.retries, 0u);

  // Unset keys leave the scheduler defaults in charge.
  const JobSpec plain = materialize(
      parse_manifest_line(R"({"circuit": "s27"})", 1), flow::FlowOptions{});
  EXPECT_FALSE(plain.deadline_s.has_value());
  EXPECT_FALSE(plain.retries.has_value());

  // Strict validation, with the line number.
  EXPECT_THROW(
      parse_manifest_line(R"({"circuit": "s27", "deadline": 0})", 3),
      InvalidInputError);
  EXPECT_THROW(
      parse_manifest_line(R"({"circuit": "s27", "retries": -1})", 3),
      InvalidInputError);
  EXPECT_THROW(
      parse_manifest_line(R"({"circuit": "s27", "retries": 1.5})", 3),
      InvalidInputError);
}

}  // namespace
}  // namespace elrr::svc
