/// \file scheduler_test.cpp
/// The multi-circuit optimization service's contract:
///  * determinism -- every job's result is bit-exact vs a standalone
///    flow run of the same (circuit, options, mode), at any worker
///    count and any submission order (the shared fleet and cross-job
///    caches may change *wall clock*, never a number);
///  * fair-share priority dispatch (weighted round-robin 4/2/1, FIFO
///    within a class);
///  * per-job cancellation -- queued jobs dequeue immediately, running
///    walks stop at a step boundary, and the shared fleet stays fully
///    usable for the next job;
///  * the cross-job result cache -- duplicate jobs in one batch are
///    served from the first completion, bit-identically;
///  * failure isolation -- a throwing job reports kFailed and the
///    scheduler keeps serving.
///
/// Test circuits are the smallest Table-2 structures (s208/s420/s838:
/// 9 edges each, distinct name-hashed structures), so every MILP solves
/// to proven optimality instantly and
/// walks are deterministic
/// run to run -- the precondition for comparing results bit-exactly.
/// (Larger circuits like s27 hit MILP budgets: minutes of wall clock and
/// incumbent-dependent results -- wrong for a bit-exactness suite.)

#include "svc/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench89/generator.hpp"
#include "core/opt.hpp"
#include "flow/circuit_flow.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace elrr::svc {
namespace {

flow::FlowOptions fast_flow() {
  flow::FlowOptions options;
  options.seed = 1;
  options.epsilon = 0.05;
  options.milp_timeout_s = 30.0;  // never reached at these sizes
  options.sim_cycles = 2000;
  options.use_heuristic = false;  // pure walk: fewer LPs, same contract
  options.max_simulated_points = 4;
  return options;
}

Rrg circuit(const std::string& name, std::uint64_t seed = 1) {
  return bench89::make_table2_rrg(bench89::spec_by_name(name), seed);
}

JobSpec flow_job(const std::string& name, JobPriority priority =
                                              JobPriority::kNormal) {
  JobSpec spec;
  spec.name = name;
  spec.rrg = circuit(name);
  spec.flow = fast_flow();
  spec.mode = JobMode::kMinEffCyc;
  spec.priority = priority;
  return spec;
}

JobSpec score_job(const std::string& name, std::uint64_t seed,
                  JobPriority priority = JobPriority::kNormal) {
  JobSpec spec;
  spec.name = name;
  spec.rrg = circuit(name, seed);
  spec.flow = fast_flow();
  spec.mode = JobMode::kScoreOnly;
  spec.priority = priority;
  return spec;
}

void expect_same_circuit_result(const flow::CircuitResult& a,
                                const flow::CircuitResult& b,
                                const std::string& label) {
  EXPECT_EQ(a.xi_star, b.xi_star) << label;
  EXPECT_EQ(a.xi_nee, b.xi_nee) << label;
  EXPECT_EQ(a.xi_lp_min, b.xi_lp_min) << label;
  EXPECT_EQ(a.xi_sim_min, b.xi_sim_min) << label;
  ASSERT_EQ(a.candidates.size(), b.candidates.size()) << label;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].tau, b.candidates[i].tau)
        << label << " row " << i;
    EXPECT_EQ(a.candidates[i].theta_lp, b.candidates[i].theta_lp)
        << label << " row " << i;
    EXPECT_EQ(a.candidates[i].theta_sim, b.candidates[i].theta_sim)
        << label << " row " << i;
    EXPECT_EQ(a.candidates[i].xi_sim, b.candidates[i].xi_sim)
        << label << " row " << i;
  }
}

/// The acceptance gate: per-job frontier and thetas bit-exact vs a
/// standalone flow::Engine-backed run, at worker counts 1/2/4 and with
/// the submission order shuffled.
TEST(Scheduler, BitExactVsStandaloneAtAnyWorkerCountAndOrder) {
  const std::vector<std::string> names = {"s838", "s208", "s420"};
  std::vector<flow::CircuitResult> oracle;
  for (const std::string& name : names) {
    oracle.push_back(flow::run_flow(name, circuit(name), fast_flow()));
  }

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    for (const bool reversed : {false, true}) {
      SchedulerOptions sopt;
      sopt.workers = workers;
      sopt.sim_threads = workers;  // exercise a wider shared fleet too
      sopt.start_paused = true;
      Scheduler scheduler(sopt);
      std::vector<std::size_t> order(names.size());
      for (std::size_t i = 0; i < names.size(); ++i) order[i] = i;
      if (reversed) std::reverse(order.begin(), order.end());
      std::vector<JobId> ids(names.size());
      for (const std::size_t i : order) {
        ids[i] = scheduler.submit(flow_job(names[i]));
      }
      scheduler.resume();
      for (std::size_t i = 0; i < names.size(); ++i) {
        const JobResult result = scheduler.wait(ids[i]);
        const std::string label = names[i] + " workers " +
                                  std::to_string(workers) +
                                  (reversed ? " reversed" : "");
        EXPECT_EQ(result.state, JobState::kDone) << label << " " << result.error;
        EXPECT_FALSE(result.stats.job_cache_hit) << label;
        expect_same_circuit_result(result.circuit, oracle[i], label);
      }
    }
  }
}

/// Score-only and MIN_CYC jobs reproduce their direct-library oracles
/// bit-exactly through the shared fleet.
TEST(Scheduler, ScoreOnlyAndMinCycModesMatchDirectCalls) {
  const Rrg rrg = circuit("s208");
  const flow::FlowOptions options = fast_flow();

  Scheduler scheduler{SchedulerOptions{}};
  JobSpec score = score_job("s208", 1);
  const JobId score_id = scheduler.submit(std::move(score));

  JobSpec mincyc;
  mincyc.name = "s208-mincyc";
  mincyc.rrg = rrg;
  mincyc.flow = options;
  mincyc.mode = JobMode::kMinCyc;
  mincyc.min_cyc_x = 1.0;
  const JobId mincyc_id = scheduler.submit(std::move(mincyc));

  const JobResult scored = scheduler.wait(score_id);
  ASSERT_EQ(scored.state, JobState::kDone) << scored.error;
  const sim::SimReport solo =
      sim::simulate_throughput(rrg, flow::scoring_options(options));
  EXPECT_EQ(scored.theta_sim, solo.theta);
  EXPECT_EQ(scored.stats.sim_jobs, 1u);
  EXPECT_GT(scored.tau, 0.0);
  EXPECT_EQ(scored.xi_sim, scored.tau / scored.theta_sim);

  const JobResult optimized = scheduler.wait(mincyc_id);
  ASSERT_EQ(optimized.state, JobState::kDone) << optimized.error;
  OptOptions opt;
  opt.epsilon = options.epsilon;
  opt.milp.time_limit_s = options.milp_timeout_s;
  const RcSolveResult solve = min_cyc(rrg, 1.0, opt);
  ASSERT_TRUE(solve.feasible);
  const Rrg tuned = apply_config(rrg, solve.config);
  const sim::SimReport tuned_solo =
      sim::simulate_throughput(tuned, flow::scoring_options(options));
  EXPECT_EQ(optimized.theta_sim, tuned_solo.theta);
  EXPECT_LE(optimized.tau, scored.tau);  // MIN_CYC can only improve tau
}

/// The anytime portfolio: the heuristic leg's answer is published in
/// the stats (bit-identical to a direct heuristic-only run), and the
/// exact leg supersedes it -- the final result is bit-identical to a
/// plain kMinEffCyc job of the same spec.
TEST(Scheduler, PortfolioPublishesAnytimeAndSupersedesWithExact) {
  const Rrg rrg = circuit("s208");
  const flow::FlowOptions options = fast_flow();
  const flow::CircuitResult exact_oracle =
      flow::run_flow("s208", rrg, options);
  flow::FlowOptions heuristic_options = options;
  heuristic_options.heuristic_only = true;
  const flow::CircuitResult anytime_oracle =
      flow::run_flow("s208", rrg, heuristic_options);

  Scheduler scheduler{SchedulerOptions{}};
  JobSpec spec = flow_job("s208");
  spec.mode = JobMode::kPortfolio;
  const JobResult result = scheduler.wait(scheduler.submit(std::move(spec)));
  ASSERT_EQ(result.state, JobState::kDone) << result.error;
  EXPECT_FALSE(result.degraded);
  expect_same_circuit_result(result.circuit, exact_oracle, "portfolio");
  EXPECT_TRUE(result.stats.anytime_ready);
  EXPECT_EQ(result.stats.anytime_xi, anytime_oracle.xi_sim_min);
  EXPECT_GT(result.stats.anytime_seconds, 0.0);
  // Both legs' work is accounted.
  EXPECT_GE(result.stats.sim_jobs,
            anytime_oracle.sim_jobs + exact_oracle.sim_jobs);
}

/// A portfolio whose deadline expires during the exact leg completes
/// with the heuristic leg's answer -- flagged degraded (so it is never
/// cached), bit-identical to a direct heuristic-only run, with the
/// anytime stats still published.
TEST(Scheduler, PortfolioDeadlineKeepsTheAnytimeAnswer) {
  const Rrg rrg = circuit("s420");
  flow::FlowOptions heuristic_options = fast_flow();
  heuristic_options.heuristic_only = true;
  const flow::CircuitResult anytime_oracle =
      flow::run_flow("s420", rrg, heuristic_options);

  SchedulerOptions sopt;
  sopt.workers = 1;
  Scheduler scheduler(sopt);
  JobSpec spec = flow_job("s420");
  spec.mode = JobMode::kPortfolio;
  spec.deadline_s = 1e-6;  // expired before the exact leg's first step
  const JobResult result = scheduler.wait(scheduler.submit(spec));
  ASSERT_EQ(result.state, JobState::kDone) << result.error;
  EXPECT_TRUE(result.degraded);
  EXPECT_NE(result.error.find("anytime"), std::string::npos) << result.error;
  expect_same_circuit_result(result.circuit, anytime_oracle,
                             "degraded portfolio");
  EXPECT_TRUE(result.stats.anytime_ready);
  EXPECT_EQ(result.stats.anytime_xi, anytime_oracle.xi_sim_min);

  // Degraded: the twin runs fresh instead of being served the
  // deadline-shaped answer.
  const JobResult twin = scheduler.wait(scheduler.submit(spec));
  ASSERT_EQ(twin.state, JobState::kDone) << twin.error;
  EXPECT_TRUE(twin.degraded);
  EXPECT_EQ(scheduler.stats().job_cache_hits, 0u);
}

/// Weighted round-robin dispatch: with one worker and a paused submit
/// window, completion order is exactly the credit schedule -- 4 high,
/// then a normal, then a low (fair share: low work cannot starve), then
/// the refilled high class again. FIFO within each class.
TEST(Scheduler, PriorityClassesAreFairShared) {
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);

  std::vector<JobId> high, normal, low;
  for (int i = 0; i < 6; ++i) {
    high.push_back(
        scheduler.submit(score_job("s27", 10 + i, JobPriority::kHigh)));
  }
  normal.push_back(
      scheduler.submit(score_job("s27", 20, JobPriority::kNormal)));
  low.push_back(scheduler.submit(score_job("s27", 30, JobPriority::kLow)));
  scheduler.resume();
  (void)scheduler.wait_all();

  const std::vector<JobId> order = scheduler.completion_order();
  const std::vector<JobId> expected = {high[0],   high[1], high[2], high[3],
                                       normal[0], low[0],  high[4], high[5]};
  EXPECT_EQ(order, expected);
}

/// Duplicate jobs in one batch dedup through the cross-job result
/// cache: the repeat is served bit-identically without re-running, and
/// the stats say so.
TEST(Scheduler, DuplicateJobsDedupThroughTheResultCache) {
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);
  const JobId first = scheduler.submit(flow_job("s208"));
  const JobId repeat = scheduler.submit(flow_job("s208"));
  const JobId other = scheduler.submit(flow_job("s420"));
  scheduler.resume();

  const JobResult a = scheduler.wait(first);
  const JobResult b = scheduler.wait(repeat);
  const JobResult c = scheduler.wait(other);
  ASSERT_EQ(a.state, JobState::kDone) << a.error;
  ASSERT_EQ(b.state, JobState::kDone) << b.error;
  ASSERT_EQ(c.state, JobState::kDone) << c.error;
  EXPECT_FALSE(a.stats.job_cache_hit);
  EXPECT_TRUE(b.stats.job_cache_hit);
  EXPECT_FALSE(c.stats.job_cache_hit);
  expect_same_circuit_result(b.circuit, a.circuit, "cached repeat");
  EXPECT_EQ(scheduler.stats().job_cache_hits, 1u);

  // Changing any result-affecting option is a different job identity.
  JobSpec tweaked = flow_job("s208");
  tweaked.flow.seed = 2;
  tweaked.rrg = circuit("s208", 2);
  const JobResult d = scheduler.wait(scheduler.submit(std::move(tweaked)));
  EXPECT_FALSE(d.stats.job_cache_hit);

  // So is changing only a node delay: the simulation-level canonical
  // key ignores delays (the simulator never reads them) but tau and
  // every xi depend on them -- the job key must not collide.
  JobSpec slower = flow_job("s208");
  slower.rrg.set_delay(0, slower.rrg.delay(0) + 1000.0);  // dominates tau
  const JobResult e = scheduler.wait(scheduler.submit(std::move(slower)));
  ASSERT_EQ(e.state, JobState::kDone) << e.error;
  EXPECT_FALSE(e.stats.job_cache_hit);
  EXPECT_NE(e.circuit.xi_star, a.circuit.xi_star);
}

/// Concurrent duplicates: with two workers both copies dispatch before
/// either finishes, and the dispatch-time cache reservation makes the
/// second wait for -- and reuse -- the first instead of re-walking.
TEST(Scheduler, ConcurrentDuplicateJobsRunOnce) {
  SchedulerOptions sopt;
  sopt.workers = 2;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);
  const JobId first = scheduler.submit(flow_job("s208"));
  const JobId second = scheduler.submit(flow_job("s208"));
  scheduler.resume();
  const JobResult a = scheduler.wait(first);
  const JobResult b = scheduler.wait(second);
  ASSERT_EQ(a.state, JobState::kDone) << a.error;
  ASSERT_EQ(b.state, JobState::kDone) << b.error;
  expect_same_circuit_result(a.circuit, b.circuit, "concurrent twin");
  // Exactly one of the two ran; the other is a cache hit with no work
  // of its own to report.
  EXPECT_EQ(scheduler.stats().job_cache_hits, 1u);
  EXPECT_NE(a.stats.job_cache_hit, b.stats.job_cache_hit);
  const JobStats& hit = a.stats.job_cache_hit ? a.stats : b.stats;
  EXPECT_EQ(hit.sim_jobs, 0u);
  EXPECT_EQ(hit.unique_simulations, 0u);
}

/// Cancelling a queued job dequeues it immediately; cancelling a
/// running walk stops it at a step boundary. Either way the shared
/// fleet stays fully usable: the next job's result is bit-exact.
TEST(Scheduler, CancelLeavesTheFleetReusableForTheNextJob) {
  const flow::CircuitResult oracle =
      flow::run_flow("s838", circuit("s838"), fast_flow());

  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);

  // Queued cancellation: dequeued before dispatch ever sees it.
  const JobId queued = scheduler.submit(flow_job("s420"));
  EXPECT_TRUE(scheduler.cancel(queued));
  const JobResult dequeued = scheduler.wait(queued);
  EXPECT_EQ(dequeued.state, JobState::kCancelled);
  EXPECT_FALSE(scheduler.cancel(queued));  // already terminal

  // Mid-walk cancellation: let the walk emit at least one candidate,
  // then cancel. s420 with the polish walks enough steps that the
  // cancel lands mid-run; if the machine races the job to completion
  // the test still validates the next job's integrity.
  JobSpec slow = flow_job("s420");
  slow.flow.polish = true;
  slow.flow.epsilon = 0.01;
  slow.flow.sim_cycles = 20000;
  const JobId running = scheduler.submit(std::move(slow));
  scheduler.resume();
  for (int i = 0; i < 2000; ++i) {
    const JobSnapshot snapshot = scheduler.status(running);
    if (snapshot.stats.candidates_walked >= 1 ||
        snapshot.state != JobState::kQueued) {
      if (snapshot.stats.candidates_walked >= 1) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(scheduler.cancel(running) ||
              scheduler.status(running).state == JobState::kDone);
  const JobResult cancelled = scheduler.wait(running);
  EXPECT_TRUE(cancelled.state == JobState::kCancelled ||
              cancelled.state == JobState::kDone)
      << to_string(cancelled.state);

  // The fleet serves the next job bit-exactly.
  const JobResult next = scheduler.wait(scheduler.submit(flow_job("s838")));
  ASSERT_EQ(next.state, JobState::kDone) << next.error;
  expect_same_circuit_result(next.circuit, oracle, "post-cancel job");
}

/// A job that throws (here: MIN_CYC on a graph that is not strongly
/// connected) reports kFailed with the error text; the scheduler and
/// fleet keep serving.
TEST(Scheduler, FailedJobReportsErrorAndServiceContinues) {
  Rrg broken;
  const NodeId a = broken.add_node("a", 1.0);
  const NodeId b = broken.add_node("b", 1.0);
  broken.add_edge(a, b, 1, 1);  // no cycle: not strongly connected

  SchedulerOptions sopt;
  sopt.workers = 1;
  Scheduler scheduler(sopt);
  JobSpec bad;
  bad.name = "broken";
  bad.rrg = broken;
  bad.flow = fast_flow();
  bad.mode = JobMode::kMinCyc;
  const JobResult failed = scheduler.wait(scheduler.submit(std::move(bad)));
  EXPECT_EQ(failed.state, JobState::kFailed);
  EXPECT_FALSE(failed.error.empty());

  const JobResult ok = scheduler.wait(scheduler.submit(score_job("s27", 1)));
  EXPECT_EQ(ok.state, JobState::kDone) << ok.error;
  EXPECT_GT(ok.theta_sim, 0.0);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

/// Submitting invalid specs throws eagerly (never enqueues).
TEST(Scheduler, SubmitValidation) {
  Scheduler scheduler{SchedulerOptions{}};
  JobSpec empty;
  empty.flow = fast_flow();
  EXPECT_THROW(scheduler.submit(std::move(empty)), Error);

  JobSpec bad_x = score_job("s27", 1);
  bad_x.min_cyc_x = 0.5;
  EXPECT_THROW(scheduler.submit(std::move(bad_x)), Error);

  EXPECT_THROW(scheduler.status(999), Error);
  EXPECT_THROW(scheduler.wait(999), Error);
  EXPECT_THROW(scheduler.cancel(999), Error);
}

/// Cross-job candidate dedup on the shared fleet: two identical flow
/// jobs with the job-level cache *disabled* still share their
/// simulations through the fleet's canonical-key session cache.
TEST(Scheduler, SharedFleetDedupsCandidatesAcrossJobs) {
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.job_cache = false;  // force both jobs to actually run
  sopt.start_paused = true;
  Scheduler scheduler(sopt);
  const JobId first = scheduler.submit(flow_job("s208"));
  const JobId second = scheduler.submit(flow_job("s208"));
  scheduler.resume();
  const JobResult a = scheduler.wait(first);
  const JobResult b = scheduler.wait(second);
  ASSERT_EQ(a.state, JobState::kDone) << a.error;
  ASSERT_EQ(b.state, JobState::kDone) << b.error;
  expect_same_circuit_result(a.circuit, b.circuit, "fleet-dedup twin");
  EXPECT_FALSE(b.stats.job_cache_hit);
  // The second job's candidates were all fleet cache hits: no fresh
  // simulations.
  EXPECT_GT(a.stats.unique_simulations, 0u);
  EXPECT_EQ(b.stats.unique_simulations, 0u);
  EXPECT_GT(scheduler.fleet().cache_stats().hits, 0u);
}

}  // namespace
}  // namespace elrr::svc
