/// \file disk_cache_test.cpp
/// The crash-safety contract of the persistent result cache: atomic
/// store visibility (a killed-mid-write store leaves only a swept tmp
/// orphan), checksummed reads (truncation and bit flips are misses,
/// never wrong results, never exceptions), byte-cap eviction, and a
/// bit-exact serialize/deserialize roundtrip of JobResult -- the
/// restart-survival property layered under the scheduler's in-memory
/// cross-job cache.

#include "svc/disk_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/failpoint.hpp"

namespace elrr::svc {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory under the build tree's temp space.
class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("elrr_disk_cache_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    failpoint::reset();
    fs::remove_all(dir_);
  }

  DiskCache make(std::size_t cap = 0) {
    DiskCacheOptions options;
    options.dir = dir_.string();
    options.cap_bytes = cap;
    return DiskCache(options);
  }

  std::vector<fs::path> entry_files() const {
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() == ".entry") files.push_back(e.path());
    }
    return files;
  }

  fs::path dir_;
};

JobResult sample_result() {
  JobResult result;
  result.id = 7;
  result.name = "s838";
  result.mode = JobMode::kMinEffCyc;
  result.state = JobState::kDone;
  result.tau = 1.25;
  result.theta_sim = 0.8125;
  result.xi_sim = 1.5384615384615385;
  result.circuit.name = "s838";
  result.circuit.n_simple = 10;
  result.circuit.n_early = 4;
  result.circuit.n_edges = 9;
  result.circuit.xi_star = 2.0;
  result.circuit.xi_nee = 1.75;
  result.circuit.xi_lp_min = 1.6;
  result.circuit.xi_sim_min = 1.5384615384615385;
  result.circuit.improve_percent = 12.087912087912088;
  result.circuit.delta_percent = 4.0;
  result.circuit.all_exact = true;
  result.circuit.seconds = 0.5;
  result.circuit.candidates_walked = 6;
  result.circuit.sim_jobs = 4;
  result.circuit.unique_simulations = 3;
  result.circuit.walk_seconds = 0.25;
  result.circuit.sim_wait_seconds = 0.125;
  for (int i = 0; i < 3; ++i) {
    flow::CandidateRow row;
    row.tau = 1.0 + 0.25 * i;
    row.theta_lp = 0.75 + 0.01 * i;
    row.theta_sim = 0.76 + 0.01 * i;
    row.err_percent = -1.3;
    row.xi_lp = row.tau / row.theta_lp;
    row.xi_sim = row.tau / row.theta_sim;
    row.bubbles = i;
    row.exact = i != 1;
    result.circuit.candidates.push_back(row);
  }
  return result;
}

void expect_same_result(const JobResult& a, const JobResult& b) {
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.tau, b.tau);
  EXPECT_EQ(a.theta_sim, b.theta_sim);
  EXPECT_EQ(a.xi_sim, b.xi_sim);
  EXPECT_EQ(a.circuit.name, b.circuit.name);
  EXPECT_EQ(a.circuit.n_simple, b.circuit.n_simple);
  EXPECT_EQ(a.circuit.n_early, b.circuit.n_early);
  EXPECT_EQ(a.circuit.n_edges, b.circuit.n_edges);
  EXPECT_EQ(a.circuit.xi_star, b.circuit.xi_star);
  EXPECT_EQ(a.circuit.xi_nee, b.circuit.xi_nee);
  EXPECT_EQ(a.circuit.xi_lp_min, b.circuit.xi_lp_min);
  EXPECT_EQ(a.circuit.xi_sim_min, b.circuit.xi_sim_min);
  EXPECT_EQ(a.circuit.improve_percent, b.circuit.improve_percent);
  EXPECT_EQ(a.circuit.delta_percent, b.circuit.delta_percent);
  EXPECT_EQ(a.circuit.all_exact, b.circuit.all_exact);
  ASSERT_EQ(a.circuit.candidates.size(), b.circuit.candidates.size());
  for (std::size_t i = 0; i < a.circuit.candidates.size(); ++i) {
    const flow::CandidateRow& ra = a.circuit.candidates[i];
    const flow::CandidateRow& rb = b.circuit.candidates[i];
    EXPECT_EQ(ra.tau, rb.tau) << i;
    EXPECT_EQ(ra.theta_lp, rb.theta_lp) << i;
    EXPECT_EQ(ra.theta_sim, rb.theta_sim) << i;
    EXPECT_EQ(ra.err_percent, rb.err_percent) << i;
    EXPECT_EQ(ra.xi_lp, rb.xi_lp) << i;
    EXPECT_EQ(ra.xi_sim, rb.xi_sim) << i;
    EXPECT_EQ(ra.bubbles, rb.bubbles) << i;
    EXPECT_EQ(ra.exact, rb.exact) << i;
  }
}

TEST_F(DiskCacheTest, SerializeRoundtripIsBitExact) {
  const JobResult original = sample_result();
  const std::string payload = serialize_job_result(original);
  const std::optional<JobResult> restored = deserialize_job_result(payload);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->state, JobState::kDone);
  expect_same_result(original, *restored);
  // Serialization is canonical: the roundtrip re-serializes identically.
  EXPECT_EQ(serialize_job_result(*restored), payload);
}

TEST_F(DiskCacheTest, DeserializeRejectsMalformedPayloads) {
  const std::string payload = serialize_job_result(sample_result());
  EXPECT_FALSE(deserialize_job_result("").has_value());
  EXPECT_FALSE(
      deserialize_job_result(payload.substr(0, payload.size() / 2))
          .has_value());
  EXPECT_FALSE(deserialize_job_result(payload + "x").has_value());
  std::string wrong_version = payload;
  wrong_version[0] = static_cast<char>(wrong_version[0] + 1);
  EXPECT_FALSE(deserialize_job_result(wrong_version).has_value());
}

TEST_F(DiskCacheTest, StoreThenLoadAcrossRestarts) {
  const std::string payload = serialize_job_result(sample_result());
  {
    DiskCache cache = make();
    EXPECT_FALSE(cache.load("key-1").has_value());
    cache.store("key-1", payload);
    const auto hit = cache.load("key-1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, payload);
    const DiskCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
  }
  // A new instance over the same directory -- a process restart -- sees
  // the identical bytes.
  DiskCache reopened = make();
  EXPECT_EQ(reopened.stats().entries, 1u);
  const auto hit = reopened.load("key-1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
}

TEST_F(DiskCacheTest, TruncatedEntryIsAMissAndIsUnlinked) {
  DiskCache cache = make();
  cache.store("key-t", serialize_job_result(sample_result()));
  const std::vector<fs::path> files = entry_files();
  ASSERT_EQ(files.size(), 1u);
  // Torn write: keep the first half of the entry file.
  std::string bytes;
  {
    std::ifstream in(files[0], std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(cache.load("key-t").has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_TRUE(entry_files().empty());  // recomputed next time, not retried
}

TEST_F(DiskCacheTest, BitFlippedEntryIsAMissNeverAWrongResult) {
  DiskCache cache = make();
  const std::string payload = serialize_job_result(sample_result());
  cache.store("key-f", payload);
  const std::vector<fs::path> files = entry_files();
  ASSERT_EQ(files.size(), 1u);
  std::string bytes;
  {
    std::ifstream in(files[0], std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Flip one bit in the middle of the payload region.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(cache.load("key-f").has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

/// The SIGKILL-mid-store model: the `disk_cache.store` fail point fires
/// after the tmp file is written, before the atomic rename. No entry
/// becomes visible, and the next construction sweeps the orphan.
TEST_F(DiskCacheTest, KilledMidStoreLeavesNoVisibleEntry) {
  const std::string payload = serialize_job_result(sample_result());
  {
    DiskCache cache = make();
    failpoint::configure("disk_cache.store=once");
    cache.store("key-k", payload);
    failpoint::reset();
    EXPECT_EQ(cache.stats().store_errors, 1u);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_FALSE(cache.load("key-k").has_value());
    EXPECT_TRUE(entry_files().empty());
  }
  // The torn tmp file exists until a restart sweeps it.
  std::size_t tmp_count = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    tmp_count += e.path().extension() == ".tmp" ? 1 : 0;
  }
  EXPECT_EQ(tmp_count, 1u);
  DiskCache reopened = make();
  for (const auto& e : fs::directory_iterator(dir_)) {
    EXPECT_NE(e.path().extension(), ".tmp") << e.path();
  }
  // And the store works once the fault is gone.
  reopened.store("key-k", payload);
  EXPECT_TRUE(reopened.load("key-k").has_value());
}

TEST_F(DiskCacheTest, LoadFaultIsAContainedMiss) {
  DiskCache cache = make();
  cache.store("key-l", serialize_job_result(sample_result()));
  failpoint::configure("disk_cache.load=once");
  EXPECT_FALSE(cache.load("key-l").has_value());
  failpoint::reset();
  EXPECT_TRUE(cache.load("key-l").has_value());  // entry survived the fault
}

TEST_F(DiskCacheTest, ByteCapEvictsOldestButKeepsNewest) {
  DiskCache cache = make(/*cap=*/1);  // every store exceeds the cap
  const std::string payload = serialize_job_result(sample_result());
  cache.store("key-a", payload);
  cache.store("key-b", payload);
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);  // never evicts below one entry
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_FALSE(cache.load("key-a").has_value());
  EXPECT_TRUE(cache.load("key-b").has_value());
}

TEST_F(DiskCacheTest, UnusableDirectoryThrowsAtConstruction) {
  std::ofstream block(dir_.string() + "_file");
  block << "x";
  block.close();
  DiskCacheOptions options;
  options.dir = dir_.string() + "_file";  // a file, not a directory
  EXPECT_THROW(DiskCache{options}, InvalidInputError);
  fs::remove(dir_.string() + "_file");
}

}  // namespace
}  // namespace elrr::svc
