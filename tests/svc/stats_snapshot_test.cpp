/// \file stats_snapshot_test.cpp
/// ELRR_STATS_SNAPSHOT and the periodic stats publisher:
///  * the knob parses as path:period_ms, splitting at the LAST colon
///    (paths may contain colons) with the period validated strictly in
///    [10, 86400000] -- malformed values throw InvalidInputError naming
///    the variable, never silently disable;
///  * an armed scheduler publishes the snapshot periodically and writes
///    one terminal snapshot at destruction, via atomic tmp+rename (a
///    reader never sees a torn file);
///  * the published document is the `elrr top` contract: snapshot
///    header + queue/fleet gauges + the full nested stats object + the
///    obs summary;
///  * an unwritable snapshot path degrades to a stderr warning -- the
///    observer must never kill the service it observes.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "bench89/generator.hpp"
#include "support/error.hpp"
#include "svc/scheduler.hpp"

namespace elrr::svc {
namespace {

namespace fs = std::filesystem;

class StatsSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("elrr_stats_snapshot_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ::unsetenv("ELRR_STATS_SNAPSHOT");
    fs::remove_all(dir_);
  }

  std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  fs::path dir_;
};

TEST_F(StatsSnapshotTest, UnsetDisablesThePublisher) {
  ::unsetenv("ELRR_STATS_SNAPSHOT");
  const SchedulerOptions options = SchedulerOptions::from_env();
  EXPECT_TRUE(options.snapshot_path.empty());
  EXPECT_EQ(options.snapshot_period_ms, 0u);
}

TEST_F(StatsSnapshotTest, ParsesPathAndPeriodAtTheLastColon) {
  ::setenv("ELRR_STATS_SNAPSHOT", "/tmp/stats.json:250", 1);
  SchedulerOptions options = SchedulerOptions::from_env();
  EXPECT_EQ(options.snapshot_path, "/tmp/stats.json");
  EXPECT_EQ(options.snapshot_period_ms, 250u);

  // The split is at the LAST colon: a path with colons still parses.
  ::setenv("ELRR_STATS_SNAPSHOT", "/tmp/run:2026:snap.json:1000", 1);
  options = SchedulerOptions::from_env();
  EXPECT_EQ(options.snapshot_path, "/tmp/run:2026:snap.json");
  EXPECT_EQ(options.snapshot_period_ms, 1000u);

  // Exact period boundaries are accepted.
  ::setenv("ELRR_STATS_SNAPSHOT", "s.json:10", 1);
  EXPECT_EQ(SchedulerOptions::from_env().snapshot_period_ms, 10u);
  ::setenv("ELRR_STATS_SNAPSHOT", "s.json:86400000", 1);
  EXPECT_EQ(SchedulerOptions::from_env().snapshot_period_ms, 86'400'000u);
}

TEST_F(StatsSnapshotTest, MalformedKnobThrowsStrictly) {
  const char* bad[] = {
      "path-without-period",  // no colon at all
      "path:",                // empty period
      ":50",                  // empty path
      "path:9",               // below the 10 ms floor
      "path:86400001",        // above the one-day cap
      "path:5x0",             // non-digit junk
      "path:-50",             // signs are junk too
  };
  for (const char* value : bad) {
    ::setenv("ELRR_STATS_SNAPSHOT", value, 1);
    EXPECT_THROW(SchedulerOptions::from_env(), InvalidInputError)
        << "accepted: " << value;
  }
}

TEST_F(StatsSnapshotTest, PublishesPeriodicallyWhileRunning) {
  const fs::path snap = dir_ / "stats.json";
  SchedulerOptions options;
  options.workers = 1;
  options.sim_threads = 1;
  options.snapshot_path = snap.string();
  options.snapshot_period_ms = 10;
  Scheduler scheduler(options);
  // No jobs at all: the publisher ticks on its own clock, not on job
  // completions. Poll rather than sleep a fixed amount -- CI boxes stall.
  bool seen = false;
  for (int i = 0; i < 1000 && !seen; ++i) {
    seen = fs::exists(snap);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(seen) << "no periodic snapshot within the window";
  // Atomic publish: the reader never sees the temp file.
  EXPECT_FALSE(fs::exists(snap.string() + ".tmp"));
  const std::string text = slurp(snap);
  EXPECT_NE(text.find("{\"snapshot\": true, \"uptime_s\": "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"queued\": 0"), std::string::npos) << text;
}

TEST_F(StatsSnapshotTest, TerminalSnapshotShowsTheFinalState) {
  const fs::path snap = dir_ / "final.json";
  {
    SchedulerOptions options;
    options.workers = 1;
    options.sim_threads = 1;
    options.snapshot_path = snap.string();
    // A period the test never reaches: the only write is the terminal
    // one the destructor performs after every worker retired.
    options.snapshot_period_ms = 86'400'000;
    Scheduler scheduler(options);

    JobSpec spec;
    spec.name = "s208";
    spec.rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
    spec.mode = JobMode::kScoreOnly;
    spec.flow.seed = 1;
    spec.flow.sim_cycles = 2000;
    const JobResult result = scheduler.wait(scheduler.submit(std::move(spec)));
    ASSERT_EQ(result.state, JobState::kDone);
    EXPECT_FALSE(fs::exists(snap)) << "periodic tick fired unexpectedly";
  }
  // The destructor published the terminal state: the completed job is
  // in the counters and the full `elrr top` contract is present.
  ASSERT_TRUE(fs::exists(snap));
  const std::string text = slurp(snap);
  EXPECT_NE(text.find("{\"snapshot\": true, \"uptime_s\": "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"fleet\": {\"pool\": "), std::string::npos) << text;
  EXPECT_NE(text.find("\"stats\": {\"scheduler\": {\"submitted\": 1, "
                      "\"completed\": 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"milp\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"obs\": {"), std::string::npos) << text;
  EXPECT_NE(text.find("\"dropped_spans\": "), std::string::npos) << text;
  EXPECT_NE(text.find("\"ring_capacity\": "), std::string::npos) << text;
}

TEST_F(StatsSnapshotTest, UnwritablePathWarnsAndTheServiceKeepsRunning) {
  SchedulerOptions options;
  options.workers = 1;
  options.sim_threads = 1;
  options.snapshot_path = "/proc/definitely/not/writable/stats.json";
  options.snapshot_period_ms = 10;
  Scheduler scheduler(options);

  JobSpec spec;
  spec.name = "s208";
  spec.rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  spec.mode = JobMode::kScoreOnly;
  spec.flow.seed = 1;
  spec.flow.sim_cycles = 2000;
  // Give the publisher a few failed ticks, then prove the service is
  // still fully functional; the destructor's terminal write must also
  // swallow the failure.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const JobResult result = scheduler.wait(scheduler.submit(std::move(spec)));
  EXPECT_EQ(result.state, JobState::kDone);
}

}  // namespace
}  // namespace elrr::svc
