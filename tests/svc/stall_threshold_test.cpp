// ELRR_STALL_THRESHOLD: the scheduler's stuck-worker threshold is an
// env knob validated exactly like the other ELRR_* knobs -- malformed or
// out-of-domain values throw InvalidInputError naming the variable
// instead of silently falling back.

#include <cstdlib>

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "svc/scheduler.hpp"

namespace elrr::svc {
namespace {

class StallThresholdTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv("ELRR_STALL_THRESHOLD"); }
};

TEST_F(StallThresholdTest, DefaultsWhenUnset) {
  ::unsetenv("ELRR_STALL_THRESHOLD");
  EXPECT_EQ(SchedulerOptions::from_env().stall_threshold_s, 30.0);
}

TEST_F(StallThresholdTest, ParsesAValidValue) {
  ::setenv("ELRR_STALL_THRESHOLD", "2.5", 1);
  EXPECT_EQ(SchedulerOptions::from_env().stall_threshold_s, 2.5);
}

TEST_F(StallThresholdTest, MalformedValueThrows) {
  ::setenv("ELRR_STALL_THRESHOLD", "abc", 1);
  EXPECT_THROW(SchedulerOptions::from_env(), InvalidInputError);
}

TEST_F(StallThresholdTest, NonPositiveValueThrows) {
  ::setenv("ELRR_STALL_THRESHOLD", "-1", 1);
  EXPECT_THROW(SchedulerOptions::from_env(), InvalidInputError);
  ::setenv("ELRR_STALL_THRESHOLD", "0", 1);
  EXPECT_THROW(SchedulerOptions::from_env(), InvalidInputError);
}

}  // namespace
}  // namespace elrr::svc
