/// \file robustness_test.cpp
/// The failure-containment contract of the scheduler: per-job wall
/// deadlines (cooperative, observed at walk-step and slice boundaries),
/// the transient-vs-permanent error taxonomy with bounded retry,
/// graceful degradation (deadline-shaped walk jobs fall back to the
/// heuristic-only flow, flagged -- never cached), queue admission
/// control, and the persistent disk cache layered under the in-memory
/// cross-job cache.
///
/// Determinism is the spine of every assertion: a retried job is
/// bit-identical to a never-faulted run, a degraded job is bit-identical
/// to a direct heuristic-only run, and injected faults at any worker
/// count / submission order never change a non-faulted job's numbers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench89/generator.hpp"
#include "flow/circuit_flow.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "svc/disk_cache.hpp"
#include "svc/scheduler.hpp"

namespace elrr::svc {
namespace {

namespace fs = std::filesystem;

flow::FlowOptions fast_flow() {
  flow::FlowOptions options;
  options.seed = 1;
  options.epsilon = 0.05;
  options.milp_timeout_s = 30.0;  // never reached at these sizes
  options.sim_cycles = 2000;
  options.use_heuristic = false;
  options.max_simulated_points = 4;
  return options;
}

Rrg circuit(const std::string& name) {
  return bench89::make_table2_rrg(bench89::spec_by_name(name), 1);
}

JobSpec flow_job(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.rrg = circuit(name);
  spec.flow = fast_flow();
  spec.mode = JobMode::kMinEffCyc;
  return spec;
}

void expect_same_circuit_result(const flow::CircuitResult& a,
                                const flow::CircuitResult& b,
                                const std::string& label) {
  EXPECT_EQ(a.xi_star, b.xi_star) << label;
  EXPECT_EQ(a.xi_nee, b.xi_nee) << label;
  EXPECT_EQ(a.xi_lp_min, b.xi_lp_min) << label;
  EXPECT_EQ(a.xi_sim_min, b.xi_sim_min) << label;
  ASSERT_EQ(a.candidates.size(), b.candidates.size()) << label;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].tau, b.candidates[i].tau) << label << " " << i;
    EXPECT_EQ(a.candidates[i].theta_lp, b.candidates[i].theta_lp)
        << label << " " << i;
    EXPECT_EQ(a.candidates[i].theta_sim, b.candidates[i].theta_sim)
        << label << " " << i;
    EXPECT_EQ(a.candidates[i].xi_sim, b.candidates[i].xi_sim)
        << label << " " << i;
  }
}

class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::reset(); }
};

/// A transient fault (injected at the first MILP solve) fails the first
/// attempt; the retry re-runs from scratch and lands bit-identical to a
/// never-faulted oracle.
TEST_F(RobustnessTest, RetryRecoversBitIdenticallyFromTransientFault) {
  const flow::CircuitResult oracle =
      flow::run_flow("s208", circuit("s208"), fast_flow());

  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.retry_max = 2;
  Scheduler scheduler(sopt);
  failpoint::configure("milp.solve=once");
  const JobId id = scheduler.submit(flow_job("s208"));
  const JobResult result = scheduler.wait(id);
  failpoint::reset();

  ASSERT_EQ(result.state, JobState::kDone) << result.error;
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.stats.retries, 1u);
  expect_same_circuit_result(oracle, result.circuit, "retried s208");
  EXPECT_EQ(scheduler.stats().retries, 1u);
  EXPECT_EQ(scheduler.stats().failed, 0u);
}

/// A persistent transient fault exhausts the retry budget and lands
/// kFailed with the injected-fault reason; the scheduler keeps serving.
TEST_F(RobustnessTest, RetryBudgetExhaustionFailsTheJobNotTheService) {
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.retry_max = 2;
  Scheduler scheduler(sopt);
  failpoint::configure("milp.solve=prob:1@7");  // fires on every hit
  const JobId failing = scheduler.submit(flow_job("s208"));
  const JobResult failed = scheduler.wait(failing);
  failpoint::reset();

  EXPECT_EQ(failed.state, JobState::kFailed);
  EXPECT_NE(failed.error.find("injected fault"), std::string::npos)
      << failed.error;
  EXPECT_EQ(failed.stats.retries, 2u);

  // Same scheduler, same fleet: the next job is unaffected.
  const JobResult ok = scheduler.wait(scheduler.submit(flow_job("s420")));
  ASSERT_EQ(ok.state, JobState::kDone) << ok.error;
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

/// JobSpec::retries overrides the scheduler default; zero disables
/// retry entirely.
TEST_F(RobustnessTest, PerJobRetryOverrideZeroMeansOneAttempt) {
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.retry_max = 5;
  Scheduler scheduler(sopt);
  failpoint::configure("milp.solve=once");
  JobSpec spec = flow_job("s208");
  spec.retries = 0;
  const JobResult result = scheduler.wait(scheduler.submit(spec));
  failpoint::reset();
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_EQ(result.stats.retries, 0u);
}

/// Injected fleet-worker faults at any worker count and submission
/// order: every job retries back to bit-exact, because a failed
/// candidate is purged from the fleet's dedup cache and re-simulated
/// fresh.
TEST_F(RobustnessTest, WorkerFaultsAreInvisibleAtAnyWorkerCountAndOrder) {
  const std::vector<std::string> names = {"s838", "s208", "s420"};
  std::vector<flow::CircuitResult> oracle;
  for (const std::string& name : names) {
    oracle.push_back(flow::run_flow(name, circuit(name), fast_flow()));
  }

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    for (const bool reversed : {false, true}) {
      failpoint::configure("fleet.worker=once");
      SchedulerOptions sopt;
      sopt.workers = workers;
      sopt.sim_threads = workers;
      sopt.retry_max = 3;
      sopt.start_paused = true;
      Scheduler scheduler(sopt);
      std::vector<std::size_t> order(names.size());
      for (std::size_t i = 0; i < names.size(); ++i) order[i] = i;
      if (reversed) std::reverse(order.begin(), order.end());
      std::vector<JobId> ids(names.size());
      for (const std::size_t i : order) {
        ids[i] = scheduler.submit(flow_job(names[i]));
      }
      scheduler.resume();
      for (std::size_t i = 0; i < names.size(); ++i) {
        const JobResult result = scheduler.wait(ids[i]);
        const std::string label = names[i] + " workers " +
                                  std::to_string(workers) +
                                  (reversed ? " reversed" : "");
        ASSERT_EQ(result.state, JobState::kDone)
            << label << ": " << result.error;
        expect_same_circuit_result(oracle[i], result.circuit, label);
      }
      failpoint::reset();
    }
  }
}

/// A walk job that blows its wall budget degrades to the heuristic-only
/// flow: kDone, flagged, bit-identical to a *direct* heuristic-only run
/// -- and never enters the result caches.
TEST_F(RobustnessTest, DeadlineDegradesWalkJobToHeuristicBitExactly) {
  flow::FlowOptions heuristic = fast_flow();
  heuristic.heuristic_only = true;
  const flow::CircuitResult oracle =
      flow::run_flow("s838", circuit("s838"), heuristic);

  SchedulerOptions sopt;
  sopt.workers = 1;
  Scheduler scheduler(sopt);
  JobSpec spec = flow_job("s838");
  spec.deadline_s = 1e-6;  // expired before the first walk step
  const JobResult degraded = scheduler.wait(scheduler.submit(spec));
  ASSERT_EQ(degraded.state, JobState::kDone) << degraded.error;
  EXPECT_TRUE(degraded.degraded);
  EXPECT_NE(degraded.error.find("deadline"), std::string::npos)
      << degraded.error;
  expect_same_circuit_result(oracle, degraded.circuit, "degraded s838");
  EXPECT_EQ(scheduler.stats().degraded, 1u);

  // The duplicate is *not* served from the degraded result: it runs
  // fresh (and, sharing the spec's deadline, degrades the same way).
  const JobResult again = scheduler.wait(scheduler.submit(spec));
  ASSERT_EQ(again.state, JobState::kDone) << again.error;
  EXPECT_TRUE(again.degraded);
  EXPECT_EQ(scheduler.stats().job_cache_hits, 0u);
  expect_same_circuit_result(oracle, again.circuit, "degraded twin");
}

/// A stalled fleet worker cannot hold a deadlined job hostage: the
/// bounded wait expires, names the configured stall threshold (the
/// ELRR_STALL_THRESHOLD knob, SchedulerOptions::stall_threshold_s) and
/// the workers busy past it, records the peak in the per-job stats, and
/// the job fails permanently (the deadline covers all attempts -- no
/// retry). The fleet is reusable as soon as the stall clears.
TEST_F(RobustnessTest, StuckWorkerTripsTheDeadlineAndNamesItself) {
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.sim_threads = 1;
  sopt.stall_threshold_s = 0.01;  // the 400ms stall counts as stuck
  Scheduler scheduler(sopt);
  failpoint::configure("fleet.worker=stall:400");
  JobSpec spec;
  spec.name = "s208";
  spec.rrg = circuit("s208");
  spec.flow = fast_flow();
  spec.mode = JobMode::kScoreOnly;
  spec.deadline_s = 0.05;
  const JobResult result = scheduler.wait(scheduler.submit(spec));
  failpoint::reset();
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_NE(result.error.find("deadline expired"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("stall threshold"), std::string::npos)
      << result.error;
  EXPECT_GE(result.stats.stalled_workers, 1u);
  EXPECT_EQ(result.stats.retries, 0u);  // DeadlineExceeded is permanent

  // The stall is bounded; the same scheduler completes the next job.
  JobSpec next = flow_job("s420");
  const JobResult ok = scheduler.wait(scheduler.submit(next));
  ASSERT_EQ(ok.state, JobState::kDone) << ok.error;
}

/// Admission control: past max_queue_depth, submissions terminate
/// kRejected with a reason -- dense ids, wait() returns, stats count.
TEST_F(RobustnessTest, QueueDepthCapRejectsWithReason) {
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.max_queue_depth = 1;
  sopt.start_paused = true;
  Scheduler scheduler(sopt);
  const JobId accepted = scheduler.submit(flow_job("s208"));
  const JobId rejected1 = scheduler.submit(flow_job("s420"));
  const JobId rejected2 = scheduler.submit(flow_job("s838"));
  EXPECT_EQ(accepted, 0u);
  EXPECT_EQ(rejected1, 1u);
  EXPECT_EQ(rejected2, 2u);

  const JobResult r1 = scheduler.wait(rejected1);
  EXPECT_EQ(r1.state, JobState::kRejected);
  EXPECT_NE(r1.error.find("queue depth"), std::string::npos) << r1.error;

  scheduler.resume();
  const JobResult ok = scheduler.wait(accepted);
  ASSERT_EQ(ok.state, JobState::kDone) << ok.error;
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.completed, 1u);

  // Once the queue drains, admission reopens.
  const JobResult later = scheduler.wait(scheduler.submit(flow_job("s420")));
  ASSERT_EQ(later.state, JobState::kDone) << later.error;
}

/// The disk cache layered under the in-memory cache: a restarted
/// scheduler serves the same job bit-identically from disk.
TEST_F(RobustnessTest, DiskCacheSurvivesSchedulerRestartBitExactly) {
  const fs::path dir =
      fs::temp_directory_path() / "elrr_robustness_disk_cache";
  fs::remove_all(dir);
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.disk_cache_dir = dir.string();

  JobResult first;
  {
    Scheduler scheduler(sopt);
    first = scheduler.wait(scheduler.submit(flow_job("s208")));
    ASSERT_EQ(first.state, JobState::kDone) << first.error;
    EXPECT_FALSE(first.stats.disk_cache_hit);
  }
  {
    Scheduler scheduler(sopt);
    const JobResult second =
        scheduler.wait(scheduler.submit(flow_job("s208")));
    ASSERT_EQ(second.state, JobState::kDone) << second.error;
    EXPECT_TRUE(second.stats.disk_cache_hit);
    expect_same_circuit_result(first.circuit, second.circuit, "disk hit");
    EXPECT_EQ(scheduler.stats().disk_cache_hits, 1u);

    // A corrupted entry is recomputed, not trusted: flip a byte in every
    // entry file, resubmit, and the job still lands bit-exact.
    ASSERT_NE(scheduler.disk_cache(), nullptr);
  }
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() != ".entry") continue;
    std::string bytes;
    {
      std::ifstream in(e.path(), std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    std::ofstream out(e.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    Scheduler scheduler(sopt);
    const JobResult recomputed =
        scheduler.wait(scheduler.submit(flow_job("s208")));
    ASSERT_EQ(recomputed.state, JobState::kDone) << recomputed.error;
    EXPECT_FALSE(recomputed.stats.disk_cache_hit);  // corrupt = miss
    expect_same_circuit_result(first.circuit, recomputed.circuit,
                               "recomputed after corruption");
  }
  fs::remove_all(dir);
}

/// Degraded results never reach the persistent cache.
TEST_F(RobustnessTest, DegradedResultsAreNeverPersisted) {
  const fs::path dir =
      fs::temp_directory_path() / "elrr_robustness_no_degraded";
  fs::remove_all(dir);
  SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.disk_cache_dir = dir.string();
  Scheduler scheduler(sopt);
  JobSpec spec = flow_job("s420");
  spec.deadline_s = 1e-6;
  const JobResult degraded = scheduler.wait(scheduler.submit(spec));
  ASSERT_EQ(degraded.state, JobState::kDone) << degraded.error;
  ASSERT_TRUE(degraded.degraded);
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_NE(e.path().extension(), ".entry") << e.path();
  }
  fs::remove_all(dir);
}

/// Every new knob validates through the strict throw-with-knob-name
/// path.
TEST_F(RobustnessTest, EnvKnobsValidateStrictly) {
  struct EnvCase {
    const char* name;
    const char* bad;
  };
  const std::vector<EnvCase> cases = {
      {"ELRR_JOB_DEADLINE", "-1"},
      {"ELRR_JOB_DEADLINE", "soon"},
      {"ELRR_RETRY_MAX", "5000"},
      {"ELRR_RETRY_MAX", "-2"},
      {"ELRR_DISK_CACHE_CAP", "lots"},
      {"ELRR_FAILPOINTS", "milp.solve=often"},
  };
  for (const EnvCase& c : cases) {
    ::setenv(c.name, c.bad, 1);
    try {
      if (std::string(c.name) == "ELRR_FAILPOINTS") {
        failpoint::configure_from_env();
      } else {
        (void)SchedulerOptions::from_env();
      }
      ADD_FAILURE() << c.name << "=" << c.bad << " accepted";
    } catch (const InvalidInputError& e) {
      EXPECT_NE(std::string(e.what()).find(c.name), std::string::npos)
          << c.name << ": " << e.what();
    }
    ::unsetenv(c.name);
  }

  ::setenv("ELRR_JOB_DEADLINE", "2.5", 1);
  ::setenv("ELRR_RETRY_MAX", "3", 1);
  ::setenv("ELRR_DISK_CACHE_CAP", "1048576", 1);
  const SchedulerOptions options = SchedulerOptions::from_env();
  EXPECT_EQ(options.job_deadline_s, 2.5);
  EXPECT_EQ(options.retry_max, 3u);
  EXPECT_EQ(options.disk_cache_cap, 1048576u);
  ::unsetenv("ELRR_JOB_DEADLINE");
  ::unsetenv("ELRR_RETRY_MAX");
  ::unsetenv("ELRR_DISK_CACHE_CAP");
}

}  // namespace
}  // namespace elrr::svc
