#include "core/tgmg.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr {
namespace {

using namespace figures;

// ---------------------------------------------------------------------------
// Procedure 1 on Figure 1(b) must reproduce Figure 3 of the paper.
// ---------------------------------------------------------------------------
TEST(Procedure1, Figure3Structure) {
  const Tgmg tgmg = procedure1(figure1b(0.5));
  // 5 original nodes + 2 aux nodes for the two-input mux m.
  ASSERT_EQ(tgmg.num_nodes(), 7u);
  ASSERT_EQ(tgmg.num_edges(), 8u);

  // Single-input nodes carry their input edge's buffer count as delay:
  // F1 (input m->F1, R=0) -> 0; F2 (input F1->F2, R=1) -> 1;
  // F3 (input F2->F3, R=1) -> 1; f (input F3->f, R=0) -> 0.
  EXPECT_DOUBLE_EQ(tgmg.delay(kF1), 0.0);
  EXPECT_DOUBLE_EQ(tgmg.delay(kF2), 1.0);
  EXPECT_DOUBLE_EQ(tgmg.delay(kF3), 1.0);
  EXPECT_DOUBLE_EQ(tgmg.delay(kF), 0.0);
  // The mux becomes a zero-delay early node.
  EXPECT_DOUBLE_EQ(tgmg.delay(kM), 0.0);
  EXPECT_TRUE(tgmg.is_early(kM));

  // Aux nodes n1 (top, delay 3) and n2 (bottom, delay 1), as in Figure 3.
  const NodeId n1 = 5, n2 = 6;
  EXPECT_DOUBLE_EQ(tgmg.delay(n1), 3.0);
  EXPECT_DOUBLE_EQ(tgmg.delay(n2), 1.0);

  // Tokens: one on edge e3 = (F1 -> F2) ("there is one token on the edge
  // e3"), three on (n1 -> m), zero elsewhere.
  int total_tokens = 0;
  for (EdgeId e = 0; e < tgmg.num_edges(); ++e) total_tokens += tgmg.tokens(e);
  EXPECT_EQ(total_tokens, 4);
  tgmg.validate();
}

TEST(Procedure2, Figure4Structure) {
  const Tgmg refined = procedure2(procedure1(figure1b(0.5)));
  // Figure 4: the 7 nodes of Figure 3 plus s and the two split nodes.
  ASSERT_EQ(refined.num_nodes(), 10u);
  ASSERT_EQ(refined.num_edges(), 13u);
  refined.validate();

  // The early node's self-loop through s: delta(s) = 1 and one token on
  // (m -> s).
  int unit_delay_aux = 0;
  for (NodeId n = 7; n < refined.num_nodes(); ++n) {
    if (refined.delay(n) == 1.0) ++unit_delay_aux;
  }
  EXPECT_EQ(unit_delay_aux, 1);

  // Marking is preserved: total tokens = 4 (original) + 1 (self-loop).
  int total_tokens = 0;
  for (EdgeId e = 0; e < refined.num_edges(); ++e) {
    total_tokens += refined.tokens(e);
  }
  EXPECT_EQ(total_tokens, 5);
}

TEST(Procedure2, NoOpForAllSimpleGraphs) {
  const Tgmg base = procedure1(figure1b(0.5, /*early=*/false));
  const Tgmg refined = procedure2(base);
  EXPECT_EQ(refined.num_nodes(), base.num_nodes());
  EXPECT_EQ(refined.num_edges(), base.num_edges());
}

// ---------------------------------------------------------------------------
// LP throughput bound (eq. (4)/(11)).
// ---------------------------------------------------------------------------
TEST(ThroughputBound, Figure1aIsOne) {
  EXPECT_NEAR(throughput_upper_bound(figure1a(0.5, true)), 1.0, 1e-7);
  EXPECT_NEAR(throughput_upper_bound(figure1a(0.5, false)), 1.0, 1e-7);
}

TEST(ThroughputBound, Figure1bLateIsOneThird) {
  EXPECT_NEAR(throughput_upper_bound(figure1b(0.5, false)), 1.0 / 3.0, 1e-7);
}

TEST(ThroughputBound, Figure1bEarlyBetweenExactAndOne) {
  // Exact (Markov) value is 0.491 at alpha = 0.5 and 0.719 at 0.9; the LP
  // bound must dominate it and both must beat late evaluation (1/3).
  const double b05 = throughput_upper_bound(figure1b(0.5, true));
  const double b09 = throughput_upper_bound(figure1b(0.9, true));
  EXPECT_GE(b05, 0.491 - 1e-6);
  EXPECT_LE(b05, 1.0 + 1e-9);
  EXPECT_GE(b09, 0.719 - 1e-6);
  EXPECT_GE(b09, b05 - 1e-9);  // more early hits -> no worse
}

TEST(ThroughputBound, Figure2DominatesClosedForm) {
  for (double alpha : {0.3, 0.5, 0.7, 0.9}) {
    const double bound = throughput_upper_bound(figure2(alpha));
    EXPECT_GE(bound, figure2_throughput(alpha) - 1e-6) << "alpha " << alpha;
    EXPECT_LE(bound, 1.0 + 1e-9);
  }
}

TEST(ThroughputBound, Figure2LateIsOneThird) {
  EXPECT_NEAR(throughput_upper_bound(figure2(0.9, false)), 1.0 / 3.0, 1e-7);
}

TEST(ThroughputBound, UnboundedForAcyclicTgmg) {
  Tgmg tgmg;
  const NodeId a = tgmg.add_node("a", 1.0);
  const NodeId b = tgmg.add_node("b", 1.0);
  tgmg.add_edge(a, b, 0);
  const auto bound = tgmg_throughput_bound(tgmg);
  EXPECT_FALSE(bound.bounded);
}

// Property: for graphs without early evaluation the LP bound equals the
// exact marked-graph throughput (minimum cycle ratio).
class LateLpVsMcrTest : public ::testing::TestWithParam<int> {};

TEST_P(LateLpVsMcrTest, LpEqualsMinCycleRatio) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2711 + 13);
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("", rng.uniform(0.0, 5.0));
  }
  // Ring for liveness + strong connectivity, then random chords.
  for (std::size_t i = 0; i < n; ++i) {
    const int tokens = static_cast<int>(rng.uniform_int(0, 2));
    const int buffers = tokens + static_cast<int>(rng.uniform_int(0, 2));
    rrg.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 std::max(tokens, static_cast<int>(i == 0)),
                 std::max({buffers, tokens, static_cast<int>(i == 0)}));
  }
  const std::size_t extra = static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t k = 0; k < extra; ++k) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const int tokens = static_cast<int>(rng.uniform_int(u == v ? 1 : 0, 2));
    rrg.add_edge(u, v, tokens, tokens + static_cast<int>(rng.uniform_int(0, 2)));
  }
  if (!rrg.is_live()) GTEST_SKIP() << "random instance not live";

  const double lp = throughput_upper_bound(rrg);
  const double mcr = late_eval_throughput(rrg);
  EXPECT_NEAR(lp, mcr, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LateLpVsMcrTest, ::testing::Range(0, 40));

TEST(Analysis, EvaluateFigure1a) {
  const RcEvaluation eval = evaluate_rrg(figure1a(0.5, false));
  EXPECT_DOUBLE_EQ(eval.tau, 3.0);
  EXPECT_NEAR(eval.theta_lp, 1.0, 1e-7);
  EXPECT_NEAR(eval.xi_lp, 3.0, 1e-6);
}

TEST(Analysis, LateEvalThroughputOfFigures) {
  EXPECT_NEAR(late_eval_throughput(figure1a()), 1.0, 1e-12);
  EXPECT_NEAR(late_eval_throughput(figure1b()), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(late_eval_throughput(figure2(0.9)), 1.0 / 3.0, 1e-12);
}

TEST(Analysis, AcyclicRrgHasUnitThroughput) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 2.0);
  rrg.add_edge(a, b, 0, 1);
  EXPECT_DOUBLE_EQ(late_eval_throughput(rrg), 1.0);
}

TEST(TgmgDot, RendersDelaysAndTokens) {
  const std::string dot = procedure1(figure1b()).to_dot();
  EXPECT_NE(dot.find("d=3.00"), std::string::npos);  // aux node n1
  EXPECT_NE(dot.find("tgmg"), std::string::npos);
}

}  // namespace
}  // namespace elrr
