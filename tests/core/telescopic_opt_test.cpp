/// \file telescopic_opt_test.cpp
/// MIN_CYC / MAX_THR / MIN_EFF_CYC over RRGs with telescopic
/// (variable-latency) nodes: the MILP gains per-node busy throttles and
/// the Pareto walk terminates at the throughput cap instead of 1.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "core/opt.hpp"
#include "core/rrg.hpp"
#include "sim/simulator.hpp"

namespace elrr {
namespace {

using namespace figures;

/// Figure 1(a) with a telescopic F2 (the critical chain's middle stage).
Rrg fig1a_telescopic(double fast_prob, int slow_extra, double alpha = 0.9) {
  Rrg rrg = figure1a(alpha);
  rrg.set_telescopic(kF2, fast_prob, slow_extra);
  return rrg;
}

TEST(TelescopicOpt, MinCycInfeasibleBelowServiceFloor) {
  // x < 1 + service(F2) admits no configuration at all; the verdict is
  // proven (root LP infeasibility), not a budget timeout.
  const Rrg rrg = fig1a_telescopic(0.5, 2);  // service 1 -> cap 1/2
  const RcSolveResult r = min_cyc(rrg, /*x=*/1.5, OptOptions{});
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.exact);
}

TEST(TelescopicOpt, MinCycFeasibleAtTheCap) {
  const Rrg rrg = fig1a_telescopic(0.5, 2);
  const RcSolveResult r = min_cyc(rrg, /*x=*/2.0 + 1e-6, OptOptions{});
  ASSERT_TRUE(r.feasible);
  const RcEvaluation eval = evaluate_config(rrg, r.config);
  EXPECT_NEAR(eval.theta_lp, 0.5, 1e-6);
}

TEST(TelescopicOpt, MaxThrRespectsCap) {
  const Rrg rrg = fig1a_telescopic(0.8, 5);  // cap = 1/2
  const RcSolveResult r = max_thr(rrg, rrg.total_delay(), OptOptions{});
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.objective, 1.0 / throughput_cap(rrg) - 1e-6);
}

TEST(TelescopicOpt, ParetoWalkTerminatesAtCap) {
  const Rrg rrg = fig1a_telescopic(0.5, 1);  // cap = 2/3
  const MinEffCycResult result = min_eff_cyc(rrg, OptOptions{});
  ASSERT_FALSE(result.points.empty());
  for (const ParetoPoint& p : result.points) {
    EXPECT_LE(p.theta_lp, throughput_cap(rrg) + 1e-6);
    std::string why;
    EXPECT_TRUE(validate_config(rrg, p.config, &why)) << why;
  }
  // The best frontier point reaches the cap (the throttle, not the token
  // structure, binds at the high-throughput end here).
  EXPECT_NEAR(result.points.back().theta_lp, throughput_cap(rrg), 1e-6);
}

TEST(TelescopicOpt, IdentityConfigurationAlwaysRecorded) {
  // Even with a zero MILP budget the result can never be worse than the
  // input configuration (the identity RC is recorded unconditionally).
  const Rrg rrg = fig1a_telescopic(0.5, 1);
  OptOptions opt;
  opt.milp.time_limit_s = 1e-3;  // starve every MILP
  const MinEffCycResult result = min_eff_cyc(rrg, opt);
  ASSERT_FALSE(result.points.empty());
  const RcEvaluation identity = evaluate_rrg(rrg);
  EXPECT_LE(result.best().xi_lp, identity.xi_lp + 1e-9);
}

TEST(TelescopicOpt, LpMatchesSimulationOnOptimizedConfig) {
  const Rrg rrg = fig1a_telescopic(0.75, 2, 0.9);
  const MinEffCycResult result = min_eff_cyc(rrg, OptOptions{});
  const Rrg best = apply_config(rrg, result.best().config);
  sim::SimOptions sopt;
  sopt.measure_cycles = 30000;
  const sim::SimResult sim = sim::simulate_throughput(best, sopt);
  // LP is an upper bound; on this small system it is within a few
  // percent of the truth.
  EXPECT_LE(sim.theta, result.best().theta_lp + 0.02);
  EXPECT_GT(sim.theta, 0.75 * result.best().theta_lp);
}

TEST(TelescopicOpt, TelescopicAwareBeatsWorstCaseClocking) {
  // The point of a telescopic unit: clock at the fast delay and pay
  // slow_extra occasionally, instead of clocking at the slow delay every
  // cycle. Here F2's fast path is 1 (vs 3 pessimistic); with p = 0.9 the
  // telescopic-aware optimum has a clearly lower effective cycle time.
  Rrg aware = figure1a(0.9);
  aware.set_telescopic(kF2, 0.9, 2);

  Rrg pessimistic = figure1a(0.9);
  pessimistic.set_delay(kF2, 3.0);

  const MinEffCycResult ra = min_eff_cyc(aware, OptOptions{});
  const MinEffCycResult rp = min_eff_cyc(pessimistic, OptOptions{});
  EXPECT_LT(ra.best().xi_lp, rp.best().xi_lp);
}

TEST(TelescopicOpt, AllSimpleRewriteKeepsTelescopic) {
  // treat_all_simple (the xi_nee baseline) demotes early evaluation but
  // not the physical variable-latency behaviour.
  Rrg rrg = fig1a_telescopic(0.5, 2);
  OptOptions opt;
  opt.treat_all_simple = true;
  const MinEffCycResult result = min_eff_cyc(rrg, opt);
  for (const ParetoPoint& p : result.points) {
    EXPECT_LE(p.theta_lp, throughput_cap(rrg) + 1e-6);
  }
}

TEST(TelescopicOpt, ServiceFloorOnThr5RaisesX) {
  // A plain ring with one telescopic node: every Pareto point's
  // theta_lp stays below the cap, and the xi-best configuration still
  // validates.
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 2.0);
  const NodeId b = rrg.add_node("b", 3.0);
  const NodeId c = rrg.add_node("c", 1.0);
  rrg.add_edge(a, b, 1, 1);
  rrg.add_edge(b, c, 0, 0);
  rrg.add_edge(c, a, 1, 1);
  rrg.set_telescopic(c, 0.5, 3);  // cap = 1 / 2.5
  const MinEffCycResult result = min_eff_cyc(rrg, OptOptions{});
  ASSERT_FALSE(result.points.empty());
  for (const ParetoPoint& p : result.points) {
    EXPECT_LE(p.theta_lp, throughput_cap(rrg) + 1e-6);
    std::string why;
    EXPECT_TRUE(validate_config(rrg, p.config, &why)) << why;
  }
}

}  // namespace
}  // namespace elrr
