#include "core/rrg.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "support/error.hpp"

namespace elrr {
namespace {

using namespace figures;

TEST(Rrg, BuildAndAccessors) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 2.5);
  const NodeId b = rrg.add_node("", 0.0, NodeKind::kEarly);
  EXPECT_EQ(rrg.name(a), "a");
  EXPECT_EQ(rrg.name(b), "n1");
  EXPECT_TRUE(rrg.is_early(b));
  const EdgeId e = rrg.add_edge(a, b, 1, 2, 0.5);
  EXPECT_EQ(rrg.tokens(e), 1);
  EXPECT_EQ(rrg.buffers(e), 2);
  EXPECT_DOUBLE_EQ(rrg.gamma(e), 0.5);
  EXPECT_DOUBLE_EQ(rrg.max_delay(), 2.5);
  EXPECT_DOUBLE_EQ(rrg.total_delay(), 2.5);
}

TEST(Rrg, RejectsNegativeDelay) {
  Rrg rrg;
  EXPECT_THROW(rrg.add_node("x", -1.0), Error);
}

TEST(Rrg, ValidateBufferTokenRelation) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  rrg.add_edge(a, a, 2, 1);  // R < R0
  EXPECT_THROW(rrg.validate(), Error);
}

TEST(Rrg, ValidateEarlyNodeNeedsTwoInputs) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId mux = rrg.add_node("mux", 0.0, NodeKind::kEarly);
  rrg.add_edge(a, mux, 1, 1, 1.0);
  rrg.add_edge(mux, a, 1, 1);
  EXPECT_THROW(rrg.validate(), Error);
}

TEST(Rrg, ValidateGammaSumsToOne) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId mux = rrg.add_node("mux", 0.0, NodeKind::kEarly);
  rrg.add_edge(a, mux, 1, 1, 0.4);
  rrg.add_edge(a, mux, 1, 1, 0.4);  // sums to 0.8
  rrg.add_edge(mux, a, 1, 1);
  EXPECT_THROW(rrg.validate(), Error);
}

TEST(Rrg, ValidateLiveness) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 0, 1);
  rrg.add_edge(b, a, 0, 1);  // cycle with zero tokens: dead
  EXPECT_THROW(rrg.validate(), Error);
  EXPECT_FALSE(rrg.is_live());
  std::vector<EdgeId> dead;
  rrg.is_live(&dead);
  EXPECT_EQ(dead.size(), 2u);
}

TEST(Rrg, AntiTokensAreLegalWhenCyclesStayPositive) {
  const Rrg fig2 = figure2(0.9);
  EXPECT_EQ(fig2.tokens(kBottom), -2);
  EXPECT_NO_THROW(fig2.validate());
}

TEST(CycleTime, Figure1aIsThree) {
  const auto ct = cycle_time(figure1a());
  ASSERT_TRUE(ct.valid);
  EXPECT_DOUBLE_EQ(ct.tau, 3.0);
  // Critical path F1 -> F2 -> F3 (plus zero-delay f, m).
  ASSERT_GE(ct.critical_path.size(), 3u);
  EXPECT_EQ(ct.critical_path[0], kF1);
}

TEST(CycleTime, Figure1bIsOne) {
  const auto ct = cycle_time(figure1b());
  ASSERT_TRUE(ct.valid);
  EXPECT_DOUBLE_EQ(ct.tau, 1.0);
}

TEST(CycleTime, Figure2IsOne) {
  const auto ct = cycle_time(figure2(0.9));
  ASSERT_TRUE(ct.valid);
  EXPECT_DOUBLE_EQ(ct.tau, 1.0);
}

TEST(Retiming, PaperVectorTransformsFigure1aIntoFigure2) {
  // Section 2: r(m) = -2, r(F1) = -2, r(F2) = -1, r(f) = r(F3) = 0.
  const Rrg fig1a = figure1a(0.9);
  std::vector<int> r(5, 0);
  r[kM] = -2;
  r[kF1] = -2;
  r[kF2] = -1;
  const RrConfig config = apply_retiming(fig1a, r);
  const Rrg fig2 = figure2(0.9);
  for (EdgeId e = 0; e < fig1a.num_edges(); ++e) {
    EXPECT_EQ(config.tokens[e], fig2.tokens(e)) << "edge " << e;
    EXPECT_EQ(config.buffers[e], fig2.buffers(e)) << "edge " << e;
  }
  EXPECT_TRUE(validate_config(fig1a, config));
}

TEST(Retiming, GrowBuffersKeepsExistingEbs) {
  const Rrg fig1a = figure1a();
  const std::vector<int> zero(5, 0);
  const RrConfig keep = apply_retiming(fig1a, zero, /*grow_buffers=*/true);
  EXPECT_EQ(keep.buffers, initial_config(fig1a).buffers);
}

TEST(ValidateConfig, RejectsNonRetimingTokenChange) {
  const Rrg fig1a = figure1a();
  RrConfig config = initial_config(fig1a);
  config.tokens[kTop] += 1;  // changes a cycle sum: unreachable
  config.buffers[kTop] += 1;
  std::string why;
  EXPECT_FALSE(validate_config(fig1a, config, &why));
  EXPECT_NE(why.find("not a retiming"), std::string::npos);
}

TEST(ValidateConfig, RejectsDeadResult) {
  // Move the only token off a cycle... not reachable by retiming without
  // breaking liveness: removing all tokens from the bottom cycle.
  const Rrg fig1a = figure1a();
  std::vector<int> r(5, 0);
  r[kF1] = 1;  // R0(m->F1) becomes 0... and R0(F1->F2) becomes -1? No:
  // r moves tokens: m->F1: 1 + r(F1) - r(m) = 2; F1->F2: 0 - 1 = -1.
  const RrConfig config = apply_retiming(fig1a, r);
  // Buffers were set to max(tokens, 0): fine; but bottom cycle token sum
  // is unchanged (retiming preserves it), so this *is* live and valid.
  EXPECT_TRUE(validate_config(fig1a, config));
  // Now force a dead cycle directly.
  RrConfig dead = initial_config(fig1a);
  dead.tokens[kMF1] = 0;
  dead.tokens[kF1F2] = 1;  // shift token into the F1->F2 edge
  dead.buffers[kF1F2] = 1;
  dead.tokens[kBottom] = -1;
  dead.tokens[kTop] = 2;  // keep both f->m cycle-sum changes consistent? No
  std::string why;
  EXPECT_FALSE(validate_config(fig1a, dead, &why));
}

TEST(ApplyConfig, RoundTrip) {
  const Rrg fig1a = figure1a();
  const RrConfig config = initial_config(fig1a);
  const Rrg copy = apply_config(fig1a, config);
  EXPECT_EQ(initial_config(copy).tokens, config.tokens);
  EXPECT_EQ(initial_config(copy).buffers, config.buffers);
}

TEST(EffectiveCycleTime, Definition) {
  EXPECT_DOUBLE_EQ(effective_cycle_time(3.0, 1.0), 3.0);
  EXPECT_NEAR(effective_cycle_time(1.0, 0.491), 2.037, 0.002);  // Sec. 1.4
  EXPECT_THROW(effective_cycle_time(1.0, 0.0), Error);
}

TEST(Dot, MentionsTokensBuffersAndShape) {
  const std::string dot = figure1a().to_dot();
  EXPECT_NE(dot.find("R0=3 R=3"), std::string::npos);
  EXPECT_NE(dot.find("shape=trapezium"), std::string::npos);
}

}  // namespace
}  // namespace elrr
