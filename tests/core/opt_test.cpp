#include "core/opt.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "core/tgmg.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr {
namespace {

using namespace figures;

// ---------------------------------------------------------------------------
// MIN_CYC.
// ---------------------------------------------------------------------------
TEST(MinCyc, RetimingAloneCannotBeatThreeOnFigure1a) {
  // Section 1.2: "3 is minimal cycle time achievable by retiming" -- the
  // critical cycle has one EB and delay 3.
  const auto res = min_cyc(figure1a(0.5, false), 1.0);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.exact);
  EXPECT_NEAR(res.objective, 3.0, 1e-6);
}

TEST(MinCyc, RecyclingReachesCycleTimeOneAtThroughputOneThird) {
  const auto res = min_cyc(figure1a(0.5, false), 3.0);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, 1e-6);
  const auto eval = evaluate_config(figure1a(0.5, false), res.config);
  EXPECT_NEAR(eval.tau, 1.0, 1e-9);
  EXPECT_GE(eval.theta_lp, 1.0 / 3.0 - 1e-6);
}

TEST(MinCyc, RejectsXBelowOne) {
  EXPECT_THROW(min_cyc(figure1a(), 0.5), Error);
}

TEST(MinCyc, RequiresStronglyConnected) {
  Rrg rrg;
  const NodeId a = rrg.add_node("a", 1.0);
  const NodeId b = rrg.add_node("b", 1.0);
  rrg.add_edge(a, b, 1, 1);
  EXPECT_THROW(min_cyc(rrg, 1.0), Error);
}

// ---------------------------------------------------------------------------
// MAX_THR.
// ---------------------------------------------------------------------------
TEST(MaxThr, LateEvaluationAtTauOneGivesOneThird) {
  const auto res = max_thr(figure1a(0.5, false), 1.0);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 3.0, 1e-6);  // x = 1/Theta
  const auto eval = evaluate_config(figure1a(0.5, false), res.config);
  EXPECT_LE(eval.tau, 1.0 + 1e-9);
  EXPECT_NEAR(eval.theta_lp, 1.0 / 3.0, 1e-6);
}

TEST(MaxThr, EarlyEvaluationBeatsLateAtTauOne) {
  // The whole point of the paper: with an early mux, tau = 1 supports a
  // much higher throughput than 1/3 (Figure 2: 1/(3-2a)).
  const double alpha = 0.9;
  const auto res = max_thr(figure1a(alpha, true), 1.0);
  ASSERT_TRUE(res.feasible);
  const double theta = 1.0 / res.objective;
  EXPECT_GE(theta, figure2_throughput(alpha) - 1e-6);  // >= 5/6
  const auto eval = evaluate_config(figure1a(alpha, true), res.config);
  EXPECT_LE(eval.tau, 1.0 + 1e-9);
}

TEST(MaxThr, InfeasibleBelowMaxDelay) {
  const auto res = max_thr(figure1a(), 0.5);  // beta_max = 1
  EXPECT_FALSE(res.feasible);
}

TEST(MaxThr, UnconstrainedTauGivesThroughputOne) {
  const auto res = max_thr(figure1a(0.5, false), 100.0);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.objective, 1.0, 1e-6);
}

// ---------------------------------------------------------------------------
// MIN_EFF_CYC.
// ---------------------------------------------------------------------------
TEST(MinEffCyc, LateEvaluationOfFigure1aStaysAtThree) {
  // Recycling cannot help a late-evaluation mux here: every Pareto point
  // has xi = 3 (Section 1.2: "the effective cycle time of both ESs ... is
  // the same. It is equal to 3").
  OptOptions options;
  options.treat_all_simple = true;
  const auto res = min_eff_cyc(figure1a(0.5, true), options);
  ASSERT_FALSE(res.points.empty());
  EXPECT_TRUE(res.all_exact);
  EXPECT_NEAR(res.best().xi_lp, 3.0, 1e-5);
}

TEST(MinEffCyc, EarlyEvaluationFindsFigure2) {
  const double alpha = 0.9;
  const auto res = min_eff_cyc(figure1a(alpha, true));
  ASSERT_FALSE(res.points.empty());
  const ParetoPoint& best = res.best();
  // The optimum of Figure 2: tau = 1 and theta >= 1/(3-2a) = 5/6, so
  // xi <= 1.2 -- a ~60% improvement over the late optimum of 3.
  EXPECT_NEAR(best.tau, 1.0, 1e-9);
  EXPECT_GE(best.theta_lp, figure2_throughput(alpha) - 1e-6);
  EXPECT_LE(best.xi_lp, 3.0 - 1.0);

  // The found configuration must be a genuine retiming+recycling of the
  // input: cycle token sums preserved (4 on the top cycle, 1 on bottom).
  const RrConfig& config = best.config;
  const int top_cycle = config.tokens[kMF1] + config.tokens[kF1F2] +
                        config.tokens[kF2F3] + config.tokens[kF3F] +
                        config.tokens[kTop];
  const int bottom_cycle = config.tokens[kMF1] + config.tokens[kF1F2] +
                           config.tokens[kF2F3] + config.tokens[kF3F] +
                           config.tokens[kBottom];
  EXPECT_EQ(top_cycle, 4);
  EXPECT_EQ(bottom_cycle, 1);
}

TEST(MinEffCyc, ParetoFrontierIsSortedAndNonDominated) {
  const auto res = min_eff_cyc(figure1a(0.7, true));
  ASSERT_GE(res.points.size(), 1u);
  for (std::size_t i = 1; i < res.points.size(); ++i) {
    EXPECT_GT(res.points[i].tau, res.points[i - 1].tau);
    EXPECT_GT(res.points[i].theta_lp, res.points[i - 1].theta_lp);
  }
  // The last point reaches throughput 1 (min-delay retiming).
  EXPECT_NEAR(res.points.back().theta_lp, 1.0, 1e-6);
}

TEST(MinEffCyc, KBestOrdering) {
  const auto res = min_eff_cyc(figure1a(0.7, true));
  const auto order = res.k_best(2);
  ASSERT_GE(order.size(), 1u);
  EXPECT_EQ(order[0], res.best_index);
  if (order.size() == 2) {
    EXPECT_LE(res.points[order[0]].xi_lp, res.points[order[1]].xi_lp);
  }
}

TEST(MinEffCyc, RejectsBadEpsilon) {
  OptOptions options;
  options.epsilon = 0.0;
  EXPECT_THROW(min_eff_cyc(figure1a(), options), Error);
}

// ---------------------------------------------------------------------------
// Retiming recovery.
// ---------------------------------------------------------------------------
TEST(RecoverRetiming, ReproducesALegalTokenAssignment) {
  const Rrg fig1a = figure1a();
  // Figure 2's buffers are {1,1,1,0,1,0}.
  const std::vector<int> buffers{1, 1, 1, 0, 1, 0};
  const std::vector<int> r = recover_retiming(fig1a, buffers);
  RrConfig config;
  config.buffers = buffers;
  config.tokens.resize(fig1a.num_edges());
  for (EdgeId e = 0; e < fig1a.num_edges(); ++e) {
    config.tokens[e] = fig1a.tokens(e) + r[fig1a.graph().dst(e)] -
                       r[fig1a.graph().src(e)];
  }
  EXPECT_TRUE(validate_config(fig1a, config));
}

TEST(RecoverRetiming, ThrowsWhenBuffersCannotHostTokens) {
  const Rrg fig1a = figure1a();
  // Zero buffers everywhere cannot host the 4-token top cycle.
  EXPECT_THROW(recover_retiming(fig1a, std::vector<int>(6, 0)), Error);
}

// ---------------------------------------------------------------------------
// Property: on random late-evaluation RRGs the optimizer output is always
// a valid configuration whose metrics match its claims, and min_eff_cyc's
// best xi_lp is never worse than the original configuration.
// ---------------------------------------------------------------------------
class OptRandomTest : public ::testing::TestWithParam<int> {};

Rrg random_live_rrg(Rng& rng, bool allow_early) {
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  Rrg rrg;
  for (std::size_t i = 0; i < n; ++i) {
    rrg.add_node("", rng.uniform_open_closed(0.0, 10.0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int tokens = i == 0 ? 1 : static_cast<int>(rng.uniform_int(0, 1));
    rrg.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                 tokens, tokens);
  }
  const std::size_t extra = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t k = 0; k < extra; ++k) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto v = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const int tokens = u == v ? 1 : static_cast<int>(rng.uniform_int(0, 1));
    rrg.add_edge(u, v, tokens, tokens);
  }
  // Liveness repair: drop a token into any dead cycle.
  std::vector<EdgeId> dead;
  while (!rrg.is_live(&dead)) {
    const EdgeId e = dead[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(dead.size()) - 1))];
    rrg.set_tokens(e, 1);
    rrg.set_buffers(e, std::max(1, rrg.buffers(e)));
  }
  if (allow_early) {
    for (NodeId v = 0; v < rrg.num_nodes(); ++v) {
      if (rrg.graph().in_degree(v) >= 2 && rng.bernoulli(0.5)) {
        rrg.set_kind(v, NodeKind::kEarly);
        const auto probs = rng.simplex(rrg.graph().in_degree(v), 0.05);
        std::size_t idx = 0;
        for (EdgeId e : rrg.graph().in_edges(v)) {
          rrg.set_gamma(e, probs[idx++]);
        }
      }
    }
  }
  return rrg;
}

TEST_P(OptRandomTest, MinEffCycProducesValidDominatingConfigs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15731 + 19);
  const Rrg rrg = random_live_rrg(rng, GetParam() % 2 == 0);
  const auto res = min_eff_cyc(rrg);
  ASSERT_FALSE(res.points.empty());
  const auto original = evaluate_rrg(rrg);
  EXPECT_LE(res.best().xi_lp, original.xi_lp + 1e-6);
  for (const auto& point : res.points) {
    std::string why;
    EXPECT_TRUE(validate_config(rrg, point.config, &why)) << why;
    const auto eval = evaluate_config(rrg, point.config);
    EXPECT_NEAR(eval.tau, point.tau, 1e-9);
    EXPECT_NEAR(eval.theta_lp, point.theta_lp, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace elrr
