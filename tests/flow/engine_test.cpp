/// \file engine_test.cpp
/// The pipelined flow engine's contract: with feedback pruning off, the
/// engine's Pareto front and every simulated theta are bit-identical to
/// the sequential path (min_eff_cyc + per-candidate simulate_throughput)
/// for every fleet thread count and for overlap on/off -- the pipeline
/// is purely a wall-clock change. Cancellation stops the walk at a step
/// boundary and leaves the engine (and its fleet) fully reusable.
///
/// The test circuit (s420) is small enough that every MILP solves to
/// proven optimality well inside its budget, so walks are deterministic
/// run to run -- a precondition for comparing frontiers across runs.

#include "flow/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "sim/simulator.hpp"

namespace elrr::flow {
namespace {

Rrg test_rrg() {
  return bench89::make_table2_rrg(bench89::spec_by_name("s420"), 1);
}

EngineOptions fast_options() {
  EngineOptions options;
  options.opt.epsilon = 0.05;
  options.opt.milp.time_limit_s = 30.0;  // never reached at this size
  options.sim.measure_cycles = 2000;
  options.sim.warmup_cycles = 200;
  options.sim.runs = 2;
  options.sim_threads = 1;
  return options;
}

void expect_same_frontier(const MinEffCycResult& a, const MinEffCycResult& b,
                          const char* label) {
  ASSERT_EQ(a.points.size(), b.points.size()) << label;
  EXPECT_EQ(a.best_index, b.best_index) << label;
  EXPECT_EQ(a.milp_calls, b.milp_calls) << label;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].tau, b.points[i].tau) << label << " point " << i;
    EXPECT_EQ(a.points[i].theta_lp, b.points[i].theta_lp)
        << label << " point " << i;
    EXPECT_EQ(a.points[i].xi_lp, b.points[i].xi_lp) << label << " point " << i;
    EXPECT_TRUE(a.points[i].config == b.points[i].config)
        << label << " point " << i;
  }
}

/// The walk streamed through the engine replays min_eff_cyc exactly, and
/// each scored theta equals solo simulation of the same candidate -- at
/// thread counts 1, 2 and 4, overlapped and sequential.
TEST(FlowEngine, BitExactVsSequentialPathAtAnyThreadCount) {
  const Rrg rrg = test_rrg();
  const EngineOptions base = fast_options();

  // The sequential oracle: plain walk, then per-candidate simulation.
  const MinEffCycResult reference = min_eff_cyc(rrg, base.opt);
  ASSERT_TRUE(reference.all_exact)
      << "test circuit must solve exactly for determinism";
  std::vector<double> reference_thetas;
  for (const ParetoPoint& point : reference.points) {
    const Rrg candidate = apply_config(rrg, point.config);
    reference_thetas.push_back(
        sim::simulate_throughput(candidate, base.sim).theta);
  }

  for (const bool overlap : {true, false}) {
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      EngineOptions options = base;
      options.overlap = overlap;
      options.sim_threads = threads;
      Engine engine(rrg, options);
      const EngineResult result = engine.run();
      const std::string label = std::string(overlap ? "overlap" : "seq") +
                                " threads " + std::to_string(threads);
      EXPECT_FALSE(result.cancelled) << label;
      expect_same_frontier(result.walk, reference, label.c_str());
      ASSERT_EQ(result.scored.size(), reference.points.size()) << label;
      for (std::size_t i = 0; i < result.scored.size(); ++i) {
        EXPECT_EQ(result.scored[i].sim.theta, reference_thetas[i])
            << label << " point " << i;
      }
    }
  }
}

/// The acceptance bar for warm starts: an engine with the default warm
/// MILP session reproduces a *cold* sequential oracle bit-identically at
/// every fleet thread count -- the warm basis is a wall-clock
/// optimization only (tests/lp/session_test.cpp runs the walk-level
/// differential across circuits; this pins the engine layer).
TEST(FlowEngine, WarmEngineMatchesColdOracleAtAnyThreadCount) {
  const Rrg rrg = test_rrg();
  EngineOptions base = fast_options();
  ASSERT_TRUE(base.opt.milp_warm);  // warm is the default under test

  OptOptions cold = base.opt;
  cold.milp_warm = false;
  const MinEffCycResult reference = min_eff_cyc(rrg, cold);
  ASSERT_TRUE(reference.all_exact)
      << "test circuit must solve exactly for determinism";

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    EngineOptions options = base;
    options.sim_threads = threads;
    Engine engine(rrg, options);
    const EngineResult result = engine.run();
    const std::string label = "warm threads " + std::to_string(threads);
    EXPECT_FALSE(result.cancelled) << label;
    expect_same_frontier(result.walk, reference, label.c_str());
    EXPECT_GT(result.milp.warm_roots, 0) << label << ": ran cold, proved nothing";
  }
}

/// ParetoWalk streams the identical candidates min_eff_cyc records --
/// replaying advance() to exhaustion and finish()ing reproduces the
/// one-shot result on the walk level too (the engine-independent half of
/// the determinism story).
TEST(FlowEngine, ParetoWalkReplaysMinEffCyc) {
  const Rrg rrg = test_rrg();
  OptOptions options;
  options.epsilon = 0.05;
  options.milp.time_limit_s = 30.0;

  const MinEffCycResult oracle = min_eff_cyc(rrg, options);
  ParetoWalk walk(rrg, options);
  std::size_t emitted = 0;
  while (walk.advance().has_value()) ++emitted;
  EXPECT_TRUE(walk.done());
  EXPECT_GE(emitted, oracle.points.size());  // emissions include revisits
  expect_same_frontier(walk.finish(), oracle, "walk replay");
  EXPECT_EQ(walk.milp_calls(), oracle.milp_calls);
  EXPECT_EQ(walk.pruned_steps(), 0);  // no hint was ever set
}

/// Cancellation mid-walk: the run stops at the next step boundary,
/// returns the partial frontier with cancelled = true, and both the
/// engine and its fleet remain fully usable -- score() and a fresh run()
/// afterwards produce the same results as an untouched engine.
TEST(FlowEngine, CancellationMidWalkLeavesEngineReusable) {
  const Rrg rrg = test_rrg();
  EngineOptions options = fast_options();
  Engine* handle = nullptr;
  std::size_t seen = 0;
  options.on_candidate = [&](const ParetoPoint&, std::size_t) {
    if (++seen == 2) handle->request_cancel();
  };
  Engine engine(rrg, options);
  handle = &engine;

  const EngineResult partial = engine.run();
  EXPECT_TRUE(partial.cancelled);
  EXPECT_EQ(partial.candidates_submitted, 2u);
  EXPECT_LE(partial.walk.points.size(), 2u);
  EXPECT_EQ(partial.scored.size(), partial.walk.points.size());

  // The fleet is quiesced and reusable: score an arbitrary configuration
  // through it and check against solo simulation.
  ParetoPoint identity;
  identity.config = initial_config(rrg);
  const RcEvaluation eval = evaluate_rrg(rrg);
  identity.tau = eval.tau;
  identity.theta_lp = eval.theta_lp;
  identity.xi_lp = eval.xi_lp;
  const std::vector<ScoredPoint> scored = engine.score({identity});
  ASSERT_EQ(scored.size(), 1u);
  const Rrg identity_rrg = apply_config(rrg, identity.config);
  EXPECT_EQ(scored[0].sim.theta,
            sim::simulate_throughput(identity_rrg, options.sim).theta);

  // A fresh run on the same engine (cancel flag clears) completes and
  // matches an untouched engine's result.
  seen = 1000;  // never trips again
  const EngineResult full = engine.run();
  EXPECT_FALSE(full.cancelled);
  EngineOptions clean = fast_options();
  Engine fresh_engine(rrg, clean);
  const EngineResult fresh = fresh_engine.run();
  expect_same_frontier(full.walk, fresh.walk, "post-cancel rerun");
  ASSERT_EQ(full.scored.size(), fresh.scored.size());
  for (std::size_t i = 0; i < full.scored.size(); ++i) {
    EXPECT_EQ(full.scored[i].sim.theta, fresh.scored[i].sim.theta);
  }
}

/// score() rides the session cache: rescoring the frontier after run()
/// adds no new unique simulations and returns bit-identical thetas.
TEST(FlowEngine, ScoreHitsTheSessionCache) {
  const Rrg rrg = test_rrg();
  Engine engine(rrg, fast_options());
  const EngineResult result = engine.run();
  ASSERT_FALSE(result.scored.empty());

  const std::size_t cache_before = engine.fleet().async_cache_size();
  const std::vector<ScoredPoint> rescored = engine.score(result.walk.points);
  EXPECT_EQ(engine.fleet().async_cache_size(), cache_before)
      << "rescoring the frontier must be pure cache hits";
  ASSERT_EQ(rescored.size(), result.scored.size());
  for (std::size_t i = 0; i < rescored.size(); ++i) {
    EXPECT_EQ(rescored[i].sim.theta, result.scored[i].sim.theta);
    EXPECT_EQ(rescored[i].xi_sim, result.scored[i].xi_sim);
  }
}

/// Feedback pruning is a live, opt-in mode: the run completes, scored
/// candidates stay internally consistent, and the best simulated xi can
/// never be worse than the identity configuration's (the walk always
/// records the identity first, and pruning only skips steps that cannot
/// beat an already-observed xi).
TEST(FlowEngine, FeedbackPruningProducesAValidResult) {
  const Rrg rrg = test_rrg();
  EngineOptions options = fast_options();
  options.feedback_pruning = FeedbackPruning::kOn;
  Engine engine(rrg, options);
  const EngineResult result = engine.run();

  ASSERT_FALSE(result.scored.empty());
  EXPECT_GE(result.pruned_steps, 0);
  const double identity_xi = evaluate_rrg(rrg).tau;  // theta = 1 at identity
  EXPECT_LE(result.best_by_sim().xi_sim, identity_xi * 1.02 + 1e-6);
  for (const ScoredPoint& scored : result.scored) {
    EXPECT_GT(scored.sim.theta, 0.0);
    EXPECT_NEAR(scored.xi_sim, scored.point.tau / scored.sim.theta, 1e-9);
  }
}

/// Shared-fleet engines (the svc::Scheduler shape): two engines driven
/// from two threads over ONE multi-client fleet produce results
/// bit-identical to owned-fleet engines -- candidate dedup across
/// engines included (the second identical-circuit engine creates no
/// fresh simulations when it loses the submission race, and its thetas
/// are the shared, bit-exact ones either way).
TEST(FlowEngine, SharedFleetMatchesOwnedFleetAcrossThreads) {
  const Rrg rrg = test_rrg();
  const EngineOptions base = fast_options();
  Engine oracle_engine(rrg, base);
  const EngineResult oracle = oracle_engine.run();

  sim::SimFleet shared(2);
  EngineResult results[2];
  std::thread clients[2];
  for (int c = 0; c < 2; ++c) {
    clients[c] = std::thread([&, c] {
      Engine engine(rrg, base, shared);
      results[c] = engine.run();
    });
  }
  for (std::thread& client : clients) client.join();

  for (int c = 0; c < 2; ++c) {
    const std::string label = "shared engine " + std::to_string(c);
    expect_same_frontier(results[c].walk, oracle.walk, label.c_str());
    ASSERT_EQ(results[c].scored.size(), oracle.scored.size()) << label;
    for (std::size_t i = 0; i < oracle.scored.size(); ++i) {
      EXPECT_EQ(results[c].scored[i].sim.theta, oracle.scored[i].sim.theta)
          << label << " point " << i;
    }
  }
  // Between them the two engines created each unique simulation once.
  EXPECT_EQ(results[0].unique_simulations + results[1].unique_simulations,
            oracle.unique_simulations);
}

/// The observer sees every emitted candidate, in emission order, with
/// its index.
TEST(FlowEngine, ObserverSeesEveryEmission) {
  const Rrg rrg = test_rrg();
  EngineOptions options = fast_options();
  std::vector<std::size_t> indices;
  options.on_candidate = [&](const ParetoPoint& point, std::size_t index) {
    EXPECT_GT(point.tau, 0.0);
    indices.push_back(index);
  };
  Engine engine(rrg, options);
  const EngineResult result = engine.run();
  ASSERT_EQ(indices.size(), result.candidates_submitted);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);
  }
}

}  // namespace
}  // namespace elrr::flow
