/// \file flow_test.cpp
/// The experiment flow behind bench_table1/bench_table2: per-circuit
/// invariants that must hold regardless of MILP budgets -- chiefly that
/// the reported baselines and optima are internally consistent.

#include "flow/circuit_flow.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "support/error.hpp"

namespace elrr::flow {
namespace {

FlowOptions fast_options(std::uint64_t seed) {
  FlowOptions options;
  options.seed = seed;
  options.epsilon = 0.1;
  options.milp_timeout_s = 2.0;
  options.sim_cycles = 4000;
  options.max_simulated_points = 4;
  return options;
}

class FlowInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(FlowInvariants, HoldOnSmallCircuits) {
  const auto& [name, seed] = GetParam();
  const FlowOptions options = fast_options(static_cast<std::uint64_t>(seed));
  const CircuitResult r = run_circuit(name, options);

  EXPECT_EQ(r.name, name);
  EXPECT_GT(r.n_simple + r.n_early, 0);
  EXPECT_GT(r.n_edges, 0);
  ASSERT_FALSE(r.candidates.empty());

  // The unoptimized configuration has Theta = 1, so xi* equals tau and
  // every optimum the flow reports must be at least as good. The late
  // baseline in particular may never exceed xi* (the identity is a valid
  // late-evaluation configuration) -- this regressed once when MILP
  // budgets starved; see DESIGN.md reproduction note 6.
  EXPECT_GT(r.xi_star, 0.0);
  EXPECT_LE(r.xi_nee, r.xi_star + 1e-6);
  EXPECT_LE(r.xi_sim_min, r.xi_star * 1.02 + 1e-6);  // 2% sim noise head
  EXPECT_GE(r.xi_sim_min, 0.0);

  // xi_lp_min is the simulated xi of the xi_lp-best candidate: it can
  // never beat the best simulated candidate.
  EXPECT_GE(r.xi_lp_min, r.xi_sim_min - 1e-9);

  for (const CandidateRow& row : r.candidates) {
    EXPECT_GT(row.tau, 0.0);
    EXPECT_GT(row.theta_lp, 0.0);
    EXPECT_LE(row.theta_lp, 1.0 + 1e-9);
    EXPECT_GT(row.theta_sim, 0.0);
    EXPECT_GE(row.bubbles, 0) << "bubbles cannot be negative";
    EXPECT_NEAR(row.xi_sim, row.tau / row.theta_sim, 1e-9);
    EXPECT_NEAR(row.xi_lp, row.tau / row.theta_lp, 1e-6);
  }

  // Candidates are presented in increasing-tau order.
  for (std::size_t i = 1; i < r.candidates.size(); ++i) {
    EXPECT_GE(r.candidates[i].tau, r.candidates[i - 1].tau - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, FlowInvariants,
    ::testing::Combine(::testing::Values("s208", "s838", "s420"),
                       ::testing::Values(1, 2, 7)));

TEST(Flow, HeuristicMergeNeverHurts) {
  // With the heuristic merged in, the reported optimum is at least as
  // good as the paper-pure flow's under identical budgets.
  FlowOptions pure = fast_options(1);
  pure.use_heuristic = false;
  FlowOptions hybrid = fast_options(1);
  hybrid.use_heuristic = true;
  const CircuitResult a = run_circuit("s27", pure);
  const CircuitResult b = run_circuit("s27", hybrid);
  EXPECT_LE(b.xi_nee, a.xi_nee + 1e-6);
  // xi_sim_min compares simulated values; allow a whisker of sim noise.
  EXPECT_LE(b.xi_sim_min, a.xi_sim_min * 1.03);
}

TEST(Flow, EnvOptionsParse) {
  const FlowOptions options = FlowOptions::from_env();
  EXPECT_GT(options.epsilon, 0.0);
  EXPECT_GT(options.milp_timeout_s, 0.0);
  EXPECT_GT(options.sim_cycles, 0u);
}

/// Scoped environment override; restores the previous value (or
/// unset-ness) on destruction so tests cannot leak knobs into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_.c_str(), saved_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

TEST(Flow, EnvValidationAcceptsWellFormedKnobs) {
  const ScopedEnv cycles("ELRR_SIM_CYCLES", "12000");
  const ScopedEnv threads("ELRR_SIM_THREADS", "0");  // 0 = all cores
  const ScopedEnv timeout("ELRR_MILP_TIMEOUT", "2.5");
  const ScopedEnv polish("ELRR_POLISH", "1");
  const ScopedEnv dedup("ELRR_SIM_DEDUP", "0");
  const ScopedEnv pipeline("ELRR_PIPELINE", "0");  // sequential baseline
  const ScopedEnv cache_cap("ELRR_SIM_CACHE_CAP", "0");  // 0 = unbounded
  const FlowOptions options = FlowOptions::from_env();
  EXPECT_EQ(options.sim_cycles, 12000u);
  EXPECT_EQ(options.sim_threads, 0u);
  EXPECT_DOUBLE_EQ(options.milp_timeout_s, 2.5);
  EXPECT_TRUE(options.polish);
  EXPECT_FALSE(options.sim_dedup);
  EXPECT_FALSE(options.pipeline);
  EXPECT_EQ(options.sim_cache_cap, 0u);
}

TEST(Flow, EnvValidationRejectsMalformedSimDedup) {
  const ScopedEnv guard("ELRR_SIM_DEDUP", "yes");  // 0 or 1 only
  EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
}

TEST(Flow, EnvValidationRejectsMalformedSimCacheCap) {
  {
    const ScopedEnv guard("ELRR_SIM_CACHE_CAP", "-1");  // no negatives
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_SIM_CACHE_CAP", "256MiB");  // bytes only
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
}

TEST(Flow, EnvValidationRejectsMalformedPipeline) {
  const ScopedEnv guard("ELRR_PIPELINE", "fast");  // 0 or 1 only
  EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
}

TEST(Flow, EnvValidationRejectsMalformedSimCycles) {
  // A negative cycle count used to wrap through size_t into a
  // near-eternal run; junk text parsed as 0 and then failed deep inside
  // the simulator. Both must be immediate, named errors now.
  {
    const ScopedEnv guard("ELRR_SIM_CYCLES", "-5");
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_SIM_CYCLES", "abc");
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_SIM_CYCLES", "0");
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_SIM_CYCLES", "20000x");  // trailing junk
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
}

TEST(Flow, EnvValidationRejectsMalformedThreadsAndTimeout) {
  {
    const ScopedEnv guard("ELRR_SIM_THREADS", "-1");
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_SIM_THREADS", "1e9");  // not an integer
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_MILP_TIMEOUT", "0");  // must be positive
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_MILP_TIMEOUT", "nan");
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_EPSILON", "-0.05");
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
  {
    const ScopedEnv guard("ELRR_HEUR", "yes");  // 0 or 1 only
    EXPECT_THROW(FlowOptions::from_env(), InvalidInputError);
  }
}

TEST(Flow, EnvValidationErrorNamesTheVariable) {
  const ScopedEnv guard("ELRR_SIM_CYCLES", "-5");
  try {
    FlowOptions::from_env();
    FAIL() << "expected InvalidInputError";
  } catch (const InvalidInputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("ELRR_SIM_CYCLES"), std::string::npos) << what;
    EXPECT_NE(what.find("-5"), std::string::npos) << what;
  }
}

TEST(Flow, UnknownCircuitThrows) {
  EXPECT_THROW(run_circuit("s9999", fast_options(1)), Error);
}

}  // namespace
}  // namespace elrr::flow
