/// \file rrg_format_test.cpp
/// The .rrg text format (reader/writer round-trips, error reporting) and
/// the JSON exporter.

#include "io/rrg_format.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "support/error.hpp"

namespace elrr::io {
namespace {

using namespace figures;

void expect_same_rrg(const Rrg& a, const Rrg& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.delay(n), b.delay(n)) << "node " << n;
    EXPECT_EQ(a.kind(n), b.kind(n)) << "node " << n;
    EXPECT_EQ(a.telescopic(n), b.telescopic(n)) << "node " << n;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.graph().src(e), b.graph().src(e)) << "edge " << e;
    EXPECT_EQ(a.graph().dst(e), b.graph().dst(e)) << "edge " << e;
    EXPECT_EQ(a.tokens(e), b.tokens(e)) << "edge " << e;
    EXPECT_EQ(a.buffers(e), b.buffers(e)) << "edge " << e;
    if (a.is_early(a.graph().dst(e))) {
      EXPECT_DOUBLE_EQ(a.gamma(e), b.gamma(e)) << "edge " << e;
    }
  }
}

TEST(RrgFormat, ParsesMinimalDocument) {
  const NamedRrg named = read_rrg(R"(
    rrg demo
    # a two-node ring
    node a delay=1.5
    node b delay=2 early  # trailing comment
    edge a b tokens=1 buffers=1 gamma=0.4
    edge a b tokens=0 buffers=2 gamma=0.6
    edge b a tokens=1 buffers=1
  )");
  EXPECT_EQ(named.name, "demo");
  EXPECT_EQ(named.rrg.num_nodes(), 2u);
  EXPECT_EQ(named.rrg.num_edges(), 3u);
  EXPECT_TRUE(named.rrg.is_early(1));
  EXPECT_DOUBLE_EQ(named.rrg.gamma(0), 0.4);
}

TEST(RrgFormat, RoundTripsFigures) {
  for (const Rrg& rrg :
       {figure1a(0.7), figure1b(0.5), figure2(0.9)}) {
    const NamedRrg back = read_rrg(write_rrg(rrg, "fig"));
    expect_same_rrg(rrg, back.rrg);
  }
}

TEST(RrgFormat, RoundTripsTelescopic) {
  Rrg rrg = figure1a(0.9);
  rrg.set_telescopic(kF2, 0.75, 3);
  const NamedRrg back = read_rrg(write_rrg(rrg, "tele"));
  expect_same_rrg(rrg, back.rrg);
  EXPECT_TRUE(back.rrg.is_telescopic(kF2));
}

TEST(RrgFormat, RoundTripsAntiTokens) {
  const Rrg rrg = figure2(0.5);  // -2 tokens on the bottom channel
  const NamedRrg back = read_rrg(write_rrg(rrg));
  expect_same_rrg(rrg, back.rrg);
  EXPECT_EQ(back.rrg.tokens(kBottom), -2);
}

TEST(RrgFormat, DisambiguatesDuplicateNames) {
  Rrg rrg;
  const NodeId a = rrg.add_node("x", 1.0);
  const NodeId b = rrg.add_node("x", 2.0);  // same name
  rrg.add_edge(a, b, 1, 1);
  rrg.add_edge(b, a, 1, 1);
  const NamedRrg back = read_rrg(write_rrg(rrg));
  expect_same_rrg(rrg, back.rrg);
}

TEST(RrgFormat, ErrorsCarryLineNumbers) {
  const auto expect_error = [](std::string_view text,
                               std::string_view needle) {
    try {
      read_rrg(text);
      FAIL() << "expected failure for: " << text;
    } catch (const InvalidInputError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("node a delay=1\nbogus x", "line 2");
  expect_error("node a", "delay");
  expect_error("node a delay=abc", "bad number");
  expect_error("node a delay=1\nnode a delay=2", "duplicate");
  expect_error("edge a b tokens=1 buffers=1", "unknown node");
  expect_error("node a delay=1\nedge a a tokens=1", "buffers=");
  expect_error("node a delay=1\nedge a a tokens=2 buffers=1", "R >= R0");
  expect_error("node a delay=1 telescopic=0.5", "telescopic=<p>,<extra>");
}

TEST(RrgFormat, RejectsDeadCycles) {
  EXPECT_THROW(read_rrg(R"(
    node a delay=1
    node b delay=1
    edge a b tokens=0 buffers=0
    edge b a tokens=0 buffers=0
  )"),
               InvalidInputError);
}

TEST(RrgFormat, JsonContainsEverything) {
  Rrg rrg = figure2(0.9);
  rrg.set_telescopic(kF1, 0.5, 2);
  const std::string json = write_json(rrg, "fig2");
  EXPECT_NE(json.find("\"name\": \"fig2\""), std::string::npos);
  EXPECT_NE(json.find("\"early\": true"), std::string::npos);
  EXPECT_NE(json.find("\"tokens\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"telescopic\""), std::string::npos);
  EXPECT_NE(json.find("\"gamma\""), std::string::npos);
  // Crude structural sanity: balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(RrgFormat, FileHelpers) {
  const std::string path = ::testing::TempDir() + "/roundtrip.rrg";
  const Rrg rrg = figure1b(0.6);
  save_text_file(path, write_rrg(rrg, "f1b"));
  const NamedRrg back = load_rrg_file(path);
  EXPECT_EQ(back.name, "f1b");
  expect_same_rrg(rrg, back.rrg);
  EXPECT_THROW(load_rrg_file("/nonexistent/nowhere.rrg"), Error);
}

}  // namespace
}  // namespace elrr::io
