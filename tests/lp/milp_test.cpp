#include "lp/milp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace elrr::lp {
namespace {

TEST(Milp, PureLpPassthrough) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(0, 4, 1.0);
  m.add_row(-kInf, 3, {{x, 1.0}});
  const auto r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-8);
  EXPECT_NEAR(r.gap(), 0.0, 1e-9);
}

TEST(Milp, FractionalRelaxationRoundsDown) {
  // max x + y st 2x + 2y <= 3, x,y in {0,1}: LP gives 1.5, ILP gives 1.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(0, 1, 1.0, true);
  const int y = m.add_col(0, 1, 1.0, true);
  m.add_row(-kInf, 3, {{x, 2.0}, {y, 2.0}});
  const auto r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-8);
}

TEST(Milp, Knapsack) {
  // Values {60,100,120}, weights {10,20,30}, capacity 50 -> 220.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int a = m.add_col(0, 1, 60, true);
  const int b = m.add_col(0, 1, 100, true);
  const int c = m.add_col(0, 1, 120, true);
  m.add_row(-kInf, 50, {{a, 10.0}, {b, 20.0}, {c, 30.0}});
  const auto r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 220.0, 1e-7);
  EXPECT_NEAR(r.x[a], 0.0, 1e-9);
  EXPECT_NEAR(r.x[b], 1.0, 1e-9);
  EXPECT_NEAR(r.x[c], 1.0, 1e-9);
}

TEST(Milp, IntegerInfeasibleBand) {
  // 0.4 <= x <= 0.6 with x integer: no integer point.
  Model m;
  const int x = m.add_col(0, 1, 1.0, true);
  m.add_row(0.4, 0.6, {{x, 1.0}});
  EXPECT_EQ(solve_milp(m).status, MilpStatus::kInfeasible);
}

TEST(Milp, MixedIntegerContinuous) {
  // min 3n + c st n + c >= 2.5, c <= 0.7, n integer >= 0
  // -> n = 2, c = 0.5, obj 6.5.
  Model m;
  const int n = m.add_col(0, kInf, 3.0, true);
  const int c = m.add_col(0, 0.7, 1.0);
  m.add_row(2.5, kInf, {{n, 1.0}, {c, 1.0}});
  const auto r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.5, 1e-7);
  EXPECT_NEAR(r.x[n], 2.0, 1e-9);
}

TEST(Milp, NegativeIntegerRange) {
  // max -x st x >= -2.5, x integer in [-10, 10] -> x = -2, obj 2.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(-10, 10, -1.0, true);
  m.add_row(-2.5, kInf, {{x, 1.0}});
  const auto r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-8);
}

TEST(Milp, FractionalColumnBoundsTightened) {
  // Integer var with bounds [0.3, 2.7] means effective [1, 2].
  Model m;
  m.set_sense(Sense::kMaximize);
  m.add_col(0.3, 2.7, 1.0, true);
  const auto r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(Milp, NodeLimitReportsFeasibleOrNoSolution) {
  Model m;
  m.set_sense(Sense::kMaximize);
  // A slightly bigger knapsack so the tree is not trivial.
  std::vector<ColEntry> weight;
  elrr::Rng rng(5);
  for (int j = 0; j < 12; ++j) {
    const int c = m.add_col(0, 1, rng.uniform(1, 10), true);
    weight.push_back({c, rng.uniform(1, 10)});
  }
  m.add_row(-kInf, 20, weight);
  MilpOptions options;
  options.max_nodes = 2;
  const auto r = solve_milp(m, options);
  EXPECT_TRUE(r.status == MilpStatus::kFeasible ||
              r.status == MilpStatus::kOptimal ||
              r.status == MilpStatus::kNoSolution);
  if (r.has_solution()) {
    // The incumbent must be genuinely feasible.
    EXPECT_LE(m.max_infeasibility(r.x), 1e-6);
    // And the reported bound must bracket it.
    EXPECT_GE(r.best_bound, r.objective - 1e-6);
  }
}

// ---------------------------------------------------------------------------
// Property: B&B result equals brute-force enumeration on small pure-integer
// models with bounded boxes.
// ---------------------------------------------------------------------------

class MilpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpRandomTest, MatchesBruteForce) {
  elrr::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 17);
  const int n_cols = 2 + static_cast<int>(rng.uniform_int(0, 2));
  const int n_rows = 1 + static_cast<int>(rng.uniform_int(0, 3));

  Model m;
  if (rng.bernoulli(0.5)) m.set_sense(Sense::kMaximize);
  std::vector<int> lo(static_cast<std::size_t>(n_cols)),
      hi(static_cast<std::size_t>(n_cols));
  for (int j = 0; j < n_cols; ++j) {
    lo[static_cast<std::size_t>(j)] = static_cast<int>(rng.uniform_int(-2, 1));
    hi[static_cast<std::size_t>(j)] =
        lo[static_cast<std::size_t>(j)] + static_cast<int>(rng.uniform_int(1, 4));
    m.add_col(lo[static_cast<std::size_t>(j)], hi[static_cast<std::size_t>(j)],
              rng.uniform(-3, 3), true);
  }
  for (int i = 0; i < n_rows; ++i) {
    std::vector<ColEntry> entries;
    for (int j = 0; j < n_cols; ++j) {
      if (rng.bernoulli(0.8)) entries.push_back({j, rng.uniform(-2, 2)});
    }
    const double b = rng.uniform(-3, 5);
    if (rng.bernoulli(0.5)) m.add_row(-kInf, b, std::move(entries));
    else m.add_row(b, kInf, std::move(entries));
  }

  // Brute force over the integer box.
  const double flip = m.sense() == Sense::kMaximize ? -1.0 : 1.0;
  double best = kInf;
  std::vector<double> x(static_cast<std::size_t>(n_cols));
  std::vector<int> idx(static_cast<std::size_t>(n_cols));
  for (int j = 0; j < n_cols; ++j) idx[static_cast<std::size_t>(j)] = lo[static_cast<std::size_t>(j)];
  while (true) {
    for (int j = 0; j < n_cols; ++j) x[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j)];
    if (m.max_infeasibility(x) < 1e-9) {
      best = std::min(best, flip * m.objective_value(x));
    }
    int j = 0;
    while (j < n_cols) {
      if (++idx[static_cast<std::size_t>(j)] <= hi[static_cast<std::size_t>(j)]) break;
      idx[static_cast<std::size_t>(j)] = lo[static_cast<std::size_t>(j)];
      ++j;
    }
    if (j == n_cols) break;
  }

  const auto r = solve_milp(m);
  if (best == kInf) {
    EXPECT_EQ(r.status, MilpStatus::kInfeasible)
        << "brute force found no feasible point but solver said "
        << to_string(r.status);
  } else {
    ASSERT_EQ(r.status, MilpStatus::kOptimal) << to_string(r.status);
    EXPECT_NEAR(flip * r.objective, best, 1e-6);
    EXPECT_LE(m.max_infeasibility(r.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace elrr::lp
