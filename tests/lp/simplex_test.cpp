#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace elrr::lp {
namespace {

LpResult solve(const Model& m) {
  SimplexSolver solver(m);
  return solver.solve();
}

TEST(Simplex, TextbookMax) {
  // max 3x + 5y  st  x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), obj 36.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(0, kInf, 3.0);
  const int y = m.add_col(0, kInf, 5.0);
  m.add_row(-kInf, 4, {{x, 1.0}});
  m.add_row(-kInf, 12, {{y, 2.0}});
  m.add_row(-kInf, 18, {{x, 3.0}, {y, 2.0}});
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-8);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
  EXPECT_NEAR(r.x[1], 6.0, 1e-8);
}

TEST(Simplex, MinimizationWithEqualities) {
  // min x + 2y  st  x + y = 3, x - y <= 1  ->  x = 2, y = 1? No:
  // minimize => push y down: y >= (3-x) with x <= y+1 => x=2,y=1 obj 4;
  // but y can't go lower since x+y=3 and x-y<=1 bound x <= 2.
  Model m;
  const int x = m.add_col(0, kInf, 1.0);
  const int y = m.add_col(0, kInf, 2.0);
  m.add_row(3, 3, {{x, 1.0}, {y, 1.0}});
  m.add_row(-kInf, 1, {{x, 1.0}, {y, -1.0}});
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-8);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(Simplex, BoundsOnlyNoRows) {
  Model m;
  m.add_col(-1, 5, 2.0);
  m.add_col(-3, 4, -1.0);
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0 * -1 + -1.0 * 4, 1e-9);
}

TEST(Simplex, FreeVariable) {
  // min x st x + y = 2, y in [0, 1], x free -> x = 1.
  Model m;
  const int x = m.add_col(-kInf, kInf, 1.0);
  const int y = m.add_col(0, 1, 0.0);
  m.add_row(2, 2, {{x, 1.0}, {y, 1.0}});
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
}

TEST(Simplex, FreeVariableBothSigns) {
  // max x st x <= -5 (free var must go negative).
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(-kInf, kInf, 1.0);
  m.add_row(-kInf, -5, {{x, 1.0}});
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-8);
}

TEST(Simplex, InfeasibleRows) {
  Model m;
  const int x = m.add_col(0, 10, 1.0);
  m.add_row(5, kInf, {{x, 1.0}});
  m.add_row(-kInf, 3, {{x, 1.0}});
  EXPECT_EQ(solve(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, InfeasibleBounds) {
  Model m;
  const int x = m.add_col(4, 10, 0.0);
  const int y = m.add_col(4, 10, 0.0);
  m.add_row(-kInf, 6, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(solve(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, Unbounded) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(0, kInf, 1.0);
  const int y = m.add_col(0, kInf, 0.0);
  m.add_row(-kInf, 5, {{x, 1.0}, {y, -1.0}});
  EXPECT_EQ(solve(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, RangedRow) {
  // min x + y st 2 <= x + y <= 4, x <= 1 -> (1, 1).
  Model m;
  const int x = m.add_col(0, 1, 1.0);
  const int y = m.add_col(0, kInf, 1.0);
  m.add_row(2, 4, {{x, 1.0}, {y, 1.0}});
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-8);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y st x + y >= -3, x,y in [-5, 5] -> obj -3? No: both can go to
  // -5 only if sum >= -3 violated; optimum on the row: obj = -3.
  Model m;
  m.add_col(-5, 5, 1.0);
  m.add_col(-5, 5, 1.0);
  m.add_row(-3, kInf, {{0, 1.0}, {1, 1.0}});
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-8);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Classic degeneracy: multiple constraints through one vertex.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(0, kInf, 1.0);
  const int y = m.add_col(0, kInf, 1.0);
  m.add_row(-kInf, 1, {{x, 1.0}});
  m.add_row(-kInf, 1, {{y, 1.0}});
  m.add_row(-kInf, 2, {{x, 1.0}, {y, 1.0}});
  m.add_row(-kInf, 2, {{x, 2.0}, {y, 2.0}});
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-8);
}

TEST(Simplex, FixedVariables) {
  Model m;
  const int x = m.add_col(3, 3, 1.0);
  const int y = m.add_col(0, kInf, 1.0);
  m.add_row(5, kInf, {{x, 1.0}, {y, 1.0}});
  const auto r = solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-8);
}

TEST(Simplex, WarmRestartMatchesFreshSolve) {
  // Solve, tighten a bound, dual-resolve; compare with a from-scratch run.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(0, 10, 3.0);
  const int y = m.add_col(0, 10, 2.0);
  m.add_row(-kInf, 14, {{x, 2.0}, {y, 1.0}});
  m.add_row(-kInf, 9, {{x, 1.0}, {y, 1.0}});

  SimplexSolver warm(m);
  ASSERT_EQ(warm.solve().status, LpStatus::kOptimal);
  warm.set_col_bounds(x, 0, 2);
  const auto warm_result = warm.resolve();

  Model m2 = m;
  m2.set_col_bounds(x, 0, 2);
  const auto fresh = solve(m2);

  ASSERT_EQ(warm_result.status, LpStatus::kOptimal);
  ASSERT_EQ(fresh.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm_result.objective, fresh.objective, 1e-7);
}

TEST(Simplex, SaveRestoreRoundTrip) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(0, 10, 1.0);
  m.add_row(-kInf, 7, {{x, 1.0}});
  SimplexSolver solver(m);
  ASSERT_EQ(solver.solve().status, LpStatus::kOptimal);
  const auto state = solver.save_state();

  solver.set_col_bounds(x, 0, 3);
  ASSERT_EQ(solver.resolve().status, LpStatus::kOptimal);
  EXPECT_NEAR(solver.structural_values()[0], 3.0, 1e-8);

  solver.restore_state(state);
  const auto r = solver.resolve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-8);
}

// ---------------------------------------------------------------------------
// Property tests on random LPs: the returned point must be feasible and its
// objective must not be beaten by random feasible sampling. Warm-started
// re-solves after random bound tightening must match fresh solves.
// ---------------------------------------------------------------------------

class SimplexRandomTest : public ::testing::TestWithParam<int> {};

Model random_bounded_lp(elrr::Rng& rng, int n_cols, int n_rows) {
  Model m;
  if (rng.bernoulli(0.5)) m.set_sense(Sense::kMaximize);
  for (int j = 0; j < n_cols; ++j) {
    const double lo = rng.uniform(-4, 0);
    const double hi = lo + rng.uniform(0, 6);
    m.add_col(lo, hi, rng.uniform(-3, 3));
  }
  for (int i = 0; i < n_rows; ++i) {
    std::vector<ColEntry> entries;
    for (int j = 0; j < n_cols; ++j) {
      if (rng.bernoulli(0.7)) entries.push_back({j, rng.uniform(-2, 2)});
    }
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    const double b = rng.uniform(-4, 6);
    if (kind == 0) m.add_row(-kInf, b, std::move(entries));
    else if (kind == 1) m.add_row(b - rng.uniform(0, 4), b, std::move(entries));
    else m.add_row(b, kInf, std::move(entries));
  }
  return m;
}

TEST_P(SimplexRandomTest, FeasibleAndNotBeatenBySampling) {
  elrr::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int n_cols = 2 + static_cast<int>(rng.uniform_int(0, 5));
  const int n_rows = 1 + static_cast<int>(rng.uniform_int(0, 6));
  const Model m = random_bounded_lp(rng, n_cols, n_rows);

  const auto r = solve(m);
  ASSERT_TRUE(r.status == LpStatus::kOptimal ||
              r.status == LpStatus::kInfeasible)
      << to_string(r.status);

  // Monte-Carlo feasible points.
  const double flip = m.sense() == Sense::kMaximize ? -1.0 : 1.0;
  double best_sampled = kInf;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(n_cols));
    for (int j = 0; j < n_cols; ++j) {
      x[static_cast<std::size_t>(j)] = rng.uniform(m.col(j).lo, m.col(j).hi);
    }
    if (m.max_infeasibility(x) < 1e-9) {
      best_sampled = std::min(best_sampled, flip * m.objective_value(x));
    }
  }

  if (r.status == LpStatus::kInfeasible) {
    EXPECT_EQ(best_sampled, kInf)
        << "solver said infeasible but sampling found a feasible point";
  } else {
    EXPECT_LE(m.max_infeasibility(r.x), 1e-6);
    EXPECT_LE(flip * r.objective, best_sampled + 1e-6)
        << "sampling found a better feasible point than 'optimal'";
  }
}

TEST_P(SimplexRandomTest, WarmResolveMatchesFresh) {
  elrr::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
  const int n_cols = 2 + static_cast<int>(rng.uniform_int(0, 4));
  const int n_rows = 1 + static_cast<int>(rng.uniform_int(0, 5));
  Model m = random_bounded_lp(rng, n_cols, n_rows);

  SimplexSolver warm(m);
  const auto first = warm.solve();
  if (first.status != LpStatus::kOptimal) return;

  // Tighten 1-2 random columns, exactly like branch & bound would.
  for (int k = 0; k < 2; ++k) {
    const int j = static_cast<int>(rng.uniform_int(0, n_cols - 1));
    const Column& c = m.col(j);
    const double mid = (c.lo + c.hi) / 2;
    if (rng.bernoulli(0.5)) {
      m.set_col_bounds(j, c.lo, mid);
      warm.set_col_bounds(j, c.lo, mid);
    } else {
      m.set_col_bounds(j, mid, c.hi);
      warm.set_col_bounds(j, mid, c.hi);
    }
  }
  const auto resolved = warm.resolve();
  const auto fresh = solve(m);
  ASSERT_EQ(resolved.status, fresh.status)
      << to_string(resolved.status) << " vs " << to_string(fresh.status);
  if (fresh.status == LpStatus::kOptimal) {
    EXPECT_NEAR(resolved.objective, fresh.objective, 1e-6);
    EXPECT_LE(m.max_infeasibility(resolved.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace elrr::lp
