* ElasticRR MILP export (MPS fixed format)
NAME          s208_min_cyc
ROWS
 N  OBJ
 L  clk_g0
 L  clk_g1
 L  clk_g2
 L  clk_g3
 L  clk_g4
 L  clk_g5
 L  clk_g6
 L  clk_g7
 G  path_0
 G  path_1
 G  path_2
 G  path_3
 G  path_4
 G  path_5
 G  path_6
 G  path_7
 G  path_8
 G  cut2_0
 G  cut2_1
 G  cut2_2
 G  cut2_3
 G  cut2_4
 G  cut2_5
 G  cut2_6
 G  cut2_7
 G  cut2_8
 G  cut3_0
 G  cut3_1
 G  cut3_2
 G  cut3_3
 G  cut3_4
 G  cut3_5
 G  cut3_6
 G  cut3_7
 G  cut3_8
 G  cut3_9
 G  rc_0
 G  rc_1
 G  rc_2
 G  rc_3
 G  rc_4
 G  rc_5
 G  rc_6
 G  rc_7
 G  rc_8
 G  thr5_0
 G  thr5_1
 G  thr5_2
 G  thr6_3
 G  thr10_3
 G  thr9_3
 G  thr5_4
 G  thr5_5
 G  thr5_6
 G  thr5_7
 G  thr6_8
 G  thr10_8
 G  thr9_8
 G  thr7_g7
 G  thr8_g7
COLUMNS
    tau  OBJ  1
    tau  clk_g0  -1
    tau  clk_g1  -1
    tau  clk_g2  -1
    tau  clk_g3  -1
    tau  clk_g4  -1
    tau  clk_g5  -1
    tau  clk_g6  -1
    tau  clk_g7  -1
    tau  cut2_0  1
    tau  cut2_1  1
    tau  cut2_2  1
    tau  cut2_3  1
    tau  cut2_4  1
    tau  cut2_5  1
    tau  cut2_6  1
    tau  cut2_7  1
    tau  cut2_8  1
    tau  cut3_0  1
    tau  cut3_1  1
    tau  cut3_2  1
    tau  cut3_3  1
    tau  cut3_4  1
    tau  cut3_5  1
    tau  cut3_6  1
    tau  cut3_7  1
    tau  cut3_8  1
    tau  cut3_9  1
    MARKER0  'MARKER'  'INTORG'
    R_0  path_0  96.88852685747969
    R_0  cut2_0  18.316355290949659
    R_0  cut3_0  34.857460547269952
    R_0  cut3_5  22.629557177049797
    R_0  rc_0  1
    R_0  thr5_0  -1
    R_1  path_1  96.88852685747969
    R_1  cut2_1  29.961546206663357
    R_1  cut3_0  34.857460547269952
    R_1  cut3_6  45.481696402406392
    R_1  cut3_7  41.631747105738768
    R_1  rc_1  1
    R_1  thr5_1  -1
    R_2  path_2  96.88852685747969
    R_2  cut2_2  32.061255452063328
    R_2  cut3_1  43.731456351138732
    R_2  cut3_6  45.481696402406392
    R_2  rc_2  1
    R_2  thr5_2  -1
    R_3  path_3  96.88852685747969
    R_3  cut2_3  27.190351094818446
    R_3  cut3_1  43.731456351138732
    R_3  cut3_8  45.038412687551258
    R_3  rc_3  1
    R_3  thr6_3  -1
    R_4  path_4  96.88852685747969
    R_4  cut2_4  29.518262491808215
    R_4  cut3_4  42.197714228366557
    R_4  cut3_8  45.038412687551258
    R_4  cut3_9  46.059367748128508
    R_4  rc_4  1
    R_4  thr5_4  -1
    R_5  path_5  96.88852685747969
    R_5  cut2_5  30.527513329291146
    R_5  cut3_3  34.840715215391285
    R_5  cut3_4  42.197714228366557
    R_5  rc_5  1
    R_5  thr5_5  -1
    R_6  path_6  96.88852685747969
    R_6  cut2_6  16.992653622658477
    R_6  cut3_2  21.888567963265071
    R_6  cut3_3  34.840715215391285
    R_6  rc_6  1
    R_6  thr5_6  -1
    R_7  path_7  96.88852685747969
    R_7  cut2_7  9.2091162267067332
    R_7  cut3_2  21.888567963265071
    R_7  cut3_5  22.629557177049797
    R_7  rc_7  1
    R_7  thr5_7  -1
    R_8  path_8  96.88852685747969
    R_8  cut2_8  28.2113061553957
    R_8  cut3_7  41.631747105738768
    R_8  cut3_9  46.059367748128508
    R_8  rc_8  1
    R_8  thr6_8  -1
    MARKER1  'MARKER'  'INTEND'
    r_g0  rc_0  -1
    r_g0  rc_1  1
    r_g1  rc_2  -1
    r_g1  rc_3  1
    r_g2  rc_6  -1
    r_g2  rc_7  1
    r_g3  rc_5  -1
    r_g3  rc_6  1
    r_g4  rc_4  -1
    r_g4  rc_5  1
    r_g5  rc_0  1
    r_g5  rc_7  -1
    r_g6  rc_1  -1
    r_g6  rc_2  1
    r_g6  rc_8  1
    r_g7  rc_3  -1
    r_g7  rc_4  1
    r_g7  rc_8  -1
    t_g0  clk_g0  1
    t_g0  path_0  1
    t_g0  path_1  -1
    t_g1  clk_g1  1
    t_g1  path_2  1
    t_g1  path_3  -1
    t_g2  clk_g2  1
    t_g2  path_6  1
    t_g2  path_7  -1
    t_g3  clk_g3  1
    t_g3  path_5  1
    t_g3  path_6  -1
    t_g4  clk_g4  1
    t_g4  path_4  1
    t_g4  path_5  -1
    t_g5  clk_g5  1
    t_g5  path_0  -1
    t_g5  path_7  1
    t_g6  clk_g6  1
    t_g6  path_1  1
    t_g6  path_2  -1
    t_g6  path_8  -1
    t_g7  clk_g7  1
    t_g7  path_3  1
    t_g7  path_4  -1
    t_g7  path_8  1
    sg_g0  thr5_0  -1
    sg_g0  thr5_1  1
    sg_g1  thr5_2  -1
    sg_g1  thr6_3  1
    sg_g2  thr5_6  -1
    sg_g2  thr5_7  1
    sg_g3  thr5_5  -1
    sg_g3  thr5_6  1
    sg_g4  thr5_4  -1
    sg_g4  thr5_5  1
    sg_g5  thr5_0  1
    sg_g5  thr5_7  -1
    sg_g6  thr5_1  -1
    sg_g6  thr5_2  1
    sg_g6  thr6_8  1
    sg_g7  thr5_4  1
    sg_g7  thr7_g7  -1
    sg_g7  thr8_g7  1
    ss_g7  thr9_3  1
    ss_g7  thr9_8  1
    ss_g7  thr8_g7  -1
    ar_3  thr6_3  -1
    ar_3  thr10_3  1
    a0_3  thr10_3  -1
    a0_3  thr9_3  -1
    a0_3  thr7_g7  0.3954475083796819
    ar_8  thr6_8  -1
    ar_8  thr10_8  1
    a0_8  thr10_8  -1
    a0_8  thr9_8  -1
    a0_8  thr7_g7  0.6045524916203181
RHS
    RHS  path_0  13.420440950343064
    RHS  path_1  16.541105256320293
    RHS  path_2  15.520150195743037
    RHS  path_3  11.670200899075407
    RHS  path_4  17.848061592732808
    RHS  path_5  12.67945173655834
    RHS  path_6  4.3132018861001375
    RHS  path_7  4.8959143406065948
    RHS  path_8  11.670200899075407
    RHS  cut2_0  18.316355290949659
    RHS  cut2_1  29.961546206663357
    RHS  cut2_2  32.061255452063328
    RHS  cut2_3  27.190351094818446
    RHS  cut2_4  29.518262491808215
    RHS  cut2_5  30.527513329291146
    RHS  cut2_6  16.992653622658477
    RHS  cut2_7  9.2091162267067332
    RHS  cut2_8  28.2113061553957
    RHS  cut3_0  34.857460547269952
    RHS  cut3_1  43.731456351138732
    RHS  cut3_2  21.888567963265071
    RHS  cut3_3  34.840715215391285
    RHS  cut3_4  42.197714228366557
    RHS  cut3_5  22.629557177049797
    RHS  cut3_6  45.481696402406392
    RHS  cut3_7  41.631747105738768
    RHS  cut3_8  45.038412687551258
    RHS  cut3_9  46.059367748128508
    RHS  rc_2  1
    RHS  rc_4  1
    RHS  rc_5  1
    RHS  rc_7  1
    RHS  rc_8  1
    RHS  thr5_2  -1
    RHS  thr5_4  -1
    RHS  thr5_5  -1
    RHS  thr5_7  -1
    RHS  thr10_8  -1
BOUNDS
 LO BND  tau  17.848061592732808
 UP BND  tau  96.88852685747969
 PL BND  R_0
 PL BND  R_1
 PL BND  R_2
 PL BND  R_3
 PL BND  R_4
 PL BND  R_5
 PL BND  R_6
 PL BND  R_7
 PL BND  R_8
 FX BND  r_g0  0
 FR BND  r_g1
 FR BND  r_g2
 FR BND  r_g3
 FR BND  r_g4
 FR BND  r_g5
 FR BND  r_g6
 FR BND  r_g7
 LO BND  t_g0  13.420440950343064
 UP BND  t_g0  96.88852685747969
 LO BND  t_g1  15.520150195743037
 UP BND  t_g1  96.88852685747969
 LO BND  t_g2  4.3132018861001375
 UP BND  t_g2  96.88852685747969
 LO BND  t_g3  12.67945173655834
 UP BND  t_g3  96.88852685747969
 LO BND  t_g4  17.848061592732808
 UP BND  t_g4  96.88852685747969
 LO BND  t_g5  4.8959143406065948
 UP BND  t_g5  96.88852685747969
 LO BND  t_g6  16.541105256320293
 UP BND  t_g6  96.88852685747969
 LO BND  t_g7  11.670200899075407
 UP BND  t_g7  96.88852685747969
 FX BND  sg_g0  0
 FR BND  sg_g1
 FR BND  sg_g2
 FR BND  sg_g3
 FR BND  sg_g4
 FR BND  sg_g5
 FR BND  sg_g6
 FR BND  sg_g7
 FR BND  ss_g7
 FR BND  ar_3
 FR BND  a0_3
 FR BND  ar_8
 FR BND  a0_8
ENDATA
