* ElasticRR MILP export (MPS fixed format)
NAME          s420_min_cyc
ROWS
 N  OBJ
 L  clk_g0
 L  clk_g1
 L  clk_g2
 L  clk_g3
 L  clk_g4
 L  clk_g5
 L  clk_g6
 L  clk_g7
 G  path_0
 G  path_1
 G  path_2
 G  path_3
 G  path_4
 G  path_5
 G  path_6
 G  path_7
 G  path_8
 G  cut2_0
 G  cut2_1
 G  cut2_2
 G  cut2_3
 G  cut2_4
 G  cut2_5
 G  cut2_6
 G  cut2_7
 G  cut2_8
 G  cut3_0
 G  cut3_1
 G  cut3_2
 G  cut3_3
 G  cut3_4
 G  cut3_5
 G  cut3_6
 G  cut3_7
 G  cut3_8
 G  cut3_9
 G  rc_0
 G  rc_1
 G  rc_2
 G  rc_3
 G  rc_4
 G  rc_5
 G  rc_6
 G  rc_7
 G  rc_8
 G  thr5_0
 G  thr5_1
 G  thr5_2
 G  thr5_3
 G  thr5_4
 G  thr5_5
 G  thr6_6
 G  thr10_6
 G  thr9_6
 G  thr5_7
 G  thr6_8
 G  thr10_8
 G  thr9_8
 G  thr7_g5
 G  thr8_g5
COLUMNS
    tau  OBJ  1
    tau  clk_g0  -1
    tau  clk_g1  -1
    tau  clk_g2  -1
    tau  clk_g3  -1
    tau  clk_g4  -1
    tau  clk_g5  -1
    tau  clk_g6  -1
    tau  clk_g7  -1
    tau  cut2_0  1
    tau  cut2_1  1
    tau  cut2_2  1
    tau  cut2_3  1
    tau  cut2_4  1
    tau  cut2_5  1
    tau  cut2_6  1
    tau  cut2_7  1
    tau  cut2_8  1
    tau  cut3_0  1
    tau  cut3_1  1
    tau  cut3_2  1
    tau  cut3_3  1
    tau  cut3_4  1
    tau  cut3_5  1
    tau  cut3_6  1
    tau  cut3_7  1
    tau  cut3_8  1
    tau  cut3_9  1
    MARKER0  'MARKER'  'INTORG'
    R_0  path_0  102.51869665112345
    R_0  cut2_0  21.417534439890296
    R_0  cut3_4  40.4194909936917
    R_0  cut3_9  30.716445083447876
    R_0  rc_0  1
    R_0  thr5_0  -1
    R_1  path_1  102.51869665112345
    R_1  cut2_1  14.700425116442867
    R_1  cut3_3  26.659106223756083
    R_1  cut3_9  30.716445083447876
    R_1  rc_1  1
    R_1  thr5_1  -1
    R_2  path_2  102.51869665112345
    R_2  cut2_2  21.257591750870798
    R_2  cut3_2  32.349875110161662
    R_2  cut3_3  26.659106223756083
    R_2  rc_2  1
    R_2  thr5_2  -1
    R_3  path_3  102.51869665112345
    R_3  cut2_3  23.050964466604078
    R_3  cut3_2  32.349875110161662
    R_3  cut3_5  39.590641062935958
    R_3  rc_3  1
    R_3  thr5_3  -1
    R_4  path_4  102.51869665112345
    R_4  cut2_4  27.631959955622744
    R_4  cut3_0  40.841613906560966
    R_4  cut3_1  46.633916509424154
    R_4  cut3_5  39.590641062935958
    R_4  rc_4  1
    R_4  thr5_4  -1
    R_5  path_5  102.51869665112345
    R_5  cut2_5  29.749330547270105
    R_5  cut3_0  40.841613906560966
    R_5  cut3_8  48.751287101071512
    R_5  rc_5  1
    R_5  thr5_5  -1
    R_6  path_6  102.51869665112345
    R_6  cut2_6  32.211610504739625
    R_6  cut3_6  48.227630471744632
    R_6  cut3_8  48.751287101071512
    R_6  rc_6  1
    R_6  thr6_6  -1
    R_7  path_7  102.51869665112345
    R_7  cut2_7  35.017976520806414
    R_7  cut3_4  40.4194909936917
    R_7  cut3_6  48.227630471744632
    R_7  cut3_7  51.5576531171383
    R_7  rc_7  1
    R_7  thr5_7  -1
    R_8  path_8  102.51869665112345
    R_8  cut2_8  35.541633150133293
    R_8  cut3_1  46.633916509424154
    R_8  cut3_7  51.5576531171383
    R_8  rc_8  1
    R_8  thr6_8  -1
    MARKER1  'MARKER'  'INTEND'
    r_g0  rc_4  -1
    r_g0  rc_5  1
    r_g0  rc_8  1
    r_g1  rc_2  -1
    r_g1  rc_3  1
    r_g2  rc_1  -1
    r_g2  rc_2  1
    r_g3  rc_0  1
    r_g3  rc_7  -1
    r_g4  rc_3  -1
    r_g4  rc_4  1
    r_g5  rc_6  -1
    r_g5  rc_7  1
    r_g5  rc_8  -1
    r_g6  rc_5  -1
    r_g6  rc_6  1
    r_g7  rc_0  -1
    r_g7  rc_1  1
    t_g0  clk_g0  1
    t_g0  path_4  1
    t_g0  path_5  -1
    t_g0  path_8  -1
    t_g1  clk_g1  1
    t_g1  path_2  1
    t_g1  path_3  -1
    t_g2  clk_g2  1
    t_g2  path_1  1
    t_g2  path_2  -1
    t_g3  clk_g3  1
    t_g3  path_0  -1
    t_g3  path_7  1
    t_g4  clk_g4  1
    t_g4  path_3  1
    t_g4  path_4  -1
    t_g5  clk_g5  1
    t_g5  path_6  1
    t_g5  path_7  -1
    t_g5  path_8  1
    t_g6  clk_g6  1
    t_g6  path_5  1
    t_g6  path_6  -1
    t_g7  clk_g7  1
    t_g7  path_0  1
    t_g7  path_1  -1
    sg_g0  thr5_4  -1
    sg_g0  thr5_5  1
    sg_g0  thr6_8  1
    sg_g1  thr5_2  -1
    sg_g1  thr5_3  1
    sg_g2  thr5_1  -1
    sg_g2  thr5_2  1
    sg_g3  thr5_0  1
    sg_g3  thr5_7  -1
    sg_g4  thr5_3  -1
    sg_g4  thr5_4  1
    sg_g5  thr5_7  1
    sg_g5  thr7_g5  -1
    sg_g5  thr8_g5  1
    sg_g6  thr5_5  -1
    sg_g6  thr6_6  1
    sg_g7  thr5_0  -1
    sg_g7  thr5_1  1
    ss_g5  thr9_6  1
    ss_g5  thr9_8  1
    ss_g5  thr8_g5  -1
    ar_6  thr6_6  -1
    ar_6  thr10_6  1
    a0_6  thr10_6  -1
    a0_6  thr9_6  -1
    a0_6  thr7_g5  0.95686842786295812
    ar_8  thr6_8  -1
    ar_8  thr10_8  1
    a0_8  thr10_8  -1
    a0_8  thr9_8  -1
    a0_8  thr7_g5  0.043131572137041926
RHS
    RHS  path_0  5.4015144728852871
    RHS  path_1  9.29891064355758
    RHS  path_2  11.958681107313218
    RHS  path_3  11.09228335929086
    RHS  path_4  16.539676596331883
    RHS  path_5  13.209653950938222
    RHS  path_6  19.001956553801406
    RHS  path_7  16.016019967005008
    RHS  path_8  19.001956553801406
    RHS  cut2_0  21.417534439890296
    RHS  cut2_1  14.700425116442867
    RHS  cut2_2  21.257591750870798
    RHS  cut2_3  23.050964466604078
    RHS  cut2_4  27.631959955622744
    RHS  cut2_5  29.749330547270105
    RHS  cut2_6  32.211610504739625
    RHS  cut2_7  35.017976520806414
    RHS  cut2_8  35.541633150133293
    RHS  cut3_0  40.841613906560966
    RHS  cut3_1  46.633916509424154
    RHS  cut3_2  32.349875110161662
    RHS  cut3_3  26.659106223756083
    RHS  cut3_4  40.4194909936917
    RHS  cut3_5  39.590641062935958
    RHS  cut3_6  48.227630471744632
    RHS  cut3_7  51.5576531171383
    RHS  cut3_8  48.751287101071512
    RHS  cut3_9  30.716445083447876
    RHS  rc_5  1
    RHS  rc_6  1
    RHS  rc_8  1
    RHS  thr5_5  -1.25
    RHS  thr10_6  -1.25
    RHS  thr10_8  -1.25
    RHS  thr8_g5  -0.25
BOUNDS
 LO BND  tau  19.001956553801406
 UP BND  tau  102.51869665112345
 PL BND  R_0
 PL BND  R_1
 PL BND  R_2
 PL BND  R_3
 PL BND  R_4
 PL BND  R_5
 PL BND  R_6
 PL BND  R_7
 PL BND  R_8
 FX BND  r_g0  0
 FR BND  r_g1
 FR BND  r_g2
 FR BND  r_g3
 FR BND  r_g4
 FR BND  r_g5
 FR BND  r_g6
 FR BND  r_g7
 LO BND  t_g0  16.539676596331883
 UP BND  t_g0  102.51869665112345
 LO BND  t_g1  11.958681107313218
 UP BND  t_g1  102.51869665112345
 LO BND  t_g2  9.29891064355758
 UP BND  t_g2  102.51869665112345
 LO BND  t_g3  16.016019967005008
 UP BND  t_g3  102.51869665112345
 LO BND  t_g4  11.09228335929086
 UP BND  t_g4  102.51869665112345
 LO BND  t_g5  19.001956553801406
 UP BND  t_g5  102.51869665112345
 LO BND  t_g6  13.209653950938222
 UP BND  t_g6  102.51869665112345
 LO BND  t_g7  5.4015144728852871
 UP BND  t_g7  102.51869665112345
 FX BND  sg_g0  0
 FR BND  sg_g1
 FR BND  sg_g2
 FR BND  sg_g3
 FR BND  sg_g4
 FR BND  sg_g5
 FR BND  sg_g6
 FR BND  sg_g7
 FR BND  ss_g5
 FR BND  ar_6
 FR BND  a0_6
 FR BND  ar_8
 FR BND  a0_8
ENDATA
