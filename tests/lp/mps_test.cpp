/// \file mps_test.cpp
/// The MPS exporter: section structure, row typing, integer markers,
/// bound records, maximization handling, and name sanitization.

#include "lp/mps.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "core/opt.hpp"
#include "support/strings.hpp"

namespace elrr::lp {
namespace {

std::size_t count(const std::string& text, const std::string& needle) {
  std::size_t total = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++total;
  }
  return total;
}

Model small_model() {
  Model m;
  m.add_col(0.0, 4.0, 1.0, false, "x");
  m.add_col(0.0, kInf, 2.0, true, "y");
  m.add_col(-kInf, kInf, 0.0, false, "z");
  m.add_row(-kInf, 10.0, {{0, 1.0}, {1, 2.0}}, "cap");
  m.add_row(3.0, 3.0, {{0, 1.0}, {2, -1.0}}, "link");
  m.add_row(1.0, 5.0, {{1, 1.0}, {2, 1.0}}, "band");
  return m;
}

TEST(Mps, SectionsInOrder) {
  const std::string mps = to_mps(small_model(), "TINY");
  const std::size_t p_name = mps.find("NAME");
  const std::size_t p_rows = mps.find("\nROWS");
  const std::size_t p_cols = mps.find("\nCOLUMNS");
  const std::size_t p_rhs = mps.find("\nRHS");
  const std::size_t p_rng = mps.find("\nRANGES");
  const std::size_t p_bnd = mps.find("\nBOUNDS");
  const std::size_t p_end = mps.find("\nENDATA");
  ASSERT_NE(p_name, std::string::npos);
  EXPECT_LT(p_name, p_rows);
  EXPECT_LT(p_rows, p_cols);
  EXPECT_LT(p_cols, p_rhs);
  EXPECT_LT(p_rhs, p_rng);
  EXPECT_LT(p_rng, p_bnd);
  EXPECT_LT(p_bnd, p_end);
}

TEST(Mps, RowTypes) {
  const std::string mps = to_mps(small_model());
  EXPECT_NE(mps.find(" N  OBJ"), std::string::npos);
  EXPECT_NE(mps.find(" L  cap"), std::string::npos);
  EXPECT_NE(mps.find(" E  link"), std::string::npos);
  EXPECT_NE(mps.find(" L  band"), std::string::npos);  // ranged as L+RANGES
  EXPECT_NE(mps.find("RNG  band  4"), std::string::npos);  // 5 - 1
}

TEST(Mps, IntegerMarkersWrapIntegerColumns) {
  const std::string mps = to_mps(small_model());
  EXPECT_EQ(count(mps, "'INTORG'"), 1u);
  EXPECT_EQ(count(mps, "'INTEND'"), 1u);
  const std::size_t org = mps.find("'INTORG'");
  const std::size_t y = mps.find("\n    y  ");
  const std::size_t end = mps.find("'INTEND'");
  EXPECT_LT(org, y);
  EXPECT_LT(y, end);
}

TEST(Mps, BoundRecords) {
  const std::string mps = to_mps(small_model());
  EXPECT_NE(mps.find(" UP BND  x  4"), std::string::npos);
  EXPECT_NE(mps.find(" PL BND  y"), std::string::npos);  // integer, no cap
  EXPECT_NE(mps.find(" FR BND  z"), std::string::npos);
}

TEST(Mps, MaximizationNegatesObjective) {
  Model m;
  m.set_sense(Sense::kMaximize);
  m.add_col(0.0, 1.0, 3.0, false, "x");
  m.add_row(-kInf, 1.0, {{0, 1.0}}, "r");
  const std::string mps = to_mps(m);
  EXPECT_NE(mps.find("negated"), std::string::npos);
  EXPECT_NE(mps.find("x  OBJ  -3"), std::string::npos);
}

TEST(Mps, SanitizesAndUniquifiesNames) {
  Model m;
  m.add_col(0.0, 1.0, 1.0, false, "a b");   // space -> _
  m.add_col(0.0, 1.0, 1.0, false, "a_b");   // collides after sanitize
  m.add_row(0.0, 1.0, {{0, 1.0}, {1, 1.0}}, "r$1");
  const std::string mps = to_mps(m);
  EXPECT_NE(mps.find("a_b"), std::string::npos);
  EXPECT_NE(mps.find("a_b_1"), std::string::npos);
  EXPECT_NE(mps.find("r_1"), std::string::npos);
  EXPECT_EQ(mps.find("$"), std::string::npos);
}

TEST(Mps, FixedColumnUsesFx) {
  Model m;
  m.add_col(2.5, 2.5, 1.0, false, "pinned");
  m.add_row(0.0, 10.0, {{0, 1.0}}, "r");
  const std::string mps = to_mps(m);
  EXPECT_NE(mps.find(" FX BND  pinned  2.5"), std::string::npos);
}

TEST(Mps, ExportsARealRrMilp) {
  // Smoke: the MIN_CYC model of the paper's running example exports
  // without blowing up and contains its integer buffer columns.
  // (build_rr_model is internal; drive it through the public min_cyc by
  // exporting the throughput LP instead -- representative structure.)
  const Rrg rrg = figures::figure1a(0.9);
  Model m;
  // A hand-built slice: tau column + path rows, as in opt.cpp.
  const int tau = m.add_col(1.0, 3.0, 1.0, false, "tau");
  const int r0 = m.add_col(0.0, kInf, 0.0, true, "R_0");
  m.add_row(1.0, kInf, {{tau, 1.0}, {r0, 3.0}}, "path");
  const std::string mps = to_mps(m, "RR");
  EXPECT_NE(mps.find("NAME          RR"), std::string::npos);
  EXPECT_NE(mps.find("G  path"), std::string::npos);
  EXPECT_GT(mps.size(), 100u);
}

}  // namespace
}  // namespace elrr::lp
