/// \file mps_test.cpp
/// The MPS exporter and parser: section structure, row typing, integer
/// markers, bound records, maximization handling, name sanitization,
/// from_mps round-trips, and the golden walk-step dumps (byte-exact
/// export + parse-back solving bit-identically to the in-memory MILP).

#include "lp/mps.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "bench89/generator.hpp"
#include "core/figures.hpp"
#include "core/opt.hpp"
#include "lp/milp.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr::lp {
namespace {

std::size_t count(const std::string& text, const std::string& needle) {
  std::size_t total = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++total;
  }
  return total;
}

Model small_model() {
  Model m;
  m.add_col(0.0, 4.0, 1.0, false, "x");
  m.add_col(0.0, kInf, 2.0, true, "y");
  m.add_col(-kInf, kInf, 0.0, false, "z");
  m.add_row(-kInf, 10.0, {{0, 1.0}, {1, 2.0}}, "cap");
  m.add_row(3.0, 3.0, {{0, 1.0}, {2, -1.0}}, "link");
  m.add_row(1.0, 5.0, {{1, 1.0}, {2, 1.0}}, "band");
  return m;
}

TEST(Mps, SectionsInOrder) {
  const std::string mps = to_mps(small_model(), "TINY");
  const std::size_t p_name = mps.find("NAME");
  const std::size_t p_rows = mps.find("\nROWS");
  const std::size_t p_cols = mps.find("\nCOLUMNS");
  const std::size_t p_rhs = mps.find("\nRHS");
  const std::size_t p_rng = mps.find("\nRANGES");
  const std::size_t p_bnd = mps.find("\nBOUNDS");
  const std::size_t p_end = mps.find("\nENDATA");
  ASSERT_NE(p_name, std::string::npos);
  EXPECT_LT(p_name, p_rows);
  EXPECT_LT(p_rows, p_cols);
  EXPECT_LT(p_cols, p_rhs);
  EXPECT_LT(p_rhs, p_rng);
  EXPECT_LT(p_rng, p_bnd);
  EXPECT_LT(p_bnd, p_end);
}

TEST(Mps, RowTypes) {
  const std::string mps = to_mps(small_model());
  EXPECT_NE(mps.find(" N  OBJ"), std::string::npos);
  EXPECT_NE(mps.find(" L  cap"), std::string::npos);
  EXPECT_NE(mps.find(" E  link"), std::string::npos);
  EXPECT_NE(mps.find(" L  band"), std::string::npos);  // ranged as L+RANGES
  EXPECT_NE(mps.find("RNG  band  4"), std::string::npos);  // 5 - 1
}

TEST(Mps, IntegerMarkersWrapIntegerColumns) {
  const std::string mps = to_mps(small_model());
  EXPECT_EQ(count(mps, "'INTORG'"), 1u);
  EXPECT_EQ(count(mps, "'INTEND'"), 1u);
  const std::size_t org = mps.find("'INTORG'");
  const std::size_t y = mps.find("\n    y  ");
  const std::size_t end = mps.find("'INTEND'");
  EXPECT_LT(org, y);
  EXPECT_LT(y, end);
}

TEST(Mps, BoundRecords) {
  const std::string mps = to_mps(small_model());
  EXPECT_NE(mps.find(" UP BND  x  4"), std::string::npos);
  EXPECT_NE(mps.find(" PL BND  y"), std::string::npos);  // integer, no cap
  EXPECT_NE(mps.find(" FR BND  z"), std::string::npos);
}

TEST(Mps, MaximizationNegatesObjective) {
  Model m;
  m.set_sense(Sense::kMaximize);
  m.add_col(0.0, 1.0, 3.0, false, "x");
  m.add_row(-kInf, 1.0, {{0, 1.0}}, "r");
  const std::string mps = to_mps(m);
  EXPECT_NE(mps.find("negated"), std::string::npos);
  EXPECT_NE(mps.find("x  OBJ  -3"), std::string::npos);
}

TEST(Mps, SanitizesAndUniquifiesNames) {
  Model m;
  m.add_col(0.0, 1.0, 1.0, false, "a b");   // space -> _
  m.add_col(0.0, 1.0, 1.0, false, "a_b");   // collides after sanitize
  m.add_row(0.0, 1.0, {{0, 1.0}, {1, 1.0}}, "r$1");
  const std::string mps = to_mps(m);
  EXPECT_NE(mps.find("a_b"), std::string::npos);
  EXPECT_NE(mps.find("a_b_1"), std::string::npos);
  EXPECT_NE(mps.find("r_1"), std::string::npos);
  EXPECT_EQ(mps.find("$"), std::string::npos);
}

TEST(Mps, FixedColumnUsesFx) {
  Model m;
  m.add_col(2.5, 2.5, 1.0, false, "pinned");
  m.add_row(0.0, 10.0, {{0, 1.0}}, "r");
  const std::string mps = to_mps(m);
  EXPECT_NE(mps.find(" FX BND  pinned  2.5"), std::string::npos);
}

TEST(Mps, ExportsARealRrMilp) {
  // Smoke: the MIN_CYC model of the paper's running example exports
  // without blowing up and contains its integer buffer columns.
  // (build_rr_model is internal; drive it through the public min_cyc by
  // exporting the throughput LP instead -- representative structure.)
  const Rrg rrg = figures::figure1a(0.9);
  Model m;
  // A hand-built slice: tau column + path rows, as in opt.cpp.
  const int tau = m.add_col(1.0, 3.0, 1.0, false, "tau");
  const int r0 = m.add_col(0.0, kInf, 0.0, true, "R_0");
  m.add_row(1.0, kInf, {{tau, 1.0}, {r0, 3.0}}, "path");
  const std::string mps = to_mps(m, "RR");
  EXPECT_NE(mps.find("NAME          RR"), std::string::npos);
  EXPECT_NE(mps.find("G  path"), std::string::npos);
  EXPECT_GT(mps.size(), 100u);
}

// ---------------------------------------------------------------- parser

/// Structural equality after a round-trip (names sanitized, so compare
/// everything except raw names via the re-serialized document).
void expect_same_model(const Model& a, const Model& b) {
  ASSERT_EQ(a.num_cols(), b.num_cols());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.sense(), b.sense());
  for (int j = 0; j < a.num_cols(); ++j) {
    EXPECT_EQ(a.col(j).lo, b.col(j).lo) << "col " << j;
    EXPECT_EQ(a.col(j).hi, b.col(j).hi) << "col " << j;
    EXPECT_EQ(a.col(j).obj, b.col(j).obj) << "col " << j;
    EXPECT_EQ(a.col(j).is_integer, b.col(j).is_integer) << "col " << j;
  }
  for (int i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.row(i).lo, b.row(i).lo) << "row " << i;
    EXPECT_EQ(a.row(i).hi, b.row(i).hi) << "row " << i;
    ASSERT_EQ(a.row(i).entries.size(), b.row(i).entries.size()) << "row " << i;
    for (std::size_t k = 0; k < a.row(i).entries.size(); ++k) {
      EXPECT_EQ(a.row(i).entries[k].col, b.row(i).entries[k].col);
      EXPECT_EQ(a.row(i).entries[k].coef, b.row(i).entries[k].coef);
    }
  }
}

TEST(Mps, RoundTripPreservesTheModel) {
  const Model original = small_model();
  const std::string mps = to_mps(original, "TINY");
  const Model parsed = from_mps(mps);
  expect_same_model(original, parsed);
  // Re-serialization is byte-identical: the parser recovered every shape
  // decision the writer made (row typing, ranges, bound records).
  EXPECT_EQ(to_mps(parsed, "TINY"), mps);
}

TEST(Mps, RoundTripRestoresMaximization) {
  Model m;
  m.set_sense(Sense::kMaximize);
  m.add_col(0.0, 1.0, 3.0, false, "x");
  m.add_col(0.0, kInf, -0.5, true, "n");
  m.add_row(-kInf, 1.0, {{0, 1.0}, {1, 2.0}}, "r");
  const std::string mps = to_mps(m, "MAX");
  const Model parsed = from_mps(mps);
  EXPECT_EQ(parsed.sense(), Sense::kMaximize);
  EXPECT_EQ(parsed.col(0).obj, 3.0);  // un-negated back to the true sense
  EXPECT_EQ(parsed.col(1).obj, -0.5);
  EXPECT_EQ(to_mps(parsed, "MAX"), mps);
}

TEST(Mps, ParseErrorsCarryTheLineNumber) {
  // A data line before any section header.
  EXPECT_THROW(from_mps(" x  OBJ  1\nENDATA\n"), InvalidInputError);
  try {
    from_mps("ROWS\n N  OBJ\n Z  bad\n");
    FAIL() << "expected InvalidInputError";
  } catch (const InvalidInputError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  // Truncated document: missing ENDATA is an error, not an empty model.
  EXPECT_THROW(from_mps("ROWS\n N  OBJ\nCOLUMNS\n"), InvalidInputError);
  // Entries against a row never declared.
  EXPECT_THROW(from_mps("ROWS\n N  OBJ\nCOLUMNS\n    x  ghost  1\nENDATA\n"),
               InvalidInputError);
}

// ------------------------------------------------------- golden walk steps

std::string read_golden(const std::string& file) {
  std::ifstream in(std::string(ELRR_LP_GOLDEN_DIR) + "/" + file);
  EXPECT_TRUE(in.good()) << "missing golden file " << file;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct GoldenCase {
  const char* circuit;
  double x;
  const char* file;
};

// Two Pareto-walk-step MILPs (build_min_cyc_model is bit-identical to
// the model a walk step at this x solves): a first step at x = 1 and a
// mid-walk step at x = 1.25. Regenerate with lp::to_mps after any
// deliberate model change -- a diff here means every committed frontier
// moved too.
const GoldenCase kGolden[] = {
    {"s208", 1.0, "s208_min_cyc_x1.mps"},
    {"s420", 1.25, "s420_min_cyc_x1.25.mps"},
};

TEST(Mps, GoldenWalkStepDumpsAreByteExact) {
  for (const GoldenCase& g : kGolden) {
    const Rrg rrg =
        bench89::make_table2_rrg(bench89::spec_by_name(g.circuit), 1);
    const lp::Model model = build_min_cyc_model(rrg, g.x);
    EXPECT_EQ(to_mps(model, std::string(g.circuit) + "_min_cyc"),
              read_golden(g.file))
        << g.file;
  }
}

TEST(Mps, GoldenParsesBackToTheSameMilp) {
  // The differential that makes the dumps trustworthy: the parsed-back
  // model solves to the same status, objective and incumbent point as
  // the in-memory walk-step model, bit for bit.
  for (const GoldenCase& g : kGolden) {
    const Rrg rrg =
        bench89::make_table2_rrg(bench89::spec_by_name(g.circuit), 1);
    const lp::Model built = build_min_cyc_model(rrg, g.x);
    const lp::Model parsed = from_mps(read_golden(g.file));
    expect_same_model(built, parsed);

    MilpOptions options;
    options.time_limit_s = 60.0;
    const MilpResult a = solve_milp(built, options);
    const MilpResult b = solve_milp(parsed, options);
    ASSERT_EQ(a.status, MilpStatus::kOptimal) << g.circuit;
    ASSERT_EQ(b.status, MilpStatus::kOptimal) << g.circuit;
    EXPECT_EQ(a.objective, b.objective) << g.circuit;
    ASSERT_EQ(a.x.size(), b.x.size());
    for (std::size_t j = 0; j < a.x.size(); ++j) {
      EXPECT_EQ(a.x[j], b.x[j]) << g.circuit << " col " << j;
    }
  }
}

}  // namespace
}  // namespace elrr::lp
