/// \file session_test.cpp
/// The persistent MILP session's exactness contract: warm-off solves are
/// bit-identical to stateless solve_milp, warm-on solves are pinned to
/// the cold path across bound sweeps and full Pareto walks (frontier and
/// argmin, all MILPs proven exact), and the `milp.warm` fail point is
/// contained inside the session -- a corrupt basis snapshot degrades to
/// a cold solve without changing a single bit of the results.

#include "lp/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>

#include "bench89/generator.hpp"
#include "core/opt.hpp"
#include "lp/milp.hpp"
#include "support/failpoint.hpp"

namespace elrr::lp {
namespace {

/// A real walk-step MILP (the s208 MIN_CYC model at x = 1): small enough
/// that every solve proves optimality, rich enough to exercise the
/// integer machinery (39 columns, 60 rows, integral buffer counts).
Model step_model(const char* circuit = "s208", double x = 1.0) {
  const Rrg rrg =
      bench89::make_table2_rrg(bench89::spec_by_name(circuit), 1);
  return build_min_cyc_model(rrg, x);
}

void expect_same_result(const MilpResult& a, const MilpResult& b,
                        const char* what) {
  ASSERT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.objective, b.objective) << what;
  ASSERT_EQ(a.x.size(), b.x.size()) << what;
  for (std::size_t j = 0; j < a.x.size(); ++j) {
    EXPECT_EQ(a.x[j], b.x[j]) << what << " col " << j;
  }
}

/// The bound sweep both differential tests drive: a handful of row-bound
/// retargets on the same rows a Pareto walk's x-parameterization moves.
const double kSweep[] = {1.0, 1.1, 1.3, 1.15, 2.0, 1.05};

TEST(MilpSession, WarmOffIsBitIdenticalToSolveMilp) {
  Model reference = step_model();
  MilpSession session(step_model());
  session.set_warm(false);
  for (const double scale : kSweep) {
    // Retarget a few G rows the way solve_rr_session retargets the
    // x-dependent throughput rows.
    for (int i = 0; i < reference.num_rows(); i += 7) {
      const double lo = reference.row(i).lo;
      if (!std::isfinite(lo) || lo == reference.row(i).hi) continue;
      reference.set_row_bounds(i, lo - (scale - 1.0), reference.row(i).hi);
      session.set_row_bounds(i, lo - (scale - 1.0), reference.row(i).hi);
    }
    expect_same_result(session.solve(), solve_milp(reference), "warm-off");
  }
  EXPECT_EQ(session.stats().solves, static_cast<std::int64_t>(std::size(kSweep)));
  EXPECT_EQ(session.stats().warm_attempts, 0);
  EXPECT_EQ(session.stats().cold_solves, session.stats().solves);
}

TEST(MilpSession, WarmSolvesMatchColdAcrossABoundSweep) {
  // What warm starts are allowed to change: the *vertex* the simplex
  // lands on among tied/degenerate optima, i.e. low bits of continuous
  // coordinates and the objective's last ulp. What they must preserve:
  // proven optimality and every integer decision, bit for bit -- the
  // walk recomputes tau/theta/xi from the integral buffer counts, which
  // is how the walk-level differentials below get full bit-identity.
  Model reference = step_model();
  MilpSession session(step_model());  // warm on by default
  for (const double scale : kSweep) {
    for (int i = 0; i < reference.num_rows(); i += 7) {
      const double lo = reference.row(i).lo;
      if (!std::isfinite(lo) || lo == reference.row(i).hi) continue;
      reference.set_row_bounds(i, lo - (scale - 1.0), reference.row(i).hi);
      session.set_row_bounds(i, lo - (scale - 1.0), reference.row(i).hi);
    }
    const MilpResult warm = session.solve();
    const MilpResult cold = solve_milp(reference);
    ASSERT_EQ(warm.status, MilpStatus::kOptimal);
    ASSERT_EQ(cold.status, MilpStatus::kOptimal);
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-9 * (1.0 + std::abs(cold.objective)));
    ASSERT_EQ(warm.x.size(), cold.x.size());
    for (std::size_t j = 0; j < warm.x.size(); ++j) {
      if (session.model().col(static_cast<int>(j)).is_integer) {
        EXPECT_EQ(warm.x[j], cold.x[j]) << "integer col " << j;
      }
    }
  }
  // The sweep must actually have exercised the warm path, or this test
  // proves nothing.
  EXPECT_GT(session.stats().warm_attempts, 0);
  EXPECT_GT(session.stats().warm_roots, 0);
  EXPECT_EQ(session.stats().warm_fallbacks, 0);
}

TEST(MilpSession, InvalidateWarmForcesAColdSolve) {
  MilpSession session(step_model());
  (void)session.solve();
  const std::int64_t cold_before = session.stats().cold_solves;
  session.invalidate_warm();
  expect_same_result(session.solve(), solve_milp(session.model()),
                     "post-invalidate");
  EXPECT_EQ(session.stats().cold_solves, cold_before + 1);
}

TEST(MilpSession, WarmFailPointFallsBackToAColdSolveInvisibly) {
  failpoint::configure("milp.warm=once");
  MilpSession session(step_model());
  const MilpResult first = session.solve();   // no warm state yet: cold
  const MilpResult second = session.solve();  // warm restore trips -> cold
  const MilpResult third = session.solve();   // warm path healthy again
  failpoint::reset();
  expect_same_result(first, second, "fallback solve");
  expect_same_result(first, third, "recovered solve");
  EXPECT_GE(session.stats().warm_fallbacks, 1);
  expect_same_result(first, solve_milp(session.model()), "vs stateless");
}

// ------------------------------------------------- walk-level differential

OptOptions walk_options(bool warm) {
  OptOptions options;
  options.epsilon = 0.05;
  options.milp.time_limit_s = 30.0;  // never reached on these circuits
  options.milp_warm = warm;
  return options;
}

void expect_same_frontier(const MinEffCycResult& warm,
                          const MinEffCycResult& cold, const char* circuit) {
  // all_exact is the precondition of the bit-identity contract: a
  // budget-hit MILP returns a wall-clock-dependent incumbent and the
  // comparison below would be meaningless (see src/lp/README.md).
  ASSERT_TRUE(warm.all_exact) << circuit;
  ASSERT_TRUE(cold.all_exact) << circuit;
  ASSERT_EQ(warm.points.size(), cold.points.size()) << circuit;
  EXPECT_EQ(warm.best_index, cold.best_index) << circuit;
  EXPECT_EQ(warm.milp_calls, cold.milp_calls) << circuit;
  for (std::size_t i = 0; i < warm.points.size(); ++i) {
    EXPECT_EQ(warm.points[i].tau, cold.points[i].tau) << circuit << " #" << i;
    EXPECT_EQ(warm.points[i].theta_lp, cold.points[i].theta_lp)
        << circuit << " #" << i;
    EXPECT_EQ(warm.points[i].xi_lp, cold.points[i].xi_lp)
        << circuit << " #" << i;
    EXPECT_TRUE(warm.points[i].config == cold.points[i].config)
        << circuit << " #" << i;
  }
}

TEST(MilpSession, WarmWalksAreBitIdenticalToColdWalks) {
  for (const char* circuit : {"s838", "s208", "s420"}) {
    const Rrg rrg =
        bench89::make_table2_rrg(bench89::spec_by_name(circuit), 1);
    const MinEffCycResult warm = min_eff_cyc(rrg, walk_options(true));
    const MinEffCycResult cold = min_eff_cyc(rrg, walk_options(false));
    expect_same_frontier(warm, cold, circuit);
  }
}

TEST(MilpSession, WarmWalkActuallyRunsWarm) {
  // Guard against the differential above silently comparing cold to
  // cold: a warm walk's session must report warm re-optimizations.
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s420"), 1);
  ParetoWalk walk(rrg, walk_options(true));
  while (walk.advance()) {
  }
  const SessionStats stats = walk.milp_stats();
  EXPECT_GT(stats.solves, 1);
  EXPECT_GT(stats.warm_attempts, 0);
  EXPECT_GT(stats.warm_roots, 0);

  ParetoWalk cold_walk(rrg, walk_options(false));
  while (cold_walk.advance()) {
  }
  EXPECT_EQ(cold_walk.milp_stats().warm_attempts, 0);
}

TEST(MilpSession, WalkSurvivesWarmFailPointsBitExactly) {
  // The fail point models stale/corrupt basis snapshots mid-walk; the
  // session absorbs every trip and the frontier must not move at all.
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s208"), 1);
  const MinEffCycResult oracle = min_eff_cyc(rrg, walk_options(false));

  failpoint::configure("milp.warm=once");
  ParetoWalk walk(rrg, walk_options(true));
  while (walk.advance()) {
  }
  const MinEffCycResult chaotic = walk.finish();
  const SessionStats stats = walk.milp_stats();
  failpoint::reset();

  EXPECT_GE(stats.warm_fallbacks, 1)
      << stats.warm_attempts
      << " warm attempts and the fail point never fired -- not wired";
  expect_same_frontier(chaotic, oracle, "s208 under milp.warm chaos");
}

}  // namespace
}  // namespace elrr::lp
