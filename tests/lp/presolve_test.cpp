/// \file presolve_test.cpp
/// The presolve reductions: fixed-column substitution, singleton-row
/// tightening (with integer rounding), infeasibility detection, solution
/// lifting, and end-to-end equivalence with direct solves on random
/// MILPs.

#include "lp/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/milp.hpp"
#include "support/rng.hpp"

namespace elrr::lp {
namespace {

TEST(Presolve, FixedColumnsSubstituteIntoRowsAndObjective) {
  Model m;
  const int x = m.add_col(2.0, 2.0, 3.0, false, "x");  // pinned to 2
  const int y = m.add_col(0.0, 10.0, 1.0, false, "y");
  const int z = m.add_col(0.0, 10.0, 0.0, false, "z");
  m.add_row(5.0, kInf, {{x, 1.0}, {y, 1.0}}, "r");  // y >= 3 after subst
  m.add_row(-kInf, 8.0, {{y, 1.0}, {z, 1.0}}, "keep");  // stays 2-wide
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.cols_removed, 1);
  EXPECT_EQ(pre.reduced.num_cols(), 2);
  EXPECT_DOUBLE_EQ(pre.obj_offset, 6.0);  // 3 * 2
  EXPECT_EQ(pre.col_map[static_cast<std::size_t>(x)], -1);
  EXPECT_EQ(pre.col_map[static_cast<std::size_t>(y)], 0);
  // Row "r" collapsed into the bound y >= 3; "keep" survived intact.
  ASSERT_EQ(pre.reduced.num_rows(), 1);
  EXPECT_DOUBLE_EQ(pre.reduced.col(0).lo, 3.0);
  EXPECT_DOUBLE_EQ(pre.reduced.row(0).hi, 8.0);
}

TEST(Presolve, SingletonRowsBecomeBounds) {
  Model m;
  const int x = m.add_col(0.0, 100.0, 1.0, false, "x");
  m.add_row(-kInf, 7.0, {{x, 2.0}}, "ub");   // x <= 3.5
  m.add_row(2.0, kInf, {{x, 1.0}}, "lb");    // x >= 2
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.rows_removed, 2);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_DOUBLE_EQ(pre.reduced.col(0).lo, 2.0);
  EXPECT_DOUBLE_EQ(pre.reduced.col(0).hi, 3.5);
}

TEST(Presolve, NegativeCoefficientSingletonFlipsBounds) {
  Model m;
  m.add_col(-kInf, kInf, 1.0, false, "x");
  m.add_row(-6.0, 4.0, {{0, -2.0}}, "r");  // -6 <= -2x <= 4 -> x in [-2, 3]
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_DOUBLE_EQ(pre.reduced.col(0).lo, -2.0);
  EXPECT_DOUBLE_EQ(pre.reduced.col(0).hi, 3.0);
}

TEST(Presolve, IntegerSingletonRoundsInward) {
  Model m;
  m.add_col(0.0, 100.0, 1.0, true, "n");
  m.add_row(2.3, 5.7, {{0, 1.0}}, "band");  // n in {3, 4, 5}
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_DOUBLE_EQ(pre.reduced.col(0).lo, 3.0);
  EXPECT_DOUBLE_EQ(pre.reduced.col(0).hi, 5.0);
}

TEST(Presolve, DetectsInfeasibility) {
  {
    Model m;  // empty integer band
    m.add_col(0.0, 10.0, 1.0, true, "n");
    m.add_row(2.2, 2.8, {{0, 1.0}}, "r");
    EXPECT_TRUE(presolve(m).infeasible);
  }
  {
    Model m;  // contradictory singletons
    m.add_col(0.0, 10.0, 1.0, false, "x");
    m.add_row(-kInf, 2.0, {{0, 1.0}}, "ub");
    m.add_row(5.0, kInf, {{0, 1.0}}, "lb");
    EXPECT_TRUE(presolve(m).infeasible);
  }
  {
    Model m;  // fixed column breaks a row that then empties
    m.add_col(1.0, 1.0, 0.0, false, "x");
    m.add_row(3.0, kInf, {{0, 1.0}}, "r");  // 1 >= 3: false
    EXPECT_TRUE(presolve(m).infeasible);
  }
  {
    Model m;  // integer pinned to a fraction
    m.add_col(1.5, 1.5, 0.0, true, "n");
    m.add_row(0.0, kInf, {{0, 1.0}}, "r");
    EXPECT_TRUE(presolve(m).infeasible);
  }
}

TEST(Presolve, CascadeReachesFixpoint) {
  // x = 4 (singleton equality) pins x; substitution turns the second
  // row into a singleton on y, which pins y; everything collapses.
  Model m;
  const int x = m.add_col(0.0, 10.0, 1.0, false, "x");
  const int y = m.add_col(0.0, 10.0, 2.0, false, "y");
  m.add_row(4.0, 4.0, {{x, 1.0}}, "fix_x");
  m.add_row(9.0, 9.0, {{x, 1.0}, {y, 1.0}}, "sum");
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.reduced.num_cols(), 0);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_DOUBLE_EQ(pre.obj_offset, 4.0 + 2.0 * 5.0);
  const std::vector<double> x_full = pre.lift({});
  EXPECT_DOUBLE_EQ(x_full[static_cast<std::size_t>(x)], 4.0);
  EXPECT_DOUBLE_EQ(x_full[static_cast<std::size_t>(y)], 5.0);
}

TEST(Presolve, SolveMilpWithPresolveMatchesDirect) {
  Model m;
  const int x = m.add_col(0.0, 4.0, -3.0, true, "x");
  const int y = m.add_col(1.0, 1.0, 2.0, false, "y");  // pinned
  const int z = m.add_col(0.0, kInf, 1.0, false, "z");
  m.add_row(-kInf, 5.0, {{x, 1.0}, {y, 1.0}, {z, 1.0}}, "cap");
  m.add_row(1.0, kInf, {{z, 1.0}, {x, 0.5}}, "floor");
  MilpOptions with;
  with.presolve = true;
  const MilpResult a = solve_milp(m, with);
  const MilpResult b = solve_milp(m);
  ASSERT_EQ(a.status, MilpStatus::kOptimal);
  ASSERT_EQ(b.status, MilpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
  ASSERT_EQ(a.x.size(), 3u);
  EXPECT_NEAR(a.x[static_cast<std::size_t>(y)], 1.0, 1e-12);
  EXPECT_NEAR(m.max_infeasibility(a.x), 0.0, 1e-7);
  (void)x;
  (void)z;
}

class PresolveRandom : public ::testing::TestWithParam<int> {};

TEST_P(PresolveRandom, EquivalentToDirectSolve) {
  elrr::Rng rng(static_cast<std::uint64_t>(GetParam()) * 3571 + 29);
  Model m;
  const int n = 4 + static_cast<int>(rng.uniform_int(0, 4));
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-3.0, 1.0);
    const bool pin = rng.bernoulli(0.25);
    m.add_col(pin ? std::round(lo) : lo,
              pin ? std::round(lo) : lo + rng.uniform(0.5, 6.0),
              rng.uniform(-2.0, 2.0), rng.bernoulli(0.4));
  }
  const int rows = 3 + static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < rows; ++i) {
    std::vector<ColEntry> entries;
    const int width = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int k = 0; k < width; ++k) {
      entries.push_back({static_cast<int>(rng.uniform_int(0, n - 1)),
                         rng.uniform(-2.0, 2.0)});
    }
    const double mid = rng.uniform(-4.0, 4.0);
    m.add_row(mid - rng.uniform(0.0, 5.0), mid + rng.uniform(0.0, 5.0),
              std::move(entries));
  }
  MilpOptions with;
  with.presolve = true;
  const MilpResult a = solve_milp(m, with);
  const MilpResult b = solve_milp(m);
  EXPECT_EQ(a.has_solution(), b.has_solution()) << "seed " << GetParam();
  if (a.has_solution() && b.has_solution()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << GetParam();
    EXPECT_LE(m.max_infeasibility(a.x), 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveRandom, ::testing::Range(0, 40));

}  // namespace
}  // namespace elrr::lp
