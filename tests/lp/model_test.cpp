#include "lp/model.hpp"

#include <gtest/gtest.h>

namespace elrr::lp {
namespace {

TEST(Model, AddColsAndRows) {
  Model m;
  const int x = m.add_col(0, 10, 1.0, false, "x");
  const int y = m.add_col(-kInf, kInf, -2.0, true, "y");
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  const int r = m.add_row(-kInf, 5.0, {{x, 1.0}, {y, 2.0}}, "cap");
  EXPECT_EQ(r, 0);
  EXPECT_EQ(m.num_cols(), 2);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_TRUE(m.has_integers());
  m.validate();
}

TEST(Model, MergesDuplicateEntries) {
  Model m;
  const int x = m.add_col(0, 1, 0.0);
  m.add_row(0, 1, {{x, 1.0}, {x, 2.0}});
  ASSERT_EQ(m.row(0).entries.size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(0).entries[0].coef, 3.0);
}

TEST(Model, DropsCancelledEntries) {
  Model m;
  const int x = m.add_col(0, 1, 0.0);
  const int y = m.add_col(0, 1, 0.0);
  m.add_row(0, 1, {{x, 1.0}, {x, -1.0}, {y, 1.0}});
  ASSERT_EQ(m.row(0).entries.size(), 1u);
  EXPECT_EQ(m.row(0).entries[0].col, y);
}

TEST(Model, RejectsBadInput) {
  Model m;
  EXPECT_THROW(m.add_col(2, 1, 0.0), elrr::Error);  // empty bounds
  const int x = m.add_col(0, 1, 0.0);
  EXPECT_THROW(m.add_row(0, 1, {{x + 5, 1.0}}), elrr::Error);
  EXPECT_THROW(m.add_row(3, 2, {{x, 1.0}}), elrr::Error);
  EXPECT_THROW(m.set_col_bounds(x, 5, 4), elrr::Error);
}

TEST(Model, ObjectiveValueAndInfeasibility) {
  Model m;
  const int x = m.add_col(0, 2, 3.0);
  const int y = m.add_col(0, 2, 1.0, true);
  m.add_row(1, 2, {{x, 1.0}, {y, 1.0}});
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 1.0}), 4.0);
  EXPECT_NEAR(m.max_infeasibility({1.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(m.max_infeasibility({0.0, 0.0}), 1.0, 1e-12);  // row lo
  EXPECT_NEAR(m.max_infeasibility({3.0, 0.0}), 1.0, 1e-12);  // col hi + row
  EXPECT_NEAR(m.max_infeasibility({0.5, 0.5}), 0.5, 1e-12);  // integrality
}

TEST(Model, LpFormatRendering) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_col(0, 4, 2.0, true, "x");
  m.add_col(0, kInf, -1.0, false, "y");
  m.add_row(-kInf, 7.0, {{x, 3.0}}, "r0");
  const std::string text = m.to_lp_format();
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("r0.hi"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find(" x"), std::string::npos);
}

}  // namespace
}  // namespace elrr::lp
