/// \file stress_test.cpp
/// Adversarial instances for the simplex engine: Beale's classical
/// cycling example (exercises the Bland fallback), Klee-Minty cubes
/// (worst case for Dantzig pricing), big-M coefficient ranges like the
/// retiming path constraints, and network LPs whose optima must match a
/// combinatorial shortest-path oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/bellman_ford.hpp"
#include "graph/digraph.hpp"
#include "lp/milp.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace elrr::lp {
namespace {

using graph::EdgeId;
using graph::NodeId;

TEST(SimplexStress, BealeCyclingExample) {
  // Beale (1955): cycles forever under naive Dantzig pricing without an
  // anti-cycling rule. min -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7, optimum
  // -0.05 at x4 = 0.04 ... x7 = 1 (textbook statement with slacks x1-x3).
  Model m;
  const int x4 = m.add_col(0.0, kInf, -0.75);
  const int x5 = m.add_col(0.0, kInf, 150.0);
  const int x6 = m.add_col(0.0, kInf, -0.02);
  const int x7 = m.add_col(0.0, kInf, 6.0);
  m.add_row(-kInf, 0.0,
            {{x4, 0.25}, {x5, -60.0}, {x6, -0.04}, {x7, 9.0}});
  m.add_row(-kInf, 0.0,
            {{x4, 0.5}, {x5, -90.0}, {x6, -0.02}, {x7, 3.0}});
  m.add_row(-kInf, 1.0, {{x6, 1.0}});
  SimplexSolver solver(m);
  const LpResult r = solver.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(SimplexStress, KleeMintyCube) {
  // max sum 2^(n-j) x_j s.t. x_1 <= 5; 4 x_1 + x_2 <= 25; ...;
  // optimum 5^n with x_n = 5^n, the rest 0. Exponential path for naive
  // pivoting rules; correctness is what we assert.
  for (const int n : {4, 6, 8}) {
    Model m;
    std::vector<int> x;
    for (int j = 0; j < n; ++j) {
      x.push_back(m.add_col(0.0, kInf, std::pow(2.0, n - 1 - j)));
    }
    m.set_sense(Sense::kMaximize);
    for (int i = 0; i < n; ++i) {
      std::vector<ColEntry> row;
      for (int j = 0; j < i; ++j) {
        row.push_back({x[j], std::pow(2.0, i - j + 1)});
      }
      row.push_back({x[i], 1.0});
      m.add_row(-kInf, std::pow(5.0, i + 1), std::move(row));
    }
    SimplexSolver solver(m);
    const LpResult r = solver.solve();
    ASSERT_EQ(r.status, LpStatus::kOptimal) << "n=" << n;
    EXPECT_NEAR(r.objective, std::pow(5.0, n), 1e-6 * std::pow(5.0, n))
        << "n=" << n;
  }
}

TEST(SimplexStress, BigMCoefficientsLikePathConstraints) {
  // t_v >= t_u + beta - M R with M ~ 1e4 against unit-scale bounds: the
  // numeric profile of Lemma 2.1's rows. The LP relaxation buys a tiny
  // fractional R (the big-M weakness our chain cuts patch); with R
  // integral the optimum must snap to R = 0, t_v = 7.5, and both
  // answers must stay numerically exact despite the coefficient range.
  const double big = 12345.678;
  Model m;
  const int tu = m.add_col(0.0, 10.0, 0.0);
  const int tv = m.add_col(0.0, 10.0, 1.0);
  const int r = m.add_col(0.0, 3.0, 100.0, /*is_integer=*/true);
  // tv - tu + big * r >= 7.5
  m.add_row(7.5, kInf, {{tv, 1.0}, {tu, -1.0}, {r, big}});

  // SimplexSolver always solves the continuous relaxation.
  SimplexSolver solver(m);
  const LpResult lp = solver.solve();
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  EXPECT_NEAR(lp.objective, 100.0 * 7.5 / big, 1e-9);  // fractional R

  const MilpResult milp = solve_milp(m);
  ASSERT_EQ(milp.status, MilpStatus::kOptimal);
  EXPECT_NEAR(milp.objective, 7.5, 1e-7);
  EXPECT_NEAR(milp.x[static_cast<std::size_t>(r)], 0.0, 1e-9);
}

TEST(SimplexStress, LongEqualityChain) {
  // x_0 = 1, x_{k+1} = x_k + 1 as equalities; minimize x_n = n + 1.
  constexpr int n = 120;
  Model m;
  std::vector<int> x;
  for (int k = 0; k <= n; ++k) x.push_back(m.add_col(-kInf, kInf, 0.0));
  m.set_obj(x[n], 1.0);
  m.add_row(1.0, 1.0, {{x[0], 1.0}});
  for (int k = 0; k < n; ++k) {
    m.add_row(1.0, 1.0, {{x[k + 1], 1.0}, {x[k], -1.0}});
  }
  SimplexSolver solver(m);
  const LpResult r = solver.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, n + 1.0, 1e-6);
}

/// Shortest-path LP: min sum_e w_e f_e with flow conservation pushing
/// one unit from s to t. By total unimodularity its optimum equals the
/// combinatorial distance; Bellman-Ford (difference constraints on the
/// reverse inequalities) is the oracle.
class ShortestPathLp : public ::testing::TestWithParam<int> {};

TEST_P(ShortestPathLp, MatchesDifferenceConstraintOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
  const std::size_t n = 5 + static_cast<std::size_t>(rng.uniform_int(0, 7));
  graph::Digraph g(n);
  std::vector<std::int64_t> w;
  // Ring (guarantees s->t reachability) + chords, non-negative weights.
  for (std::size_t v = 0; v < n; ++v) {
    g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>((v + 1) % n));
    w.push_back(rng.uniform_int(0, 9));
  }
  for (int k = 0; k < 12; ++k) {
    g.add_edge(
        static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
        static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    w.push_back(rng.uniform_int(0, 9));
  }
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(n / 2);

  // Oracle: potentials pi with pi[v] <= pi[u] + w(u,v) maximizing pi[t]
  // (classical LP dual of shortest path) -- solved combinatorially.
  // solve_difference_constraints finds the most negative potentials
  // from a virtual root; distance = -potential when weights from root
  // are... simpler: run Bellman-Ford manually here.
  std::vector<double> dist(n, 1e18);
  dist[s] = 0.0;
  for (std::size_t round = 0; round < n; ++round) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      dist[g.dst(e)] = std::min(dist[g.dst(e)],
                                dist[g.src(e)] + static_cast<double>(w[e]));
    }
  }
  ASSERT_LT(dist[t], 1e17);

  Model m;
  std::vector<int> f;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    f.push_back(m.add_col(0.0, kInf, static_cast<double>(w[e])));
  }
  for (NodeId v = 0; v < n; ++v) {
    std::vector<ColEntry> row;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (g.src(e) == v) row.push_back({f[e], 1.0});
      if (g.dst(e) == v) row.push_back({f[e], -1.0});
    }
    const double rhs = v == s ? 1.0 : (v == t ? -1.0 : 0.0);
    m.add_row(rhs, rhs, std::move(row));
  }
  SimplexSolver solver(m);
  const LpResult r = solver.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, dist[t], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortestPathLp, ::testing::Range(0, 30));

}  // namespace
}  // namespace elrr::lp
