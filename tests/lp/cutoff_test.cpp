#include <gtest/gtest.h>

#include "lp/milp.hpp"
#include "support/rng.hpp"

namespace elrr::lp {
namespace {

/// A knapsack whose optimum is known: values {60,100,120}, weights
/// {10,20,30}, capacity 50 -> optimum 220.
Model knapsack() {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int a = m.add_col(0, 1, 60, true);
  const int b = m.add_col(0, 1, 100, true);
  const int c = m.add_col(0, 1, 120, true);
  m.add_row(-kInf, 50, {{a, 10.0}, {b, 20.0}, {c, 30.0}});
  return m;
}

TEST(MilpCutoff, TargetStopsEarlyWithGoodEnoughIncumbent) {
  MilpOptions options;
  options.target_obj = 150.0;  // any solution with value >= 150 will do
  const auto r = solve_milp(knapsack(), options);
  ASSERT_TRUE(r.has_solution());
  EXPECT_GE(r.objective, 150.0 - 1e-9);
}

TEST(MilpCutoff, FutileProvenWhenTargetUnreachable) {
  MilpOptions options;
  options.futile_bound = 300.0;  // no solution reaches 300
  const auto r = solve_milp(knapsack(), options);
  EXPECT_EQ(r.status, MilpStatus::kFutile);
  EXPECT_LT(r.best_bound, 300.0);  // the proof: nothing at/above 300
}

TEST(MilpCutoff, FutileNotTriggeredWhenTargetReachable) {
  MilpOptions options;
  options.futile_bound = 200.0;  // 220 >= 200 exists
  const auto r = solve_milp(knapsack(), options);
  ASSERT_TRUE(r.has_solution());
  EXPECT_NEAR(r.objective, 220.0, 1e-7);
}

TEST(MilpCutoff, MinimizationSense) {
  // min x + y st x + y >= 2.5, x,y integer in [0,3]: optimum 3.
  Model m;
  const int x = m.add_col(0, 3, 1.0, true);
  const int y = m.add_col(0, 3, 1.0, true);
  m.add_row(2.5, kInf, {{x, 1.0}, {y, 1.0}});

  MilpOptions stop_at_4;
  stop_at_4.target_obj = 4.0;  // anything <= 4 acceptable
  const auto a = solve_milp(m, stop_at_4);
  ASSERT_TRUE(a.has_solution());
  EXPECT_LE(a.objective, 4.0 + 1e-9);

  MilpOptions futile_at_2;
  futile_at_2.futile_bound = 2.0;  // nothing <= 2 exists (optimum is 3)
  const auto b = solve_milp(m, futile_at_2);
  EXPECT_EQ(b.status, MilpStatus::kFutile);
  EXPECT_GT(b.best_bound, 2.0);
}

TEST(MilpCutoff, CutoffsDoNotBreakOptimality) {
  // Cutoffs far away must leave the answer untouched.
  MilpOptions options;
  options.target_obj = 1e9;
  options.futile_bound = -1e9;
  const auto r = solve_milp(knapsack(), options);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 220.0, 1e-7);
}

// Property: on random knapsacks, target cutoffs always return a solution
// at least as good as the target whenever the true optimum reaches it,
// and futile verdicts are consistent with the true optimum.
class CutoffRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CutoffRandomTest, VerdictsConsistentWithTrueOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3571 + 29);
  Model m;
  m.set_sense(Sense::kMaximize);
  std::vector<ColEntry> weights;
  const int n = 6 + static_cast<int>(rng.uniform_int(0, 4));
  for (int j = 0; j < n; ++j) {
    const int c = m.add_col(0, 1, rng.uniform(1, 20), true);
    weights.push_back({c, rng.uniform(1, 10)});
  }
  m.add_row(-kInf, rng.uniform(10, 30), weights);

  const double optimum = solve_milp(m).objective;
  const double target = optimum * rng.uniform(0.5, 1.5);

  MilpOptions with_target;
  with_target.target_obj = target;
  const auto r = solve_milp(m, with_target);
  if (target <= optimum + 1e-9) {
    ASSERT_TRUE(r.has_solution());
    EXPECT_GE(r.objective, std::min(target, optimum) - 1e-6);
  } else {
    // Target beyond the optimum: solver must still answer correctly.
    ASSERT_TRUE(r.status == MilpStatus::kOptimal ||
                r.status == MilpStatus::kFeasible);
    EXPECT_NEAR(r.objective, optimum, 1e-6);
  }

  MilpOptions with_futile;
  with_futile.futile_bound = target;
  const auto f = solve_milp(m, with_futile);
  if (target > optimum + 1e-6) {
    // Either the futile cutoff fired, or the solver finished the whole
    // proof first (e.g. integral root LP) -- both prove the same fact.
    if (f.status == MilpStatus::kFutile) {
      EXPECT_LT(f.best_bound, target);
    } else {
      ASSERT_EQ(f.status, MilpStatus::kOptimal);
      EXPECT_LT(f.objective, target);
    }
  } else {
    ASSERT_TRUE(f.has_solution());
    EXPECT_NEAR(f.objective, optimum, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutoffRandomTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace elrr::lp
