/// \file bench_throughput_model.cpp
/// Reproduces Observation 3: the accuracy of the LP throughput bound
/// (eqs. (5)-(10)) against simulation across Pareto configurations.
/// The paper reports an average error of 12.5%, growing with the number
/// of inserted bubbles and reaching ~35% on some configurations; errors
/// are proportional to the early-vs-late throughput gap.

#include <cstdio>

#include "flow/circuit_flow.hpp"
#include "support/stats.hpp"

int main() {
  using namespace elrr;
  using namespace elrr::flow;
  FlowOptions options = FlowOptions::from_env();
  options.max_simulated_points = 16;

  std::printf("=====================================================================\n");
  std::printf("ElasticRR | Observation 3: LP bound vs simulated throughput (seed %llu)\n",
              static_cast<unsigned long long>(options.seed));
  std::printf("=====================================================================\n");
  std::printf("%-7s %8s %9s %9s %8s %8s\n", "name", "tau", "Th_lp", "Th_sim",
              "err(%)", "bubbles");

  RunningStats all_errors;
  RunningStats zero_bubble_errors;
  RunningStats bubbly_errors;
  // Three circuits keep the default sweep a few minutes; the paper's
  // average is over all 18 (set ELRR_TABLE2_FULL=1 on bench_table2 for
  // the full picture).
  for (const char* name : {"s27", "s526", "s382"}) {
    const CircuitResult r = run_circuit(name, options);
    for (const CandidateRow& row : r.candidates) {
      std::printf("%-7s %8.2f %9.4f %9.4f %8.2f %8d\n", name, row.tau,
                  row.theta_lp, row.theta_sim, row.err_percent, row.bubbles);
      all_errors.add(row.err_percent);
      (row.bubbles == 0 ? zero_bubble_errors : bubbly_errors)
          .add(row.err_percent);
    }
  }

  std::printf("---------------------------------------------------------------------\n");
  std::printf("average err           = %6.1f%%  (paper: 12.5%%)\n",
              all_errors.mean());
  std::printf("  bubble-free configs = %6.1f%%\n", zero_bubble_errors.mean());
  std::printf("  recycled configs    = %6.1f%%  (paper: error grows with "
              "bubbles, up to ~35%%)\n",
              bubbly_errors.mean());
  std::printf("max err               = %6.1f%%\n", all_errors.max());
  return 0;
}
