/// \file bench_micro.cpp
/// google-benchmark microbenchmarks of the substrates: simplex/MILP
/// solves, minimum cycle ratio, SCC, token-level simulation, Markov
/// analysis and the full MILP primitives on generated circuits.

#include <benchmark/benchmark.h>

#include "bench89/generator.hpp"
#include "core/figures.hpp"
#include "core/opt.hpp"
#include "core/tgmg.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/howard.hpp"
#include "graph/karp.hpp"
#include "graph/scc.hpp"
#include "heur/heuristic.hpp"
#include "io/rrg_format.hpp"
#include "lp/milp.hpp"
#include "sim/choosers.hpp"
#include "sim/flat_kernel.hpp"
#include "sim/markov.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace {

using namespace elrr;

lp::Model random_lp(int cols, int rows, std::uint64_t seed) {
  Rng rng(seed);
  lp::Model model;
  for (int j = 0; j < cols; ++j) {
    model.add_col(0.0, rng.uniform(1.0, 10.0), rng.uniform(-1.0, 1.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<lp::ColEntry> entries;
    for (int j = 0; j < cols; ++j) {
      if (rng.bernoulli(0.3)) entries.push_back({j, rng.uniform(-2.0, 2.0)});
    }
    model.add_row(-lp::kInf, rng.uniform(1.0, 8.0), std::move(entries));
  }
  return model;
}

void BM_SimplexSolve(benchmark::State& state) {
  const auto model = random_lp(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)) * 2, 42);
  for (auto _ : state) {
    lp::SimplexSolver solver(model);
    benchmark::DoNotOptimize(solver.solve().objective);
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(20)->Arg(60)->Arg(150);

void BM_MilpKnapsack(benchmark::State& state) {
  Rng rng(7);
  lp::Model model;
  model.set_sense(lp::Sense::kMaximize);
  std::vector<lp::ColEntry> weights;
  for (int j = 0; j < state.range(0); ++j) {
    const int c = model.add_col(0, 1, rng.uniform(1.0, 10.0), true);
    weights.push_back({c, rng.uniform(1.0, 10.0)});
  }
  model.add_row(-lp::kInf, static_cast<double>(state.range(0)) * 2.0,
                weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_milp(model).objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(10)->Arg(16);

void BM_MinCycleRatio(benchmark::State& state) {
  Rng rng(11);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  graph::Digraph g(n);
  std::vector<std::int64_t> cost, time;
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(static_cast<graph::NodeId>(i),
               static_cast<graph::NodeId>((i + 1) % n));
    cost.push_back(rng.uniform_int(0, 3));
    time.push_back(rng.uniform_int(1, 3));
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(static_cast<graph::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
               static_cast<graph::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    cost.push_back(rng.uniform_int(1, 3));
    time.push_back(rng.uniform_int(1, 3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::min_cycle_ratio(g, cost, time).ratio);
  }
}
BENCHMARK(BM_MinCycleRatio)->Arg(50)->Arg(200);

void BM_Scc(benchmark::State& state) {
  Rng rng(13);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  graph::Digraph g(n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    g.add_edge(static_cast<graph::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
               static_cast<graph::NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::strongly_connected_components(g).num_components);
  }
}
BENCHMARK(BM_Scc)->Arg(1000)->Arg(10000);

void BM_TokenSimulation(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"), 1);
  sim::SimOptions options;
  options.warmup_cycles = 100;
  options.measure_cycles = static_cast<std::size_t>(state.range(0));
  options.runs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_throughput(rrg, options).theta);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TokenSimulation)->Arg(1000)->Arg(10000);

// The standard multi-run workload (every table/figure flow simulates each
// candidate with >= 2 replications): the batched stepper interleaves the
// runs through one pass, so cycles/sec here is the fast path's headline
// number. items == total simulated cycles across runs.
void BM_TokenSimulationMultiRun(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"), 1);
  sim::SimOptions options;
  options.warmup_cycles = 100;
  options.measure_cycles = static_cast<std::size_t>(state.range(0));
  options.runs = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_throughput(rrg, options).theta);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          state.range(0));
}
BENCHMARK(BM_TokenSimulationMultiRun)->Arg(10000);

// The same medium workload pinned to the reference kernel: the flat-path
// speedup is BM_TokenSimulation* / BM_TokenSimulationReference.
void BM_TokenSimulationReference(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"), 1);
  sim::SimOptions options;
  options.warmup_cycles = 100;
  options.measure_cycles = static_cast<std::size_t>(state.range(0));
  options.runs = 1;
  options.force_reference = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_throughput(rrg, options).theta);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TokenSimulationReference)->Arg(10000);

void BM_MarkovFigure1b(benchmark::State& state) {
  const Rrg rrg = figures::figure1b(0.5, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::exact_throughput(rrg).theta);
  }
}
BENCHMARK(BM_MarkovFigure1b);

void BM_ThroughputLp(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(throughput_upper_bound(rrg));
  }
}
BENCHMARK(BM_ThroughputLp);

void BM_MaxThr(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s27"), 1);
  OptOptions options;
  options.milp.time_limit_s = 30.0;
  const double tau = rrg.max_delay();
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_thr(rrg, tau, options).objective);
  }
}
BENCHMARK(BM_MaxThr);

void BM_McrLawler(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(
      bench89::spec_by_name(state.range(0) == 0 ? "s526" : "s1488"), 1);
  std::vector<std::int64_t> cost, time;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    cost.push_back(rrg.tokens(e));
    time.push_back(rrg.buffers(e) + 1);  // avoid zero-time cycles
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::min_cycle_ratio(rrg.graph(), cost, time).ratio);
  }
}
BENCHMARK(BM_McrLawler)->Arg(0)->Arg(1);

void BM_McrHoward(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(
      bench89::spec_by_name(state.range(0) == 0 ? "s526" : "s1488"), 1);
  std::vector<std::int64_t> cost, time;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    cost.push_back(rrg.tokens(e));
    time.push_back(rrg.buffers(e) + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::howard_min_cycle_ratio(rrg.graph(), cost, time).ratio);
  }
}
BENCHMARK(BM_McrHoward)->Arg(0)->Arg(1);

void BM_MmcKarp(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(
      bench89::spec_by_name(state.range(0) == 0 ? "s526" : "s1488"), 1);
  std::vector<std::int64_t> cost;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    cost.push_back(rrg.tokens(e));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::karp_min_mean_cycle(rrg.graph(), cost).mean);
  }
}
BENCHMARK(BM_MmcKarp)->Arg(0)->Arg(1);

void BM_HeuristicWalk(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heur_eff_cyc(rrg).best().xi_lp);
  }
}
BENCHMARK(BM_HeuristicWalk);

void BM_RrgFormatRoundTrip(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s1488"), 1);
  const std::string text = io::write_rrg(rrg, "s1488");
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::read_rrg(text).rrg.num_edges());
  }
}
BENCHMARK(BM_RrgFormatRoundTrip);

void BM_TelescopicKernelStep(benchmark::State& state) {
  Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"), 1);
  // Make a fifth of the nodes telescopic to stress the busy machinery.
  for (NodeId n = 0; n < rrg.num_nodes(); n += 5) {
    rrg.set_telescopic(n, 0.8, 2);
  }
  const sim::Kernel kernel(rrg);
  sim::SyncState st = kernel.initial_state();
  Rng rng(3);
  const sim::Kernel::GuardChooser guard = [&](NodeId n) {
    return static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(rrg.graph().in_degree(n)) - 1));
  };
  const sim::Kernel::LatencyChooser latency = [&](NodeId) {
    return rng.bernoulli(0.2);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.step(st, guard, latency));
  }
}
BENCHMARK(BM_TelescopicKernelStep);

// The flat fast path on the identical telescopic workload: SoA state,
// bit-ring channels, table choosers inlined through the step template.
void BM_TelescopicFlatKernelStep(benchmark::State& state) {
  Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"), 1);
  for (NodeId n = 0; n < rrg.num_nodes(); n += 5) {
    rrg.set_telescopic(n, 0.8, 2);
  }
  const sim::FlatKernel kernel(rrg);
  const sim::GuardTable guards(rrg);
  const sim::LatencyTable latencies(rrg);
  Rng master(3);
  std::vector<Rng> streams;
  for (std::size_t n = 0; n < rrg.num_nodes(); ++n) {
    streams.push_back(master.split());
  }
  const sim::TableGuardChooser guard{&guards, streams.data()};
  const sim::TableLatencyChooser latency{&latencies, streams.data()};
  sim::FlatState st = kernel.initial_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.step(st, guard, latency));
  }
}
BENCHMARK(BM_TelescopicFlatKernelStep);

// Multi-run driver scaling: same total cycles, split across workers.
void BM_TokenSimulationThreads(benchmark::State& state) {
  const Rrg rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"), 1);
  sim::SimOptions options;
  options.warmup_cycles = 100;
  options.measure_cycles = 5000;
  options.runs = 4;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_throughput(rrg, options).theta);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.runs) * 5000);
}
BENCHMARK(BM_TokenSimulationThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
