/// \file bench_table2.cpp
/// Reproduces Table 2: the full experimental sweep over the 18 RRGs
/// derived from ISCAS89 SCC statistics. Columns follow the paper:
/// |N1| |N2| |E|, xi* (before optimization), xi_nee (late-evaluation
/// optimum), xi_lp_min (simulated xi of the configuration the LP metric
/// picks), xi_sim_min (best simulated xi) and the improvement
/// I = (xi_nee - xi_sim_min)/xi_nee.
///
/// Paper's headline: average I = 14.5%; zero improvement for circuits
/// whose critical cycles contain no early-evaluation nodes (s832, s1488,
/// s1494 there); biggest wins where early nodes sit on critical cycles.
///
/// All 18 circuits run by default: the exact MILP walk up to
/// ELRR_EXACT_MAX_EDGES (150) edges, the MILP-free heuristic beyond
/// (rows marked 'h') -- the regime the paper's conclusions call
/// "difficult to solve exactly" for CPLEX. ELRR_TABLE2_FULL=0 restores
/// the short exact-only sweep.
///
/// The whole table runs as ONE multi-job batch on svc::Scheduler: every
/// circuit is a MIN_EFF_CYC job, and all jobs share one sim::SimFleet
/// (worker pool + canonical-key candidate cache persist across
/// circuits) instead of tearing a fresh engine down per circuit. Rows
/// are bit-identical to the old per-circuit engine loop -- the
/// scheduler's determinism contract -- and print in submission order.
/// ELRR_PIPELINE / ELRR_SIM_* knobs apply batch-wide.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "flow/circuit_flow.hpp"
#include "support/stats.hpp"
#include "svc/scheduler.hpp"

int main() {
  using namespace elrr;
  using namespace elrr::flow;
  FlowOptions options = FlowOptions::from_env();
  const bool full = std::getenv("ELRR_TABLE2_FULL") == nullptr ||
                    std::atoi(std::getenv("ELRR_TABLE2_FULL")) != 0;

  std::printf("==========================================================================\n");
  std::printf("ElasticRR | Table 2: retiming & recycling with early evaluation (seed %llu)\n",
              static_cast<unsigned long long>(options.seed));
  std::printf("==========================================================================\n");
  std::printf("%-7s %5s %5s %5s %9s %9s %9s %9s %7s %7s\n", "name", "|N1|",
              "|N2|", "|E|", "xi*", "xi_nee", "xi_lpmin", "xi_simmin", "I%",
              "sec");

  // One scheduler, one shared fleet, the whole table as a batch. One
  // walk worker keeps the MILP order identical to the historical
  // per-circuit loop (more workers only changes wall clock, never rows);
  // the paused submit window makes dispatch order manifest-only.
  svc::SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.sim_threads = options.sim_threads;
  sopt.sim_dedup = options.sim_dedup;
  sopt.sim_cache_cap = options.sim_cache_cap;
  sopt.start_paused = true;
  svc::Scheduler scheduler(sopt);

  struct Row {
    const bench89::CircuitSpec* spec;
    svc::JobId id = 0;
    bool skipped = false;
    bool heuristic_only = false;
  };
  std::vector<Row> rows;
  for (const auto& spec : bench89::table2_specs()) {
    Row row;
    row.spec = &spec;
    if (!full && spec.n_edges > options.exact_max_edges) {
      row.skipped = true;
      rows.push_back(row);
      continue;
    }
    svc::JobSpec job;
    job.name = spec.name;
    job.rrg = bench89::make_table2_rrg(spec, options.seed);
    job.flow = options;
    job.flow.heuristic_only = spec.n_edges > options.exact_max_edges;
    job.mode = svc::JobMode::kMinEffCyc;
    row.heuristic_only = job.flow.heuristic_only;
    row.id = scheduler.submit(std::move(job));
    rows.push_back(row);
  }
  scheduler.resume();

  RunningStats improvements;
  RunningStats errors;
  int inexact = 0;
  for (const Row& row : rows) {
    if (row.skipped) {
      std::printf("%-7s %5d %5d %5d   (skipped; set ELRR_TABLE2_FULL=1)\n",
                  row.spec->name.c_str(), row.spec->n_simple,
                  row.spec->n_early, row.spec->n_edges);
      continue;
    }
    const svc::JobResult job = scheduler.wait(row.id);
    if (job.state != svc::JobState::kDone) {
      std::printf("%-7s %5d %5d %5d   (job %s: %s)\n", row.spec->name.c_str(),
                  row.spec->n_simple, row.spec->n_early, row.spec->n_edges,
                  svc::to_string(job.state), job.error.c_str());
      continue;
    }
    const CircuitResult& r = job.circuit;
    std::printf("%-7s %5d %5d %5d %9.2f %9.2f %9.2f %9.2f %7.1f %7.1f%s%s\n",
                r.name.c_str(), r.n_simple, r.n_early, r.n_edges, r.xi_star,
                r.xi_nee, r.xi_lp_min, r.xi_sim_min, r.improve_percent,
                r.seconds, r.all_exact ? "" : " *",
                row.heuristic_only ? " h" : "");
    improvements.add(r.improve_percent);
    for (const CandidateRow& candidate : r.candidates) {
      errors.add(candidate.err_percent);
    }
    inexact += !r.all_exact;
  }

  std::printf("--------------------------------------------------------------------------\n");
  std::printf("average improvement I = %.1f%%  (paper: 14.5%%)\n",
              improvements.mean());
  std::printf("average LP-bound error err = %.1f%%  (paper observation 3: 12.5%%)\n",
              errors.mean());
  if (inexact > 0) {
    std::printf("* %d circuits hit the %gs per-MILP budget (incumbents used, "
                "like the paper's CPLEX timeout)\n",
                inexact, options.milp_timeout_s);
  }
  if (full) {
    std::printf("h = MILP-free heuristic only (> %d edges; the paper calls "
                "these MILPs intractable)\n",
                options.exact_max_edges);
  }
  // hits counts every session-cache reuse -- mostly each circuit's own
  // frontier rerank aliasing its walk-time scores, plus any genuinely
  // cross-circuit duplicates; the cache itself does not distinguish.
  const sim::SimCacheStats cache = scheduler.fleet().cache_stats();
  std::printf("shared fleet: %llu unique simulations, %llu session-cache "
              "hits (walk rerank + cross-circuit)\n",
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.hits));
  return 0;
}
