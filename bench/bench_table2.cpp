/// \file bench_table2.cpp
/// Reproduces Table 2: the full experimental sweep over the 18 RRGs
/// derived from ISCAS89 SCC statistics. Columns follow the paper:
/// |N1| |N2| |E|, xi* (before optimization), xi_nee (late-evaluation
/// optimum), xi_lp_min (simulated xi of the configuration the LP metric
/// picks), xi_sim_min (best simulated xi) and the improvement
/// I = (xi_nee - xi_sim_min)/xi_nee.
///
/// Paper's headline: average I = 14.5%; zero improvement for circuits
/// whose critical cycles contain no early-evaluation nodes (s832, s1488,
/// s1494 there); biggest wins where early nodes sit on critical cycles.
///
/// All 18 circuits run by default: the exact MILP walk up to
/// ELRR_EXACT_MAX_EDGES (150) edges, the MILP-free heuristic beyond
/// (rows marked 'h') -- the regime the paper's conclusions call
/// "difficult to solve exactly" for CPLEX. ELRR_TABLE2_FULL=0 restores
/// the short exact-only sweep. Per circuit the walk runs through the
/// pipelined flow::Engine (via bench/flow.hpp): candidates simulate on
/// the fleet while the next MILP solves (ELRR_PIPELINE=0 for the
/// sequential order; identical rows either way).

#include <cstdio>
#include <cstdlib>

#include "bench/flow.hpp"
#include "support/stats.hpp"

int main() {
  using namespace elrr;
  using namespace elrr::bench;
  FlowOptions options = FlowOptions::from_env();
  const bool full = std::getenv("ELRR_TABLE2_FULL") == nullptr ||
                    std::atoi(std::getenv("ELRR_TABLE2_FULL")) != 0;

  std::printf("==========================================================================\n");
  std::printf("ElasticRR | Table 2: retiming & recycling with early evaluation (seed %llu)\n",
              static_cast<unsigned long long>(options.seed));
  std::printf("==========================================================================\n");
  std::printf("%-7s %5s %5s %5s %9s %9s %9s %9s %7s %7s\n", "name", "|N1|",
              "|N2|", "|E|", "xi*", "xi_nee", "xi_lpmin", "xi_simmin", "I%",
              "sec");

  RunningStats improvements;
  RunningStats errors;
  int inexact = 0;
  for (const auto& spec : bench89::table2_specs()) {
    if (!full && spec.n_edges > options.exact_max_edges) {
      std::printf("%-7s %5d %5d %5d   (skipped; set ELRR_TABLE2_FULL=1)\n",
                  spec.name.c_str(), spec.n_simple, spec.n_early,
                  spec.n_edges);
      continue;
    }
    FlowOptions circuit_options = options;
    circuit_options.heuristic_only = spec.n_edges > options.exact_max_edges;
    const CircuitResult r = run_circuit(spec.name, circuit_options);
    std::printf("%-7s %5d %5d %5d %9.2f %9.2f %9.2f %9.2f %7.1f %7.1f%s%s\n",
                r.name.c_str(), r.n_simple, r.n_early, r.n_edges, r.xi_star,
                r.xi_nee, r.xi_lp_min, r.xi_sim_min, r.improve_percent,
                r.seconds, r.all_exact ? "" : " *",
                circuit_options.heuristic_only ? " h" : "");
    improvements.add(r.improve_percent);
    for (const CandidateRow& row : r.candidates) {
      errors.add(row.err_percent);
    }
    inexact += !r.all_exact;
  }

  std::printf("--------------------------------------------------------------------------\n");
  std::printf("average improvement I = %.1f%%  (paper: 14.5%%)\n",
              improvements.mean());
  std::printf("average LP-bound error err = %.1f%%  (paper observation 3: 12.5%%)\n",
              errors.mean());
  if (inexact > 0) {
    std::printf("* %d circuits hit the %gs per-MILP budget (incumbents used, "
                "like the paper's CPLEX timeout)\n",
                inexact, options.milp_timeout_s);
  }
  if (full) {
    std::printf("h = MILP-free heuristic only (> %d edges; the paper calls "
                "these MILPs intractable)\n",
                options.exact_max_edges);
  }
  return 0;
}
