/// \file bench_table1.cpp
/// Reproduces Table 1: all non-dominated configurations of the s526 test
/// case with cycle time, LP throughput bound, simulated throughput, the
/// bound's relative error, both effective cycle times, and the Delta%
/// between the LP-chosen configuration (RC^lp_min, bold xi_lp in the
/// paper) and the simulation-best one (RC_min, bold xi).
///
/// Structures and annotations are synthesized with the paper's published
/// statistics (DESIGN.md, substitutions), so absolute numbers differ from
/// the paper's row values; the qualitative shape -- several Pareto
/// points, LP bound optimistic by a few percent to tens of percent, the
/// last row being the min-delay retiming with Theta = 1 -- must hold.
///
/// Runs as one MIN_EFF_CYC job on the svc::Scheduler (the multi-circuit
/// batch service bench_table2 drives at scale): the walk streams each
/// Pareto candidate into the scheduler's shared simulation fleet while
/// the next MILP solves; ELRR_PIPELINE=0 restores the sequential
/// walk-then-score order (identical rows either way).

#include <cstdio>

#include "flow/circuit_flow.hpp"
#include "svc/scheduler.hpp"

int main() {
  using namespace elrr;
  using namespace elrr::flow;
  FlowOptions options = FlowOptions::from_env();
  options.max_simulated_points = 16;  // Table 1 shows *all* candidates
  options.polish = true;              // the paper's exact MAX_THR recipe

  std::printf("=========================================================\n");
  std::printf("ElasticRR | Table 1: non-dominated RCs for s526 (seed %llu)\n",
              static_cast<unsigned long long>(options.seed));
  std::printf("=========================================================\n");
  svc::SchedulerOptions sopt;
  sopt.workers = 1;
  sopt.sim_threads = options.sim_threads;
  sopt.sim_dedup = options.sim_dedup;
  sopt.sim_cache_cap = options.sim_cache_cap;
  svc::Scheduler scheduler(sopt);
  svc::JobSpec job;
  job.name = "s526";
  job.rrg = bench89::make_table2_rrg(bench89::spec_by_name("s526"),
                                     options.seed);
  job.flow = options;
  job.mode = svc::JobMode::kMinEffCyc;
  const svc::JobResult done = scheduler.wait(scheduler.submit(std::move(job)));
  if (done.state != svc::JobState::kDone) {
    std::printf("job %s: %s\n", svc::to_string(done.state),
                done.error.c_str());
    return 1;
  }
  const CircuitResult& result = done.circuit;

  std::printf("%8s %9s %9s %8s %10s %10s\n", "tau", "Th_lp", "Th", "err(%)",
              "xi_lp", "xi");
  for (const CandidateRow& row : result.candidates) {
    std::printf("%8.2f %9.4f %9.4f %8.4f %10.4f %10.4f%s%s\n", row.tau,
                row.theta_lp, row.theta_sim, row.err_percent, row.xi_lp,
                row.xi_sim, row.xi_sim == result.xi_sim_min ? "  <RC_min" : "",
                row.xi_sim == result.xi_lp_min ? "  <RC_lp_min" : "");
  }
  std::printf("\nDelta(%%) between RC_lp_min and RC_min: %.1f\n",
              result.delta_percent);
  std::printf("xi* = %.2f, xi_nee = %.2f, improvement I = %.1f%%\n",
              result.xi_star, result.xi_nee, result.improve_percent);
  std::printf("(paper row: tau 19.98..74.52, err 0..17.5%%, Delta 5.4%%)\n");
  if (!result.all_exact) {
    std::printf("note: some MILPs hit the %gs budget; rows are incumbents\n",
                options.milp_timeout_s);
  }
  return 0;
}
