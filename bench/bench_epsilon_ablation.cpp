/// \file bench_epsilon_ablation.cpp
/// Ablation of the MIN_EFF_CYC step size. The paper fixes epsilon = 0.01
/// and notes that an epsilon below the smallest throughput gap would make
/// the heuristic exact; larger epsilons trade Pareto-front resolution
/// (and hence solution quality) for fewer MILP solves.

#include <cstdio>

#include "bench89/generator.hpp"
#include "core/opt.hpp"
#include "support/stopwatch.hpp"

int main() {
  using namespace elrr;
  std::printf("===========================================================\n");
  std::printf("ElasticRR | MIN_EFF_CYC epsilon ablation (paper uses 0.01)\n");
  std::printf("===========================================================\n");

  for (const char* name : {"s27", "s382"}) {
    const auto& spec = bench89::spec_by_name(name);
    const Rrg rrg = bench89::make_table2_rrg(spec, 1);
    std::printf("\n%s (|N|=%zu, |E|=%zu)\n", name, rrg.num_nodes(),
                rrg.num_edges());
    std::printf("  %-8s %10s %8s %8s %9s\n", "epsilon", "best xi_lp",
                "points", "milps", "seconds");
    for (double epsilon : {0.2, 0.1, 0.05, 0.02}) {
      OptOptions options;
      options.epsilon = epsilon;
      options.milp.time_limit_s = 6.0;
      Stopwatch watch;
      const MinEffCycResult result = min_eff_cyc(rrg, options);
      std::printf("  %-8.3f %10.3f %8zu %8d %9.2f%s\n", epsilon,
                  result.best().xi_lp, result.points.size(),
                  result.milp_calls, watch.seconds(),
                  result.all_exact ? "" : " *");
    }
  }
  std::printf("\n* = some MILP hit its budget\n");
  return 0;
}
