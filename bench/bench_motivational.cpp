/// \file bench_motivational.cpp
/// Reproduces the paper's running example: Figures 1(a), 1(b) and 2 plus
/// every number quoted in Sections 1.2 and 1.4.
///
/// Paper claims checked here:
///  * fig 1(a): tau = 3, Theta = 1, xi = 3; retiming alone cannot improve;
///  * fig 1(b): tau = 1, late Theta = 1/3 (xi = 3, no gain);
///    early Theta = 0.491 (alpha=.5, xi ~ 2.037) and 0.719 (alpha=.9,
///    xi ~ 1.39);
///  * fig 2: Theta = 1/(3-2alpha) (0.833 at alpha=.9, ~16% over fig 1(b)),
///    found automatically by MIN_EFF_CYC from fig 1(a).

#include <cstdio>

#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "core/opt.hpp"
#include "core/tgmg.hpp"
#include "sim/markov.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace elrr;
using namespace elrr::figures;

struct Row {
  const char* name;
  Rrg rrg;
};

void print_config_table(double alpha) {
  std::printf("\n-- configurations at alpha = %.2f --\n", alpha);
  std::printf("%-22s %6s %9s %9s %9s %9s %9s\n", "configuration", "tau",
              "Th_late", "Th_lp", "Th_markov", "Th_sim", "xi(exact)");
  const Row rows[] = {
      {"fig1a (early mux)", figure1a(alpha, true)},
      {"fig1b late", figure1b(alpha, false)},
      {"fig1b early", figure1b(alpha, true)},
      {"fig2  early (optimal)", figure2(alpha, true)},
  };
  sim::SimOptions sopt;
  sopt.measure_cycles = 50000;
  for (const Row& row : rows) {
    const double tau = cycle_time(row.rrg).tau;
    const double late = late_eval_throughput(row.rrg);
    const double lp = throughput_upper_bound(row.rrg);
    const auto markov = sim::exact_throughput(row.rrg);
    const auto sim = sim::simulate_throughput(row.rrg, sopt);
    std::printf("%-22s %6.2f %9.4f %9.4f %9.4f %9.4f %9.4f\n", row.name, tau,
                late, lp, markov.theta, sim.theta,
                effective_cycle_time(tau, markov.theta));
  }
}

void print_alpha_sweep() {
  std::printf("\n-- figure 2 alpha sweep: Theta vs closed form 1/(3-2a) --\n");
  std::printf("%6s %12s %12s %12s\n", "alpha", "markov", "closed", "lp_bound");
  for (double alpha = 0.1; alpha < 0.95; alpha += 0.2) {
    const Rrg rrg = figure2(alpha);
    const auto markov = sim::exact_throughput(rrg);
    std::printf("%6.2f %12.6f %12.6f %12.6f\n", alpha, markov.theta,
                figure2_throughput(alpha), throughput_upper_bound(rrg));
  }
}

void print_optimizer_rediscovery(double alpha) {
  std::printf(
      "\n-- MIN_EFF_CYC on figure 1(a), alpha = %.2f (early evaluation) --\n",
      alpha);
  const Rrg input = figure1a(alpha, true);
  const MinEffCycResult result = min_eff_cyc(input);
  std::printf("%4s %8s %10s %10s %7s\n", "#", "tau", "Theta_lp", "xi_lp",
              "best");
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const ParetoPoint& p = result.points[i];
    std::printf("%4zu %8.3f %10.4f %10.4f %7s\n", i, p.tau, p.theta_lp,
                p.xi_lp, i == result.best_index ? "<== RClp" : "");
  }
  const ParetoPoint& best = result.best();
  const double t1b =
      sim::exact_throughput(figure1b(alpha, true)).theta;
  std::printf("best xi_lp = %.4f  (fig1b early would give %.4f; paper: fig2 "
              "beats it by ~16%% at alpha=0.9)\n",
              best.xi_lp, effective_cycle_time(1.0, t1b));
  std::printf("improvement over fig1b-early: %.1f%%\n",
              (best.theta_lp - t1b) / t1b * 100.0);
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("ElasticRR | motivational example (Figures 1-2, Sections 1.2/1.4)\n");
  std::printf("==============================================================\n");
  print_config_table(0.5);
  print_config_table(0.9);
  print_alpha_sweep();
  print_optimizer_rediscovery(0.9);
  std::printf("\npaper reference points: Theta(fig1b,a=.5)=0.491, "
              "Theta(fig1b,a=.9)=0.719,\n  Theta(fig2)=1/(3-2a), "
              "xi(fig1b,a=.5)=2.037, xi(fig1b,a=.9)=1.39\n");
  return 0;
}
