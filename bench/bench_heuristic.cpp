/// \file bench_heuristic.cpp
/// The paper's future-work direction (Section 6): "The proposed MILPs
/// are difficult to solve exactly for circuit graphs with more than one
/// thousand edges. However, there are simple and efficient heuristics
/// for solving MILP problems."
///
/// Compares the exact MILP Pareto walk (MIN_EFF_CYC) against the
/// MILP-free heuristic (greedy recycling walk + local retiming polish)
/// on the synthetic Table-2 circuits: solution quality (xi_lp of the
/// best configuration) and wall-clock time. Expected shape: the
/// heuristic tracks the exact optimum within ~0-30% at a 10-100x
/// speedup, with the gap widening on circuits whose optima need
/// coordinated multi-node retimings (cf. figure 2).
///
/// Knobs: ELRR_SEED, ELRR_EPSILON, ELRR_MILP_TIMEOUT, ELRR_HEUR_FULL=1
/// adds the mid-size circuits.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "flow/circuit_flow.hpp"
#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "heur/heuristic.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"

using namespace elrr;

int main() {
  const flow::FlowOptions fopt = flow::FlowOptions::from_env();
  std::printf("==========================================================================\n");
  std::printf("ElasticRR | exact MILP walk vs MILP-free heuristic (seed %llu)\n",
              static_cast<unsigned long long>(fopt.seed));
  std::printf("==========================================================================\n");
  std::printf("%-7s %5s %9s %9s %9s %8s %8s %8s\n", "name", "|E|", "xi_id",
              "xi_exact", "xi_heur", "gap(%)", "t_ex(s)", "t_h(s)");

  std::vector<const char*> names{"s208", "s27", "s838", "s420", "s382",
                                 "s526"};
  if (std::getenv("ELRR_HEUR_FULL") != nullptr) {
    names.insert(names.end(), {"s400", "s444", "s386", "s641"});
  }

  RunningStats gaps, speedups;
  for (const char* name : names) {
    const Rrg rrg =
        bench89::make_table2_rrg(bench89::spec_by_name(name), fopt.seed);
    const double xi_id = evaluate_rrg(rrg).xi_lp;

    OptOptions eopt;
    eopt.epsilon = fopt.epsilon;
    eopt.milp.time_limit_s = fopt.milp_timeout_s;
    Stopwatch we;
    const MinEffCycResult exact = min_eff_cyc(rrg, eopt);
    const double t_exact = we.seconds();

    Stopwatch wh;
    const HeuristicResult heur = heur_eff_cyc(rrg);
    const double t_heur = wh.seconds();

    const double gap = (heur.best().xi_lp - exact.best().xi_lp) /
                       exact.best().xi_lp * 100.0;
    gaps.add(gap);
    if (t_heur > 0) speedups.add(t_exact / t_heur);
    std::printf("%-7s %5zu %9.2f %9.2f %9.2f %8.1f %8.2f %8.2f%s\n", name,
                rrg.num_edges(), xi_id, exact.best().xi_lp,
                heur.best().xi_lp, gap, t_exact, t_heur,
                exact.all_exact ? "" : " *");
  }
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("average quality gap = %.1f%%   median-ish speedup = %.0fx\n",
              gaps.mean(), speedups.mean());
  std::printf("* = some MILP hit its budget (exact column is an incumbent)\n");
  return 0;
}
