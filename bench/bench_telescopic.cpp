/// \file bench_telescopic.cpp
/// Ablation for the telescopic-node extension (the paper's Section 6
/// future work: "the proposed model can be extended to handle telescopic
/// nodes, i.e., nodes with variable combinational delays").
///
/// Three experiments on the paper's running example (Figure 1a, alpha =
/// 0.9) with the pipeline stage F2 made telescopic:
///   A. model validation: LP bound vs exact Markov vs Monte-Carlo across
///      a (fast_prob, slow_extra) grid -- shape: throughput falls with
///      expected service (1-p)*e, LP stays an upper bound;
///   B. optimization: xi_lp of MIN_EFF_CYC vs the pessimistic design
///      clocked at the worst-case delay -- shape: telescopic wins
///      whenever p is high enough that the stolen cycles cost less than
///      the stretched clock;
///   C. the busy-period cap 1/(1 + (1-p)e) vs what the optimizer
///      actually reaches.

#include <cstdio>
#include <vector>

#include "core/analysis.hpp"
#include "core/figures.hpp"
#include "core/opt.hpp"
#include "core/rrg.hpp"
#include "core/tgmg.hpp"
#include "sim/fleet.hpp"
#include "sim/markov.hpp"

using namespace elrr;
using namespace elrr::figures;

namespace {

Rrg with_telescopic_f2(double p, int e, double alpha = 0.9) {
  Rrg rrg = figure1a(alpha);
  rrg.set_telescopic(kF2, p, e);
  return rrg;
}

}  // namespace

int main() {
  std::printf("=====================================================================\n");
  std::printf("ElasticRR | telescopic nodes (Section 6 extension), figure 1a base\n");
  std::printf("=====================================================================\n");

  std::printf("\n-- A. throughput model: LP bound vs Markov vs simulation --\n");
  std::printf("%6s %6s %9s %10s %10s %10s\n", "p", "extra", "cap",
              "Theta_lp", "Th_markov", "Th_sim");
  // The whole (p, extra) grid is one fleet workload: every grid point's
  // replications run batched (telescopic graphs included) and drain over
  // all cores, instead of one solo simulation per point.
  const int extras[] = {1, 2, 4};
  const double probs[] = {0.5, 0.7, 0.9, 0.95};
  std::vector<Rrg> grid;
  for (const int extra : extras) {
    for (const double p : probs) grid.push_back(with_telescopic_f2(p, extra));
  }
  sim::SimOptions sopt;
  sopt.measure_cycles = 20000;
  sim::SimFleet fleet(0);
  for (const Rrg& rrg : grid) fleet.submit(rrg, sopt);
  const std::vector<sim::SimReport> sims = fleet.drain();
  std::size_t point = 0;
  for (const int extra : extras) {
    for (const double p : probs) {
      const Rrg& rrg = grid[point];
      const double lp = throughput_upper_bound(rrg);
      const auto mc = sim::exact_throughput(rrg);
      std::printf("%6.2f %6d %9.3f %10.4f %10.4f %10.4f%s\n", p, extra,
                  throughput_cap(rrg), lp, mc.ok ? mc.theta : -1.0,
                  sims[point].theta, mc.ok && mc.theta > lp + 1e-9 ? "  !" : "");
      ++point;
    }
  }

  std::printf("\n-- B. telescopic-aware RR vs pessimistic worst-case clocking --\n");
  std::printf("(F2 fast delay 1, worst-case delay 1 + extra; alpha = 0.9)\n");
  std::printf("%6s %6s %12s %12s %10s\n", "p", "extra", "xi_pess",
              "xi_telescopic", "gain(%)");
  for (const int extra : {1, 2, 4}) {
    for (const double p : {0.5, 0.7, 0.9, 0.95}) {
      Rrg pess = figure1a(0.9);
      pess.set_delay(kF2, 1.0 + extra);
      const MinEffCycResult rp = min_eff_cyc(pess);

      const Rrg tele = with_telescopic_f2(p, extra);
      const MinEffCycResult rt = min_eff_cyc(tele);

      const double gain = (rp.best().xi_lp - rt.best().xi_lp) /
                          rp.best().xi_lp * 100.0;
      std::printf("%6.2f %6d %12.3f %12.3f %10.1f\n", p, extra,
                  rp.best().xi_lp, rt.best().xi_lp, gain);
    }
  }

  std::printf("\n-- C. Pareto frontier under a telescopic cap (p=0.8, e=2) --\n");
  const Rrg rrg = with_telescopic_f2(0.8, 2);
  std::printf("cap = %.3f\n", throughput_cap(rrg));
  const MinEffCycResult result = min_eff_cyc(rrg);
  std::printf("%4s %8s %10s %10s\n", "#", "tau", "Theta_lp", "xi_lp");
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const ParetoPoint& pt = result.points[i];
    std::printf("%4zu %8.2f %10.4f %10.4f%s\n", i, pt.tau, pt.theta_lp,
                pt.xi_lp, i == result.best_index ? "  <== best" : "");
  }
  return 0;
}
