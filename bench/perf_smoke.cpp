/// \file perf_smoke.cpp
/// Opt-in perf trajectory for the simulation fast path: measures
/// single-thread token-simulation throughput (simulated cycles/sec) on a
/// small, a medium, a large and a telescopic RRG, for both the FlatKernel
/// fast path and the reference Kernel, plus the cross-candidate fleet
/// (sim::SimFleet) against the PR-1 per-candidate loop on a
/// multi-candidate Pareto-style workload. Writes BENCH_sim.json next to
/// (or at) the path given as argv[1]. Build with the Release `perf_smoke`
/// CMake target; `cmake --build build --target run_perf_smoke` runs it.
///
/// The per-kernel workload is the standard Monte-Carlo driver (4
/// replications, interleaved by the batched stepper on the fast path --
/// telescopic graphs included since the fleet PR). The fleet workload is
/// the table/figure shape: many candidate configurations, a few
/// replications each, scored in one drain. Numbers are machine-dependent;
/// compare trajectories on one machine, not absolutes across machines.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench89/generator.hpp"
#include "sim/fleet.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Marks every 7th node telescopic (fast with probability 0.85, two
/// extra busy cycles when slow) -- the Section 6 extension shape.
elrr::Rrg make_candidate(const char* circuit, std::uint64_t seed,
                         bool telescopic) {
  elrr::Rrg rrg = elrr::bench89::make_table2_rrg(
      elrr::bench89::spec_by_name(circuit), seed);
  if (telescopic) {
    for (elrr::NodeId n = 0; n < rrg.num_nodes(); n += 7) {
      rrg.set_telescopic(n, 0.85, 2);
    }
  }
  return rrg;
}

struct Case {
  const char* label;
  const char* circuit;
  std::size_t measure_cycles;
  bool telescopic;
};

struct Row {
  double flat_cps = 0.0;  ///< simulated cycles/sec, fast path
  double ref_cps = 0.0;   ///< simulated cycles/sec, reference kernel
  double theta = 0.0;
  bool bit_exact = false;
};

Row measure(const Case& c) {
  const elrr::Rrg rrg = make_candidate(c.circuit, 1, c.telescopic);
  elrr::sim::SimOptions options;
  options.warmup_cycles = 200;
  options.measure_cycles = c.measure_cycles;
  options.runs = 4;
  options.threads = 1;

  const double total_cycles = static_cast<double>(
      (options.warmup_cycles + options.measure_cycles) * options.runs);
  Row row;
  double best_flat = 1e300, best_ref = 1e300;
  double ref_theta = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    options.force_reference = false;
    auto t0 = Clock::now();
    row.theta = elrr::sim::simulate_throughput(rrg, options).theta;
    best_flat = std::min(best_flat, seconds_since(t0));
    options.force_reference = true;
    t0 = Clock::now();
    ref_theta = elrr::sim::simulate_throughput(rrg, options).theta;
    best_ref = std::min(best_ref, seconds_since(t0));
  }
  row.flat_cps = total_cycles / best_flat;
  row.ref_cps = total_cycles / best_ref;
  row.bit_exact = row.theta == ref_theta;
  return row;
}

struct FleetRow {
  double loop_s = 0.0;   ///< PR-1 per-candidate loop, best of reps
  double fleet_s = 0.0;  ///< one SimFleet drain, best of reps
  std::size_t candidates = 0;
  std::size_t workers = 0;
  bool bit_exact = false;
};

/// A Pareto-walk-shaped workload: several candidate configurations of one
/// circuit (half of them telescopic), a few replications each. Baseline
/// is PR 1's per-candidate loop: sequential simulate_throughput calls,
/// and -- as in PR 1, where step_batch refused telescopic graphs --
/// max_batch = 1 (solo stepping) for the telescopic candidates. The fleet
/// scores the identical jobs through one batched work queue.
FleetRow measure_fleet() {
  std::vector<elrr::Rrg> candidates;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    candidates.push_back(make_candidate("s526", seed, false));
  }
  for (std::uint64_t seed = 5; seed <= 8; ++seed) {
    candidates.push_back(make_candidate("s526", seed, true));
  }

  elrr::sim::SimOptions options;
  options.warmup_cycles = 200;
  options.measure_cycles = 20000;
  options.runs = 4;

  FleetRow row;
  row.candidates = candidates.size();

  std::vector<double> loop_thetas(candidates.size());
  std::vector<double> fleet_thetas(candidates.size());
  double best_loop = 1e300, best_fleet = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      elrr::sim::SimOptions solo = options;
      solo.threads = 1;
      if (candidates[i].has_telescopic()) solo.max_batch = 1;  // PR-1 path
      loop_thetas[i] =
          elrr::sim::simulate_throughput(candidates[i], solo).theta;
    }
    best_loop = std::min(best_loop, seconds_since(t0));

    t0 = Clock::now();
    elrr::sim::SimFleet fleet(0);  // all cores
    for (const elrr::Rrg& candidate : candidates) {
      fleet.submit(candidate, options);
    }
    const std::vector<elrr::sim::SimReport> reports = fleet.drain();
    best_fleet = std::min(best_fleet, seconds_since(t0));
    row.workers = fleet.last_worker_count();
    for (std::size_t i = 0; i < reports.size(); ++i) {
      fleet_thetas[i] = reports[i].theta;
    }
  }
  row.loop_s = best_loop;
  row.fleet_s = best_fleet;
  row.bit_exact = loop_thetas == fleet_thetas;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_sim.json";
  const Case cases[] = {
      {"small", "s27", 100000, false},
      {"medium", "s526", 50000, false},
      {"large", "s1488", 10000, false},
      {"telescopic", "s526", 20000, true},
  };

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"token_simulation\",\n"
                    "  \"unit\": \"simulated_cycles_per_second\",\n"
                    "  \"threads\": 1,\n  \"runs\": 4,\n  \"cases\": {\n");
  bool first = true;
  for (const Case& c : cases) {
    const Row row = measure(c);
    std::fprintf(out,
                 "%s    \"%s\": {\"circuit\": \"%s\", "
                 "\"cycles_per_sec\": %.0f, "
                 "\"cycles_per_sec_reference\": %.0f, "
                 "\"speedup_vs_reference\": %.2f, "
                 "\"theta\": %.6f, \"bit_exact\": %s}",
                 first ? "" : ",\n", c.label, c.circuit, row.flat_cps,
                 row.ref_cps, row.flat_cps / row.ref_cps, row.theta,
                 row.bit_exact ? "true" : "false");
    std::printf("%-10s (%s): flat %.2fM cyc/s, reference %.2fM cyc/s, "
                "speedup %.2fx, %s\n",
                c.label, c.circuit, row.flat_cps / 1e6, row.ref_cps / 1e6,
                row.flat_cps / row.ref_cps,
                row.bit_exact ? "bit-exact" : "MISMATCH");
    first = false;
  }
  const FleetRow fleet = measure_fleet();
  std::fprintf(out,
               ",\n    \"fleet\": {\"workload\": "
               "\"8 s526 candidates (4 telescopic) x 4 runs\", "
               "\"candidates\": %zu, \"fleet_workers\": %zu, "
               "\"per_candidate_loop_seconds\": %.4f, "
               "\"fleet_seconds\": %.4f, "
               "\"speedup_vs_loop\": %.2f, \"bit_exact\": %s}",
               fleet.candidates, fleet.workers, fleet.loop_s, fleet.fleet_s,
               fleet.loop_s / fleet.fleet_s,
               fleet.bit_exact ? "true" : "false");
  std::printf("fleet      (%zu candidates, %zu workers): loop %.2fs, "
              "fleet %.2fs, speedup %.2fx, %s\n",
              fleet.candidates, fleet.workers, fleet.loop_s, fleet.fleet_s,
              fleet.loop_s / fleet.fleet_s,
              fleet.bit_exact ? "bit-exact" : "MISMATCH");
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
