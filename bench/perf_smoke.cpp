/// \file perf_smoke.cpp
/// Opt-in perf trajectory for the simulation fast path: measures
/// single-thread token-simulation throughput (simulated cycles/sec) on a
/// small, a medium and a large RRG, for both the FlatKernel fast path
/// and the reference Kernel, and writes BENCH_sim.json next to (or at)
/// the path given as argv[1]. Build with the Release `perf_smoke` CMake
/// target; `cmake --build build --target run_perf_smoke` runs it.
///
/// The workload is the standard Monte-Carlo driver (4 replications,
/// interleaved by the batched stepper on the fast path) -- the shape
/// every table/figure flow uses. Numbers are machine-dependent; compare
/// trajectories on one machine, not absolutes across machines.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench89/generator.hpp"
#include "sim/simulator.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Case {
  const char* label;
  const char* circuit;
  std::size_t measure_cycles;
};

struct Row {
  double flat_cps = 0.0;  ///< simulated cycles/sec, fast path
  double ref_cps = 0.0;   ///< simulated cycles/sec, reference kernel
  double theta = 0.0;
  bool bit_exact = false;
};

Row measure(const Case& c) {
  const elrr::Rrg rrg = elrr::bench89::make_table2_rrg(
      elrr::bench89::spec_by_name(c.circuit), 1);
  elrr::sim::SimOptions options;
  options.warmup_cycles = 200;
  options.measure_cycles = c.measure_cycles;
  options.runs = 4;
  options.threads = 1;

  const double total_cycles = static_cast<double>(
      (options.warmup_cycles + options.measure_cycles) * options.runs);
  Row row;
  double best_flat = 1e300, best_ref = 1e300;
  double ref_theta = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    options.force_reference = false;
    auto t0 = Clock::now();
    row.theta = elrr::sim::simulate_throughput(rrg, options).theta;
    best_flat = std::min(
        best_flat, std::chrono::duration<double>(Clock::now() - t0).count());
    options.force_reference = true;
    t0 = Clock::now();
    ref_theta = elrr::sim::simulate_throughput(rrg, options).theta;
    best_ref = std::min(
        best_ref, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  row.flat_cps = total_cycles / best_flat;
  row.ref_cps = total_cycles / best_ref;
  row.bit_exact = row.theta == ref_theta;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_sim.json";
  const Case cases[] = {
      {"small", "s27", 100000},
      {"medium", "s526", 50000},
      {"large", "s1488", 10000},
  };

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"token_simulation\",\n"
                    "  \"unit\": \"simulated_cycles_per_second\",\n"
                    "  \"threads\": 1,\n  \"runs\": 4,\n  \"cases\": {\n");
  bool first = true;
  for (const Case& c : cases) {
    const Row row = measure(c);
    std::fprintf(out,
                 "%s    \"%s\": {\"circuit\": \"%s\", "
                 "\"cycles_per_sec\": %.0f, "
                 "\"cycles_per_sec_reference\": %.0f, "
                 "\"speedup_vs_reference\": %.2f, "
                 "\"theta\": %.6f, \"bit_exact\": %s}",
                 first ? "" : ",\n", c.label, c.circuit, row.flat_cps,
                 row.ref_cps, row.flat_cps / row.ref_cps, row.theta,
                 row.bit_exact ? "true" : "false");
    std::printf("%-6s (%s): flat %.2fM cyc/s, reference %.2fM cyc/s, "
                "speedup %.2fx, %s\n",
                c.label, c.circuit, row.flat_cps / 1e6, row.ref_cps / 1e6,
                row.flat_cps / row.ref_cps,
                row.bit_exact ? "bit-exact" : "MISMATCH");
    first = false;
  }
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
