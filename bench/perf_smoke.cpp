/// \file perf_smoke.cpp
/// Perf trajectory for the simulation fast path: measures single-thread
/// token-simulation throughput (simulated cycles/sec) on a small, a
/// medium, a large and a telescopic RRG, for both the FlatKernel fast
/// path and the reference Kernel, plus two cross-candidate fleet
/// workloads (sim::SimFleet): the Pareto-style candidate set against the
/// PR-1 per-candidate loop, and a duplicate-heavy set with candidate
/// dedup on vs off. The `pipeline` section runs the full pipelined flow
/// engine (flow::Engine) on a multi-candidate Pareto walk twice --
/// sequential walk-then-score vs overlapped streaming -- and gates on
/// both runs producing bit-identical frontiers and thetas. The `batch`
/// section runs a multi-circuit manifest through the svc::Scheduler
/// (one shared fleet for the whole batch) against the historical
/// per-circuit engine loop, bit-exactness gated the same way. The `proc`
/// section drains the fleet workload through real process-isolated
/// `elrr work` workers and reports the isolation overhead, with the same
/// bit-exactness gate.
///
///   perf_smoke [output.json] [--quick] [--baseline <file.json>]
///
/// Writes the JSON to output.json (default BENCH_sim.json in the working
/// directory; `cmake --build build --target run_perf_smoke` refreshes the
/// committed copy at the repo root). With --baseline, the previous
/// trajectory file is read first and per-section before/after ratios are
/// embedded in the output (and printed) -- the baseline may be the output
/// path itself. --quick shrinks the workloads for the `perf`-labelled
/// ctest entry, which only gates on the deterministic bit-exactness
/// checks: the exit code is non-zero iff any section reports a mismatch.
/// Numbers are machine-dependent; compare trajectories on one machine,
/// not absolutes across machines.
///
/// The per-kernel workload is the standard Monte-Carlo driver (4
/// replications, interleaved by the batched stepper on the fast path --
/// telescopic graphs included since the fleet PR). The fleet workload is
/// the table/figure shape: many candidate configurations, a few
/// replications each, scored in one drain.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench89/generator.hpp"
#include "core/opt.hpp"
#include "flow/circuit_flow.hpp"
#include "flow/engine.hpp"
#include "io/rrg_format.hpp"
#include "lp/session.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sim/fleet.hpp"
#include "support/bench_json.hpp"
#include "svc/scheduler.hpp"

namespace {

using Clock = std::chrono::steady_clock;

bool quick = false;  ///< --quick: shrunken workloads, same checks

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Marks every 7th node telescopic (fast with probability 0.85, two
/// extra busy cycles when slow) -- the Section 6 extension shape.
elrr::Rrg make_candidate(const char* circuit, std::uint64_t seed,
                         bool telescopic) {
  elrr::Rrg rrg = elrr::bench89::make_table2_rrg(
      elrr::bench89::spec_by_name(circuit), seed);
  if (telescopic) {
    for (elrr::NodeId n = 0; n < rrg.num_nodes(); n += 7) {
      rrg.set_telescopic(n, 0.85, 2);
    }
  }
  return rrg;
}

struct Case {
  const char* label;
  const char* circuit;
  std::size_t measure_cycles;
  bool telescopic;
};

struct Row {
  double flat_cps = 0.0;  ///< simulated cycles/sec, fast path
  double ref_cps = 0.0;   ///< simulated cycles/sec, reference kernel
  double theta = 0.0;
  bool bit_exact = false;
};

Row measure(const Case& c) {
  const elrr::Rrg rrg = make_candidate(c.circuit, 1, c.telescopic);
  elrr::sim::SimOptions options;
  options.warmup_cycles = 200;
  options.measure_cycles = quick ? c.measure_cycles / 10 : c.measure_cycles;
  options.runs = 4;
  options.threads = 1;

  const double total_cycles = static_cast<double>(
      (options.warmup_cycles + options.measure_cycles) * options.runs);
  Row row;
  double best_flat = 1e300, best_ref = 1e300;
  double ref_theta = 0.0;
  for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
    options.force_reference = false;
    auto t0 = Clock::now();
    row.theta = elrr::sim::simulate_throughput(rrg, options).theta;
    best_flat = std::min(best_flat, seconds_since(t0));
    options.force_reference = true;
    t0 = Clock::now();
    ref_theta = elrr::sim::simulate_throughput(rrg, options).theta;
    best_ref = std::min(best_ref, seconds_since(t0));
  }
  row.flat_cps = total_cycles / best_flat;
  row.ref_cps = total_cycles / best_ref;
  row.bit_exact = row.theta == ref_theta;
  return row;
}

struct FleetRow {
  double loop_s = 0.0;   ///< PR-1 per-candidate loop, best of reps
  double fleet_s = 0.0;  ///< one SimFleet drain, best of reps
  std::size_t candidates = 0;
  std::size_t workers = 0;
  bool bit_exact = false;
};

std::vector<elrr::Rrg> fleet_candidates() {
  std::vector<elrr::Rrg> candidates;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    candidates.push_back(make_candidate("s526", seed, false));
  }
  for (std::uint64_t seed = 5; seed <= 8; ++seed) {
    candidates.push_back(make_candidate("s526", seed, true));
  }
  return candidates;
}

elrr::sim::SimOptions fleet_sim_options() {
  elrr::sim::SimOptions options;
  options.warmup_cycles = 200;
  options.measure_cycles = quick ? 2000 : 20000;
  options.runs = 4;
  return options;
}

/// A Pareto-walk-shaped workload: several candidate configurations of one
/// circuit (half of them telescopic), a few replications each. Baseline
/// is PR 1's per-candidate loop: sequential simulate_throughput calls,
/// and -- as in PR 1, where step_batch refused telescopic graphs --
/// max_batch = 1 (solo stepping) for the telescopic candidates. The fleet
/// scores the identical jobs through one batched work queue; the fleet
/// object (and with it the persistent worker pool) lives across the
/// measurement reps, as it does across a flow's drains.
FleetRow measure_fleet() {
  const std::vector<elrr::Rrg> candidates = fleet_candidates();
  const elrr::sim::SimOptions options = fleet_sim_options();

  FleetRow row;
  row.candidates = candidates.size();

  std::vector<double> loop_thetas(candidates.size());
  std::vector<double> fleet_thetas(candidates.size());
  double best_loop = 1e300, best_fleet = 1e300;
  elrr::sim::SimFleet fleet(0);  // all cores; pool persists across reps
  for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      elrr::sim::SimOptions solo = options;
      solo.threads = 1;
      if (candidates[i].has_telescopic()) solo.max_batch = 1;  // PR-1 path
      loop_thetas[i] =
          elrr::sim::simulate_throughput(candidates[i], solo).theta;
    }
    best_loop = std::min(best_loop, seconds_since(t0));

    t0 = Clock::now();
    for (const elrr::Rrg& candidate : candidates) {
      fleet.submit(candidate, options);
    }
    const std::vector<elrr::sim::SimReport> reports = fleet.drain();
    best_fleet = std::min(best_fleet, seconds_since(t0));
    row.workers = fleet.last_worker_count();
    for (std::size_t i = 0; i < reports.size(); ++i) {
      fleet_thetas[i] = reports[i].theta;
    }
  }
  row.loop_s = best_loop;
  row.fleet_s = best_fleet;
  row.bit_exact = loop_thetas == fleet_thetas;
  return row;
}

struct DedupRow {
  double off_s = 0.0;  ///< dedup disabled: every duplicate simulated
  double on_s = 0.0;   ///< dedup enabled: unique candidates only
  std::size_t jobs = 0;
  std::size_t unique = 0;
  bool bit_exact = false;  ///< dedup on == dedup off, per job
};

/// The dedup workload: the same candidate set submitted three times over
/// -- the shape of a Pareto walk that revisits configurations (and of
/// sweeps rescoring a frontier). With dedup the fleet simulates each
/// distinct candidate once and fans the scores out.
DedupRow measure_dedup() {
  const std::vector<elrr::Rrg> candidates = fleet_candidates();
  const elrr::sim::SimOptions options = fleet_sim_options();
  constexpr int kCopies = 3;

  DedupRow row;
  row.jobs = candidates.size() * kCopies;

  std::vector<double> off_thetas, on_thetas;
  double best_off = 1e300, best_on = 1e300;
  for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
    for (const bool dedup : {false, true}) {
      elrr::sim::SimFleet fleet(0, dedup);
      for (int copy = 0; copy < kCopies; ++copy) {
        for (const elrr::Rrg& candidate : candidates) {
          fleet.submit(candidate, options);
        }
      }
      const auto t0 = Clock::now();
      const std::vector<elrr::sim::SimReport> reports = fleet.drain();
      const double s = seconds_since(t0);
      std::vector<double>& thetas = dedup ? on_thetas : off_thetas;
      thetas.clear();
      for (const auto& report : reports) thetas.push_back(report.theta);
      if (dedup) {
        best_on = std::min(best_on, s);
        row.unique = fleet.last_unique_jobs();
      } else {
        best_off = std::min(best_off, s);
      }
    }
  }
  row.off_s = best_off;
  row.on_s = best_on;
  row.bit_exact = off_thetas == on_thetas;
  return row;
}

struct ProcRow {
  double inproc_s = 0.0;  ///< in-process pool (1 thread), best of reps
  double proc_s = 0.0;    ///< 2 `elrr work` worker processes, best of reps
  std::size_t candidates = 0;
  bool bit_exact = false;  ///< proc-tier thetas == in-process thetas
};

/// The process-isolation overhead: the fleet workload drained through the
/// in-process pool vs through real `elrr work` worker processes (spawn +
/// serialize + pipe round-trips). ELRR_PROC_WORKERS is read at fleet
/// construction, so each mode builds its own fleet; both fleets persist
/// across the measurement reps so the proc number amortises worker spawns
/// the way a long batch does. The bit_exact gate is the isolation tier's
/// whole contract: identical thetas at any worker count.
ProcRow measure_proc() {
  const std::vector<elrr::Rrg> candidates = fleet_candidates();
  const elrr::sim::SimOptions options = fleet_sim_options();

  ProcRow row;
  row.candidates = candidates.size();

  std::vector<double> inproc_thetas(candidates.size());
  std::vector<double> proc_thetas(candidates.size());
  double best_inproc = 1e300, best_proc = 1e300;
  {
    elrr::sim::SimFleet fleet(1);
    for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
      const auto t0 = Clock::now();
      for (const elrr::Rrg& candidate : candidates) {
        fleet.submit(candidate, options);
      }
      const std::vector<elrr::sim::SimReport> reports = fleet.drain();
      best_inproc = std::min(best_inproc, seconds_since(t0));
      for (std::size_t i = 0; i < reports.size(); ++i) {
        inproc_thetas[i] = reports[i].theta;
      }
    }
  }
  ::setenv("ELRR_PROC_WORKERS", "2", 1);
  ::setenv("ELRR_WORK_BIN", ELRR_CLI_BIN, 1);
  {
    elrr::sim::SimFleet fleet(1);
    for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
      const auto t0 = Clock::now();
      for (const elrr::Rrg& candidate : candidates) {
        fleet.submit(candidate, options);
      }
      const std::vector<elrr::sim::SimReport> reports = fleet.drain();
      best_proc = std::min(best_proc, seconds_since(t0));
      for (std::size_t i = 0; i < reports.size(); ++i) {
        proc_thetas[i] = reports[i].theta;
      }
    }
  }
  ::unsetenv("ELRR_PROC_WORKERS");
  ::unsetenv("ELRR_WORK_BIN");

  row.inproc_s = best_inproc;
  row.proc_s = best_proc;
  row.bit_exact = inproc_thetas == proc_thetas;
  return row;
}

struct ObsRow {
  double disarmed_s = 0.0;   ///< fleet workload, tracing compiled in but off
  double armed_s = 0.0;      ///< same workload with tracing armed
  double recorder_s = 0.0;   ///< same workload with the flight recorder armed
  std::size_t candidates = 0;
  std::size_t spans = 0;     ///< spans recorded during the last armed rep
  std::size_t events = 0;    ///< recorder events during the last armed rep
  bool bit_exact = false;    ///< armed thetas == disarmed thetas
  bool recorder_bit_exact = false;  ///< recorder-armed thetas == disarmed
};

/// The tracing layer's cost on the fleet workload (obs/trace.hpp). The
/// *disarmed* time is the gated number: every OBS_SPAN site compiled
/// into the fleet/worker paths costs one relaxed atomic load when
/// tracing is off, and the bench-diff `obs` section pins that at <= 2%
/// against the committed baseline's fleet_seconds -- a tighter ceiling
/// than the global 10% gate, because "near-zero when off" is the
/// layer's core promise. The armed time is reported for context (two
/// clock reads + a ring store per span). Bit-exactness armed vs
/// disarmed is the no-feedback contract: tracing observes wall-clock,
/// never results.
ObsRow measure_obs() {
  const std::vector<elrr::Rrg> candidates = fleet_candidates();
  const elrr::sim::SimOptions options = fleet_sim_options();

  ObsRow row;
  row.candidates = candidates.size();
  std::vector<double> disarmed_thetas(candidates.size());
  std::vector<double> armed_thetas(candidates.size());
  double best_disarmed = 1e300, best_armed = 1e300;

  elrr::obs::reset();  // tracing off: the disarmed fast path
  {
    elrr::sim::SimFleet fleet(0);
    for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
      const auto t0 = Clock::now();
      for (const elrr::Rrg& candidate : candidates) {
        fleet.submit(candidate, options);
      }
      const std::vector<elrr::sim::SimReport> reports = fleet.drain();
      best_disarmed = std::min(best_disarmed, seconds_since(t0));
      for (std::size_t i = 0; i < reports.size(); ++i) {
        disarmed_thetas[i] = reports[i].theta;
      }
    }
  }

  elrr::obs::configure("", 1 << 16);  // big rings; still disarmed (no path)
  elrr::obs::arm(true);
  {
    elrr::sim::SimFleet fleet(0);
    for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
      const auto t0 = Clock::now();
      for (const elrr::Rrg& candidate : candidates) {
        fleet.submit(candidate, options);
      }
      const std::vector<elrr::sim::SimReport> reports = fleet.drain();
      best_armed = std::min(best_armed, seconds_since(t0));
      for (std::size_t i = 0; i < reports.size(); ++i) {
        armed_thetas[i] = reports[i].theta;
      }
    }
  }
  row.spans = elrr::obs::snapshot_spans().size();
  elrr::obs::reset();

  // The flight recorder (obs/recorder.hpp) on the same workload: armed
  // it costs one journal event per slice dispatch (a relaxed ring claim
  // + a few plain stores), disarmed one relaxed load per site -- the
  // bench-diff `obs`/`recorder_seconds` row pins the armed time at
  // <= 2% regression, and bit-exactness is the same no-feedback
  // contract tracing honors. The dump dir is cwd; the pre-opened temp
  // file is unlinked by reset() below, so a crash-free run leaves
  // nothing behind.
  std::vector<double> recorder_thetas(candidates.size());
  double best_recorder = 1e300;
  elrr::obs::rec::configure(".", 1 << 16);
  {
    elrr::sim::SimFleet fleet(0);
    for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
      const auto t0 = Clock::now();
      for (const elrr::Rrg& candidate : candidates) {
        fleet.submit(candidate, options);
      }
      const std::vector<elrr::sim::SimReport> reports = fleet.drain();
      best_recorder = std::min(best_recorder, seconds_since(t0));
      for (std::size_t i = 0; i < reports.size(); ++i) {
        recorder_thetas[i] = reports[i].theta;
      }
    }
  }
  row.events = elrr::obs::rec::snapshot_events().size() +
               static_cast<std::size_t>(elrr::obs::rec::dropped_events());
  elrr::obs::rec::reset();

  row.disarmed_s = best_disarmed;
  row.armed_s = best_armed;
  row.recorder_s = best_recorder;
  row.bit_exact = disarmed_thetas == armed_thetas;
  row.recorder_bit_exact = disarmed_thetas == recorder_thetas;
  return row;
}

struct PipelineRow {
  double sequential_s = 0.0;  ///< walk-then-score, best of reps
  double overlapped_s = 0.0;  ///< streaming engine, best of reps
  std::size_t candidates = 0;
  std::size_t unique = 0;
  bool bit_exact = false;  ///< frontiers + thetas identical between modes
};

/// The pipelined flow engine on a real multi-candidate Pareto walk:
/// sequential (overlap off: every candidate scores only after the last
/// MILP) vs overlapped (each candidate streams into the fleet while the
/// next MILP solves). The circuit is small enough that every MILP solves
/// to proven optimality well inside the budget (s420 with the MAX_THR
/// polish: ~24 exact MILPs), so both modes walk the identical step
/// sequence and the run is deterministic -- the bit_exact gate compares
/// the full frontier and every simulated theta; it must hold on every
/// host. The speedup is the host's concurrency to hide simulation behind
/// MILP time: ~1.0 on a single-core host (the walk and the fleet worker
/// timeshare one CPU; the pipeline is wall-neutral there), rising toward
/// (walk + sim) / max(walk, sim) with a second core. One background
/// fleet worker: the measured overlap is the pipeline itself, not pool
/// scaling. A fresh engine per run keeps the session cache from leaking
/// scores across measurements.
PipelineRow measure_pipeline() {
  const elrr::Rrg rrg = make_candidate("s420", 1, false);
  elrr::flow::EngineOptions options;
  options.opt.epsilon = 0.01;
  options.opt.polish = true;
  options.opt.milp.time_limit_s = 30.0;  // never reached at this size
  options.sim.warmup_cycles = 1000;
  options.sim.measure_cycles = quick ? 20000 : 200000;
  options.sim.runs = 4;
  options.sim_threads = 1;

  PipelineRow row;
  double best_seq = 1e300, best_ovl = 1e300;
  std::vector<double> seq_thetas, ovl_thetas;
  bool frontiers_match = true;
  for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
    options.overlap = false;
    elrr::flow::Engine sequential(rrg, options);
    auto t0 = Clock::now();
    const elrr::flow::EngineResult seq = sequential.run();
    best_seq = std::min(best_seq, seconds_since(t0));

    options.overlap = true;
    elrr::flow::Engine overlapped(rrg, options);
    t0 = Clock::now();
    const elrr::flow::EngineResult ovl = overlapped.run();
    best_ovl = std::min(best_ovl, seconds_since(t0));

    row.candidates = ovl.candidates_submitted;
    row.unique = ovl.unique_simulations;
    seq_thetas.clear();
    ovl_thetas.clear();
    for (const auto& s : seq.scored) seq_thetas.push_back(s.sim.theta);
    for (const auto& s : ovl.scored) ovl_thetas.push_back(s.sim.theta);
    frontiers_match &= seq.walk.points.size() == ovl.walk.points.size();
    for (std::size_t i = 0;
         frontiers_match && i < seq.walk.points.size(); ++i) {
      frontiers_match &=
          seq.walk.points[i].tau == ovl.walk.points[i].tau &&
          seq.walk.points[i].theta_lp == ovl.walk.points[i].theta_lp &&
          seq.walk.points[i].config == ovl.walk.points[i].config;
    }
    frontiers_match &= seq_thetas == ovl_thetas;
  }
  row.sequential_s = best_seq;
  row.overlapped_s = best_ovl;
  row.bit_exact = frontiers_match;
  return row;
}

struct BatchRow {
  double loop_s = 0.0;       ///< per-circuit engine loop, best of reps
  double scheduler_s = 0.0;  ///< one shared-fleet scheduler batch
  std::size_t jobs = 0;
  std::size_t unique_sims = 0;  ///< fleet misses across the whole batch
  bool bit_exact = false;       ///< scheduler rows == per-circuit rows
};

/// The multi-circuit batch workload (the bench_table2 / CI-manifest
/// shape): small MIN_EFF_CYC flow jobs -- three tiny Table-2
/// structures, two seeds each, plus two repeated jobs (manifests
/// re-submit circuits routinely; re-runs are the service's bread and
/// butter) -- run (a) as the historical per-circuit loop, a fresh
/// engine+fleet per circuit with no memory between jobs, and (b) as ONE
/// svc::Scheduler batch sharing one fleet (persistent pool, cross-job
/// candidate cache, cross-job result cache). One walk worker on both
/// sides: the measured difference is the standing service vs
/// per-circuit teardown, not parallelism. Every MILP solves exactly at
/// these sizes, so both sides must produce bit-identical rows on every
/// host -- the gate.
BatchRow measure_batch() {
  struct JobDef {
    const char* circuit;
    std::uint64_t seed;
  };
  const JobDef defs[] = {{"s208", 1}, {"s420", 1}, {"s838", 1},
                         {"s208", 2}, {"s420", 2}, {"s838", 2},
                         {"s420", 1}, {"s838", 2}};  // manifest repeats
  elrr::flow::FlowOptions options;
  options.epsilon = 0.05;
  options.milp_timeout_s = 30.0;  // never reached at these sizes
  options.sim_cycles = quick ? 2000 : 20000;
  options.use_heuristic = false;  // pure walk: deterministic + cheap
  options.max_simulated_points = 4;

  BatchRow row;
  row.jobs = std::size(defs);
  double best_loop = 1e300, best_sched = 1e300;
  std::vector<double> loop_xi, sched_xi;
  bool exact = true;
  for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
    // (a) the per-circuit loop: fresh engine + fleet per job.
    loop_xi.clear();
    auto t0 = Clock::now();
    for (const JobDef& def : defs) {
      elrr::flow::FlowOptions job_options = options;
      job_options.seed = def.seed;
      const elrr::flow::CircuitResult r = elrr::flow::run_flow(
          def.circuit,
          elrr::bench89::make_table2_rrg(
              elrr::bench89::spec_by_name(def.circuit), def.seed),
          job_options);
      loop_xi.push_back(r.xi_sim_min);
      for (const auto& candidate : r.candidates) {
        loop_xi.push_back(candidate.theta_sim);
      }
      exact &= r.all_exact;
    }
    best_loop = std::min(best_loop, seconds_since(t0));

    // (b) the scheduler: one shared fleet, the whole manifest queued
    // before dispatch.
    sched_xi.clear();
    t0 = Clock::now();
    {
      elrr::svc::SchedulerOptions sopt;
      sopt.workers = 1;
      sopt.sim_threads = 1;
      sopt.start_paused = true;
      elrr::svc::Scheduler scheduler(sopt);
      for (const JobDef& def : defs) {
        elrr::svc::JobSpec job;
        job.name = def.circuit;
        job.rrg = elrr::bench89::make_table2_rrg(
            elrr::bench89::spec_by_name(def.circuit), def.seed);
        job.flow = options;
        job.flow.seed = def.seed;
        job.mode = elrr::svc::JobMode::kMinEffCyc;
        scheduler.submit(std::move(job));
      }
      scheduler.resume();
      for (const elrr::svc::JobResult& done : scheduler.wait_all()) {
        sched_xi.push_back(done.circuit.xi_sim_min);
        for (const auto& candidate : done.circuit.candidates) {
          sched_xi.push_back(candidate.theta_sim);
        }
        exact &= done.state == elrr::svc::JobState::kDone;
      }
      row.unique_sims = scheduler.fleet().cache_stats().misses;
    }
    best_sched = std::min(best_sched, seconds_since(t0));
  }
  row.loop_s = best_loop;
  row.scheduler_s = best_sched;
  row.bit_exact = exact && loop_xi == sched_xi;
  return row;
}

struct MilpRow {
  double cold_step_ms = 0.0;  ///< per-solve seconds x 1e3, warm starts off
  double warm_step_ms = 0.0;  ///< same sweep through the warm session
  double warm_seconds = 0.0;  ///< total warm-side solve seconds (gate key)
  std::int64_t cold_iterations = 0;
  std::int64_t warm_iterations = 0;
  std::size_t solves = 0;
  int circuits_at_1_3x = 0;  ///< sweep circuits with >= 1.3x step speedup
  std::string detail;        ///< per-circuit "name": speedup JSON fields
  bool bit_exact = false;
};

/// The warm-started MILP session (lp::MilpSession, the Pareto walk's
/// core since the incremental-MILP PR) against the stateless cold path.
///
/// Two measurements:
///  * Step timing on the walk-shaped bound sweep: the MIN_CYC(x) model
///    of a mid-size circuit re-targeted through eight adjacent x steps,
///    solved via the session warm vs cold. The LP relaxation isolates
///    the exact cost the warm basis removes -- the root re-optimization
///    (a cold phase-1/phase-2 start vs a dual-simplex resolve); the full
///    MILPs of these circuits are budget-bound at any setting, which
///    would put wall-clock noise, not the session, in the numbers.
///  * The exactness gate: full warm walks on two small circuits (every
///    MILP proven optimal) must reproduce the cold frontier bit for bit
///    -- config, tau, theta, xi, argmin -- the same contract the lp and
///    flow ctest differentials pin.
MilpRow measure_milp() {
  // Strips integrality: the root relaxation of a walk-step model.
  const auto relax = [](const elrr::lp::Model& m) {
    elrr::lp::Model r;
    r.set_sense(m.sense());
    for (int j = 0; j < m.num_cols(); ++j) {
      const elrr::lp::Column& c = m.col(j);
      r.add_col(c.lo, c.hi, c.obj, false, c.name);
    }
    for (int i = 0; i < m.num_rows(); ++i) {
      const elrr::lp::Row& row = m.row(i);
      r.add_row(row.lo, row.hi, row.entries, row.name);
    }
    return r;
  };

  MilpRow row;
  row.bit_exact = true;
  char buf[96];

  const double xs[] = {1.0, 1.03, 1.06, 1.1, 1.14, 1.19, 1.25, 1.31};
  const std::size_t steps = quick ? 4 : std::size(xs);
  const std::vector<const char*> sweep_circuits =
      quick ? std::vector<const char*>{"s526"}
            : std::vector<const char*>{"s526", "s641"};
  for (const char* circuit : sweep_circuits) {
    const elrr::Rrg rrg = make_candidate(circuit, 1, false);
    elrr::lp::Model base = elrr::build_min_cyc_model(rrg, xs[0]);
    elrr::lp::SessionStats stats[2];
    std::vector<double> objectives[2];
    for (const int warm : {0, 1}) {
      elrr::lp::MilpSession session(
          relax(elrr::build_min_cyc_model(rrg, xs[0])), {});
      session.set_warm(warm == 1);
      for (std::size_t k = 0; k < steps; ++k) {
        const elrr::lp::Model next = elrr::build_min_cyc_model(rrg, xs[k]);
        for (int i = 0; i < next.num_rows(); ++i) {
          if (next.row(i).lo != base.row(i).lo ||
              next.row(i).hi != base.row(i).hi) {
            session.set_row_bounds(i, next.row(i).lo, next.row(i).hi);
          }
        }
        const elrr::lp::MilpResult solved = session.solve();
        row.bit_exact &= solved.status == elrr::lp::MilpStatus::kOptimal;
        objectives[warm].push_back(solved.objective);
      }
      stats[warm] = session.stats();
    }
    // Warm re-optimization may land on a different vertex among exact
    // ties; the optimum *value* itself must agree at solver tolerance.
    for (std::size_t k = 0; k < steps; ++k) {
      row.bit_exact &= std::abs(objectives[0][k] - objectives[1][k]) <=
                       1e-9 * (1.0 + std::abs(objectives[0][k]));
    }
    const double cold_step = stats[0].solve_seconds /
                             static_cast<double>(stats[0].solves);
    const double warm_step = stats[1].solve_seconds /
                             static_cast<double>(stats[1].solves);
    row.cold_step_ms += cold_step * 1e3;
    row.warm_step_ms += warm_step * 1e3;
    row.warm_seconds += stats[1].solve_seconds;
    row.cold_iterations += stats[0].lp_iterations;
    row.warm_iterations += stats[1].lp_iterations;
    row.solves += static_cast<std::size_t>(stats[1].solves);
    const double speedup = cold_step / warm_step;
    if (speedup >= 1.3) ++row.circuits_at_1_3x;
    std::snprintf(buf, sizeof(buf), "%s\"%s_step_speedup\": %.2f",
                  row.detail.empty() ? "" : ", ", circuit, speedup);
    row.detail += buf;
  }
  row.cold_step_ms /= static_cast<double>(sweep_circuits.size());
  row.warm_step_ms /= static_cast<double>(sweep_circuits.size());

  // The exactness gate: warm and cold walks, frontier for frontier.
  for (const char* circuit : {"s208", "s838"}) {
    const elrr::Rrg rrg = make_candidate(circuit, 1, false);
    elrr::OptOptions opt;
    opt.epsilon = 0.05;
    opt.milp.time_limit_s = 30.0;  // never reached at these sizes
    elrr::MinEffCycResult results[2];
    for (const int warm : {0, 1}) {
      opt.milp_warm = warm == 1;
      results[warm] = elrr::min_eff_cyc(rrg, opt);
      row.bit_exact &= results[warm].all_exact;
    }
    const elrr::MinEffCycResult& cold = results[0];
    const elrr::MinEffCycResult& warm = results[1];
    bool same = cold.points.size() == warm.points.size() &&
                cold.best_index == warm.best_index &&
                cold.milp_calls == warm.milp_calls;
    for (std::size_t i = 0; same && i < cold.points.size(); ++i) {
      same = cold.points[i].tau == warm.points[i].tau &&
             cold.points[i].theta_lp == warm.points[i].theta_lp &&
             cold.points[i].xi_lp == warm.points[i].xi_lp &&
             cold.points[i].config == warm.points[i].config;
    }
    row.bit_exact &= same;
  }
  return row;
}

/// Baseline trajectory (the previously committed BENCH_sim.json), for
/// the embedded before/after ratios. Loaded fully before the output file
/// is opened, so baseline and output may be the same path.
struct Baseline {
  std::string text;
  std::optional<double> cps(const char* section) const {
    return elrr::bench_json::find_number(text, section, "cycles_per_sec");
  }
  std::optional<double> fleet_seconds(const char* section) const {
    return elrr::bench_json::find_number(text, section, "fleet_seconds");
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_sim.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--baseline needs a file argument\n");
        return 2;
      }
      baseline_path = argv[++i];
    } else if (argv[i][0] == '-') {
      // A typo'd flag must not silently become the output path.
      std::fprintf(stderr,
                   "unknown flag %s\nusage: perf_smoke [output.json] "
                   "[--quick] [--baseline <file.json>]\n",
                   argv[i]);
      return 2;
    } else {
      path = argv[i];
    }
  }
  std::optional<Baseline> baseline;
  if (!baseline_path.empty()) {
    try {
      baseline = Baseline{elrr::io::load_text_file(baseline_path)};
    } catch (const std::exception& e) {
      std::fprintf(stderr, "baseline %s not readable (%s); skipping ratios\n",
                   baseline_path.c_str(), e.what());
    }
  }

  const Case cases[] = {
      {"small", "s27", 100000, false},
      {"medium", "s526", 50000, false},
      {"large", "s1488", 10000, false},
      {"telescopic", "s526", 20000, true},
  };

  // Write through a temp file and rename on success: the output may be
  // the committed baseline itself (run_perf_smoke points both at the
  // repo-root BENCH_sim.json), and an interrupted multi-minute run must
  // not leave it truncated.
  const std::string tmp_path = path + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", tmp_path.c_str());
    return 1;
  }
  bool all_bit_exact = true;
  std::string ratios;  // accumulated "key": value lines for the footer
  char ratio_buf[128];
  std::fprintf(out, "{\n  \"benchmark\": \"token_simulation\",\n"
                    "  \"unit\": \"simulated_cycles_per_second\",\n"
                    "  \"threads\": 1,\n  \"runs\": 4,\n  \"cases\": {\n");
  bool first = true;
  for (const Case& c : cases) {
    const Row row = measure(c);
    all_bit_exact &= row.bit_exact;
    std::fprintf(out,
                 "%s    \"%s\": {\"circuit\": \"%s\", "
                 "\"cycles_per_sec\": %.0f, "
                 "\"cycles_per_sec_reference\": %.0f, "
                 "\"speedup_vs_reference\": %.2f, "
                 "\"theta\": %.6f, \"bit_exact\": %s}",
                 first ? "" : ",\n", c.label, c.circuit, row.flat_cps,
                 row.ref_cps, row.flat_cps / row.ref_cps, row.theta,
                 row.bit_exact ? "true" : "false");
    std::printf("%-10s (%s): flat %.2fM cyc/s, reference %.2fM cyc/s, "
                "speedup %.2fx, %s",
                c.label, c.circuit, row.flat_cps / 1e6, row.ref_cps / 1e6,
                row.flat_cps / row.ref_cps,
                row.bit_exact ? "bit-exact" : "MISMATCH");
    if (baseline) {
      if (const auto prev = baseline->cps(c.label)) {
        const double ratio = row.flat_cps / *prev;
        std::printf(", %.2fx vs baseline", ratio);
        std::snprintf(ratio_buf, sizeof(ratio_buf), "%s\"%s\": %.2f",
                      ratios.empty() ? "" : ", ", c.label, ratio);
        ratios += ratio_buf;
      }
    }
    std::printf("\n");
    first = false;
  }

  const FleetRow fleet = measure_fleet();
  all_bit_exact &= fleet.bit_exact;
  std::fprintf(out,
               ",\n    \"fleet\": {\"workload\": "
               "\"8 s526 candidates (4 telescopic) x 4 runs\", "
               "\"candidates\": %zu, \"fleet_workers\": %zu, "
               "\"per_candidate_loop_seconds\": %.4f, "
               "\"fleet_seconds\": %.4f, "
               "\"speedup_vs_loop\": %.2f, \"bit_exact\": %s}",
               fleet.candidates, fleet.workers, fleet.loop_s, fleet.fleet_s,
               fleet.loop_s / fleet.fleet_s,
               fleet.bit_exact ? "true" : "false");
  std::printf("fleet      (%zu candidates, %zu workers): loop %.2fs, "
              "fleet %.2fs, speedup %.2fx, %s",
              fleet.candidates, fleet.workers, fleet.loop_s, fleet.fleet_s,
              fleet.loop_s / fleet.fleet_s,
              fleet.bit_exact ? "bit-exact" : "MISMATCH");
  if (baseline) {
    if (const auto prev = baseline->fleet_seconds("fleet")) {
      // Seconds of the identical workload: ratio > 1 = this PR is faster.
      const double ratio = *prev / fleet.fleet_s;
      std::printf(", %.2fx vs baseline", ratio);
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%s\"fleet\": %.2f",
                    ratios.empty() ? "" : ", ", ratio);
      ratios += ratio_buf;
    }
  }
  std::printf("\n");

  const DedupRow dedup = measure_dedup();
  all_bit_exact &= dedup.bit_exact;
  std::fprintf(out,
               ",\n    \"fleet_dedup\": {\"workload\": "
               "\"8 s526 candidates x 3 duplicate submissions x 4 runs\", "
               "\"jobs\": %zu, \"unique_simulations\": %zu, "
               "\"dedup_off_seconds\": %.4f, \"fleet_seconds\": %.4f, "
               "\"speedup_vs_no_dedup\": %.2f, \"bit_exact\": %s}",
               dedup.jobs, dedup.unique, dedup.off_s, dedup.on_s,
               dedup.off_s / dedup.on_s, dedup.bit_exact ? "true" : "false");
  std::printf("dedup      (%zu jobs, %zu unique): off %.2fs, on %.2fs, "
              "speedup %.2fx, %s\n",
              dedup.jobs, dedup.unique, dedup.off_s, dedup.on_s,
              dedup.off_s / dedup.on_s,
              dedup.bit_exact ? "bit-exact" : "MISMATCH");

  const PipelineRow pipeline = measure_pipeline();
  all_bit_exact &= pipeline.bit_exact;
  std::fprintf(out,
               ",\n    \"pipeline\": {\"workload\": "
               "\"s420 polished Pareto walk (eps 0.01), 4 runs per "
               "candidate, 1 fleet worker (overlap ~1.0x on 1-core "
               "hosts)\", "
               "\"candidates\": %zu, \"unique_simulations\": %zu, "
               "\"sequential_seconds\": %.4f, \"overlapped_seconds\": %.4f, "
               "\"speedup_vs_sequential\": %.2f, \"bit_exact\": %s}",
               pipeline.candidates, pipeline.unique, pipeline.sequential_s,
               pipeline.overlapped_s,
               pipeline.sequential_s / pipeline.overlapped_s,
               pipeline.bit_exact ? "true" : "false");
  std::printf("pipeline   (%zu candidates, %zu unique): sequential %.2fs, "
              "overlapped %.2fs, speedup %.2fx, %s",
              pipeline.candidates, pipeline.unique, pipeline.sequential_s,
              pipeline.overlapped_s,
              pipeline.sequential_s / pipeline.overlapped_s,
              pipeline.bit_exact ? "bit-exact" : "MISMATCH");
  if (baseline) {
    if (const auto prev = elrr::bench_json::find_number(
            baseline->text, "pipeline", "overlapped_seconds")) {
      const double ratio = *prev / pipeline.overlapped_s;
      std::printf(", %.2fx vs baseline", ratio);
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%s\"pipeline\": %.2f",
                    ratios.empty() ? "" : ", ", ratio);
      ratios += ratio_buf;
    }
  }
  std::printf("\n");

  const BatchRow batch = measure_batch();
  all_bit_exact &= batch.bit_exact;
  std::fprintf(out,
               ",\n    \"batch\": {\"workload\": "
               "\"8 MIN_EFF_CYC flow jobs (s208/s420/s838 x 2 seeds + 2 "
               "manifest repeats), one walk worker, scheduler shared "
               "fleet vs per-circuit engine loop\", "
               "\"jobs\": %zu, \"unique_simulations\": %zu, "
               "\"per_circuit_loop_seconds\": %.4f, "
               "\"scheduler_seconds\": %.4f, "
               "\"speedup_vs_loop\": %.2f, \"bit_exact\": %s}",
               batch.jobs, batch.unique_sims, batch.loop_s, batch.scheduler_s,
               batch.loop_s / batch.scheduler_s,
               batch.bit_exact ? "true" : "false");
  std::printf("batch      (%zu jobs, %zu unique sims): loop %.2fs, "
              "scheduler %.2fs, speedup %.2fx, %s",
              batch.jobs, batch.unique_sims, batch.loop_s, batch.scheduler_s,
              batch.loop_s / batch.scheduler_s,
              batch.bit_exact ? "bit-exact" : "MISMATCH");
  if (baseline) {
    if (const auto prev = elrr::bench_json::find_number(
            baseline->text, "batch", "scheduler_seconds")) {
      const double ratio = *prev / batch.scheduler_s;
      std::printf(", %.2fx vs baseline", ratio);
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%s\"batch\": %.2f",
                    ratios.empty() ? "" : ", ", ratio);
      ratios += ratio_buf;
    }
  }
  std::printf("\n");

  const MilpRow milp = measure_milp();
  all_bit_exact &= milp.bit_exact;
  std::fprintf(out,
               ",\n    \"milp\": {\"workload\": "
               "\"MIN_CYC(x) root relaxations re-targeted across 8 "
               "adjacent walk steps, session warm vs cold, plus warm-vs-"
               "cold full-walk frontier identity on s208/s838\", "
               "\"solves\": %zu, \"cold_step_ms\": %.3f, "
               "\"warm_step_ms\": %.3f, \"warm_speedup\": %.2f, "
               "\"circuits_at_1.3x\": %d, "
               "\"lp_iterations_cold\": %lld, \"lp_iterations_warm\": %lld, "
               "%s, \"warm_seconds\": %.4f, \"bit_exact\": %s}",
               milp.solves, milp.cold_step_ms, milp.warm_step_ms,
               milp.cold_step_ms / milp.warm_step_ms, milp.circuits_at_1_3x,
               static_cast<long long>(milp.cold_iterations),
               static_cast<long long>(milp.warm_iterations),
               milp.detail.c_str(), milp.warm_seconds,
               milp.bit_exact ? "true" : "false");
  std::printf("milp       (%zu session solves): cold %.2fms/step, "
              "warm %.2fms/step, speedup %.2fx (%d circuits >= 1.3x), %s",
              milp.solves, milp.cold_step_ms, milp.warm_step_ms,
              milp.cold_step_ms / milp.warm_step_ms, milp.circuits_at_1_3x,
              milp.bit_exact ? "bit-exact" : "MISMATCH");
  if (baseline) {
    if (const auto prev = elrr::bench_json::find_number(
            baseline->text, "milp", "warm_seconds")) {
      const double ratio = *prev / milp.warm_seconds;
      std::printf(", %.2fx vs baseline", ratio);
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%s\"milp\": %.2f",
                    ratios.empty() ? "" : ", ", ratio);
      ratios += ratio_buf;
    }
  }
  std::printf("\n");

  const ProcRow proc = measure_proc();
  all_bit_exact &= proc.bit_exact;
  std::fprintf(out,
               ",\n    \"proc\": {\"workload\": "
               "\"the fleet candidate set drained through the in-process "
               "pool vs 2 process-isolated elrr-work workers\", "
               "\"candidates\": %zu, \"inproc_seconds\": %.4f, "
               "\"proc_seconds\": %.4f, \"overhead\": %.2f, "
               "\"bit_exact\": %s}",
               proc.candidates, proc.inproc_s, proc.proc_s,
               proc.proc_s / proc.inproc_s,
               proc.bit_exact ? "true" : "false");
  std::printf("proc       (%zu candidates): in-process %.3fs, "
              "2 worker processes %.3fs, isolation overhead %.2fx, %s",
              proc.candidates, proc.inproc_s, proc.proc_s,
              proc.proc_s / proc.inproc_s,
              proc.bit_exact ? "bit-exact" : "MISMATCH");
  if (baseline) {
    if (const auto prev = elrr::bench_json::find_number(
            baseline->text, "proc", "proc_seconds")) {
      const double ratio = *prev / proc.proc_s;
      std::printf(", %.2fx vs baseline", ratio);
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%s\"proc\": %.2f",
                    ratios.empty() ? "" : ", ", ratio);
      ratios += ratio_buf;
    }
  }
  std::printf("\n");

  const ObsRow obs = measure_obs();
  all_bit_exact &= obs.bit_exact;
  all_bit_exact &= obs.recorder_bit_exact;
  std::fprintf(out,
               ",\n    \"obs\": {\"workload\": "
               "\"the fleet candidate set with tracing disarmed (gated: "
               "one relaxed load per site) vs armed vs the flight "
               "recorder armed\", "
               "\"candidates\": %zu, \"fleet_seconds\": %.4f, "
               "\"armed_seconds\": %.4f, \"armed_overhead\": %.2f, "
               "\"spans_recorded\": %zu, "
               "\"recorder_seconds\": %.4f, \"recorder_overhead\": %.2f, "
               "\"events_recorded\": %zu, \"bit_exact\": %s}",
               obs.candidates, obs.disarmed_s, obs.armed_s,
               obs.armed_s / obs.disarmed_s, obs.spans, obs.recorder_s,
               obs.recorder_s / obs.disarmed_s, obs.events,
               obs.bit_exact && obs.recorder_bit_exact ? "true" : "false");
  std::printf("obs        (%zu candidates): disarmed %.3fs, armed %.3fs "
              "(%zu spans), armed overhead %.2fx, recorder %.3fs "
              "(%zu events, %.2fx), %s",
              obs.candidates, obs.disarmed_s, obs.armed_s, obs.spans,
              obs.armed_s / obs.disarmed_s, obs.recorder_s, obs.events,
              obs.recorder_s / obs.disarmed_s,
              obs.bit_exact && obs.recorder_bit_exact ? "bit-exact"
                                                      : "MISMATCH");
  if (baseline) {
    if (const auto prev = elrr::bench_json::find_number(
            baseline->text, "obs", "fleet_seconds")) {
      const double ratio = *prev / obs.disarmed_s;
      std::printf(", %.2fx vs baseline", ratio);
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%s\"obs\": %.2f",
                    ratios.empty() ? "" : ", ", ratio);
      ratios += ratio_buf;
    }
  }
  std::printf("\n");

  std::fprintf(out, "\n  },\n  \"vs_baseline\": {%s}\n}\n", ratios.c_str());
  std::fclose(out);
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename %s to %s\n", tmp_path.c_str(),
                 path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (!all_bit_exact) {
    std::fprintf(stderr, "perf_smoke: bit-exactness violated (see above)\n");
    return 1;
  }
  return 0;
}
