/// \file bench_capacity_ablation.cpp
/// Ablation of the paper's footnote-1 assumption ("each elastic FIFO is
/// big enough ... performance determined by the forward critical paths"):
/// throughput of the SELF control network as EB capacity grows, compared
/// with the unbounded-FIFO token simulator and the exact Markov value.
/// Ties the assumption to Lu & Koh's FIFO-sizing work ([7] in the paper).

#include <cstdio>

#include "bench89/generator.hpp"
#include "core/figures.hpp"
#include "core/opt.hpp"
#include "elastic/control_sim.hpp"
#include "sim/markov.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace elrr;

void sweep(const char* name, const Rrg& rrg) {
  sim::SimOptions sopt;
  sopt.measure_cycles = 30000;
  const double unbounded = sim::simulate_throughput(rrg, sopt).theta;

  std::printf("%-24s unbounded-FIFO Theta = %.4f\n", name, unbounded);
  std::printf("  %-8s %9s %9s\n", "capacity", "Theta", "of-limit");
  for (int capacity : {1, 2, 3, 4, 8, 16}) {
    elastic::ControlSimOptions copt;
    copt.capacity = capacity;
    copt.measure_cycles = 30000;
    const double theta =
        elastic::simulate_control_throughput(rrg, copt).theta;
    std::printf("  %-8d %9.4f %8.1f%%\n", capacity, theta,
                unbounded > 0 ? theta / unbounded * 100.0 : 0.0);
  }
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("ElasticRR | EB capacity ablation (footnote 1 / FIFO sizing [7])\n");
  std::printf("==============================================================\n");

  sweep("figure 2 (alpha=0.9)", figures::figure2(0.9));
  sweep("figure 1b early (a=0.5)", figures::figure1b(0.5, true));

  // An optimized mid-size circuit: capacity effects on a real Pareto
  // configuration with recycled bubbles.
  const auto& spec = bench89::spec_by_name("s382");
  const Rrg rrg = bench89::make_table2_rrg(spec, 1);
  OptOptions opt;
  opt.epsilon = 0.05;
  opt.milp.time_limit_s = 10.0;
  const MinEffCycResult res = min_eff_cyc(rrg, opt);
  sweep("s382 best RC", apply_config(rrg, res.best().config));
  return 0;
}
