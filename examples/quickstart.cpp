/// \file quickstart.cpp
/// ElasticRR in ~60 lines: build the paper's running example (Figure 1a),
/// ask MIN_EFF_CYC for the best retiming & recycling configuration with
/// early evaluation, and check the result by exact Markov analysis.
///
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "core/rrg.hpp"
#include "sim/markov.hpp"

int main() {
  using namespace elrr;

  // An elastic system: three unit-delay blocks in a loop closed by a
  // multiplexer `m` that selects its "top" feedback channel (3 EBs, 3
  // tokens) with probability 0.9 and the direct channel otherwise.
  const double alpha = 0.9;
  Rrg rrg;
  const NodeId m = rrg.add_node("m", 0.0, NodeKind::kEarly);
  const NodeId f1 = rrg.add_node("F1", 1.0);
  const NodeId f2 = rrg.add_node("F2", 1.0);
  const NodeId f3 = rrg.add_node("F3", 1.0);
  const NodeId f = rrg.add_node("f", 0.0);
  rrg.add_edge(m, f1, /*tokens=*/1, /*buffers=*/1);
  rrg.add_edge(f1, f2, 0, 0);
  rrg.add_edge(f2, f3, 0, 0);
  rrg.add_edge(f3, f, 0, 0);
  rrg.add_edge(f, m, 3, 3, alpha);        // "top" channel
  rrg.add_edge(f, m, 0, 0, 1.0 - alpha);  // "bottom" channel
  rrg.validate();

  const RcEvaluation before = evaluate_rrg(rrg);
  std::printf("before: tau = %.2f, Theta <= %.3f, xi = %.3f\n", before.tau,
              before.theta_lp, before.xi_lp);

  // Optimize: walks the Pareto frontier with MIN_CYC/MAX_THR MILPs.
  const MinEffCycResult result = min_eff_cyc(rrg);
  const ParetoPoint& best = result.best();
  std::printf("after:  tau = %.2f, Theta <= %.3f, xi = %.3f  (%zu Pareto "
              "points, %d MILPs)\n",
              best.tau, best.theta_lp, best.xi_lp, result.points.size(),
              result.milp_calls);

  // The winning configuration, edge by edge.
  std::printf("\nbest configuration (R0' = tokens, R' = elastic buffers):\n");
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    std::printf("  %-3s -> %-3s  R0'=%+d  R'=%d\n",
                rrg.name(rrg.graph().src(e)).c_str(),
                rrg.name(rrg.graph().dst(e)).c_str(), best.config.tokens[e],
                best.config.buffers[e]);
  }

  // Validate with the exact Markov engine: Theta(fig.2) = 1/(3-2a).
  const Rrg optimized = apply_config(rrg, best.config);
  const auto exact = sim::exact_throughput(optimized);
  std::printf("\nexact throughput of the optimized system: %.4f "
              "(paper's closed form 1/(3-2a) = %.4f)\n",
              exact.theta, 1.0 / (3.0 - 2.0 * alpha));
  std::printf("effective cycle time improved %.2f -> %.2f (%.0f%%)\n",
              before.xi_lp, best.tau / exact.theta,
              (1.0 - best.tau / exact.theta / before.xi_lp) * 100.0);
  return 0;
}
