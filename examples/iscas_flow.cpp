/// \file iscas_flow.cpp
/// The paper's experimental flow end to end on a `.bench` netlist:
/// parse -> fold DFFs into token edges -> extract the largest SCC ->
/// apply the Section-5 annotation protocol -> optimize -> report.
///
/// Pass a path to a real ISCAS89 .bench file to run on it:
///   ./build/examples/iscas_flow /path/to/s27.bench
/// Without arguments an embedded sample netlist is used.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench89/bench_format.hpp"
#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "graph/scc.hpp"
#include "support/rng.hpp"

namespace {

// A small sequential netlist in ISCAS89 syntax (three interlocking
// feedback loops through DFFs, plus combinational logic).
constexpr const char* kEmbedded = R"(
# embedded sample: 3-register controller core
INPUT(go)
OUTPUT(done)
n1  = NAND(q1, go)
n2  = NOR(n1, q3)
n3  = AND(n2, q2)
n4  = OR(n3, n1)
n5  = XOR(n4, q1)
q1  = DFF(n2)
q2  = DFF(n4)
q3  = DFF(n5)
done = BUFF(n5)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace elrr;
  std::string text = kEmbedded;
  std::string name = "embedded";
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
    name = argv[1];
  }

  const bench89::BenchCircuit circuit = bench89::parse_bench(text, name);
  std::printf("%s: %zu inputs, %zu outputs, %zu gates\n",
              circuit.name.c_str(), circuit.inputs.size(),
              circuit.outputs.size(), circuit.gates.size());

  const Rrg netlist = bench89::circuit_to_rrg(circuit);
  const Rrg scc = bench89::largest_scc_rrg(netlist);
  std::printf("netlist graph: %zu nodes / %zu edges; largest SCC: %zu / %zu\n",
              netlist.num_nodes(), netlist.num_edges(), scc.num_nodes(),
              scc.num_edges());
  if (scc.num_nodes() < 2) {
    std::printf("SCC too small to optimize; done.\n");
    return 0;
  }

  // Section 5 annotation protocol on the extracted structure: random
  // delays in (0, 20], tokens kept from the DFFs, multi-input nodes
  // marked early with probability 0.4.
  Rng rng(hash_name(name));
  Rrg annotated = scc;
  int early = 0;
  for (NodeId n = 0; n < annotated.num_nodes(); ++n) {
    annotated.set_delay(n, rng.uniform_open_closed(0.0, 20.0));
    if (annotated.graph().in_degree(n) >= 2 && rng.bernoulli(0.4)) {
      annotated.set_kind(n, NodeKind::kEarly);
      const auto probs =
          rng.simplex(annotated.graph().in_degree(n), 0.05);
      std::size_t idx = 0;
      for (EdgeId e : annotated.graph().in_edges(n)) {
        annotated.set_gamma(e, probs[idx++]);
      }
      ++early;
    }
  }
  annotated.validate();
  std::printf("annotated: %d early-evaluation nodes\n", early);

  const RcEvaluation base = evaluate_rrg(annotated);
  std::printf("xi* (no optimization):    %8.2f\n", base.xi_lp);

  OptOptions options;
  options.milp.time_limit_s = 30.0;
  OptOptions late = options;
  late.treat_all_simple = true;
  std::printf("xi_nee (late evaluation): %8.2f\n",
              min_eff_cyc(annotated, late).best().xi_lp);
  const MinEffCycResult result = min_eff_cyc(annotated, options);
  std::printf("xi_lp (early evaluation): %8.2f  [%zu Pareto points]\n",
              result.best().xi_lp, result.points.size());
  return 0;
}
