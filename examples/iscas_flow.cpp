/// \file iscas_flow.cpp
/// The paper's experimental flow end to end on a `.bench` netlist:
/// parse -> fold DFFs into token edges -> extract the largest SCC ->
/// apply the Section-5 annotation protocol -> optimize -> report.
///
/// The optimization runs on the svc::Scheduler library API -- the same
/// multi-circuit batch service behind `elrr batch` and bench_table2:
/// one shared simulation fleet serves a score-only job (the baseline
/// throughput of the annotated circuit) and the MIN_EFF_CYC flow job
/// concurrently, with per-job progress/stats reported at the end.
///
/// Pass a path to a real ISCAS89 .bench file to run on it:
///   ./build/examples/iscas_flow /path/to/s27.bench
/// Without arguments an embedded sample netlist is used.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench89/bench_format.hpp"
#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "graph/scc.hpp"
#include "support/rng.hpp"
#include "svc/scheduler.hpp"

namespace {

// A small sequential netlist in ISCAS89 syntax (three interlocking
// feedback loops through DFFs, plus combinational logic).
constexpr const char* kEmbedded = R"(
# embedded sample: 3-register controller core
INPUT(go)
OUTPUT(done)
n1  = NAND(q1, go)
n2  = NOR(n1, q3)
n3  = AND(n2, q2)
n4  = OR(n3, n1)
n5  = XOR(n4, q1)
q1  = DFF(n2)
q2  = DFF(n4)
q3  = DFF(n5)
done = BUFF(n5)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace elrr;
  std::string text = kEmbedded;
  std::string name = "embedded";
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
    name = argv[1];
  }

  const bench89::BenchCircuit circuit = bench89::parse_bench(text, name);
  std::printf("%s: %zu inputs, %zu outputs, %zu gates\n",
              circuit.name.c_str(), circuit.inputs.size(),
              circuit.outputs.size(), circuit.gates.size());

  const Rrg netlist = bench89::circuit_to_rrg(circuit);
  const Rrg scc = bench89::largest_scc_rrg(netlist);
  std::printf("netlist graph: %zu nodes / %zu edges; largest SCC: %zu / %zu\n",
              netlist.num_nodes(), netlist.num_edges(), scc.num_nodes(),
              scc.num_edges());
  if (scc.num_nodes() < 2) {
    std::printf("SCC too small to optimize; done.\n");
    return 0;
  }

  // Section 5 annotation protocol on the extracted structure: random
  // delays in (0, 20], tokens kept from the DFFs, multi-input nodes
  // marked early with probability 0.4.
  Rng rng(hash_name(name));
  Rrg annotated = scc;
  int early = 0;
  for (NodeId n = 0; n < annotated.num_nodes(); ++n) {
    annotated.set_delay(n, rng.uniform_open_closed(0.0, 20.0));
    if (annotated.graph().in_degree(n) >= 2 && rng.bernoulli(0.4)) {
      annotated.set_kind(n, NodeKind::kEarly);
      const auto probs =
          rng.simplex(annotated.graph().in_degree(n), 0.05);
      std::size_t idx = 0;
      for (EdgeId e : annotated.graph().in_edges(n)) {
        annotated.set_gamma(e, probs[idx++]);
      }
      ++early;
    }
  }
  annotated.validate();
  std::printf("annotated: %d early-evaluation nodes\n", early);

  const RcEvaluation base = evaluate_rrg(annotated);
  std::printf("xi* (no optimization):    %8.2f\n", base.xi_lp);

  // The batch service: one shared fleet scores both jobs. The score-only
  // job simulates the unoptimized circuit; the MIN_EFF_CYC job runs the
  // full walk + heuristic merge + simulation reranking.
  flow::FlowOptions options;
  options.milp_timeout_s = 30.0;
  svc::SchedulerOptions sopt;
  sopt.workers = 1;
  svc::Scheduler scheduler(sopt);

  svc::JobSpec score;
  score.name = name + "/score";
  score.rrg = annotated;
  score.flow = options;
  score.mode = svc::JobMode::kScoreOnly;
  const svc::JobId score_id = scheduler.submit(std::move(score));

  svc::JobSpec optimize;
  optimize.name = name + "/flow";
  optimize.rrg = annotated;
  optimize.flow = options;
  optimize.mode = svc::JobMode::kMinEffCyc;
  const svc::JobId flow_id = scheduler.submit(std::move(optimize));

  const svc::JobResult scored = scheduler.wait(score_id);
  if (scored.state == svc::JobState::kDone) {
    std::printf("simulated Theta (as-is):  %8.4f  (xi %8.2f)\n",
                scored.theta_sim, scored.xi_sim);
  }

  const svc::JobResult optimized = scheduler.wait(flow_id);
  if (optimized.state != svc::JobState::kDone) {
    std::printf("flow job %s: %s\n", svc::to_string(optimized.state),
                optimized.error.c_str());
    return 1;
  }
  const flow::CircuitResult& result = optimized.circuit;
  std::printf("xi_nee (late evaluation): %8.2f\n", result.xi_nee);
  std::printf("xi_sim (early, best):     %8.2f  [%zu candidates simulated, "
              "improvement %.1f%%]\n",
              result.xi_sim_min, result.candidates.size(),
              result.improve_percent);
  std::printf("service: %zu candidates walked, %zu fleet jobs (%zu unique), "
              "%.2fs walk + %.2fs sim wait\n",
              optimized.stats.candidates_walked, optimized.stats.sim_jobs,
              optimized.stats.unique_simulations,
              optimized.stats.walk_seconds, optimized.stats.sim_wait_seconds);
  return 0;
}
