/// \file pipeline_bypass.cpp
/// A processor-flavored scenario: a 5-stage elastic pipeline with a
/// bypass (forwarding) multiplexer in the execute stage. The operand mux
/// selects the register-file path most of the time but occasionally the
/// long memory path; with early evaluation the pipeline does not need to
/// wait for the slow path on every cycle, and retiming & recycling can
/// shorten the clock without killing throughput.
///
/// Demonstrates: building a domain-shaped RRG, comparing late vs early
/// optimization, simulating the winner, and emitting its SELF controllers
/// as Verilog.

#include <cstdio>
#include <fstream>

#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "elastic/verilog.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace elrr;

  // Stage delays in ns-ish units. The memory path (dcache) is slow.
  Rrg rrg;
  const NodeId fetch = rrg.add_node("fetch", 6.0);
  const NodeId decode = rrg.add_node("decode", 5.0);
  const NodeId bypass = rrg.add_node("bypass_mux", 1.0, NodeKind::kEarly);
  const NodeId exec = rrg.add_node("exec", 8.0);
  const NodeId dcache = rrg.add_node("dcache", 9.0);
  const NodeId wback = rrg.add_node("writeback", 2.0);

  // Forward pipeline: fetch -> decode -> bypass -> exec -> writeback,
  // registered between stages (one token per edge).
  rrg.add_edge(fetch, decode, 1, 1);
  rrg.add_edge(decode, bypass, 1, 1, 0.75);  // register-file operands
  rrg.add_edge(exec, dcache, 0, 0);
  rrg.add_edge(dcache, bypass, 1, 1, 0.25);  // loaded operands (forwarded)
  rrg.add_edge(bypass, exec, 0, 0);
  rrg.add_edge(exec, wback, 1, 1);
  rrg.add_edge(wback, fetch, 1, 1);  // commit/next-pc loop
  rrg.validate();

  const RcEvaluation base = evaluate_rrg(rrg);
  std::printf("pipeline as designed:  tau=%.2f  Theta<=%.3f  xi=%.3f\n",
              base.tau, base.theta_lp, base.xi_lp);

  OptOptions options;
  options.epsilon = 0.01;

  OptOptions late = options;
  late.treat_all_simple = true;
  const MinEffCycResult nee = min_eff_cyc(rrg, late);
  std::printf("late-evaluation optimum:    xi = %.3f\n", nee.best().xi_lp);

  const MinEffCycResult early = min_eff_cyc(rrg, options);
  const ParetoPoint& best = early.best();
  std::printf("early-evaluation optimum:   xi = %.3f  (tau=%.2f, "
              "Theta<=%.3f)\n",
              best.xi_lp, best.tau, best.theta_lp);

  const Rrg optimized = apply_config(rrg, best.config);
  sim::SimOptions sopt;
  sopt.measure_cycles = 50000;
  const auto sim = sim::simulate_throughput(optimized, sopt);
  std::printf("simulated:                  Theta = %.3f -> xi = %.3f\n",
              sim.theta, best.tau / sim.theta);
  std::printf("improvement over late evaluation: %.1f%%\n",
              (nee.best().xi_lp - best.tau / sim.theta) / nee.best().xi_lp *
                  100.0);

  // Emit the SELF control network of the winning configuration.
  elastic::VerilogOptions vopt;
  vopt.top_name = "pipeline_bypass_top";
  const std::string verilog = elastic::emit_verilog(optimized, vopt);
  std::ofstream("/tmp/pipeline_bypass.v") << verilog;
  std::printf("\nwrote /tmp/pipeline_bypass.v (%zu bytes of SELF controllers)\n",
              verilog.size());
  return 0;
}
