/// \file dsp_dataflow.cpp
/// An IIR-style DSP dataflow loop driven end to end through the library:
///
///    in ──► mac1 ──► mac2 ──► rnd ──► out
///            ▲        ▲        │
///            └── z⁻¹ ──┴─ z⁻²──┘   (feedback taps through delay registers)
///
/// The multiply-accumulate units share a saturating "rnd" stage that is
/// cheap for most samples but needs two extra cycles when the saturation
/// logic kicks in (telescopic, p = 0.85). The select-driven output mux
/// chooses between the filtered stream and a bypass with probability
/// 0.8/0.2 (early evaluation).
///
/// Pipeline: optimize (hybrid exact + heuristic) -> verify by simulation
/// -> size the FIFOs -> export .rrg/Verilog artifacts to /tmp.

#include <cstdio>

#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "elastic/fifo_sizing.hpp"
#include "elastic/verilog.hpp"
#include "heur/heuristic.hpp"
#include "io/rrg_format.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace elrr;

  Rrg rrg;
  const NodeId in = rrg.add_node("in", 2.0);
  const NodeId mac1 = rrg.add_node("mac1", 8.0);
  const NodeId mac2 = rrg.add_node("mac2", 8.0);
  const NodeId rnd = rrg.add_node("rnd", 3.0);
  const NodeId mux = rrg.add_node("mux", 1.0, NodeKind::kEarly);
  const NodeId out = rrg.add_node("out", 2.0);

  rrg.add_edge(in, mac1, 1, 1);
  rrg.add_edge(mac1, mac2, 0, 0);
  rrg.add_edge(mac2, rnd, 0, 0);
  rrg.add_edge(rnd, mac1, 1, 1);   // z^-1 feedback tap
  rrg.add_edge(rnd, mac2, 2, 2);   // z^-2 feedback tap
  rrg.add_edge(rnd, mux, 0, 0, 0.8);   // filtered stream
  rrg.add_edge(in, mux, 1, 1, 0.2);    // bypass
  rrg.add_edge(mux, out, 0, 0);
  rrg.add_edge(out, in, 2, 2);     // stream flow-control loop
  rrg.set_telescopic(rnd, 0.85, 2);
  rrg.validate();

  const RcEvaluation before = evaluate_rrg(rrg);
  std::printf("as designed:  tau = %5.2f  Theta_lp = %.3f  xi_lp = %6.3f "
              "(telescopic cap %.3f)\n",
              before.tau, before.theta_lp, before.xi_lp,
              throughput_cap(rrg));

  // Hybrid optimization: exact MILP walk + MILP-free heuristic.
  const MinEffCycResult exact = min_eff_cyc(rrg);
  const HeuristicResult heur = heur_eff_cyc(rrg);
  const ParetoPoint& winner = exact.best().xi_lp <= heur.best().xi_lp
                                  ? exact.best()
                                  : heur.best();
  std::printf("optimized:    tau = %5.2f  Theta_lp = %.3f  xi_lp = %6.3f "
              "(%zu exact + %zu heuristic Pareto points)\n",
              winner.tau, winner.theta_lp, winner.xi_lp,
              exact.points.size(), heur.points.size());

  const Rrg tuned = apply_config(rrg, winner.config);
  sim::SimOptions sopt;
  sopt.measure_cycles = 40000;
  const sim::SimResult sim = sim::simulate_throughput(tuned, sopt);
  std::printf("simulated:    Theta = %.3f +- %.4f -> xi = %6.3f\n",
              sim.theta, sim.stderr_theta, winner.tau / sim.theta);

  // FIFO sizing for the fixed-latency skeleton (sizing runs on the SELF
  // control network, which models fixed-latency units plus telescopic
  // busy semantics; we size the non-telescopic equivalent for clarity).
  Rrg sized = tuned;
  sized.set_telescopic(rnd, 1.0, 0);
  elastic::FifoSizingOptions fopt;
  fopt.sim.measure_cycles = 6000;
  const elastic::FifoSizingResult sizing = elastic::size_fifos(sized, fopt);
  std::printf("FIFO sizing:  uniform capacity %d keeps %.1f%% of the "
              "unbounded-FIFO throughput (%d simulations)\n",
              sizing.uniform_capacity,
              100.0 * sizing.theta_uniform /
                  std::max(1e-9, sizing.theta_reference),
              sizing.sim_evals);

  // Artifacts.
  io::save_text_file("/tmp/dsp_dataflow.rrg",
                     io::write_rrg(tuned, "dsp_dataflow"));
  io::save_text_file("/tmp/dsp_dataflow.v", elastic::emit_verilog(sized));
  std::printf("wrote /tmp/dsp_dataflow.rrg and /tmp/dsp_dataflow.v\n");
  return 0;
}
