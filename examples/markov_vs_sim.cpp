/// \file markov_vs_sim.cpp
/// Cross-validation of the three throughput estimators on the paper's
/// examples: the LP upper bound (eq. (4)/(11)), exact Markov analysis
/// (Section 1.4's method) and Monte-Carlo simulation -- plus the TGMG
/// model constructions of Figures 3 and 4 dumped as Graphviz files.

#include <cstdio>
#include <fstream>

#include "core/figures.hpp"
#include "core/tgmg.hpp"
#include "sim/markov.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace elrr;
  using namespace elrr::figures;

  std::printf("alpha sweep over figure 1(b) (early) and figure 2:\n");
  std::printf("%6s | %9s %9s %9s | %9s %9s %9s\n", "alpha", "1b:lp",
              "1b:markov", "1b:sim", "2:lp", "2:markov", "2:sim");
  sim::SimOptions sopt;
  sopt.measure_cycles = 40000;
  for (double alpha = 0.1; alpha < 0.95; alpha += 0.1) {
    const Rrg f1b = figure1b(alpha, true);
    const Rrg f2 = figure2(alpha, true);
    std::printf("%6.2f | %9.4f %9.4f %9.4f | %9.4f %9.4f %9.4f\n", alpha,
                throughput_upper_bound(f1b),
                sim::exact_throughput(f1b).theta,
                sim::simulate_throughput(f1b, sopt).theta,
                throughput_upper_bound(f2), sim::exact_throughput(f2).theta,
                sim::simulate_throughput(f2, sopt).theta);
  }
  std::printf("\n(the LP bound dominates; Markov and simulation agree; "
              "figure 2's Markov value is exactly 1/(3-2a))\n");

  // Markov chain sizes: exact analysis is exponential in general (the
  // reason the paper uses the LP bound inside the optimization loop).
  const auto chain = sim::exact_throughput(figure1b(0.5, true));
  std::printf("\nfigure 1(b) chain: %zu states, %zu transitions, "
              "%zu damped-power iterations\n",
              chain.num_states, chain.num_transitions, chain.iterations);

  // Figures 3 and 4: the TGMG constructions.
  const Tgmg fig3 = procedure1(figure1b(0.5, true));
  const Tgmg fig4 = procedure2(fig3);
  std::ofstream("/tmp/figure3_tgmg.dot") << fig3.to_dot();
  std::ofstream("/tmp/figure4_tgmg.dot") << fig4.to_dot();
  std::printf("\nwrote /tmp/figure3_tgmg.dot (%zu nodes) and /tmp/figure4_tgmg.dot "
              "(%zu nodes) -- compare with the paper's Figures 3/4\n",
              fig3.num_nodes(), fig4.num_nodes());
  return 0;
}
