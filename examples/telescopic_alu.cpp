/// \file telescopic_alu.cpp
/// Telescopic (variable-latency) units -- the extension the paper lists
/// as future work in Section 6 -- on a small out-of-order-ish loop:
///
///                +--------------------+
///                v                    |
///   dec --> issue(mux) --> ALU --> wb-+
///                ^                    |
///                +----- bypass -------+
///
/// The ALU meets the clock on 90% of operations (its fast path) and
/// takes 2 extra cycles otherwise (think: a carry chain that rarely
/// propagates end to end). The example contrasts three designs:
///   1. pessimistic: clock stretched to the ALU's worst-case delay;
///   2. telescopic, unoptimized;
///   3. telescopic + retiming & recycling (MIN_EFF_CYC).
///
///   ./build/examples/telescopic_alu [fast_prob] [slow_extra]

#include <cstdio>
#include <cstdlib>

#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "core/rrg.hpp"
#include "sim/simulator.hpp"

namespace {

struct Design {
  elrr::Rrg rrg;
  elrr::NodeId alu = 0;
};

/// fast_delay is the ALU's combinational delay when it meets the clock;
/// telescopic controls whether the variable-latency behaviour is kept
/// (true) or folded into a pessimistic worst-case delay (false).
Design make_loop(double alu_delay, double fast_prob, int slow_extra,
                 bool telescopic) {
  using namespace elrr;
  Design d;
  Rrg& rrg = d.rrg;
  const NodeId dec = rrg.add_node("dec", 4.0);
  const NodeId issue = rrg.add_node("issue", 2.0, NodeKind::kEarly);
  const NodeId alu = rrg.add_node("alu", alu_delay);
  const NodeId wb = rrg.add_node("wb", 3.0);
  d.alu = alu;
  rrg.add_edge(dec, issue, 1, 1, 0.35);   // fresh instruction stream
  rrg.add_edge(wb, issue, 1, 1, 0.65);    // dependent result (bypass)
  rrg.add_edge(issue, alu, 0, 0);
  rrg.add_edge(alu, wb, 0, 0);
  rrg.add_edge(wb, dec, 1, 1);            // fetch feedback
  if (telescopic) rrg.set_telescopic(alu, fast_prob, slow_extra);
  rrg.validate();
  return d;
}

void report(const char* label, const elrr::Rrg& rrg) {
  using namespace elrr;
  const MinEffCycResult opt = min_eff_cyc(rrg);
  const ParetoPoint& best = opt.best();
  const Rrg tuned = apply_config(rrg, best.config);
  sim::SimOptions sopt;
  sopt.measure_cycles = 30000;
  const sim::SimResult sim = sim::simulate_throughput(tuned, sopt);
  std::printf("%-26s tau=%6.2f  Theta_lp=%6.3f  Theta_sim=%6.3f  "
              "xi=%7.3f  (%zu Pareto points)\n",
              label, best.tau, best.theta_lp, sim.theta,
              best.tau / sim.theta, opt.points.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elrr;
  const double fast_prob = argc > 1 ? std::atof(argv[1]) : 0.9;
  const int slow_extra = argc > 2 ? std::atoi(argv[2]) : 2;
  const double fast_delay = 5.0;   // ALU fast path
  const double slow_delay = 11.0;  // ALU full carry chain

  std::printf("telescopic ALU: fast delay %.1f (p=%.2f), worst-case %.1f "
              "(+%d cycles when missed)\n\n",
              fast_delay, fast_prob, slow_delay, slow_extra);

  // 1. Clock the whole loop at the ALU's worst case: no variable
  //    latency, tau inflated.
  const Design pess = make_loop(slow_delay, fast_prob, slow_extra, false);
  report("pessimistic clocking", pess.rrg);

  // 2. Telescopic ALU, same structure: tau follows the fast path, the
  //    occasional slow operation costs slow_extra stolen cycles.
  const Design tele = make_loop(fast_delay, fast_prob, slow_extra, true);
  const RcEvaluation raw = evaluate_rrg(tele.rrg);
  std::printf("%-26s tau=%6.2f  Theta_lp=%6.3f  (before optimization)\n",
              "telescopic, as built", raw.tau, raw.theta_lp);

  // 3. Telescopic + retiming & recycling.
  report("telescopic + RR", tele.rrg);

  std::printf("\nthroughput cap from the ALU's busy period: %.3f\n",
              throughput_cap(tele.rrg));
  std::printf("sweep: p in {0.5 .. 1.0}, xi_lp of the optimized loop\n");
  std::printf("%8s %10s %10s %10s\n", "p", "cap", "Theta_lp", "xi_lp");
  for (double p : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    Rrg rrg = make_loop(fast_delay, p, slow_extra, p < 1.0).rrg;
    const MinEffCycResult opt = min_eff_cyc(rrg);
    std::printf("%8.2f %10.3f %10.3f %10.3f\n", p, throughput_cap(rrg),
                opt.best().theta_lp, opt.best().xi_lp);
  }
  return 0;
}
