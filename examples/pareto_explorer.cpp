/// \file pareto_explorer.cpp
/// Explore the cycle-time / throughput trade-off of a Table-2 circuit:
/// prints every non-dominated configuration found by the Pareto walk,
/// its LP metrics and its simulated throughput, for both late and early
/// evaluation -- the data behind the paper's Tables 1 and 2.
///
/// Runs on the pipelined flow::Engine: each candidate the walk emits is
/// streamed into the engine's simulation fleet (owning submissions, all
/// cores) while the next MILP step solves, and revisited configurations
/// hit the engine's session cache instead of re-simulating. The trailing
/// "pipeline:" line shows how much of the simulation time the MILP walk
/// hid.
///
///   ./build/examples/pareto_explorer [circuit] [seed] [milp_seconds]
/// e.g.  ./build/examples/pareto_explorer s386 7 20

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "flow/engine.hpp"

int main(int argc, char** argv) {
  using namespace elrr;
  const std::string name = argc > 1 ? argv[1] : "s526";
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  const auto& spec = bench89::spec_by_name(name);
  const Rrg rrg = bench89::make_table2_rrg(spec, seed);
  std::printf("%s (seed %llu): |N1|=%d |N2|=%d |E|=%d, xi* = %.2f\n",
              name.c_str(), static_cast<unsigned long long>(seed),
              spec.n_simple, spec.n_early, spec.n_edges,
              cycle_time(rrg).tau);

  flow::EngineOptions options;
  options.opt.epsilon = 0.05;
  // Default budget keeps the walk to ~2 minutes on s526; raise the third
  // argument for tighter frontiers (the paper ran CPLEX for 20 minutes
  // per MILP).
  options.opt.milp.time_limit_s = argc > 3 ? std::atof(argv[3]) : 4.0;
  options.sim.measure_cycles = 20000;
  options.sim_threads = 0;  // all cores

  // One engine on the real circuit: the early walk streams through
  // run(); the late walk (optimizing the all-simple relaxation) scores
  // its configurations on the *original* graph -- early nodes intact --
  // through score(), so Th_sim answers "what would this late-derived
  // configuration actually do here". Both share the engine's fleet and
  // its session cache (overlapping frontiers simulate once).
  flow::Engine engine(rrg, options);

  const auto print_scored = [&](const std::vector<flow::ScoredPoint>& scored,
                                std::size_t best_index) {
    std::printf("%4s %9s %9s %9s %9s %7s\n", "#", "tau", "Th_lp", "Th_sim",
                "xi_sim", "best");
    for (std::size_t i = 0; i < scored.size(); ++i) {
      const flow::ScoredPoint& s = scored[i];
      std::printf("%4zu %9.2f %9.4f %9.4f %9.2f %7s%s\n", i, s.point.tau,
                  s.point.theta_lp, s.sim.theta, s.xi_sim,
                  i == best_index ? "<==" : "",
                  s.point.exact ? "" : " (budget)");
    }
  };

  {
    std::printf("\n== late evaluation ==\n");
    OptOptions late = options.opt;
    late.treat_all_simple = true;
    const MinEffCycResult walk = min_eff_cyc(rrg, late);
    print_scored(engine.score(walk.points), walk.best_index);
    std::printf("best xi_lp = %.2f after %d MILP calls in %.1fs%s\n",
                walk.best().xi_lp, walk.milp_calls, walk.seconds,
                walk.all_exact ? "" : " (some budgets hit)");
  }

  {
    std::printf("\n== early evaluation ==\n");
    const flow::EngineResult result = engine.run();
    if (result.candidates_submitted != result.unique_simulations) {
      std::printf("(%zu candidates -> %zu unique simulations after dedup)\n",
                  result.candidates_submitted, result.unique_simulations);
    }
    print_scored(result.scored, result.walk.best_index);
    std::printf("best xi_lp = %.2f after %d MILP calls in %.1fs%s\n",
                result.walk.best().xi_lp, result.walk.milp_calls,
                result.walk.seconds,
                result.walk.all_exact ? "" : " (some budgets hit)");
    std::printf("pipeline: walk %.1fs, residual sim wait %.1fs "
                "(wall %.1fs)\n",
                result.walk_seconds, result.sim_wait_seconds, result.seconds);
  }
  return 0;
}
