/// \file pareto_explorer.cpp
/// Explore the cycle-time / throughput trade-off of a Table-2 circuit:
/// prints every non-dominated configuration found by MIN_EFF_CYC, its LP
/// metrics and its simulated throughput, for both late and early
/// evaluation -- the data behind the paper's Tables 1 and 2. All Pareto
/// points of one walk are scored together through a sim::SimFleet.
///
///   ./build/examples/pareto_explorer [circuit] [seed] [milp_seconds]
/// e.g.  ./build/examples/pareto_explorer s386 7 20

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "sim/fleet.hpp"

int main(int argc, char** argv) {
  using namespace elrr;
  const std::string name = argc > 1 ? argv[1] : "s526";
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  const auto& spec = bench89::spec_by_name(name);
  const Rrg rrg = bench89::make_table2_rrg(spec, seed);
  std::printf("%s (seed %llu): |N1|=%d |N2|=%d |E|=%d, xi* = %.2f\n",
              name.c_str(), static_cast<unsigned long long>(seed),
              spec.n_simple, spec.n_early, spec.n_edges,
              cycle_time(rrg).tau);

  OptOptions options;
  options.epsilon = 0.05;
  // Default budget keeps the walk to ~2 minutes on s526; raise the third
  // argument for tighter frontiers (the paper ran CPLEX for 20 minutes
  // per MILP).
  options.milp.time_limit_s = argc > 3 ? std::atof(argv[3]) : 4.0;

  for (const bool early : {false, true}) {
    OptOptions mode = options;
    mode.treat_all_simple = !early;
    std::printf("\n== %s evaluation ==\n", early ? "early" : "late");
    const MinEffCycResult result = min_eff_cyc(rrg, mode);
    std::printf("%4s %9s %9s %9s %9s %7s\n", "#", "tau", "Th_lp", "Th_sim",
                "xi_sim", "best");
    sim::SimOptions sopt;
    sopt.measure_cycles = 20000;
    // One fleet scores every Pareto point of this walk (0 = all cores);
    // the configured RRGs must outlive drain(). Walks can revisit a
    // configuration (late/early frontiers overlapping, budget-hit MILPs
    // returning the incumbent): the fleet simulates identical candidates
    // once and fans the scores out.
    std::vector<Rrg> configured;
    configured.reserve(result.points.size());
    sim::SimFleet fleet(0);
    for (const ParetoPoint& p : result.points) {
      configured.push_back(apply_config(rrg, p.config));
    }
    for (const Rrg& candidate : configured) fleet.submit(candidate, sopt);
    const std::vector<sim::SimReport> sims = fleet.drain();
    if (fleet.last_unique_jobs() != sims.size()) {
      std::printf("(%zu candidates -> %zu unique simulations after dedup)\n",
                  sims.size(), fleet.last_unique_jobs());
    }
    for (std::size_t i = 0; i < result.points.size(); ++i) {
      const ParetoPoint& p = result.points[i];
      const double theta = sims[i].theta;
      std::printf("%4zu %9.2f %9.4f %9.4f %9.2f %7s%s\n", i, p.tau,
                  p.theta_lp, theta, p.tau / theta,
                  i == result.best_index ? "<==" : "",
                  p.exact ? "" : " (budget)");
    }
    std::printf("best xi_lp = %.2f after %d MILP calls in %.1fs%s\n",
                result.best().xi_lp, result.milp_calls, result.seconds,
                result.all_exact ? "" : " (some budgets hit)");
  }
  return 0;
}
