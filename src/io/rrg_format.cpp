#include "io/rrg_format.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr::io {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw InvalidInputError("rrg format, line " + std::to_string(line) + ": " +
                          message);
}

double parse_double(std::string_view token, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::string s(token);
    const double value = std::stod(s, &used);
    if (used != s.size() || !std::isfinite(value)) {
      fail(line, "bad number '" + s + "'");
    }
    return value;
  } catch (const std::exception&) {
    fail(line, "bad number '" + std::string(token) + "'");
  }
}

int parse_int(std::string_view token, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::string s(token);
    const int value = std::stoi(s, &used);
    if (used != s.size()) fail(line, "bad integer '" + s + "'");
    return value;
  } catch (const std::exception&) {
    fail(line, "bad integer '" + std::string(token) + "'");
  }
}

/// Splits "key=value"; returns {key, value}.
std::pair<std::string, std::string> key_value(std::string_view token,
                                              std::size_t line) {
  const auto pos = token.find('=');
  if (pos == std::string_view::npos || pos == 0 || pos + 1 == token.size()) {
    fail(line, "expected key=value, got '" + std::string(token) + "'");
  }
  return {std::string(token.substr(0, pos)),
          std::string(token.substr(pos + 1))};
}

/// Doubles are written with enough digits to round-trip.
std::string number(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

/// Writer-side node names: whitespace-free and unique (the reader keys
/// edges by name). Collisions and spaces get an "__<id>" suffix.
std::vector<std::string> writable_names(const Rrg& rrg) {
  std::vector<std::string> names;
  std::map<std::string, int> used;
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    std::string name = rrg.name(n);
    for (char& c : name) {
      if (c == ' ' || c == '\t' || c == '=' || c == '#') c = '_';
    }
    if (name.empty() || used.count(name) != 0) {
      name += "__" + std::to_string(n);
    }
    used.emplace(name, 1);
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace

NamedRrg read_rrg(std::string_view text) {
  NamedRrg result;
  std::map<std::string, NodeId> by_name;
  // Deferred telescopic marks: set_telescopic validates immediately, but
  // nodes may appear before their annotations are complete.
  std::size_t line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw);
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    const std::vector<std::string> tokens = split_ws(line);

    if (tokens[0] == "rrg") {
      if (tokens.size() > 2) fail(line_no, "rrg header takes one name");
      if (tokens.size() == 2) result.name = tokens[1];
      continue;
    }
    if (tokens[0] == "node") {
      if (tokens.size() < 3) fail(line_no, "node <name> delay=<d> ...");
      const std::string& name = tokens[1];
      if (by_name.count(name) != 0) fail(line_no, "duplicate node " + name);
      double delay = -1.0;
      bool early = false;
      double tel_prob = 1.0;
      int tel_extra = 0;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "early") {
          early = true;
          continue;
        }
        const auto [key, value] = key_value(tokens[i], line_no);
        if (key == "delay") {
          delay = parse_double(value, line_no);
        } else if (key == "telescopic") {
          const auto parts = split(value, ',');
          if (parts.size() != 2) fail(line_no, "telescopic=<p>,<extra>");
          tel_prob = parse_double(parts[0], line_no);
          tel_extra = parse_int(parts[1], line_no);
        } else {
          fail(line_no, "unknown node attribute '" + key + "'");
        }
      }
      if (delay < 0) fail(line_no, "node needs delay=<d>");
      try {
        const NodeId n = result.rrg.add_node(
            name, delay, early ? NodeKind::kEarly : NodeKind::kSimple);
        if (tel_prob < 1.0 || tel_extra != 0) {
          result.rrg.set_telescopic(n, tel_prob, tel_extra);
        }
        by_name.emplace(name, n);
      } catch (const Error& e) {
        fail(line_no, e.what());
      }
      continue;
    }
    if (tokens[0] == "edge") {
      if (tokens.size() < 5) {
        fail(line_no, "edge <src> <dst> tokens=<t> buffers=<b> [gamma=<g>]");
      }
      const auto src = by_name.find(tokens[1]);
      if (src == by_name.end()) fail(line_no, "unknown node " + tokens[1]);
      const auto dst = by_name.find(tokens[2]);
      if (dst == by_name.end()) fail(line_no, "unknown node " + tokens[2]);
      int tokens_v = 0, buffers_v = 0;
      bool have_tokens = false, have_buffers = false;
      double gamma = 1.0;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto [key, value] = key_value(tokens[i], line_no);
        if (key == "tokens") {
          tokens_v = parse_int(value, line_no);
          have_tokens = true;
        } else if (key == "buffers") {
          buffers_v = parse_int(value, line_no);
          have_buffers = true;
        } else if (key == "gamma") {
          gamma = parse_double(value, line_no);
        } else {
          fail(line_no, "unknown edge attribute '" + key + "'");
        }
      }
      if (!have_tokens || !have_buffers) {
        fail(line_no, "edge needs tokens= and buffers=");
      }
      try {
        result.rrg.add_edge(src->second, dst->second, tokens_v, buffers_v,
                            gamma);
      } catch (const Error& e) {
        fail(line_no, e.what());
      }
      continue;
    }
    fail(line_no, "unknown directive '" + tokens[0] + "'");
  }
  try {
    result.rrg.validate();
  } catch (const Error& e) {
    throw InvalidInputError(std::string("rrg format: ") + e.what());
  }
  return result;
}

std::string write_rrg(const Rrg& rrg, std::string_view name) {
  std::ostringstream os;
  if (!name.empty()) os << "rrg " << name << "\n";
  const std::vector<std::string> names = writable_names(rrg);
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    os << "node " << names[n] << " delay=" << number(rrg.delay(n));
    if (rrg.is_early(n)) os << " early";
    if (rrg.is_telescopic(n)) {
      os << " telescopic=" << number(rrg.telescopic(n).fast_prob) << ","
         << rrg.telescopic(n).slow_extra;
    }
    os << "\n";
  }
  const Digraph& g = rrg.graph();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    os << "edge " << names[g.src(e)] << " " << names[g.dst(e)]
       << " tokens=" << rrg.tokens(e) << " buffers=" << rrg.buffers(e);
    if (rrg.is_early(g.dst(e))) os << " gamma=" << number(rrg.gamma(e));
    os << "\n";
  }
  return os.str();
}

std::string write_json(const Rrg& rrg, std::string_view name) {
  std::ostringstream os;
  const std::vector<std::string> names = writable_names(rrg);
  os << "{\n  \"name\": \"" << json_escape(name) << "\",\n  \"nodes\": [\n";
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    os << "    {\"name\": \"" << json_escape(names[n])
       << "\", \"delay\": " << number(rrg.delay(n)) << ", \"early\": "
       << (rrg.is_early(n) ? "true" : "false");
    if (rrg.is_telescopic(n)) {
      os << ", \"telescopic\": {\"fast_prob\": "
         << number(rrg.telescopic(n).fast_prob)
         << ", \"slow_extra\": " << rrg.telescopic(n).slow_extra << "}";
    }
    os << "}" << (n + 1 < rrg.num_nodes() ? "," : "") << "\n";
  }
  os << "  ],\n  \"edges\": [\n";
  const Digraph& g = rrg.graph();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    os << "    {\"src\": \"" << json_escape(names[g.src(e)])
       << "\", \"dst\": \"" << json_escape(names[g.dst(e)])
       << "\", \"tokens\": " << rrg.tokens(e)
       << ", \"buffers\": " << rrg.buffers(e);
    if (rrg.is_early(g.dst(e))) {
      os << ", \"gamma\": " << number(rrg.gamma(e));
    }
    os << "}" << (e + 1 < rrg.num_edges() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

NamedRrg load_rrg_file(const std::string& path) {
  return read_rrg(load_text_file(path));
}

std::string load_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void save_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out << text;
  if (!out) throw Error("write failed for " + path);
}

}  // namespace elrr::io
