#pragma once

/// \file rrg_format.hpp
/// A plain-text serialization of RRGs (".rrg") plus a JSON exporter.
///
/// The text format is line based, '#' starts a comment:
///
///   rrg <name>                       # optional header
///   node <name> delay=<beta> [early] [telescopic=<p>,<extra>]
///   edge <src> <dst> tokens=<R0> buffers=<R> [gamma=<g>]
///
/// Node order and edge order are preserved (ids are assigned in file
/// order), so writer -> reader round-trips reproduce the exact graph,
/// including multi-edges. The reader validates the result.
///
/// JSON export (write-only; the .rrg format is the interchange format)
/// emits nodes/edges arrays with the same fields for dashboards and
/// external tooling.

#include <string>
#include <string_view>

#include "core/rrg.hpp"

namespace elrr::io {

/// Parsed RRG with its (possibly empty) header name.
struct NamedRrg {
  std::string name;
  Rrg rrg;
};

/// Parses the .rrg text format. Throws InvalidInputError with a line
/// number on malformed input (unknown node names, duplicate definitions,
/// bad numbers, R < R0, dead cycles, ...).
NamedRrg read_rrg(std::string_view text);

/// Serializes to the .rrg text format (stable ordering; round-trips).
std::string write_rrg(const Rrg& rrg, std::string_view name = "");

/// JSON document with the same information.
std::string write_json(const Rrg& rrg, std::string_view name = "");

/// File helpers (throw IoError on filesystem problems).
NamedRrg load_rrg_file(const std::string& path);
void save_text_file(const std::string& path, std::string_view text);
std::string load_text_file(const std::string& path);

}  // namespace elrr::io
