#pragma once

/// \file trace.hpp
/// Unified tracing + metrics for the whole pipeline: per-thread span
/// ring buffers over the monotonic clock, a process-wide registry of
/// named counters and log2-bucketed latency histograms, and a Chrome
/// trace-event JSON exporter (loadable in Perfetto / chrome://tracing).
///
/// Discipline (the fail-point registry's): every site is always
/// compiled in; disarmed -- the default -- a site costs one relaxed
/// atomic load and nothing else (no clock read, no allocation, no
/// counter). Armed, a span costs two steady_clock reads plus one store
/// into the recording thread's own ring buffer; counters and histograms
/// take the registry mutex (uncontended in steady state).
///
/// Arming comes from the ELRR_TRACE environment variable (a path for
/// the exported trace; `%p` expands to the pid so concurrent processes
/// never clobber each other) or from `elrr batch --trace <path>` /
/// an explicit arm() in tests and benches. ELRR_OBS_BUF sets the
/// per-thread ring capacity in spans (default 8192); a full ring wraps
/// and drops oldest-first, counted in dropped_spans().
///
/// Clock/anchoring contract: every timestamp is std::chrono::
/// steady_clock nanoseconds. Worker-process spans ship back over the
/// proc-fleet pipe protocol tagged with the worker's clock reading at
/// response time; the supervisor re-anchors them by the offset between
/// its own receive time and that reading, so a worker span always lands
/// inside the supervisor's dispatching slice span (the transfer delay
/// pushes it late, never early). Foreign spans keep the worker's pid as
/// their Perfetto track group.
///
/// Tracing never feeds back into results: seeds, schedules and every
/// simulated number are bit-exact with tracing on or off (only
/// wall-clock observability is added). The determinism differentials
/// and the perf_smoke `obs` section pin both directions: identical
/// thetas armed vs disarmed, and disarmed overhead on the fleet
/// workload within the bench-diff gate.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace elrr::obs {

/// SpanRecord::arg when a span carries no argument.
inline constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

/// One completed span, as stored in the ring buffers. Plain data: the
/// writer fills it with non-atomic stores between two atomic head
/// updates, and the exporter snapshots whole records.
struct SpanRecord {
  char name[44] = {0};          ///< site name, NUL-terminated (truncated)
  std::int64_t start_ns = 0;    ///< steady_clock, ns
  std::int64_t end_ns = 0;      ///< steady_clock, ns
  std::uint64_t arg = kNoArg;   ///< optional id (job, attempt); kNoArg = none
  std::uint32_t pid = 0;        ///< 0 = this process; else a worker's pid
  std::uint32_t tid = 0;        ///< 0 = recording thread's track
};

namespace detail {
extern std::atomic<bool> g_armed;
std::int64_t now_ns();
void record_span_slow(const char* name, std::int64_t start_ns,
                      std::int64_t end_ns, std::uint64_t arg);
void record_foreign_span_slow(const char* name, std::int64_t start_ns,
                              std::int64_t end_ns, std::uint32_t pid,
                              std::uint32_t tid);
void count_slow(const char* name, std::uint64_t delta);

/// Async-signal-safe mirror of the counter/histogram registries for the
/// flight recorder's fatal dump (obs/recorder.hpp). std::map nodes are
/// address-stable, so each view holds pointers straight into the live
/// registry: append-only fixed arrays, published by a release-stored
/// count on first insert and zeroed by configure(). A crash handler
/// reads them without the registry mutex; a value the owner is mid-way
/// through bumping can tear, which is acceptable in a crash dump.
inline constexpr std::size_t kSigHistBuckets = 64;
struct SigCounterView {
  const char* name = nullptr;
  const std::uint64_t* value = nullptr;
};
struct SigHistView {
  const char* name = nullptr;
  const std::uint64_t* buckets = nullptr;  ///< kSigHistBuckets log2 buckets
  const std::uint64_t* count = nullptr;
  const std::uint64_t* total_ns = nullptr;
};
/// Points `*out` at the mirror array; returns the published entry
/// count. Async-signal-safe (two loads, no locks).
std::size_t sig_counters(const SigCounterView** out);
std::size_t sig_hists(const SigHistView** out);
}  // namespace detail

/// True while tracing is armed (one relaxed load; the only cost every
/// disarmed site pays).
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// steady_clock now in ns when armed, 0 when disarmed (no clock read).
/// For manual spans whose start predates the RAII scope (queue waits).
inline std::int64_t now_ns_if_armed() {
  return armed() ? detail::now_ns() : 0;
}

/// Records a completed span on the calling thread's track. No-op when
/// disarmed. Also feeds the site's latency histogram.
inline void record_span(const char* name, std::int64_t start_ns,
                        std::int64_t end_ns, std::uint64_t arg = kNoArg) {
  if (armed()) detail::record_span_slow(name, start_ns, end_ns, arg);
}

/// Records a span on another process's track (re-anchored worker spans;
/// see the clock contract above). Timestamps are supervisor-clock ns.
inline void record_foreign_span(const char* name, std::int64_t start_ns,
                                std::int64_t end_ns, std::uint32_t pid,
                                std::uint32_t tid) {
  if (armed()) detail::record_foreign_span_slow(name, start_ns, end_ns,
                                                pid, tid);
}

/// Bumps a named process-wide counter. No-op when disarmed.
inline void count(const char* name, std::uint64_t delta = 1) {
  if (armed()) detail::count_slow(name, delta);
}

/// RAII span: one relaxed load at construction when disarmed; armed, a
/// clock read at each end and one ring-buffer store.
class SpanGuard {
 public:
  explicit SpanGuard(const char* site, std::uint64_t arg = kNoArg)
      : armed_(armed()) {
    if (armed_) {
      site_ = site;
      arg_ = arg;
      start_ns_ = detail::now_ns();
    }
  }
  ~SpanGuard() {
    if (armed_) {
      detail::record_span_slow(site_, start_ns_, detail::now_ns(), arg_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  bool armed_;
  const char* site_ = nullptr;
  std::uint64_t arg_ = kNoArg;
  std::int64_t start_ns_ = 0;
};

#define ELRR_OBS_CONCAT2(a, b) a##b
#define ELRR_OBS_CONCAT(a, b) ELRR_OBS_CONCAT2(a, b)
/// Scoped span over the enclosing block: OBS_SPAN("milp.solve");
#define OBS_SPAN(site) \
  ::elrr::obs::SpanGuard ELRR_OBS_CONCAT(obs_span_, __LINE__)(site)
/// Scoped span carrying a numeric id rendered as args.id in the trace.
#define OBS_SPAN_ID(site, id) \
  ::elrr::obs::SpanGuard ELRR_OBS_CONCAT(obs_span_, __LINE__)(site, (id))

/// Names the calling thread's Perfetto track ("sched-worker",
/// "fleet-0"). Cheap and always safe to call, armed or not; the label
/// sticks to every buffer the thread records into afterwards.
void set_thread_label(const char* label);

/// Installs a trace path (may be empty) and the per-thread ring
/// capacity, and arms tracing iff the path is non-empty. Resets all
/// buffers, counters and histograms. `env_name` names the knob in
/// validation errors.
void configure(const std::string& trace_path, std::size_t ring_capacity);

/// configure(ELRR_TRACE, ELRR_OBS_BUF); both validated strictly
/// (ELRR_OBS_BUF must be an integer in [16, 2^24]). A non-empty
/// ELRR_TRACE also registers an atexit hook that writes the trace when
/// the process ends -- how the gate scripts get a trace artifact out of
/// every test binary without per-test plumbing. `elrr work` children
/// disable the hook (set_export_on_exit) so they never clobber the
/// supervisor's file; their spans ride the pipe protocol instead.
void configure_from_env();

/// Arms/disarms without touching the configured path or buffers (tests,
/// the perf_smoke overhead measurement).
void arm(bool on);

/// Disarms, clears every ring buffer, counter and histogram, forgets
/// the trace path. Threads keep recording safely afterwards (their
/// stale buffers are orphaned; new ones attach on next use).
void reset();

/// The configured export path ("" = none), unexpanded.
const std::string& trace_path();

/// Per-thread ring capacity currently in force.
std::size_t ring_capacity();

/// Whether the atexit hook (installed by configure_from_env for a
/// non-empty ELRR_TRACE) actually writes. Default on.
void set_export_on_exit(bool on);

/// Expands `%p` to the pid. Applied by write_trace and the atexit hook.
std::string expand_trace_path(const std::string& path);

/// Spans recorded so far, oldest-first per thread (wrapped entries are
/// gone). Self spans get pid 0 / the buffer's track id; snapshot
/// resolves neither -- the exporter does.
std::vector<SpanRecord> snapshot_spans();

/// Spans recorded by the *calling thread* since its last drain, oldest
/// first, and marks them drained (the worker-loop shipping primitive;
/// other threads' buffers are untouched).
std::vector<SpanRecord> drain_thread_spans();

/// Total spans lost to ring wrap-around across all threads (oldest are
/// dropped first; the counter survives drains).
std::uint64_t dropped_spans();

/// One histogram row: per-site count / total / percentiles, in seconds.
/// Percentiles come from log2 ns buckets with linear interpolation
/// inside the landing bucket, so they are exact to within a factor-2
/// bracket -- aggregate shape, not sample-exact order statistics.
struct PhaseSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// All histogram rows, name-sorted.
std::vector<PhaseSummary> histogram_summary();

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

/// All named counters, name-sorted.
std::vector<CounterValue> counters();

/// The aggregate view as a JSON key-value list (no surrounding braces):
/// `"phases": [...], "counters": {...}, "dropped_spans": N,
/// "ring_capacity": N`. Shared by the batch summary's trace_summary
/// record and the scheduler's periodic stats snapshot so the two stay
/// field-compatible.
std::string summary_json();

/// Writes everything recorded so far as Chrome trace-event JSON
/// (traceEvents of "ph":"X" spans plus process/thread name metadata;
/// `ts`/`dur` in microseconds). `%p` in the path expands to the pid.
/// Throws on IO failure.
void write_trace(const std::string& path);

}  // namespace elrr::obs
