#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr::obs {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// Re-anchored worker spans arrive one batch per slice; a runaway
/// worker cannot grow the foreign store past this (overflow counts as
/// dropped instead).
constexpr std::size_t kMaxForeignSpans = std::size_t{1} << 20;

constexpr std::size_t kHistBuckets = 64;
static_assert(kHistBuckets == detail::kSigHistBuckets,
              "signal-safe hist view and registry bucket counts diverged");

/// One thread's span ring. The owning thread is the only writer: it
/// fills the slot with plain stores, then publishes with a
/// release-store of head. Snapshots acquire-load head and copy; a slot
/// the owner is mid-way through overwriting can tear, so snapshots are
/// exact at quiescence and best-effort (bounded to the single in-flight
/// record) while the thread is still recording.
struct ThreadBuffer {
  std::vector<SpanRecord> ring;
  std::atomic<std::uint64_t> head{0};  ///< total spans ever published
  std::uint32_t tid = 0;               ///< 1-based track id
  char label[32] = {0};                ///< thread_name metadata ("" = none)
};

/// Log2-bucketed latency histogram: bucket b holds durations in
/// [2^b, 2^(b+1)) ns, except bucket 0 which also takes 0.
struct Hist {
  std::uint64_t buckets[kHistBuckets] = {0};
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Leaked singleton (same LSan-safe pattern as the fail-point
/// registry): still reachable at exit, never destroyed, so spans
/// recorded from static-destruction contexts stay safe.
struct State {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<SpanRecord> foreign;
  std::uint64_t foreign_dropped = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Hist> hists;
  std::string trace_path;
  std::size_t ring_capacity = 8192;
  std::uint32_t next_tid = 0;
  std::atomic<std::uint64_t> generation{0};
  std::atomic<bool> export_on_exit{true};
  bool atexit_installed = false;
};

State& state() {
  static State* s = new State();
  return *s;
}

/// Signal-safe registry mirror (see trace.hpp detail::SigCounterView):
/// fixed arrays appended under the registry mutex, read lock-free by
/// the crash handler. Sized well past the repo's site count; overflow
/// entries simply stay invisible to postmortems.
constexpr std::size_t kMaxSigViews = 256;
detail::SigCounterView g_sig_counters[kMaxSigViews];
std::atomic<std::size_t> g_sig_counter_count{0};
detail::SigHistView g_sig_hists[kMaxSigViews];
std::atomic<std::size_t> g_sig_hist_count{0};

struct TlsRef {
  std::shared_ptr<ThreadBuffer> buf;
  std::uint64_t generation = ~std::uint64_t{0};
  std::uint64_t drained = 0;
};
thread_local TlsRef t_ref;
thread_local char t_label[32] = {0};

void copy_name(char (&dst)[44], const char* src) {
  std::size_t i = 0;
  for (; src[i] != '\0' && i + 1 < sizeof(dst); ++i) dst[i] = src[i];
  dst[i] = '\0';
}

/// The calling thread's buffer for the current generation, creating and
/// registering one on first use (or after a reset orphaned the old
/// one). The fast path is two relaxed/acquire loads.
ThreadBuffer* attach() {
  State& s = state();
  const std::uint64_t gen = s.generation.load(std::memory_order_acquire);
  if (t_ref.buf && t_ref.generation == gen) return t_ref.buf.get();
  auto buf = std::make_shared<ThreadBuffer>();
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    buf->ring.resize(s.ring_capacity);
    buf->tid = ++s.next_tid;
    std::memcpy(buf->label, t_label, sizeof(buf->label));
    s.buffers.push_back(buf);
    t_ref.generation = s.generation.load(std::memory_order_relaxed);
  }
  t_ref.buf = std::move(buf);
  t_ref.drained = 0;
  return t_ref.buf.get();
}

std::size_t hist_bucket(std::int64_t dur_ns) {
  if (dur_ns <= 0) return 0;
  const std::size_t b =
      static_cast<std::size_t>(std::bit_width(
          static_cast<std::uint64_t>(dur_ns))) - 1;
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

/// Caller holds state().mutex.
void feed_hist_locked(State& s, const char* name, std::int64_t dur_ns) {
  const auto [it, inserted] = s.hists.try_emplace(name);
  Hist& h = it->second;
  if (inserted) {
    const std::size_t n = g_sig_hist_count.load(std::memory_order_relaxed);
    if (n < kMaxSigViews) {
      g_sig_hists[n] = {it->first.c_str(), h.buckets, &h.count, &h.total_ns};
      g_sig_hist_count.store(n + 1, std::memory_order_release);
    }
  }
  ++h.buckets[hist_bucket(dur_ns)];
  ++h.count;
  h.total_ns += static_cast<std::uint64_t>(dur_ns > 0 ? dur_ns : 0);
}

/// Percentile from the log2 buckets: walk to the bucket holding the
/// q-th rank, interpolate linearly inside its [2^b, 2^(b+1)) bracket.
double hist_percentile_s(const Hist& h, double q) {
  if (h.count == 0) return 0.0;
  const double rank = q * static_cast<double>(h.count);
  double cum = 0.0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    const double width = static_cast<double>(h.buckets[b]);
    if (cum + width >= rank) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double hi = std::ldexp(1.0, static_cast<int>(b) + 1);
      const double frac =
          std::clamp((rank - cum) / width, 0.0, 1.0);
      return (lo + frac * (hi - lo)) * 1e-9;
    }
    cum += width;
  }
  return std::ldexp(1.0, static_cast<int>(kHistBuckets)) * 1e-9;
}

void atexit_export() {
  State& s = state();
  if (!s.export_on_exit.load(std::memory_order_relaxed)) return;
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    path = s.trace_path;
  }
  if (path.empty()) return;
  try {
    write_trace(path);
  } catch (...) {
    // Exit-path export is best effort; the run's results already went
    // wherever they were going.
  }
}

}  // namespace

namespace detail {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void record_span_slow(const char* name, std::int64_t start_ns,
                      std::int64_t end_ns, std::uint64_t arg) {
  ThreadBuffer* buf = attach();
  const std::uint64_t h = buf->head.load(std::memory_order_relaxed);
  SpanRecord& slot = buf->ring[h % buf->ring.size()];
  copy_name(slot.name, name);
  slot.start_ns = start_ns;
  slot.end_ns = end_ns;
  slot.arg = arg;
  slot.pid = 0;
  slot.tid = 0;
  buf->head.store(h + 1, std::memory_order_release);
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  feed_hist_locked(s, name, end_ns - start_ns);
}

void record_foreign_span_slow(const char* name, std::int64_t start_ns,
                              std::int64_t end_ns, std::uint32_t pid,
                              std::uint32_t tid) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.foreign.size() >= kMaxForeignSpans) {
    ++s.foreign_dropped;
  } else {
    SpanRecord rec;
    copy_name(rec.name, name);
    rec.start_ns = start_ns;
    rec.end_ns = end_ns;
    rec.pid = pid;
    rec.tid = tid == 0 ? 1 : tid;
    s.foreign.push_back(rec);
  }
  feed_hist_locked(s, name, end_ns - start_ns);
}

void count_slow(const char* name, std::uint64_t delta) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto [it, inserted] = s.counters.try_emplace(name, 0);
  it->second += delta;
  if (inserted) {
    const std::size_t n = g_sig_counter_count.load(std::memory_order_relaxed);
    if (n < kMaxSigViews) {
      g_sig_counters[n] = {it->first.c_str(), &it->second};
      g_sig_counter_count.store(n + 1, std::memory_order_release);
    }
  }
}

std::size_t sig_counters(const SigCounterView** out) {
  *out = g_sig_counters;
  return g_sig_counter_count.load(std::memory_order_acquire);
}

std::size_t sig_hists(const SigHistView** out) {
  *out = g_sig_hists;
  return g_sig_hist_count.load(std::memory_order_acquire);
}

}  // namespace detail

void set_thread_label(const char* label) {
  std::size_t i = 0;
  for (; label[i] != '\0' && i + 1 < sizeof(t_label); ++i) {
    t_label[i] = label[i];
  }
  t_label[i] = '\0';
  if (t_ref.buf) {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    std::memcpy(t_ref.buf->label, t_label, sizeof(t_ref.buf->label));
  }
}

void configure(const std::string& trace_path, std::size_t ring_capacity) {
  State& s = state();
  detail::g_armed.store(false, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    // Retract the signal-safe mirror before its pointees go away; the
    // crash handler sees either the old view or an empty one.
    g_sig_counter_count.store(0, std::memory_order_release);
    g_sig_hist_count.store(0, std::memory_order_release);
    s.generation.fetch_add(1, std::memory_order_acq_rel);
    s.buffers.clear();
    s.foreign.clear();
    s.foreign_dropped = 0;
    s.counters.clear();
    s.hists.clear();
    s.next_tid = 0;
    s.trace_path = trace_path;
    s.ring_capacity = ring_capacity;
  }
  detail::g_armed.store(!trace_path.empty(), std::memory_order_relaxed);
}

void configure_from_env() {
  const std::string path = env::str("ELRR_TRACE", "");
  const std::uint64_t cap =
      env::u64("ELRR_OBS_BUF", 8192, 16, std::uint64_t{1} << 24);
  configure(path, static_cast<std::size_t>(cap));
  if (!path.empty()) {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.atexit_installed) {
      s.atexit_installed = true;
      std::atexit(atexit_export);
    }
  }
}

void arm(bool on) { detail::g_armed.store(on, std::memory_order_relaxed); }

void reset() { configure("", state().ring_capacity); }

const std::string& trace_path() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.trace_path;
}

std::size_t ring_capacity() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.ring_capacity;
}

void set_export_on_exit(bool on) {
  state().export_on_exit.store(on, std::memory_order_relaxed);
}

std::string expand_trace_path(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == '%' && i + 1 < path.size() && path[i + 1] == 'p') {
      out += std::to_string(static_cast<long>(::getpid()));
      ++i;
    } else {
      out += path[i];
    }
  }
  return out;
}

std::vector<SpanRecord> snapshot_spans() {
  State& s = state();
  std::vector<SpanRecord> out;
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& buf : s.buffers) {
    const std::uint64_t cap = buf->ring.size();
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > cap ? head - cap : 0;
    for (std::uint64_t i = begin; i < head; ++i) {
      SpanRecord rec = buf->ring[i % cap];
      if (rec.tid == 0) rec.tid = buf->tid;
      out.push_back(rec);
    }
  }
  out.insert(out.end(), s.foreign.begin(), s.foreign.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::vector<SpanRecord> drain_thread_spans() {
  std::vector<SpanRecord> out;
  if (!t_ref.buf) return out;
  ThreadBuffer* buf = t_ref.buf.get();
  const std::uint64_t cap = buf->ring.size();
  const std::uint64_t head = buf->head.load(std::memory_order_relaxed);
  std::uint64_t begin = head > cap ? head - cap : 0;
  if (begin < t_ref.drained) begin = t_ref.drained;
  for (std::uint64_t i = begin; i < head; ++i) {
    out.push_back(buf->ring[i % cap]);
  }
  t_ref.drained = head;
  return out;
}

std::uint64_t dropped_spans() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::uint64_t dropped = s.foreign_dropped;
  for (const auto& buf : s.buffers) {
    const std::uint64_t cap = buf->ring.size();
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    if (head > cap) dropped += head - cap;
  }
  return dropped;
}

std::vector<PhaseSummary> histogram_summary() {
  State& s = state();
  std::vector<PhaseSummary> out;
  const std::lock_guard<std::mutex> lock(s.mutex);
  out.reserve(s.hists.size());
  for (const auto& [name, h] : s.hists) {
    PhaseSummary row;
    row.name = name;
    row.count = h.count;
    row.total_s = static_cast<double>(h.total_ns) * 1e-9;
    row.p50_s = hist_percentile_s(h, 0.50);
    row.p95_s = hist_percentile_s(h, 0.95);
    row.p99_s = hist_percentile_s(h, 0.99);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<CounterValue> counters() {
  State& s = state();
  std::vector<CounterValue> out;
  const std::lock_guard<std::mutex> lock(s.mutex);
  out.reserve(s.counters.size());
  for (const auto& [name, value] : s.counters) {
    out.push_back(CounterValue{name, value});
  }
  return out;
}

std::string summary_json() {
  std::ostringstream os;
  char buf[320];
  os << "\"phases\": [";
  bool first = true;
  for (const PhaseSummary& row : histogram_summary()) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"count\": %llu, "
                  "\"total_s\": %.6f, \"p50_s\": %.9f, \"p95_s\": %.9f, "
                  "\"p99_s\": %.9f}",
                  first ? "" : ", ", json_escape(row.name).c_str(),
                  static_cast<unsigned long long>(row.count), row.total_s,
                  row.p50_s, row.p95_s, row.p99_s);
    os << buf;
    first = false;
  }
  os << "], \"counters\": {";
  first = true;
  for (const CounterValue& counter : counters()) {
    os << (first ? "" : ", ") << "\"" << json_escape(counter.name)
       << "\": " << counter.value;
    first = false;
  }
  os << "}, \"dropped_spans\": " << dropped_spans()
     << ", \"ring_capacity\": " << ring_capacity();
  return os.str();
}

void write_trace(const std::string& path) {
  const std::vector<SpanRecord> spans = snapshot_spans();

  // Track metadata + aggregate tail, under one lock.
  std::vector<std::pair<std::uint32_t, std::string>> threads;
  std::vector<CounterValue> counter_rows;
  {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& buf : s.buffers) {
      if (buf->label[0] != '\0') {
        threads.emplace_back(buf->tid, std::string(buf->label));
      }
    }
    for (const auto& [name, value] : s.counters) {
      counter_rows.push_back(CounterValue{name, value});
    }
  }
  const std::uint64_t dropped = dropped_spans();

  const std::uint32_t self_pid = static_cast<std::uint32_t>(::getpid());
  std::int64_t t0 = 0;
  for (const SpanRecord& rec : spans) {
    if (t0 == 0 || rec.start_ns < t0) t0 = rec.start_ns;
  }

  const std::string final_path = expand_trace_path(path);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "w");
  if (out == nullptr) {
    throw Error(elrr::detail::concat("obs: cannot open trace file for write: ",
                                     tmp_path));
  }
  std::fputs("{\n  \"traceEvents\": [", out);

  bool first = true;
  const auto sep = [&]() {
    std::fputs(first ? "\n    " : ",\n    ", out);
    first = false;
  };

  // Process/thread naming metadata: our own pid plus one entry per
  // foreign (worker) pid seen in the spans.
  sep();
  std::fprintf(out,
               "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %u, "
               "\"args\": {\"name\": \"elrr\"}}",
               self_pid);
  for (const auto& [tid, label] : threads) {
    sep();
    std::fprintf(out,
                 "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %u, "
                 "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                 self_pid, tid, json_escape(label).c_str());
  }
  std::vector<std::uint32_t> named_pids;
  for (const SpanRecord& rec : spans) {
    if (rec.pid == 0) continue;
    if (std::find(named_pids.begin(), named_pids.end(), rec.pid) !=
        named_pids.end()) {
      continue;
    }
    named_pids.push_back(rec.pid);
    sep();
    std::fprintf(out,
                 "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %u, "
                 "\"args\": {\"name\": \"elrr work (pid %u)\"}}",
                 rec.pid, rec.pid);
  }

  for (const SpanRecord& rec : spans) {
    const std::uint32_t pid = rec.pid == 0 ? self_pid : rec.pid;
    const double ts_us = static_cast<double>(rec.start_ns - t0) * 1e-3;
    const double dur_us =
        static_cast<double>(rec.end_ns - rec.start_ns) * 1e-3;
    sep();
    std::fprintf(out,
                 "{\"name\": \"%s\", \"cat\": \"elrr\", \"ph\": \"X\", "
                 "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, \"tid\": %u",
                 json_escape(rec.name).c_str(), ts_us,
                 dur_us < 0.0 ? 0.0 : dur_us, pid, rec.tid);
    if (rec.arg != kNoArg) {
      std::fprintf(out, ", \"args\": {\"id\": %llu}",
                   static_cast<unsigned long long>(rec.arg));
    }
    std::fputs("}", out);
  }

  std::fputs("\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {",
             out);
  std::fprintf(out, "\n    \"dropped_spans\": %llu",
               static_cast<unsigned long long>(dropped));
  std::fprintf(out, ",\n    \"ring_capacity\": %zu", ring_capacity());
  for (const CounterValue& c : counter_rows) {
    std::fprintf(out, ",\n    \"%s\": %llu", json_escape(c.name).c_str(),
                 static_cast<unsigned long long>(c.value));
  }
  std::fputs("\n  }\n}\n", out);

  const bool write_ok = std::ferror(out) == 0;
  const bool close_ok = std::fclose(out) == 0;
  if (!write_ok || !close_ok) {
    std::remove(tmp_path.c_str());
    throw Error(
        elrr::detail::concat("obs: short write to trace file: ", tmp_path));
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw Error(elrr::detail::concat("obs: cannot move trace file into place: ",
                                     final_path));
  }
}

}  // namespace elrr::obs
