#include "obs/recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/trace.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr::obs::rec {

namespace detail {
std::atomic<bool> g_rec_armed{false};
}  // namespace detail

namespace {

/// One journal slot. seq is the publish word: 0 = empty/in-progress,
/// h+1 = the record claimed at head position h is fully written. A
/// writer invalidates (seq=0), fills with plain stores, then
/// release-stores the final seq; readers accept a slot only when its
/// acquire-loaded seq matches the position they expect, so a slot a
/// writer is mid-way through filling is simply skipped.
struct EventRecord {
  std::atomic<std::uint64_t> seq{0};
  std::int64_t t_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t tid = 0;
  char name[kEventNameCap] = {0};
};

/// The journal ring. head counts slots ever claimed (fetch_add, so the
/// claim is wait-free and per-slot exclusive); capacity never changes
/// for a live ring -- configure() swaps in a fresh Ring and retires the
/// old one into a still-reachable list, so a thread that loaded the old
/// pointer keeps writing into valid (ignored) memory.
struct Ring {
  std::vector<EventRecord> slots;
  std::atomic<std::uint64_t> head{0};
  explicit Ring(std::size_t capacity) : slots(capacity) {}
};

std::atomic<Ring*> g_ring{nullptr};
std::vector<Ring*>& retired_rings() {
  static std::vector<Ring*>* v = new std::vector<Ring*>();
  return *v;
}
std::size_t g_capacity = 4096;

/// In-flight identity slots: one per recording thread, claimed once for
/// the thread's lifetime (configure never un-claims, so a stale
/// thread-local index can never alias another thread's slot). The
/// fatal dump walks the claimed prefix and prints every active mark.
struct InflightSlot {
  std::atomic<bool> active{false};
  std::uint32_t tid = 0;
  std::uint64_t id = 0;
  char what[16] = {0};
};
constexpr std::size_t kInflightSlots = 64;
InflightSlot g_inflight[kInflightSlots];
std::atomic<std::size_t> g_inflight_claimed{0};
std::atomic<std::uint32_t> g_next_tid{0};
thread_local std::uint32_t t_rec_tid = 0;
thread_local std::size_t t_inflight_slot = ~std::size_t{0};

/// Fatal-handler plumbing, all pre-computed at configure time so the
/// handler itself only calls write(2)/fsync(2)/rename(2)/raise(2).
int g_fd = -1;
char g_tmp_path[512] = {0};
char g_final_path[512] = {0};
std::atomic<bool> g_dumped{false};
bool g_handlers_installed = false;
constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS};
struct sigaction g_old_sa[3];
std::terminate_handler g_old_terminate = nullptr;
std::string g_dir;
std::mutex g_configure_mutex;

std::uint32_t rec_tid() {
  if (t_rec_tid == 0) {
    t_rec_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return t_rec_tid;
}

void copy_event_name(char (&dst)[kEventNameCap], const char* src) {
  std::size_t i = 0;
  for (; src[i] != '\0' && i + 1 < sizeof(dst); ++i) dst[i] = src[i];
  dst[i] = '\0';
}

void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // best effort: a full disk cannot be helped from here
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Line assembler for the fatal dump: plain char appends into a stack
/// buffer, flushed with one write(2) per line. No stdio, no allocation.
struct LineBuf {
  char buf[320];
  std::size_t len = 0;
  LineBuf& s(const char* str) {
    for (; *str != '\0' && len + 1 < sizeof(buf); ++str) buf[len++] = *str;
    return *this;
  }
  LineBuf& u(std::uint64_t v) {
    char digits[20];
    int n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0 && len + 1 < sizeof(buf)) buf[len++] = digits[--n];
    return *this;
  }
  LineBuf& i(std::int64_t v) {
    if (v < 0) {
      s("-");
      return u(static_cast<std::uint64_t>(-(v + 1)) + 1);
    }
    return u(static_cast<std::uint64_t>(v));
  }
  void line(int fd) {
    if (len + 1 < sizeof(buf)) buf[len++] = '\n';
    write_all(fd, buf, len);
    len = 0;
  }
};

/// Integer upper bound (ns) of the log2 bucket holding the q-percent
/// rank: the handler cannot use the floating-point interpolation the
/// normal summary uses, so postmortem percentiles are `<=` brackets.
std::uint64_t hist_pct_le_ns(const std::uint64_t* buckets,
                             std::uint64_t count, std::uint64_t q_num) {
  if (count == 0) return 0;
  const std::uint64_t rank = (q_num * count + 99) / 100;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < obs::detail::kSigHistBuckets; ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      return b + 1 < 64 ? (std::uint64_t{1} << (b + 1)) : ~std::uint64_t{0};
    }
  }
  return ~std::uint64_t{0};
}

/// The dump body. Async-signal-safe: static/stack data, write(2) only.
void dump_to_fd(int fd, const char* reason) {
  LineBuf lb;
  lb.s("ELRR-POSTMORTEM 1").line(fd);
  lb.s("reason: ").s(reason).line(fd);
  lb.s("pid: ").u(static_cast<std::uint64_t>(::getpid())).line(fd);

  Ring* ring = g_ring.load(std::memory_order_acquire);
  const std::uint64_t head =
      ring != nullptr ? ring->head.load(std::memory_order_acquire) : 0;
  const std::uint64_t cap = ring != nullptr ? ring->slots.size() : 0;
  const std::uint64_t dropped = head > cap ? head - cap : 0;
  lb.s("events_recorded: ").u(head < cap ? head : cap).line(fd);
  lb.s("events_dropped: ").u(dropped).line(fd);

  const std::size_t claimed = g_inflight_claimed.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < claimed && i < kInflightSlots; ++i) {
    const InflightSlot& slot = g_inflight[i];
    if (!slot.active.load(std::memory_order_acquire)) continue;
    lb.s("inflight: tid=").u(slot.tid).s(" ").s(slot.what).s(" ").u(slot.id);
    lb.line(fd);
  }

  if (ring != nullptr) {
    const std::uint64_t begin = head > cap ? head - cap : 0;
    for (std::uint64_t pos = begin; pos < head; ++pos) {
      const EventRecord& slot = ring->slots[pos % cap];
      if (slot.seq.load(std::memory_order_acquire) != pos + 1) continue;
      lb.s("event: seq=").u(pos + 1).s(" t_ns=").i(slot.t_ns);
      lb.s(" tid=").u(slot.tid).s(" name=").s(slot.name);
      lb.s(" a=").u(slot.a).s(" b=").u(slot.b).line(fd);
    }
  }

  const obs::detail::SigCounterView* counter_views = nullptr;
  const std::size_t n_counters = obs::detail::sig_counters(&counter_views);
  for (std::size_t i = 0; i < n_counters; ++i) {
    lb.s("counter: ").s(counter_views[i].name).s(" ");
    lb.u(*counter_views[i].value).line(fd);
  }
  const obs::detail::SigHistView* hist_views = nullptr;
  const std::size_t n_hists = obs::detail::sig_hists(&hist_views);
  for (std::size_t i = 0; i < n_hists; ++i) {
    const obs::detail::SigHistView& h = hist_views[i];
    const std::uint64_t count = *h.count;
    lb.s("hist: ").s(h.name).s(" count=").u(count);
    lb.s(" total_ns=").u(*h.total_ns);
    lb.s(" p50_le_ns=").u(hist_pct_le_ns(h.buckets, count, 50));
    lb.s(" p95_le_ns=").u(hist_pct_le_ns(h.buckets, count, 95));
    lb.s(" p99_le_ns=").u(hist_pct_le_ns(h.buckets, count, 99));
    lb.line(fd);
  }
  lb.s("end").line(fd);
}

/// SA_RESETHAND put the default disposition back before this handler
/// ran, so after the dump a plain raise() -- delivered when the handler
/// returns -- kills the process by the original signal. The supervisor
/// keeps seeing "killed by signal N", postmortem or not.
void fatal_signal_handler(int sig) {
  const char* reason = sig == SIGSEGV   ? "SIGSEGV"
                       : sig == SIGABRT ? "SIGABRT"
                       : sig == SIGBUS  ? "SIGBUS"
                                        : "fatal signal";
  write_postmortem(reason);
  ::raise(sig);
}

void terminate_hook() {
  write_postmortem("terminate");
  // abort() raises SIGABRT; our handler sees the dump already done and
  // just re-delivers, so the process still dies the std::terminate way.
  std::abort();
}

/// Clean exits must not litter ELRR_POSTMORTEM_DIR: the pre-opened tmp
/// file is unlinked at normal process exit when no dump consumed it (a
/// dump renames it to the final path first; a fatal signal never
/// reaches atexit at all). Registered once, reads the live path, so
/// reconfigures are honored.
void unlink_tmp_at_exit() {
  if (!g_dumped.load(std::memory_order_relaxed) && g_tmp_path[0] != '\0') {
    ::unlink(g_tmp_path);
  }
}

/// Tears down the armed state (fd, handlers, hook). Caller holds
/// g_configure_mutex and has already disarmed.
void disarm_locked() {
  if (g_fd >= 0) {
    ::close(g_fd);
    ::unlink(g_tmp_path);
    g_fd = -1;
  }
  if (g_handlers_installed) {
    for (std::size_t i = 0; i < 3; ++i) {
      ::sigaction(kFatalSignals[i], &g_old_sa[i], nullptr);
    }
    std::set_terminate(g_old_terminate);
    g_old_terminate = nullptr;
    g_handlers_installed = false;
  }
  g_tmp_path[0] = '\0';
  g_final_path[0] = '\0';
  g_dir.clear();
  g_dumped.store(false, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

void event_slow(const char* name, std::uint64_t a, std::uint64_t b) {
  Ring* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  const std::uint64_t h = ring->head.fetch_add(1, std::memory_order_relaxed);
  EventRecord& slot = ring->slots[h % ring->slots.size()];
  slot.seq.store(0, std::memory_order_release);
  slot.t_ns = obs::detail::now_ns();
  slot.a = a;
  slot.b = b;
  slot.tid = rec_tid();
  copy_event_name(slot.name, name);
  slot.seq.store(h + 1, std::memory_order_release);
}

void set_inflight_slow(const char* what, std::uint64_t id) {
  if (t_inflight_slot == ~std::size_t{0}) {
    const std::size_t claimed =
        g_inflight_claimed.fetch_add(1, std::memory_order_acq_rel);
    if (claimed >= kInflightSlots) return;  // out of slots: mark invisible
    t_inflight_slot = claimed;
  }
  if (t_inflight_slot >= kInflightSlots) return;
  InflightSlot& slot = g_inflight[t_inflight_slot];
  slot.active.store(false, std::memory_order_release);
  slot.tid = rec_tid();
  slot.id = id;
  std::size_t i = 0;
  for (; what[i] != '\0' && i + 1 < sizeof(slot.what); ++i) {
    slot.what[i] = what[i];
  }
  slot.what[i] = '\0';
  slot.active.store(true, std::memory_order_release);
}

void clear_inflight_slow() {
  if (t_inflight_slot < kInflightSlots) {
    g_inflight[t_inflight_slot].active.store(false, std::memory_order_release);
  }
}

}  // namespace detail

void configure(const std::string& dir, std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(g_configure_mutex);
  detail::g_rec_armed.store(false, std::memory_order_relaxed);
  disarm_locked();

  // Swap the journal out from under any in-flight writers: they keep
  // writing into the retired (still-reachable, ignored) ring.
  Ring* old = g_ring.exchange(nullptr, std::memory_order_acq_rel);
  if (old != nullptr) retired_rings().push_back(old);
  for (InflightSlot& slot : g_inflight) {
    slot.active.store(false, std::memory_order_release);
  }
  g_capacity = capacity;
  if (dir.empty()) return;

  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    throw InvalidInputError(elrr::detail::concat(
        "ELRR_POSTMORTEM_DIR: cannot create directory ", dir, ": ",
        std::strerror(errno)));
  }
  const long pid = static_cast<long>(::getpid());
  const int fn = std::snprintf(g_final_path, sizeof(g_final_path),
                               "%s/postmortem-%ld.txt", dir.c_str(), pid);
  const int tn = std::snprintf(g_tmp_path, sizeof(g_tmp_path),
                               "%s/postmortem-%ld.txt.tmp", dir.c_str(), pid);
  if (fn <= 0 || tn <= 0 ||
      static_cast<std::size_t>(tn) >= sizeof(g_tmp_path)) {
    g_tmp_path[0] = g_final_path[0] = '\0';
    throw InvalidInputError(
        elrr::detail::concat("ELRR_POSTMORTEM_DIR: path too long: ", dir));
  }
  g_fd = ::open(g_tmp_path, O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (g_fd < 0) {
    throw InvalidInputError(elrr::detail::concat(
        "ELRR_POSTMORTEM_DIR: cannot open ", g_tmp_path, ": ",
        std::strerror(errno)));
  }
  g_dir = dir;
  static const bool tmp_cleanup_registered = [] {
    std::atexit(unlink_tmp_at_exit);
    return true;
  }();
  (void)tmp_cleanup_registered;

  g_ring.store(new Ring(capacity), std::memory_order_release);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESETHAND: the default disposition is back before the handler
  // runs, so the post-dump raise() needs no sigaction from within the
  // handler and the process dies by the original signal.
  sa.sa_flags = SA_RESETHAND;
  for (std::size_t i = 0; i < 3; ++i) {
    ::sigaction(kFatalSignals[i], &sa, &g_old_sa[i]);
  }
  g_old_terminate = std::set_terminate(terminate_hook);
  g_handlers_installed = true;

  detail::g_rec_armed.store(true, std::memory_order_relaxed);
}

void configure_from_env() {
  // The capacity is validated even when the recorder stays disarmed:
  // a malformed ELRR_POSTMORTEM_BUF is an error, not a silent default
  // (same taxonomy as ELRR_OBS_BUF).
  const std::uint64_t cap =
      env::u64("ELRR_POSTMORTEM_BUF", 4096, 16, std::uint64_t{1} << 24);
  const std::string dir = env::str("ELRR_POSTMORTEM_DIR", "");
  configure(dir, static_cast<std::size_t>(cap));
}

void reset() { configure("", g_capacity); }

const std::string& postmortem_dir() {
  return g_dir;
}

std::string postmortem_path() {
  return g_final_path[0] == '\0' ? std::string() : std::string(g_final_path);
}

std::size_t ring_capacity() { return g_capacity; }

std::uint64_t dropped_events() {
  Ring* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return 0;
  const std::uint64_t head = ring->head.load(std::memory_order_acquire);
  const std::uint64_t cap = ring->slots.size();
  return head > cap ? head - cap : 0;
}

bool write_postmortem(const char* reason) {
  if (g_fd < 0) return false;
  if (g_dumped.exchange(true)) return false;
  dump_to_fd(g_fd, reason);
  ::fsync(g_fd);
  // rename(2) is async-signal-safe: the postmortem is published
  // atomically even from the depths of a SIGSEGV handler. A file at
  // the final path is always a complete dump.
  ::rename(g_tmp_path, g_final_path);
  return true;
}

std::vector<EventView> snapshot_events() {
  std::vector<EventView> out;
  Ring* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return out;
  const std::uint64_t head = ring->head.load(std::memory_order_acquire);
  const std::uint64_t cap = ring->slots.size();
  const std::uint64_t begin = head > cap ? head - cap : 0;
  for (std::uint64_t pos = begin; pos < head; ++pos) {
    const EventRecord& slot = ring->slots[pos % cap];
    if (slot.seq.load(std::memory_order_acquire) != pos + 1) continue;
    EventView view;
    view.seq = pos + 1;
    view.t_ns = slot.t_ns;
    view.a = slot.a;
    view.b = slot.b;
    view.tid = slot.tid;
    view.name = slot.name;
    out.push_back(std::move(view));
  }
  return out;
}

std::optional<Harvest> harvest(int pid) {
  std::string dir;
  {
    const std::lock_guard<std::mutex> lock(g_configure_mutex);
    dir = g_dir;
  }
  if (dir.empty()) return std::nullopt;
  const std::string path =
      elrr::detail::concat(dir, "/postmortem-", pid, ".txt");
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;

  // The excerpt is the crash's one-line identity: every in-flight mark
  // plus the last few journal events, ready to ride a TransientError.
  std::vector<std::string> inflight;
  std::vector<std::string> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("inflight: ", 0) == 0) {
      inflight.push_back(line);
    } else if (line.rfind("event: ", 0) == 0) {
      events.push_back(line);
      if (events.size() > 3) events.erase(events.begin());
    }
  }
  std::string excerpt;
  for (const std::string& mark : inflight) {
    if (!excerpt.empty()) excerpt += "; ";
    excerpt += mark;
  }
  for (const std::string& ev : events) {
    if (!excerpt.empty()) excerpt += "; ";
    excerpt += ev;
  }
  if (excerpt.size() > 480) {
    excerpt.resize(477);
    excerpt += "...";
  }
  return Harvest{path, std::move(excerpt)};
}

void discard_tmp(int pid) {
  std::string dir;
  {
    const std::lock_guard<std::mutex> lock(g_configure_mutex);
    dir = g_dir;
  }
  if (dir.empty()) return;
  const std::string tmp =
      elrr::detail::concat(dir, "/postmortem-", pid, ".txt.tmp");
  ::unlink(tmp.c_str());
}

}  // namespace elrr::obs::rec
