#pragma once

/// \file recorder.hpp
/// Black-box flight recorder: a per-process, fixed-capacity structured
/// event journal plus async-signal-safe fatal handlers that dump it --
/// together with the counter registry, histogram summaries and every
/// in-flight job/slice identity -- to an atomically-published
/// postmortem file when the process dies.
///
/// Discipline (shared with spans and fail points): every site is always
/// compiled in; disarmed -- the default -- a site costs one relaxed
/// atomic load and nothing else. Armed, an event costs one clock read
/// plus a wait-free slot claim (fetch_add) in the global ring; no locks
/// and no allocation on the record path, so events can be recorded from
/// any thread at any time.
///
/// Arming comes from ELRR_POSTMORTEM_DIR (a directory; each process
/// pre-opens `<dir>/postmortem-<pid>.txt.tmp` at configure time so the
/// fatal handler never has to call open(2)). ELRR_POSTMORTEM_BUF sets
/// the journal capacity in events (default 4096, [16, 2^24]); a full
/// ring wraps and drops oldest-first, counted in dropped_events().
///
/// Signal-safety contract: the fatal handlers (SIGSEGV / SIGABRT /
/// SIGBUS, plus a std::terminate hook) call only async-signal-safe
/// functions -- write(2), fsync(2), rename(2), raise(2) -- on the
/// pre-opened fd and pre-formatted static paths. No malloc, no stdio,
/// no locks. Counter and histogram values are read through the
/// registry's append-only mirror (stable std::map node addresses); a
/// value the owner is mid-way through bumping can tear, which is
/// acceptable in a crash dump. After the dump the handler restores the
/// default disposition and re-raises, so the process still dies by the
/// original signal and the proc-fleet supervisor's death_reason()
/// reports "killed by signal N" exactly as before.
///
/// Postmortem file format (line-oriented, version-tagged):
///   ELRR-POSTMORTEM 1
///   reason: SIGSEGV
///   pid: 12345
///   events_recorded: 87
///   events_dropped: 12
///   inflight: tid=3 slice 128
///   event: seq=80 t_ns=123456 tid=3 name=slice.recv a=128 b=16
///   counter: milp.solve.warm 5
///   hist: work.slice count=10 total_ns=12345 p50_le_ns=1024
///         p95_le_ns=4096 p99_le_ns=4096   (one line in the file)
///   end
/// Events are oldest-first, so the journal's tail (the last lines
/// before the counters) is what the process was doing when it died.
/// The trailing `end` marks a complete dump; the tmp+rename publish
/// means a file at the final path is always complete.
///
/// The recorder never feeds back into results: armed runs are bit-exact
/// with disarmed runs (the perf_smoke `obs` section pins both the
/// overhead ceiling and the theta comparison).

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace elrr::obs::rec {

/// Bytes of event name stored per record (including the NUL).
inline constexpr std::size_t kEventNameCap = 32;

namespace detail {
extern std::atomic<bool> g_rec_armed;
void event_slow(const char* name, std::uint64_t a, std::uint64_t b);
void set_inflight_slow(const char* what, std::uint64_t id);
void clear_inflight_slow();
}  // namespace detail

/// True while the recorder is armed (one relaxed load; the only cost
/// every disarmed site pays).
inline bool armed() {
  return detail::g_rec_armed.load(std::memory_order_relaxed);
}

/// Records one journal event with a monotonic timestamp and up to two
/// numeric arguments (job id, slice start, attempt...). No-op when
/// disarmed; armed, wait-free and lock-free.
inline void event(const char* name, std::uint64_t a = 0,
                  std::uint64_t b = 0) {
  if (armed()) detail::event_slow(name, a, b);
}

/// Marks the calling thread as working on `<what> <id>` ("job 7",
/// "slice 128") until clear_inflight(). The fatal dump lists every
/// live in-flight mark, so a postmortem names what each thread was
/// doing when the process died. No-op when disarmed.
inline void set_inflight(const char* what, std::uint64_t id) {
  if (armed()) detail::set_inflight_slow(what, id);
}

/// Clears the calling thread's in-flight mark.
inline void clear_inflight() {
  if (armed()) detail::clear_inflight_slow();
}

/// Arms the recorder: sizes the journal ring, pre-opens the postmortem
/// tmp file under `dir` (created if missing), installs the fatal signal
/// handlers and the std::terminate hook. Clears any previous journal.
/// Throws InvalidInputError if `dir` cannot be created or opened.
void configure(const std::string& dir, std::size_t capacity);

/// configure(ELRR_POSTMORTEM_DIR, ELRR_POSTMORTEM_BUF); the capacity is
/// validated strictly (integer in [16, 2^24], default 4096). An empty
/// or unset ELRR_POSTMORTEM_DIR leaves the recorder disarmed.
void configure_from_env();

/// Disarms, restores the previous signal dispositions and terminate
/// handler, closes and unlinks the pre-opened tmp file, clears the
/// journal. Safe to call when never configured.
void reset();

/// The configured postmortem directory ("" = disarmed).
const std::string& postmortem_dir();

/// The final postmortem path this process would publish
/// (`<dir>/postmortem-<pid>.txt`), or "" when disarmed.
std::string postmortem_path();

/// Journal ring capacity currently in force.
std::size_t ring_capacity();

/// Total events lost to ring wrap-around (oldest are dropped first).
std::uint64_t dropped_events();

/// Writes the postmortem now (the fatal handlers' path, callable from
/// normal code for tests and orderly shutdown reports). Only the first
/// call dumps: returns true iff this call published the file. Async-
/// signal-safe when `reason` is a static string.
bool write_postmortem(const char* reason);

/// One journal event as read back by snapshot_events() (tests).
struct EventView {
  std::uint64_t seq = 0;   ///< 1-based publish order
  std::int64_t t_ns = 0;   ///< steady_clock, ns
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t tid = 0;   ///< recording thread, 1-based
  std::string name;
};

/// Fully-published journal events, oldest-first (wrapped entries are
/// gone; slots a writer is mid-way through filling are skipped).
std::vector<EventView> snapshot_events();

/// A crashed worker's harvested postmortem: the file path plus a
/// one-line excerpt of the in-flight marks and last few events.
struct Harvest {
  std::string path;
  std::string excerpt;
};

/// Reads `<dir>/postmortem-<pid>.txt` for a dead child, if the child
/// managed to publish one (SIGKILL leaves none). Normal code, not
/// signal context. std::nullopt when disarmed or no file exists.
std::optional<Harvest> harvest(int pid);

/// Unlinks a reaped child's pre-opened `<dir>/postmortem-<pid>.txt.tmp`.
/// A SIGKILLed child never runs its own atexit cleanup, so the
/// supervisor discards the orphan after waitpid: once the pid is
/// reaped no rename can publish it, and a file at the final path is
/// never touched. No-op when disarmed or the tmp does not exist.
void discard_tmp(int pid);

}  // namespace elrr::obs::rec
