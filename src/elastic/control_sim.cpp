#include "elastic/control_sim.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace elrr::elastic {

namespace {

constexpr std::int32_t kQueueCap = 1 << 20;

/// One channel: R(e) EB stages. stages[0] is producer-side; the *last*
/// stage is the consumer interface (its occupancy is the channel's
/// registered "valid", and consuming pops it, so back-pressure propagates
/// stage by stage). Wires (R = 0) use the `wire` queue instead, with the
/// backlog-at-consumer convention of footnote 1.
struct ChannelState {
  std::vector<std::int32_t> occ;   ///< per-stage occupancy (current)
  std::vector<std::int32_t> prev;  ///< cycle-start snapshot (registered)
  std::int32_t wire = 0;           ///< tokens on a zero-latency channel
  std::int32_t anti = 0;           ///< pending anti-tokens at the consumer

  bool buffered() const { return !occ.empty(); }

  /// Registered valid: does the consumer see a token this cycle?
  bool valid() const { return buffered() ? prev.back() > 0 : wire > 0; }

  /// Consumer pops one visible token.
  void consume() {
    if (buffered()) {
      --occ.back();
    } else {
      --wire;
    }
  }

  /// Token arrives at the consumer interface of a wire.
  void deposit_wire() {
    if (anti > 0) {
      --anti;
    } else {
      ++wire;
      ELRR_ASSERT(wire < kQueueCap, "control-sim token runaway");
    }
  }

  /// Annihilate tokens sitting at the consumer interface against
  /// pending anti-tokens.
  void cancel() {
    if (buffered()) {
      while (!occ.empty() && occ.back() > 0 && anti > 0) {
        --occ.back();
        --anti;
      }
    } else {
      while (wire > 0 && anti > 0) {
        --wire;
        --anti;
      }
    }
  }
};

class ControlNetwork {
 public:
  ControlNetwork(const Rrg& rrg, int capacity,
                 const std::vector<int>& per_edge = {})
      : rrg_(rrg) {
    ELRR_REQUIRE(capacity >= 1, "EB capacity must be at least 1");
    ELRR_REQUIRE(per_edge.empty() || per_edge.size() == rrg.num_edges(),
                 "per-edge capacity vector size mismatch");
    capacity_.assign(rrg.num_edges(), capacity);
    for (EdgeId e = 0; e < rrg.num_edges() && !per_edge.empty(); ++e) {
      if (rrg.buffers(e) == 0) continue;  // wires have no stages
      ELRR_REQUIRE(per_edge[e] >= 1, "EB capacity must be at least 1 on edge ",
                   e);
      capacity_[e] = per_edge[e];
    }
    rrg_.validate();
    const auto order = graph::topological_order(
        rrg_.graph(), [&](EdgeId e) { return rrg_.buffers(e) == 0; });
    ELRR_ASSERT(order.has_value(), "zero-buffer cycle in live RRG");
    comb_order_ = *order;
    reset();
  }

  void reset() {
    channels_.assign(rrg_.num_edges(), {});
    for (EdgeId e = 0; e < rrg_.num_edges(); ++e) {
      ChannelState& ch = channels_[e];
      ch.occ.assign(static_cast<std::size_t>(rrg_.buffers(e)), 0);
      // Initial tokens fill the stages nearest the consumer, one each
      // (R0 <= R guarantees they fit even at capacity 1).
      int tokens = std::max(rrg_.tokens(e), 0);
      for (std::size_t k = ch.occ.size(); k > 0 && tokens > 0; --k, --tokens) {
        ch.occ[k - 1] = 1;
      }
      if (!ch.buffered()) ch.wire = std::max(rrg_.tokens(e), 0);
      ch.anti = std::max(-rrg_.tokens(e), 0);
      ch.cancel();
      ch.prev = ch.occ;
    }
    pending_guard_.assign(rrg_.num_nodes(), -1);
    busy_.assign(rrg_.num_nodes(), 0);
    release_.assign(rrg_.num_nodes(), 0);
  }

  /// One clock cycle; returns the number of node firings.
  /// `choose_latency` is consulted when a telescopic node fires (true =
  /// slow): the unit goes busy for slow_extra cycles and its outputs are
  /// withheld; the release itself waits for output room (backpressure
  /// stalls a slow completion like any other transfer).
  std::uint32_t step(const sim::Kernel::GuardChooser& choose_guard,
                     const sim::Kernel::LatencyChooser& choose_latency = {}) {
    const Digraph& g = rrg_.graph();
    for (ChannelState& ch : channels_) ch.prev = ch.occ;
    std::uint32_t firings = 0;

    for (NodeId n : comb_order_) {
      const auto& inputs = g.in_edges(n);
      const auto& outputs = g.out_edges(n);

      // Lazy producer: every buffered output needs room in its first
      // stage as seen at the cycle start (registered stop signal).
      bool outputs_ready = true;
      for (EdgeId e : outputs) {
        if (channels_[e].buffered() && channels_[e].prev[0] >= capacity_[e]) {
          outputs_ready = false;
          break;
        }
      }

      // A telescopic node mid slow operation: it neither samples guards
      // nor fires. A finished slow operation (release pending) must
      // deposit its withheld outputs -- against the same registered
      // backpressure -- before the unit frees up.
      if (busy_[n] > 0) continue;
      if (release_[n] != 0) {
        if (outputs_ready) {
          for (EdgeId e : outputs) {
            ChannelState& ch = channels_[e];
            if (ch.buffered()) {
              ++ch.occ[0];
              ELRR_ASSERT(ch.occ[0] <= capacity_[e], "EB overflow");
            } else {
              ch.deposit_wire();
            }
          }
          release_[n] = 0;
        }
        continue;  // the unit is occupied either way this cycle
      }

      bool fires = false;
      if (!rrg_.is_early(n)) {
        fires = outputs_ready;
        for (EdgeId e : inputs) {
          if (!channels_[e].valid()) {
            fires = false;
            break;
          }
        }
        if (fires) {
          for (EdgeId e : inputs) channels_[e].consume();
        }
      } else {
        std::int32_t guard = pending_guard_[n];
        if (guard < 0) {
          const std::size_t pos = choose_guard(n);
          ELRR_ASSERT(pos < inputs.size(), "guard out of range");
          guard = static_cast<std::int32_t>(pos);
          pending_guard_[n] = guard;
        }
        const EdgeId guard_edge = inputs[static_cast<std::size_t>(guard)];
        if (channels_[guard_edge].valid() && outputs_ready) {
          fires = true;
          pending_guard_[n] = -1;
          for (std::size_t pos = 0; pos < inputs.size(); ++pos) {
            ChannelState& ch = channels_[inputs[pos]];
            if (pos == static_cast<std::size_t>(guard) || ch.valid()) {
              ch.consume();  // guard token, or late token cancelled now
            } else {
              ++ch.anti;
              ELRR_ASSERT(ch.anti < kQueueCap, "anti-token runaway");
            }
          }
        }
      }

      if (fires) {
        ++firings;
        const bool slow = rrg_.is_telescopic(n) && choose_latency &&
                          choose_latency(n);
        if (slow) {
          busy_[n] =
              static_cast<std::int32_t>(rrg_.telescopic(n).slow_extra);
          release_[n] = 1;
        } else {
          for (EdgeId e : outputs) {
            ChannelState& ch = channels_[e];
            if (ch.buffered()) {
              ++ch.occ[0];
              ELRR_ASSERT(ch.occ[0] <= capacity_[e], "EB overflow");
            } else {
              ch.deposit_wire();  // combinational: consumable downstream now
            }
          }
        }
      }
    }

    // Advance EB chains with registered backpressure: a token moves from
    // stage k to k+1 iff stage k held one at the cycle start and stage
    // k+1 had room at the cycle start. The last stage only drains by
    // consumption (or anti-token cancellation) above.
    for (EdgeId e = 0; e < rrg_.num_edges(); ++e) {
      ChannelState& ch = channels_[e];
      if (!ch.buffered()) continue;
      for (std::size_t k = ch.occ.size() - 1; k > 0; --k) {
        if (ch.prev[k - 1] > 0 && ch.prev[k] < capacity_[e]) {
          --ch.occ[k - 1];
          ++ch.occ[k];
        }
      }
      ch.cancel();
    }
    for (NodeId n = 0; n < rrg_.num_nodes(); ++n) {
      if (busy_[n] > 0) --busy_[n];
    }
    return firings;
  }

 private:
  Rrg rrg_;
  std::vector<int> capacity_;
  std::vector<NodeId> comb_order_;
  std::vector<ChannelState> channels_;
  std::vector<std::int32_t> pending_guard_;
  std::vector<std::int32_t> busy_;     ///< remaining slow cycles
  std::vector<std::int32_t> release_;  ///< withheld outputs pending
};

}  // namespace

sim::SimResult simulate_control_throughput(const Rrg& rrg,
                                           const ControlSimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");

  ControlNetwork network(rrg, options.capacity, options.per_edge_capacity);
  std::vector<std::vector<double>> weights(rrg.num_nodes());
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    if (!rrg.is_early(n)) continue;
    for (EdgeId e : rrg.graph().in_edges(n)) {
      weights[n].push_back(rrg.gamma(e));
    }
  }

  RunningStats across_runs;
  std::size_t total_cycles = 0;
  for (std::size_t run = 0; run < options.runs; ++run) {
    Rng master(options.seed + 0x9e37U * run);
    std::vector<Rng> streams;
    streams.reserve(rrg.num_nodes());
    for (std::size_t n = 0; n < rrg.num_nodes(); ++n) {
      streams.push_back(master.split());
    }
    const sim::Kernel::GuardChooser chooser = [&](NodeId n) {
      return streams[n].discrete(weights[n]);
    };
    const sim::Kernel::LatencyChooser latency = [&](NodeId n) {
      return streams[n].uniform01() >= rrg.telescopic(n).fast_prob;
    };

    network.reset();
    for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
      network.step(chooser, latency);
    }
    std::uint64_t firings = 0;
    for (std::size_t t = 0; t < options.measure_cycles; ++t) {
      firings += network.step(chooser, latency);
    }
    across_runs.add(static_cast<double>(firings) /
                    (static_cast<double>(options.measure_cycles) *
                     static_cast<double>(rrg.num_nodes())));
    total_cycles += options.measure_cycles;
  }

  sim::SimResult result;
  result.theta = across_runs.mean();
  result.stderr_theta = across_runs.stderr_mean();
  result.cycles = total_cycles;
  return result;
}

}  // namespace elrr::elastic
