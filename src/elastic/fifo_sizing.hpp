#pragma once

/// \file fifo_sizing.hpp
/// Simulation-guided elastic-FIFO capacity sizing.
///
/// The paper's footnote 1 assumes every elastic FIFO is "big enough for
/// storing the tokens it may receive", so that throughput is set by the
/// forward critical paths alone, and points at Lu & Koh (ICCAD'03) for
/// optimal sizing. This module closes that loop for our SELF control
/// network: it finds small per-stage capacities whose measured
/// throughput stays within a tolerance of the large-capacity reference.
///
/// Two phases:
///  1. uniform: binary search on one capacity shared by every EB stage
///     (throughput is monotone in capacity);
///  2. trim (optional): greedy per-edge reduction to capacity 1 where
///     the throughput target survives, most-buffered edges first.

#include <vector>

#include "elastic/control_sim.hpp"

namespace elrr::elastic {

struct FifoSizingOptions {
  /// Accept capacity vectors with Theta >= (1 - tolerance) * reference.
  double tolerance = 0.02;
  /// Reference capacity (stands in for "unbounded") and search ceiling.
  int max_capacity = 32;
  /// Run the greedy per-edge trim after the uniform search.
  bool per_edge_trim = true;
  /// Cap on throughput evaluations during the trim.
  int max_trim_evals = 128;
  /// Simulation budget for every throughput evaluation.
  ControlSimOptions sim;
};

struct FifoSizingResult {
  double theta_reference = 0.0;  ///< Theta at max_capacity everywhere
  int uniform_capacity = 0;      ///< smallest uniform capacity accepted
  double theta_uniform = 0.0;
  /// Final per-edge capacities (0 on wires). Equals the uniform answer
  /// on every edge when the trim is disabled or found nothing.
  std::vector<int> capacity;
  double theta_final = 0.0;
  int sim_evals = 0;
};

/// Sizes the EB stages of `rrg` (which must be live and, like every
/// simulation here, is expected to be strongly connected). Deterministic
/// in options.sim.seed.
FifoSizingResult size_fifos(const Rrg& rrg,
                            const FifoSizingOptions& options = {});

}  // namespace elrr::elastic
