#include "elastic/fifo_sizing.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace elrr::elastic {

namespace {

double measure(const Rrg& rrg, const ControlSimOptions& sim, int uniform,
               const std::vector<int>& per_edge, int* evals) {
  ControlSimOptions options = sim;
  options.capacity = uniform;
  options.per_edge_capacity = per_edge;
  ++*evals;
  return simulate_control_throughput(rrg, options).theta;
}

}  // namespace

FifoSizingResult size_fifos(const Rrg& rrg, const FifoSizingOptions& options) {
  ELRR_REQUIRE(options.max_capacity >= 1, "max_capacity must be positive");
  ELRR_REQUIRE(options.tolerance >= 0.0 && options.tolerance < 1.0,
               "tolerance must be in [0, 1)");
  rrg.validate();

  FifoSizingResult result;

  // Reference: "big enough" FIFOs (footnote 1).
  result.theta_reference = measure(rrg, options.sim, options.max_capacity, {},
                                   &result.sim_evals);
  const double target = (1.0 - options.tolerance) * result.theta_reference;

  // Phase 1: binary search the smallest accepted uniform capacity.
  // Throughput is monotone in capacity (more room never stalls a stage
  // that previously had room), so the accepted set is an up-set.
  int lo = 1, hi = options.max_capacity;
  double theta_lo = measure(rrg, options.sim, 1, {}, &result.sim_evals);
  if (theta_lo >= target) {
    hi = 1;
    result.theta_uniform = theta_lo;
  }
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    const double theta =
        measure(rrg, options.sim, mid, {}, &result.sim_evals);
    if (theta >= target) {
      hi = mid;
      result.theta_uniform = theta;
    } else {
      lo = mid + 1;
    }
  }
  result.uniform_capacity = hi;
  if (result.uniform_capacity == options.max_capacity) {
    result.theta_uniform = result.theta_reference;
  }

  // Per-edge capacities: uniform answer on buffered edges, 0 on wires.
  result.capacity.assign(rrg.num_edges(), 0);
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (rrg.buffers(e) > 0) result.capacity[e] = result.uniform_capacity;
  }
  result.theta_final = result.theta_uniform;

  // Phase 2: greedy trim toward capacity 1, most-buffered edges first
  // (long chains hold the most slack and are the likeliest to keep the
  // target without it).
  if (options.per_edge_trim && result.uniform_capacity > 1) {
    std::vector<EdgeId> order;
    for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
      if (rrg.buffers(e) > 0) order.push_back(e);
    }
    std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
      if (rrg.buffers(a) != rrg.buffers(b)) {
        return rrg.buffers(a) > rrg.buffers(b);
      }
      return a < b;
    });
    for (EdgeId e : order) {
      if (result.sim_evals >= options.max_trim_evals) break;
      const int saved = result.capacity[e];
      result.capacity[e] = 1;
      const double theta = measure(rrg, options.sim, options.sim.capacity,
                                   result.capacity, &result.sim_evals);
      if (theta >= target) {
        result.theta_final = theta;
      } else {
        result.capacity[e] = saved;
      }
    }
  }
  return result;
}

}  // namespace elrr::elastic
