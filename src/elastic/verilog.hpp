#pragma once

/// \file verilog.hpp
/// Verilog-2001 emission of the SELF control network for an RRG
/// configuration -- the artifact the paper generated and simulated for
/// every non-dominated RC ("The Verilog representation of elastic
/// controller was generated for each non-dominated RC").
///
/// The output contains
///  * a controller library: elrr_eb (two-slot elastic buffer control),
///    elrr_join (lazy join), elrr_ejoin (early join with anti-token
///    counters), elrr_fork (eager fork with done bits), elrr_select_lfsr
///    (testbench-side select generator approximating the branch
///    probabilities);
///  * a generated top-level wiring EB chains and node controllers
///    according to the RRG;
///  * a self-checking testbench that measures throughput as
///    firings(reference node) / cycles.
///
/// ElasticRR measures throughput with its own simulators (sim/ and
/// elastic/control_sim.hpp); the emitted Verilog is for inspection and
/// for users with an HDL simulator available.

#include <string>

#include "core/rrg.hpp"

namespace elrr::elastic {

struct VerilogOptions {
  std::string top_name = "elastic_top";
  /// Cycles the generated testbench simulates.
  int testbench_cycles = 10000;
};

/// Emits the full self-contained Verilog file.
std::string emit_verilog(const Rrg& rrg, const VerilogOptions& options = {});

/// Identifier-safe mangling of an RRG node name ("F1/in3" -> "F1_in3").
std::string sanitize_identifier(const std::string& name);

}  // namespace elrr::elastic
