#include "elastic/verilog.hpp"

#include <cctype>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr::elastic {

std::string sanitize_identifier(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'n');
  }
  return out;
}

namespace {

/// Static controller library (control signals only; the datapath is a
/// user concern and is referenced in comments).
constexpr const char* kLibrary = R"(
//----------------------------------------------------------------------
// SELF controller library (control plane only).
//----------------------------------------------------------------------

// Two-slot elastic buffer controller: latency 1, capacity 2.
// INIT_TOKENS in {0,1}: a token-initialized EB models a register.
module elrr_eb #(parameter INIT_TOKENS = 0) (
  input  wire clk,
  input  wire rst,
  input  wire v_in,
  output wire s_in,    // stop to producer
  output wire v_out,
  input  wire s_out    // stop from consumer
);
  reg [1:0] occ;       // 0, 1 or 2 tokens stored
  wire push = v_in  & ~s_in;
  wire pop  = v_out & ~s_out;
  assign v_out = (occ != 2'd0);
  assign s_in  = (occ == 2'd2) & s_out;  // full and not draining
  always @(posedge clk) begin
    if (rst) occ <= INIT_TOKENS[1:0];
    else     occ <= occ + {1'b0, push} - {1'b0, pop};
  end
endmodule

// Lazy join: fires when all inputs are valid and the consumer accepts.
module elrr_join #(parameter N = 2) (
  input  wire [N-1:0] v_in,
  output wire [N-1:0] s_in,
  output wire         v_out,
  input  wire         s_out
);
  assign v_out = &v_in;
  wire transfer = v_out & ~s_out;
  assign s_in = v_in & {N{~transfer}};
endmodule

// Early-evaluation join (DAC'07): fires on the *selected* input alone;
// non-selected inputs receive anti-tokens that cancel late arrivals.
module elrr_ejoin #(parameter N = 2, parameter CNT_W = 8) (
  input  wire               clk,
  input  wire               rst,
  input  wire [N-1:0]       v_in,
  output wire [N-1:0]       s_in,
  input  wire [N-1:0]       sel,    // one-hot guard (select channel)
  output wire               v_out,
  input  wire               s_out,
  output wire               fired
);
  reg [CNT_W-1:0] anti [0:N-1];
  wire [N-1:0] has_anti;
  genvar gi;
  generate
    for (gi = 0; gi < N; gi = gi + 1) begin : g_anti
      assign has_anti[gi] = (anti[gi] != {CNT_W{1'b0}});
    end
  endgenerate
  // Effective valid: a real token not owed to an anti-token.
  wire [N-1:0] v_eff = v_in & ~has_anti;
  assign v_out = |(sel & v_eff);
  assign fired = v_out & ~s_out;
  // Consume: the guard input on firing; any input with a pending
  // anti-token absorbs silently; everything else stalls.
  wire [N-1:0] absorb = v_in & has_anti;
  wire [N-1:0] consume = (sel & {N{fired}}) | absorb;
  assign s_in = v_in & ~consume;
  integer i;
  always @(posedge clk) begin
    if (rst) begin
      for (i = 0; i < N; i = i + 1) anti[i] <= {CNT_W{1'b0}};
    end else begin
      for (i = 0; i < N; i = i + 1) begin
        if (fired & ~sel[i] & ~v_in[i])
          anti[i] <= anti[i] + 1'b1;           // owe one anti-token
        else if (~(fired & ~sel[i]) & absorb[i])
          anti[i] <= anti[i] - 1'b1;           // cancelled a straggler
      end
    end
  end
endmodule

// Eager fork: each branch takes the token as soon as it can; the producer
// is released once every branch has taken it.
module elrr_fork #(parameter N = 2) (
  input  wire         clk,
  input  wire         rst,
  input  wire         v_in,
  output wire         s_in,
  output wire [N-1:0] v_out,
  input  wire [N-1:0] s_out
);
  reg [N-1:0] done;
  wire [N-1:0] take = v_out & ~s_out;
  wire all_done = &(done | take);
  assign v_out = {N{v_in}} & ~done;
  assign s_in = v_in & ~all_done;
  always @(posedge clk) begin
    if (rst) done <= {N{1'b0}};
    else if (v_in) done <= all_done ? {N{1'b0}} : (done | take);
  end
endmodule

// Galois LFSR driving a one-hot select with approximate probabilities
// (16-bit threshold comparison); testbench-side model of the select
// channel, which in a real design comes from the datapath.
module elrr_select_lfsr #(parameter N = 2,
                          parameter [16*N-1:0] THRESH = {16*N{1'b0}},
                          parameter [15:0] SEED = 16'hACE1) (
  input  wire         clk,
  input  wire         rst,
  input  wire         advance,  // consume one select token
  output reg  [N-1:0] sel
);
  reg [15:0] lfsr;
  integer i;
  reg chosen;
  always @(posedge clk) begin
    if (rst) lfsr <= SEED;
    else if (advance)
      lfsr <= {lfsr[14:0], lfsr[15] ^ lfsr[13] ^ lfsr[12] ^ lfsr[10]};
  end
  always @(*) begin
    sel = {N{1'b0}};
    chosen = 1'b0;
    for (i = 0; i < N; i = i + 1) begin
      if (!chosen && lfsr < THRESH[16*i +: 16]) begin
        sel[i] = 1'b1;
        chosen = 1'b1;
      end
    end
    if (!chosen) sel[N-1] = 1'b1;
  end
endmodule
)";

std::string channel_wire(EdgeId e, const std::string& which) {
  return "ch" + std::to_string(e) + "_" + which;
}

}  // namespace

std::string emit_verilog(const Rrg& rrg, const VerilogOptions& options) {
  ELRR_REQUIRE(!rrg.has_telescopic(),
               "Verilog emission models fixed-latency units only; telescopic "
               "wrappers are out of scope (see DESIGN.md)");
  rrg.validate();
  const Digraph& g = rrg.graph();
  const std::string top = sanitize_identifier(options.top_name);

  std::ostringstream os;
  os << "// Generated by ElasticRR: SELF control network for an RRG\n"
     << "// configuration (DAC'09 retiming & recycling with early\n"
     << "// evaluation). Nodes: " << rrg.num_nodes()
     << ", channels: " << rrg.num_edges() << ".\n"
     << "// The datapath is omitted: every v/s pair below shadows a data\n"
     << "// bus of the user's width.\n";
  os << kLibrary;

  // ---------------------------------------------------------------- top
  os << "\nmodule " << top << " (\n  input wire clk,\n  input wire rst,\n"
     << "  output wire [31:0] firings\n);\n";

  // Channel wires: producer side (p) and consumer side (c) of each EB
  // chain; for wires the two coincide.
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    os << "  wire " << channel_wire(e, "pv") << ", " << channel_wire(e, "ps")
       << ", " << channel_wire(e, "cv") << ", " << channel_wire(e, "cs")
       << ";\n";
  }

  // EB chains.
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const int stages = rrg.buffers(e);
    if (stages == 0) {
      os << "  assign " << channel_wire(e, "cv") << " = "
         << channel_wire(e, "pv") << ";\n";
      os << "  assign " << channel_wire(e, "ps") << " = "
         << channel_wire(e, "cs") << ";\n";
      continue;
    }
    int tokens = std::max(rrg.tokens(e), 0);
    std::string prev_v = channel_wire(e, "pv");
    std::string prev_s = channel_wire(e, "ps");
    for (int k = 0; k < stages; ++k) {
      const std::string v =
          k + 1 == stages ? channel_wire(e, "cv")
                          : "ch" + std::to_string(e) + "_v" + std::to_string(k);
      const std::string s =
          k + 1 == stages ? channel_wire(e, "cs")
                          : "ch" + std::to_string(e) + "_s" + std::to_string(k);
      if (k + 1 != stages) os << "  wire " << v << ", " << s << ";\n";
      // Initialize tokens from the consumer side of the chain.
      const int init = (stages - k) <= tokens ? 1 : 0;
      os << "  elrr_eb #(.INIT_TOKENS(" << init << ")) eb_" << e << "_" << k
         << " (.clk(clk), .rst(rst), .v_in(" << prev_v << "), .s_in(" << prev_s
         << "), .v_out(" << v << "), .s_out(" << s << "));\n";
      prev_v = v;
      prev_s = s;
    }
  }

  // Node controllers: join side + fork side per node.
  std::ostringstream firing_terms;
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    const std::string id = sanitize_identifier(rrg.name(n));
    const auto& in = g.in_edges(n);
    const auto& out = g.out_edges(n);
    os << "\n  // node " << rrg.name(n) << " (delay "
       << format_fixed(rrg.delay(n), 2) << ", "
       << (rrg.is_early(n) ? "early" : "simple") << ")\n";
    os << "  wire " << id << "_v, " << id << "_s;\n";

    if (in.empty()) {
      os << "  assign " << id << "_v = 1'b1;\n";
    } else if (!rrg.is_early(n) && in.size() == 1) {
      // Single input: the channel connects straight through.
      os << "  assign " << id << "_v = " << channel_wire(in[0], "cv")
         << ";\n";
      os << "  assign " << channel_wire(in[0], "cs") << " = " << id
         << "_s;\n";
    } else if (!rrg.is_early(n)) {
      os << "  elrr_join #(.N(" << in.size() << ")) join_" << id << " (.v_in({";
      for (std::size_t i = in.size(); i > 0; --i) {
        os << channel_wire(in[i - 1], "cv") << (i > 1 ? ", " : "");
      }
      os << "}), .s_in({";
      for (std::size_t i = in.size(); i > 0; --i) {
        os << channel_wire(in[i - 1], "cs") << (i > 1 ? ", " : "");
      }
      os << "}), .v_out(" << id << "_v), .s_out(" << id << "_s));\n";
    } else {
      // Select generator thresholds: cumulative 16-bit gamma boundaries.
      os << "  wire [" << in.size() - 1 << ":0] " << id << "_sel;\n";
      os << "  wire " << id << "_fired;\n";
      double cumulative = 0.0;
      os << "  elrr_select_lfsr #(.N(" << in.size() << "), .THRESH({";
      std::vector<std::string> thresholds;
      for (EdgeId e : in) {
        cumulative += rrg.gamma(e);
        const int raw = static_cast<int>(cumulative * 65535.0);
        thresholds.push_back("16'd" + std::to_string(std::min(raw, 65535)));
      }
      for (std::size_t i = thresholds.size(); i > 0; --i) {
        os << thresholds[i - 1] << (i > 1 ? ", " : "");
      }
      os << "})) sel_" << id << " (.clk(clk), .rst(rst), .advance(" << id
         << "_fired), .sel(" << id << "_sel));\n";
      os << "  elrr_ejoin #(.N(" << in.size() << ")) ejoin_" << id
         << " (.clk(clk), .rst(rst), .v_in({";
      for (std::size_t i = in.size(); i > 0; --i) {
        os << channel_wire(in[i - 1], "cv") << (i > 1 ? ", " : "");
      }
      os << "}), .s_in({";
      for (std::size_t i = in.size(); i > 0; --i) {
        os << channel_wire(in[i - 1], "cs") << (i > 1 ? ", " : "");
      }
      os << "}), .sel(" << id << "_sel), .v_out(" << id << "_v), .s_out("
         << id << "_s), .fired(" << id << "_fired));\n";
    }

    if (out.empty()) {
      os << "  assign " << id << "_s = 1'b0;\n";
    } else if (out.size() == 1) {
      os << "  assign " << channel_wire(out[0], "pv") << " = " << id
         << "_v;\n";
      os << "  assign " << id << "_s = " << channel_wire(out[0], "ps")
         << ";\n";
    } else {
      os << "  elrr_fork #(.N(" << out.size() << ")) fork_" << id
         << " (.clk(clk), .rst(rst), .v_in(" << id << "_v), .s_in(" << id
         << "_s), .v_out({";
      for (std::size_t i = out.size(); i > 0; --i) {
        os << channel_wire(out[i - 1], "pv") << (i > 1 ? ", " : "");
      }
      os << "}), .s_out({";
      for (std::size_t i = out.size(); i > 0; --i) {
        os << channel_wire(out[i - 1], "ps") << (i > 1 ? ", " : "");
      }
      os << "}));\n";
    }
    if (n == 0) {
      firing_terms << id << "_v & ~" << id << "_s";
    }
  }

  os << "\n  // Reference-node firing counter (all nodes share the same\n"
     << "  // long-run rate in a strongly connected system).\n";
  os << "  reg [31:0] fire_count;\n"
     << "  always @(posedge clk) begin\n"
     << "    if (rst) fire_count <= 32'd0;\n"
     << "    else if (" << firing_terms.str()
     << ") fire_count <= fire_count + 32'd1;\n"
     << "  end\n"
     << "  assign firings = fire_count;\n";
  os << "endmodule\n";

  // ---------------------------------------------------------- testbench
  os << "\nmodule " << top << "_tb;\n"
     << "  reg clk = 1'b0, rst = 1'b1;\n"
     << "  wire [31:0] firings;\n"
     << "  " << top << " dut (.clk(clk), .rst(rst), .firings(firings));\n"
     << "  always #5 clk = ~clk;\n"
     << "  initial begin\n"
     << "    repeat (4) @(posedge clk);\n"
     << "    rst = 1'b0;\n"
     << "    repeat (" << options.testbench_cycles << ") @(posedge clk);\n"
     << "    $display(\"throughput %f\", firings / "
     << format_fixed(static_cast<double>(options.testbench_cycles), 1)
     << ");\n"
     << "    $finish;\n"
     << "  end\n"
     << "endmodule\n";
  return os.str();
}

}  // namespace elrr::elastic
