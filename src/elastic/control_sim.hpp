#pragma once

/// \file control_sim.hpp
/// Cycle-accurate simulation of the SELF control network implementing an
/// RRG configuration: every edge is a chain of R(e) elastic-buffer stages
/// of finite capacity with *registered* backpressure (a stage learns only
/// next cycle that its successor had room), joins are lazy, early joins
/// carry anti-token counters (DAC'07 controllers).
///
/// Relationship to sim/ (token-level kernel):
///  * capacity >= 2 and the kernel's unbounded-FIFO assumption coincide on
///    bubble-free streaming; as capacity grows the control network's
///    throughput converges to the kernel's (footnote 1 of the paper) --
///    property-tested;
///  * capacity 1 halves the streaming rate (the classical reason SELF EBs
///    hold two tokens) -- the capacity ablation bench quantifies this.
///
/// Zero-latency edges (R = 0) are wires; their backlog is modeled at the
/// consumer (justified by the same FIFO-sizing assumption; see DESIGN.md).
///
/// Telescopic (variable-latency) nodes are supported with hardware
/// semantics: a slow operation keeps the unit busy, withholds its
/// outputs, and the completion itself stalls on output backpressure;
/// cross-validated against the token-level kernel.

#include <cstdint>
#include <vector>

#include "core/rrg.hpp"
#include "sim/simulator.hpp"

namespace elrr::elastic {

struct ControlSimOptions {
  int capacity = 2;  ///< tokens per EB stage (SELF EBs hold 2)
  /// Per-edge stage capacities overriding `capacity` (empty = uniform).
  /// Entries for zero-latency edges (wires) are ignored. Used by the
  /// FIFO sizing pass (fifo_sizing.hpp).
  std::vector<int> per_edge_capacity;
  std::uint64_t seed = 1;
  std::size_t warmup_cycles = 2000;
  std::size_t measure_cycles = 20000;
  std::size_t runs = 3;
};

/// Long-run throughput of the control network.
sim::SimResult simulate_control_throughput(const Rrg& rrg,
                                           const ControlSimOptions& options = {});

}  // namespace elrr::elastic
