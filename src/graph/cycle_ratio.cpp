#include "graph/cycle_ratio.hpp"

#include <algorithm>

#include "graph/topo.hpp"

namespace elrr::graph {

namespace {

using Wide = __int128;

/// Bellman-Ford non-positive-cycle detection with 128-bit weights
/// (Lawler's test needs weights like cost*D - k*time, which can exceed the
/// int64 range once multiplied by path lengths). Returns true and fills
/// `witness` if a cycle with total weight <= 0 exists.
/// Uses the same (n+1)-scaling trick as graph::has_nonpositive_cycle.
bool wide_nonpositive_cycle(const Digraph& g, const std::vector<Wide>& w,
                            std::vector<EdgeId>* witness) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return false;
  const Wide scale = static_cast<Wide>(n) + 1;
  std::vector<Wide> scaled(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) scaled[i] = w[i] * scale - 1;

  std::vector<Wide> dist(n, 0);
  std::vector<EdgeId> pred(n, kNoEdge);
  bool changed = true;
  NodeId last_updated = kNoNode;
  for (std::size_t pass = 0; pass <= n && changed; ++pass) {
    changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const NodeId u = g.src(e);
      const NodeId v = g.dst(e);
      if (dist[u] + scaled[e] < dist[v]) {
        dist[v] = dist[u] + scaled[e];
        pred[v] = e;
        changed = true;
        last_updated = v;
      }
    }
  }
  if (!changed) return false;
  if (witness != nullptr) {
    // Walk back from the last node updated in the final pass: its chain is
    // more than n links deep, hence fully set and wrapping the cycle.
    NodeId probe = last_updated;
    for (std::size_t i = 0; i < n; ++i) {
      ELRR_ASSERT(pred[probe] != kNoEdge, "broken predecessor chain");
      probe = g.src(pred[probe]);
    }
    witness->clear();
    NodeId walk = probe;
    do {
      const EdgeId e = pred[walk];
      witness->push_back(e);
      walk = g.src(e);
    } while (walk != probe);
    std::reverse(witness->begin(), witness->end());
  }
  return true;
}

}  // namespace

CycleRatioResult min_cycle_ratio(const Digraph& g,
                                 const std::vector<std::int64_t>& cost,
                                 const std::vector<std::int64_t>& time) {
  ELRR_REQUIRE(cost.size() == g.num_edges(), "cost vector size mismatch");
  ELRR_REQUIRE(time.size() == g.num_edges(), "time vector size mismatch");
  for (std::size_t i = 0; i < time.size(); ++i) {
    ELRR_REQUIRE(time[i] >= 0, "negative edge time at edge ", i);
  }

  // No zero-time cycles allowed: the zero-time subgraph must be acyclic.
  ELRR_REQUIRE(
      topological_order(g, [&](EdgeId e) { return time[e] == 0; }).has_value(),
      "graph has a directed cycle with zero total time");
  // The graph must contain at least one cycle.
  ELRR_REQUIRE(!topological_order(g, [](EdgeId) { return true; }).has_value(),
               "graph is acyclic; cycle ratio undefined");

  std::int64_t max_abs_cost = 1;
  std::int64_t total_time = 1;
  for (std::size_t i = 0; i < cost.size(); ++i) {
    max_abs_cost = std::max(max_abs_cost, std::abs(cost[i]));
    total_time += time[i];
  }
  // Distinct simple-cycle ratios differ by at least 1/D with D = T^2 where
  // T bounds any simple cycle's total time. Binary search over the integer
  // grid k/D then snap to the witness cycle's exact rational ratio.
  const Wide d_grid = static_cast<Wide>(total_time) * total_time;
  Wide lo = -static_cast<Wide>(max_abs_cost) * d_grid - 1;  // test(lo)=false
  Wide hi = static_cast<Wide>(max_abs_cost) * d_grid;       // test(hi)=true

  std::vector<Wide> w(g.num_edges());
  const auto test = [&](Wide k, std::vector<EdgeId>* witness) {
    // Is there a cycle with sum(cost) / sum(time) <= k / d_grid, i.e. with
    // sum(cost * d_grid - k * time) <= 0?
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      w[e] = static_cast<Wide>(cost[e]) * d_grid - k * static_cast<Wide>(time[e]);
    }
    return wide_nonpositive_cycle(g, w, witness);
  };

  while (hi - lo > 1) {
    const Wide mid = lo + (hi - lo) / 2;
    if (test(mid, nullptr)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  CycleRatioResult result;
  std::vector<EdgeId> witness;
  const bool found = test(hi, &witness);
  ELRR_ASSERT(found && !witness.empty(), "lost the critical cycle");
  for (EdgeId e : witness) {
    result.cycle_cost += cost[e];
    result.cycle_time += time[e];
  }
  ELRR_ASSERT(result.cycle_time > 0, "critical cycle has zero time");
  result.ratio = static_cast<double>(result.cycle_cost) /
                 static_cast<double>(result.cycle_time);
  result.critical_cycle = std::move(witness);
  return result;
}

}  // namespace elrr::graph
