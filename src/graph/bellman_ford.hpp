#pragma once

/// \file bellman_ford.hpp
/// Difference-constraint systems x(v) - x(u) <= w(e) for edges e = (u, v),
/// solved by Bellman-Ford from a virtual source. Used for
///  * recovering an integral retiming vector from integral buffer counts,
///  * Leiserson-Saxe retiming feasibility tests,
///  * liveness checking (no directed cycle with non-positive token sum).

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace elrr::graph {

struct DifferenceSolution {
  bool feasible = false;
  /// Potentials x with x(v) - x(u) <= w(e) for every edge; empty if
  /// infeasible. Integral whenever all weights are integral (they are:
  /// the weights are int64).
  std::vector<std::int64_t> potential;
  /// If infeasible: edges of one negative-weight cycle witnessing it.
  std::vector<EdgeId> negative_cycle;
};

/// Solves the system { x(dst(e)) - x(src(e)) <= weight[e] }.
DifferenceSolution solve_difference_constraints(
    const Digraph& g, const std::vector<std::int64_t>& weight);

/// True iff the graph has a directed cycle whose total `weight` is <= 0.
/// This is the *negation* of the RRG liveness condition when weight = R0.
/// Implemented exactly with integer arithmetic (scaling trick: a cycle has
/// sum <= 0 iff scaling each weight by (n+1) and subtracting 1 yields a
/// negative cycle, since simple cycle length <= n).
bool has_nonpositive_cycle(const Digraph& g,
                           const std::vector<std::int64_t>& weight,
                           std::vector<EdgeId>* witness = nullptr);

}  // namespace elrr::graph
