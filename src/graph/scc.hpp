#pragma once

/// \file scc.hpp
/// Strongly connected components (iterative Tarjan) and subgraph
/// extraction. The DAC'09 experiments run on the largest SCC of each
/// benchmark circuit; `largest_scc_subgraph` implements that step.

#include <vector>

#include "graph/digraph.hpp"

namespace elrr::graph {

struct SccResult {
  /// Component index per node. Components are numbered in *reverse*
  /// topological order (Tarjan's natural output): if there is an edge from
  /// component a to component b (a != b), then component[a] > component[b].
  std::vector<std::uint32_t> component;
  std::uint32_t num_components = 0;
};

/// Tarjan's algorithm, iterative (no recursion; safe for large graphs).
SccResult strongly_connected_components(const Digraph& g);

bool is_strongly_connected(const Digraph& g);

/// Node set of the largest SCC (ties broken by smallest component index).
std::vector<NodeId> largest_scc_nodes(const Digraph& g);

/// A subgraph induced by a node subset, with maps back to the parent.
struct InducedSubgraph {
  Digraph graph;
  std::vector<NodeId> node_to_parent;  ///< subgraph node -> parent node
  std::vector<EdgeId> edge_to_parent;  ///< subgraph edge -> parent edge
};

InducedSubgraph induced_subgraph(const Digraph& g,
                                 const std::vector<NodeId>& nodes);

}  // namespace elrr::graph
