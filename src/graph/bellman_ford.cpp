#include "graph/bellman_ford.hpp"

#include <algorithm>

namespace elrr::graph {

DifferenceSolution solve_difference_constraints(
    const Digraph& g, const std::vector<std::int64_t>& weight) {
  ELRR_REQUIRE(weight.size() == g.num_edges(), "weight vector size mismatch");
  DifferenceSolution result;
  const std::size_t n = g.num_nodes();
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // Virtual source with zero-weight edges to all nodes: start dist = 0.
  std::vector<std::int64_t> dist(n, 0);
  std::vector<EdgeId> pred(n, kNoEdge);

  bool changed = true;
  NodeId last_updated = kNoNode;
  for (std::size_t pass = 0; pass <= n && changed; ++pass) {
    changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const NodeId u = g.src(e);
      const NodeId v = g.dst(e);
      if (dist[u] + weight[e] < dist[v]) {
        dist[v] = dist[u] + weight[e];
        pred[v] = e;
        changed = true;
        last_updated = v;
      }
    }
  }

  if (!changed) {
    result.feasible = true;
    result.potential = std::move(dist);
    return result;
  }

  // A relaxation fired on pass n+1: `last_updated` has a shortest-path
  // estimate using more than n edges, so its predecessor chain is at least
  // n+1 edges deep (every link set) and must wrap a negative cycle.
  NodeId probe = last_updated;
  for (std::size_t i = 0; i < n; ++i) {
    ELRR_ASSERT(pred[probe] != kNoEdge, "broken predecessor chain");
    probe = g.src(pred[probe]);
  }
  // probe is now on the cycle; walk it once.
  NodeId walk = probe;
  do {
    const EdgeId e = pred[walk];
    ELRR_ASSERT(e != kNoEdge, "broken predecessor chain on cycle");
    result.negative_cycle.push_back(e);
    walk = g.src(e);
  } while (walk != probe);
  std::reverse(result.negative_cycle.begin(), result.negative_cycle.end());
  return result;
}

bool has_nonpositive_cycle(const Digraph& g,
                           const std::vector<std::int64_t>& weight,
                           std::vector<EdgeId>* witness) {
  // Cycle sum(w) <= 0  <=>  sum(w * (n+1) - 1) < 0 for simple cycles of
  // length <= n: if sum(w) <= 0 the scaled sum is <= -len < 0; if
  // sum(w) >= 1 the scaled sum is >= (n+1) - len >= 1 > 0.
  const std::int64_t scale = static_cast<std::int64_t>(g.num_nodes()) + 1;
  std::vector<std::int64_t> scaled(weight.size());
  for (std::size_t i = 0; i < weight.size(); ++i) {
    scaled[i] = weight[i] * scale - 1;
  }
  DifferenceSolution sol = solve_difference_constraints(g, scaled);
  if (sol.feasible) return false;
  if (witness != nullptr) *witness = std::move(sol.negative_cycle);
  return true;
}

}  // namespace elrr::graph
