#include "graph/cycles.hpp"

#include <algorithm>

namespace elrr::graph {

namespace {

/// Johnson-style enumerator. For every start node s we search the subgraph
/// of nodes >= s, so each simple cycle is reported exactly once (rooted at
/// its smallest node). Iterative stack to avoid deep recursion.
class Enumerator {
 public:
  Enumerator(const Digraph& g, std::size_t max_cycles)
      : g_(g), max_cycles_(max_cycles) {}

  CycleEnumeration run() {
    const std::size_t n = g_.num_nodes();
    on_path_.assign(n, false);
    for (NodeId s = 0; s < n && !result_.truncated; ++s) {
      start_ = s;
      dfs(s);
    }
    return std::move(result_);
  }

 private:
  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };

  void dfs(NodeId root) {
    std::vector<Frame> stack;
    std::vector<EdgeId> path_edges;
    stack.push_back({root, 0});
    on_path_[root] = true;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& out = g_.out_edges(frame.node);
      bool descended = false;
      while (frame.edge_pos < out.size()) {
        const EdgeId e = out[frame.edge_pos++];
        const NodeId v = g_.dst(e);
        if (v < start_) continue;  // rooted-at-minimum canonicalization
        if (v == start_) {
          path_edges.push_back(e);
          result_.cycles.push_back(path_edges);
          path_edges.pop_back();
          if (result_.cycles.size() >= max_cycles_) {
            result_.truncated = true;
            return;
          }
          continue;
        }
        if (on_path_[v]) continue;
        path_edges.push_back(e);
        on_path_[v] = true;
        stack.push_back({v, 0});
        descended = true;
        break;
      }
      if (!descended && !stack.empty() &&
          stack.back().edge_pos >= g_.out_edges(stack.back().node).size()) {
        on_path_[stack.back().node] = false;
        stack.pop_back();
        if (!path_edges.empty()) path_edges.pop_back();
      }
    }
  }

  const Digraph& g_;
  std::size_t max_cycles_;
  NodeId start_ = 0;
  std::vector<bool> on_path_;
  CycleEnumeration result_;
};

}  // namespace

CycleEnumeration enumerate_simple_cycles(const Digraph& g,
                                         std::size_t max_cycles) {
  return Enumerator(g, max_cycles).run();
}

}  // namespace elrr::graph
