#pragma once

/// \file dot.hpp
/// Graphviz DOT export with client-provided labels/attributes; shared by
/// RRG, TGMG and control-netlist visualization.

#include <functional>
#include <string>

#include "graph/digraph.hpp"

namespace elrr::graph {

struct DotStyle {
  std::string graph_name = "G";
  /// Returns the label for a node (empty -> node index).
  std::function<std::string(NodeId)> node_label;
  /// Returns extra DOT attributes for a node, e.g. "shape=trapezium".
  std::function<std::string(NodeId)> node_attrs;
  /// Returns the label for an edge.
  std::function<std::string(EdgeId)> edge_label;
  /// Returns extra DOT attributes for an edge.
  std::function<std::string(EdgeId)> edge_attrs;
};

/// Renders the graph in DOT syntax.
std::string to_dot(const Digraph& g, const DotStyle& style = {});

}  // namespace elrr::graph
