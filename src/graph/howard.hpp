#pragma once

/// \file howard.hpp
/// Howard's policy iteration for the minimum cycle ratio -- an
/// independent oracle against the Lawler parametric search in
/// cycle_ratio.hpp (the two are cross-checked by property tests; the
/// late-evaluation throughput of an RRG is min(1, MCR)).
///
/// Policy iteration in the min-ratio form:
///  * a policy picks one outgoing edge per node; its functional graph
///    has exactly one cycle per component;
///  * evaluation computes each component's exact rational cycle ratio
///    and a bias (node potential) by walking the component;
///  * improvement first switches nodes toward components with smaller
///    ratios, then (within equal ratios) along edges that lower the
///    bias. Termination: the (ratio, bias) pair improves lexically.
///
/// Same contract as min_cycle_ratio: integer costs, non-negative integer
/// times, at least one cycle, no zero-time cycle; works on arbitrary
/// (non-strongly-connected) graphs by iterating over SCCs.

#include <cstdint>
#include <vector>

#include "graph/cycle_ratio.hpp"
#include "graph/digraph.hpp"

namespace elrr::graph {

struct HowardResult {
  double ratio = 0.0;
  std::vector<EdgeId> critical_cycle;
  std::int64_t cycle_cost = 0;  ///< exact sums on the critical cycle
  std::int64_t cycle_time = 0;
  int iterations = 0;           ///< policy-improvement rounds
};

HowardResult howard_min_cycle_ratio(const Digraph& g,
                                    const std::vector<std::int64_t>& cost,
                                    const std::vector<std::int64_t>& time);

}  // namespace elrr::graph
