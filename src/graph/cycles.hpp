#pragma once

/// \file cycles.hpp
/// Bounded enumeration of simple directed cycles (Johnson's algorithm).
/// Used by tests as a brute-force oracle (e.g. verifying minimum cycle
/// ratio and liveness on small graphs) and by the liveness *repair* step
/// of the benchmark generator.

#include <vector>

#include "graph/digraph.hpp"

namespace elrr::graph {

struct CycleEnumeration {
  /// Each cycle as an edge list, in traversal order.
  std::vector<std::vector<EdgeId>> cycles;
  bool truncated = false;  ///< true if max_cycles was hit
};

/// Enumerates simple cycles, stopping after `max_cycles`.
CycleEnumeration enumerate_simple_cycles(const Digraph& g,
                                         std::size_t max_cycles = 100000);

}  // namespace elrr::graph
