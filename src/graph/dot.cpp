#include "graph/dot.hpp"

#include <sstream>

namespace elrr::graph {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_dot(const Digraph& g, const DotStyle& style) {
  std::ostringstream os;
  os << "digraph " << style.graph_name << " {\n";
  os << "  rankdir=LR;\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    os << " [label=\""
       << escape(style.node_label ? style.node_label(v) : std::to_string(v))
       << "\"";
    if (style.node_attrs) {
      const std::string attrs = style.node_attrs(v);
      if (!attrs.empty()) os << ", " << attrs;
    }
    os << "];\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "  n" << g.src(e) << " -> n" << g.dst(e);
    std::string label = style.edge_label ? style.edge_label(e) : std::string();
    std::string attrs = style.edge_attrs ? style.edge_attrs(e) : std::string();
    if (!label.empty() || !attrs.empty()) {
      os << " [";
      bool first = true;
      if (!label.empty()) {
        os << "label=\"" << escape(label) << "\"";
        first = false;
      }
      if (!attrs.empty()) {
        if (!first) os << ", ";
        os << attrs;
      }
      os << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace elrr::graph
