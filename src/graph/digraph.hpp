#pragma once

/// \file digraph.hpp
/// Directed multigraph used as the structural backbone of RRGs, TGMGs,
/// control netlists and gate-level circuits. Nodes and edges are dense
/// 32-bit indices; payloads live in parallel arrays owned by the client
/// (e.g. elrr::Rrg keeps delay/token vectors indexed by NodeId/EdgeId).

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace elrr::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// Directed multigraph (parallel edges and self-loops allowed).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t num_nodes) { add_nodes(num_nodes); }

  NodeId add_node() {
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<NodeId>(out_.size() - 1);
  }

  void add_nodes(std::size_t count) {
    out_.resize(out_.size() + count);
    in_.resize(in_.size() + count);
  }

  EdgeId add_edge(NodeId src, NodeId dst) {
    ELRR_REQUIRE(src < num_nodes() && dst < num_nodes(),
                 "edge endpoints out of range: ", src, " -> ", dst);
    const EdgeId e = static_cast<EdgeId>(edges_.size());
    edges_.push_back({src, dst});
    out_[src].push_back(e);
    in_[dst].push_back(e);
    return e;
  }

  std::size_t num_nodes() const { return out_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  NodeId src(EdgeId e) const { return edges_[e].src; }
  NodeId dst(EdgeId e) const { return edges_[e].dst; }

  const std::vector<EdgeId>& out_edges(NodeId n) const { return out_[n]; }
  const std::vector<EdgeId>& in_edges(NodeId n) const { return in_[n]; }

  std::size_t out_degree(NodeId n) const { return out_[n].size(); }
  std::size_t in_degree(NodeId n) const { return in_[n].size(); }

 private:
  struct Edge {
    NodeId src;
    NodeId dst;
  };

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace elrr::graph
