#include "graph/topo.hpp"

#include <algorithm>

namespace elrr::graph {

std::optional<std::vector<NodeId>> topological_order(const Digraph& g,
                                                     const EdgeFilter& keep) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> pending(n, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (keep(e)) ++pending[g.dst(e)];
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (pending[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const NodeId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (EdgeId e : g.out_edges(u)) {
      if (!keep(e)) continue;
      if (--pending[g.dst(e)] == 0) ready.push_back(g.dst(e));
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle in filtered subgraph
  return order;
}

LongestPathResult longest_path(const Digraph& g,
                               const std::vector<double>& node_weight,
                               const EdgeFilter& keep) {
  ELRR_REQUIRE(node_weight.size() == g.num_nodes(),
               "node weight vector size mismatch");
  LongestPathResult result;
  const auto order = topological_order(g, keep);
  if (!order) return result;  // is_dag stays false

  result.is_dag = true;
  const std::size_t n = g.num_nodes();
  result.arrival.assign(n, 0.0);
  std::vector<NodeId> pred(n, kNoNode);

  for (NodeId v : *order) {
    double best_in = 0.0;
    for (EdgeId e : g.in_edges(v)) {
      if (!keep(e)) continue;
      const NodeId u = g.src(e);
      if (result.arrival[u] > best_in) {
        best_in = result.arrival[u];
        pred[v] = u;
      }
    }
    result.arrival[v] = node_weight[v] + best_in;
  }

  NodeId sink = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (result.arrival[v] > result.arrival[sink]) sink = v;
  }
  result.max_arrival = n > 0 ? result.arrival[sink] : 0.0;

  // Backtrace one critical path.
  if (n > 0) {
    for (NodeId v = sink; v != kNoNode; v = pred[v]) {
      result.critical_path.push_back(v);
    }
    std::reverse(result.critical_path.begin(), result.critical_path.end());
  }
  return result;
}

}  // namespace elrr::graph
