#pragma once

/// \file topo.hpp
/// Topological ordering and DAG longest paths over *filtered* edge sets.
/// The cycle-time computation of an RRG is a longest path over the
/// combinational subgraph (edges carrying zero elastic buffers), with node
/// weights equal to combinational delays.

#include <functional>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace elrr::graph {

/// Predicate selecting the subgraph's edges.
using EdgeFilter = std::function<bool(EdgeId)>;

/// Kahn topological order over the filtered subgraph.
/// Returns std::nullopt if the subgraph contains a directed cycle.
std::optional<std::vector<NodeId>> topological_order(const Digraph& g,
                                                     const EdgeFilter& keep);

struct LongestPathResult {
  bool is_dag = false;          ///< false if the filtered subgraph is cyclic
  double max_arrival = 0.0;     ///< maximum path weight (cycle time)
  std::vector<double> arrival;  ///< per-node arrival times
  std::vector<NodeId> critical_path;  ///< nodes of one maximum-weight path
};

/// Longest (node-weighted) path over the filtered subgraph.
/// arrival(v) = weight(v) + max(0, max over kept edges (u,v) of arrival(u)),
/// so isolated nodes contribute their own weight — matching Definition 2.2
/// of the paper, where a single node is a combinational path.
LongestPathResult longest_path(const Digraph& g,
                               const std::vector<double>& node_weight,
                               const EdgeFilter& keep);

}  // namespace elrr::graph
