#include "graph/howard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/bellman_ford.hpp"
#include "graph/scc.hpp"
#include "support/error.hpp"

namespace elrr::graph {

namespace {

/// Exact comparison a.c / a.t < b.c / b.t for positive times.
struct Ratio {
  std::int64_t c = 0;
  std::int64_t t = 1;
};

bool less(const Ratio& a, const Ratio& b) {
  // Times are positive; 64-bit products are safe for our magnitudes
  // (costs/times are token/buffer counts, far below 2^31).
  return a.c * b.t < b.c * a.t;
}

/// Howard on one strongly connected subgraph. Returns the best cycle as
/// subgraph edge ids.
struct SccOutcome {
  Ratio ratio;
  std::vector<EdgeId> cycle;
  int iterations = 0;
};

SccOutcome howard_scc(const Digraph& g, const std::vector<std::int64_t>& cost,
                      const std::vector<std::int64_t>& time) {
  const std::size_t n = g.num_nodes();
  std::vector<EdgeId> policy(n);
  for (NodeId u = 0; u < n; ++u) {
    ELRR_ASSERT(g.out_degree(u) > 0, "SCC node without out-edge");
    policy[u] = g.out_edges(u)[0];
  }

  std::vector<Ratio> lambda(n);
  std::vector<double> bias(n);
  std::vector<std::uint32_t> comp(n);
  std::vector<EdgeId> best_cycle;
  Ratio best{1, 1};
  constexpr double kEps = 1e-9;

  SccOutcome out;
  const int max_rounds = static_cast<int>(10 * n + 64);
  for (int round = 0; round < max_rounds; ++round) {
    ++out.iterations;
    // --- policy evaluation ----------------------------------------
    // Find the unique cycle of each policy component, its exact ratio,
    // and biases satisfying
    //   bias(u) = cost(pi(u)) - lambda t(pi(u)) + bias(head).
    std::fill(comp.begin(), comp.end(), std::uint32_t(-1));
    std::uint32_t num_comp = 0;
    best_cycle.clear();
    bool have_best = false;
    std::vector<std::uint32_t> mark(n, std::uint32_t(-1));
    std::vector<Ratio> comp_lambda;
    std::vector<NodeId> comp_anchor;
    for (NodeId s = 0; s < n; ++s) {
      if (comp[s] != std::uint32_t(-1)) continue;
      // Walk the policy until we hit something known.
      NodeId u = s;
      while (comp[u] == std::uint32_t(-1) && mark[u] != s) {
        mark[u] = s;
        u = g.dst(policy[u]);
      }
      if (comp[u] == std::uint32_t(-1)) {
        // New cycle found, rooted at u.
        Ratio r{0, 0};
        std::vector<EdgeId> cycle;
        NodeId v = u;
        do {
          r.c += cost[policy[v]];
          r.t += time[policy[v]];
          cycle.push_back(policy[v]);
          v = g.dst(policy[v]);
        } while (v != u);
        ELRR_REQUIRE(r.t > 0, "zero-time cycle in policy graph");
        comp_lambda.push_back(r);
        comp_anchor.push_back(u);
        if (!have_best || less(r, best)) {
          best = r;
          best_cycle = cycle;
          have_best = true;
        }
        // Label the cycle itself with the fresh component.
        v = u;
        do {
          comp[v] = num_comp;
          v = g.dst(policy[v]);
        } while (v != u);
        ++num_comp;
      }
      // Label the tail s -> ... -> (first labelled node).
      NodeId v = s;
      while (comp[v] == std::uint32_t(-1)) {
        NodeId w = v;
        // find the first labelled node from v
        while (comp[w] == std::uint32_t(-1)) w = g.dst(policy[w]);
        const std::uint32_t c = comp[w];
        NodeId x = v;
        while (comp[x] == std::uint32_t(-1)) {
          comp[x] = c;
          x = g.dst(policy[x]);
        }
        break;
      }
    }
    // Biases: anchor = 0 on each component's cycle, then fixpoint over
    // the functional graph (each node's bias depends only on its
    // successor; iterate in reverse-BFS order from the anchors).
    for (std::uint32_t c = 0; c < num_comp; ++c) {
      lambda[comp_anchor[c]] = comp_lambda[c];
    }
    for (NodeId u = 0; u < n; ++u) lambda[u] = comp_lambda[comp[u]];
    // Compute biases by chasing policy chains with memoization.
    std::vector<std::uint8_t> done(n, 0);
    for (std::uint32_t c = 0; c < num_comp; ++c) {
      // Fix the anchor, then walk its cycle backward implicitly by
      // walking forward and accumulating.
      const NodeId a = comp_anchor[c];
      bias[a] = 0.0;
      done[a] = 1;
      const double lc = static_cast<double>(comp_lambda[c].c) /
                        static_cast<double>(comp_lambda[c].t);
      // Walk the cycle once, assigning biases backward from the anchor:
      // collect the cycle nodes, then propagate in reverse.
      std::vector<NodeId> cyc;
      NodeId v = a;
      do {
        cyc.push_back(v);
        v = g.dst(policy[v]);
      } while (v != a);
      for (std::size_t i = cyc.size(); i > 1; --i) {
        const NodeId u = cyc[i - 1];
        const EdgeId e = policy[u];
        bias[u] = static_cast<double>(cost[e]) -
                  lc * static_cast<double>(time[e]) + bias[g.dst(e)];
        done[u] = 1;
      }
    }
    for (NodeId s = 0; s < n; ++s) {
      if (done[s]) continue;
      // Collect the chain until a done node, then unwind.
      std::vector<NodeId> chain;
      NodeId v = s;
      while (!done[v]) {
        chain.push_back(v);
        v = g.dst(policy[v]);
      }
      for (std::size_t i = chain.size(); i > 0; --i) {
        const NodeId u = chain[i - 1];
        const EdgeId e = policy[u];
        const Ratio& lr = lambda[u];
        const double lc =
            static_cast<double>(lr.c) / static_cast<double>(lr.t);
        bias[u] = static_cast<double>(cost[e]) -
                  lc * static_cast<double>(time[e]) + bias[g.dst(e)];
        done[u] = 1;
      }
    }

    // --- policy improvement ----------------------------------------
    bool changed = false;
    for (NodeId u = 0; u < n; ++u) {
      for (EdgeId e : g.out_edges(u)) {
        const NodeId v = g.dst(e);
        if (less(lambda[v], lambda[u])) {
          policy[u] = e;
          changed = true;
        } else if (!less(lambda[u], lambda[v])) {
          const double lc = static_cast<double>(lambda[u].c) /
                            static_cast<double>(lambda[u].t);
          const double candidate = static_cast<double>(cost[e]) -
                                   lc * static_cast<double>(time[e]) +
                                   bias[v];
          if (candidate < bias[u] - kEps) {
            policy[u] = e;
            bias[u] = candidate;
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  out.ratio = best;
  out.cycle = best_cycle;
  return out;
}

}  // namespace

HowardResult howard_min_cycle_ratio(const Digraph& g,
                                    const std::vector<std::int64_t>& cost,
                                    const std::vector<std::int64_t>& time) {
  ELRR_REQUIRE(cost.size() == g.num_edges() && time.size() == g.num_edges(),
               "cost/time vector size mismatch");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ELRR_REQUIRE(time[e] >= 0, "negative time on edge ", e);
  }
  ELRR_REQUIRE(!has_nonpositive_cycle(g, time),
               "graph has a zero-time cycle");

  const SccResult sccs = strongly_connected_components(g);
  bool found = false;
  HowardResult result;
  Ratio best{0, 1};
  for (std::uint32_t c = 0; c < sccs.num_components; ++c) {
    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (sccs.component[n] == c) nodes.push_back(n);
    }
    const InducedSubgraph sub = induced_subgraph(g, nodes);
    if (sub.graph.num_edges() == 0) continue;  // no cycle here
    std::vector<std::int64_t> sub_cost, sub_time;
    for (EdgeId e = 0; e < sub.graph.num_edges(); ++e) {
      sub_cost.push_back(cost[sub.edge_to_parent[e]]);
      sub_time.push_back(time[sub.edge_to_parent[e]]);
    }
    const SccOutcome outcome = howard_scc(sub.graph, sub_cost, sub_time);
    result.iterations += outcome.iterations;
    const Ratio r = outcome.ratio;
    if (!found || less(r, best)) {
      best = r;
      found = true;
      result.critical_cycle.clear();
      for (EdgeId e : outcome.cycle) {
        result.critical_cycle.push_back(sub.edge_to_parent[e]);
      }
    }
  }
  ELRR_REQUIRE(found, "graph has no directed cycle");
  result.cycle_cost = best.c;
  result.cycle_time = best.t;
  result.ratio = static_cast<double>(best.c) / static_cast<double>(best.t);
  return result;
}

}  // namespace elrr::graph
