#pragma once

/// \file karp.hpp
/// Karp's O(VE) minimum mean cycle (exact, integer arithmetic) -- the
/// unit-time special case of the minimum cycle ratio, used as a third
/// independent oracle next to Lawler's parametric search and Howard's
/// policy iteration (an RRG whose every edge carries exactly one EB has
/// late-evaluation throughput min(1, MMC) with costs = tokens).
///
/// lambda* = min over cycles C of (sum cost(e)) / |C|
///         = min_v max_k (D_n(v) - D_k(v)) / (n - k),
/// where D_k(v) is the minimum cost of a k-edge walk from a source.
/// Handles non-strongly-connected graphs per SCC; requires a cycle.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace elrr::graph {

struct KarpResult {
  double mean = 0.0;
  std::vector<EdgeId> critical_cycle;
  std::int64_t cycle_cost = 0;
  std::int64_t cycle_length = 0;
};

KarpResult karp_min_mean_cycle(const Digraph& g,
                               const std::vector<std::int64_t>& cost);

}  // namespace elrr::graph
