#include "graph/scc.hpp"

#include <algorithm>

namespace elrr::graph {

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;

  // Explicit DFS frame: node + position within its out-edge list.
  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const NodeId u = frame.node;
      const auto& out = g.out_edges(u);
      if (frame.edge_pos < out.size()) {
        const NodeId v = g.dst(out[frame.edge_pos++]);
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          // u is the root of an SCC; pop it off the Tarjan stack.
          while (true) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.num_components;
            if (w == u) break;
          }
          ++result.num_components;
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          const NodeId parent = dfs.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  return result;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.num_nodes() == 0) return false;
  return strongly_connected_components(g).num_components == 1;
}

std::vector<NodeId> largest_scc_nodes(const Digraph& g) {
  const SccResult scc = strongly_connected_components(g);
  std::vector<std::size_t> sizes(scc.num_components, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++sizes[scc.component[v]];

  std::uint32_t best = 0;
  for (std::uint32_t c = 1; c < scc.num_components; ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  std::vector<NodeId> nodes;
  nodes.reserve(sizes.empty() ? 0 : sizes[best]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (scc.component[v] == best) nodes.push_back(v);
  }
  return nodes;
}

InducedSubgraph induced_subgraph(const Digraph& g,
                                 const std::vector<NodeId>& nodes) {
  InducedSubgraph sub;
  std::vector<NodeId> parent_to_sub(g.num_nodes(), kNoNode);
  sub.graph.add_nodes(nodes.size());
  sub.node_to_parent = nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ELRR_REQUIRE(nodes[i] < g.num_nodes(), "node out of range");
    ELRR_REQUIRE(parent_to_sub[nodes[i]] == kNoNode,
                 "duplicate node in subset");
    parent_to_sub[nodes[i]] = static_cast<NodeId>(i);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId s = parent_to_sub[g.src(e)];
    const NodeId d = parent_to_sub[g.dst(e)];
    if (s != kNoNode && d != kNoNode) {
      sub.graph.add_edge(s, d);
      sub.edge_to_parent.push_back(e);
    }
  }
  return sub;
}

}  // namespace elrr::graph
