#pragma once

/// \file cycle_ratio.hpp
/// Minimum cycle ratio: min over directed cycles C of
///   sum_{e in C} cost(e) / sum_{e in C} time(e),   time >= 0.
///
/// For a strongly connected marked graph (no early evaluation) with
/// tokens R0' as costs and buffer counts R' as times, the steady-state
/// throughput equals min(1, MCR) — giving an exact, solver-independent
/// oracle for the LP throughput bound and for the simulators.
///
/// Implemented with Lawler's parametric search (binary search on the ratio
/// with Bellman-Ford negative-cycle detection), followed by an exact
/// rational snap when costs and times are integers.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace elrr::graph {

struct CycleRatioResult {
  double ratio = 0.0;
  std::vector<EdgeId> critical_cycle;  ///< a cycle achieving the ratio
  std::int64_t cycle_cost = 0;         ///< exact integer sums on that cycle
  std::int64_t cycle_time = 0;
};

/// Exact minimum cycle ratio for integer costs/times.
/// Requirements: the graph has at least one cycle; `time` is non-negative
/// and every directed cycle has positive total time (no zero-time cycles).
/// Both are validated (zero-time-cycle detection runs first).
CycleRatioResult min_cycle_ratio(const Digraph& g,
                                 const std::vector<std::int64_t>& cost,
                                 const std::vector<std::int64_t>& time);

}  // namespace elrr::graph
