#include "graph/karp.hpp"

#include <algorithm>
#include <limits>

#include "graph/scc.hpp"
#include "support/error.hpp"

namespace elrr::graph {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

struct SccOutcome {
  bool has_cycle = false;
  std::int64_t cost = 0;
  std::int64_t length = 1;
  std::vector<EdgeId> cycle;
};

SccOutcome karp_scc(const Digraph& g, const std::vector<std::int64_t>& cost) {
  const std::size_t n = g.num_nodes();
  SccOutcome out;
  if (g.num_edges() == 0) return out;
  out.has_cycle = true;

  // D[k][v]: min cost of a k-edge walk source -> v; parent edge per cell.
  std::vector<std::vector<std::int64_t>> d(
      n + 1, std::vector<std::int64_t>(n, kInf));
  std::vector<std::vector<EdgeId>> parent(
      n + 1, std::vector<EdgeId>(n, kNoEdge));
  d[0][0] = 0;  // any node of the SCC works as the source
  for (std::size_t k = 1; k <= n; ++k) {
    for (NodeId u = 0; u < n; ++u) {
      if (d[k - 1][u] >= kInf) continue;
      for (EdgeId e : g.out_edges(u)) {
        const NodeId v = g.dst(e);
        const std::int64_t w = d[k - 1][u] + cost[e];
        if (w < d[k][v]) {
          d[k][v] = w;
          parent[k][v] = e;
        }
      }
    }
  }

  // lambda = min_v max_k (D_n(v) - D_k(v)) / (n - k), exact rational.
  NodeId best_v = kNoNode;
  std::int64_t best_num = 0, best_den = 1;
  for (NodeId v = 0; v < n; ++v) {
    if (d[n][v] >= kInf) continue;
    std::int64_t num = 0, den = 1;
    bool first = true;
    for (std::size_t k = 0; k < n; ++k) {
      if (d[k][v] >= kInf) continue;
      const std::int64_t nk = d[n][v] - d[k][v];
      const std::int64_t dk = static_cast<std::int64_t>(n - k);
      if (first || nk * den > num * dk) {  // max over k
        num = nk;
        den = dk;
        first = false;
      }
    }
    ELRR_ASSERT(!first, "D_n finite implies some D_k finite");
    if (best_v == kNoNode || num * best_den < best_num * den) {  // min over v
      best_v = v;
      best_num = num;
      best_den = den;
    }
  }
  ELRR_ASSERT(best_v != kNoNode, "SCC with edges must close a walk");

  // Extract the critical cycle: the n-edge walk to best_v contains a
  // repeated node; the cycle between the repeats has mean <= lambda*,
  // hence exactly lambda*.
  std::vector<EdgeId> walk(n);
  {
    NodeId v = best_v;
    for (std::size_t k = n; k > 0; --k) {
      const EdgeId e = parent[k][v];
      ELRR_ASSERT(e != kNoEdge, "broken parent chain");
      walk[k - 1] = e;
      v = g.src(e);
    }
  }
  std::vector<std::int64_t> seen_at(n, -1);
  NodeId v = g.src(walk[0]);
  seen_at[v] = 0;
  std::size_t cyc_from = 0, cyc_to = 0;
  for (std::size_t k = 0; k < n; ++k) {
    v = g.dst(walk[k]);
    if (seen_at[v] >= 0) {
      cyc_from = static_cast<std::size_t>(seen_at[v]);
      cyc_to = k + 1;
      break;
    }
    seen_at[v] = static_cast<std::int64_t>(k + 1);
  }
  ELRR_ASSERT(cyc_to > cyc_from, "n-edge walk must repeat a node");
  out.cycle.assign(walk.begin() + static_cast<std::ptrdiff_t>(cyc_from),
                   walk.begin() + static_cast<std::ptrdiff_t>(cyc_to));
  out.cost = 0;
  for (EdgeId e : out.cycle) out.cost += cost[e];
  out.length = static_cast<std::int64_t>(out.cycle.size());
  return out;
}

}  // namespace

KarpResult karp_min_mean_cycle(const Digraph& g,
                               const std::vector<std::int64_t>& cost) {
  ELRR_REQUIRE(cost.size() == g.num_edges(), "cost vector size mismatch");
  const SccResult sccs = strongly_connected_components(g);
  KarpResult result;
  bool found = false;
  for (std::uint32_t c = 0; c < sccs.num_components; ++c) {
    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (sccs.component[n] == c) nodes.push_back(n);
    }
    const InducedSubgraph sub = induced_subgraph(g, nodes);
    if (sub.graph.num_edges() == 0) continue;
    std::vector<std::int64_t> sub_cost;
    for (EdgeId e = 0; e < sub.graph.num_edges(); ++e) {
      sub_cost.push_back(cost[sub.edge_to_parent[e]]);
    }
    const SccOutcome outcome = karp_scc(sub.graph, sub_cost);
    if (!outcome.has_cycle) continue;
    if (!found ||
        outcome.cost * result.cycle_length < result.cycle_cost * outcome.length) {
      found = true;
      result.cycle_cost = outcome.cost;
      result.cycle_length = outcome.length;
      result.critical_cycle.clear();
      for (EdgeId e : outcome.cycle) {
        result.critical_cycle.push_back(sub.edge_to_parent[e]);
      }
    }
  }
  ELRR_REQUIRE(found, "graph has no directed cycle");
  result.mean = static_cast<double>(result.cycle_cost) /
                static_cast<double>(result.cycle_length);
  return result;
}

}  // namespace elrr::graph
