#include "retime/leiserson_saxe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/bellman_ford.hpp"
#include "graph/topo.hpp"
#include "support/error.hpp"

namespace elrr::retime {

namespace {

constexpr std::int64_t kInfW = std::numeric_limits<std::int64_t>::max() / 4;

struct WdMatrices {
  std::size_t n = 0;
  std::vector<std::int64_t> w;  // min path registers (kInfW = unreachable)
  std::vector<double> d;        // max delay among min-register paths

  std::int64_t& W(std::size_t u, std::size_t v) { return w[u * n + v]; }
  double& D(std::size_t u, std::size_t v) { return d[u * n + v]; }
  std::int64_t W(std::size_t u, std::size_t v) const { return w[u * n + v]; }
  double D(std::size_t u, std::size_t v) const { return d[u * n + v]; }
};

void check_preconditions(const Rrg& rrg) {
  ELRR_REQUIRE(rrg.num_nodes() > 0, "empty RRG");
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    ELRR_REQUIRE(rrg.tokens(e) >= 0,
                 "classical retiming requires non-negative tokens (edge ", e,
                 " has ", rrg.tokens(e), ")");
  }
}

/// Lexicographic (min registers, then max delay) all-pairs paths.
WdMatrices compute_wd(const Rrg& rrg) {
  const std::size_t n = rrg.num_nodes();
  WdMatrices wd;
  wd.n = n;
  wd.w.assign(n * n, kInfW);
  wd.d.assign(n * n, -1.0);

  // Trivial paths: a node alone (w = 0, d = beta(v)). This also encodes
  // the "period >= max node delay" constraint naturally.
  for (std::size_t v = 0; v < n; ++v) {
    wd.W(v, v) = 0;
    wd.D(v, v) = rrg.delay(static_cast<NodeId>(v));
  }
  // Single edges: d covers both endpoints.
  const Digraph& g = rrg.graph();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const std::size_t u = g.src(e);
    const std::size_t v = g.dst(e);
    if (u == v) continue;  // self-loop paths add nothing beyond trivial
    const std::int64_t w = rrg.tokens(e);
    const double d = rrg.delay(static_cast<NodeId>(u)) +
                     rrg.delay(static_cast<NodeId>(v));
    if (w < wd.W(u, v) || (w == wd.W(u, v) && d > wd.D(u, v))) {
      wd.W(u, v) = w;
      wd.D(u, v) = d;
    }
  }
  // Floyd-Warshall with (w, -d) lexicographic minimization; the midpoint
  // node's delay is double counted when concatenating.
  for (std::size_t k = 0; k < n; ++k) {
    const double beta_k = rrg.delay(static_cast<NodeId>(k));
    for (std::size_t u = 0; u < n; ++u) {
      if (wd.W(u, k) >= kInfW) continue;
      for (std::size_t v = 0; v < n; ++v) {
        if (wd.W(k, v) >= kInfW) continue;
        const std::int64_t w = wd.W(u, k) + wd.W(k, v);
        const double d = wd.D(u, k) + wd.D(k, v) - beta_k;
        if (w < wd.W(u, v) || (w == wd.W(u, v) && d > wd.D(u, v))) {
          wd.W(u, v) = w;
          wd.D(u, v) = d;
        }
      }
    }
  }
  return wd;
}

/// Bellman-Ford feasibility of the L&S constraint system for period P.
std::optional<std::vector<int>> ls_feasible(const Rrg& rrg,
                                            const WdMatrices& wd, double period) {
  const std::size_t n = rrg.num_nodes();
  // Constraint graph: edge (u -> v) weight c encodes r(u) - r(v) <= c,
  // i.e. in difference-constraint form x(v')... we use the convention of
  // graph::solve_difference_constraints: x(dst) - x(src) <= w. Writing
  // r(u) - r(v) <= c as edge src=v, dst=u with weight c.
  Digraph cg(n);
  std::vector<std::int64_t> weights;
  const Digraph& g = rrg.graph();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    // r(u) - r(v) <= tokens(e)
    cg.add_edge(g.dst(e), g.src(e));
    weights.push_back(rrg.tokens(e));
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (wd.W(u, v) >= kInfW) continue;
      if (wd.D(u, v) > period) {
        // r(u) - r(v) <= W(u, v) - 1
        cg.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(u));
        weights.push_back(wd.W(u, v) - 1);
      }
    }
  }
  const auto sol = graph::solve_difference_constraints(cg, weights);
  if (!sol.feasible) return std::nullopt;
  std::vector<int> r(n);
  for (std::size_t v = 0; v < n; ++v) {
    r[v] = static_cast<int>(sol.potential[v]);
  }
  return r;
}

}  // namespace

double retimed_cycle_time(const Rrg& rrg, const std::vector<int>& r) {
  const RrConfig config = apply_retiming(rrg, r);
  std::string why;
  ELRR_REQUIRE(validate_config(rrg, config, &why), "invalid retiming: ", why);
  return cycle_time(apply_config(rrg, config)).tau;
}

RetimingResult min_period_retiming(const Rrg& rrg) {
  check_preconditions(rrg);
  const WdMatrices wd = compute_wd(rrg);

  // Candidate periods: the distinct D values (the optimum is one of them).
  std::vector<double> candidates;
  candidates.reserve(wd.d.size());
  for (std::size_t i = 0; i < wd.d.size(); ++i) {
    if (wd.w[i] < kInfW) candidates.push_back(wd.d[i]);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  ELRR_ASSERT(!candidates.empty(), "no candidate periods");

  // Binary search for the smallest feasible candidate.
  std::size_t lo = 0, hi = candidates.size() - 1;
  ELRR_REQUIRE(ls_feasible(rrg, wd, candidates[hi]).has_value(),
               "retiming infeasible even at the largest candidate period -- "
               "is the RRG live?");
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (ls_feasible(rrg, wd, candidates[mid]).has_value()) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  RetimingResult result;
  result.period = candidates[lo];
  result.r = *ls_feasible(rrg, wd, candidates[lo]);
  return result;
}

bool feasible_period(const Rrg& rrg, double period, std::vector<int>* r_out) {
  check_preconditions(rrg);
  const std::size_t n = rrg.num_nodes();
  const Digraph& g = rrg.graph();

  // FEAS: iteratively increment r(v) for nodes whose arrival exceeds P.
  std::vector<int> r(n, 0);
  for (std::size_t round = 0; round + 1 < n || round == 0; ++round) {
    // Arrival times in the retimed graph.
    const RrConfig config = apply_retiming(rrg, r);
    for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
      if (config.tokens[e] < 0) return false;  // left the classical domain
    }
    const Rrg retimed = apply_config(rrg, config);
    const CycleTimeResult ct = cycle_time(retimed);
    if (!ct.valid) return false;
    if (ct.tau <= period + 1e-12) {
      if (r_out != nullptr) *r_out = r;
      return true;
    }
    // Increment the lagging nodes.
    std::vector<double> delays;
    delays.reserve(n);
    for (NodeId v = 0; v < n; ++v) delays.push_back(rrg.delay(v));
    const auto arrivals = graph::longest_path(
        g, delays, [&](EdgeId e) { return config.tokens[e] == 0; });
    ELRR_ASSERT(arrivals.is_dag, "retimed graph has a register-free cycle");
    for (std::size_t v = 0; v < n; ++v) {
      if (arrivals.arrival[v] > period + 1e-12) ++r[v];
    }
  }
  // One final check after |V| - 1 rounds.
  const RrConfig config = apply_retiming(rrg, r);
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (config.tokens[e] < 0) return false;
  }
  const CycleTimeResult ct = cycle_time(apply_config(rrg, config));
  if (ct.valid && ct.tau <= period + 1e-12) {
    if (r_out != nullptr) *r_out = r;
    return true;
  }
  return false;
}

}  // namespace elrr::retime
