#include "retime/min_area.hpp"

#include <cmath>

#include "graph/scc.hpp"
#include "support/error.hpp"

namespace elrr::retime {

MinAreaResult min_area_retiming(const Rrg& rrg, double period,
                                const lp::MilpOptions& options) {
  rrg.validate();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    ELRR_REQUIRE(rrg.tokens(e) >= 0,
                 "min-area retiming requires non-negative tokens (edge ", e,
                 " has ", rrg.tokens(e), ")");
  }

  const Digraph& g = rrg.graph();
  const double tau_star = std::max(rrg.total_delay(), 1e-9);

  lp::Model m;
  m.set_sense(lp::Sense::kMinimize);

  // Retiming variables. The area objective is
  //   Sum_e (R0(e) + r(v) - r(u)) = const + Sum_n (indeg(n) - outdeg(n)) r(n),
  // so r carries the whole objective. Integer: the big-M timing rows
  // would otherwise admit fractional-r cheats.
  std::vector<int> r_col(rrg.num_nodes());
  double const_area = 0.0;
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    const double coef = static_cast<double>(g.in_degree(n)) -
                        static_cast<double>(g.out_degree(n));
    r_col[n] = m.add_col(-lp::kInf, lp::kInf, coef, true,
                         "r_" + rrg.name(n));
  }
  m.set_col_bounds(r_col[0], 0.0, 0.0);
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const_area += rrg.tokens(e);
  }

  // Non-negative retimed tokens: R0(e) + r(v) - r(u) >= 0.
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const NodeId u = g.src(e);
    const NodeId v = g.dst(e);
    if (u == v) continue;  // self loops are unchanged by retiming
    m.add_row(static_cast<double>(-rrg.tokens(e)), lp::kInf,
              {{r_col[v], 1.0}, {r_col[u], -1.0}},
              "nn_" + std::to_string(e));
  }

  // Timing (Lemma 2.1, arrival form): t(n) in [beta(n), period];
  // t(v) >= t(u) + beta(v) - tau* (R0(e) + r(v) - r(u)).
  std::vector<int> t_col(rrg.num_nodes());
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    if (period < rrg.delay(n)) return {};  // no retiming can help
    t_col[n] =
        m.add_col(rrg.delay(n), period, 0.0, false, "t_" + rrg.name(n));
  }
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const NodeId u = g.src(e);
    const NodeId v = g.dst(e);
    std::vector<lp::ColEntry> entries{{t_col[v], 1.0}, {t_col[u], -1.0}};
    if (u != v) {
      entries.push_back({r_col[v], tau_star});
      entries.push_back({r_col[u], -tau_star});
    }
    m.add_row(rrg.delay(v) - tau_star * rrg.tokens(e), lp::kInf,
              std::move(entries), "path_" + std::to_string(e));
  }

  const lp::MilpResult milp = lp::solve_milp(m, options);
  MinAreaResult result;
  if (!milp.has_solution()) {
    result.exact = milp.status == lp::MilpStatus::kInfeasible;
    return result;
  }
  result.feasible = true;
  result.exact = milp.status == lp::MilpStatus::kOptimal;
  result.r.resize(rrg.num_nodes());
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    result.r[n] = static_cast<int>(
        std::llround(milp.x[static_cast<std::size_t>(r_col[n])]));
  }
  result.config = apply_retiming(rrg, result.r, /*grow_buffers=*/false);
  result.total_buffers = 0;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    ELRR_ASSERT(result.config.tokens[e] >= 0,
                "MILP produced a negative token count");
    result.total_buffers += result.config.buffers[e];
  }
  ELRR_ASSERT(std::llround(milp.objective + const_area) ==
                  result.total_buffers,
              "objective/recount mismatch");
  return result;
}

}  // namespace elrr::retime
