#pragma once

/// \file min_area.hpp
/// Minimum-area retiming under a clock-period constraint -- the second
/// classical retiming objective ("minimize the clock cycle or area",
/// Section 1.1 of the paper; Leiserson & Saxe's OPT2). Minimizes the
/// total number of elastic buffers Sum_e R0'(e) over retimings whose
/// cycle time meets `period`, with all token counts kept non-negative
/// (classical registers; anti-tokens are excluded on purpose -- an
/// elastic design would then need buffers beyond the token count).
///
/// Solved as a small MILP over the existing solver: the area objective
/// Sum_e (R0(e) + r(v) - r(u)) is linear in r, the timing side reuses
/// the compact arrival-time form of Lemma 2.1.

#include "core/rrg.hpp"
#include "lp/milp.hpp"

namespace elrr::retime {

struct MinAreaResult {
  bool feasible = false;
  bool exact = false;          ///< proven optimal
  std::vector<int> r;          ///< witness retiming
  RrConfig config;             ///< R0' = retimed tokens, R' = R0'
  int total_buffers = 0;       ///< Sum_e R0'(e), the area
};

/// Minimum-buffer retiming meeting cycle time `period`. Requires
/// non-negative token counts; infeasible when `period` is below the
/// minimum achievable by retiming.
MinAreaResult min_area_retiming(const Rrg& rrg, double period,
                                const lp::MilpOptions& options = {});

}  // namespace elrr::retime
