#pragma once

/// \file leiserson_saxe.hpp
/// Classical min-period retiming (Leiserson & Saxe, Algorithmica 1991),
/// operating on an RRG whose tokens play the role of registers.
///
/// Used as
///  * the min-delay retiming baseline of the paper (tau_nee often equals
///    it; MIN_CYC(1) must agree with it -- tested), and
///  * an independent combinatorial oracle for the MILP path constraints.
///
/// Two implementations are provided and cross-checked:
///  * OPT: W/D matrices (lexicographic Floyd-Warshall) + binary search
///    over candidate periods + Bellman-Ford feasibility;
///  * FEAS: the iterative clock-period relaxation algorithm.
///
/// Restrictions: token counts must be non-negative (classical registers;
/// anti-tokens are an elastic-only concept) and the graph must have at
/// least one node.

#include <optional>
#include <vector>

#include "core/rrg.hpp"

namespace elrr::retime {

struct RetimingResult {
  double period = 0.0;     ///< optimal clock period
  std::vector<int> r;      ///< a retiming achieving it
};

/// Minimum achievable clock period over all retimings, with a witness
/// retiming vector (OPT-style algorithm).
RetimingResult min_period_retiming(const Rrg& rrg);

/// Is clock period `period` achievable by retiming? If so and `r` is
/// non-null, stores a witness (FEAS algorithm).
bool feasible_period(const Rrg& rrg, double period,
                     std::vector<int>* r = nullptr);

/// The cycle time of the RRG after applying retiming vector `r` with
/// buffers equal to max(tokens', 0) -- the quantity both algorithms bound.
double retimed_cycle_time(const Rrg& rrg, const std::vector<int>& r);

}  // namespace elrr::retime
