#include "flow/circuit_flow.hpp"

#include <algorithm>
#include <cctype>
#include <climits>
#include <cmath>
#include <cstring>

#include "flow/engine.hpp"
#include "heur/heuristic.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"

namespace elrr::flow {

namespace {

/// Heuristic budget scaled to the instance: every probe solves one
/// throughput LP whose cost grows ~quadratically with the edge count,
/// so dense circuits get fewer, cheaper-in-total probes.
HeuristicOptions scaled_heuristic(const Rrg& rrg) {
  HeuristicOptions hopt;
  const std::size_t edges = rrg.num_edges();
  if (edges > 350) {
    hopt.max_lp_evals = 80;
    hopt.max_bubble_rounds = 32;
    hopt.max_polish_rounds = 1;
    hopt.max_edges_per_round = 8;
  } else if (edges > 150) {
    hopt.max_lp_evals = 300;
    hopt.max_bubble_rounds = 64;
    hopt.max_polish_rounds = 3;
    hopt.max_edges_per_round = 16;
  }
  return hopt;
}

}  // namespace

FlowOptions FlowOptions::from_env() {
  constexpr std::uint64_t kNoCap = ~std::uint64_t{0};
  FlowOptions options;
  options.seed = env::u64("ELRR_SEED", 1, 0, kNoCap);
  options.epsilon = env::positive_double("ELRR_EPSILON", 0.05);
  options.milp_timeout_s = env::positive_double("ELRR_MILP_TIMEOUT", 6.0);
  options.sim_cycles = static_cast<std::size_t>(
      env::u64("ELRR_SIM_CYCLES", 20000, 1, kNoCap));
  // 0 = all cores; the cap rejects typos like "10000000" that would try
  // to spawn a thread per simulated cycle.
  options.sim_threads = static_cast<std::size_t>(
      env::u64("ELRR_SIM_THREADS", 1, 0, 4096));
  options.sim_dedup = env::boolean("ELRR_SIM_DEDUP", true);
  // 0 = unbounded; anything else is the LRU byte cap of the scoring
  // fleet's session result cache.
  options.sim_cache_cap = static_cast<std::size_t>(env::u64(
      "ELRR_SIM_CACHE_CAP", sim::kDefaultSimCacheCapBytes, 0, kNoCap));
  options.pipeline = env::boolean("ELRR_PIPELINE", true);
  options.polish = env::boolean("ELRR_POLISH", false);
  options.milp_warm = env::boolean("ELRR_MILP_WARM", true);
  options.use_heuristic = env::boolean("ELRR_HEUR", true);
  options.exact_max_edges = static_cast<int>(
      env::u64("ELRR_EXACT_MAX_EDGES", 150, 0, INT_MAX));
  return options;
}

sim::SimOptions scoring_options(const FlowOptions& options) {
  sim::SimOptions sopt;
  sopt.seed = options.seed * 7919 + 17;
  sopt.measure_cycles = options.sim_cycles;
  sopt.warmup_cycles = std::max<std::size_t>(1000, options.sim_cycles / 10);
  sopt.runs = 2;  // threads are the fleet's, not the per-job option's
  return sopt;
}

CircuitResult run_flow(const std::string& name, const Rrg& rrg,
                       const FlowOptions& options, const FlowHooks& hooks) {
  Stopwatch watch;
  CircuitResult result;
  result.name = name;
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    rrg.is_early(n) ? ++result.n_early : ++result.n_simple;
  }
  result.n_edges = static_cast<int>(rrg.num_edges());

  // xi*: the unoptimized configuration. The generated RRGs have no
  // bubbles, so theta = 1 and xi* = tau.
  result.xi_star = cycle_time(rrg).tau;

  OptOptions opt;
  opt.epsilon = options.epsilon;
  opt.milp.time_limit_s = options.milp_timeout_s;
  opt.polish = options.polish;
  opt.milp_warm = options.milp_warm;

  // Late-evaluation baseline: for all-simple graphs the LP bound is the
  // exact throughput, so xi_nee needs no simulation. The heuristic (when
  // enabled) guards the baseline against MILP budget exhaustion.
  OptOptions late = opt;
  late.treat_all_simple = true;
  if (!options.heuristic_only) {
    const MinEffCycResult nee = min_eff_cyc(rrg, late);
    result.xi_nee = nee.best().xi_lp;
    result.all_exact &= nee.all_exact;
  } else {
    result.xi_nee = cycle_time(rrg).tau;  // refined by the heuristic below
    result.all_exact = false;
  }
  if (options.use_heuristic || options.heuristic_only) {
    const Rrg all_simple = as_all_simple(rrg);
    const HeuristicResult late_heur =
        heur_eff_cyc(all_simple, scaled_heuristic(all_simple));
    result.xi_nee = std::min(result.xi_nee, late_heur.best().xi_lp);
  }

  const sim::SimOptions sopt = scoring_options(options);

  // Early evaluation: the pipelined engine runs the exact walk and
  // streams every emitted candidate into its simulation fleet while the
  // next MILP step solves (flow::Engine; ELRR_PIPELINE=0 degrades to the
  // sequential walk-then-score baseline, results bit-identical). The
  // engine's session cache carries those mid-walk scores over to the
  // candidate reranking below, so frontier points selected for the
  // tables cost nothing to rescore. With FlowHooks::fleet the same
  // candidates score on a *shared* multi-client fleet instead -- the
  // svc::Scheduler shape -- with bit-identical results.
  EngineOptions eopt;
  eopt.opt = opt;
  eopt.sim = sopt;
  eopt.sim_threads = options.sim_threads;
  eopt.sim_dedup = options.sim_dedup;
  eopt.sim_cache_cap = options.sim_cache_cap;
  eopt.overlap = options.pipeline;
  Engine* engine_handle = nullptr;
  eopt.on_candidate = [&](const ParetoPoint&, std::size_t index) {
    if (hooks.on_progress) hooks.on_progress(index + 1);
    if (hooks.cancelled && hooks.cancelled()) engine_handle->request_cancel();
  };
  std::optional<Engine> engine_store;  // Engine is neither copy nor movable
  if (hooks.fleet != nullptr) {
    engine_store.emplace(rrg, eopt, *hooks.fleet);
  } else {
    engine_store.emplace(rrg, eopt);
  }
  Engine& engine = *engine_store;
  engine_handle = &engine;

  MinEffCycResult early;
  if (!options.heuristic_only) {
    const EngineResult eng = engine.run();
    early = eng.walk;
    result.all_exact &= early.all_exact;
    result.candidates_walked = eng.candidates_submitted;
    result.sim_jobs += eng.candidates_submitted;
    result.unique_simulations += eng.unique_simulations;
    result.walk_seconds = eng.walk_seconds;
    result.sim_wait_seconds = eng.sim_wait_seconds;
    result.milp = eng.milp;
    if (eng.cancelled) {
      // Cancellation stops at a step boundary: report the partial
      // frontier the engine already scored (no heuristic merge, no
      // reranking) so the caller gets a consistent -- if truncated --
      // result and the fleet is already quiesced for the next job.
      result.cancelled = true;
      for (const ScoredPoint& scored : eng.scored) {
        CandidateRow row;
        row.tau = scored.point.tau;
        row.theta_lp = scored.point.theta_lp;
        row.theta_sim = scored.sim.theta;
        row.err_percent = relative_percent(scored.point.theta_lp,
                                           scored.sim.theta);
        row.xi_lp = scored.point.xi_lp;
        row.xi_sim = scored.xi_sim;
        row.exact = scored.point.exact;
        result.candidates.push_back(row);
        if (result.xi_sim_min == 0.0 || row.xi_sim < result.xi_sim_min) {
          result.xi_sim_min = row.xi_sim;
        }
      }
      result.xi_lp_min = result.candidates.empty()
                             ? 0.0
                             : result.candidates.front().xi_sim;
      if (result.xi_sim_min > 0.0) {
        result.improve_percent =
            (result.xi_nee - result.xi_sim_min) / result.xi_nee * 100.0;
        result.delta_percent =
            relative_percent(result.xi_lp_min, result.xi_sim_min);
      }
      result.seconds = watch.seconds();
      return result;
    }
  } else {
    // Seed the frontier with the identity; the heuristic fills the rest.
    ParetoPoint identity;
    identity.config = initial_config(rrg);
    const RcEvaluation eval = evaluate_rrg(rrg);
    identity.tau = eval.tau;
    identity.theta_lp = eval.theta_lp;
    identity.xi_lp = eval.xi_lp;
    identity.exact = false;
    early.points.push_back(std::move(identity));
  }
  if (options.use_heuristic || options.heuristic_only) {
    const HeuristicResult heur = heur_eff_cyc(rrg, scaled_heuristic(rrg));
    early.points.insert(early.points.end(), heur.points.begin(),
                        heur.points.end());
    std::sort(early.points.begin(), early.points.end(),
              [](const ParetoPoint& a, const ParetoPoint& b) {
                if (a.tau != b.tau) return a.tau < b.tau;
                return a.theta_lp > b.theta_lp;
              });
    std::vector<ParetoPoint> frontier;
    double best_theta = -1.0;
    for (ParetoPoint& point : early.points) {
      if (point.theta_lp > best_theta + 1e-12) {
        best_theta = point.theta_lp;
        frontier.push_back(std::move(point));
      }
    }
    early.points = std::move(frontier);
    early.best_index = 0;
    for (std::size_t i = 1; i < early.points.size(); ++i) {
      if (early.points[i].xi_lp < early.points[early.best_index].xi_lp) {
        early.best_index = i;
      }
    }
  }

  std::vector<std::size_t> simulate =
      early.k_best(options.max_simulated_points);
  std::sort(simulate.begin(), simulate.end());  // present in tau order

  // Rerank the selected candidates by simulation, through the engine's
  // fleet and session cache: walk candidates were already scored
  // mid-walk (cache hit, no new simulation), heuristic-merged points
  // simulate now over the same worker pool. Per candidate the result is
  // bit-identical to a solo simulate_throughput call (the fleet's
  // determinism contract), so the pipeline is purely a wall-clock change.
  std::vector<ParetoPoint> chosen;
  chosen.reserve(simulate.size());
  for (const std::size_t index : simulate) {
    chosen.push_back(early.points[index]);
  }
  const std::vector<ScoredPoint> sims = engine.score(chosen);
  result.sim_jobs += chosen.size();
  // Heuristic-merged points (and the whole frontier in heuristic-only
  // mode) simulate for the first time here -- walk candidates rescore as
  // cache hits. Count the fresh ones so unique_simulations is truthful.
  for (const ScoredPoint& scored : sims) {
    result.unique_simulations += scored.fresh ? 1 : 0;
  }

  double best_sim_xi = 0.0;
  double lp_best_sim_xi = 0.0;
  for (std::size_t i = 0; i < simulate.size(); ++i) {
    const std::size_t index = simulate[i];
    const ParetoPoint& point = early.points[index];
    const sim::SimReport& sim = sims[i].sim;

    CandidateRow row;
    row.tau = point.tau;
    row.theta_lp = point.theta_lp;
    row.theta_sim = sim.theta;
    row.err_percent = relative_percent(point.theta_lp, sim.theta);
    row.xi_lp = point.xi_lp;
    row.xi_sim = sims[i].xi_sim;
    row.exact = point.exact;
    int buffers = 0, tokens = 0;
    for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
      buffers += point.config.buffers[e];
      tokens += std::max(point.config.tokens[e], 0);
    }
    row.bubbles = buffers - tokens;
    result.candidates.push_back(row);

    if (best_sim_xi == 0.0 || row.xi_sim < best_sim_xi) {
      best_sim_xi = row.xi_sim;
    }
    if (index == early.best_index) lp_best_sim_xi = row.xi_sim;
  }
  ELRR_ASSERT(!result.candidates.empty(), "no candidates simulated");
  if (lp_best_sim_xi == 0.0) lp_best_sim_xi = result.candidates.front().xi_sim;

  result.xi_lp_min = lp_best_sim_xi;
  result.xi_sim_min = best_sim_xi;
  result.improve_percent =
      (result.xi_nee - result.xi_sim_min) / result.xi_nee * 100.0;
  result.delta_percent =
      relative_percent(result.xi_lp_min, result.xi_sim_min);
  result.seconds = watch.seconds();
  return result;
}

CircuitResult run_circuit(const std::string& name, const FlowOptions& options,
                          const FlowHooks& hooks) {
  const bench89::CircuitSpec& spec = bench89::spec_by_name(name);
  const Rrg rrg = bench89::make_table2_rrg(spec, options.seed);
  return run_flow(name, rrg, options, hooks);
}

}  // namespace elrr::flow
