#include "flow/engine.hpp"

#include <optional>
#include <utility>

#include "core/analysis.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/stopwatch.hpp"

namespace elrr::flow {

namespace {

/// Releases every ticket on scope exit -- success or unwind. A
/// simulation failure rethrown by fleet.wait() (or a throwing walk
/// step) must not leave this run's ticket entries behind in a shared
/// fleet: the svc::Scheduler catches job failures and keeps the fleet
/// serving, so a leak here would accumulate forever. Releasing an
/// in-flight ticket is safe -- the queued slices own their context and
/// simply finish into the session cache.
struct TicketGuard {
  sim::SimFleet* fleet;
  std::vector<sim::SimTicket>* tickets;
  ~TicketGuard() {
    for (const sim::SimTicket ticket : *tickets) fleet->release(ticket);
  }
};

}  // namespace

Engine::Engine(const Rrg& rrg, const EngineOptions& options)
    : base_(options.opt.treat_all_simple ? as_all_simple(rrg) : rrg),
      options_(options),
      owned_fleet_(std::make_unique<sim::SimFleet>(
          options.sim_threads, options.sim_dedup, options.sim_cache_cap)),
      fleet_(owned_fleet_.get()) {
  // The rewrite is baked into base_; the walk and apply_config below must
  // both see the rewritten graph, never re-apply the flag.
  options_.opt.treat_all_simple = false;
}

Engine::Engine(const Rrg& rrg, const EngineOptions& options,
               sim::SimFleet& shared_fleet)
    : base_(options.opt.treat_all_simple ? as_all_simple(rrg) : rrg),
      options_(options),
      fleet_(&shared_fleet) {
  options_.opt.treat_all_simple = false;
}

sim::SimTicket Engine::submit_candidate(const ParetoPoint& point) {
  // Owning submission: the configured candidate moves into the fleet,
  // which keeps it alive until its simulation completes -- no borrow to
  // get wrong while the walk races ahead.
  return fleet_->submit_async(apply_config(base_, point.config), options_.sim);
}

EngineResult Engine::run() {
  Stopwatch total;
  cancel_.store(false, std::memory_order_relaxed);
  EngineResult result;
  ParetoWalk walk(base_, options_.opt);

  std::vector<ParetoPoint> emitted;        // walk emissions, in order
  std::vector<sim::SimTicket> tickets;     // aligned with emitted
  const TicketGuard guard{fleet_, &tickets};
  std::vector<bool> folded;                // feedback: already in best_xi
  double best_xi = 0.0;
  // kOn arms the feedback up front; kAuto waits for evidence the
  // instance is budget-dominated (an inexact candidate below) so walks
  // whose MILPs all finish stay bit-exact vs the sequential path.
  bool feedback_armed =
      options_.feedback_pruning == FeedbackPruning::kOn;

  // Feedback pruning: fold every *completed* simulation into the best
  // observed effective cycle time and hand it to the walk as a MILP
  // cutoff. Only meaningful when candidates stream mid-walk (overlap);
  // completed results are free to read (the fleet caches them).
  const auto poll_feedback = [&] {
    if (!feedback_armed) return;
    bool updated = false;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (folded[i] || !fleet_->poll(tickets[i])) continue;
      folded[i] = true;
      const sim::SimReport report = fleet_->wait(tickets[i]);
      if (report.theta <= 0.0) continue;
      const double xi = emitted[i].tau / report.theta;
      if (best_xi == 0.0 || xi < best_xi) {
        best_xi = xi;
        updated = true;
      }
    }
    if (updated) walk.set_xi_hint(best_xi);
  };

  for (;;) {
    if (cancel_.load(std::memory_order_relaxed)) {
      result.cancelled = true;
      break;
    }
    poll_feedback();
    // Injection site at the step boundary -- the same boundary
    // cooperative cancellation uses, so a `walk.step` fault leaves the
    // walk in the identical state a cancel would (tickets released by
    // TicketGuard on unwind, fleet reusable).
    failpoint::trip("walk.step");
    Stopwatch step;
    std::optional<ParetoPoint> point;
    {
      OBS_SPAN("walk.step");
      point = walk.advance();
    }
    result.walk_seconds += step.seconds();
    if (!point.has_value()) break;
    emitted.push_back(*point);
    if (options_.feedback_pruning == FeedbackPruning::kAuto &&
        !point->exact) {
      // A budget was hit: from here on simulated thetas may prune
      // provably dominated MIN_CYC steps (the s382/s400 shape).
      feedback_armed = true;
    }
    if (options_.overlap) {
      // The pipeline: this candidate simulates on the fleet's pool while
      // the next MILP step solves right here.
      tickets.push_back(submit_candidate(*point));
      folded.push_back(false);
    }
    if (options_.on_candidate) {
      options_.on_candidate(*point, emitted.size() - 1);
    }
  }
  if (!options_.overlap) {
    // Sequential baseline: same submissions, issued only after the walk
    // finished -- the wall-clock difference to overlap is the pipeline.
    tickets.reserve(emitted.size());
    for (const ParetoPoint& point : emitted) {
      tickets.push_back(submit_candidate(point));
    }
  }

  result.walk = walk.finish();
  result.pruned_steps = walk.pruned_steps();
  result.milp = walk.milp_stats();
  result.candidates_submitted = emitted.size();
  for (const sim::SimTicket ticket : tickets) {
    result.unique_simulations += ticket.fresh ? 1 : 0;
  }

  // Quiesce: every outstanding ticket -- frontier or dominated --
  // completes before run() returns, so this engine's share of the fleet
  // is idle and the engine reusable (also after cancellation). Reports
  // are kept locally: tickets are released below, so a long-lived shared
  // fleet never accumulates this run's handles.
  Stopwatch wait_watch;
  std::vector<sim::SimReport> reports;
  reports.reserve(tickets.size());
  {
    OBS_SPAN("engine.sim_wait");
    for (const sim::SimTicket ticket : tickets) {
      reports.push_back(fleet_->wait(ticket));
    }
  }
  result.sim_wait_seconds = wait_watch.seconds();

  // Score the frontier: every frontier point was emitted (finish() only
  // filters), so its report exists in `reports`.
  result.scored.reserve(result.walk.points.size());
  for (const ParetoPoint& point : result.walk.points) {
    std::size_t index = emitted.size();
    for (std::size_t i = 0; i < emitted.size(); ++i) {
      if (emitted[i].config == point.config) {
        index = i;
        break;
      }
    }
    ELRR_ASSERT(index < emitted.size(),
                "frontier point was never emitted by the walk");
    ScoredPoint scored;
    scored.point = point;
    scored.sim = reports[index];
    scored.xi_sim = effective_cycle_time(point.tau, scored.sim.theta);
    scored.fresh = tickets[index].fresh;
    result.scored.push_back(std::move(scored));
  }
  result.best_sim_index = 0;
  for (std::size_t i = 1; i < result.scored.size(); ++i) {
    if (result.scored[i].xi_sim < result.scored[result.best_sim_index].xi_sim) {
      result.best_sim_index = i;
    }
  }
  result.seconds = total.seconds();
  return result;
}

std::vector<ScoredPoint> Engine::score(const std::vector<ParetoPoint>& points) {
  std::vector<sim::SimTicket> tickets;
  const TicketGuard guard{fleet_, &tickets};
  tickets.reserve(points.size());
  for (const ParetoPoint& point : points) {
    tickets.push_back(submit_candidate(point));
  }
  std::vector<ScoredPoint> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ScoredPoint scored;
    scored.point = points[i];
    scored.sim = fleet_->wait(tickets[i]);
    scored.xi_sim = effective_cycle_time(points[i].tau, scored.sim.theta);
    scored.fresh = tickets[i].fresh;
    out.push_back(std::move(scored));
  }
  return out;
}

}  // namespace elrr::flow
