#pragma once

/// \file engine.hpp
/// Pipelined flow engine: runs the MIN_EFF_CYC Pareto walk and the
/// simulation scoring of its candidates *concurrently*.
///
/// The sequential MIN_EFF_CYC flow alternates budgeted MILP solves with
/// throughput scoring: optimize the whole frontier, then simulate every
/// candidate. After the SoA kernel and the fleet PRs the simulation side
/// is fast, but it still waits for the last MILP before the first run
/// starts -- on multi-candidate workloads the wall clock is
/// walk + simulation even though the two are independent per candidate.
///
/// flow::Engine overlaps them: the walk runs step-wise (core/opt's
/// resumable ParetoWalk), and every candidate a step emits is streamed
/// into a sim::SimFleet *asynchronously* (owning submissions -- the
/// configured Rrg moves into the fleet, no borrow-until-drain hazard)
/// while the next MILP step solves on the caller's thread. The fleet's
/// session cache (canonical-key dedup, PR 3) persists across walk
/// iterations and across Engine::score calls, so revisited
/// configurations -- a routine artifact of Pareto walks -- are simulated
/// once per engine, ever.
///
/// Determinism: while feedback pruning is unarmed (kOff, or kAuto on a
/// walk whose MILPs all finish -- every candidate exact), the engine's
/// Pareto front and every simulated theta are bit-identical to the
/// sequential path (min_eff_cyc + per-candidate simulate_throughput of
/// the same options) at *any* fleet thread count -- the walk runs
/// unmodified on one thread and the fleet's determinism contract pins
/// the thetas. That holds with MILP warm-starting on or off
/// (opt.milp_warm): the walk's lp::MilpSession is pinned bit-identical
/// to the cold path by the differential suites. `overlap = false`
/// degrades gracefully to walk-then-score (same results; the honest
/// baseline the pipeline benchmarks compare against).
///
/// Feedback pruning (`feedback_pruning`): whenever a candidate's
/// simulation completes mid-walk, its *measured* effective cycle time is
/// fed back into the walk as a MILP cutoff
/// (ParetoWalk::set_xi_hint -> MilpOptions::target_obj/futile_bound):
/// MIN_CYC steps provably unable to beat the best simulated xi are
/// pruned instead of solved to optimality. This trades frontier
/// completeness for time on hard instances -- fronts may lose dominated
/// points. The default, kAuto, arms the feedback only once the walk
/// emits an *inexact* candidate (a MILP budget was hit -- the
/// budget-dominated shape of s382/s400 under tight timeouts): circuits
/// whose MILPs finish stay bit-exact, circuits already past exactness
/// stop burning budget on provably dominated steps. kOn forces the
/// hints from the first completed simulation; kOff never prunes. See
/// the data-driven retiming loop of "Application-aware Retiming of
/// Accelerators" (arXiv:1612.08163) for the measure-then-reoptimize
/// shape this makes first-class.
///
/// Cancellation: request_cancel() (thread-safe, also callable from the
/// on_candidate observer) stops the walk at the next step boundary;
/// run() still quiesces the fleet and returns the partial frontier with
/// `cancelled = true`. The engine and its fleet stay fully reusable.

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/opt.hpp"
#include "core/rrg.hpp"
#include "sim/fleet.hpp"
#include "sim/simulator.hpp"

namespace elrr::flow {

/// When simulated thetas may prune the walk's MILP steps (file comment).
enum class FeedbackPruning {
  kOff,   ///< never: frontiers bit-exact vs the sequential path
  kOn,    ///< always: prune from the first completed simulation on
  kAuto,  ///< only after the walk emits an inexact (budget-hit) candidate
};

struct EngineOptions {
  /// Walk knobs (epsilon, per-MILP budgets, polish, treat_all_simple).
  OptOptions opt;
  /// Per-candidate simulation window (seed, cycles, runs). The
  /// per-job `threads` field is ignored -- the fleet pool below applies.
  sim::SimOptions sim;
  /// Fleet worker-pool size (0 = hardware concurrency). Purely a
  /// wall-clock knob: results are identical for every value.
  std::size_t sim_threads = 1;
  /// Candidate dedup in the fleet's session cache (identical canonical
  /// content + options simulate once). Results identical either way.
  bool sim_dedup = true;
  /// Byte cap of the owned fleet's session result cache (LRU past it;
  /// 0 = unbounded). Ignored when the engine runs on a shared fleet --
  /// the shared fleet's own cap applies. Results identical either way
  /// (eviction only forgets results for dedup, never corrupts them).
  std::size_t sim_cache_cap = sim::kDefaultSimCacheCapBytes;
  /// true = stream candidates into the fleet mid-walk (the pipeline);
  /// false = run the walk to completion first, then score (the
  /// sequential baseline). Results are identical; only wall clock moves.
  bool overlap = true;
  /// Feed completed simulated thetas back into the walk's MILP cutoffs
  /// (prunes dominated MIN_CYC steps; frontier no longer guaranteed
  /// complete once armed). kAuto arms only on budget-dominated walks --
  /// exact walks stay bit-identical to the sequential path.
  FeedbackPruning feedback_pruning = FeedbackPruning::kAuto;
  /// Observer called after each walk step with the emitted candidate and
  /// its index (in emission order). Runs on the engine's thread; may
  /// call request_cancel().
  std::function<void(const ParetoPoint&, std::size_t)> on_candidate;
};

/// One frontier point with its simulation verdict.
struct ScoredPoint {
  ParetoPoint point;
  sim::SimReport sim;
  double xi_sim = 0.0;  ///< tau / theta_sim (effective cycle time)
  /// True when scoring this point created a new fleet simulation; false
  /// when the fleet's session cache already held the result (same
  /// schedule-dependence caveat as EngineResult::unique_simulations).
  bool fresh = false;
};

struct EngineResult {
  /// The walk's result -- identical to min_eff_cyc(rrg, options.opt)
  /// when feedback pruning never armed and the run was not cancelled.
  MinEffCycResult walk;
  /// One entry per walk.points entry (same order): the frontier, scored.
  std::vector<ScoredPoint> scored;
  /// Index into `scored` of the simulation-best (minimal xi_sim) point.
  std::size_t best_sim_index = 0;
  std::size_t candidates_submitted = 0;  ///< walk emissions (pre-dedup)
  /// Fleet jobs this run newly created (fresh tickets). Deterministic on
  /// an owned fleet; on a shared fleet a concurrent job may simulate a
  /// candidate first, lowering this count -- a stat, never a result.
  std::size_t unique_simulations = 0;
  int pruned_steps = 0;   ///< MIN_CYC steps the feedback hint pruned
  /// Counters of the walk's MILP session (warm vs cold solves, simplex
  /// iterations, per-solve seconds) -- the BENCH `milp` section's input.
  lp::SessionStats milp;
  bool cancelled = false;
  double walk_seconds = 0.0;      ///< time inside ParetoWalk::advance
  double sim_wait_seconds = 0.0;  ///< time blocked on the fleet afterwards
  double seconds = 0.0;           ///< wall clock of run()

  const ScoredPoint& best_by_sim() const { return scored[best_sim_index]; }
};

/// Pipelined Pareto-walk + scoring engine over one RRG. Reusable: run(),
/// score() and further run()s share one fleet (and its result cache).
/// Single-user (one thread drives the engine; request_cancel alone may
/// come from anywhere) -- but many engines may run concurrently on one
/// *shared* fleet (the svc::Scheduler shape): the fleet's async API is
/// multi-client, and per-engine results are bit-identical to a solo run
/// whatever the interleaving (the fleet's determinism contract).
class Engine {
 public:
  /// Owned-fleet engine: spawns its own sim::SimFleet per `options`.
  explicit Engine(const Rrg& rrg, const EngineOptions& options = {});
  /// Shared-fleet engine: scores candidates on `shared_fleet`, which
  /// must outlive the engine. `sim_threads`/`sim_dedup`/`sim_cache_cap`
  /// in `options` are ignored (the shared fleet's configuration
  /// applies); all result-affecting knobs (`opt`, `sim`) behave exactly
  /// as in the owned-fleet constructor.
  Engine(const Rrg& rrg, const EngineOptions& options,
         sim::SimFleet& shared_fleet);

  /// Runs the walk, streaming candidates into the fleet (overlap on) or
  /// scoring them afterwards (overlap off), and returns the scored
  /// frontier. The fleet is quiesced before returning.
  EngineResult run();

  /// Scores arbitrary configurations (e.g. a heuristic's Pareto points)
  /// through the engine's fleet and cache: points already simulated by a
  /// previous run()/score() -- canonical content + options equal -- cost
  /// nothing. Returns one ScoredPoint per input, in order.
  std::vector<ScoredPoint> score(const std::vector<ParetoPoint>& points);

  /// Stops a running walk at the next step boundary (thread-safe).
  /// Cleared at the start of each run().
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// The underlying fleet (observability: async_cache_size, pool_size;
  /// reusable after cancellation like after a normal run). The shared
  /// one when the engine was constructed onto it.
  sim::SimFleet& fleet() { return *fleet_; }
  const EngineOptions& options() const { return options_; }

 private:
  sim::SimTicket submit_candidate(const ParetoPoint& point);

  /// Own copy of the input (treat_all_simple already applied): engine
  /// lifetime never depends on the caller's Rrg staying alive, and
  /// candidates are configured from exactly the graph the walk solved.
  const Rrg base_;
  EngineOptions options_;
  std::unique_ptr<sim::SimFleet> owned_fleet_;  ///< null on a shared fleet
  sim::SimFleet* fleet_;  ///< owned_fleet_.get() or the shared fleet
  std::atomic<bool> cancel_{false};
};

}  // namespace elrr::flow
