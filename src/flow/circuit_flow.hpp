#pragma once

/// \file circuit_flow.hpp
/// The full DAC'09 experiment flow for one circuit: generate -> optimize
/// late & early -> simulate the Pareto candidates -> every number the
/// paper's tables report. Library code (moved here from bench/flow.* so
/// the svc::Scheduler and the elrr CLI can run it): the table/figure
/// benches, `elrr batch` jobs and the scheduler all share this one
/// implementation.
///
/// The early-evaluation walk runs through the pipelined flow::Engine
/// (flow/engine.hpp): each Pareto candidate streams into a simulation
/// fleet while the next MILP step solves, and the fleet's session cache
/// dedups revisited configurations across the walk and the heuristic
/// merge. Results are bit-identical to the sequential walk-then-score
/// path for every thread count (ELRR_PIPELINE=0 runs that sequential
/// path for comparison) -- and, via FlowHooks::fleet, to a run on a
/// *shared* multi-client fleet at any job interleaving (the fleet's
/// determinism contract).
///
/// Environment knobs (all optional; FlowOptions::from_env *validates*
/// them -- a malformed, negative or out-of-range value throws
/// InvalidInputError instead of being silently coerced):
///   ELRR_SEED            benchmark seed              (default 1)
///   ELRR_EPSILON         MIN_EFF_CYC epsilon         (default 0.05; paper 0.01)
///   ELRR_MILP_TIMEOUT    seconds per MILP            (default 6; > 0)
///   ELRR_SIM_CYCLES      measured cycles per run     (default 20000; >= 1)
///   ELRR_SIM_THREADS     simulation worker threads   (default 1; 0 = all cores)
///   ELRR_SIM_DEDUP       1 = dedup identical Pareto candidates before
///                        simulating (default 1; results identical either way)
///   ELRR_SIM_CACHE_CAP   byte cap of the fleet's session result cache
///                        (default 268435456 = 256 MiB; 0 = unbounded;
///                        results identical either way)
///   ELRR_PIPELINE        1 = overlap the MILP walk with candidate
///                        simulation (default 1; 0 = sequential, results
///                        identical either way)
///   ELRR_POLISH          1 = MAX_THR polish          (default 0)
///   ELRR_MILP_WARM       1 = warm-start adjacent MILP steps from the
///                        previous optimal basis (default 1; 0 = cold
///                        solves, results identical either way -- purely
///                        a wall-clock knob, like ELRR_PIPELINE)
///   ELRR_HEUR            0 = paper-pure flow         (default 1)
///   ELRR_EXACT_MAX_EDGES exact-MILP edge ceiling     (default 150)
///   ELRR_TABLE2_FULL     1 = all 18 circuits         (default: <= 150 edges)

#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench89/generator.hpp"
#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "lp/session.hpp"
#include "sim/fleet.hpp"
#include "sim/simulator.hpp"

namespace elrr::flow {

struct FlowOptions {
  std::uint64_t seed = 1;
  double epsilon = 0.05;
  double milp_timeout_s = 6.0;
  std::size_t sim_cycles = 20000;
  /// Worker-pool size of the candidate-scoring SimFleet (0 = all cores);
  /// deterministic: thread count never changes the reported theta.
  std::size_t sim_threads = 1;
  /// Candidate dedup in the scoring fleet: identical buffer/retiming
  /// assignments (a routine artifact of walks revisiting configurations)
  /// simulate once, scores fan back out. Bit-identical results either
  /// way; env ELRR_SIM_DEDUP=0 benchmarks the undeduped fleet.
  bool sim_dedup = true;
  /// Byte cap of the scoring fleet's session result cache (LRU past it;
  /// 0 = unbounded). Applies to the fleet this flow creates -- a shared
  /// fleet passed through FlowHooks keeps its own cap. Bit-identical
  /// results either way; env ELRR_SIM_CACHE_CAP.
  std::size_t sim_cache_cap = sim::kDefaultSimCacheCapBytes;
  /// Overlap the MILP Pareto walk with candidate simulation through the
  /// pipelined flow::Engine (each emitted candidate scores on the fleet
  /// while the next MILP solves). Bit-identical results either way; env
  /// ELRR_PIPELINE=0 runs the sequential walk-then-score baseline.
  bool pipeline = true;
  std::size_t max_simulated_points = 8;
  /// Run the MAX_THR polish inside MIN_EFF_CYC (paper-exact, slower);
  /// env ELRR_POLISH=1. bench_table1 enables it by default.
  bool polish = false;
  /// Warm-start adjacent MILP solves of the walks from the previous
  /// step's optimal basis (lp::MilpSession). Bit-identical results
  /// either way (pinned by the differential suites); env
  /// ELRR_MILP_WARM=0 runs every step cold. A wall-clock knob, so it is
  /// deliberately *not* part of the scheduler's cache job key.
  bool milp_warm = true;
  /// Merge the MILP-free heuristic's Pareto points into the candidate
  /// set (both for the early walk and the late baseline). This is our
  /// extension beyond the paper -- it costs milliseconds and rescues
  /// circuits whose MILPs hit their budgets; env ELRR_HEUR=0 restores
  /// the paper-pure flow.
  bool use_heuristic = true;
  /// Skip the exact MILP walk entirely and rely on the heuristic alone
  /// (the scalable mode for circuits past the MILP's reach -- the paper
  /// calls graphs with > 1000 edges "difficult to solve exactly").
  bool heuristic_only = false;
  /// Edge count above which run_circuit switches to heuristic_only
  /// automatically; env ELRR_EXACT_MAX_EDGES (default 150).
  int exact_max_edges = 150;

  static FlowOptions from_env();
};

/// Service hooks for a flow run: everything the svc::Scheduler threads
/// through run_flow so many concurrent jobs share one infrastructure.
/// All fields optional; a default FlowHooks reproduces the standalone
/// flow exactly.
struct FlowHooks {
  /// Score candidates on this multi-client fleet instead of spawning a
  /// per-flow one (must outlive the call). Results are bit-identical to
  /// the owned-fleet run at any worker count and job interleaving.
  sim::SimFleet* fleet = nullptr;
  /// Polled at every walk step (after each emitted candidate); returning
  /// true stops the walk at the next step boundary. The flow returns a
  /// partial result with `cancelled = true`; the fleet stays reusable.
  std::function<bool()> cancelled;
  /// Observer of walk progress: called with the number of candidates
  /// emitted so far (1-based, monotone), on the flow's thread.
  std::function<void(std::size_t)> on_progress;
};

/// One simulated Pareto candidate (a row of Table 1).
struct CandidateRow {
  double tau = 0.0;
  double theta_lp = 0.0;
  double theta_sim = 0.0;
  double err_percent = 0.0;  ///< (theta_lp - theta_sim) / theta_sim * 100
  double xi_lp = 0.0;        ///< tau / theta_lp
  double xi_sim = 0.0;       ///< tau / theta_sim
  int bubbles = 0;           ///< total inserted empty EBs vs the input RRG
  bool exact = true;
};

/// Everything a Table-2 row needs.
struct CircuitResult {
  std::string name;
  int n_simple = 0, n_early = 0, n_edges = 0;
  double xi_star = 0.0;     ///< original effective cycle time (theta = 1)
  double xi_nee = 0.0;      ///< late-evaluation optimum (all nodes simple)
  double xi_lp_min = 0.0;   ///< simulated xi of the xi_lp-best config
  double xi_sim_min = 0.0;  ///< best simulated xi among candidates
  double improve_percent = 0.0;  ///< (xi_nee - xi_sim_min)/xi_nee * 100
  double delta_percent = 0.0;    ///< (xi_lp_min - xi_sim_min)/xi_sim_min * 100
  std::vector<CandidateRow> candidates;  ///< all simulated Pareto points
  bool all_exact = true;
  bool cancelled = false;  ///< FlowHooks::cancelled stopped the walk
  double seconds = 0.0;
  // Structured progress/stats (the scheduler's per-job report).
  std::size_t candidates_walked = 0;   ///< walk emissions (pre-dedup)
  std::size_t sim_jobs = 0;            ///< fleet submissions this flow made
  std::size_t unique_simulations = 0;  ///< fresh fleet jobs (rest were cached)
  double walk_seconds = 0.0;           ///< time inside ParetoWalk::advance
  double sim_wait_seconds = 0.0;       ///< time blocked on the fleet
  lp::SessionStats milp;               ///< the walk's MILP-session stats
};

/// The per-candidate simulation window the flow scores with (seed mix,
/// cycles, warmup, runs). Exposed so svc::Scheduler's score-only and
/// MIN_CYC jobs simulate with the *identical* options -- their fleet
/// submissions then dedup against flow jobs of the same circuit.
sim::SimOptions scoring_options(const FlowOptions& options);

/// Runs the full flow on an RRG (already strongly connected and live).
CircuitResult run_flow(const std::string& name, const Rrg& rrg,
                       const FlowOptions& options,
                       const FlowHooks& hooks = {});

/// Convenience: generate the named Table-2 circuit and run the flow.
CircuitResult run_circuit(const std::string& name, const FlowOptions& options,
                          const FlowHooks& hooks = {});

}  // namespace elrr::flow
