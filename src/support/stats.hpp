#pragma once

/// \file stats.hpp
/// Small statistics helpers for simulation measurements and benchmark
/// reporting (Welford running moments, relative errors).

#include <cstddef>
#include <vector>

namespace elrr {

/// Numerically stable running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;     ///< sample variance (n-1 denominator)
  double stddev() const;
  double stderr_mean() const;  ///< standard error of the mean
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Relative difference (a - b) / b, in percent; the paper's err(%) and
/// Delta(%) metrics. Returns 0 when both are zero.
double relative_percent(double a, double b);

/// Arithmetic mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs);

}  // namespace elrr
