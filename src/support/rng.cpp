#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace elrr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  std::uint64_t state = h;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) {
  // xoshiro256** must not be seeded with all zeros; splitmix64 guarantees a
  // well-mixed nonzero state from any seed.
  std::uint64_t state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

double Rng::uniform01() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_open_closed(double lo, double hi) {
  ELRR_REQUIRE(lo < hi, "empty interval (", lo, ", ", hi, "]");
  // 1 - u is in (0, 1]; scale into (lo, hi].
  return lo + (1.0 - uniform01()) * (hi - lo);
}

double Rng::uniform(double lo, double hi) {
  ELRR_REQUIRE(lo <= hi, "empty interval [", lo, ", ", hi, ")");
  return lo + uniform01() * (hi - lo);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ELRR_REQUIRE(lo <= hi, "empty integer range [", lo, ", ", hi, "]");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::size_t Rng::discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ELRR_REQUIRE(w >= 0.0, "negative weight ", w);
    total += w;
  }
  ELRR_REQUIRE(total > 0.0, "all discrete weights are zero");
  double point = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;  // guard against rounding on the last bucket
}

std::vector<double> Rng::simplex(std::size_t k, double min_coord) {
  ELRR_REQUIRE(k >= 1, "simplex dimension must be positive");
  ELRR_REQUIRE(min_coord * static_cast<double>(k) < 1.0,
               "min_coord ", min_coord, " infeasible for k=", k);
  // Sample exponentials and normalize (uniform Dirichlet), then shift to
  // respect the minimum coordinate.
  std::vector<double> coords(k);
  double total = 0.0;
  for (auto& c : coords) {
    c = -std::log(1.0 - uniform01());
    total += c;
  }
  const double slack = 1.0 - min_coord * static_cast<double>(k);
  for (auto& c : coords) c = min_coord + slack * (c / total);
  return coords;
}

Rng Rng::split() {
  Rng child(0);
  child.s_ = {(*this)(), (*this)(), (*this)(), (*this)()};
  bool all_zero = true;
  for (auto word : child.s_) all_zero &= (word == 0);
  if (all_zero) child.s_[0] = 1;  // keep the engine valid
  return child;
}

}  // namespace elrr
