#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace elrr {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(s.substr(start));
      return fields;
    }
    fields.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) fields.emplace_back(s.substr(start, i - start));
  }
  return fields;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

}  // namespace elrr
