#include "support/args.hpp"

#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (starts_with(token, "--")) {
      std::string name = token.substr(2);
      std::string value;
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        value = argv[++i];
      }
      ELRR_REQUIRE(!name.empty(), "empty flag name in '", token, "'");
      ELRR_REQUIRE(values_.emplace(name, value).second,
                   "duplicate flag --", name);
      consumed_[name] = false;
    } else if (command_.empty()) {
      command_ = token;
    } else {
      positional_.push_back(token);
    }
  }
}

std::optional<std::string> Args::get(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::string Args::get_or(const std::string& name,
                         const std::string& fallback) {
  return get(name).value_or(fallback);
}

std::string Args::require(const std::string& name) {
  const auto value = get(name);
  ELRR_REQUIRE(value.has_value() && !value->empty(), "missing --", name);
  return *value;
}

double Args::get_double(const std::string& name, double fallback) {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  ELRR_REQUIRE(end != nullptr && *end == '\0' && !value->empty(),
               "bad number for --", name, ": '", *value, "'");
  return parsed;
}

int Args::get_int(const std::string& name, int fallback) {
  const double value = get_double(name, static_cast<double>(fallback));
  const int as_int = static_cast<int>(value);
  ELRR_REQUIRE(static_cast<double>(as_int) == value,
               "--", name, " must be an integer");
  return as_int;
}

std::uint64_t Args::get_u64(const std::string& name, std::uint64_t fallback) {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value->c_str(), &end, 10);
  ELRR_REQUIRE(end != nullptr && *end == '\0' && !value->empty(),
               "bad integer for --", name, ": '", *value, "'");
  return parsed;
}

bool Args::get_flag(const std::string& name) {
  const auto value = get(name);
  if (!value.has_value()) return false;
  ELRR_REQUIRE(value->empty() || *value == "true" || *value == "1" ||
                   *value == "false" || *value == "0",
               "--", name, " is a boolean flag");
  return value->empty() || *value == "true" || *value == "1";
}

void Args::finish() const {
  for (const auto& [name, seen] : consumed_) {
    ELRR_REQUIRE(seen, "unknown flag --", name);
  }
}

}  // namespace elrr
