#pragma once

/// \file failpoint.hpp
/// Deterministic fail-point injection for chaos testing.
///
/// A fail point is a named site compiled into production code paths
/// (fleet worker loop, MILP solve, walk step, cache load/store, manifest
/// IO). Disabled -- the default -- a site costs one relaxed atomic load;
/// armed, a site consults its per-site schedule under a mutex and either
/// returns, throws FailPointError (a TransientError), or stalls.
///
/// Schedules come from the ELRR_FAILPOINTS environment variable (or a
/// direct configure() call in tests):
///
///   ELRR_FAILPOINTS="site=mode[,site=mode...]"
///
/// with modes
///   off           site disabled (explicit no-op, useful in sweeps)
///   once          throw on the first hit, pass afterwards
///   after:N       pass N hits, throw on hit N+1, pass afterwards
///   prob:P@seed   throw with probability P per hit, driven by a
///                 splitmix64 stream of `seed ^ hit_index` -- the same
///                 spec reproduces the same hit-by-hit decisions
///                 bit-for-bit regardless of wall clock or platform
///   stall:MS      sleep MS milliseconds on the first hit, then pass
///                 (models a stuck worker without an unbounded hang)
///
/// Site names are validated against the registry below: a typo in
/// ELRR_FAILPOINTS throws InvalidInputError naming the variable, exactly
/// like every other ELRR_* knob. Hit counters are per-site and global to
/// the process; configure() resets them, so each test scenario starts
/// from hit zero.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace elrr::failpoint {

/// Thrown by an armed site in `once` / `after:N` / `prob:` mode. Derives
/// from TransientError: an injected fault is by definition retryable.
class FailPointError : public TransientError {
 public:
  explicit FailPointError(const std::string& what) : TransientError(what) {}
};

/// All compiled-in sites. trip() with a name outside this list throws
/// InternalError (a misspelled site in the source tree would otherwise
/// be silently untestable).
///
///   fleet.worker      sim fleet worker loop, once per dequeued slice
///   fleet.flat        FlatKernel slice execution (degradable: the fleet
///                     re-runs the slice on the reference kernel)
///   walk.step         flow::Engine, before each Pareto walk step
///   milp.solve        lp::solve_milp / lp::MilpSession::solve entry
///   milp.warm         lp::MilpSession warm-start restore (firing models
///                     a corrupt/stale basis snapshot: the session falls
///                     back to a cold solve, results unchanged)
///   svc.manifest      manifest parsing, once per entry line
///   disk_cache.load   persistent cache entry read
///   disk_cache.store  persistent cache entry write, after the temp file
///                     is written but before the atomic rename (models a
///                     crash mid-store: a torn temp file is left behind)
///   proc.spawn        proc-fleet supervisor, before each worker-process
///                     spawn (firing models fork/exec failure; the
///                     supervisor counts it against the slice's bounded
///                     respawn budget)
///   proc.worker       `elrr work` worker process, once per received
///                     slice frame. Firing makes the *worker* exit
///                     without replying -- a simulated crash the
///                     supervisor must contain. Each spawned worker
///                     re-arms from the inherited ELRR_FAILPOINTS with
///                     fresh hit counters, so `once` kills every
///                     respawned worker's first slice (a livelock by
///                     construction); chaos schedules use `after:N` /
///                     `prob:` / `stall:` here.
const std::vector<std::string>& known_sites();

/// Parses a spec string (ELRR_FAILPOINTS grammar above) and installs it,
/// resetting all hit counters. Empty spec disarms everything. Throws
/// InvalidInputError on unknown sites or malformed modes; `env_name` is
/// the knob named in that error ("ELRR_FAILPOINTS" from the CLI path,
/// "configure()" from tests).
void configure(const std::string& spec,
               const char* env_name = "configure()");

/// configure(getenv("ELRR_FAILPOINTS")); absent variable disarms.
void configure_from_env();

/// Disarms every site and resets hit counters.
void reset();

/// Total hits recorded for a site since the last configure()/reset(),
/// armed or not... except entirely-disarmed processes skip counting to
/// keep the fast path free; counters are only maintained while at least
/// one site is armed.
std::uint64_t hits(const std::string& site);

/// Number of times a site actually fired (threw or stalled).
std::uint64_t fired(const std::string& site);

namespace detail {
extern std::atomic<bool> g_armed;
void trip_slow(const char* site);
}  // namespace detail

/// Injection site. Free when nothing is armed: one relaxed load, no
/// branch taken, no counter maintenance (BENCH-neutral by construction).
inline void trip(const char* site) {
  if (detail::g_armed.load(std::memory_order_relaxed)) {
    detail::trip_slow(site);
  }
}

}  // namespace elrr::failpoint
