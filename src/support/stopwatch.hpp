#pragma once

/// \file stopwatch.hpp
/// Wall-clock helpers used for solver budgets and benchmark timing.

#include <chrono>

namespace elrr {

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// A wall-clock budget; `expired()` turns true after `limit_s` seconds.
/// A non-positive limit means "no limit".
class Deadline {
 public:
  explicit Deadline(double limit_s) : limit_s_(limit_s) {}

  bool unlimited() const { return limit_s_ <= 0.0; }
  bool expired() const { return !unlimited() && watch_.seconds() >= limit_s_; }
  double elapsed() const { return watch_.seconds(); }
  double remaining() const {
    return unlimited() ? 1e30 : limit_s_ - watch_.seconds();
  }

 private:
  double limit_s_;
  Stopwatch watch_;
};

}  // namespace elrr
