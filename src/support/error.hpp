#pragma once

/// \file error.hpp
/// Error types and checking macros used across ElasticRR.
///
/// Policy (see DESIGN.md): user-facing API misuse and invalid input data
/// throw elrr::Error; internal invariant violations throw
/// elrr::InternalError. Solver outcomes (infeasible, time limit, ...) are
/// reported through status enums, never through exceptions.

#include <sstream>
#include <stdexcept>
#include <string>

namespace elrr {

/// Base class for all errors raised by ElasticRR.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid input data (malformed netlist, dead cycle, bad probability...).
class InvalidInputError : public Error {
 public:
  explicit InvalidInputError(const std::string& what) : Error(what) {}
};

/// A violated internal invariant; indicates a bug in ElasticRR itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// A failure that is expected to go away on retry (injected fault, lost
/// worker, torn IO). The scheduler retries jobs that fail with a
/// TransientError up to its retry budget; every other Error subtype is
/// permanent and fails the job immediately.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

namespace detail {

template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

}  // namespace detail

}  // namespace elrr

/// Validates a user-facing precondition; throws elrr::InvalidInputError.
#define ELRR_REQUIRE(cond, ...)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::elrr::InvalidInputError(                                     \
          ::elrr::detail::concat("requirement failed: ", __VA_ARGS__,      \
                                 " [", #cond, " at ", __FILE__, ":",       \
                                 __LINE__, "]"));                          \
    }                                                                      \
  } while (false)

/// Checks an internal invariant; throws elrr::InternalError.
#define ELRR_ASSERT(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::elrr::InternalError(                                         \
          ::elrr::detail::concat("internal invariant violated: ",          \
                                 __VA_ARGS__, " [", #cond, " at ",         \
                                 __FILE__, ":", __LINE__, "]"));           \
    }                                                                      \
  } while (false)

/// Invariant check on a simulation hot path: a full ELRR_ASSERT in debug
/// builds, compiled out under NDEBUG. The inlined throw/ostringstream
/// machinery of ELRR_ASSERT measurably slows tight kernels; hot loops use
/// this variant for invariants that the reference implementation (which
/// keeps full checks) and the differential tests already enforce.
#ifdef NDEBUG
#define ELRR_HOT_ASSERT(cond, ...) \
  do {                             \
  } while (false)
#else
#define ELRR_HOT_ASSERT(cond, ...) ELRR_ASSERT(cond, __VA_ARGS__)
#endif
