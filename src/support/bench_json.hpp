#pragma once

/// \file bench_json.hpp
/// Minimal reader for the repo's own BENCH_*.json perf-trajectory files.
///
/// Not a JSON parser: the files are machine-written by bench/perf_smoke
/// with a fixed, flat shape, so a positional key scan is exact for them.
/// Used by perf_smoke (to embed before/after ratios against the
/// committed baseline) and by `elrr bench-diff` (the regression gate in
/// tools/bench_gate.sh).

#include <optional>
#include <string_view>

namespace elrr::bench_json {

/// The first number following `"key":` after the first occurrence of
/// `"section"` in `json`; nullopt when either is absent. Sections in
/// BENCH_sim.json are unique object labels ("small", "fleet", ...), keys
/// are their numeric fields ("cycles_per_sec", "fleet_seconds", ...).
std::optional<double> find_number(std::string_view json,
                                  std::string_view section,
                                  std::string_view key);

}  // namespace elrr::bench_json
