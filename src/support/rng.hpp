#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of ElasticRR (benchmark generation, guard
/// sampling in simulators, Monte-Carlo sweeps) draw from elrr::Rng so that
/// every experiment is reproducible from a single 64-bit seed. The engine
/// is xoshiro256** seeded through splitmix64, both public-domain
/// algorithms by Blackman & Vigna.

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace elrr {

/// splitmix64 step; used for seeding and for hashing strings to seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a string (FNV-1a finalized with splitmix64).
/// Used to derive per-benchmark-circuit seeds from circuit names.
std::uint64_t hash_name(std::string_view name);

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// One xoshiro256** step. Defined inline: the simulation kernels draw
  /// once per early-node firing per lane, and an out-of-line call (plus
  /// the lost constant propagation around it) costs more than the whole
  /// scrambler on those paths.
  result_type operator()() {
    const auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in (lo, hi]; matches the paper's "(0, 20]" convention.
  double uniform_open_closed(double lo, double hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive (requires lo <= hi).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  std::size_t discrete(const std::vector<double>& weights);

  /// Random point on the k-simplex (probabilities summing to one), with
  /// every coordinate at least min_coord. Used for branch probabilities.
  std::vector<double> simplex(std::size_t k, double min_coord = 0.0);

  /// Derives an independent child stream (for per-node RNG streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace elrr
