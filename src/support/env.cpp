#include "support/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "support/error.hpp"

namespace elrr::env {

void fail(const char* name, const char* expected, const char* value) {
  throw InvalidInputError(detail::concat(
      "environment variable ", name, ": expected ", expected, ", got \"",
      value, "\""));
}

namespace {

double parse_double(const char* name, const char* value,
                    const char* expected) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed)) {
    fail(name, expected, value);
  }
  return parsed;
}

}  // namespace

double positive_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const double parsed = parse_double(name, value, "a positive number");
  if (parsed <= 0.0) fail(name, "a positive number", value);
  return parsed;
}

double nonneg_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const double parsed = parse_double(name, value, "a non-negative number");
  if (parsed < 0.0) fail(name, "a non-negative number", value);
  return parsed;
}

std::uint64_t u64(const char* name, std::uint64_t fallback,
                  std::uint64_t min_value, std::uint64_t max_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  // strtoull happily wraps "-5" to 2^64-5; reject signs up front so a
  // negative knob is an error, not a near-infinite unsigned value.
  if (std::strchr(value, '-') != nullptr ||
      std::strchr(value, '+') != nullptr) {
    fail(name, "a non-negative integer", value);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    fail(name, "a non-negative integer", value);
  }
  if (parsed < min_value || parsed > max_value) {
    fail(name, "an integer within range", value);
  }
  return static_cast<std::uint64_t>(parsed);
}

bool boolean(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  if (std::strcmp(value, "0") == 0) return false;
  if (std::strcmp(value, "1") == 0) return true;
  fail(name, "0 or 1", value);
}

std::string str(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return std::string(value);
}

}  // namespace elrr::env
