#include "support/bench_json.hpp"

#include <cstdlib>
#include <string>

namespace elrr::bench_json {

std::optional<double> find_number(std::string_view json,
                                  std::string_view section,
                                  std::string_view key) {
  const std::string quoted_section = "\"" + std::string(section) + "\"";
  const std::size_t at = json.find(quoted_section);
  if (at == std::string_view::npos) return std::nullopt;
  const std::string quoted_key = "\"" + std::string(key) + "\":";
  const std::size_t key_at = json.find(quoted_key, at);
  if (key_at == std::string_view::npos) return std::nullopt;
  // strtod needs a terminated buffer; copy the short numeric tail.
  const std::size_t begin = key_at + quoted_key.size();
  const std::string tail(json.substr(begin, 64));
  char* end = nullptr;
  const double value = std::strtod(tail.c_str(), &end);
  if (end == tail.c_str()) return std::nullopt;
  return value;
}

}  // namespace elrr::bench_json
