#pragma once

/// \file env.hpp
/// Strict environment-knob parsing shared by every ELRR_* consumer.
///
/// Environment knobs are validated, not trusted: a malformed or
/// out-of-range value used to be silently coerced by atof (negative
/// ELRR_SIM_CYCLES wrapped through size_t into a near-eternal run;
/// "10s" parsed as 10; "abc" as 0) -- every parse failure throws
/// InvalidInputError with the variable name and the offending text.
/// FlowOptions::from_env, SchedulerOptions::from_env and the fail-point
/// registry all funnel through these helpers so a typo'd knob fails the
/// same way no matter which subsystem reads it.

#include <cstdint>
#include <string>

namespace elrr::env {

/// Throws InvalidInputError naming the variable and the bad value.
[[noreturn]] void fail(const char* name, const char* expected,
                       const char* value);

/// Finite double > 0 (e.g. timeouts). Absent -> fallback.
double positive_double(const char* name, double fallback);

/// Finite double >= 0; 0 conventionally means "off" (e.g. deadlines).
double nonneg_double(const char* name, double fallback);

/// Unsigned integer within [min_value, max_value]. Signs are rejected so
/// "-5" is an error, not 2^64-5.
std::uint64_t u64(const char* name, std::uint64_t fallback,
                  std::uint64_t min_value, std::uint64_t max_value);

/// Strictly "0" or "1".
bool boolean(const char* name, bool fallback);

/// Raw string value; absent -> fallback (may be empty).
std::string str(const char* name, const std::string& fallback);

}  // namespace elrr::env
