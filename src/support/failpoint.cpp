#include "support/failpoint.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace elrr::failpoint {

namespace {

enum class Mode { kOff, kOnce, kAfter, kProb, kStall };

struct SiteState {
  Mode mode = Mode::kOff;
  std::uint64_t after_n = 0;    // kAfter: pass this many hits first
  double prob = 0.0;            // kProb
  std::uint64_t seed = 0;       // kProb
  std::uint64_t stall_ms = 0;   // kStall
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

/// splitmix64: tiny, well-mixed, and already the idiom for seed
/// derivation elsewhere in the tree. Each hit draws from
/// splitmix64(seed ^ hit_index) so the decision sequence is a pure
/// function of the spec -- independent of timing or interleaving.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d4a77d3f854937ULL;
  return x ^ (x >> 31);
}

[[noreturn]] void spec_fail(const char* env_name, const std::string& why,
                            const std::string& text) {
  throw InvalidInputError(elrr::detail::concat(
      "environment variable ", env_name, ": ", why, ", got \"", text,
      "\""));
}

std::uint64_t parse_u64_field(const char* env_name, const std::string& text,
                              const char* what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    spec_fail(env_name, std::string("expected ") + what, text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE) spec_fail(env_name, std::string("expected ") + what, text);
  return static_cast<std::uint64_t>(parsed);
}

SiteState parse_mode(const char* env_name, const std::string& mode) {
  SiteState state;
  if (mode == "off") {
    state.mode = Mode::kOff;
  } else if (mode == "once") {
    state.mode = Mode::kOnce;
  } else if (mode.rfind("after:", 0) == 0) {
    state.mode = Mode::kAfter;
    state.after_n = parse_u64_field(env_name, mode.substr(6),
                                    "after:<non-negative integer>");
  } else if (mode.rfind("stall:", 0) == 0) {
    state.mode = Mode::kStall;
    state.stall_ms = parse_u64_field(env_name, mode.substr(6),
                                     "stall:<milliseconds>");
    // An injected stall is a test of *bounded* stuck-worker handling;
    // cap it so a typo cannot wedge a chaos run past its watchdog.
    if (state.stall_ms > 60000) {
      spec_fail(env_name, "stall exceeds the 60000 ms cap", mode);
    }
  } else if (mode.rfind("prob:", 0) == 0) {
    state.mode = Mode::kProb;
    const std::string body = mode.substr(5);
    const std::size_t at = body.find('@');
    if (at == std::string::npos) {
      spec_fail(env_name, "expected prob:<P>@<seed>", mode);
    }
    const std::string prob_text = body.substr(0, at);
    errno = 0;
    char* end = nullptr;
    state.prob = std::strtod(prob_text.c_str(), &end);
    if (prob_text.empty() || end != prob_text.c_str() + prob_text.size() ||
        errno == ERANGE || state.prob < 0.0 || state.prob > 1.0) {
      spec_fail(env_name, "expected a probability in [0,1]", prob_text);
    }
    state.seed = parse_u64_field(env_name, body.substr(at + 1),
                                 "prob:<P>@<non-negative integer seed>");
  } else {
    spec_fail(env_name,
              "expected off|once|after:N|prob:P@seed|stall:MS", mode);
  }
  return state;
}

bool should_fire(SiteState& state) {
  const std::uint64_t hit = state.hits++;  // zero-based hit index
  switch (state.mode) {
    case Mode::kOff:
      return false;
    case Mode::kOnce:
      return hit == 0;
    case Mode::kAfter:
      return hit == state.after_n;
    case Mode::kStall:
      return hit == 0;
    case Mode::kProb: {
      const std::uint64_t draw = splitmix64(state.seed ^ hit);
      // Top 53 bits -> uniform double in [0,1).
      const double u =
          static_cast<double>(draw >> 11) * 0x1.0p-53;
      return u < state.prob;
    }
  }
  return false;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void trip_slow(const char* site) {
  std::uint64_t stall_ms = 0;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) {
      throw InternalError(elrr::detail::concat(
          "fail point \"", site, "\" tripped but is not registered"));
    }
    SiteState& state = it->second;
    if (!should_fire(state)) return;
    ++state.fired;
    if (state.mode == Mode::kStall) {
      stall_ms = state.stall_ms;
    } else {
      throw FailPointError(elrr::detail::concat(
          "injected fault at fail point \"", site, "\" (hit ",
          state.hits, ")"));
    }
  }
  // Sleep outside the registry lock so a stalled worker does not block
  // other sites (that would serialize the whole process, not one worker).
  std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
}

}  // namespace detail

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "fleet.worker",  "fleet.flat",       "walk.step",       "milp.solve",
      "milp.warm",     "svc.manifest",     "disk_cache.load",
      "disk_cache.store", "proc.spawn",    "proc.worker",
  };
  return sites;
}

void configure(const std::string& spec, const char* env_name) {
  Registry& reg = registry();
  // Every known site gets an entry (default kOff): an armed process must
  // be able to trip *any* compiled-in site, not just the configured ones.
  std::unordered_map<std::string, SiteState> parsed;
  for (const std::string& site : known_sites()) parsed.emplace(site, SiteState{});
  std::unordered_map<std::string, bool> seen;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      spec_fail(env_name, "empty item in fail-point list", spec);
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      spec_fail(env_name, "expected site=mode", item);
    }
    const std::string site = item.substr(0, eq);
    bool known = false;
    for (const std::string& candidate : known_sites()) {
      if (candidate == site) {
        known = true;
        break;
      }
    }
    if (!known) {
      spec_fail(env_name, "unknown fail-point site", site);
    }
    if (!seen.emplace(site, true).second) {
      spec_fail(env_name, "duplicate fail-point site", site);
    }
    parsed[site] = parse_mode(env_name, item.substr(eq + 1));
  }

  bool any_armed = false;
  for (const auto& [site, state] : parsed) {
    (void)site;
    if (state.mode != Mode::kOff) any_armed = true;
  }
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.sites = std::move(parsed);
  }
  detail::g_armed.store(any_armed, std::memory_order_relaxed);
}

void configure_from_env() {
  const char* value = std::getenv("ELRR_FAILPOINTS");
  configure(value == nullptr ? "" : value, "ELRR_FAILPOINTS");
}

void reset() { configure(""); }

std::uint64_t hits(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fired(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fired;
}

}  // namespace elrr::failpoint
