#pragma once

/// \file bytes.hpp
/// Byte-serialization helpers for canonical cache keys. The fleet's
/// candidate cache (sim/fleet.cpp) and the scheduler's cross-job result
/// cache (svc/scheduler.cpp) build their identities from the same
/// primitives -- one copy, so the two key grammars can never drift on
/// the encoding level.

#include <cstddef>
#include <string>

namespace elrr::bytes {

inline void append_bytes(std::string& key, const void* data,
                         std::size_t size) {
  key.append(static_cast<const char*>(data), size);
}

/// Appends the object representation of a trivially copyable value.
template <class T>
inline void append_value(std::string& key, T value) {
  append_bytes(key, &value, sizeof(value));
}

}  // namespace elrr::bytes
