#pragma once

/// \file args.hpp
/// Minimal command-line parsing for the elrr tool: positional
/// subcommand + "--flag value" / "--flag=value" / boolean "--flag"
/// options. Unknown flags are errors (catches typos); every accessor
/// records the flags it saw so `finish()` can reject leftovers.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace elrr {

class Args {
 public:
  /// Parses argv[1..). The first non-flag token is the subcommand;
  /// later non-flag tokens are positional arguments.
  Args(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positional() const { return positional_; }

  /// String flag (--name value or --name=value).
  std::optional<std::string> get(const std::string& name);
  std::string get_or(const std::string& name, const std::string& fallback);
  /// Required string flag; throws InvalidInputError when missing.
  std::string require(const std::string& name);

  double get_double(const std::string& name, double fallback);
  int get_int(const std::string& name, int fallback);
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback);
  /// Boolean flag: present (with no value or "true"/"1") => true.
  bool get_flag(const std::string& name);

  /// Throws InvalidInputError when any provided flag was never queried.
  void finish() const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> values_;  ///< "" = bare flag
  std::map<std::string, bool> consumed_;
};

}  // namespace elrr
