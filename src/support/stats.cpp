#include "support/stats.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace elrr {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double relative_percent(double a, double b) {
  if (a == 0.0 && b == 0.0) return 0.0;
  ELRR_REQUIRE(b != 0.0, "relative_percent with zero reference");
  return (a - b) / b * 100.0;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

}  // namespace elrr
