#pragma once

/// \file strings.hpp
/// String utilities shared by the .bench parser, DOT/Verilog emitters and
/// table printers. libstdc++ 12 does not ship <format>, so the formatting
/// helpers here are snprintf-based.

#include <string>
#include <string_view>
#include <vector>

namespace elrr {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a separator character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on any amount of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
std::string to_upper(std::string_view s);
std::string to_lower(std::string_view s);

/// Fixed-point decimal rendering, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// JSON string-content escaping: quotes, backslashes and every control
/// character (< 0x20, as \n/\t/\r or \u00xx). One escaper for every
/// JSON the tree emits (rrg JSON export, batch JSONL, bench-diff
/// --json) -- divergent per-file copies are how invalid JSON ships.
std::string json_escape(std::string_view s);

/// Left-pads with spaces up to `width` characters.
std::string pad_left(std::string_view s, std::size_t width);

/// Right-pads with spaces up to `width` characters.
std::string pad_right(std::string_view s, std::size_t width);

}  // namespace elrr
