#pragma once

/// \file heuristic.hpp
/// MILP-free retiming & recycling heuristic -- the direction the paper's
/// conclusions point at ("there are simple and efficient heuristics for
/// solving MILP problems; exploring such heuristics is a part of the
/// future work").
///
/// The search combines three cheap ingredients, none of which needs
/// branch & bound:
///  1. seeds: the identity configuration and (when all token counts are
///     non-negative) the classical Leiserson-Saxe min-period retiming;
///  2. a greedy *recycling walk*: repeatedly insert the bubble on the
///     current critical combinational path that minimizes the resulting
///     xi_lp, recording every configuration visited (this sweeps the
///     tau axis from the seed down toward beta_max, mirroring the exact
///     Pareto walk of MIN_EFF_CYC);
///  3. a local *polish* around the best configuration: single-node +-1
///     retimings (elastic buffers move with their tokens) and single-edge
///     bubble removals, first-improvement descent.
///
/// Every candidate is scored with the same throughput LP bound (11) the
/// exact optimizer uses, so heuristic and MILP results are directly
/// comparable; the only thing given up is the MILP's proof of optimality
/// per Pareto point.

#include <cstddef>
#include <vector>

#include "core/opt.hpp"
#include "core/rrg.hpp"

namespace elrr {

struct HeuristicOptions {
  /// Bubble-insertion rounds (each adds one empty EB somewhere on the
  /// then-critical path).
  int max_bubble_rounds = 128;
  /// First-improvement polish sweeps around the best configuration.
  int max_polish_rounds = 8;
  /// Skip the polish entirely (ablation knob).
  bool polish = true;
  /// Hard cap on throughput-LP evaluations (the cost driver).
  int max_lp_evals = 4000;
  /// Critical-path edges probed per walk round (evenly subsampled when
  /// the path is longer). Keeps a small LP budget spread over many
  /// rounds on dense circuits instead of burning out in round one.
  int max_edges_per_round = 1 << 20;
};

struct HeuristicResult {
  /// Non-dominated configurations found, sorted by increasing tau.
  std::vector<ParetoPoint> points;
  std::size_t best_index = 0;
  int lp_evals = 0;        ///< throughput LPs solved
  double seconds = 0.0;

  const ParetoPoint& best() const { return points[best_index]; }
};

/// Heuristic counterpart of `min_eff_cyc` (same requirements: strongly
/// connected, live RRG). Deterministic; never returns a configuration
/// worse than the identity.
HeuristicResult heur_eff_cyc(const Rrg& rrg,
                             const HeuristicOptions& options = {});

}  // namespace elrr
