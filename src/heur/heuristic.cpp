#include "heur/heuristic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/analysis.hpp"
#include "graph/scc.hpp"
#include "retime/leiserson_saxe.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace elrr {

namespace {

/// Working candidate: a configuration plus its (tau, theta_lp, xi_lp).
struct Candidate {
  RrConfig config;
  RcEvaluation eval;
};

class Search {
 public:
  Search(const Rrg& rrg, const HeuristicOptions& options)
      : rrg_(rrg), options_(options) {}

  int lp_evals() const { return lp_evals_; }
  const std::vector<Candidate>& seen() const { return seen_; }

  bool budget_left() const { return lp_evals_ < options_.max_lp_evals; }

  /// Evaluates and memoizes a configuration; returns its index in
  /// `seen()` or -1 when the LP budget is exhausted.
  int probe(const RrConfig& config) {
    for (std::size_t i = 0; i < seen_.size(); ++i) {
      if (seen_[i].config == config) return static_cast<int>(i);
    }
    if (!budget_left()) return -1;
    ++lp_evals_;
    Candidate c;
    c.config = config;
    c.eval = evaluate_config(rrg_, config);
    seen_.push_back(std::move(c));
    return static_cast<int>(seen_.size()) - 1;
  }

 private:
  const Rrg& rrg_;
  const HeuristicOptions& options_;
  std::vector<Candidate> seen_;
  int lp_evals_ = 0;
};

/// Zero-buffer edges connecting consecutive nodes of the critical path.
std::vector<EdgeId> critical_edges(const Rrg& rrg, const RrConfig& config) {
  const CycleTimeResult ct = cycle_time(apply_config(rrg, config));
  std::vector<EdgeId> edges;
  const Digraph& g = rrg.graph();
  for (std::size_t i = 0; i + 1 < ct.critical_path.size(); ++i) {
    const NodeId u = ct.critical_path[i];
    const NodeId v = ct.critical_path[i + 1];
    for (EdgeId e : g.out_edges(u)) {
      if (g.dst(e) == v && config.buffers[e] == 0) {
        edges.push_back(e);
        break;
      }
    }
  }
  return edges;
}

/// Single-node retiming move: tokens shift by `d` across node n and the
/// elastic buffers move with them (clamped to the legal floor).
RrConfig retime_move(const Rrg& rrg, const RrConfig& config, NodeId n,
                     int d) {
  RrConfig out = config;
  const Digraph& g = rrg.graph();
  for (EdgeId e : g.in_edges(n)) {
    if (g.src(e) == n) continue;  // self loop: unchanged by retiming
    out.tokens[e] += d;
    out.buffers[e] =
        std::max({out.buffers[e] + d, out.tokens[e], 0});
  }
  for (EdgeId e : g.out_edges(n)) {
    if (g.dst(e) == n) continue;
    out.tokens[e] -= d;
    out.buffers[e] =
        std::max({out.buffers[e] - d, out.tokens[e], 0});
  }
  return out;
}

}  // namespace

HeuristicResult heur_eff_cyc(const Rrg& rrg, const HeuristicOptions& options) {
  Stopwatch watch;
  rrg.validate();
  ELRR_REQUIRE(graph::is_strongly_connected(rrg.graph()),
               "the heuristic requires a strongly connected RRG");
  ELRR_REQUIRE(options.max_lp_evals > 0, "LP budget must be positive");

  Search search(rrg, options);

  // --- seeds -------------------------------------------------------
  int best = search.probe(initial_config(rrg));
  ELRR_ASSERT(best >= 0, "identity probe cannot exhaust the budget");

  const bool classical = [&] {
    for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
      if (rrg.tokens(e) < 0) return false;
    }
    return true;
  }();
  if (classical) {
    const retime::RetimingResult ls = retime::min_period_retiming(rrg);
    const int idx = search.probe(apply_retiming(rrg, ls.r, false));
    if (idx >= 0 &&
        search.seen()[idx].eval.xi_lp < search.seen()[best].eval.xi_lp) {
      best = idx;
    }
  }

  // --- greedy recycling walk ---------------------------------------
  // From the best seed, sweep tau downward. Each round cuts the current
  // critical path with the move of smallest resulting xi_lp, choosing
  // per critical edge (u, v) among three cuts:
  //  * recycle: insert a bubble on the edge (cheap, costs throughput);
  //  * retime the head: r(v) += 1 pulls a token-carrying EB onto every
  //    input of v (cuts the edge without adding latency elsewhere);
  //  * retime the tail: r(u) -= 1 pushes an EB onto every output of u.
  // Every probe stays recorded for the final Pareto filter.
  int cursor = best;
  const double beta_max = rrg.max_delay();
  std::vector<int> visited{cursor};
  for (int round = 0; round < options.max_bubble_rounds; ++round) {
    const Candidate current = search.seen()[cursor];
    if (current.eval.tau <= beta_max + 1e-9) break;
    std::vector<EdgeId> edges = critical_edges(rrg, current.config);
    if (edges.empty()) break;
    if (static_cast<int>(edges.size()) > options.max_edges_per_round) {
      // Evenly spaced subsample so both ends of the path stay covered.
      std::vector<EdgeId> sample;
      const std::size_t want =
          static_cast<std::size_t>(options.max_edges_per_round);
      for (std::size_t i = 0; i < want; ++i) {
        sample.push_back(edges[i * (edges.size() - 1) / (want - 1)]);
      }
      sample.erase(std::unique(sample.begin(), sample.end()), sample.end());
      edges = std::move(sample);
    }
    int round_best = -1;
    const auto consider = [&](const RrConfig& next) {
      std::string why;
      if (!validate_config(rrg, next, &why)) return true;
      const int idx = search.probe(next);
      if (idx < 0) return false;  // budget exhausted
      if (round_best < 0 || search.seen()[idx].eval.xi_lp <
                                search.seen()[round_best].eval.xi_lp) {
        round_best = idx;
      }
      return true;
    };
    const Digraph& g = rrg.graph();
    for (EdgeId e : edges) {
      RrConfig bubble = current.config;
      ++bubble.buffers[e];
      if (!consider(bubble)) break;
      if (!consider(retime_move(rrg, current.config, g.dst(e), 1))) break;
      if (!consider(retime_move(rrg, current.config, g.src(e), -1))) break;
    }
    if (round_best < 0) break;
    // Retiming moves can revisit an earlier cursor; stop on a cycle.
    if (std::find(visited.begin(), visited.end(), round_best) !=
        visited.end()) {
      break;
    }
    cursor = round_best;
    visited.push_back(cursor);
    if (search.seen()[cursor].eval.xi_lp < search.seen()[best].eval.xi_lp) {
      best = cursor;
    }
    if (!search.budget_left()) break;
  }

  // --- polish ------------------------------------------------------
  // First-improvement descent around the best configuration: single-node
  // +-1 retimings and single-edge bubble removals.
  if (options.polish) {
    for (int round = 0; round < options.max_polish_rounds; ++round) {
      bool improved = false;
      const Candidate pivot = search.seen()[best];
      for (NodeId n = 0; n < rrg.num_nodes() && !improved; ++n) {
        for (int d : {1, -1}) {
          const RrConfig moved = retime_move(rrg, pivot.config, n, d);
          std::string why;
          if (!validate_config(rrg, moved, &why)) continue;
          const int idx = search.probe(moved);
          if (idx < 0) break;
          if (search.seen()[idx].eval.xi_lp <
              pivot.eval.xi_lp - 1e-12) {
            best = idx;
            improved = true;
            break;
          }
        }
      }
      for (EdgeId e = 0; e < rrg.num_edges() && !improved; ++e) {
        const Candidate pivot2 = search.seen()[best];
        const int floor =
            std::max(pivot2.config.tokens[e], 0);
        if (pivot2.config.buffers[e] <= floor) continue;
        RrConfig next = pivot2.config;
        --next.buffers[e];
        const int idx = search.probe(next);
        if (idx < 0) break;
        if (search.seen()[idx].eval.xi_lp < pivot2.eval.xi_lp - 1e-12) {
          best = idx;
          improved = true;
        }
      }
      if (!improved || !search.budget_left()) break;
    }
  }

  // --- Pareto filter -----------------------------------------------
  HeuristicResult result;
  result.lp_evals = search.lp_evals();
  std::vector<std::size_t> order(search.seen().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ea = search.seen()[a].eval;
    const auto& eb = search.seen()[b].eval;
    if (ea.tau != eb.tau) return ea.tau < eb.tau;
    return ea.theta_lp > eb.theta_lp;
  });
  double best_theta = -1.0;
  for (std::size_t i : order) {
    const Candidate& c = search.seen()[i];
    if (c.eval.theta_lp > best_theta + 1e-12) {
      ParetoPoint point;
      point.config = c.config;
      point.tau = c.eval.tau;
      point.theta_lp = c.eval.theta_lp;
      point.xi_lp = c.eval.xi_lp;
      point.exact = false;  // heuristic: no optimality proof
      result.points.push_back(std::move(point));
      best_theta = c.eval.theta_lp;
    }
  }
  ELRR_ASSERT(!result.points.empty(), "frontier cannot be empty");
  result.best_index = 0;
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    if (result.points[i].xi_lp < result.points[result.best_index].xi_lp) {
      result.best_index = i;
    }
  }
  result.seconds = watch.seconds();
  return result;
}

}  // namespace elrr
