#pragma once

/// \file proc_fleet.hpp
/// The process-isolated execution tier of sim::SimFleet: a thin
/// length-framed pipe protocol between a supervisor thread (one per pool
/// slot, inside the fleet) and an `elrr work` worker process, plus the
/// handle the supervisor drives that process through.
///
/// Why processes: everything else in the tree shares one address space,
/// so a single corrupted slice, OOM kill or sanitizer abort takes every
/// job of a batch down with it. With ELRR_PROC_WORKERS=N the fleet's
/// slices execute in N child processes instead; a dead child costs the
/// supervisor one respawn and one re-dispatch of exactly the slices that
/// were in flight on it -- never the batch.
///
/// ## Wire protocol
///
/// Both directions speak the same frame:
///
///   [u32 magic][u32 payload_len][payload bytes][u64 FNV-1a of payload]
///
/// all little-endian host order (supervisor and worker are the same
/// binary on the same machine -- this is an IPC format, not an
/// interchange format). Anything that breaks the frame -- short read,
/// bad magic, oversized length, checksum mismatch, EOF mid-frame -- is
/// *torn* and treated exactly like a dead worker: the reader gives up on
/// the peer rather than resynchronize.
///
/// On startup the worker sends one hello frame (payload
/// `kHelloPayload`); a supervisor that reads anything else within the
/// handshake window kills the child and counts a failed spawn. This
/// catches a misconfigured ELRR_WORK_BIN pointing at a binary that is
/// not `elrr` before any slice is lost to it.
///
/// A request frame carries one run slice of one fleet job:
/// slice descriptor (first run index, run count), the
/// stream/window-selecting SimOptions fields, and the candidate RRG in
/// the .rrg text format (io::write_rrg emits doubles with %.17g, so the
/// round-trip is bit-exact and the worker's per-run thetas are the
/// in-process pool's, bit for bit). A response frame is either
/// `ok` + per-run thetas + the degraded-slice delta, or a structured
/// error string (the worker is healthy; the failure is deterministic).
/// A worker that dies *without* responding -- crash, SIGKILL, the
/// `proc.worker` fail point -- is detected as a torn read on the
/// supervisor side.
///
/// The worker caches the runner of the last (candidate, options) pair it
/// saw, so the consecutive slices of one job parse and build once.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "sim/simulator.hpp"

namespace elrr::sim::proc {

/// Worker exit codes (`elrr work`). Anything non-zero reads as a crash
/// to the supervisor; the distinctions exist for the stderr logs.
inline constexpr int kExitOk = 0;        ///< clean EOF on the request pipe
inline constexpr int kExitTorn = 3;      ///< torn/corrupt request frame
inline constexpr int kExitInjected = 64; ///< `proc.worker` fail point fired

/// Handshake payload the worker sends before serving slices.
inline constexpr const char* kHelloPayload = "ELRR-WORK-1";

/// Largest accepted frame payload. A corrupt length field must read as a
/// torn frame, not as a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFramePayload = 256u << 20;  // 256 MiB

/// Frame reader outcome. kEof is only clean *between* frames (zero bytes
/// read); EOF mid-frame is kTorn.
enum class FrameRead { kOk, kEof, kTorn };

/// Writes one `[magic][len][payload][checksum]` frame. False on any
/// write failure (EPIPE on a dead peer included; SIGPIPE is ignored
/// process-wide once the proc tier is used).
bool write_frame(int fd, const std::string& payload);

/// Reads one frame into `*payload` (blocking).
FrameRead read_frame(int fd, std::string* payload);

/// One slice request, decoded.
struct SliceRequest {
  SimOptions options;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  std::string rrg_text;
};

/// Encodes a slice request payload (the SimOptions fields that select
/// streams and windows, the slice descriptor, the candidate text).
std::string encode_request(const std::string& rrg_text,
                           const SimOptions& options, std::uint32_t first,
                           std::uint32_t count);

/// Decodes a request payload; throws InvalidInputError on malformed
/// bytes (the worker turns that into a torn-frame exit).
SliceRequest decode_request(const std::string& payload);

/// One worker-side span riding back on an ok response, in the
/// *worker's* steady_clock ns. The supervisor re-anchors it onto its
/// own timeline (see obs/trace.hpp's clock contract) before recording.
struct WorkerSpan {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// One slice response, decoded. `error` empty = success.
struct SliceOutcome {
  std::vector<double> thetas;        ///< per-run thetas, slice order
  std::uint32_t degraded_slices = 0; ///< flat->reference fallbacks inside
  std::string error;                 ///< structured worker-side failure
  /// Tracing section (present only when the worker ran armed; older
  /// responses decode with all three empty/zero).
  std::vector<WorkerSpan> spans;     ///< worker-clock spans for this slice
  std::int64_t clock_ns = 0;         ///< worker clock at encode time
  std::uint32_t worker_pid = 0;      ///< worker pid, for track tagging
};

std::string encode_ok_response(const SliceRun& run);
/// Ok response plus the trailing span section (worker side, armed).
std::string encode_ok_response(const SliceRun& run,
                               const std::vector<WorkerSpan>& spans,
                               std::int64_t clock_ns,
                               std::uint32_t worker_pid);
std::string encode_error_response(const std::string& message);
SliceOutcome decode_response(const std::string& payload);

/// The `elrr work` body: hello, then serve request frames from `in_fd`
/// with response frames on `out_fd` until clean EOF. Returns a kExit*
/// code. Never throws (a worker-side exception becomes a structured
/// error response; a torn frame or an injected `proc.worker` fault
/// becomes a non-zero exit without a response -- a crash, by contract).
int worker_loop(int in_fd, int out_fd);

/// How to start one worker process.
struct SpawnConfig {
  std::string binary;       ///< executable to run as `<binary> work`
  std::string stderr_path;  ///< O_APPEND redirect; empty = inherit
  /// Per-slot stderr byte cap: before a (re)spawn, a log already past
  /// the cap is truncated with a marker line so respawn loops cannot
  /// grow it without bound. 0 = uncapped.
  std::uint64_t log_cap_bytes = 0;
  /// 1-based spawn generation for this slot (bumped per respawn);
  /// stamped into the log header next to the worker pid.
  int generation = 1;
  /// Resolves the worker binary (ELRR_WORK_BIN, else /proc/self/exe --
  /// correct whenever the supervisor is the `elrr` CLI itself; tests
  /// and embedders set ELRR_WORK_BIN) and, when ELRR_PROC_LOG_DIR is
  /// set, a per-slot stderr log path under it (the dead-worker
  /// diagnostics CI uploads on failure) capped at ELRR_PROC_LOG_CAP
  /// bytes (default 1 MiB).
  static SpawnConfig from_env(std::size_t slot);
};

/// One live worker process: fork/exec plus the two pipes, request/
/// response round-trips, liveness and post-mortem. Owned by exactly one
/// supervisor thread; not thread-safe, not copyable. The destructor
/// SIGKILLs and reaps a still-running child.
class WorkerProcess {
 public:
  /// Spawns and validates the hello handshake; throws TransientError on
  /// pipe/fork/exec failure or a botched handshake (the child, if any,
  /// is killed and reaped first).
  explicit WorkerProcess(const SpawnConfig& config);
  ~WorkerProcess();
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  int pid() const { return pid_; }

  /// Non-blocking liveness probe (waitpid WNOHANG; records the exit
  /// status the first time the child is found dead).
  bool alive();

  /// One request/response round-trip. nullopt on *any* transport
  /// failure -- write error, torn response, EOF -- which the supervisor
  /// treats as a crash of this worker. Blocks for the duration of the
  /// slice; the supervisor's heartbeat covers the wait.
  std::optional<SliceOutcome> run_slice(const std::string& request_payload);

  /// Human-readable cause of death ("exit code N" / "killed by signal
  /// N"); kills and reaps the child first if it is somehow still alive
  /// (e.g. it wrote garbage without exiting).
  std::string death_reason();

 private:
  void shutdown();  ///< close fds, SIGKILL + reap if needed

  int request_fd_ = -1;   ///< parent writes requests here
  int response_fd_ = -1;  ///< parent reads responses here
  int pid_ = -1;
  bool reaped_ = false;
  int wait_status_ = 0;
};

}  // namespace elrr::sim::proc
