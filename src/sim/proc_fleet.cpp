#include "sim/proc_fleet.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "io/rrg_format.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "support/bytes.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"

namespace elrr::sim::proc {

namespace {

constexpr std::uint32_t kMagic = 0x50525245;  // "ERRP"

/// FNV-1a 64 over the payload: cheap, order-sensitive, and any torn or
/// bit-flipped frame fails it. This is crash *detection*, not security.
std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool write_exact(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Full read or failure; `*got_any` reports whether even one byte
/// arrived (distinguishes clean EOF from a torn frame).
bool read_exact(int fd, void* data, std::size_t size, bool* got_any) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    *got_any = true;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Writes to a peer that may die at any moment; a SIGPIPE default
/// disposition would kill the *writer*. Ignored once, process-wide, the
/// first time the proc tier touches a pipe (supervisor and worker both
/// route through here); write() then reports EPIPE, which reads as a
/// crashed peer.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

/// Bounds-checked little cursor over a decoded payload.
struct Cursor {
  const char* p;
  std::size_t left;
  void take(void* out, std::size_t n) {
    ELRR_REQUIRE(left >= n, "truncated proc-fleet payload");
    std::memcpy(out, p, n);
    p += n;
    left -= n;
  }
  template <typename T>
  T value() {
    T v;
    take(&v, sizeof(T));
    return v;
  }
};

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  ignore_sigpipe_once();
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint64_t checksum = fnv1a(payload.data(), payload.size());
  std::string frame;
  frame.reserve(payload.size() + 16);
  bytes::append_value(frame, kMagic);
  bytes::append_value(frame, len);
  frame.append(payload);
  bytes::append_value(frame, checksum);
  return write_exact(fd, frame.data(), frame.size());
}

FrameRead read_frame(int fd, std::string* payload) {
  bool got_any = false;
  std::uint32_t header[2];  // magic, len
  if (!read_exact(fd, header, sizeof(header), &got_any)) {
    return got_any ? FrameRead::kTorn : FrameRead::kEof;
  }
  if (header[0] != kMagic || header[1] > kMaxFramePayload) {
    return FrameRead::kTorn;
  }
  payload->resize(header[1]);
  std::uint64_t checksum = 0;
  if (!read_exact(fd, payload->data(), payload->size(), &got_any) ||
      !read_exact(fd, &checksum, sizeof(checksum), &got_any)) {
    return FrameRead::kTorn;
  }
  if (checksum != fnv1a(payload->data(), payload->size())) {
    return FrameRead::kTorn;
  }
  return FrameRead::kOk;
}

std::string encode_request(const std::string& rrg_text,
                           const SimOptions& options, std::uint32_t first,
                           std::uint32_t count) {
  std::string payload;
  payload.reserve(rrg_text.size() + 64);
  bytes::append_value(payload, first);
  bytes::append_value(payload, count);
  bytes::append_value(payload, options.seed);
  bytes::append_value(payload, static_cast<std::uint64_t>(options.warmup_cycles));
  bytes::append_value(payload,
                      static_cast<std::uint64_t>(options.measure_cycles));
  bytes::append_value(payload, static_cast<std::uint64_t>(options.runs));
  bytes::append_value(payload, static_cast<std::uint64_t>(options.max_batch));
  bytes::append_value(payload,
                      static_cast<std::uint8_t>(options.force_reference));
  payload.append(rrg_text);
  return payload;
}

SliceRequest decode_request(const std::string& payload) {
  Cursor cur{payload.data(), payload.size()};
  SliceRequest req;
  req.first = cur.value<std::uint32_t>();
  req.count = cur.value<std::uint32_t>();
  req.options.seed = cur.value<std::uint64_t>();
  req.options.warmup_cycles =
      static_cast<std::size_t>(cur.value<std::uint64_t>());
  req.options.measure_cycles =
      static_cast<std::size_t>(cur.value<std::uint64_t>());
  req.options.runs = static_cast<std::size_t>(cur.value<std::uint64_t>());
  req.options.max_batch = static_cast<std::size_t>(cur.value<std::uint64_t>());
  req.options.force_reference = cur.value<std::uint8_t>() != 0;
  req.rrg_text.assign(cur.p, cur.left);
  ELRR_REQUIRE(req.count > 0, "empty slice in proc-fleet request");
  ELRR_REQUIRE(req.first + req.count <= req.options.runs,
               "slice [", req.first, ", ", req.first + req.count,
               ") outside ", req.options.runs, " runs");
  return req;
}

std::string encode_ok_response(const SliceRun& run) {
  std::string payload;
  bytes::append_value(payload, std::uint8_t{0});
  bytes::append_value(payload, run.degraded_slices);
  bytes::append_value(payload, static_cast<std::uint32_t>(run.thetas.size()));
  for (const double theta : run.thetas) bytes::append_value(payload, theta);
  return payload;
}

std::string encode_ok_response(const SliceRun& run,
                               const std::vector<WorkerSpan>& spans,
                               std::int64_t clock_ns,
                               std::uint32_t worker_pid) {
  // Span section rides *after* the theta block so a supervisor built
  // before this section existed would still read the thetas (and one
  // built after reads plain responses from a disarmed worker: the
  // section is simply absent).
  std::string payload = encode_ok_response(run);
  bytes::append_value(payload, worker_pid);
  bytes::append_value(payload, clock_ns);
  bytes::append_value(payload, static_cast<std::uint32_t>(spans.size()));
  for (const WorkerSpan& span : spans) {
    const std::uint16_t len = static_cast<std::uint16_t>(
        span.name.size() < 0xffff ? span.name.size() : 0xffff);
    bytes::append_value(payload, len);
    payload.append(span.name.data(), len);
    bytes::append_value(payload, span.start_ns);
    bytes::append_value(payload, span.end_ns);
  }
  return payload;
}

std::string encode_error_response(const std::string& message) {
  std::string payload;
  bytes::append_value(payload, std::uint8_t{1});
  payload.append(message);
  return payload;
}

SliceOutcome decode_response(const std::string& payload) {
  Cursor cur{payload.data(), payload.size()};
  SliceOutcome outcome;
  const std::uint8_t status = cur.value<std::uint8_t>();
  if (status != 0) {
    outcome.error.assign(cur.p, cur.left);
    if (outcome.error.empty()) outcome.error = "unspecified worker failure";
    return outcome;
  }
  outcome.degraded_slices = cur.value<std::uint32_t>();
  const std::uint32_t count = cur.value<std::uint32_t>();
  ELRR_REQUIRE(cur.left >= count * sizeof(double),
               "theta payload size mismatch in proc-fleet response");
  outcome.thetas.resize(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    outcome.thetas[r] = cur.value<double>();
  }
  if (cur.left == 0) return outcome;  // disarmed worker: no span section
  outcome.worker_pid = cur.value<std::uint32_t>();
  outcome.clock_ns = cur.value<std::int64_t>();
  const std::uint32_t span_count = cur.value<std::uint32_t>();
  outcome.spans.reserve(span_count);
  for (std::uint32_t i = 0; i < span_count; ++i) {
    WorkerSpan span;
    const std::uint16_t len = cur.value<std::uint16_t>();
    ELRR_REQUIRE(cur.left >= len, "truncated span name in proc-fleet response");
    span.name.assign(cur.p, len);
    cur.p += len;
    cur.left -= len;
    span.start_ns = cur.value<std::int64_t>();
    span.end_ns = cur.value<std::int64_t>();
    outcome.spans.push_back(std::move(span));
  }
  ELRR_REQUIRE(cur.left == 0,
               "trailing bytes after span section in proc-fleet response");
  return outcome;
}

int worker_loop(int in_fd, int out_fd) {
  ignore_sigpipe_once();
  if (!write_frame(out_fd, kHelloPayload)) return kExitTorn;
  // The runner of the last (candidate, options) pair is kept hot: the
  // slices of one job arrive back to back (often from several
  // supervisors racing the queue, but each worker sees a run of them),
  // and re-parsing the candidate per slice would put serialization, not
  // simulation, on the profile. The key is the request payload minus the
  // slice descriptor.
  std::unique_ptr<SliceRunner> runner;
  std::string runner_key;
  std::string payload;
  for (;;) {
    switch (read_frame(in_fd, &payload)) {
      case FrameRead::kEof:
        return kExitOk;  // supervisor closed the pipe: clean retirement
      case FrameRead::kTorn:
        std::fprintf(stderr, "elrr work: torn request frame, exiting\n");
        return kExitTorn;
      case FrameRead::kOk:
        break;
    }
    std::string response;
    // Mark the slice in-flight for the flight recorder *before* the
    // fail point below: the injected stall is where a chaos schedule
    // kills this process, and the postmortem must name the slice that
    // was on the bench when it died. The request payload leads with
    // (first, count) as two u32s, so the peek needs no full decode.
    if (obs::rec::armed() && payload.size() >= 2 * sizeof(std::uint32_t)) {
      std::uint32_t first = 0;
      std::uint32_t count = 0;
      std::memcpy(&first, payload.data(), sizeof(first));
      std::memcpy(&count, payload.data() + sizeof(first), sizeof(count));
      obs::rec::event("slice.recv", first, count);
      obs::rec::set_inflight("slice", first);
    }
    try {
      // The injectable whole-worker fault: firing exits without a
      // response -- indistinguishable from a real crash upstream, which
      // is the point. (`stall:` sleeps here with the request pending,
      // modelling a wedged worker the supervisor heartbeat must see.)
      failpoint::trip("proc.worker");
      const std::int64_t slice_start = obs::now_ns_if_armed();
      const SliceRequest req = decode_request(payload);
      const std::string key = payload.substr(2 * sizeof(std::uint32_t));
      if (runner == nullptr || runner_key != key) {
        OBS_SPAN("work.parse");
        io::NamedRrg named = io::read_rrg(req.rrg_text);
        runner = std::make_unique<SliceRunner>(std::move(named.rrg),
                                               req.options);
        runner_key = key;
      }
      const SliceRun run = runner->run(req.first, req.count);
      if (obs::armed()) {
        // Ship this slice's spans home with the thetas: close the
        // covering span, drain the ring, stamp our clock so the
        // supervisor can re-anchor (obs/trace.hpp clock contract).
        obs::record_span("work.slice", slice_start, obs::now_ns_if_armed());
        std::vector<WorkerSpan> spans;
        for (const obs::SpanRecord& rec : obs::drain_thread_spans()) {
          spans.push_back(WorkerSpan{rec.name, rec.start_ns, rec.end_ns});
        }
        response = encode_ok_response(run, spans, obs::now_ns_if_armed(),
                                      static_cast<std::uint32_t>(::getpid()));
      } else {
        response = encode_ok_response(run);
      }
    } catch (const failpoint::FailPointError& e) {
      std::fprintf(stderr, "elrr work: %s\n", e.what());
      return kExitInjected;
    } catch (const std::exception& e) {
      // Deterministic worker-side failure (malformed candidate, violated
      // invariant): report it structurally -- the worker is healthy and
      // must keep serving; the supervisor fails the job, not the worker.
      response = encode_error_response(e.what());
      runner.reset();
      runner_key.clear();
    }
    obs::rec::clear_inflight();
    if (!write_frame(out_fd, response)) {
      std::fprintf(stderr, "elrr work: response pipe broke, exiting\n");
      return kExitTorn;
    }
  }
}

SpawnConfig SpawnConfig::from_env(std::size_t slot) {
  SpawnConfig config;
  config.binary = env::str("ELRR_WORK_BIN", "");
  if (config.binary.empty()) {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    ELRR_REQUIRE(n > 0,
                 "cannot resolve the worker binary from /proc/self/exe; "
                 "set ELRR_WORK_BIN to the elrr executable");
    buf[n] = '\0';
    config.binary.assign(buf);
  }
  const std::string log_dir = env::str("ELRR_PROC_LOG_DIR", "");
  if (!log_dir.empty()) {
    ::mkdir(log_dir.c_str(), 0777);  // best effort; open() below decides
    config.stderr_path =
        log_dir + "/proc-worker-" + std::to_string(slot) + ".stderr";
    // A crash-looping slot appends its last words forever; the cap
    // truncates the log (with a marker) before the spawn that would
    // overflow it. 0 disables.
    config.log_cap_bytes = env::u64("ELRR_PROC_LOG_CAP", 1u << 20, 0,
                                    std::uint64_t{1} << 40);
  }
  return config;
}

WorkerProcess::WorkerProcess(const SpawnConfig& config) {
  ignore_sigpipe_once();
  if (!config.stderr_path.empty() && config.log_cap_bytes > 0) {
    // Enforce the per-slot byte cap before this spawn appends to the
    // log: a capped log restarts from a truncation marker instead of
    // growing without bound across respawns.
    struct stat st;
    if (::stat(config.stderr_path.c_str(), &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) >
            config.log_cap_bytes) {
      const int fd = ::open(config.stderr_path.c_str(),
                            O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dprintf(fd,
                  "[elrr work] log truncated: previous contents exceeded "
                  "ELRR_PROC_LOG_CAP=%llu bytes\n",
                  static_cast<unsigned long long>(config.log_cap_bytes));
        ::close(fd);
      }
    }
  }
  int request_pipe[2] = {-1, -1};
  int response_pipe[2] = {-1, -1};
  if (::pipe2(request_pipe, O_CLOEXEC) != 0) {
    throw TransientError(elrr::detail::concat(
        "proc fleet: pipe2 failed: ", std::strerror(errno)));
  }
  if (::pipe2(response_pipe, O_CLOEXEC) != 0) {
    const int saved = errno;
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    throw TransientError(elrr::detail::concat(
        "proc fleet: pipe2 failed: ", std::strerror(saved)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    for (const int fd : {request_pipe[0], request_pipe[1], response_pipe[0],
                         response_pipe[1]}) {
      ::close(fd);
    }
    throw TransientError(elrr::detail::concat(
        "proc fleet: fork failed: ", std::strerror(saved)));
  }
  if (pid == 0) {
    // Child: requests on stdin, responses on stdout, stderr optionally
    // appended to the per-slot log (the artifact CI uploads on failure).
    // Only async-signal-safe calls between fork and exec.
    ::dup2(request_pipe[0], STDIN_FILENO);
    ::dup2(response_pipe[1], STDOUT_FILENO);
    if (!config.stderr_path.empty()) {
      const int log_fd = ::open(config.stderr_path.c_str(),
                                O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDERR_FILENO);
        // Log header: which incarnation of this slot wrote what follows
        // (the respawn generation disambiguates interleaved last words).
        ::dprintf(STDERR_FILENO, "[elrr work] pid %d generation %d\n",
                  static_cast<int>(::getpid()), config.generation);
      }
    }
    ::execl(config.binary.c_str(), config.binary.c_str(), "work",
            static_cast<char*>(nullptr));
    ::dprintf(STDERR_FILENO, "elrr work: exec %s failed: %s\n",
              config.binary.c_str(), std::strerror(errno));
    ::_exit(127);
  }
  // Parent.
  ::close(request_pipe[0]);
  ::close(response_pipe[1]);
  request_fd_ = request_pipe[1];
  response_fd_ = response_pipe[0];
  pid_ = pid;

  // Handshake, bounded: a hung or foreign binary must fail the spawn in
  // seconds, not wedge the supervisor forever on a read.
  struct pollfd pfd = {response_fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, /*timeout_ms=*/10000);
  std::string hello;
  if (ready <= 0 || read_frame(response_fd_, &hello) != FrameRead::kOk ||
      hello != kHelloPayload) {
    const std::string reason = death_reason();
    throw TransientError(elrr::detail::concat(
        "proc fleet: worker handshake failed (", config.binary,
        " work): ", reason));
  }
}

WorkerProcess::~WorkerProcess() { shutdown(); }

bool WorkerProcess::alive() {
  if (reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    wait_status_ = status;
    reaped_ = true;
    // An externally SIGKILLed child never cleaned its own recorder tmp
    // (and never published -- rename can't happen after the reap).
    obs::rec::discard_tmp(pid_);
    return false;
  }
  return true;
}

std::optional<SliceOutcome> WorkerProcess::run_slice(
    const std::string& request_payload) {
  if (!alive()) return std::nullopt;
  if (!write_frame(request_fd_, request_payload)) return std::nullopt;
  std::string payload;
  if (read_frame(response_fd_, &payload) != FrameRead::kOk) {
    return std::nullopt;
  }
  try {
    return decode_response(payload);
  } catch (const std::exception&) {
    return std::nullopt;  // undecodable response == torn
  }
}

std::string WorkerProcess::death_reason() {
  if (!reaped_) {
    // A peer that broke the protocol without exiting (wrote garbage,
    // closed one pipe) is put down before the post-mortem.
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, &wait_status_, 0);
    reaped_ = true;
    obs::rec::discard_tmp(pid_);
  }
  if (WIFSIGNALED(wait_status_)) {
    const int sig = WTERMSIG(wait_status_);
    return elrr::detail::concat("killed by signal ", sig, " (",
                                strsignal(sig), ")");
  }
  if (WIFEXITED(wait_status_)) {
    return elrr::detail::concat("exit code ", WEXITSTATUS(wait_status_));
  }
  return "unknown wait status";
}

void WorkerProcess::shutdown() {
  if (request_fd_ >= 0) ::close(request_fd_);
  if (response_fd_ >= 0) ::close(response_fd_);
  request_fd_ = response_fd_ = -1;
  if (pid_ > 0 && !reaped_) {
    // Closing the request pipe lets a healthy worker retire on EOF, but
    // the fleet must not block on a wedged one: reap hard. SIGKILL
    // skips the child's own atexit tmp cleanup, so discard its orphaned
    // flight-recorder tmp here.
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, &wait_status_, 0);
    reaped_ = true;
    obs::rec::discard_tmp(pid_);
  }
}

}  // namespace elrr::sim::proc
