#include "sim/simulator.hpp"

#include "sim/fleet.hpp"
#include "support/rng.hpp"

namespace elrr::sim {

std::uint64_t run_seed(std::uint64_t seed, std::size_t run) {
  std::uint64_t state =
      seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(run);
  return splitmix64(state);
}

SimReport simulate_throughput(const Rrg& rrg, const SimOptions& options) {
  // A one-job fleet: same kernels, same per-run streams, same run-order
  // merge -- simulate_throughput is the single-candidate spelling of the
  // fleet scheduler, so every determinism property is shared.
  SimFleet fleet(options.threads);
  fleet.submit(rrg, options);
  return fleet.drain().front();
}

}  // namespace elrr::sim
