#include "sim/simulator.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/choosers.hpp"
#include "sim/flat_kernel.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::sim {

namespace {

/// Independent per-node streams, derived exactly like the reference
/// driver always has: one master stream split once per node, so adding a
/// node does not perturb the others' select sequences.
std::vector<Rng> node_streams(std::uint64_t seed, std::size_t num_nodes) {
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) streams.push_back(master.split());
  return streams;
}

/// One full replication on the flat fast path: templated choosers, no
/// allocation after the stream setup.
double run_flat(const FlatKernel& kernel, const GuardTable& guards,
                const LatencyTable& latencies, std::uint64_t seed,
                const SimOptions& options) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const TableGuardChooser guard{&guards, streams.data()};
  const TableLatencyChooser latency{&latencies, streams.data()};

  FlatState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// Up to kMaxBatch replications interleaved through one FlatKernel pass
/// (instruction-level parallelism across runs; see FlatBatchState). Each
/// run draws from the same streams the solo path would, so per-run theta
/// is bit-identical to run_flat.
inline constexpr std::size_t kMaxBatch = 4;

template <std::size_t K>
void run_flat_batch(const FlatKernel& kernel, const GuardTable& guards,
                    std::uint64_t sim_seed, std::size_t first_run,
                    const SimOptions& options, double* thetas) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::vector<Rng> streams;
  streams.reserve(K * num_nodes);
  for (std::size_t r = 0; r < K; ++r) {
    Rng master(run_seed(sim_seed, first_run + r));
    for (std::size_t n = 0; n < num_nodes; ++n) {
      streams.push_back(master.split());
    }
  }
  const BatchTableGuardChooser guard{&guards, streams.data(), num_nodes};

  FlatBatchState state = kernel.initial_batch_state(K);
  std::uint64_t totals[K] = {};
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals);
  }
  std::fill(totals, totals + K, 0);  // discard the transient
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals);
  }
  for (std::size_t r = 0; r < K; ++r) {
    thetas[r] = static_cast<double>(totals[r]) /
                (static_cast<double>(options.measure_cycles) *
                 static_cast<double>(num_nodes));
  }
}

/// One replication on the reference kernel (fallback for RRGs the flat
/// layout cannot represent, and the anchor of the differential tests).
/// Draws the same per-node streams through the same table arithmetic, so
/// theta is bit-identical to run_flat.
double run_reference(const Kernel& kernel, const GuardTable& guards,
                     const LatencyTable& latencies, std::uint64_t seed,
                     const SimOptions& options) {
  const std::size_t num_nodes = kernel.rrg().num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const Kernel::GuardChooser guard = [&](NodeId n) {
    return guards.sample(n, streams[n]);
  };
  const Kernel::LatencyChooser latency = [&](NodeId n) {
    return latencies.sample(n, streams[n]);
  };

  SyncState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

}  // namespace

std::uint64_t run_seed(std::uint64_t seed, std::size_t run) {
  std::uint64_t state =
      seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(run);
  return splitmix64(state);
}

SimResult simulate_throughput(const Rrg& rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");

  const bool flat = !options.force_reference && FlatKernel::supports(rrg);
  const GuardTable guards(rrg);
  const LatencyTable latencies(rrg);

  // Kernels precompute per-RRG structure once, shared (read-only) by all
  // worker threads.
  std::unique_ptr<FlatKernel> flat_kernel;
  std::unique_ptr<Kernel> ref_kernel;
  if (flat) {
    flat_kernel = std::make_unique<FlatKernel>(rrg);
  } else {
    ref_kernel = std::make_unique<Kernel>(rrg);
  }

  // Work items are contiguous run ranges: the flat non-telescopic path
  // interleaves up to kMaxBatch runs through one kernel pass (ILP), the
  // others go run by run. Per-run theta lands in a run-indexed slot and
  // the moments are accumulated in run order below, so neither the batch
  // partition nor the thread count can change the result.
  const bool batchable = flat && !rrg.has_telescopic();
  std::vector<double> per_run(options.runs, 0.0);
  const auto run_range = [&](std::size_t first, std::size_t count) {
    while (count > 0) {
      std::size_t step = 1;
      if (batchable && count >= 2) {
        step = std::min(count, kMaxBatch);
        switch (step) {
          case 2:
            run_flat_batch<2>(*flat_kernel, guards, options.seed, first,
                              options, &per_run[first]);
            break;
          case 3:
            run_flat_batch<3>(*flat_kernel, guards, options.seed, first,
                              options, &per_run[first]);
            break;
          default:
            run_flat_batch<4>(*flat_kernel, guards, options.seed, first,
                              options, &per_run[first]);
            break;
        }
      } else {
        const std::uint64_t seed = run_seed(options.seed, first);
        per_run[first] =
            flat ? run_flat(*flat_kernel, guards, latencies, seed, options)
                 : run_reference(*ref_kernel, guards, latencies, seed,
                                 options);
      }
      first += step;
      count -= step;
    }
  };

  // One work item is a batch-sized slice of runs; spawning more workers
  // than slices would only create threads that find nothing to do.
  const std::size_t chunk = batchable ? kMaxBatch : 1;
  const std::size_t work_items = (options.runs + chunk - 1) / chunk;
  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::thread::hardware_concurrency();
  threads = std::min(std::max<std::size_t>(threads, 1), work_items);
  if (threads <= 1) {
    run_range(0, options.runs);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr failure;
    std::mutex failure_mutex;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        try {
          for (std::size_t first = next.fetch_add(chunk);
               first < options.runs; first = next.fetch_add(chunk)) {
            run_range(first, std::min(chunk, options.runs - first));
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          if (!failure) failure = std::current_exception();
          next.store(options.runs);  // drain remaining work
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    if (failure) std::rethrow_exception(failure);
  }

  RunningStats across_runs;
  for (double theta : per_run) across_runs.add(theta);

  SimResult result;
  result.theta = across_runs.mean();
  result.stderr_theta = across_runs.stderr_mean();
  result.cycles = options.runs * options.measure_cycles;
  return result;
}

}  // namespace elrr::sim
