#include "sim/simulator.hpp"

#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::sim {

SimResult simulate_throughput(const Rrg& rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");

  const Kernel kernel(rrg);
  const std::size_t num_nodes = rrg.num_nodes();

  // Per-node gamma weights, fetched once.
  std::vector<std::vector<double>> weights(num_nodes);
  for (NodeId n : kernel.early_nodes()) {
    for (EdgeId e : rrg.graph().in_edges(n)) {
      weights[n].push_back(rrg.gamma(e));
    }
  }

  RunningStats across_runs;
  std::size_t total_cycles = 0;
  for (std::size_t run = 0; run < options.runs; ++run) {
    Rng master(options.seed + 0x9e37U * run);
    // Independent stream per early node, so adding a node does not perturb
    // the others' select sequences.
    std::vector<Rng> streams;
    streams.reserve(num_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n) streams.push_back(master.split());

    const Kernel::GuardChooser chooser = [&](NodeId n) {
      return streams[n].discrete(weights[n]);
    };
    // Latency draws share the per-node stream (successive uniforms from
    // one stream are independent; per-node isolation is what matters for
    // reproducibility when the graph is edited).
    const Kernel::LatencyChooser latency = [&](NodeId n) {
      return streams[n].uniform01() >= rrg.telescopic(n).fast_prob;
    };

    SyncState state = kernel.initial_state();
    for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
      kernel.step(state, chooser, latency);
    }
    std::uint64_t firings = 0;
    for (std::size_t t = 0; t < options.measure_cycles; ++t) {
      firings += kernel.step(state, chooser, latency).total_firings;
    }
    across_runs.add(static_cast<double>(firings) /
                    (static_cast<double>(options.measure_cycles) *
                     static_cast<double>(num_nodes)));
    total_cycles += options.measure_cycles;
  }

  SimResult result;
  result.theta = across_runs.mean();
  result.stderr_theta = across_runs.stderr_mean();
  result.cycles = total_cycles;
  return result;
}

}  // namespace elrr::sim
