#pragma once

/// \file kernel.hpp
/// The synchronous execution semantics of an elastic system with early
/// evaluation, shared by the Monte-Carlo simulator and the exact Markov
/// analysis so that both implement *literally the same* transition
/// function.
///
/// Model (one clock cycle):
///  * every edge e is a FIFO with latency R(e) (its EB chain) and
///    unbounded capacity -- the paper's footnote 1 assumes FIFOs sized so
///    that back-pressure never limits throughput;
///  * tokens ready at the consumer are annihilated 1:1 against pending
///    anti-tokens;
///  * nodes are processed in topological order of the combinational
///    subgraph (R = 0 edges): a token produced onto a zero-latency edge is
///    consumable in the same cycle (combinational propagation);
///  * a simple node fires iff every input edge has a ready token; an
///    early node samples a guard input (probability gamma) *when its
///    previous firing has completed* and fires iff that input has a ready
///    token, sending anti-tokens to the other inputs (DAC'07 semantics);
///    a sampled-but-unsatisfied guard stays pending -- the select token
///    waits for the selected data;
///  * every node fires at most once per cycle (hardware semantics);
///  * initial tokens R0 > 0 start ready; R0 < 0 preloads anti-tokens;
///  * a *telescopic* node (variable latency, the paper's future-work
///    extension) samples its latency when it fires: fast (probability p)
///    behaves normally; slow makes the unit busy for `slow_extra` extra
///    cycles -- it cannot fire again and its outputs are withheld until
///    the busy period ends (results of a slow operation are registered,
///    so consumers see them one EB-chain latency after release).

#include <cstdint>
#include <functional>
#include <vector>

#include "core/rrg.hpp"

namespace elrr::sim {

inline constexpr std::int8_t kNoGuard = -1;

/// Runaway-queue guard for ready/anti token counters: a live strongly
/// connected system keeps these bounded; hitting the cap means the RRG is
/// not strongly connected (tokens pile up at a sink-side join forever).
inline constexpr std::int32_t kTokenQueueCap = 1 << 20;

/// Dynamic state of one channel.
struct EdgeState {
  /// inflight[k] == 1 iff a token arrives at the consumer after k+1
  /// end-of-cycle boundaries. Size == R(e); at most one injection per
  /// cycle, so entries are 0/1.
  std::vector<std::uint8_t> inflight;
  std::int32_t ready = 0;  ///< tokens consumable this cycle
  std::int32_t anti = 0;   ///< pending anti-tokens

  bool operator==(const EdgeState&) const = default;
};

/// Full synchronous state.
struct SyncState {
  std::vector<EdgeState> edges;
  /// Per node: for early nodes, the in-edge *position* (index into
  /// in_edges(n)) currently awaited, or kNoGuard if the next firing's
  /// guard has not been sampled yet. Always kNoGuard for simple nodes.
  std::vector<std::int8_t> pending_guard;
  /// Per node: remaining busy cycles of a slow telescopic operation
  /// (0 = idle). Set to slow_extra + 1 at the slow firing; the withheld
  /// outputs are released when the countdown reaches 1. Always 0 for
  /// non-telescopic nodes.
  std::vector<std::uint8_t> busy;

  bool operator==(const SyncState&) const = default;

  /// Compact byte encoding for hashing / state enumeration.
  std::vector<std::uint8_t> encode() const;
};

/// Precomputed structure shared by all steps on one RRG.
///
/// Holds a *reference* to the graph: the Rrg must outlive the kernel and
/// stay structurally unchanged while the kernel is in use (constructing
/// from a temporary is rejected at compile time). This is the flexible
/// reference implementation; the performance path is sim::FlatKernel
/// (flat_kernel.hpp), which is differentially tested to be bit-exact
/// against this one.
class Kernel {
 public:
  explicit Kernel(const Rrg& rrg);
  Kernel(Rrg&&) = delete;  // would dangle: the kernel keeps a reference

  const Rrg& rrg() const { return rrg_; }

  SyncState initial_state() const;

  /// Early nodes that will sample a guard during the next step from
  /// `state` (pending_guard == kNoGuard and not busy). Order matches
  /// `early_nodes()`.
  std::vector<NodeId> sampling_nodes(const SyncState& state) const;

  /// Telescopic nodes that may fire (and hence sample a latency) during
  /// the next step from `state` (busy == 0). Order matches
  /// `telescopic_nodes()`.
  std::vector<NodeId> latency_nodes(const SyncState& state) const;

  /// Chooses the guard (position within in_edges(n)) for node n.
  using GuardChooser = std::function<std::size_t(NodeId)>;
  /// Chooses the latency of a telescopic firing: true = slow path.
  using LatencyChooser = std::function<bool(NodeId)>;

  /// Advances one clock cycle in place and returns the number of nodes
  /// that fired. `choose_latency` is consulted only for telescopic nodes
  /// at the moment they fire; the default (empty) chooser means every
  /// firing takes the fast path. When `fired` is non-null it must point
  /// at num_nodes() bytes; the step overwrites it with per-node 0/1
  /// firing flags (no allocation -- callers reuse one buffer across
  /// cycles).
  std::uint32_t step(SyncState& state, const GuardChooser& choose_guard,
                     const LatencyChooser& choose_latency = {},
                     std::uint8_t* fired = nullptr) const;

  const std::vector<NodeId>& early_nodes() const { return early_nodes_; }
  const std::vector<NodeId>& telescopic_nodes() const {
    return telescopic_nodes_;
  }
  const std::vector<NodeId>& comb_order() const { return comb_order_; }

 private:
  const Rrg& rrg_;
  std::vector<NodeId> comb_order_;   ///< topological over R=0 edges
  std::vector<NodeId> early_nodes_;
  std::vector<NodeId> telescopic_nodes_;
};

}  // namespace elrr::sim
