#pragma once

/// \file simulator.hpp
/// Monte-Carlo throughput estimation of an elastic system with early
/// evaluation -- the stand-in for the paper's "intensive simulations" of
/// generated Verilog controllers (see DESIGN.md, substitutions).

#include <cstdint>

#include "core/rrg.hpp"
#include "sim/kernel.hpp"
#include "support/stats.hpp"

namespace elrr::sim {

struct SimOptions {
  std::uint64_t seed = 1;
  std::size_t warmup_cycles = 2000;    ///< discarded transient
  std::size_t measure_cycles = 20000;  ///< measured window per run
  std::size_t runs = 3;                ///< independent replications
};

struct SimResult {
  double theta = 0.0;        ///< mean firings/cycle/node over all runs
  double stderr_theta = 0.0; ///< standard error across runs
  std::size_t cycles = 0;    ///< total measured cycles
};

/// Long-run throughput Theta(RRG) by simulation. Guards are sampled i.i.d.
/// with the RRG's gamma probabilities (per-node independent streams).
SimResult simulate_throughput(const Rrg& rrg, const SimOptions& options = {});

}  // namespace elrr::sim
