#pragma once

/// \file simulator.hpp
/// Monte-Carlo throughput estimation of an elastic system with early
/// evaluation -- the stand-in for the paper's "intensive simulations" of
/// generated Verilog controllers (see DESIGN.md, substitutions).
///
/// The driver runs on the allocation-free FlatKernel fast path with
/// precomputed chooser tables (falling back to the reference Kernel for
/// RRGs the flat layout cannot represent), interleaves replications
/// through the batched stepper -- telescopic graphs included -- and can
/// spread runs across worker threads. Results are deterministic in
/// (rrg, options.seed, options.runs) alone: every run draws from its own
/// splitmix64-derived stream and results are merged in run order, so
/// neither `threads` nor `max_batch` ever changes theta.
///
/// simulate_throughput is the one-candidate convenience wrapper around
/// sim::SimFleet (fleet.hpp), which scores many candidate RRGs through
/// one worker pool -- the shape the Pareto-walk benches use.

#include <cstdint>

#include "core/rrg.hpp"
#include "sim/flat_kernel.hpp"
#include "sim/kernel.hpp"
#include "support/stats.hpp"

namespace elrr::sim {

struct SimOptions {
  std::uint64_t seed = 1;
  std::size_t warmup_cycles = 2000;    ///< discarded transient
  std::size_t measure_cycles = 20000;  ///< measured window per run
  std::size_t runs = 3;                ///< independent replications
  /// Worker threads for independent runs; 0 = hardware concurrency.
  /// Purely a wall-clock knob: theta is identical for every value.
  std::size_t threads = 1;
  /// Lane cap for the interleaved batched stepper: runs are packed
  /// greedily into step_batch slices of the driver's supported widths
  /// (16/8/4/3/2/1) no wider than min(max_batch, 16); 0 = the driver
  /// default (4, one SSE int32 vector), 1 = solo stepping. Widths of 8
  /// and 16 pay on hosts with wider SIMD (build with -DELRR_NATIVE=ON)
  /// when a job carries that many runs. Purely a wall-clock knob: theta
  /// is identical for every value (lane-packing invariance is tested).
  std::size_t max_batch = 0;
  /// Force the reference Kernel path (testing / debugging). The fast path
  /// is bit-exact against it, so results do not change -- only speed.
  bool force_reference = false;
};

struct SimResult {
  double theta = 0.0;        ///< mean firings/cycle/node over all runs
  double stderr_theta = 0.0; ///< standard error across runs
  std::size_t cycles = 0;    ///< total measured cycles
};

/// Which kernel a simulation actually ran on.
enum class SimPath : std::uint8_t {
  kFlat = 0,          ///< FlatKernel batched fast path
  kReference,         ///< reference Kernel: the RRG exceeds a flat cap
  kReferenceForced,   ///< reference Kernel: options.force_reference
};

/// SimResult plus the execution-path report: which kernel ran, and -- when
/// the reference fallback was taken because of a flat-layout cap -- which
/// cap (FlatCap::kNone otherwise). Telescopic graphs are *not* a fallback:
/// they run on the batched flat path like everything else.
struct SimReport : SimResult {
  SimPath path = SimPath::kFlat;
  FlatCap fallback = FlatCap::kNone;
  /// Slices the fleet re-ran on the reference kernel after a flat-path
  /// fault (fail-point or real). Thetas of a degraded slice are
  /// bit-identical to the flat ones; this counter is the only trace.
  std::uint32_t degraded_slices = 0;
};

/// Long-run throughput Theta(RRG) by simulation. Guards are sampled i.i.d.
/// with the RRG's gamma probabilities (per-node independent streams).
/// Equivalent to a one-job SimFleet drained with options.threads workers.
SimReport simulate_throughput(const Rrg& rrg, const SimOptions& options = {});

/// The per-run RNG seed: run `run` of a simulation seeded with `seed`.
/// splitmix64 over state seed + run * golden-gamma -- nearby user seeds
/// and consecutive runs land in decorrelated regions of the stream space
/// (the old `seed + 0x9e37 * run` mix made run r of seed s collide with
/// run r+1 of seed s - 0x9e37). Exposed for tests pinning reproducibility.
std::uint64_t run_seed(std::uint64_t seed, std::size_t run);

}  // namespace elrr::sim
