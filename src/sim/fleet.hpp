#pragma once

/// \file fleet.hpp
/// Cross-candidate simulation fleet: scores *many* candidate RRGs (the
/// Pareto points of a retiming/recycling walk, a telescopic parameter
/// grid, ...) through one work-queue of batch-sized run slices drained by
/// a shared worker pool.
///
/// Why a fleet instead of a per-candidate loop: one candidate typically
/// carries only a handful of replications, so scoring candidates one
/// simulate_throughput call at a time leaves both lanes and cores idle --
/// with the flow's 2 runs per candidate the PR-1 driver degenerates to a
/// single work item and a single thread no matter what `threads` says.
/// The fleet accepts every (candidate, replication) job up front,
/// interleaves each candidate's runs K-wide through
/// FlatKernel::step_batch (telescopic candidates included), and drains
/// work items from *different* candidates concurrently across the pool.
///
/// Determinism contract (same as the PR-1 driver, fleet-wide): each job's
/// result depends only on (rrg, options.seed, options.runs,
/// options.*_cycles). Every run draws from its own splitmix64-derived
/// per-node streams, per-run theta lands in a run-indexed slot, and each
/// job's moments accumulate in run order -- so the thread count, the lane
/// packing (options.max_batch) and the submission interleaving can never
/// change a reported theta. A fleet job is bit-identical to
/// simulate_throughput of the same (rrg, options).

#include <cstddef>
#include <vector>

#include "core/rrg.hpp"
#include "sim/simulator.hpp"

namespace elrr::sim {

/// The worker count the fleet actually spawns for `requested` threads
/// (0 = use `hardware`, itself possibly 0 when the runtime cannot tell:
/// then 1) over `work_items` queue entries (never spawn workers that
/// would find nothing to do). Exposed for tests pinning the under/over-
/// spawn edge cases.
std::size_t resolve_worker_count(std::size_t requested, std::size_t hardware,
                                 std::size_t work_items);

/// Work-queue scheduler over all submitted simulation jobs.
///
/// Usage: submit every candidate, then drain() once; results come back in
/// submission order. Submitted Rrgs are borrowed -- they must outlive the
/// drain() call and stay structurally unchanged. Per-job options.threads
/// is ignored (the fleet's own pool size applies); all other SimOptions
/// fields are honoured per job.
class SimFleet {
 public:
  /// `threads` = worker pool size; 0 = hardware concurrency.
  explicit SimFleet(std::size_t threads = 0) : threads_(threads) {}

  /// Enqueues one candidate; returns its index into drain()'s result
  /// vector. Validates options eagerly (throws on zero cycles/runs).
  std::size_t submit(const Rrg& rrg, const SimOptions& options);
  // Would dangle: the fleet borrows the Rrg until drain() (same
  // convention as FlatKernel(Rrg&&) = delete).
  std::size_t submit(Rrg&&, const SimOptions&) = delete;

  /// Runs every queued job to completion and clears the queue. Safe to
  /// submit and drain again afterwards.
  std::vector<SimReport> drain();

  std::size_t num_jobs() const { return jobs_.size(); }
  std::size_t threads() const { return threads_; }
  /// Workers the most recent drain() actually spawned (0 before any
  /// drain): resolve_worker_count over the real work-item count.
  std::size_t last_worker_count() const { return last_workers_; }

 private:
  struct Job {
    const Rrg* rrg;
    SimOptions options;
  };

  std::size_t threads_;
  std::size_t last_workers_ = 0;
  std::vector<Job> jobs_;
};

}  // namespace elrr::sim
