#pragma once

/// \file fleet.hpp
/// Cross-candidate simulation fleet: scores *many* candidate RRGs (the
/// Pareto points of a retiming/recycling walk, a telescopic parameter
/// grid, ...) through one work-queue of batch-sized run slices drained by
/// a persistent shared worker pool.
///
/// Why a fleet instead of a per-candidate loop: one candidate typically
/// carries only a handful of replications, so scoring candidates one
/// simulate_throughput call at a time leaves both lanes and cores idle --
/// with the flow's 2 runs per candidate the PR-1 driver degenerates to a
/// single work item and a single thread no matter what `threads` says.
/// The fleet accepts every (candidate, replication) job up front,
/// interleaves each candidate's runs up to 16 lanes wide through
/// FlatKernel::step_batch (telescopic candidates included), and drains
/// work items from *different* candidates concurrently across the pool.
///
/// Two usage styles share the pool and the optimizations:
///
///  * **Synchronous** (`submit` + `drain`): enqueue every candidate, then
///    drain(); results come back in submission order and the fleet is
///    reusable. The calling thread participates (and runs everything
///    inline when one worker suffices).
///
///  * **Asynchronous** (`submit_async` + `poll`/`wait`/`wait_all`): each
///    submission is dispatched to the background pool *immediately* and
///    returns a SimTicket; the caller keeps working -- the pipelined flow
///    engine (flow/engine.hpp) submits each Pareto candidate while the
///    next MILP step solves. Async submissions feed a session-persistent
///    result cache: a candidate with identical canonical content +
///    options to any earlier async submission (this drain, a previous
///    walk iteration, a previous wait_all, *another client's job*)
///    reuses the finished result instead of re-simulating.
///
/// Multi-client sharing (the svc::Scheduler shape): the asynchronous API
/// -- submit_async, poll, wait, release -- is thread-safe and may be
/// driven by any number of client threads concurrently; one fleet serves
/// every optimization job of a batch, and the session cache dedups
/// identical candidates *across* jobs. wait_all() and the synchronous
/// submit/drain pair remain single-client (one thread at a time): their
/// wave/queue bookkeeping is caller-wide by design.
///
/// Session cache bound: the canonical-key result cache is LRU-evicted
/// past a byte cap (`cache_cap_bytes`; default 256 MiB, 0 = unbounded),
/// so a long multi-circuit batch no longer grows it without limit.
/// Eviction only forgets a *result for dedup purposes* -- outstanding
/// tickets keep their job alive (shared ownership) and stay waitable, so
/// correctness never depends on the cap. cache_stats() exposes live
/// entries/bytes plus cumulative hits/misses/evictions; the
/// ELRR_SIM_CACHE_CAP env knob plumbs the cap through FlowOptions /
/// svc::SchedulerOptions.
///
/// Ownership: `submit(const Rrg&)` / `submit_async(const Rrg&)` borrow
/// the candidate -- it must stay alive and structurally unchanged until
/// drain() returns / the ticket completes. The rvalue overloads
/// (`submit(Rrg&&)`, `submit_async(Rrg&&)`) move the candidate *into*
/// the fleet instead, removing the borrow-until-drain lifetime hazard --
/// the right default for candidates materialized on the fly
/// (apply_config results of a walk).
///
/// Two cross-candidate optimizations ride on the shared queue:
///  * duplicate candidates -- identical buffer/retiming assignments, a
///    routine artifact of Pareto walks revisiting configurations -- are
///    simulated once and their scores fanned back out to every submitted
///    duplicate (the determinism contract makes the shared result
///    bit-identical to simulating each copy);
///  * the worker pool persists across drain() calls and async sessions
///    (workers park on a condition variable in between), so a flow that
///    drains per walk iteration stops paying thread spawn/join per drain.
///
/// Determinism contract (same as the PR-1 driver, fleet-wide): each job's
/// result depends only on (rrg, options.seed, options.runs,
/// options.*_cycles). Every run draws from its own splitmix64-derived
/// per-node streams, per-run theta lands in a run-indexed slot, and each
/// job's moments accumulate in run order -- so the thread count, the lane
/// packing (options.max_batch), dedup on/off, sync vs async submission,
/// the submission interleaving and the client count can never change a
/// reported theta. A fleet job is bit-identical to simulate_throughput
/// of the same (rrg, options).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rrg.hpp"
#include "sim/simulator.hpp"

namespace elrr::sim {

namespace fleet_detail {
struct JobContext;  // one unique job's kernels/tables/slots (fleet.cpp)
struct FleetCore;   // pool + queue + async session state (fleet.cpp)
struct QueueEntry;  // one run slice of one unique job (fleet.cpp)
}  // namespace fleet_detail

namespace proc {
class WorkerProcess;  // one `elrr work` child process (proc_fleet.hpp)
}  // namespace proc

/// Default byte cap of the async session result cache (LRU past this).
inline constexpr std::size_t kDefaultSimCacheCapBytes =
    std::size_t{256} << 20;  // 256 MiB

/// The worker count the fleet actually spawns for `requested` threads
/// (0 = use `hardware`, itself possibly 0 when the runtime cannot tell:
/// then 1) over `work_items` queue entries (never spawn workers that
/// would find nothing to do). An explicit request never consults the
/// hardware count -- the fleet passes `hardware` only when `requested`
/// is 0. Exposed for tests pinning the under/over-spawn edge cases.
std::size_t resolve_worker_count(std::size_t requested, std::size_t hardware,
                                 std::size_t work_items);

/// Canonical byte key of one RRG's simulation-visible content (structure,
/// tokens, buffers, gammas, kinds, telescopic parameters). Two RRGs with
/// equal keys are guaranteed identical simulation semantics; the fleet's
/// dedup cache appends the stream/window-selecting SimOptions fields.
/// Exposed so the svc::Scheduler can layer its cross-job result cache on
/// the same canonical identity.
std::string canonical_rrg_key(const Rrg& rrg);

/// Handle to one asynchronously submitted job. A ticket stays waitable
/// (and re-waitable) until it is release()d -- results are held by
/// shared ownership, so neither cache eviction nor other clients can
/// invalidate it.
struct SimTicket {
  static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);
  std::size_t id = kInvalid;
  /// True when this submission created a new unique simulation; false on
  /// a session-cache hit (the ticket aliases an earlier job's result).
  bool fresh = false;
  bool valid() const { return id != kInvalid; }
};

/// Result of executing one run slice through a SliceRunner: the per-run
/// thetas in slice order plus the execution-path metadata the fleet's
/// report merge reads.
struct SliceRun {
  std::vector<double> thetas;
  SimPath path = SimPath::kFlat;
  FlatCap fallback = FlatCap::kNone;
  std::uint32_t degraded_slices = 0;  ///< fallbacks within *this* slice
};

/// Standalone slice executor sharing the fleet's exact execution
/// semantics (path classification, kernels, per-run seed derivation, the
/// flat->reference per-slice degradation) without a pool or a queue.
/// This is the worker side of the process-isolated tier: `elrr work`
/// builds one per (candidate, options) pair and runs the slices the
/// supervisor sends, so a proc-fleet theta is the in-process pool's
/// theta by construction. One runner is single-threaded.
class SliceRunner {
 public:
  /// Takes ownership of the candidate; validates options (throws on
  /// zero cycles/runs) and builds kernels/tables eagerly.
  SliceRunner(Rrg rrg, const SimOptions& options);
  ~SliceRunner();
  SliceRunner(const SliceRunner&) = delete;
  SliceRunner& operator=(const SliceRunner&) = delete;

  /// Executes runs [first, first+count) and returns their thetas.
  /// `count` must be a supported lane width (the fleet's slice
  /// partition only emits those) and the range must fit options.runs.
  SliceRun run(std::uint32_t first, std::uint32_t count);

 private:
  std::shared_ptr<fleet_detail::JobContext> ctx_;
};

/// Counters of the process-isolated execution tier (all zero while the
/// fleet runs in-process, i.e. ELRR_PROC_WORKERS unset/0).
struct ProcFleetStats {
  std::uint64_t spawns = 0;        ///< worker processes ever started
  std::uint64_t crashes = 0;       ///< worker deaths detected by supervisors
  std::uint64_t respawns = 0;      ///< restarts after a crash
  std::uint64_t redispatches = 0;  ///< slices re-run after their worker died
  std::uint64_t postmortems = 0;   ///< crashed-worker flight-recorder dumps
                                   ///< harvested (obs/recorder.hpp)
};

/// Live + cumulative counters of the async session result cache.
struct SimCacheStats {
  std::size_t entries = 0;         ///< results currently cached
  std::size_t bytes = 0;           ///< accounted bytes of those entries
  std::size_t capacity_bytes = 0;  ///< LRU byte cap (0 = unbounded)
  std::uint64_t hits = 0;          ///< submissions served from the cache
  std::uint64_t misses = 0;        ///< unique simulations ever created
  std::uint64_t evictions = 0;     ///< entries LRU-evicted over the cap
};

/// Work-queue scheduler over all submitted simulation jobs.
class SimFleet {
 public:
  /// `threads` = worker pool size; 0 = hardware concurrency. `dedup`
  /// controls duplicate-candidate elimination (identical RRG content +
  /// identical options simulate once); results are bit-identical either
  /// way, off is for benchmarking the dedup itself. `cache_cap_bytes`
  /// bounds the async session result cache (0 = unbounded).
  explicit SimFleet(std::size_t threads = 0, bool dedup = true,
                    std::size_t cache_cap_bytes = kDefaultSimCacheCapBytes);
  ~SimFleet();
  SimFleet(const SimFleet&) = delete;
  SimFleet& operator=(const SimFleet&) = delete;

  /// Enqueues one candidate; returns its index into drain()'s result
  /// vector. Validates options eagerly (throws on zero cycles/runs).
  /// The borrowed Rrg must outlive the drain() call.
  std::size_t submit(const Rrg& rrg, const SimOptions& options);
  /// Owning overload: the candidate is moved into the fleet and kept
  /// alive through the drain -- no lifetime obligation on the caller.
  std::size_t submit(Rrg&& rrg, const SimOptions& options);

  /// Runs every queued job to completion and clears the queue -- also on
  /// failure, so a throwing job never leaks stale queue entries into the
  /// next drain. Safe to submit and drain again afterwards; the worker
  /// pool stays parked in between. Single-client (like submit).
  std::vector<SimReport> drain();

  /// Starts simulating `rrg` on the background pool immediately and
  /// returns without waiting. The borrowed Rrg must stay alive until the
  /// ticket completes (prefer the owning overload below when in doubt).
  /// With dedup on, a candidate identical to any earlier async
  /// submission reuses its (possibly already finished) simulation.
  /// Thread-safe: any client thread may submit concurrently.
  SimTicket submit_async(const Rrg& rrg, const SimOptions& options);
  /// Owning async submission: the fleet keeps the candidate alive until
  /// its simulation completes. This is the lifetime-safe default for
  /// streaming pipelines whose candidates are temporaries.
  SimTicket submit_async(Rrg&& rrg, const SimOptions& options);

  /// Non-blocking: has this ticket's simulation finished? Thread-safe.
  bool poll(SimTicket ticket) const;
  /// Blocks until the ticket's job completes and returns its report
  /// (rethrows the job's failure, if any). Re-waitable until released.
  /// Thread-safe.
  SimReport wait(SimTicket ticket);
  /// Bounded wait: blocks at most `seconds`, then returns nullopt if the
  /// job is still running (no side effects; wait again later). On
  /// completion behaves exactly like wait(). The scheduler's deadline
  /// loop polls through this so a stuck worker can never wedge a client
  /// past its wall budget. Thread-safe.
  std::optional<SimReport> wait_for(SimTicket ticket, double seconds);
  /// Drops the fleet's reference for this ticket: later poll/wait on it
  /// throw, wait_all skips it, and -- once every aliasing ticket is
  /// released and the cache entry evicted -- the job's memory is freed.
  /// Long-lived clients (the flow engine, the scheduler) release tickets
  /// when done so a month-long session stays bounded. Idempotent;
  /// thread-safe.
  void release(SimTicket ticket);
  /// Blocks until every outstanding async job completes; returns the
  /// reports of all not-yet-released tickets issued since the previous
  /// wait_all(), in ticket order. The session result cache survives, so
  /// later submissions still dedup against everything simulated before.
  /// Single-client (the wave bookkeeping is caller-wide).
  std::vector<SimReport> wait_all();

  /// Async jobs submitted and not yet completed.
  std::size_t async_pending() const;
  /// Unique simulations currently held by the async session cache.
  std::size_t async_cache_size() const;
  /// Live + cumulative session-cache counters (entries, bytes, cap,
  /// hits/misses/evictions).
  SimCacheStats cache_stats() const;
  /// Pool workers that have been executing one slice for longer than
  /// `threshold_s` seconds (heartbeat-based). A healthy slice finishes in
  /// milliseconds; a nonzero count under a generous threshold means a
  /// worker is wedged (or an injected `stall:` fail point is active) and
  /// bounded waits should report it rather than keep waiting. Thread-safe.
  std::size_t stuck_workers(double threshold_s) const;
  /// Pool workers currently executing a slice (heartbeat-based). With
  /// pool_size() this is the fleet-utilization reading the periodic
  /// stats snapshot publishes for `elrr top`. Thread-safe.
  std::size_t busy_workers() const;

  /// Process-isolated tier width (the ELRR_PROC_WORKERS knob, read at
  /// construction): 0 = the in-process pool (default); N > 0 = every
  /// slice executes in one of up to N `elrr work` child processes, each
  /// driven by a supervisor thread in this fleet's pool. Results are
  /// bit-identical either way (same slice partition, same run-order
  /// merge); the tier buys crash containment -- a dead worker process
  /// costs a bounded respawn plus re-dispatch of its in-flight slices,
  /// never the fleet.
  std::size_t proc_workers() const { return proc_workers_; }
  /// Spawn/crash/respawn/re-dispatch counters of the proc tier.
  ProcFleetStats proc_stats() const;
  /// PIDs of the currently live worker processes (empty in-process or
  /// before the first spawn). Chaos tests aim real SIGKILLs with this.
  std::vector<int> proc_worker_pids() const;

  std::size_t num_jobs() const { return jobs_.size(); }
  std::size_t threads() const { return threads_; }
  bool dedup() const { return dedup_; }
  /// Workers the most recent drain() actually used (0 before any
  /// drain): resolve_worker_count over the real work-item count.
  std::size_t last_worker_count() const { return last_workers_; }
  /// Persistent pool threads currently alive (0 until a drain or async
  /// submission needs more than the calling thread; the pool grows on
  /// demand and parks between batches).
  std::size_t pool_size() const;
  /// Unique simulations the most recent drain() ran (== its job count
  /// when dedup is off or no candidates repeat).
  std::size_t last_unique_jobs() const { return last_unique_; }

 private:
  struct Job {
    const Rrg* rrg;
    SimOptions options;
  };

  /// Grows the persistent pool to `workers` threads (thread-safe). In
  /// proc mode the threads are supervisors, each owning one worker
  /// process.
  void ensure_pool(std::size_t workers);
  void worker_main(std::size_t slot);
  /// Supervisor loop of the proc tier: pops the same shared queue as
  /// worker_main, but ships each slice to this slot's worker process and
  /// owns its crash containment (detection, bounded respawn with
  /// backoff, re-dispatch, dedup-entry purge).
  void proc_supervisor_main(std::size_t slot);
  /// One slice through this slot's worker process, with the crash/
  /// respawn/re-dispatch loop. Throws TransientError once the respawn
  /// budget is spent (the scheduler's retry taxonomy picks that up).
  /// `spawn_generation` counts this slot's spawns (0 = never spawned);
  /// it feeds both the respawn stat and the worker log header.
  void proc_run_slice(std::size_t slot, const fleet_detail::QueueEntry& entry,
                      std::unique_ptr<proc::WorkerProcess>* child,
                      int* spawn_generation);
  SimTicket enqueue_async(const Rrg* rrg, const SimOptions& options,
                          std::unique_ptr<Rrg> owned);
  std::size_t hardware_concurrency_cached();

  const std::size_t threads_;
  const std::size_t proc_workers_;  ///< ELRR_PROC_WORKERS; 0 = in-process
  const bool dedup_;
  std::size_t last_workers_ = 0;
  std::size_t last_unique_ = 0;
  std::vector<Job> jobs_;                  ///< sync queue (single-client)
  std::vector<std::unique_ptr<Rrg>> sync_owned_;  ///< owning sync submissions

  /// Mutex, condition variables, worker threads, the shared work queue
  /// and the async session (job contexts, LRU dedup cache, tickets) --
  /// defined in fleet.cpp; workers and concurrent clients only ever
  /// touch this state under its mutex.
  std::unique_ptr<fleet_detail::FleetCore> core_;
};

}  // namespace elrr::sim
