#pragma once

/// \file fleet.hpp
/// Cross-candidate simulation fleet: scores *many* candidate RRGs (the
/// Pareto points of a retiming/recycling walk, a telescopic parameter
/// grid, ...) through one work-queue of batch-sized run slices drained by
/// a persistent shared worker pool.
///
/// Why a fleet instead of a per-candidate loop: one candidate typically
/// carries only a handful of replications, so scoring candidates one
/// simulate_throughput call at a time leaves both lanes and cores idle --
/// with the flow's 2 runs per candidate the PR-1 driver degenerates to a
/// single work item and a single thread no matter what `threads` says.
/// The fleet accepts every (candidate, replication) job up front,
/// interleaves each candidate's runs up to 16 lanes wide through
/// FlatKernel::step_batch (telescopic candidates included), and drains
/// work items from *different* candidates concurrently across the pool.
///
/// Two cross-candidate optimizations ride on the shared queue:
///  * duplicate candidates -- identical buffer/retiming assignments, a
///    routine artifact of Pareto walks revisiting configurations -- are
///    simulated once and their scores fanned back out to every submitted
///    duplicate (the determinism contract makes the shared result
///    bit-identical to simulating each copy);
///  * the worker pool persists across drain() calls (workers park on a
///    condition variable between drains), so a flow that drains per walk
///    iteration stops paying thread spawn/join per drain.
///
/// Determinism contract (same as the PR-1 driver, fleet-wide): each job's
/// result depends only on (rrg, options.seed, options.runs,
/// options.*_cycles). Every run draws from its own splitmix64-derived
/// per-node streams, per-run theta lands in a run-indexed slot, and each
/// job's moments accumulate in run order -- so the thread count, the lane
/// packing (options.max_batch), dedup on/off and the submission
/// interleaving can never change a reported theta. A fleet job is
/// bit-identical to simulate_throughput of the same (rrg, options).

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rrg.hpp"
#include "sim/simulator.hpp"

namespace elrr::sim {

namespace fleet_detail {
struct WorkItem;    // one batch-sized slice of one job's runs (fleet.cpp)
struct JobContext;  // one unique job's kernels/tables/slots (fleet.cpp)
}  // namespace fleet_detail

/// The worker count the fleet actually spawns for `requested` threads
/// (0 = use `hardware`, itself possibly 0 when the runtime cannot tell:
/// then 1) over `work_items` queue entries (never spawn workers that
/// would find nothing to do). An explicit request never consults the
/// hardware count -- the fleet passes `hardware` only when `requested`
/// is 0. Exposed for tests pinning the under/over-spawn edge cases.
std::size_t resolve_worker_count(std::size_t requested, std::size_t hardware,
                                 std::size_t work_items);

/// Work-queue scheduler over all submitted simulation jobs.
///
/// Usage: submit every candidate, then drain(); results come back in
/// submission order, and the fleet is reusable (submit/drain again; the
/// worker pool is kept parked in between). Submitted Rrgs are borrowed --
/// they must outlive the drain() call and stay structurally unchanged.
/// Per-job options.threads is ignored (the fleet's own pool size
/// applies); all other SimOptions fields are honoured per job.
class SimFleet {
 public:
  /// `threads` = worker pool size; 0 = hardware concurrency. `dedup`
  /// controls duplicate-candidate elimination (identical RRG content +
  /// identical options simulate once); results are bit-identical either
  /// way, off is for benchmarking the dedup itself.
  explicit SimFleet(std::size_t threads = 0, bool dedup = true)
      : threads_(threads), dedup_(dedup) {}
  ~SimFleet();
  SimFleet(const SimFleet&) = delete;
  SimFleet& operator=(const SimFleet&) = delete;

  /// Enqueues one candidate; returns its index into drain()'s result
  /// vector. Validates options eagerly (throws on zero cycles/runs).
  std::size_t submit(const Rrg& rrg, const SimOptions& options);
  // Would dangle: the fleet borrows the Rrg until drain() (same
  // convention as FlatKernel(Rrg&&) = delete).
  std::size_t submit(Rrg&&, const SimOptions&) = delete;

  /// Runs every queued job to completion and clears the queue -- also on
  /// failure, so a throwing job never leaks stale queue entries into the
  /// next drain (identical behavior inline and pooled). Safe to submit
  /// and drain again afterwards; the worker pool stays parked in between.
  std::vector<SimReport> drain();

  std::size_t num_jobs() const { return jobs_.size(); }
  std::size_t threads() const { return threads_; }
  bool dedup() const { return dedup_; }
  /// Workers the most recent drain() actually used (0 before any
  /// drain): resolve_worker_count over the real work-item count.
  std::size_t last_worker_count() const { return last_workers_; }
  /// Persistent pool threads currently alive (0 until a drain needs more
  /// than one worker; the pool grows on demand and parks between drains).
  std::size_t pool_size() const { return pool_.size(); }
  /// Unique simulations the most recent drain() ran (== its job count
  /// when dedup is off or no candidates repeat).
  std::size_t last_unique_jobs() const { return last_unique_; }

 private:
  struct Job {
    const Rrg* rrg;
    SimOptions options;
  };

  /// Grows the persistent pool to `workers` threads.
  void ensure_pool(std::size_t workers);
  void worker_main();

  std::size_t threads_;
  bool dedup_;
  std::size_t last_workers_ = 0;
  std::size_t last_unique_ = 0;
  std::vector<Job> jobs_;

  // Persistent pool: workers park on cv_work_ between drains. drain()
  // publishes a batch (type-erased through the two pointers; fleet.cpp
  // owns the definitions), bumps epoch_ and waits on cv_done_ until every
  // item completed. Straggler workers from a previous epoch only ever
  // touch items they claimed (drain cannot return before a claimed item
  // completes), so batch storage never outlives its readers.
  std::vector<std::thread> pool_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  const fleet_detail::WorkItem* batch_items_ = nullptr;
  fleet_detail::JobContext* batch_contexts_ = nullptr;
  std::size_t batch_total_ = 0;
  std::size_t batch_next_ = 0;       ///< guarded by mutex_
  std::size_t batch_completed_ = 0;  ///< guarded by mutex_
  std::exception_ptr failure_;
};

}  // namespace elrr::sim
